// Benchmarks regenerating the paper's evaluation (§6) and the ablations
// called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// BenchmarkFig6_* reproduces fig. 6 (few changes to one partial
// differential, swept over database size): incremental ns/txn should be
// roughly flat in the size, naive ns/txn linear.
//
// BenchmarkFig7_* reproduces fig. 7 (massive changes to three partial
// differentials): incremental loses to naive by a roughly constant
// factor (the paper measured ≈1.6).
//
// BenchmarkFig4_* measures each operator row of fig. 4: the incremental
// Δ-rule against full recomputation plus diff.
package partdiff

import (
	"fmt"
	"testing"

	"partdiff/internal/algebra"
	"partdiff/internal/bench"
	"partdiff/internal/delta"
	"partdiff/internal/eval"
	"partdiff/internal/rules"
	"partdiff/internal/storage"
	"partdiff/internal/types"
)

var fig6Sizes = []int{1, 10, 100, 1000, 10000}

// BenchmarkFig6_Incremental: one transaction updating the quantity of a
// single item, monitored by partial differencing. ns/op ≈ constant over
// database size (the paper's headline result, §6.1).
func BenchmarkFig6_Incremental(b *testing.B) {
	benchFig6(b, rules.Incremental)
}

// BenchmarkFig6_Naive: the same workload under naive monitoring. ns/op
// grows linearly with database size.
func BenchmarkFig6_Naive(b *testing.B) {
	benchFig6(b, rules.Naive)
}

func benchFig6(b *testing.B, mode rules.Mode) {
	for _, n := range fig6Sizes {
		b.Run(fmt.Sprintf("items=%d", n), func(b *testing.B) {
			inv, err := bench.NewInventory(bench.Config{N: n, Mode: mode, Activate: true})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				item := i % n
				q := int64(4900 - (i/n)%2*100)
				if err := inv.Txn(func() error { return inv.SetQuantity(item, q) }); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if inv.Orders != 0 {
				b.Fatalf("workload triggered %d orders", inv.Orders)
			}
		})
	}
}

var fig7Sizes = []int{10, 100, 1000}

// BenchmarkFig7_Incremental: one transaction changing quantity,
// delivery_time and consume_freq of all n items (§6.2 worst case).
func BenchmarkFig7_Incremental(b *testing.B) {
	benchFig7(b, rules.Incremental)
}

// BenchmarkFig7_Naive: the same massive transaction under naive
// monitoring — the baseline that wins here, by a constant factor.
func BenchmarkFig7_Naive(b *testing.B) {
	benchFig7(b, rules.Naive)
}

// BenchmarkFig7_IncrementalPositiveOnly replicates the paper's exact
// benchmark configuration: insertion monitoring only (three positive
// partial differentials execute instead of six), which is where the
// paper's ≈1.6× constant comes from.
func BenchmarkFig7_IncrementalPositiveOnly(b *testing.B) {
	for _, n := range fig7Sizes {
		b.Run(fmt.Sprintf("items=%d", n), func(b *testing.B) {
			inv, err := bench.NewInventory(bench.Config{
				N: n, Mode: rules.Incremental, Activate: true, PositiveOnly: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := inv.RunFig7Transaction(int64(i)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if inv.Orders != 0 {
				b.Fatalf("workload triggered %d orders", inv.Orders)
			}
		})
	}
}

func benchFig7(b *testing.B, mode rules.Mode) {
	for _, n := range fig7Sizes {
		b.Run(fmt.Sprintf("items=%d", n), func(b *testing.B) {
			inv, err := bench.NewInventory(bench.Config{N: n, Mode: mode, Activate: true})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := inv.RunFig7Transaction(int64(i)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if inv.Orders != 0 {
				b.Fatalf("workload triggered %d orders", inv.Orders)
			}
		})
	}
}

// fig4Fixture builds two relations of the given size and a small
// transaction (10 changes each).
func fig4Fixture(size int) (q, r *types.Set, dq, dr *delta.Set) {
	q, r = types.NewSet(), types.NewSet()
	for i := 0; i < size; i++ {
		q.Add(types.Tuple{types.Int(int64(i)), types.Int(int64(i % 50))})
		r.Add(types.Tuple{types.Int(int64(i % 50)), types.Int(int64(i))})
	}
	dq, dr = delta.New(), delta.New()
	for i := 0; i < 10; i++ {
		tq := types.Tuple{types.Int(int64(size + i)), types.Int(int64(i))}
		q.Add(tq)
		dq.Insert(tq)
		tr := types.Tuple{types.Int(int64(i)), types.Int(int64(size + i))}
		r.Add(tr)
		dr.Insert(tr)
	}
	return q, r, dq, dr
}

// BenchmarkFig4 measures every operator row of fig. 4: the incremental
// Δ-rule (Delta) against recomputing the operator on old and new states
// and diffing (Recompute).
func BenchmarkFig4(b *testing.B) {
	const size = 1000
	evenSum := func(t types.Tuple) bool { return (t[0].AsInt()+t[1].AsInt())%2 == 0 }
	ops := []struct {
		name    string
		compute func(q, r *types.Set) *types.Set
		rule    func(q, r *types.Set, dq, dr *delta.Set) *delta.Set
	}{
		{"Select",
			func(q, _ *types.Set) *types.Set { return algebra.Select(q, evenSum) },
			func(_, _ *types.Set, dq, _ *delta.Set) *delta.Set { return algebra.DeltaSelect(dq, evenSum) }},
		{"Project",
			func(q, _ *types.Set) *types.Set { return algebra.Project(q, []int{0}) },
			func(_, _ *types.Set, dq, _ *delta.Set) *delta.Set { return algebra.DeltaProject(dq, []int{0}) }},
		{"Union",
			func(q, r *types.Set) *types.Set { return algebra.Union(q, r) },
			algebra.DeltaUnion},
		{"Difference",
			func(q, r *types.Set) *types.Set { return algebra.Difference(q, r) },
			algebra.DeltaDifference},
		{"Join",
			func(q, r *types.Set) *types.Set { return algebra.Join(q, r, []int{1}, []int{0}) },
			func(q, r *types.Set, dq, dr *delta.Set) *delta.Set {
				return algebra.DeltaJoin(q, r, []int{1}, []int{0}, dq, dr)
			}},
		{"Intersect",
			func(q, r *types.Set) *types.Set { return algebra.Intersect(q, r) },
			algebra.DeltaIntersect},
	}
	for _, op := range ops {
		q, r, dq, dr := fig4Fixture(size)
		qold, rold := dq.OldState(q), dr.OldState(r)
		b.Run(op.name+"/Delta", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				op.rule(q, r, dq, dr)
			}
		})
		b.Run(op.name+"/Recompute", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				delta.Diff(op.compute(qold, rold), op.compute(q, r))
			}
		})
	}
}

// BenchmarkNodeSharing compares flat (fully expanded) against bushy
// (shared threshold node) propagation for threshold-side updates — the
// §7.1 ablation.
func BenchmarkNodeSharing(b *testing.B) {
	for _, shared := range []bool{false, true} {
		name := "Flat"
		if shared {
			name = "Bushy"
		}
		b.Run(name, func(b *testing.B) {
			inv, err := bench.NewInventory(bench.Config{
				N: 1000, Mode: rules.Incremental, SharedThreshold: shared, Activate: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			st := inv.Sess.Store()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				item := inv.Items[i%1000]
				ms := types.Int(int64(101 + (i/1000)%2))
				err := inv.Txn(func() error {
					_, err := st.Set("min_stock", []types.Value{item}, []types.Value{ms})
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNodeSharingManyConsumers measures the regime where §7.1
// sharing pays off: eight additional rules all reference the threshold
// view. Bushy propagation computes Δthreshold once per transaction and
// feeds every consumer; flat expansion re-joins the threshold body
// inside each rule's differential.
func BenchmarkNodeSharingManyConsumers(b *testing.B) {
	for _, shared := range []bool{false, true} {
		name := "Flat"
		if shared {
			name = "Bushy"
		}
		b.Run(name, func(b *testing.B) {
			inv, err := bench.NewInventory(bench.Config{
				N: 500, Mode: rules.Incremental, SharedThreshold: shared, Activate: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			inv.Sess.RegisterProcedure("noop", func([]types.Value) error { return nil })
			for k := 0; k < 8; k++ {
				stmts := fmt.Sprintf(`
create rule watch%d() as
    when for each item i where threshold(i) > %d
    do noop(i);
activate watch%d();`, k, 100000+k, k)
				if _, err := inv.Sess.Exec(stmts); err != nil {
					b.Fatal(err)
				}
			}
			st := inv.Sess.Store()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				item := inv.Items[i%500]
				ms := types.Int(int64(101 + (i/500)%2))
				err := inv.Txn(func() error {
					_, err := st.Set("min_stock", []types.Value{item}, []types.Value{ms})
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStrictVsNervous measures the §7.2 strict-semantics overhead:
// old-state membership probes on claimed insertions.
func BenchmarkStrictVsNervous(b *testing.B) {
	for _, strict := range []bool{true, false} {
		name := "Nervous"
		if strict {
			name = "Strict"
		}
		b.Run(name, func(b *testing.B) {
			db := Open()
			db.RegisterProcedure("noop", func([]Value) error { return nil })
			kw := ""
			if !strict {
				kw = "nervous "
			}
			db.MustExec(`
create type item;
create function quantity(item) -> integer;
create ` + kw + `rule low() as
    when for each item i where quantity(i) < 100
    do noop(i);
`)
			sess := db.Session()
			var items []Value
			for i := 0; i < 100; i++ {
				oid, _ := sess.Catalog().NewObject("item")
				items = append(items, Obj(oid))
				sess.Store().Insert("type:item", Tuple{Obj(oid)})
				sess.Store().Set("quantity", []Value{Obj(oid)}, []Value{Int(50)})
			}
			db.MustExec(`activate low();`)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Re-derivation: stays below 100, so strict filtering
				// has to probe the old state every time.
				v := Int(int64(40 + (i/100)%2))
				db.Begin()
				sess.Store().Set("quantity", []Value{items[i%100]}, []Value{v})
				if err := db.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOldState compares the two ways of answering old-state
// membership probes (E9): logical rollback (no materialization, the
// paper's choice) versus materializing S_old first.
func BenchmarkOldState(b *testing.B) {
	const size = 10000
	st := storage.NewStore()
	st.CreateRelation("r", 2, nil)
	rel, _ := st.Relation("r")
	d := delta.New()
	for i := 0; i < size; i++ {
		st.Insert("r", types.Tuple{types.Int(int64(i)), types.Int(int64(i))})
	}
	for i := 0; i < 10; i++ {
		tp := types.Tuple{types.Int(int64(size + i)), types.Int(int64(i))}
		st.Insert("r", tp)
		d.Insert(tp)
		td := types.Tuple{types.Int(int64(i)), types.Int(int64(i))}
		st.Delete("r", td)
		d.Delete(td)
	}
	probes := make([]types.Tuple, 100)
	for i := range probes {
		probes[i] = types.Tuple{types.Int(int64(i * 37 % size)), types.Int(int64(i * 37 % size))}
	}
	b.Run("Rollback", func(b *testing.B) {
		rb := eval.NewRolledBack(rel, d)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, p := range probes {
				rb.Contains(p)
			}
		}
	})
	b.Run("Materialize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			old := d.OldState(rel.Rows())
			for _, p := range probes {
				old.Contains(p)
			}
		}
	})
}

// BenchmarkHybrid runs the hybrid monitor on both regimes, showing it
// tracks the better strategy (§8 future work, implemented here).
func BenchmarkHybrid(b *testing.B) {
	b.Run("SmallTxn", func(b *testing.B) {
		inv, err := bench.NewInventory(bench.Config{N: 1000, Mode: rules.Hybrid, Activate: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := int64(4900 - (i/1000)%2*100)
			if err := inv.Txn(func() error { return inv.SetQuantity(i%1000, q) }); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("MassiveTxn", func(b *testing.B) {
		inv, err := bench.NewInventory(bench.Config{N: 100, Mode: rules.Hybrid, Activate: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := inv.RunFig7Transaction(int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
