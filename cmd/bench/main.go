// Command bench regenerates the paper's performance figures (§6) and
// the DESIGN.md ablations, printing one table per experiment:
//
//	bench -exp fig6     # fig. 6: 100 txns × 1 quantity update, size sweep
//	bench -exp fig7     # fig. 7: 1 txn updating 3 influents of all items
//	bench -exp sharing     # §7.1 node sharing ablation
//	bench -exp hybrid      # §8 hybrid monitor on a mixed workload
//	bench -exp durability  # commit latency with WAL at sync=always/group/none
//	bench -exp profile     # profiler on/off A/B + adaptive-statistics skew
//	bench -exp concurrency # snapshot-read scaling + group-commit write scaling
//	bench -exp prune       # static differential pruning off/on A/B
//	bench -exp events      # event bus armed/disarmed A/B + subscriber fan-out
//	bench -exp flightrec   # flight recorder armed/disarmed A/B (window-only mode)
//	bench -exp all
//
// With -json, the fig6/fig7/durability measurements (time per
// transaction plus the monitor telemetry behind it: differentials
// executed, tuples scanned, emitted Δ-set sizes, log fsyncs) are
// additionally written to BENCH_<n>.json in the current directory,
// where <n> is the first unused number — so successive runs accumulate
// a comparable series of baselines.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"partdiff/internal/bench"
)

// record is one flat measurement in the BENCH_<n>.json output.
type record struct {
	Name    string `json:"name"` // experiment/items=N/mode
	NsPerOp int64  `json:"ns_per_op"`
	bench.Telemetry
	MeanDelta float64 `json:"mean_delta_size"`
	Fsyncs    int64   `json:"fsyncs,omitempty"` // durability experiment only
	// Profile experiment only: profiler A/B overhead and its own
	// accounting, and the adaptive-statistics speedup.
	OverheadPct float64 `json:"overhead_pct,omitempty"`
	Execs       int64   `json:"differential_execs,omitempty"`
	ZeroEffect  int64   `json:"zero_effect_execs,omitempty"`
	Speedup     float64 `json:"speedup,omitempty"`
	// Concurrency experiment only: aggregate throughput and the
	// writer-gate admission wait percentiles.
	OpsPerSec float64 `json:"ops_per_sec,omitempty"`
	WaitP50Us float64 `json:"gate_wait_p50_us,omitempty"`
	WaitP95Us float64 `json:"gate_wait_p95_us,omitempty"`
	WaitP99Us float64 `json:"gate_wait_p99_us,omitempty"`
	// Prune experiment only: network shape under static pruning.
	Compiled  int `json:"compiled_differentials,omitempty"`
	Scheduled int `json:"scheduled_differentials,omitempty"`
	Pruned    int `json:"pruned_differentials,omitempty"`
	// Events experiment only: bus accounting for the fan-out rows.
	Published int64 `json:"events_published,omitempty"`
	Delivered int64 `json:"events_delivered,omitempty"`
	Dropped   int64 `json:"events_dropped,omitempty"`
	// Hybrid/counting experiment only: rule firings (equal across
	// twins by the equivalence gate) and chooser strategy switches.
	Orders   int    `json:"orders,omitempty"`
	Switches uint64 `json:"strategy_switches,omitempty"`
}

// report is the BENCH_<n>.json document.
type report struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version,omitempty"`
	GoMaxProcs int      `json:"gomaxprocs,omitempty"`
	NumCPU     int      `json:"num_cpu,omitempty"`
	Records    []record `json:"records"`
}

func main() {
	exp := flag.String("exp", "all", "experiment: fig6, fig7, sharing, hybrid, durability, profile, concurrency, prune, events, flightrec, or all")
	sizesFlag := flag.String("sizes", "", "comma-separated database sizes (defaults per experiment)")
	txns := flag.Int("txns", 100, "transactions per measurement (fig6/sharing)")
	rounds := flag.Int("rounds", 3, "massive transactions per measurement (fig7)")
	reps := flag.Int("reps", 7, "repetitions per profile measurement (medians reported)")
	jsonOut := flag.Bool("json", false, "also write fig6/fig7 results to BENCH_<n>.json (first unused n)")
	flag.Parse()

	run := func(name string) bool { return *exp == "all" || *exp == name }
	var failed bool
	var rep report
	if run("fig6") {
		sizes := parseSizes(*sizesFlag, []int{1, 10, 100, 1000, 10000})
		if err := runFig6(sizes, *txns, &rep); err != nil {
			fmt.Fprintln(os.Stderr, "fig6:", err)
			failed = true
		}
	}
	if run("fig7") {
		sizes := parseSizes(*sizesFlag, []int{10, 100, 1000})
		if err := runFig7(sizes, *rounds, &rep); err != nil {
			fmt.Fprintln(os.Stderr, "fig7:", err)
			failed = true
		}
	}
	if run("sharing") {
		sizes := parseSizes(*sizesFlag, []int{100, 1000})
		if err := runSharing(sizes, *txns); err != nil {
			fmt.Fprintln(os.Stderr, "sharing:", err)
			failed = true
		}
	}
	if run("hybrid") {
		sizes := parseSizes(*sizesFlag, []int{100, 1000})
		if err := runHybrid(sizes, *txns, *rounds, &rep); err != nil {
			fmt.Fprintln(os.Stderr, "hybrid:", err)
			failed = true
		}
	}
	if run("durability") {
		if err := runDurability(*txns, &rep); err != nil {
			fmt.Fprintln(os.Stderr, "durability:", err)
			failed = true
		}
	}
	if run("profile") {
		if err := runProfile(*reps, &rep); err != nil {
			fmt.Fprintln(os.Stderr, "profile:", err)
			failed = true
		}
	}
	if run("concurrency") {
		if err := runConcurrency(&rep); err != nil {
			fmt.Fprintln(os.Stderr, "concurrency:", err)
			failed = true
		}
	}
	if run("prune") {
		sizes := parseSizes(*sizesFlag, []int{100, 1000})
		if err := runPrune(sizes, *txns, &rep); err != nil {
			fmt.Fprintln(os.Stderr, "prune:", err)
			failed = true
		}
	}
	if run("events") {
		if err := runEvents(*reps, &rep); err != nil {
			fmt.Fprintln(os.Stderr, "events:", err)
			failed = true
		}
	}
	if run("flightrec") {
		if err := runFlightrec(*reps, &rep); err != nil {
			fmt.Fprintln(os.Stderr, "flightrec:", err)
			failed = true
		}
	}
	if *jsonOut && !failed {
		path, err := writeReport(&rep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "json:", err)
			failed = true
		} else {
			fmt.Printf("wrote %s (%d records)\n", path, len(rep.Records))
		}
	}
	if failed {
		os.Exit(1)
	}
}

// writeReport writes rep to BENCH_<n>.json for the first n not taken.
func writeReport(rep *report) (string, error) {
	rep.Date = time.Now().UTC().Format(time.RFC3339)
	rep.GoVersion = runtime.Version()
	rep.GoMaxProcs = runtime.GOMAXPROCS(0)
	rep.NumCPU = runtime.NumCPU()
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return "", err
	}
	for n := 1; ; n++ {
		path := fmt.Sprintf("BENCH_%d.json", n)
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if os.IsExist(err) {
			continue
		}
		if err != nil {
			return "", err
		}
		_, werr := f.Write(append(data, '\n'))
		cerr := f.Close()
		if werr != nil {
			return "", werr
		}
		return path, cerr
	}
}

func parseSizes(s string, def []int) []int {
	if s == "" {
		return def
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "bad size %q\n", part)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

func runFig6(sizes []int, txns int, rep *report) error {
	fmt.Printf("Fig. 6 — %d transactions, each changing the quantity of one item\n", txns)
	fmt.Printf("(changes to ONE partial differential; incremental should be ~flat in DB size)\n\n")
	rows, err := bench.RunFig6(sizes, txns)
	if err != nil {
		return err
	}
	fmt.Printf("%10s %10s %14s %14s %10s\n", "items", "txns", "naive ms", "incremental ms", "speedup")
	for _, r := range rows {
		fmt.Printf("%10d %10d %14.2f %14.2f %9.1fx\n",
			r.DBSize, r.Txns, ms(r.NaiveNs), ms(r.IncrNs), r.Speedup())
		ops := int64(r.Txns)
		rep.add(fmt.Sprintf("fig6/items=%d/naive", r.DBSize), r.NaiveNs/ops, r.NaiveTel)
		rep.add(fmt.Sprintf("fig6/items=%d/incremental", r.DBSize), r.IncrNs/ops, r.IncrTel)
	}
	fmt.Println()
	return nil
}

// add appends one measurement to the JSON report. A nil report
// discards measurements (table-only runs).
func (rep *report) add(name string, nsPerOp int64, tel bench.Telemetry) {
	if rep == nil {
		return
	}
	rep.Records = append(rep.Records, record{
		Name: name, NsPerOp: nsPerOp, Telemetry: tel, MeanDelta: tel.MeanDeltaSize(),
	})
}

func runFig7(sizes []int, rounds int, rep *report) error {
	fmt.Printf("Fig. 7 — %d transaction(s), each changing quantity, delivery_time and\n", rounds)
	fmt.Printf("consume_freq of ALL items (three partial differentials; naive wins by a\n")
	fmt.Printf("constant factor — the paper measured ~1.6)\n\n")
	rows, err := bench.RunFig7(sizes, rounds)
	if err != nil {
		return err
	}
	fmt.Printf("%10s %14s %14s %12s\n", "items", "naive ms", "incremental ms", "incr/naive")
	for _, r := range rows {
		fmt.Printf("%10d %14.2f %14.2f %11.2fx\n", r.N, ms(r.NaiveNs), ms(r.IncrNs), r.Ratio())
		ops := int64(rounds)
		rep.add(fmt.Sprintf("fig7/items=%d/naive", r.N), r.NaiveNs/ops, r.NaiveTel)
		rep.add(fmt.Sprintf("fig7/items=%d/incremental", r.N), r.IncrNs/ops, r.IncrTel)
	}
	fmt.Println()
	return nil
}

func runSharing(sizes []int, txns int) error {
	fmt.Printf("§7.1 node sharing — %d txns updating min_stock of one item: flat\n", txns)
	fmt.Printf("(fully expanded) vs bushy (shared threshold node) propagation\n\n")
	rows, err := bench.RunNodeSharing(sizes, txns)
	if err != nil {
		return err
	}
	fmt.Printf("%10s %12s %12s\n", "items", "flat ms", "bushy ms")
	for _, r := range rows {
		fmt.Printf("%10d %12.2f %12.2f\n", r.DBSize, ms(r.FlatNs), ms(r.BushyNs))
	}
	fmt.Println()
	return nil
}

func runHybrid(sizes []int, smallTxns, massiveTxns int, rep *report) error {
	fmt.Printf("Hybrid monitor (§8 future work) — mixed workload: %d small txns +\n", smallTxns)
	fmt.Printf("%d massive txns; the hybrid monitor should approach the best column\n\n", massiveTxns)
	rows, err := bench.RunHybrid(sizes, smallTxns, massiveTxns)
	if err != nil {
		return err
	}
	fmt.Printf("%10s %12s %14s %12s\n", "items", "naive ms", "incremental ms", "hybrid ms")
	for _, r := range rows {
		fmt.Printf("%10d %12.2f %14.2f %12.2f\n", r.N, ms(r.NaiveNs), ms(r.IncrNs), ms(r.HybridNs))
	}

	fmt.Printf("\nCounting maintenance & hybrid chooser — delete-skewed twins: standard\n")
	fmt.Printf("incremental (minus differentials + §7.2 probes) vs counting maintenance;\n")
	fmt.Printf("tinyextent runs the cost-based chooser against massive Δ waves and must\n")
	fmt.Printf("switch to recompute. All rows equivalence-gated (firings + snapshots)\n\n")
	crows, err := bench.RunCounting([]int{100, 400}, smallTxns)
	if err != nil {
		return err
	}
	fmt.Printf("%12s %8s %6s %10s %10s %10s %10s %9s %9s %8s\n",
		"workload", "items", "txns", "off ms", "on ms", "off scan", "on scan",
		"off zero", "on zero", "switches")
	for _, r := range crows {
		fmt.Printf("%12s %8d %6d %10.2f %10.2f %10d %10d %9d %9d %8d\n",
			r.Workload, r.DBSize, r.Txns, ms(r.OffNs), ms(r.OnNs),
			r.OffTel.TuplesScanned, r.OnTel.TuplesScanned, r.OffZero, r.OnZero, r.Switches)
		if rep != nil {
			ops := int64(r.Txns)
			rep.Records = append(rep.Records,
				record{Name: fmt.Sprintf("hybrid/%s/items=%d/off", r.Workload, r.DBSize),
					NsPerOp: r.OffNs / ops, Telemetry: r.OffTel, MeanDelta: r.OffTel.MeanDeltaSize(),
					ZeroEffect: r.OffZero, Orders: r.Orders},
				record{Name: fmt.Sprintf("hybrid/%s/items=%d/on", r.Workload, r.DBSize),
					NsPerOp: r.OnNs / ops, Telemetry: r.OnTel, MeanDelta: r.OnTel.MeanDeltaSize(),
					ZeroEffect: r.OnZero, Orders: r.Orders, Switches: r.Switches})
		}
	}
	fmt.Println()
	return nil
}

func runDurability(txns int, rep *report) error {
	fmt.Printf("Durability — %d single-update commits, write-ahead logged, per fsync policy\n", txns)
	fmt.Printf("(latency includes fsync-before-ack; 'none' leaves records in the page cache)\n\n")
	rows, err := bench.RunDurability(100, txns)
	if err != nil {
		return err
	}
	fmt.Printf("%10s %12s %14s %10s\n", "sync", "total ms", "µs/commit", "fsyncs")
	for _, r := range rows {
		fmt.Printf("%10s %12.2f %14.1f %10d\n",
			r.Policy, ms(r.Ns), float64(r.NsPerOp())/1e3, r.Fsyncs)
		if rep != nil {
			rep.Records = append(rep.Records, record{
				Name: fmt.Sprintf("durability/sync=%s", r.Policy), NsPerOp: r.NsPerOp(), Fsyncs: r.Fsyncs,
			})
		}
	}
	fmt.Println()
	return nil
}

func runProfile(reps int, rep *report) error {
	// The overhead A/B needs runs long enough (tens of ms) that the
	// median beats scheduler noise, so it uses its own workload sizes
	// rather than the fig6/fig7 flags.
	const n, txns, rounds = 100, 400, 5
	fmt.Printf("Propagation profiler — median-of-%d A/B: fig6/fig7 workloads with\n", reps)
	fmt.Printf("profiling off vs on (the profiler is meant to be cheap enough to keep on)\n\n")
	rows, err := bench.RunProfilerOverhead(n, txns, rounds, reps)
	if err != nil {
		return err
	}
	fmt.Printf("%10s %8s %6s %12s %12s %10s %8s %8s\n",
		"experiment", "items", "txns", "off ms", "on ms", "overhead", "execs", "zero")
	for _, r := range rows {
		fmt.Printf("%10s %8d %6d %12.2f %12.2f %9.1f%% %8d %8d\n",
			r.Experiment, r.DBSize, r.Txns, ms(r.OffNs), ms(r.OnNs), r.OverheadPct, r.Execs, r.ZeroEffect)
		if rep != nil {
			ops := int64(r.Txns)
			rep.Records = append(rep.Records,
				record{Name: fmt.Sprintf("profile/%s/items=%d/off", r.Experiment, r.DBSize), NsPerOp: r.OffNs / ops},
				record{Name: fmt.Sprintf("profile/%s/items=%d/on", r.Experiment, r.DBSize), NsPerOp: r.OnNs / ops,
					OverheadPct: r.OverheadPct, Execs: r.Execs, ZeroEffect: r.ZeroEffect})
		}
	}

	// Adaptive statistics: a skewed join where the static cost model
	// anchors on a massive Δ and probes a tiny derived function per
	// tuple; the observed cardinalities flip the plan.
	const adaptiveTxns = 10
	sizes := []int{100, 400, 1000}
	fmt.Printf("\nAdaptive statistics — skewed workload (%d txns updating attr of all\n", adaptiveTxns)
	fmt.Printf("items; pick() derived from %d rows): static cost model vs observed feedback\n\n", bench.SkewPopulated)
	arows, err := bench.RunAdaptive(sizes, adaptiveTxns, reps)
	if err != nil {
		return err
	}
	fmt.Printf("%10s %6s %12s %12s %10s\n", "items", "txns", "static ms", "adaptive ms", "speedup")
	for _, r := range arows {
		fmt.Printf("%10d %6d %12.2f %12.2f %9.1fx\n",
			r.DBSize, r.Txns, ms(r.StaticNs), ms(r.AdaptiveNs), r.Speedup)
		if rep != nil {
			ops := int64(r.Txns)
			rep.Records = append(rep.Records,
				record{Name: fmt.Sprintf("adaptive/items=%d/static", r.DBSize), NsPerOp: r.StaticNs / ops},
				record{Name: fmt.Sprintf("adaptive/items=%d/adaptive", r.DBSize), NsPerOp: r.AdaptiveNs / ops, Speedup: r.Speedup})
		}
	}
	fmt.Println()
	return nil
}

func runConcurrency(rep *report) error {
	const items = 100
	fmt.Printf("Concurrency — snapshot read scaling: 1 writer committing continuously +\n")
	fmt.Printf("R readers on MVCC snapshots for a fixed window (%d items)\n\n", items)
	rrows, err := bench.RunReadScaling(items, []int{1, 2, 4, 8}, time.Second)
	if err != nil {
		return err
	}
	fmt.Printf("%10s %14s %14s\n", "readers", "queries/s", "commits/s")
	for _, r := range rrows {
		fmt.Printf("%10d %14.0f %14.0f\n", r.Readers, r.QueriesPerSec(), r.CommitsPerSec())
		if rep != nil {
			rep.Records = append(rep.Records, record{
				Name:      fmt.Sprintf("concurrency/read/readers=%d", r.Readers),
				NsPerOp:   int64(r.Window) / max64(r.Queries, 1),
				OpsPerSec: r.QueriesPerSec(),
			})
		}
	}

	const txns = 1600
	fmt.Printf("\nGroup commit — %d durable commits split over W writers: serial\n", txns)
	fmt.Printf("sync=always baseline vs sync=group with shared batched fsyncs\n\n")
	wrows, err := bench.RunWriteScaling(items, txns, []int{1, 2, 4, 8})
	if err != nil {
		return err
	}
	fmt.Printf("%10s %8s %12s %8s %10s %10s %10s\n",
		"writers", "sync", "commits/s", "fsyncs", "p50 wait", "p95 wait", "p99 wait")
	for _, r := range wrows {
		fmt.Printf("%10d %8s %12.0f %8d %10s %10s %10s\n",
			r.Writers, r.Policy, r.CommitsPerSec(), r.Fsyncs, r.WaitP50, r.WaitP95, r.WaitP99)
		if rep != nil {
			rep.Records = append(rep.Records, record{
				Name:      fmt.Sprintf("concurrency/write/writers=%d/sync=%s", r.Writers, r.Policy),
				NsPerOp:   r.NsPerOp(),
				Fsyncs:    r.Fsyncs,
				OpsPerSec: r.CommitsPerSec(),
				WaitP50Us: float64(r.WaitP50) / 1e3,
				WaitP95Us: float64(r.WaitP95) / 1e3,
				WaitP99Us: float64(r.WaitP99) / 1e3,
			})
		}
	}
	fmt.Println()
	return nil
}

func runPrune(sizes []int, txns int, rep *report) error {
	fmt.Printf("Static pruning — whole-network Δ-effect analysis off vs on; twin\n")
	fmt.Printf("databases per workload, checked for identical firings and final state\n")
	fmt.Printf("(fig6/fig7 seal unused dimensions readonly; deadbranch carries an\n")
	fmt.Printf("OL302-dead disjunct over a shared view)\n\n")
	rows, err := bench.RunPrune(sizes, txns)
	if err != nil {
		return err
	}
	fmt.Printf("%12s %8s %10s %10s %9s %7s %7s %10s %10s %9s %9s\n",
		"workload", "items", "off ms", "on ms", "compiled", "sched", "pruned",
		"off diffs", "on diffs", "off zero", "on zero")
	for _, r := range rows {
		fmt.Printf("%12s %8d %10.2f %10.2f %9d %7d %7d %10d %10d %9d %9d\n",
			r.Workload, r.DBSize, ms(r.OffNs), ms(r.OnNs),
			r.Compiled, r.Scheduled, r.Pruned, r.OffDiffs, r.OnDiffs, r.OffZero, r.OnZero)
		if rep != nil {
			ops := int64(r.Txns)
			rep.Records = append(rep.Records,
				record{Name: fmt.Sprintf("prune/%s/items=%d/off", r.Workload, r.DBSize),
					NsPerOp: r.OffNs / ops, Execs: r.OffDiffs, ZeroEffect: r.OffZero,
					Compiled: r.Compiled, Scheduled: r.Compiled},
				record{Name: fmt.Sprintf("prune/%s/items=%d/on", r.Workload, r.DBSize),
					NsPerOp: r.OnNs / ops, Execs: r.OnDiffs, ZeroEffect: r.OnZero,
					Compiled: r.Compiled, Scheduled: r.Scheduled, Pruned: r.Pruned})
		}
	}
	fmt.Println()
	return nil
}

func runEvents(reps int, rep *report) error {
	// Like the profiler A/B, the overhead measurement needs runs long
	// enough that the median beats scheduler noise; the per-event cost
	// is far below the noise floor of short runs, so these are longer
	// than the profiler's.
	const n, txns, rounds = 100, 2000, 25
	fmt.Printf("Event bus — median-of-%d A/B: fig6/fig7 workloads with the bus\n", reps)
	fmt.Printf("disarmed vs armed with zero subscribers (the serving default)\n\n")
	rows, err := bench.RunEventOverhead(n, txns, rounds, reps)
	if err != nil {
		return err
	}
	fmt.Printf("%10s %8s %6s %12s %12s %10s %10s\n",
		"experiment", "items", "txns", "off ms", "armed ms", "overhead", "events")
	for _, r := range rows {
		fmt.Printf("%10s %8d %6d %12.2f %12.2f %9.1f%% %10d\n",
			r.Experiment, r.DBSize, r.Txns, ms(r.OffNs), ms(r.OnNs), r.OverheadPct, r.Published)
		if rep != nil {
			ops := int64(r.Txns)
			rep.Records = append(rep.Records,
				record{Name: fmt.Sprintf("events/%s/items=%d/off", r.Experiment, r.DBSize), NsPerOp: r.OffNs / ops},
				record{Name: fmt.Sprintf("events/%s/items=%d/armed", r.Experiment, r.DBSize), NsPerOp: r.OnNs / ops,
					OverheadPct: r.OverheadPct, Published: r.Published})
		}
	}

	subCounts := []int{1, 4, 16}
	fmt.Printf("\nSubscriber fan-out — fig6 workload (%d items, %d txns) with S\n", n, txns)
	fmt.Printf("concurrent subscribers draining the firehose; every published event is\n")
	fmt.Printf("either delivered to or explicitly dropped for each subscriber\n\n")
	frows, err := bench.RunEventFanout(n, txns, subCounts)
	if err != nil {
		return err
	}
	fmt.Printf("%12s %10s %12s %12s %10s %14s\n",
		"subscribers", "wall ms", "published", "delivered", "dropped", "delivered/s")
	for _, r := range frows {
		fmt.Printf("%12d %10.2f %12d %12d %10d %14.0f\n",
			r.Subscribers, ms(r.Ns), r.Published, r.Delivered, r.Dropped, r.DeliveredPerSec)
		if rep != nil {
			rep.Records = append(rep.Records, record{
				Name:      fmt.Sprintf("events/fanout/subs=%d", r.Subscribers),
				NsPerOp:   r.Ns / int64(r.Txns),
				OpsPerSec: r.DeliveredPerSec,
				Published: r.Published, Delivered: r.Delivered, Dropped: r.Dropped,
			})
		}
	}
	fmt.Println()
	return nil
}

func runFlightrec(reps int, rep *report) error {
	// Same shape and run lengths as the event-bus A/B: the recorder's
	// per-record cost (one atomic load disarmed, a short mutexed ring
	// push armed) sits far below the noise floor of short runs.
	const n, txns, rounds = 100, 2000, 25
	fmt.Printf("Flight recorder — median-of-%d A/B: fig6/fig7 workloads with the\n", reps)
	fmt.Printf("recorder disarmed vs armed in window-only mode (rings, no bundles)\n\n")
	rows, err := bench.RunFlightrecOverhead(n, txns, rounds, reps)
	if err != nil {
		return err
	}
	fmt.Printf("%10s %8s %6s %12s %12s %10s %9s %7s\n",
		"experiment", "items", "txns", "off ms", "armed ms", "overhead", "commits", "waves")
	for _, r := range rows {
		fmt.Printf("%10s %8d %6d %12.2f %12.2f %9.1f%% %9d %7d\n",
			r.Experiment, r.DBSize, r.Txns, ms(r.OffNs), ms(r.OnNs), r.OverheadPct, r.Commits, r.Waves)
		if rep != nil {
			ops := int64(r.Txns)
			rep.Records = append(rep.Records,
				record{Name: fmt.Sprintf("flightrec/%s/items=%d/off", r.Experiment, r.DBSize), NsPerOp: r.OffNs / ops},
				record{Name: fmt.Sprintf("flightrec/%s/items=%d/armed", r.Experiment, r.DBSize), NsPerOp: r.OnNs / ops,
					OverheadPct: r.OverheadPct})
		}
	}
	fmt.Println()
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }
