// Command bench regenerates the paper's performance figures (§6) and
// the DESIGN.md ablations, printing one table per experiment:
//
//	bench -exp fig6     # fig. 6: 100 txns × 1 quantity update, size sweep
//	bench -exp fig7     # fig. 7: 1 txn updating 3 influents of all items
//	bench -exp sharing  # §7.1 node sharing ablation
//	bench -exp hybrid   # §8 hybrid monitor on a mixed workload
//	bench -exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"partdiff/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig6, fig7, sharing, or all")
	sizesFlag := flag.String("sizes", "", "comma-separated database sizes (defaults per experiment)")
	txns := flag.Int("txns", 100, "transactions per measurement (fig6/sharing)")
	rounds := flag.Int("rounds", 3, "massive transactions per measurement (fig7)")
	flag.Parse()

	run := func(name string) bool { return *exp == "all" || *exp == name }
	var failed bool
	if run("fig6") {
		sizes := parseSizes(*sizesFlag, []int{1, 10, 100, 1000, 10000})
		if err := runFig6(sizes, *txns); err != nil {
			fmt.Fprintln(os.Stderr, "fig6:", err)
			failed = true
		}
	}
	if run("fig7") {
		sizes := parseSizes(*sizesFlag, []int{10, 100, 1000})
		if err := runFig7(sizes, *rounds); err != nil {
			fmt.Fprintln(os.Stderr, "fig7:", err)
			failed = true
		}
	}
	if run("sharing") {
		sizes := parseSizes(*sizesFlag, []int{100, 1000})
		if err := runSharing(sizes, *txns); err != nil {
			fmt.Fprintln(os.Stderr, "sharing:", err)
			failed = true
		}
	}
	if run("hybrid") {
		sizes := parseSizes(*sizesFlag, []int{100, 1000})
		if err := runHybrid(sizes, *txns, *rounds); err != nil {
			fmt.Fprintln(os.Stderr, "hybrid:", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func parseSizes(s string, def []int) []int {
	if s == "" {
		return def
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "bad size %q\n", part)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

func runFig6(sizes []int, txns int) error {
	fmt.Printf("Fig. 6 — %d transactions, each changing the quantity of one item\n", txns)
	fmt.Printf("(changes to ONE partial differential; incremental should be ~flat in DB size)\n\n")
	rows, err := bench.RunFig6(sizes, txns)
	if err != nil {
		return err
	}
	fmt.Printf("%10s %10s %14s %14s %10s\n", "items", "txns", "naive ms", "incremental ms", "speedup")
	for _, r := range rows {
		fmt.Printf("%10d %10d %14.2f %14.2f %9.1fx\n",
			r.DBSize, r.Txns, ms(r.NaiveNs), ms(r.IncrNs), r.Speedup())
	}
	fmt.Println()
	return nil
}

func runFig7(sizes []int, rounds int) error {
	fmt.Printf("Fig. 7 — %d transaction(s), each changing quantity, delivery_time and\n", rounds)
	fmt.Printf("consume_freq of ALL items (three partial differentials; naive wins by a\n")
	fmt.Printf("constant factor — the paper measured ~1.6)\n\n")
	rows, err := bench.RunFig7(sizes, rounds)
	if err != nil {
		return err
	}
	fmt.Printf("%10s %14s %14s %12s\n", "items", "naive ms", "incremental ms", "incr/naive")
	for _, r := range rows {
		fmt.Printf("%10d %14.2f %14.2f %11.2fx\n", r.N, ms(r.NaiveNs), ms(r.IncrNs), r.Ratio())
	}
	fmt.Println()
	return nil
}

func runSharing(sizes []int, txns int) error {
	fmt.Printf("§7.1 node sharing — %d txns updating min_stock of one item: flat\n", txns)
	fmt.Printf("(fully expanded) vs bushy (shared threshold node) propagation\n\n")
	rows, err := bench.RunNodeSharing(sizes, txns)
	if err != nil {
		return err
	}
	fmt.Printf("%10s %12s %12s\n", "items", "flat ms", "bushy ms")
	for _, r := range rows {
		fmt.Printf("%10d %12.2f %12.2f\n", r.DBSize, ms(r.FlatNs), ms(r.BushyNs))
	}
	fmt.Println()
	return nil
}

func runHybrid(sizes []int, smallTxns, massiveTxns int) error {
	fmt.Printf("Hybrid monitor (§8 future work) — mixed workload: %d small txns +\n", smallTxns)
	fmt.Printf("%d massive txns; the hybrid monitor should approach the best column\n\n", massiveTxns)
	rows, err := bench.RunHybrid(sizes, smallTxns, massiveTxns)
	if err != nil {
		return err
	}
	fmt.Printf("%10s %12s %14s %12s\n", "items", "naive ms", "incremental ms", "hybrid ms")
	for _, r := range rows {
		fmt.Printf("%10d %12.2f %14.2f %12.2f\n", r.N, ms(r.NaiveNs), ms(r.IncrNs), ms(r.HybridNs))
	}
	fmt.Println()
	return nil
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }
