package main

import (
	"os"
	"strings"
	"testing"
)

// capture redirects stdout around fn.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := fn()
	w.Close()
	os.Stdout = old
	if ferr != nil {
		t.Fatal(ferr)
	}
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	return string(buf[:n])
}

func TestRunFig6Table(t *testing.T) {
	out := capture(t, func() error { return runFig6([]int{4, 16}, 4, nil) })
	if !strings.Contains(out, "Fig. 6") || !strings.Contains(out, "speedup") {
		t.Errorf("output:\n%s", out)
	}
	if !strings.Contains(out, "        16") {
		t.Errorf("missing size row:\n%s", out)
	}
}

func TestRunFig7Table(t *testing.T) {
	out := capture(t, func() error { return runFig7([]int{6}, 1, nil) })
	if !strings.Contains(out, "Fig. 7") || !strings.Contains(out, "incr/naive") {
		t.Errorf("output:\n%s", out)
	}
}

func TestRunSharingTable(t *testing.T) {
	out := capture(t, func() error { return runSharing([]int{6}, 3) })
	if !strings.Contains(out, "node sharing") || !strings.Contains(out, "bushy ms") {
		t.Errorf("output:\n%s", out)
	}
}

func TestRunHybridTable(t *testing.T) {
	out := capture(t, func() error { return runHybrid([]int{6}, 40, 1, nil) })
	if !strings.Contains(out, "Hybrid monitor") || !strings.Contains(out, "hybrid ms") {
		t.Errorf("output:\n%s", out)
	}
}

func TestParseSizes(t *testing.T) {
	if got := parseSizes("", []int{1, 2}); len(got) != 2 {
		t.Error("default sizes")
	}
	got := parseSizes("3, 14,200", nil)
	if len(got) != 3 || got[0] != 3 || got[1] != 14 || got[2] != 200 {
		t.Errorf("parseSizes=%v", got)
	}
}

func TestMs(t *testing.T) {
	if ms(2_500_000) != 2.5 {
		t.Errorf("ms=%v", ms(2_500_000))
	}
}
