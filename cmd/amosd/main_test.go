package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"partdiff"
	"partdiff/internal/obs"
)

const smokeSchema = `
create type item;
create function quantity(item) -> integer;
create function threshold(item) -> integer;
create rule low() as
    when for each item i where quantity(i) < threshold(i)
    do log_order(i);
create item instances :i1;
set threshold(:i1) = 10;
activate low();
`

// TestAmosdSmoke is the end-to-end smoke: start the server, execute a
// schema, subscribe over SSE, commit an update that fires a rule,
// observe the firing on the stream, query the state, and shut down
// cleanly on SIGTERM.
func TestAmosdSmoke(t *testing.T) {
	var stderr bytes.Buffer
	ready := make(chan string, 1)
	code := make(chan int, 1)
	flightDir := t.TempDir()
	go func() {
		code <- run([]string{"-addr", "127.0.0.1:0", "-slow-commit", "24h", "-flightrec", flightDir}, &stderr, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case <-time.After(10 * time.Second):
		t.Fatalf("server did not come up; stderr:\n%s", stderr.String())
	}

	post := func(body string) apiResponse {
		t.Helper()
		resp, err := http.Post(base+"/v1/exec", "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out apiResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("exec status %d: %s", resp.StatusCode, out.Error)
		}
		return out
	}

	// amosd registers no foreign procedures, so the rule action uses the
	// builtin print.
	post(strings.ReplaceAll(smokeSchema, "log_order", "print"))

	// Health before traffic.
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d", path, resp.StatusCode)
		}
	}

	// Subscribe to the firehose before committing the triggering write.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/events?types=rule_firing,system", nil)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type = %q", ct)
	}

	// Fire the rule: quantity below threshold.
	post("set quantity(:i1) = 3;")

	// One rule_firing frame (and, thanks to -slow-commit being
	// impossible to exceed, no spurious system frames before it).
	br := bufio.NewReader(stream.Body)
	var firing *obs.Event
	deadline := time.After(10 * time.Second)
	frames := make(chan obs.Event, 16)
	go func() {
		for {
			e, err := readSSEEvent(br)
			if err != nil {
				close(frames)
				return
			}
			frames <- e
		}
	}()
waitFiring:
	for {
		select {
		case e, ok := <-frames:
			if !ok {
				t.Fatal("event stream closed before a firing arrived")
			}
			if e.Type == obs.EventRuleFiring {
				firing = &e
				break waitFiring
			}
		case <-deadline:
			t.Fatal("no rule_firing event within 10s")
		}
	}
	if firing.Rule != "low" || firing.CommitSeq == 0 {
		t.Fatalf("firing event = %+v", firing)
	}

	// Snapshot query through /v1/query.
	resp, err := http.Get(base + "/v1/query?q=" + "select%20quantity(i)%20for%20each%20item%20i%3B")
	if err != nil {
		t.Fatal(err)
	}
	var qr apiResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(qr.Results) != 1 || len(qr.Results[0].Rows) != 1 || qr.Results[0].Rows[0][0] != "3" {
		t.Fatalf("query response = %+v (err %q)", qr.Results, qr.Error)
	}

	// Metrics include the event accounting.
	resp, err = http.Get(base + "/metrics?prefix=events")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "partdiff_events_published_total") {
		t.Fatalf("metrics missing event counters:\n%s", body)
	}

	// The flight recorder serves an on-demand diagnostics bundle whose
	// window covers the work above, and lists it on disk.
	resp, err = http.Get(base + "/debug/bundle")
	if err != nil {
		t.Fatal(err)
	}
	var bundle obs.Bundle
	if err := json.NewDecoder(resp.Body).Decode(&bundle); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if bundle.Format != obs.BundleFormat || len(bundle.Commits) == 0 || len(bundle.Metrics) == 0 {
		t.Fatalf("/debug/bundle = manifest %+v, %d commits, %d metrics",
			bundle.Manifest, len(bundle.Commits), len(bundle.Metrics))
	}
	if !strings.HasPrefix(bundle.Path, flightDir) {
		t.Fatalf("bundle path %q not under -flightrec dir %q", bundle.Path, flightDir)
	}
	resp, err = http.Get(base + "/debug/bundles/")
	if err != nil {
		t.Fatal(err)
	}
	var infos []obs.BundleInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 1 {
		t.Fatalf("/debug/bundles/ = %+v, want the one bundle", infos)
	}

	// Clean shutdown on SIGTERM.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case c := <-code:
		if c != 0 {
			t.Fatalf("exit code %d; stderr:\n%s", c, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("server did not shut down; stderr:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "amosd stopped") {
		t.Fatalf("no clean shutdown message:\n%s", stderr.String())
	}
}

// readSSEEvent parses SSE frames until a data-bearing one arrives,
// skipping heartbeats.
func readSSEEvent(br *bufio.Reader) (obs.Event, error) {
	var data string
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return obs.Event{}, err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "data: "):
			data = line[6:]
		case line == "" && data != "":
			var e obs.Event
			if err := json.Unmarshal([]byte(data), &e); err != nil {
				return obs.Event{}, err
			}
			return e, nil
		}
	}
}

func TestExecRejectsNonPost(t *testing.T) {
	db := partdiff.Open()
	mux := newMux(db)
	req, _ := http.NewRequest(http.MethodGet, "/v1/exec", nil)
	rec := newRecorder()
	mux.ServeHTTP(rec, req)
	if rec.status != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/exec = %d, want 405", rec.status)
	}
}

func TestExecJSONBody(t *testing.T) {
	db := partdiff.Open()
	mux := newMux(db)
	req, _ := http.NewRequest(http.MethodPost, "/v1/exec",
		strings.NewReader(`{"src": "create type item;"}`))
	req.Header.Set("Content-Type", "application/json")
	rec := newRecorder()
	mux.ServeHTTP(rec, req)
	if rec.status != http.StatusOK {
		t.Fatalf("status %d: %s", rec.status, rec.body.String())
	}
	var out apiResponse
	if err := json.Unmarshal(rec.body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 || out.Error != "" {
		t.Fatalf("response = %+v", out)
	}
}

func TestExecErrorSurfacesAsJSON(t *testing.T) {
	db := partdiff.Open()
	mux := newMux(db)
	req, _ := http.NewRequest(http.MethodPost, "/v1/exec", strings.NewReader("not amosql;"))
	rec := newRecorder()
	mux.ServeHTTP(rec, req)
	if rec.status != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", rec.status)
	}
	var out apiResponse
	if err := json.Unmarshal(rec.body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Error == "" {
		t.Fatal("error missing from response")
	}
}

// recorder is a minimal ResponseWriter (httptest.NewRecorder works too,
// but this keeps the status default explicit).
type recorder struct {
	status int
	hdr    http.Header
	body   bytes.Buffer
}

func newRecorder() *recorder { return &recorder{status: http.StatusOK, hdr: http.Header{}} }

func (r *recorder) Header() http.Header         { return r.hdr }
func (r *recorder) WriteHeader(code int)        { r.status = code }
func (r *recorder) Write(b []byte) (int, error) { return r.body.Write(b) }
