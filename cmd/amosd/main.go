// Command amosd serves a partdiff active database over HTTP: statement
// execution, snapshot queries, the live event stream, and the full
// monitoring surface.
//
//	POST /v1/exec     execute AMOSQL statements (body: source text, or
//	                  JSON {"src": "..."}); responds with one JSON result
//	                  per statement
//	GET  /v1/query    run a single select (?q=...) against an MVCC
//	                  snapshot, without waiting on writers
//	GET  /v1/events   Server-Sent Events stream of structured events
//	                  (?types=rule_firing,txn filters; Last-Event-ID or
//	                  ?last_event_id resumes from the event ring)
//	GET  /healthz     liveness (503 once the database is poisoned)
//	GET  /readyz      readiness (503 while recovering or with a
//	                  poisoned write-ahead log)
//	GET  /metrics     Prometheus text format (?prefix= filters)
//	GET  /debug/bundle    on-demand flight-recorder diagnostics bundle (JSON)
//	GET  /debug/bundles/  bundles written to disk: JSON list, /<name>/<file>
//	GET  /debug/...   expvar JSON and Go runtime profiles
//
// With -data dir the database is durable: it recovers from dir before
// the listener opens (readiness reflects this) and logs every committed
// transaction under the -sync policy. -slow-commit d emits a system
// event with per-phase timings for commits slower than d. -flightrec
// dir arms the always-on flight recorder: anomaly triggers freeze its
// in-memory rings and write self-contained diagnostics bundles to dir.
//
// Quick start:
//
//	amosd -addr localhost:8080 &
//	curl -N localhost:8080/v1/events &
//	curl -d 'create type item;' localhost:8080/v1/exec
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"partdiff"
	"partdiff/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr, nil))
}

// run is the testable main: it parses args, opens the database, serves
// until the process is signalled, and returns the exit code. When ready
// is non-nil, the bound address is sent on it once the listener is
// accepting (tests use this with -addr 127.0.0.1:0).
func run(args []string, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("amosd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "localhost:8080", "listen address")
	dataDir := fs.String("data", "", "durable data directory (recover on start, log every commit)")
	modeFlag := fs.String("mode", "incremental", "monitoring mode: incremental, naive, hybrid")
	syncFlag := fs.String("sync", "always", "WAL fsync policy with -data: always, group, none")
	slow := fs.Duration("slow-commit", 0, "emit a system event for commits slower than this (0 disables)")
	flightDir := fs.String("flightrec", "", "arm the flight recorder; diagnostics bundles land in this directory")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var mode partdiff.Mode
	switch *modeFlag {
	case "incremental":
		mode = partdiff.Incremental
	case "naive":
		mode = partdiff.Naive
	case "hybrid":
		mode = partdiff.Hybrid
	default:
		fmt.Fprintf(stderr, "unknown mode %q\n", *modeFlag)
		return 2
	}
	opts := []partdiff.Option{partdiff.WithMode(mode)}
	if *slow > 0 {
		opts = append(opts, partdiff.WithSlowCommitThreshold(*slow))
	}
	if *flightDir != "" {
		opts = append(opts, partdiff.WithFlightRecorder(*flightDir))
	}

	var db *partdiff.DB
	if *dataDir != "" {
		var policy partdiff.SyncPolicy
		switch *syncFlag {
		case "always":
			policy = partdiff.SyncAlways
		case "group":
			policy = partdiff.SyncGrouped
		case "none":
			policy = partdiff.SyncNone
		default:
			fmt.Fprintf(stderr, "unknown sync policy %q\n", *syncFlag)
			return 2
		}
		opts = append(opts, partdiff.WithSyncPolicy(policy))
		var err error
		if db, err = partdiff.OpenDir(*dataDir, opts...); err != nil {
			fmt.Fprintln(stderr, "open:", err)
			return 1
		}
	} else {
		db = partdiff.Open(opts...)
	}
	defer db.Close()

	// Arm the bus before the listener opens so the event ring records
	// history from the first commit — a subscriber connecting later can
	// still resume across its own disconnects.
	db.EventBus().Arm()

	// Register the shutdown signals before announcing readiness, so a
	// signal sent the moment the address is known is never fatal.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "listen:", err)
		return 1
	}
	srv := &http.Server{Handler: newMux(db)}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	fmt.Fprintf(stderr, "amosd serving on http://%s (%s monitoring)\n", ln.Addr(), mode)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case <-ctx.Done():
	case err := <-done:
		fmt.Fprintln(stderr, "serve:", err)
		return 1
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		srv.Close()
	}
	fmt.Fprintln(stderr, "amosd stopped")
	return 0
}

// newMux builds the full serving surface: the /v1 API plus the
// monitoring handler (metrics, health, pprof) as the fallback.
func newMux(db *partdiff.DB) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/exec", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			httpError(w, http.StatusMethodNotAllowed, "POST required")
			return
		}
		src, err := readSource(req)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		results, err := db.ExecContext(req.Context(), src)
		writeResults(w, results, err)
	})
	mux.HandleFunc("/v1/query", func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query().Get("q")
		if q == "" {
			httpError(w, http.StatusBadRequest, "missing ?q= query text")
			return
		}
		r, err := db.QueryContext(req.Context(), q)
		if err != nil {
			writeResults(w, nil, err)
			return
		}
		writeResults(w, []partdiff.Result{*r}, nil)
	})
	mux.Handle("/v1/events", obs.SSEHandler(db.EventBus()))
	mux.Handle("/", db.MonitorHandler())
	return mux
}

// apiResult is the JSON rendering of one statement result.
type apiResult struct {
	Columns []string   `json:"columns,omitempty"`
	Rows    [][]string `json:"rows,omitempty"`
	Message string     `json:"message,omitempty"`
}

// apiResponse is the /v1/exec and /v1/query response body.
type apiResponse struct {
	Results []apiResult `json:"results,omitempty"`
	Error   string      `json:"error,omitempty"`
}

// readSource extracts the AMOSQL source from an exec request: either a
// JSON {"src": "..."} document or the raw body text.
func readSource(req *http.Request) (string, error) {
	body, err := io.ReadAll(io.LimitReader(req.Body, 1<<20))
	if err != nil {
		return "", err
	}
	if ct := req.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		var doc struct {
			Src string `json:"src"`
		}
		if err := json.Unmarshal(body, &doc); err != nil {
			return "", fmt.Errorf("bad JSON body: %w", err)
		}
		return doc.Src, nil
	}
	return string(body), nil
}

// writeResults renders statement results (and/or an execution error) as
// JSON. Partial results before an error are included alongside it.
func writeResults(w http.ResponseWriter, results []partdiff.Result, err error) {
	resp := apiResponse{}
	for _, r := range results {
		ar := apiResult{Columns: r.Columns, Message: r.Message}
		for _, t := range r.Tuples {
			row := make([]string, len(t))
			for i, v := range t {
				row[i] = v.String()
			}
			ar.Rows = append(ar.Rows, row)
		}
		resp.Results = append(resp.Results, ar)
	}
	w.Header().Set("Content-Type", "application/json")
	if err != nil {
		resp.Error = err.Error()
		w.WriteHeader(http.StatusUnprocessableEntity)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(apiResponse{Error: msg})
}
