// Command faultpointcheck runs the repo-local fault point vet check
// (internal/lint/faultpointcheck) over a module tree and prints its
// findings, one per line, vet style:
//
//	faultpointcheck [-root dir]
//
// It exits 1 if any finding is reported and 2 on usage or parse errors,
// so it can gate CI alongside go vet.
package main

import (
	"flag"
	"fmt"
	"os"

	"partdiff/internal/lint/faultpointcheck"
)

func main() {
	root := flag.String("root", ".", "module root to check")
	flag.Parse()

	findings, err := faultpointcheck.Check(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
