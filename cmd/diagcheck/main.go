// Command diagcheck runs the diagnostic-code hygiene check over a
// module tree and prints its findings, one per line. It exits 1 when
// findings exist and 2 on analysis errors, mirroring go vet, so CI can
// gate on it.
package main

import (
	"flag"
	"fmt"
	"os"

	"partdiff/internal/lint/diagcheck"
)

func main() {
	root := flag.String("root", ".", "module root to analyze")
	flag.Parse()

	findings, err := diagcheck.Check(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", diagcheck.Name, err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
