// Command amos is an interactive AMOSQL shell over the partdiff active
// DBMS. Statements end with ';' and may span lines. Meta commands:
//
//	\mode                 show the monitoring mode
//	\stats                show monitor statistics
//	\explain              show why rules triggered in the last commit
//	\net                  show the propagation network levels
//	\quit
//
// A demo `order` procedure is predefined (it prints the order). Run a
// script: amos -f script.amosql
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"partdiff"
)

func main() {
	modeFlag := flag.String("mode", "incremental", "monitoring mode: incremental, naive, hybrid")
	file := flag.String("f", "", "execute a script file and exit")
	flag.Parse()

	var mode partdiff.Mode
	switch *modeFlag {
	case "incremental":
		mode = partdiff.Incremental
	case "naive":
		mode = partdiff.Naive
	case "hybrid":
		mode = partdiff.Hybrid
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *modeFlag)
		os.Exit(2)
	}
	db := partdiff.Open(partdiff.WithMode(mode))
	db.SetOutput(os.Stdout)
	db.RegisterProcedure("order", func(args []partdiff.Value) error {
		parts := make([]string, len(args))
		for i, v := range args {
			parts[i] = v.String()
		}
		fmt.Printf(">> order(%s)\n", strings.Join(parts, ", "))
		return nil
	})

	if *file != "" {
		src, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := exec(db, string(src)); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("amos shell (%s monitoring) — statements end with ';', \\quit to exit\n", mode)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "amos> "
	for {
		fmt.Print(prompt)
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if meta(db, trimmed) {
				return
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			prompt = "  ... "
			continue
		}
		src := buf.String()
		buf.Reset()
		prompt = "amos> "
		if err := exec(db, src); err != nil {
			fmt.Println("error:", err)
		}
	}
}

// meta handles backslash commands; it reports whether to quit.
func meta(db *partdiff.DB, cmd string) bool {
	switch strings.Fields(cmd)[0] {
	case "\\quit", "\\q":
		return true
	case "\\stats":
		s := db.Stats()
		fmt.Printf("propagations=%d differentials=%d naive-recomputations=%d triggered=%d actions=%d rounds=%d\n",
			s.Propagations, s.DifferentialsExecuted, s.NaiveRecomputations,
			s.TriggeredInstances, s.ActionsExecuted, s.CheckRounds)
	case "\\mode":
		fmt.Println(db.Session().Rules().Mode())
	case "\\explain":
		for _, e := range db.Explanations() {
			fmt.Printf("rule %s (round %d) triggered for %v\n", e.Rule, e.Round, e.Instances)
			for _, te := range e.Entries {
				fmt.Printf("  %s produced %d tuple(s)\n", te.Differential, te.Produced)
			}
		}
	case "\\net":
		net := db.Session().Rules().Network()
		if net == nil {
			fmt.Println("no active network (no activated rules)")
			break
		}
		for lvl, preds := range net.Levels() {
			fmt.Printf("level %d: %s\n", lvl, strings.Join(preds, ", "))
		}
	case "\\debug":
		words := strings.Fields(cmd)
		if len(words) > 1 && words[1] == "off" {
			db.SetDebug(nil)
			fmt.Println("check-phase tracing off")
		} else {
			db.SetDebug(os.Stdout)
			fmt.Println("check-phase tracing on (\\debug off to disable)")
		}
	case "\\dot":
		net := db.Session().Rules().Network()
		if net == nil {
			fmt.Println("no active network (no activated rules)")
			break
		}
		fmt.Print(net.Dot())
	default:
		fmt.Println("unknown meta command; try \\stats \\explain \\net \\dot \\debug \\mode \\quit")
	}
	return false
}

func exec(db *partdiff.DB, src string) error {
	results, err := db.Exec(src)
	for _, r := range results {
		if r.Columns != nil {
			fmt.Println(strings.Join(r.Columns, " | "))
			for _, t := range r.Tuples {
				cells := make([]string, len(t))
				for i, v := range t {
					cells[i] = v.String()
				}
				fmt.Println(strings.Join(cells, " | "))
			}
			fmt.Printf("(%d row(s))\n", len(r.Tuples))
		} else if r.Message != "" {
			fmt.Println(r.Message)
		}
	}
	return err
}
