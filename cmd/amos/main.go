// Command amos is an interactive AMOSQL shell over the partdiff active
// DBMS. Statements end with ';' and may span lines. Meta commands:
//
//	\mode                 show the monitoring mode
//	\stats                show monitor statistics
//	\metrics [prefix]     dump metrics in Prometheus text format (prefix filters,
//	                      e.g. \metrics propnet)
//	\profile on|off       turn the propagation profiler on or off
//	\profile report [k]   report the k most expensive differentials (default 10)
//	\hybrid on|off        counting maintenance + cost-based hybrid propagation
//	\hybrid report        per-view strategies, counts and recent decisions
//	\trace file.json      start a structured trace capture (Chrome trace_event)
//	\trace stop           stop the capture and write the JSON file
//	\explain              show why rules triggered in the last commit
//	\net                  show the propagation network levels
//	\dot [heat]           Graphviz export (heat: profiler-annotated costs)
//	\lint                 re-run the static analyzer over all definitions
//	\flightrec on [dir]   arm the flight recorder (bundles land in dir, or a
//	                      partdiff-bundles directory under the system temp dir)
//	\flightrec off        disarm the recorder (rings and bundles kept)
//	\flightrec dump       write an on-demand diagnostics bundle now
//	\flightrec report     recorder status: triggers seen, bundles written
//	\checkpoint           snapshot the data directory and truncate the log (-data only)
//	\save dir             write a standalone snapshot of the database into dir
//	\subscribe [types]    stream live events to the terminal (comma-separated
//	                      filter, e.g. \subscribe rule_firing,txn); \subscribe stop
//	\quit
//
// A demo `order` procedure is predefined (it prints the order). Run a
// script: amos -f script.amosql. Statically analyze a script without
// running its rule actions: amos -lint script.amosql (exits 1 if any
// error-severity diagnostics are reported).
//
// With -data dir the database is durable: it recovers from dir on
// startup (snapshot + write-ahead log replay) and logs every committed
// transaction before acknowledging it. -sync selects the fsync policy
// (always, group, none — none survives a process kill but not an OS
// crash).
//
// With -monitor addr (e.g. -monitor localhost:6060) the shell serves a
// live monitoring endpoint: Prometheus text at /metrics, expvar JSON at
// /debug/vars, and Go runtime profiles at /debug/pprof/ (usable with
// `go tool pprof http://addr/debug/pprof/profile`).
//
// With -flightrec dir the flight recorder is armed from startup:
// in-memory rings capture recent waves, commits, fsyncs and events, and
// anomaly triggers (slow commits, fsync stalls, corruption, …) write
// self-contained diagnostics bundles into dir. \flightrec controls it
// at runtime.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"partdiff"
	"partdiff/internal/obs"
)

func main() {
	modeFlag := flag.String("mode", "incremental", "monitoring mode: incremental, naive, hybrid")
	file := flag.String("f", "", "execute a script file and exit")
	lintFile := flag.String("lint", "", "statically analyze a script file and exit (actions are not run)")
	monitor := flag.String("monitor", "", "serve live metrics over HTTP on this address (e.g. localhost:6060)")
	dataDir := flag.String("data", "", "durable data directory (recover on start, write-ahead log every commit)")
	syncFlag := flag.String("sync", "always", "WAL fsync policy with -data: always, group, none")
	flightDir := flag.String("flightrec", "", "arm the flight recorder; diagnostics bundles land in this directory")
	flag.Parse()

	var mode partdiff.Mode
	switch *modeFlag {
	case "incremental":
		mode = partdiff.Incremental
	case "naive":
		mode = partdiff.Naive
	case "hybrid":
		mode = partdiff.Hybrid
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *modeFlag)
		os.Exit(2)
	}
	if *lintFile != "" {
		os.Exit(lint(mode, *lintFile))
	}

	var db *partdiff.DB
	if *dataDir != "" {
		var policy partdiff.SyncPolicy
		switch *syncFlag {
		case "always":
			policy = partdiff.SyncAlways
		case "group":
			policy = partdiff.SyncGrouped
		case "none":
			policy = partdiff.SyncNone
		default:
			fmt.Fprintf(os.Stderr, "unknown sync policy %q\n", *syncFlag)
			os.Exit(2)
		}
		var err error
		db, err = partdiff.OpenDir(*dataDir,
			partdiff.WithMode(mode),
			partdiff.WithSyncPolicy(policy),
			partdiff.WithProcedure("order", orderProc))
		if err != nil {
			fmt.Fprintln(os.Stderr, "open:", err)
			os.Exit(1)
		}
		defer db.Close()
	} else {
		db = partdiff.Open(partdiff.WithMode(mode))
		db.RegisterProcedure("order", orderProc)
	}
	db.SetOutput(os.Stdout)
	if *flightDir != "" {
		rec := db.FlightRecorder()
		rec.SetDir(*flightDir)
		rec.Arm()
		fmt.Fprintf(os.Stderr, "flight recorder armed, bundles in %s\n", *flightDir)
	}
	if *monitor != "" {
		srv, err := db.ServeMonitor(*monitor)
		if err != nil {
			fmt.Fprintln(os.Stderr, "monitor:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "monitoring on http://%s/metrics\n", srv.Addr())
	}
	if *file != "" {
		src, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := exec(db, string(src)); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("amos shell (%s monitoring) — statements end with ';', \\quit to exit\n", mode)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "amos> "
	for {
		fmt.Print(prompt)
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if meta(db, trimmed) {
				return
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			prompt = "  ... "
			continue
		}
		src := buf.String()
		buf.Reset()
		prompt = "amos> "
		if err := exec(db, src); err != nil {
			fmt.Println("error:", err)
		}
	}
}

// orderProc is the demo `order` procedure (it prints the order).
func orderProc(args []partdiff.Value) error {
	parts := make([]string, len(args))
	for i, v := range args {
		parts[i] = v.String()
	}
	fmt.Printf(">> order(%s)\n", strings.Join(parts, ", "))
	return nil
}

// activeTrace is the shell's in-progress \trace capture and the file it
// will be written to on \trace stop.
var (
	activeTrace     *partdiff.Trace
	activeTracePath string
)

// activeSub is the shell's live \subscribe stream; activeSubDone closes
// when its printer goroutine has drained.
var (
	activeSub     *partdiff.Subscription
	activeSubDone chan struct{}
)

// meta handles backslash commands; it reports whether to quit.
func meta(db *partdiff.DB, cmd string) bool {
	switch strings.Fields(cmd)[0] {
	case "\\quit", "\\q":
		return true
	case "\\metrics":
		words := strings.Fields(cmd)
		var err error
		if len(words) > 1 {
			err = db.WriteMetricsPrefix(os.Stdout, words[1])
		} else {
			err = db.WriteMetrics(os.Stdout)
		}
		if err != nil {
			fmt.Println("error:", err)
		}
	case "\\profile":
		words := strings.Fields(cmd)
		switch {
		case len(words) < 2:
			state := "off"
			if db.Session().Profiling() {
				state = "on"
			}
			fmt.Printf("profiling is %s; usage: \\profile on|off|report [topK]\n", state)
		case words[1] == "on":
			db.SetProfiling(true)
			fmt.Println("propagation profiling on (\\profile report to inspect)")
		case words[1] == "off":
			db.SetProfiling(false)
			fmt.Println("propagation profiling off (accumulated profile kept)")
		case words[1] == "report":
			topK := 10
			if len(words) > 2 {
				if k, err := strconv.Atoi(words[2]); err == nil {
					topK = k
				} else {
					fmt.Printf("bad topK %q; usage: \\profile report [topK]\n", words[2])
					break
				}
			}
			if err := db.ProfileReport(os.Stdout, topK); err != nil {
				fmt.Println("error:", err)
			}
		default:
			fmt.Println("usage: \\profile on|off|report [topK]")
		}
	case "\\hybrid":
		words := strings.Fields(cmd)
		switch {
		case len(words) < 2:
			fmt.Printf("counting is %s, hybrid is %s; usage: \\hybrid on|off|report\n",
				onOff(db.Counting()), onOff(db.Hybrid()))
		case words[1] == "on":
			db.SetCounting(true)
			db.SetHybrid(true)
			fmt.Println("counting maintenance + cost-based hybrid propagation on (\\hybrid report to inspect)")
		case words[1] == "off":
			db.SetCounting(false)
			db.SetHybrid(false)
			fmt.Println("counting maintenance + cost-based hybrid propagation off")
		case words[1] == "report":
			if err := db.HybridReport(os.Stdout); err != nil {
				fmt.Println("error:", err)
			}
		default:
			fmt.Println("usage: \\hybrid on|off|report")
		}
	case "\\flightrec":
		words := strings.Fields(cmd)
		rec := db.FlightRecorder()
		switch {
		case len(words) < 2:
			state := "disarmed"
			if rec.Armed() {
				state = "armed"
			}
			fmt.Printf("flight recorder is %s; usage: \\flightrec on [dir]|off|dump|report\n", state)
		case words[1] == "on":
			dir := filepath.Join(os.TempDir(), "partdiff-bundles")
			if len(words) > 2 {
				dir = words[2]
			}
			rec.SetDir(dir)
			rec.Arm()
			fmt.Printf("flight recorder armed, bundles in %s\n", dir)
		case words[1] == "off":
			rec.Disarm()
			fmt.Println("flight recorder disarmed (rings and bundles kept)")
		case words[1] == "dump":
			path, err := rec.Dump()
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			fmt.Printf("diagnostics bundle written to %s\n", path)
		case words[1] == "report":
			if err := rec.WriteReport(os.Stdout); err != nil {
				fmt.Println("error:", err)
			}
		default:
			fmt.Println("usage: \\flightrec on [dir]|off|dump|report")
		}
	case "\\trace":
		words := strings.Fields(cmd)
		switch {
		case len(words) < 2:
			fmt.Println("usage: \\trace file.json to start, \\trace stop to write the file")
		case words[1] == "stop":
			if activeTrace == nil {
				fmt.Println("no trace capture active")
				break
			}
			activeTrace.Stop()
			f, err := os.Create(activeTracePath)
			if err == nil {
				err = activeTrace.Export(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Printf("wrote %d event(s) to %s (load in chrome://tracing or ui.perfetto.dev)\n",
					activeTrace.Len(), activeTracePath)
			}
			activeTrace = nil
		case activeTrace != nil:
			fmt.Printf("trace capture already active (writing to %s); \\trace stop first\n", activeTracePath)
		default:
			activeTrace, activeTracePath = db.StartTrace(), words[1]
			fmt.Printf("tracing to %s (\\trace stop to write the file)\n", activeTracePath)
		}
	case "\\stats":
		s := db.Stats()
		fmt.Printf("propagations=%d differentials=%d naive-recomputations=%d triggered=%d actions=%d rounds=%d\n",
			s.Propagations, s.DifferentialsExecuted, s.NaiveRecomputations,
			s.TriggeredInstances, s.ActionsExecuted, s.CheckRounds)
	case "\\mode":
		fmt.Println(db.Session().Rules().Mode())
	case "\\explain":
		for _, e := range db.Explanations() {
			fmt.Printf("rule %s (round %d) triggered for %v\n", e.Rule, e.Round, e.Instances)
			for _, te := range e.Entries {
				fmt.Printf("  %s produced %d tuple(s)\n", te.Differential, te.Produced)
			}
		}
	case "\\net":
		net := db.Session().Rules().Network()
		if net == nil {
			fmt.Println("no active network (no activated rules)")
			break
		}
		for lvl, preds := range net.Levels() {
			fmt.Printf("level %d: %s\n", lvl, strings.Join(preds, ", "))
		}
	case "\\debug":
		words := strings.Fields(cmd)
		if len(words) > 1 && words[1] == "off" {
			db.SetDebug(nil)
			fmt.Println("check-phase tracing off")
		} else {
			db.SetDebug(os.Stdout)
			fmt.Println("check-phase tracing on (\\debug off to disable)")
		}
	case "\\lint":
		rep := db.Session().AnalyzeAll()
		if len(rep) == 0 {
			fmt.Println("no diagnostics")
			break
		}
		for _, d := range rep {
			fmt.Println(d.String())
		}
	case "\\dot":
		net := db.Session().Rules().Network()
		if net == nil {
			fmt.Println("no active network (no activated rules)")
			break
		}
		if words := strings.Fields(cmd); len(words) > 1 && words[1] == "heat" {
			fmt.Print(net.DotHeat())
		} else {
			fmt.Print(net.Dot())
		}
	case "\\checkpoint":
		if err := db.Checkpoint(); err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Println("checkpoint written")
		}
	case "\\save":
		words := strings.Fields(cmd)
		if len(words) < 2 {
			fmt.Println("usage: \\save dir")
			break
		}
		if err := db.SaveTo(words[1]); err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Printf("saved to %s\n", words[1])
		}
	case "\\subscribe", "\\sub":
		words := strings.Fields(cmd)
		switch {
		case len(words) > 1 && words[1] == "stop":
			if activeSub == nil {
				fmt.Println("no subscription active")
				break
			}
			activeSub.Close()
			<-activeSubDone
			activeSub, activeSubDone = nil, nil
			fmt.Println("subscription closed")
		case activeSub != nil:
			fmt.Println("subscription already active; \\subscribe stop first")
		default:
			var types []partdiff.EventType
			if len(words) > 1 {
				var err error
				if types, err = obs.ParseEventTypes(words[1]); err != nil {
					fmt.Println("error:", err)
					break
				}
			}
			activeSub = db.Subscribe(types...)
			activeSubDone = make(chan struct{})
			go func(sub *partdiff.Subscription, done chan struct{}) {
				defer close(done)
				for {
					e, err := sub.Next(context.Background())
					if err != nil {
						return
					}
					fmt.Printf("!! %s\n", e.String())
				}
			}(activeSub, activeSubDone)
			fmt.Println("subscribed (events print as they commit; \\subscribe stop to end)")
		}
	default:
		fmt.Println("unknown meta command; try \\stats \\metrics \\profile \\hybrid \\flightrec \\trace \\explain \\net \\dot \\debug \\lint \\mode \\checkpoint \\save \\subscribe \\quit")
	}
	return false
}

// lint loads a script with rule actions disabled (no foreign
// procedures run), then re-runs the static analyzer over every
// definition and rule with full program knowledge and prints the
// diagnostics. Returns the process exit code: 1 if the script failed
// to load or any error-severity diagnostic was reported.
func lint(mode partdiff.Mode, path string) int {
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	db := partdiff.Open(partdiff.WithMode(mode))
	db.SetOutput(io.Discard)
	db.Session().SetLintMode(true)
	failed := false
	if _, err := db.Exec(string(src)); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
		failed = true
	}
	rep := db.Session().AnalyzeAll()
	for _, d := range rep {
		fmt.Println(d.String())
	}
	if !failed && len(rep) == 0 {
		fmt.Println("no diagnostics")
	}
	if failed || rep.HasErrors() {
		return 1
	}
	return 0
}

func exec(db *partdiff.DB, src string) error {
	results, err := db.Exec(src)
	for _, r := range results {
		if r.Columns != nil {
			fmt.Println(strings.Join(r.Columns, " | "))
			for _, t := range r.Tuples {
				cells := make([]string, len(t))
				for i, v := range t {
					cells[i] = v.String()
				}
				fmt.Println(strings.Join(cells, " | "))
			}
			fmt.Printf("(%d row(s))\n", len(r.Tuples))
		} else if r.Message != "" {
			fmt.Println(r.Message)
		}
	}
	return err
}

// onOff renders a boolean as "on"/"off" for meta-command status lines.
func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}
