package main

import (
	"os"
	"strings"
	"testing"

	"partdiff"
)

// capture redirects stdout around fn.
func capture(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	return string(buf[:n])
}

func demoDB(t *testing.T) *partdiff.DB {
	t.Helper()
	db := partdiff.Open()
	db.RegisterProcedure("order", func([]partdiff.Value) error { return nil })
	db.MustExec(`
create type item;
create function quantity(item) -> integer;
create rule low() as
    when for each item i where quantity(i) < 10
    do order(i);
create item instances :a;
set quantity(:a) = 100;
activate low();
`)
	return db
}

func TestExecPrintsSelectResults(t *testing.T) {
	db := demoDB(t)
	out := capture(t, func() {
		if err := exec(db, `select i, quantity(i) for each item i;`); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(out, "i | quantity(i)") || !strings.Contains(out, "#1 | 100") ||
		!strings.Contains(out, "(1 row(s))") {
		t.Errorf("output:\n%s", out)
	}
}

func TestExecPrintsMessages(t *testing.T) {
	db := partdiff.Open()
	out := capture(t, func() {
		if err := exec(db, `create type widget;`); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(out, "type widget created") {
		t.Errorf("output:\n%s", out)
	}
}

func TestExecReturnsErrors(t *testing.T) {
	db := partdiff.Open()
	if err := exec(db, `select nosuch(1);`); err == nil {
		t.Error("bad statement should error")
	}
}

func TestMetaCommands(t *testing.T) {
	db := demoDB(t)
	db.MustExec(`set quantity(:a) = 5;`) // fire once

	cases := []struct {
		cmd  string
		want string
	}{
		{"\\mode", "incremental"},
		{"\\stats", "propagations="},
		{"\\explain", "rule low"},
		{"\\net", "level 0"},
		{"\\dot", "digraph propagation"},
		{"\\debug", "tracing on"},
		{"\\debug off", "tracing off"},
		{"\\bogus", "unknown meta command"},
	}
	for _, tc := range cases {
		out := capture(t, func() {
			if meta(db, tc.cmd) {
				t.Errorf("%s should not quit", tc.cmd)
			}
		})
		if !strings.Contains(out, tc.want) {
			t.Errorf("%s output %q, want substring %q", tc.cmd, out, tc.want)
		}
	}
	if !meta(db, "\\quit") || !meta(db, "\\q") {
		t.Error("\\quit should signal exit")
	}
}

// TestExampleScripts runs the shipped .amosql demos end to end and
// checks their headline effects.
func TestExampleScripts(t *testing.T) {
	cases := []struct {
		file string
		want string
	}{
		{"../../examples/scripts/inventory.amosql", ">> order(#1, 4880)"},
		{"../../examples/scripts/watchlist.amosql", `"risky account:" #2`},
	}
	for _, tc := range cases {
		src, err := os.ReadFile(tc.file)
		if err != nil {
			t.Fatal(err)
		}
		db := partdiff.Open()
		db.RegisterProcedure("order", func(args []partdiff.Value) error { return nil })
		out := capture(t, func() {
			db.SetOutput(os.Stdout)
			// Reuse the shell's order procedure formatting.
			db2 := partdiff.Open()
			db2.SetOutput(os.Stdout)
			db2.RegisterProcedure("order", func(args []partdiff.Value) error {
				parts := make([]string, len(args))
				for i, v := range args {
					parts[i] = v.String()
				}
				os.Stdout.WriteString(">> order(" + strings.Join(parts, ", ") + ")\n")
				return nil
			})
			if err := exec(db2, string(src)); err != nil {
				t.Errorf("%s: %v", tc.file, err)
			}
		})
		if !strings.Contains(out, tc.want) {
			t.Errorf("%s output missing %q:\n%s", tc.file, tc.want, out)
		}
	}
}

func TestMetaNetWithoutActivations(t *testing.T) {
	db := partdiff.Open()
	out := capture(t, func() { meta(db, "\\net") })
	// An empty network is still a network; either message or empty
	// levels is acceptable, but it must not panic.
	_ = out
}

// TestLintCommandClean checks the -lint path over a shipped script.
func TestLintCommandClean(t *testing.T) {
	var code int
	out := capture(t, func() {
		code = lint(partdiff.Incremental, "../../examples/scripts/inventory.amosql")
	})
	if code != 0 {
		t.Fatalf("lint exit code %d for clean script; output:\n%s", code, out)
	}
	if !strings.Contains(out, "no diagnostics") {
		t.Errorf("output:\n%s", out)
	}
}

// TestLintCommandReportsErrors checks the -lint path exits non-zero on
// a script whose rule condition is rejected by the analyzer.
func TestLintCommandReportsErrors(t *testing.T) {
	path := t.TempDir() + "/bad.amosql"
	src := `
create type item;
create function val(item) -> integer;
create function bad(item i) -> boolean as
    select true for each item j where j = i and val(i) > 0 and not bad(i);
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var code int
	capture(t, func() { code = lint(partdiff.Incremental, path) })
	if code != 1 {
		t.Fatalf("lint exit code %d for unstratified script, want 1", code)
	}
}

// TestLintMeta checks the \lint meta command prints the analyzer report
// for the live session.
func TestLintMeta(t *testing.T) {
	db := demoDB(t)
	out := capture(t, func() { meta(db, `\lint`) })
	if !strings.Contains(out, "no diagnostics") {
		t.Errorf("output:\n%s", out)
	}
}

// TestProfileMeta exercises the \profile shell surface: toggling,
// reporting with and without topK, and bad arguments.
func TestProfileMeta(t *testing.T) {
	db := demoDB(t)
	cases := []struct {
		cmd  string
		want string
	}{
		{`\profile`, "profiling is off; usage"},
		{`\profile report`, "no differential executions profiled"},
		{`\profile on`, "propagation profiling on"},
		{`\profile bogus`, "usage: \\profile"},
	}
	for _, tc := range cases {
		out := capture(t, func() {
			if meta(db, tc.cmd) {
				t.Errorf("%s should not quit", tc.cmd)
			}
		})
		if !strings.Contains(out, tc.want) {
			t.Errorf("%s output %q, want substring %q", tc.cmd, out, tc.want)
		}
	}

	db.MustExec("begin; set quantity(:a) = 50; commit;")
	out := capture(t, func() { meta(db, `\profile report`) })
	for _, want := range []string{"propagation profile —", "zero-effect executions by source:", "low"} {
		if !strings.Contains(out, want) {
			t.Errorf("\\profile report output %q missing %q", out, want)
		}
	}
	out = capture(t, func() { meta(db, `\profile report 1`) })
	if !strings.Contains(out, "rank") {
		t.Errorf("\\profile report 1 output %q", out)
	}
	out = capture(t, func() { meta(db, `\profile report x`) })
	if !strings.Contains(out, "bad topK") {
		t.Errorf("bad topK output %q", out)
	}
	out = capture(t, func() { meta(db, `\profile off`) })
	if !strings.Contains(out, "propagation profiling off") {
		t.Errorf("\\profile off output %q", out)
	}
}

// TestMetricsMetaPrefix exercises the \metrics prefix filter.
func TestMetricsMetaPrefix(t *testing.T) {
	db := demoDB(t)
	db.MustExec("begin; set quantity(:a) = 50; commit;")
	out := capture(t, func() { meta(db, `\metrics propnet_`) })
	if !strings.Contains(out, "partdiff_propnet_propagations_total") {
		t.Errorf("\\metrics propnet_ missing propnet counters:\n%s", out)
	}
	if strings.Contains(out, "partdiff_txn_commits_total") {
		t.Errorf("\\metrics propnet_ leaked txn counters:\n%s", out)
	}
	out = capture(t, func() { meta(db, `\metrics`) })
	if !strings.Contains(out, "partdiff_txn_commits_total") {
		t.Errorf("unfiltered \\metrics missing txn counters:\n%s", out)
	}
}

// TestDotHeatMeta exercises the \dot heat export.
func TestDotHeatMeta(t *testing.T) {
	db := demoDB(t)
	db.SetProfiling(true)
	db.MustExec("begin; set quantity(:a) = 50; commit;")
	out := capture(t, func() { meta(db, `\dot heat`) })
	for _, want := range []string{"digraph propagation", "style=filled", "scanned "} {
		if !strings.Contains(out, want) {
			t.Errorf("\\dot heat output missing %q:\n%s", want, out)
		}
	}
}
