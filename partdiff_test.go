package partdiff

import (
	"strings"
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	db := Open()
	var orders []string
	db.RegisterProcedure("order", func(args []Value) error {
		orders = append(orders, args[0].String()+"/"+args[1].String())
		return nil
	})
	db.MustExec(`
create type item;
create function quantity(item) -> integer;
create function max_stock(item) -> integer;
create function reorder_level(item) -> integer;
create rule refill() as
    when for each item i where quantity(i) < reorder_level(i)
    do order(i, max_stock(i) - quantity(i));
create item instances :widget;
set quantity(:widget) = 100;
set max_stock(:widget) = 100;
set reorder_level(:widget) = 20;
activate refill();
set quantity(:widget) = 15;
`)
	if len(orders) != 1 || orders[0] != "#1/85" {
		t.Errorf("orders=%v", orders)
	}
	// Explanations identify the influent.
	ex := db.Explanations()
	if len(ex) != 1 || ex[0].Rule != "refill" {
		t.Fatalf("explanations=%+v", ex)
	}
	// Stats reflect incremental monitoring.
	if db.Stats().DifferentialsExecuted == 0 {
		t.Error("no differentials executed?")
	}
	db.ResetStats()
	if db.Stats() != (Stats{}) {
		t.Error("ResetStats")
	}
}

func TestFacadeTransactions(t *testing.T) {
	db := Open(WithMode(Naive))
	db.MustExec(`create type t; create function f(t) -> integer; create t instances :x;`)
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`set f(:x) = 1;`)
	if err := db.Rollback(); err != nil {
		t.Fatal(err)
	}
	r, err := db.Query(`select f(:x);`)
	if err != nil || len(r.Tuples) != 0 {
		t.Errorf("after rollback: %v %v", r, err)
	}
	db.Begin()
	db.MustExec(`set f(:x) = 2;`)
	db.Commit()
	r, _ = db.Query(`select f(:x);`)
	if len(r.Tuples) != 1 || !r.Tuples[0][0].Equal(Int(2)) {
		t.Errorf("after commit: %v", r)
	}
}

func TestFacadeVarsAndOutput(t *testing.T) {
	db := Open()
	db.MustExec(`create type t; create t instances :a;`)
	v, ok := db.Var("a")
	if !ok || v.Kind.String() != "object" {
		t.Errorf("Var: %v %v", v, ok)
	}
	db.SetVar("n", Int(5))
	db.MustExec(`create function g(t) -> integer; set g(:a) = :n;`)
	r, _ := db.Query(`select g(:a);`)
	if !r.Tuples[0][0].Equal(Int(5)) {
		t.Errorf("g=%v", r)
	}
	var buf strings.Builder
	db.SetOutput(&buf)
	db.RegisterFunction("triple", []string{"integer"}, "integer",
		func(args []Value) ([][]Value, error) {
			return [][]Value{{Int(args[0].AsInt() * 3)}}, nil
		})
	db.MustExec(`set g(:a) = triple(3);`)
	r, _ = db.Query(`select g(:a);`)
	if !r.Tuples[0][0].Equal(Int(9)) {
		t.Errorf("foreign function: %v", r)
	}
	if db.Session() == nil {
		t.Error("Session accessor")
	}
}

func TestWithoutDeletionMonitoring(t *testing.T) {
	db := Open(WithoutDeletionMonitoring())
	fired := 0
	db.RegisterProcedure("hit", func([]Value) error { fired++; return nil })
	db.MustExec(`
create type t;
create function f(t) -> integer;
create rule r() as when for each t x where f(x) > 10 do hit(x);
create t instances :a;
set f(:a) = 1;
activate r();
set f(:a) = 11;
`)
	if fired != 1 {
		t.Errorf("fired=%d", fired)
	}
	// Only the positive differential executed per update.
	if n := db.Stats().DifferentialsExecuted; n != 1 {
		t.Errorf("differentials=%d, want 1 (insertion monitoring only)", n)
	}
}

func TestFacadeModes(t *testing.T) {
	for _, m := range []Mode{Incremental, Naive, Hybrid} {
		db := Open(WithMode(m))
		fired := 0
		db.RegisterProcedure("hit", func([]Value) error { fired++; return nil })
		db.MustExec(`
create type t;
create function f(t) -> integer;
create rule r() as when for each t x where f(x) > 10 do hit(x);
create t instances :a;
set f(:a) = 1;
activate r();
set f(:a) = 11;
`)
		if fired != 1 {
			t.Errorf("mode %s: fired %d", m, fired)
		}
	}
}
