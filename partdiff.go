// Package partdiff is an active main-memory object-relational DBMS with
// rule condition monitoring by partial differencing — a reproduction of
// Sköld & Risch, "Using Partial Differencing for Efficient Monitoring of
// Deferred Complex Rule Conditions" (ICDE 1996).
//
// A DB speaks AMOSQL (the query language of AMOS): types, stored and
// derived functions, declarative select queries, and CA rules whose
// conditions are monitored incrementally. Rule conditions are compiled
// to partial differentials — one small query per influent relation and
// change sign — and changes are propagated at commit time through a
// breadth-first, bottom-up propagation network, without ever
// materializing the monitored conditions.
//
// Quick start:
//
//	db := partdiff.Open()
//	db.RegisterProcedure("order", func(args []partdiff.Value) error { ... })
//	db.MustExec(`
//	    create type item;
//	    create function quantity(item) -> integer;
//	    create function low(item i) -> integer as
//	        select quantity(i) for each item j where j = i;
//	    ...
//	    create rule monitor_items() as
//	        when for each item i where quantity(i) < threshold(i)
//	        do order(i, max_stock(i) - quantity(i));
//	    activate monitor_items();
//	`)
package partdiff

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"time"

	"partdiff/internal/amosql"
	"partdiff/internal/catalog"
	"partdiff/internal/obs"
	"partdiff/internal/rules"
	"partdiff/internal/storage"
	"partdiff/internal/txn"
	"partdiff/internal/types"
	"partdiff/internal/wal"
)

// ErrCorrupt is the sticky error a poisoned database returns from every
// call after a rollback failed part-way: the store may hold a partially
// undone transaction, so no answer derived from it can be trusted.
// Test with errors.Is.
var ErrCorrupt = txn.ErrCorrupt

// ErrSessionBusy is returned when a writer's admission to the database
// timed out: another writer (typically an open explicit transaction)
// held the session past the call's context deadline — or past the
// WithWriterWait default when the call carries no deadline. Writers
// otherwise QUEUE rather than fail; reads never wait at all (they run
// on MVCC snapshots). Test with errors.Is.
var ErrSessionBusy = txn.ErrSessionBusy

// ErrConflict is returned by Atomic when commit-time validation found
// that a concurrent transaction changed a relation the body had read
// from its snapshot. DB.Atomic retries a few times automatically; the
// error escapes only when the retries are exhausted. Test with
// errors.Is.
var ErrConflict = txn.ErrConflict

// Value is a database value (nil, bool, int, float, string, or object
// reference).
type Value = types.Value

// Tuple is one result row.
type Tuple = types.Tuple

// OID identifies a database object.
type OID = types.OID

// Value constructors, re-exported for convenience.
var (
	// Int makes an integer value.
	Int = types.Int
	// Float makes a floating point value.
	Float = types.Float
	// Str makes a string value.
	Str = types.Str
	// Bool makes a boolean value.
	Bool = types.Bool
	// Obj makes an object reference value.
	Obj = types.Obj
)

// Mode selects the rule condition monitoring strategy.
type Mode = rules.Mode

// The monitoring modes: Incremental is the paper's partial differencing
// monitor, Naive is the §6 full-recomputation baseline, Hybrid switches
// between them per transaction (§8 future work).
const (
	Incremental = rules.Incremental
	Naive       = rules.Naive
	Hybrid      = rules.Hybrid
)

// Result is the outcome of one executed statement.
type Result = amosql.Result

// Explanation records why a rule triggered: which partial differentials
// fired and with which sign (§1 explainability).
type Explanation = rules.Explanation

// Stats counts monitor work (propagations, differentials executed,
// naive recomputations, actions run).
type Stats = rules.Stats

// SyncPolicy selects when the write-ahead log is fsynced relative to
// commit acknowledgement (see OpenDir and WithSyncPolicy).
type SyncPolicy = wal.SyncPolicy

// The sync policies: SyncAlways fsyncs before every commit ack,
// SyncGrouped coalesces concurrent committers into shared fsyncs with
// identical durability, SyncNone leaves records in the OS page cache
// (surviving a process crash but not an OS crash).
const (
	SyncAlways  = wal.SyncAlways
	SyncGrouped = wal.SyncGrouped
	SyncNone    = wal.SyncNone
)

// Procedure is a foreign procedure callable from rule actions.
type Procedure = catalog.Procedure

// ForeignFunc is a foreign function usable in procedural expressions.
type ForeignFunc = catalog.ForeignFunc

// DB is an active database instance.
type DB struct {
	sess *amosql.Session
}

// Option configures Open.
type Option func(*config)

type config struct {
	mode        Mode
	noDeletions bool
	lazy        bool
	adaptive    bool
	noPruning   bool
	counting    bool
	hybrid      bool
	budget      time.Duration
	ctx         context.Context
	writerWait  time.Duration
	wwSet       bool
	slowCommit  time.Duration

	// Flight recorder: arm when flightRec is set; flightDir, when
	// non-empty, is where diagnostics bundles land.
	flightRec bool
	flightDir string

	// Durability knobs (OpenDir only).
	sync       SyncPolicy
	ckptEvery  int
	ckptEveryD time.Duration
	// Procedures/functions to register before recovery replays the log,
	// so recovered rule actions re-fire through them.
	procs []namedProc
	ffns  []namedFFn
}

type namedProc struct {
	name string
	p    Procedure
}

type namedFFn struct {
	name   string
	params []string
	result string
	fn     ForeignFunc
}

// WithMode selects the condition monitoring strategy (default
// Incremental).
func WithMode(m Mode) Option {
	return func(c *config) { c.mode = m }
}

// WithoutDeletionMonitoring disables negative partial differentials —
// the configuration of the paper's §6 benchmark (insertion monitoring
// only). Half the differentials execute, at the price that a pending
// trigger is not withdrawn when a later rule action makes the
// condition false again within the same check phase.
func WithoutDeletionMonitoring() Option {
	return func(c *config) { c.noDeletions = true }
}

// WithLazyAnalysis disables the eager definition-time static analysis
// of derived functions and rule conditions. By default, `create
// function` and `create rule` run the internal/analyze passes (range
// restriction, stratification, type checking, differencing
// applicability) and reject definitions with error-severity
// diagnostics; with this option, defects surface at activation or
// commit time instead, as in earlier releases.
func WithLazyAnalysis() Option {
	return func(c *config) { c.lazy = true }
}

// WithoutStaticPruning disables the whole-network Δ-effect analysis
// that runs when a propagation network is built. By default (pruning
// on), differentials whose trigger Δ-set is provably always empty —
// e.g. the Δ− differentials of a relation declared `append only` — or
// whose disjunct is unsatisfiable across view boundaries are compiled
// but dropped from scheduling; the analysis is sound, so pruned and
// unpruned monitoring are observably identical. This option keeps every
// compiled differential scheduled, for A/B comparison (the `bench -exp
// prune` experiment) and for debugging the analysis itself.
func WithoutStaticPruning() Option {
	return func(c *config) { c.noPruning = true }
}

// WithCounting enables counting maintenance: every differenced
// condition view carries a per-derived-tuple derivation count
// maintained by triangle-form counting differentials, so a deletion
// decrements support and retracts the tuple only when its count reaches
// zero — no recomputation of the defining condition and no §7.2
// membership probes on deletes. Counts are transactional (rolled back
// exactly on abort) and rebuilt lazily after recovery or redefinition.
// Requires deletion monitoring (the default); with
// WithoutDeletionMonitoring it compiles but stays inactive. See
// DESIGN.md "Counting maintenance & hybrid propagation".
func WithCounting() Option {
	return func(c *config) { c.counting = true }
}

// WithHybridMode enables cost-based hybrid propagation (the paper's §8
// observation made operational): per view and per propagation wave, a
// chooser compares the predicted scan cost of incremental partial
// differencing against naive full recomputation — from observed
// per-view cost EWMAs, seeded by the evaluator's extent estimates — and
// routes the wave through whichever is cheaper, with hysteresis so the
// choice doesn't flap. Decisions are journaled (`\hybrid report`, the
// profiler's strategy column), metered, and announced as system bus
// events on every switch. Orthogonal to WithMode(Hybrid), which picks
// the per-activation check-phase scheme; this chooser acts inside the
// propagation network per view. Usually combined with WithCounting.
func WithHybridMode() Option {
	return func(c *config) { c.hybrid = true }
}

// WithCheckBudget bounds the wall-clock duration of each commit-time
// check phase. A rule cascade that exceeds the budget aborts with an
// error and the transaction rolls back — Δ-sets cancel, no rule sees a
// partial cascade. This complements the cascade round bound
// (rules.Manager.MaxRounds) for rule sets whose rounds are individually
// expensive rather than numerous. Zero means unlimited.
func WithCheckBudget(d time.Duration) Option {
	return func(c *config) { c.budget = d }
}

// WithCheckContext aborts any check phase as soon as ctx is done, via
// the same rollback path as WithCheckBudget.
func WithCheckContext(ctx context.Context) Option {
	return func(c *config) { c.ctx = ctx }
}

// WithAdaptiveStats switches the join optimizer from its static cost
// model to observed workload statistics: every full enumeration of a
// derived function feeds its observed cardinality (and every literal
// match its observed scan volume) into an EWMA table that the greedy
// join-order ranking consults, so the plans of rule-condition
// differentials and ad-hoc queries adapt to the data actually seen.
// Most useful for workloads where a derived function is far smaller (or
// larger) than the static guess assumes — see DESIGN.md "Profiling &
// adaptive statistics".
func WithAdaptiveStats() Option {
	return func(c *config) { c.adaptive = true }
}

// WithWriterWait sets the default deadline a writer waits for admission
// when its call carries no context deadline of its own (default 30s;
// <= 0 waits forever). Concurrent writers queue FIFO; a waiter whose
// deadline expires gets ErrSessionBusy. Calls made through the
// *Context variants are bounded by their context instead.
func WithWriterWait(d time.Duration) Option {
	return func(c *config) { c.writerWait, c.wwSet = d, true }
}

// WithSlowCommitThreshold emits a structured system event (op
// "slow_commit", with per-phase check/persist/ack timings) and bumps
// partdiff_txn_slow_commits_total whenever a commit takes longer than d
// end to end. Zero (the default) disables slow-commit reporting.
func WithSlowCommitThreshold(d time.Duration) Option {
	return func(c *config) { c.slowCommit = d }
}

// WithFlightRecorder arms the always-on flight recorder: fixed-size
// in-memory rings continuously capture propagation-wave summaries,
// per-commit phase timings, WAL fsync latencies, hybrid-chooser
// decisions and recent events. When an anomaly trigger fires (slow
// commit, fsync stall, capability violation, corruption, WAL
// poisoning, check-budget abort, conflict storm, commit stall) the
// window is frozen and written to dir as a self-contained diagnostics
// bundle; an empty dir captures (and counts triggers) without writing
// bundles. See DB.FlightRecorder for runtime control.
func WithFlightRecorder(dir string) Option {
	return func(c *config) { c.flightRec, c.flightDir = true, dir }
}

// WithSyncPolicy selects the write-ahead log's fsync policy (default
// SyncAlways). Only meaningful with OpenDir.
func WithSyncPolicy(p SyncPolicy) Option {
	return func(c *config) { c.sync = p }
}

// WithCheckpointEvery takes an automatic checkpoint after every n
// committed transactions (0, the default, disables commit-count
// checkpointing). Only meaningful with OpenDir.
func WithCheckpointEvery(n int) Option {
	return func(c *config) { c.ckptEvery = n }
}

// WithCheckpointInterval runs a background checkpointer every d
// (0 disables it). Ticks that find the database busy or inside a
// transaction are skipped. Only meaningful with OpenDir.
func WithCheckpointInterval(d time.Duration) Option {
	return func(c *config) { c.ckptEveryD = d }
}

// WithProcedure registers a foreign procedure before recovery runs, so
// rule actions re-fired while replaying the log dispatch through it.
// Actions whose procedure is not registered at recovery time are
// skipped during replay (their database updates are still recovered
// from the log).
func WithProcedure(name string, p Procedure) Option {
	return func(c *config) { c.procs = append(c.procs, namedProc{name, p}) }
}

// WithForeignFunc registers a foreign function before recovery runs
// (the function-as-action counterpart of WithProcedure).
func WithForeignFunc(name string, paramTypes []string, resultType string, fn ForeignFunc) Option {
	return func(c *config) {
		c.ffns = append(c.ffns, namedFFn{name, paramTypes, resultType, fn})
	}
}

// Open creates an empty in-memory active database.
func Open(opts ...Option) *DB {
	db, _ := open(opts)
	return db
}

func open(opts []Option) (*DB, *config) {
	cfg := config{mode: Incremental}
	for _, o := range opts {
		o(&cfg)
	}
	db := &DB{sess: amosql.NewSession(cfg.mode)}
	if cfg.noDeletions {
		db.sess.Rules().SetMonitorDeletions(false)
	}
	if cfg.lazy {
		db.sess.SetLazyAnalysis(true)
	}
	if cfg.adaptive {
		db.sess.EnableAdaptiveStats()
	}
	if cfg.noPruning {
		db.sess.SetStaticPruning(false)
	}
	if cfg.counting {
		db.sess.SetCounting(true)
	}
	if cfg.hybrid {
		db.sess.SetHybrid(true)
	}
	db.sess.Rules().CheckBudget = cfg.budget
	db.sess.Rules().CheckContext = cfg.ctx
	if cfg.wwSet {
		db.sess.SetWriterWait(cfg.writerWait)
	}
	if cfg.slowCommit > 0 {
		db.sess.Txns().SetSlowCommitThreshold(cfg.slowCommit)
	}
	if cfg.flightRec {
		db.sess.SetFlightRecorder(cfg.flightDir)
	}
	return db, &cfg
}

// OpenDir opens a durable active database backed by the data directory
// dir (created if missing): the latest snapshot is loaded, the
// write-ahead log tail is replayed through the normal commit machinery
// — rebuilding the propagation network and re-firing deferred rule
// checks — and every later committed transaction is logged under the
// configured sync policy before it is acknowledged. Register the rule
// actions' procedures with WithProcedure so replayed rules dispatch
// through them. Close the database when done.
func OpenDir(dir string, opts ...Option) (*DB, error) {
	db, cfg := open(opts)
	for _, np := range cfg.procs {
		if err := db.RegisterProcedure(np.name, np.p); err != nil {
			return nil, err
		}
	}
	for _, nf := range cfg.ffns {
		if err := db.RegisterFunction(nf.name, nf.params, nf.result, nf.fn); err != nil {
			return nil, err
		}
	}
	err := db.sess.AttachDir(dir, amosql.DirConfig{
		Policy:             cfg.sync,
		CheckpointEvery:    cfg.ckptEvery,
		CheckpointInterval: cfg.ckptEveryD,
	})
	if err != nil {
		return nil, err
	}
	return db, nil
}

// Checkpoint snapshots the database into its data directory and
// truncates the write-ahead log. It fails on an in-memory database
// (use SaveTo for those) and inside a transaction.
func (db *DB) Checkpoint() error { return db.sess.Checkpoint() }

// SaveTo writes a standalone snapshot of the current database state
// into dir — a backup, loadable later with OpenDir. It refuses a
// directory that already contains database files (other than the
// database's own data directory, where it is equivalent to
// Checkpoint).
func (db *DB) SaveTo(dir string) error { return db.sess.SaveTo(dir) }

// Close stops background checkpointing and closes the write-ahead log.
// A no-op for in-memory databases.
func (db *DB) Close() error { return db.sess.Close() }

// Exec parses and executes AMOSQL statements, returning one result per
// statement. Statements outside an explicit transaction auto-commit
// (running the deferred rule check phase immediately). Concurrent
// writers queue FIFO for admission; see ErrSessionBusy.
func (db *DB) Exec(src string) ([]Result, error) { return db.sess.Exec(src) }

// ExecContext is Exec with the wait for writer admission bounded by
// ctx's deadline (expiry returns ErrSessionBusy).
func (db *DB) ExecContext(ctx context.Context, src string) ([]Result, error) {
	return db.sess.ExecContext(ctx, src)
}

// MustExec is Exec but panics on error — for examples and tests.
func (db *DB) MustExec(src string) []Result { return db.sess.MustExec(src) }

// Query executes a single select statement. From goroutines that do not
// hold the session (everything except a rule action querying
// mid-commit) it runs against a pinned MVCC snapshot of the last
// committed state, without waiting for writers at all.
func (db *DB) Query(src string) (*Result, error) { return db.sess.Query(src) }

// QueryContext is Query with a context (the deadline matters only on
// the gated paths: re-entrant live queries and aggregate selects).
func (db *DB) QueryContext(ctx context.Context, src string) (*Result, error) {
	return db.sess.QueryContext(ctx, src)
}

// Begin starts an explicit transaction; rule conditions are monitored
// deferred, at Commit. The session is held (leased) until Commit or
// Rollback: concurrent writers queue, snapshot reads proceed.
func (db *DB) Begin() error { return db.sess.Begin() }

// BeginContext is Begin with writer admission bounded by ctx.
func (db *DB) BeginContext(ctx context.Context) error { return db.sess.BeginContext(ctx) }

// Commit runs the deferred check phase (change propagation, conflict
// resolution, set-oriented action execution) and commits. A panic in a
// registered procedure or anywhere in the check phase is contained and
// rolls the transaction back; if rollback itself fails the database is
// poisoned and every later call returns ErrCorrupt.
func (db *DB) Commit() error { return db.sess.Commit() }

// Rollback undoes the active transaction; Δ-sets cancel out so no rule
// sees any net change.
func (db *DB) Rollback() error { return db.sess.Rollback() }

// Tx is the handle an Atomic body works through: Query reads from the
// transaction's pinned snapshot (recording the read set), Exec buffers
// writes for the optimistic commit.
type Tx = amosql.AtomicTx

// Atomic runs fn as one optimistic transaction: its Queries all see the
// same pinned snapshot of the last committed state, its Execs are
// buffered, and at the end the buffered writes are validated and
// applied as a single transaction — provided no concurrent commit
// touched a relation the body read. On conflict the body is re-run
// against a fresh snapshot, up to a few attempts with jittered backoff;
// if the last attempt still conflicts, the ErrConflict escapes. fn must
// therefore be safe to call multiple times (pure reads + buffered
// writes are; side effects outside the database are not rolled back).
// A read-only body never waits on writers at all.
func (db *DB) Atomic(ctx context.Context, fn func(*Tx) error) error {
	const attempts = 4
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			db.sess.Txns().MarkConflictRetry()
			d := time.Duration(i) * 500 * time.Microsecond
			d += time.Duration(rand.Int63n(int64(d)))
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return err
			}
		}
		if err = db.sess.Atomic(ctx, fn); !errors.Is(err, ErrConflict) {
			return err
		}
	}
	return err
}

// CheckInvariants verifies cross-layer consistency: storage
// index↔tuple-set agreement, propagation-network level monotonicity,
// and — outside a transaction — that no Δ-set or pending trigger set
// survived the last check phase. It returns nil on a healthy database
// and the first violation (or the sticky ErrCorrupt) otherwise.
func (db *DB) CheckInvariants() error { return db.sess.CheckInvariants() }

// RegisterProcedure exposes a Go function as an AMOSQL procedure for
// rule actions.
func (db *DB) RegisterProcedure(name string, p Procedure) error {
	return db.sess.RegisterProcedure(name, p)
}

// RegisterFunction exposes a Go function as a foreign AMOSQL function
// (procedural contexts only; conditions must be declarative).
func (db *DB) RegisterFunction(name string, paramTypes []string, resultType string, fn ForeignFunc) error {
	return db.sess.RegisterFunction(name, paramTypes, resultType, fn)
}

// Capability restricts the admitted change kinds of a base relation
// (see DeclareCapability and the AMOSQL `declare` statement).
type Capability = storage.Capability

// The capabilities: CapFrozen admits no changes, CapInserts only
// insertions ("append only"), CapDeletes only deletions, CapAll any
// change (every relation's default).
const (
	CapFrozen  = storage.CapFrozen
	CapInserts = storage.CapInserts
	CapDeletes = storage.CapDeletes
	CapAll     = storage.CapAll
)

// DeclareCapability restricts the admitted change kinds of a stored
// function's relation (or a type extent, via its type:NAME relation).
// The store rejects excluded updates from then on, and the static
// network analysis prunes the partial differentials the restriction
// makes impossible. Capabilities only narrow: widening a declared
// capability is an error. Equivalent to the AMOSQL statement
// `declare NAME readonly|append only|delete only|read-write;` — prefer
// the statement on durable databases, which journals it for recovery.
func (db *DB) DeclareCapability(rel string, c Capability) error {
	return db.sess.DeclareCapability(rel, c)
}

// Var returns the value of a session interface variable (e.g. "item1"
// after `create item instances :item1`).
func (db *DB) Var(name string) (Value, bool) { return db.sess.IfaceVar(name) }

// SetVar binds a session interface variable.
func (db *DB) SetVar(name string, v Value) { db.sess.SetIfaceVar(name, v) }

// Explanations returns the explanations recorded during the most recent
// check phase: which influents caused each rule to trigger, and whether
// by insertion or deletion.
func (db *DB) Explanations() []Explanation { return db.sess.Rules().LastExplanations() }

// Stats returns cumulative monitor statistics.
func (db *DB) Stats() Stats { return db.sess.Rules().Stats() }

// ResetStats zeroes the monitor statistics.
func (db *DB) ResetStats() { db.sess.Rules().ResetStats() }

// SetOutput directs the builtin print procedure's output (default:
// discarded).
func (db *DB) SetOutput(w io.Writer) { db.sess.Output = w }

// SetDebug directs a human-readable trace of every check phase —
// accumulated changes, differentials executed, trigger folding,
// conflict resolution, actions — to w (nil disables).
func (db *DB) SetDebug(w io.Writer) { db.sess.Rules().SetDebug(w) }

// Observability returns the database's metrics registry and tracer
// bundle. Every subsystem — storage, evaluator, Δ-sets, propagation
// network, transactions, rule monitor — reports into it.
func (db *DB) Observability() *obs.Observability { return db.sess.Observability() }

// WriteMetrics writes every registered metric in Prometheus text
// exposition format (version 0.0.4).
func (db *DB) WriteMetrics(w io.Writer) error {
	return db.sess.Observability().Registry.WritePrometheus(w)
}

// WriteMetricsPrefix writes only the metric families matching prefix
// (the partdiff_ namespace part may be omitted: "propnet" matches
// partdiff_propnet_...).
func (db *DB) WriteMetricsPrefix(w io.Writer, prefix string) error {
	return db.sess.Observability().Registry.WritePrometheusPrefix(w, prefix)
}

// SetProfiling turns the propagation profiler on or off: per-rule,
// per-differential accounting of executions, Δ-cardinalities, tuples
// scanned, wall time and zero-effect executions, reported by
// ProfileReport. Off by default; accumulated entries survive turning it
// off.
func (db *DB) SetProfiling(on bool) { db.sess.SetProfiling(on) }

// ProfileReport writes the propagation profiler's report: the topK most
// expensive partial differentials ranked by observed cost, attributed
// to their rules, with zero-effect execution counts per source (topK <=
// 0 writes all).
func (db *DB) ProfileReport(w io.Writer, topK int) error {
	return db.sess.ProfileReport(w, topK)
}

// SetCounting enables or disables counting maintenance at runtime (see
// WithCounting). The propagation network is rebuilt on change; counts
// reseed lazily on the next propagation.
func (db *DB) SetCounting(on bool) { db.sess.SetCounting(on) }

// Counting reports whether counting maintenance is on.
func (db *DB) Counting() bool { return db.sess.Counting() }

// SetHybrid enables or disables cost-based hybrid propagation at
// runtime (see WithHybridMode).
func (db *DB) SetHybrid(on bool) { db.sess.SetHybrid(on) }

// Hybrid reports whether cost-based hybrid propagation is on.
func (db *DB) Hybrid() bool { return db.sess.Hybrid() }

// HybridReport writes the maintenance subsystem's report: per-view
// strategies, count-store sizes, observed cost EWMAs and the recent
// strategy-decision journal.
func (db *DB) HybridReport(w io.Writer) error { return db.sess.HybridReport(w) }

// Event is one structured observability event: a rule firing with its
// triggering Δ-sets, a per-commit Δ summary, a transaction lifecycle
// transition, or a system occurrence (checkpoint, recovery, fsync
// stall, capability violation, slow commit).
type Event = obs.Event

// EventType classifies events; see the Event* constants.
type EventType = obs.EventType

// The event types a subscription can filter on.
const (
	// EventRuleFiring: a rule activation fired during a committed check
	// phase, with its condition bindings and triggering differentials.
	EventRuleFiring = obs.EventRuleFiring
	// EventDelta: the per-relation Δ summary of one committed
	// propagation wave.
	EventDelta = obs.EventDelta
	// EventTxn: transaction lifecycle (begin, commit, rollback,
	// conflict).
	EventTxn = obs.EventTxn
	// EventSystem: checkpoint, recovery, wal fsync stalls, capability
	// violations, slow commits, hybrid strategy switches, diagnostics
	// bundles written by the flight recorder.
	EventSystem = obs.EventSystem
	// EventGap: synthesized locally on a subscription whose buffer
	// overflowed, carrying the count of missed events.
	EventGap = obs.EventGap
)

// Subscription is an in-process event subscription; consume it with
// Next/TryNext and Close it when done. A slow consumer loses oldest
// events first and sees an EventGap marker in their place.
type Subscription = obs.Subscription

// DeltaEntry is one relation's contribution to an event's Δ summary.
type DeltaEntry = obs.DeltaEntry

// Subscribe opens an in-process subscription to the database's event
// stream, filtered to the given event types (none = all). The first
// subscription arms the bus; it stays armed for the lifetime of the
// database so reconnecting subscribers can resume from the event ring.
// Events describing transactional work (rule firings, Δ summaries) are
// published only after their transaction's commit point, in commit
// order; rolled-back transactions publish nothing but the rollback.
func (db *DB) Subscribe(types ...EventType) *Subscription {
	return db.sess.Observability().Bus.Subscribe(0, types...)
}

// EventBus exposes the underlying event bus for advanced use: resuming
// from a known event ID (SubscribeFrom), attaching sinks, or publishing
// application events.
func (db *DB) EventBus() *obs.Bus { return db.sess.Observability().Bus }

// FlightRecorder exposes the database's flight recorder (never nil;
// disarmed unless WithFlightRecorder was given or Arm is called). Use
// it to Dump an on-demand diagnostics bundle, tune trigger thresholds,
// list bundles on disk, or write the shell's \flightrec report.
func (db *DB) FlightRecorder() *obs.Recorder { return db.sess.FlightRecorder() }

// MonitorHandler returns an http.Handler serving the database's live
// monitoring surface: Prometheus text at /metrics (filterable with
// ?prefix=), expvar JSON at /debug/vars, Go runtime profiles at
// /debug/pprof/, the /healthz and /readyz probes (liveness fails once
// the database is poisoned; readiness additionally requires recovery
// to be complete and the write-ahead log healthy, and names the
// blocking state — corrupt, recovering, wal-poisoned — in the 503
// body), and the flight recorder's diagnostics bundles: GET
// /debug/bundle captures one on demand, GET /debug/bundles/ lists and
// serves those written to disk.
func (db *DB) MonitorHandler() http.Handler {
	return obs.HandlerWith(db.sess.Observability().Registry, obs.HandlerOpts{
		Live:   db.sess.Live,
		Ready:  db.sess.Ready,
		Flight: db.sess.FlightRecorder(),
	})
}

// ServeMonitor starts an HTTP monitoring server on addr (e.g.
// "localhost:6060") serving MonitorHandler. Close the returned server
// when done.
func (db *DB) ServeMonitor(addr string) (*obs.Server, error) {
	return obs.ServeHandler(addr, db.MonitorHandler())
}

// Trace is an in-progress structured trace capture. Stop it, then
// Export the collected events as Chrome trace_event JSON loadable in
// chrome://tracing or https://ui.perfetto.dev.
type Trace struct {
	sink   *obs.ChromeSink
	detach func()
}

// StartTrace begins capturing structured trace events — commit and
// check-phase spans, propagation rounds, every individual partial
// differential execution with its view/influent/sign attribution, rule
// triggerings and action executions.
func (db *DB) StartTrace() *Trace {
	sink := obs.NewChromeSink()
	detach := db.sess.Observability().Tracer.Attach(sink)
	return &Trace{sink: sink, detach: detach}
}

// Stop detaches the capture from the tracer. Idempotent.
func (t *Trace) Stop() { t.detach() }

// Len returns the number of events captured so far.
func (t *Trace) Len() int { return t.sink.Len() }

// Export writes the captured events as Chrome trace_event JSON.
func (t *Trace) Export(w io.Writer) error { return t.sink.Export(w) }

// Session exposes the underlying AMOSQL session for advanced use
// (direct access to the store, catalog, rule manager and transaction
// manager).
func (db *DB) Session() *amosql.Session { return db.sess }
