package partdiff

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestKitchenSinkSoak drives a schema exercising every feature at once
// — aggregates, recursion, shared views, ECA events, negation,
// disjunction, instance creation/deletion, explicit transactions with
// rollbacks — under random schedules, and requires the incremental and
// naive monitors to fire identically throughout.
func TestKitchenSinkSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	run := func(mode Mode, seed int64) []string {
		db := Open(WithMode(mode))
		var fired []string
		hit := func(tag string) Procedure {
			return func(args []Value) error {
				fired = append(fired, fmt.Sprintf("%s%v", tag, args))
				return nil
			}
		}
		db.RegisterProcedure("h1", hit("h1"))
		db.RegisterProcedure("h2", hit("h2"))
		db.RegisterProcedure("h3", hit("h3"))
		db.RegisterProcedure("h4", hit("h4"))
		db.MustExec(`
create type node;
create type hub under node;
create function weight(node) -> integer;
create function linked(node) -> node;
create function tagged(node) -> boolean;

create shared function heavy(node n) -> integer
    as select weight(n) * 2 for each node m where m = n;

create function total() -> integer
    as select sum(weight(n)) for each node n where weight(n) > 0;

create function reach(node a) -> node
    as select b for each node b
    where linked(a) = b or reach(linked(a)) = b;

-- shared-view consumer with negation and disjunction
create rule r_heavy() as
    when for each node n
    where (heavy(n) > 12 or weight(n) < -2) and not tagged(n)
    do h1(n);

-- aggregate consumer
create rule r_total() as
    when for each node n where total() > 30 and weight(n) > 8
    do h2(n);

-- recursion consumer
create rule r_reach() as
    when for each node a, node b
    where reach(a) = b and weight(b) > 9
    do h3(a, b);

-- ECA: only weight updates are events
create nervous rule r_eca() as
    on weight
    when for each hub x where tagged(x) = true
    do h4(x)
    priority 9;
`)
		// A pool of instances; some are hubs.
		for i := 0; i < 6; i++ {
			tn := "node"
			if i%3 == 0 {
				tn = "hub"
			}
			db.MustExec(fmt.Sprintf(`create %s instances :v%d; set weight(:v%d) = %d;`, tn, i, i, i))
		}
		db.MustExec(`activate r_heavy(); activate r_total(); activate r_reach(); activate r_eca();`)

		r := rand.New(rand.NewSource(seed))
		alive := map[int]bool{0: true, 1: true, 2: true, 3: true, 4: true, 5: true}
		next := 6
		aliveList := func() []int {
			var out []int
			for i := range alive {
				out = append(out, i)
			}
			// deterministic order for reproducibility across modes
			for i := 0; i < len(out); i++ {
				for j := i + 1; j < len(out); j++ {
					if out[j] < out[i] {
						out[i], out[j] = out[j], out[i]
					}
				}
			}
			return out
		}
		for step := 0; step < 40; step++ {
			ids := aliveList()
			if len(ids) < 2 {
				break
			}
			pick := func() int { return ids[r.Intn(len(ids))] }
			inTxn := r.Intn(4) == 0
			if inTxn {
				db.MustExec("begin;")
			}
			for op := 0; op < 1+r.Intn(3); op++ {
				a, b := pick(), pick()
				var stmt string
				switch r.Intn(7) {
				case 0:
					stmt = fmt.Sprintf("set weight(:v%d) = %d;", a, r.Intn(16)-3)
				case 1:
					stmt = fmt.Sprintf("set linked(:v%d) = :v%d;", a, b)
				case 2:
					stmt = fmt.Sprintf("remove linked(:v%d) = :v%d;", a, b)
				case 3:
					stmt = fmt.Sprintf("set tagged(:v%d) = true;", a)
				case 4:
					stmt = fmt.Sprintf("remove tagged(:v%d) = true;", a)
				case 5:
					if len(ids) > 3 && r.Intn(3) == 0 {
						stmt = fmt.Sprintf("delete :v%d;", a)
						delete(alive, a)
						ids = aliveList()
						if len(ids) < 2 {
							stmt = ""
						}
					}
				default:
					tn := "node"
					if r.Intn(2) == 0 {
						tn = "hub"
					}
					stmt = fmt.Sprintf("create %s instances :v%d; set weight(:v%d) = %d;",
						tn, next, next, r.Intn(10))
					alive[next] = true
					next++
					ids = aliveList()
				}
				if stmt == "" {
					continue
				}
				if _, err := db.Exec(stmt); err != nil {
					t.Fatalf("mode %s seed %d step %d: %q: %v", mode, seed, step, stmt, err)
				}
			}
			if inTxn {
				if r.Intn(3) == 0 {
					db.MustExec("rollback;")
					// Deleted-object bookkeeping: a rollback resurrects
					// objects deleted in the txn. Rebuild `alive` from the
					// session's view: keep it simple — restore any id whose
					// interface variable is still bound.
					for i := 0; i < next; i++ {
						if _, ok := db.Var(fmt.Sprintf("v%d", i)); ok {
							alive[i] = true
						} else {
							delete(alive, i)
						}
					}
				} else {
					db.MustExec("commit;")
					for i := 0; i < next; i++ {
						if _, ok := db.Var(fmt.Sprintf("v%d", i)); ok {
							alive[i] = true
						} else {
							delete(alive, i)
						}
					}
				}
			}
		}
		return fired
	}
	for seed := int64(1); seed <= 6; seed++ {
		inc := fmt.Sprint(run(Incremental, seed))
		nai := fmt.Sprint(run(Naive, seed))
		if inc != nai {
			t.Errorf("seed %d:\nincremental %s\nnaive       %s", seed, inc, nai)
		}
	}
}
