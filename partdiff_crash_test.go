package partdiff

import (
	"errors"
	"strings"
	"testing"
	"time"

	"partdiff/internal/faultinject"
)

const crashSchema = `
create type item;
create function quantity(item) -> integer;
create function threshold(item) -> integer;
create rule low() as
    when for each item i where quantity(i) < threshold(i)
    do alarm(i);
create item instances :i1;
set quantity(:i1) = 100;
set threshold(:i1) = 10;
activate low();
`

// crashDB opens a DB whose alarm procedure fails the given way the
// first time it runs and records every invocation.
func crashDB(t *testing.T, fail func() error, opts ...Option) (*DB, *int) {
	t.Helper()
	db := Open(opts...)
	calls := new(int)
	first := true
	db.RegisterProcedure("alarm", func(args []Value) error {
		*calls++
		if first && fail != nil {
			first = false
			return fail()
		}
		return nil
	})
	db.MustExec(crashSchema)
	return db, calls
}

// triggerLow makes the rule condition true; with a failing alarm the
// statement's implicit transaction must roll back.
func triggerLow(db *DB) error {
	_, err := db.Exec(`set quantity(:i1) = 5;`)
	return err
}

func assertHealthyAndUsable(t *testing.T, db *DB, calls *int) {
	t.Helper()
	if err := db.CheckInvariants(); err != nil {
		t.Errorf("invariants after failure: %v", err)
	}
	// The update rolled back: quantity is still 100.
	r, err := db.Query(`select q for each item i, integer q where quantity(i) = q;`)
	if err != nil || len(r.Tuples) != 1 || r.Tuples[0][0].I != 100 {
		t.Fatalf("state after failure: %v %v", r, err)
	}
	// The DB remains fully usable: the same trigger now succeeds.
	before := *calls
	if err := triggerLow(db); err != nil {
		t.Fatalf("DB unusable after recovered failure: %v", err)
	}
	if *calls != before+1 {
		t.Errorf("alarm calls = %d, want %d", *calls, before+1)
	}
	if err := db.CheckInvariants(); err != nil {
		t.Errorf("invariants after recovery: %v", err)
	}
}

func TestProcedurePanicContained(t *testing.T) {
	db, calls := crashDB(t, func() error { panic("alarm wiring on fire") })
	err := triggerLow(db)
	if err == nil {
		t.Fatal("panicking procedure should fail the transaction")
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Errorf("error should mention the panic: %v", err)
	}
	assertHealthyAndUsable(t, db, calls)
}

func TestProcedureErrorRollsBack(t *testing.T) {
	db, calls := crashDB(t, func() error { return errors.New("pager service down") })
	err := triggerLow(db)
	if err == nil || !strings.Contains(err.Error(), "pager service down") {
		t.Fatalf("procedure error should surface: %v", err)
	}
	assertHealthyAndUsable(t, db, calls)
}

// A panicking registered foreign function used in a procedural
// expression (an action argument here) is contained the same way.
func TestForeignFuncPanicContained(t *testing.T) {
	db := Open()
	var got []Value
	db.RegisterProcedure("note", func(args []Value) error {
		got = append(got, args[0])
		return nil
	})
	boom := true
	db.RegisterFunction("scale", []string{"integer"}, "integer", func(args []Value) ([][]Value, error) {
		if boom {
			boom = false
			panic("scale exploded")
		}
		return [][]Value{{Int(args[0].I * 2)}}, nil
	})
	db.MustExec(`
create type item;
create function quantity(item) -> integer;
create rule watch() as
    when for each item i where quantity(i) < 0
    do note(scale(quantity(i)));
create item instances :a;
activate watch();
`)
	if _, err := db.Exec(`set quantity(:a) = -3;`); err == nil ||
		!strings.Contains(err.Error(), "panicked") {
		t.Fatalf("foreign function panic should surface as error: %v", err)
	}
	if err := db.CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
	// Second attempt succeeds and the function computes.
	if _, err := db.Exec(`set quantity(:a) = -3;`); err != nil {
		t.Fatalf("DB unusable after foreign panic: %v", err)
	}
	if len(got) != 1 || got[0].I != -6 {
		t.Errorf("action args = %v, want [-6]", got)
	}
}

// When rollback itself fails, the DB is poisoned: every later call
// returns the sticky ErrCorrupt rather than serving wrong answers.
func TestErrCorruptPoisoning(t *testing.T) {
	db, _ := crashDB(t, func() error { return errors.New("fail the check phase") })
	inj := faultinject.New()
	db.Session().SetInjector(inj)
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`set quantity(:i1) = 5;`); err != nil {
		t.Fatal(err)
	}
	// The forward phase emitted −(quantity,i1,100) +(quantity,i1,5); the
	// failing check phase rolls back and the undo of the deletion (an
	// insert) is made to fail.
	inj.Arm(faultinject.StoreInsert, 0, faultinject.Error)
	err := db.Commit()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("failed rollback should poison the DB: %v", err)
	}
	for name, call := range map[string]func() error{
		"Begin":           db.Begin,
		"Commit":          db.Commit,
		"Rollback":        db.Rollback,
		"Exec":            func() error { _, err := db.Exec(`select i for each item i;`); return err },
		"Query":           func() error { _, err := db.Query(`select i for each item i;`); return err },
		"CheckInvariants": db.CheckInvariants,
	} {
		if err := call(); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s on poisoned DB: %v (want ErrCorrupt)", name, err)
		}
	}
}

// WithCheckBudget stops a non-terminating cascade at the facade level.
func TestWithCheckBudget(t *testing.T) {
	db := Open(WithCheckBudget(5 * time.Millisecond))
	db.RegisterProcedure("bump", func(args []Value) error {
		db.SetVar("_i", args[0])
		db.SetVar("_q", Int(args[1].I+1))
		_, err := db.Exec(`set quantity(:_i) = :_q;`)
		return err
	})
	db.MustExec(`
create type item;
create function quantity(item) -> integer;
create nervous rule runaway() as
    when for each item i, integer q where quantity(i) = q and q > 0
    do bump(i, q);
create item instances :a;
activate runaway();
`)
	db.Session().Rules().MaxRounds = 1 << 30
	_, err := db.Exec(`set quantity(:a) = 1;`)
	if err == nil {
		t.Fatal("runaway cascade should exceed the budget")
	}
	if !strings.Contains(err.Error(), "budget") {
		t.Errorf("error should mention the budget: %v", err)
	}
	// Rolled back: quantity has no value.
	r, err := db.Query(`select q for each item i, integer q where quantity(i) = q;`)
	if err != nil || len(r.Tuples) != 0 {
		t.Errorf("cascade updates survived: %v %v", r, err)
	}
	if err := db.CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}
