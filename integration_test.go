package partdiff

import (
	"fmt"
	"math/rand"
	"testing"
)

// Integration scenarios: multi-rule applications driven entirely
// through the public API, cross-checking incremental against naive
// monitoring.

// TestScenario_Library: loans, holds, and an escalation cascade.
func TestScenario_Library(t *testing.T) {
	for _, mode := range []Mode{Incremental, Naive, Hybrid} {
		t.Run(mode.String(), func(t *testing.T) {
			db := Open(WithMode(mode))
			var notices, escalations []string
			db.RegisterProcedure("notice", func(args []Value) error {
				notices = append(notices, args[0].String())
				// Side effect: a notice marks the member.
				db.SetVar("_m", args[0])
				_, err := db.Exec(`set noticed(:_m) = true;`)
				return err
			})
			db.RegisterProcedure("escalate", func(args []Value) error {
				escalations = append(escalations, args[0].String())
				return nil
			})
			db.MustExec(`
create type member;
create type book;
create function holder(book) -> member;
create function days_out(book) -> integer;
create function noticed(member) -> boolean;
create function strikes(member) -> integer;

-- overdue: a held book out more than 14 days notifies the member.
create rule overdue() as
    when for each book b, member m
    where holder(b) = m and days_out(b) > 14
    do notice(m)
    priority 5;

-- escalation: a noticed member with 3+ strikes is escalated; fed by
-- the overdue rule's side effect in the same check phase.
create rule escalation() as
    when for each member m
    where noticed(m) = true and strikes(m) >= 3
    do escalate(m);

create member instances :alice, :bob;
create book instances :b1, :b2;
set holder(:b1) = :alice;
set holder(:b2) = :bob;
set days_out(:b1) = 3;
set days_out(:b2) = 3;
set strikes(:alice) = 0;
set strikes(:bob) = 5;
activate overdue();
activate escalation();
`)
			// Alice's book goes overdue: notice, but no escalation
			// (0 strikes).
			db.MustExec(`set days_out(:b1) = 20;`)
			if len(notices) != 1 || len(escalations) != 0 {
				t.Fatalf("notices=%v escalations=%v", notices, escalations)
			}
			// Bob's book goes overdue: notice AND cascade to escalation
			// (5 strikes).
			db.MustExec(`set days_out(:b2) = 30;`)
			if len(notices) != 2 || len(escalations) != 1 {
				t.Fatalf("notices=%v escalations=%v", notices, escalations)
			}
			// Returning the book within a transaction that also renews
			// it: no net change, nothing fires.
			before := len(notices)
			db.MustExec(`
begin;
set days_out(:b1) = 0;
set days_out(:b1) = 20;
commit;
`)
			if len(notices) != before {
				t.Errorf("transient return fired: %v", notices)
			}
		})
	}
}

// TestScenario_Auction: outbid detection via a max() aggregate.
func TestScenario_Auction(t *testing.T) {
	db := Open()
	var outbid []string
	db.RegisterProcedure("notify_outbid", func(args []Value) error {
		outbid = append(outbid, fmt.Sprintf("%s@%s", args[0], args[1]))
		return nil
	})
	db.MustExec(`
create type lot;
create type bidder;
create function bid(lot l, bidder b) -> integer;
create function reserve(lot) -> integer;
create function highbid(lot l) -> integer
    as select max(bid(l, b)) for each bidder b where bid(l, b) > 0;

-- The lot clears when the high bid crosses the reserve.
create rule cleared() as
    when for each lot l where highbid(l) >= reserve(l)
    do notify_outbid(l, highbid(l));

create lot instances :vase;
create bidder instances :x, :y;
set reserve(:vase) = 100;
set bid(:vase, :x) = 10;
set bid(:vase, :y) = 20;
activate cleared();
`)
	db.MustExec(`set bid(:vase, :x) = 90;`)
	if len(outbid) != 0 {
		t.Fatalf("fired below reserve: %v", outbid)
	}
	db.MustExec(`set bid(:vase, :y) = 120;`)
	if len(outbid) != 1 || outbid[0] != "#1@120" {
		t.Fatalf("outbid=%v", outbid)
	}
	// Strict: a higher bid keeps the condition true, no refire.
	db.MustExec(`set bid(:vase, :x) = 150;`)
	if len(outbid) != 1 {
		t.Errorf("refired: %v", outbid)
	}
}

// TestFacadeFuzz_IncrementalVsNaive drives random update schedules
// through the public API under both monitors and requires identical
// firing.
func TestFacadeFuzz_IncrementalVsNaive(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz skipped in -short")
	}
	scenario := func(mode Mode, seed int64) []string {
		db := Open(WithMode(mode))
		var fired []string
		db.RegisterProcedure("hit", func(args []Value) error {
			fired = append(fired, args[0].String())
			return nil
		})
		db.MustExec(`
create type thing;
create function a(thing) -> integer;
create function b(thing) -> integer;
create function watched(thing) -> boolean;
create rule r1() as
    when for each thing x where a(x) > b(x) and not watched(x)
    do hit(x);
create rule r2() as
    when for each thing x where a(x) + b(x) > 15
    do hit(x)
    priority 3;
create thing instances :t0, :t1, :t2;
activate r1();
activate r2();
`)
		vars := []string{"t0", "t1", "t2"}
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 25; i++ {
			tv := vars[r.Intn(len(vars))]
			var stmt string
			switch r.Intn(4) {
			case 0:
				stmt = fmt.Sprintf("set a(:%s) = %d;", tv, r.Intn(12))
			case 1:
				stmt = fmt.Sprintf("set b(:%s) = %d;", tv, r.Intn(12))
			case 2:
				stmt = fmt.Sprintf("set watched(:%s) = true;", tv)
			default:
				stmt = fmt.Sprintf("remove watched(:%s) = true;", tv)
			}
			if _, err := db.Exec(stmt); err != nil {
				t.Fatalf("seed %d stmt %q: %v", seed, stmt, err)
			}
		}
		return fired
	}
	for seed := int64(0); seed < 10; seed++ {
		inc := fmt.Sprint(scenario(Incremental, seed))
		nai := fmt.Sprint(scenario(Naive, seed))
		if inc != nai {
			t.Errorf("seed %d:\nincremental %s\nnaive       %s", seed, inc, nai)
		}
	}
}

// TestNoOverheadOnUnmonitoredRelations: updates to relations outside
// every condition must not execute any monitor work.
func TestNoOverheadOnUnmonitoredRelations(t *testing.T) {
	db := Open()
	db.RegisterProcedure("hit", func([]Value) error { return nil })
	db.MustExec(`
create type t;
create function monitored(t) -> integer;
create function untracked(t) -> integer;
create rule r() as when for each t x where monitored(x) > 0 do hit(x);
create t instances :a;
set untracked(:a) = 0;
activate r();
`)
	db.ResetStats()
	for i := 0; i < 5; i++ {
		db.MustExec(fmt.Sprintf(`set untracked(:a) = %d;`, i+1))
	}
	s := db.Stats()
	if s.DifferentialsExecuted != 0 || s.NaiveRecomputations != 0 {
		t.Errorf("unmonitored updates cost monitor work: %+v", s)
	}
}

// TestExplainabilityAcrossInfluents: one rule, three different causes.
func TestExplainabilityAcrossInfluents(t *testing.T) {
	db := Open()
	db.RegisterProcedure("hit", func([]Value) error { return nil })
	db.MustExec(`
create type item;
create function stock(item) -> integer;
create function floor_of(item) -> integer;
create rule low() as
    when for each item i where stock(i) < floor_of(i)
    do hit(i);
create item instances :a;
set stock(:a) = 100;
set floor_of(:a) = 50;
activate low();
`)
	cause := func() string {
		ex := db.Explanations()
		if len(ex) != 1 || len(ex[0].Entries) == 0 {
			t.Fatalf("explanations=%+v", ex)
		}
		return ex[0].Entries[0].Influent
	}
	db.MustExec(`set stock(:a) = 10;`)
	if c := cause(); c != "stock" {
		t.Errorf("cause=%s", c)
	}
	db.MustExec(`set stock(:a) = 100;`) // reset (condition false)
	db.MustExec(`set floor_of(:a) = 200;`)
	if c := cause(); c != "floor_of" {
		t.Errorf("cause=%s", c)
	}
}
