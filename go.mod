module partdiff

go 1.22
