package partdiff

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"partdiff/internal/faultinject"
	"partdiff/internal/obs"
)

// drain pops every buffered event from sub without blocking.
func drain(sub *Subscription) []Event {
	var out []Event
	for {
		e, ok := sub.TryNext()
		if !ok {
			return out
		}
		out = append(out, e)
	}
}

// TestEventCommitPointContract is the core ordering guarantee: events
// describing a transaction's work (rule firings, Δ summaries) are
// published only after the commit point, stamped with the commit
// sequence, and a rolled-back transaction publishes nothing but its
// begin/rollback lifecycle.
func TestEventCommitPointContract(t *testing.T) {
	var fired []string
	db := sweepDB(t, &fired)
	sub := db.Subscribe()
	defer sub.Close()

	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	db.MustExec("set quantity(:i1) = 1;")
	// Mid-transaction: only the begin lifecycle event may be visible.
	for _, e := range drain(sub) {
		if e.Type != EventTxn || e.Op != "begin" {
			t.Fatalf("pre-commit event leaked: %+v", e)
		}
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}

	events := drain(sub)
	var haveFiring, haveDelta bool
	var commitSeq uint64
	for _, e := range events {
		switch {
		case e.Type == EventTxn && e.Op == "commit":
			commitSeq = e.CommitSeq
		case e.Type == EventRuleFiring:
			haveFiring = true
			if e.Rule != "low" || len(e.Instances) == 0 {
				t.Errorf("firing event incomplete: %+v", e)
			}
		case e.Type == EventDelta:
			haveDelta = true
			if len(e.Deltas) == 0 {
				t.Errorf("delta event has no entries: %+v", e)
			}
		}
	}
	if !haveFiring || !haveDelta || commitSeq == 0 {
		t.Fatalf("missing events (firing=%v delta=%v commitSeq=%d) in %v", haveFiring, haveDelta, commitSeq, events)
	}
	// Everything transactional carries the same commit sequence, and the
	// commit lifecycle event comes last.
	for i, e := range events {
		if (e.Type == EventRuleFiring || e.Type == EventDelta) && e.CommitSeq != commitSeq {
			t.Errorf("event %d has commit seq %d, want %d: %+v", i, e.CommitSeq, commitSeq, e)
		}
	}
	if last := events[len(events)-1]; last.Type != EventTxn || last.Op != "commit" {
		t.Errorf("last event is %+v, want the txn commit", last)
	}

	// Rolled-back transaction: lifecycle only.
	if err := db.Begin(); err != nil {
		t.Fatal(err)
	}
	db.MustExec("set quantity(:i2) = 1;")
	if err := db.Rollback(); err != nil {
		t.Fatal(err)
	}
	var ops []string
	for _, e := range drain(sub) {
		if e.Type != EventTxn {
			t.Fatalf("rolled-back transaction published %+v", e)
		}
		ops = append(ops, e.Op)
	}
	if fmt.Sprint(ops) != "[begin rollback]" {
		t.Fatalf("rollback lifecycle = %v, want [begin rollback]", ops)
	}
}

// TestEventStreamSoak is the -race subscription soak: concurrent
// writers (some rolling back) against several subscribers, one
// deliberately slow. Asserts no torn events, commit-order publication,
// and that every loss is accounted in the metrics.
func TestEventStreamSoak(t *testing.T) {
	const (
		writers  = 4
		txnsEach = 25
	)
	var fired atomic.Int64
	db := soakOpenDB(t, &fired)
	reg := db.Observability().Registry

	// Subscriber 1: lossless (buffer large enough for everything).
	lossless := db.EventBus().Subscribe(writers*txnsEach*8 + 64)
	// Subscriber 2: filtered to commits only.
	commits := db.Subscribe(EventTxn)
	// Subscriber 3: deliberately slow, tiny buffer — must lose events,
	// and every loss must be accounted.
	slow := db.EventBus().Subscribe(8)

	var slowReal, slowGapped uint64
	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		for {
			e, err := slow.Next(context.Background())
			if err != nil {
				return
			}
			if e.Type == EventGap {
				slowGapped += e.Missed
			} else {
				slowReal++
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	var committed, rolledBack atomic.Int64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 7))
			for i := 0; i < txnsEach; i++ {
				stmts := genTxn(rng, w*100000+i)
				if err := db.Begin(); err != nil {
					t.Errorf("writer %d begin: %v", w, err)
					return
				}
				for _, stmt := range stmts {
					if _, err := db.Exec(stmt); err != nil {
						t.Errorf("writer %d: %v", w, err)
						_ = db.Rollback()
						return
					}
				}
				if i%3 == 2 {
					if err := db.Rollback(); err != nil {
						t.Errorf("writer %d rollback: %v", w, err)
						return
					}
					rolledBack.Add(1)
					continue
				}
				if err := db.Commit(); err != nil {
					t.Errorf("writer %d commit: %v", w, err)
					return
				}
				committed.Add(1)
			}
		}(w)
	}
	wg.Wait()

	// Lossless subscriber: full history, in publication order.
	events := drain(lossless)
	var (
		lastID       uint64
		lastSeq      uint64
		commitEvents int64
		rollbackEvts int64
		firingEvents int64
	)
	for _, e := range events {
		if e.Type == EventGap {
			t.Fatalf("lossless subscriber saw a gap: %+v", e)
		}
		if e.ID <= lastID {
			t.Fatalf("event IDs not increasing: %d after %d", e.ID, lastID)
		}
		lastID = e.ID
		if e.CommitSeq != 0 {
			if e.CommitSeq < lastSeq {
				t.Fatalf("commit sequence regressed: %d after %d (%+v)", e.CommitSeq, lastSeq, e)
			}
			lastSeq = e.CommitSeq
		}
		switch {
		case e.Type == EventTxn && e.Op == "commit":
			commitEvents++
		case e.Type == EventTxn && e.Op == "rollback":
			rollbackEvts++
		case e.Type == EventRuleFiring:
			// One firing event covers every instance the chosen
			// activation fired for; each instance ran one action.
			firingEvents += int64(len(e.Instances))
		}
	}
	if commitEvents != committed.Load() {
		t.Errorf("commit events %d != committed transactions %d", commitEvents, committed.Load())
	}
	if rollbackEvts != rolledBack.Load() {
		t.Errorf("rollback events %d != rolled-back transactions %d", rollbackEvts, rolledBack.Load())
	}
	if firingEvents != fired.Load() {
		t.Errorf("rule firing instances %d != rule actions fired %d", firingEvents, fired.Load())
	}

	// Commit-filtered subscriber: exactly the commits, seq increasing.
	lastSeq = 0
	var filtered int64
	for _, e := range drain(commits) {
		if e.Type == EventGap {
			continue
		}
		if e.Type != EventTxn {
			t.Fatalf("filter leaked %+v", e)
		}
		if e.Op != "commit" {
			continue
		}
		filtered++
		// Non-decreasing: a commit with no net physical writes does not
		// advance the store's commit sequence.
		if e.CommitSeq < lastSeq {
			t.Fatalf("filtered commit seq regressed: %d after %d", e.CommitSeq, lastSeq)
		}
		lastSeq = e.CommitSeq
	}
	if filtered+int64(commits.Dropped()) < commitEvents {
		t.Errorf("commit subscriber saw %d + dropped %d < %d commits", filtered, commits.Dropped(), commitEvents)
	}

	// Slow subscriber: close, wait for its goroutine to drain what is
	// buffered (Next keeps returning buffered events after Close), then
	// check the loss accounting: real + gapped must equal everything
	// published.
	slow.Close()
	<-slowDone
	published := uint64(reg.Total("partdiff_events_published_total"))
	if slowReal+slowGapped != published {
		t.Errorf("slow subscriber: real %d + gapped %d != published %d", slowReal, slowGapped, published)
	}
	if slowGapped == 0 {
		t.Logf("note: slow subscriber kept up (no drops exercised this run)")
	}
	if slowGapped != slow.Dropped() {
		t.Errorf("gap accounting %d != Dropped() %d", slowGapped, slow.Dropped())
	}
	if dropped := reg.CounterValue("partdiff_events_dropped_total"); uint64(dropped) != slow.Dropped()+commits.Dropped() {
		t.Errorf("dropped metric %d != subscriber losses %d+%d", dropped, slow.Dropped(), commits.Dropped())
	}
	lossless.Close()
	commits.Close()

	if err := db.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestEventsUnderFaultSweep extends the PR 1 fault sweep to the event
// stream: a transaction that fails (via an injected error or panic at
// any operation index) must publish no rule firing or Δ events — its
// staged events are discarded — while the survivor replay publishes the
// full committed set.
func TestEventsUnderFaultSweep(t *testing.T) {
	script := genScript(rand.New(rand.NewSource(4)), 8)

	var baseFired []string
	base := sweepDB(t, &baseFired)
	inj := faultinject.New()
	base.Session().SetInjector(inj)
	if err := runScript(base, script); err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	ops := inj.Ops()
	if ops == 0 {
		t.Fatal("clean run hit no fault points; sweep is vacuous")
	}

	for idx := 0; idx < ops; idx++ {
		kind := faultinject.Error
		if idx%2 == 1 {
			kind = faultinject.Panic
		}
		var fired []string
		db := sweepDB(t, &fired)
		inj := faultinject.New()
		db.Session().SetInjector(inj)
		sub := db.Subscribe()
		reg := db.Observability().Registry
		inj.ArmIndex(idx, kind)

		if err := runScript(db, script); err == nil {
			t.Errorf("op %d (%v): injected fault did not surface", idx, kind)
			continue
		} else if errors.Is(err, ErrCorrupt) {
			t.Errorf("op %d (%v): fault poisoned the DB: %v", idx, kind, err)
			continue
		}
		staged := reg.CounterValue("partdiff_events_discarded_total")
		for _, e := range drain(sub) {
			switch e.Type {
			case EventRuleFiring, EventDelta:
				t.Errorf("op %d (%v): failed transaction published %+v", idx, kind, e)
			case EventTxn:
				if e.Op == "commit" {
					t.Errorf("op %d (%v): failed transaction published a commit event", idx, kind)
				}
			}
		}

		// Survivor replay: the committed run publishes its full set.
		fired = nil
		if err := runScript(db, script); err != nil {
			t.Errorf("op %d (%v): survivor replay failed: %v", idx, kind, err)
			sub.Close()
			continue
		}
		var firingInstances int
		var sawCommit bool
		for _, e := range drain(sub) {
			switch {
			case e.Type == EventRuleFiring:
				// One firing event per chosen activation; one action ran
				// per instance it fired for.
				firingInstances += len(e.Instances)
			case e.Type == EventTxn && e.Op == "commit":
				sawCommit = true
			}
		}
		if !sawCommit {
			t.Errorf("op %d (%v): survivor commit published no commit event", idx, kind)
		}
		if firingInstances != len(fired) {
			t.Errorf("op %d (%v): %d firing instances for %d fired actions (discarded before fault: %d)",
				idx, kind, firingInstances, len(fired), staged)
		}
		sub.Close()
	}
}

// TestSlowCommitEvent covers WithSlowCommitThreshold: a commit slower
// than the threshold emits a system event with per-phase timings and
// bumps the slow-commit counter.
func TestSlowCommitEvent(t *testing.T) {
	db := Open(WithSlowCommitThreshold(time.Nanosecond))
	db.RegisterProcedure("record", func([]Value) error { return nil })
	db.MustExec(sweepSchema)
	sub := db.Subscribe(EventSystem)
	defer sub.Close()

	db.MustExec("set quantity(:i1) = 1;")

	var slow *Event
	for _, e := range drain(sub) {
		if e.Op == "slow_commit" {
			e := e
			slow = &e
		}
	}
	if slow == nil {
		t.Fatal("no slow_commit event for a commit over the 1ns threshold")
	}
	if slow.Ms <= 0 {
		t.Errorf("slow_commit total %v ms, want > 0", slow.Ms)
	}
	if slow.CheckMs < 0 || slow.PersistMs < 0 || slow.AckMs < 0 {
		t.Errorf("negative phase timing: %+v", slow)
	}
	if slow.Detail == "" {
		t.Error("slow_commit event has no detail")
	}
	if got := db.Observability().Registry.CounterValue("partdiff_txn_slow_commits_total"); got == 0 {
		t.Error("slow-commit counter not bumped")
	}
}

// TestHealthEndpoints covers /healthz and /readyz on MonitorHandler: a
// healthy durable database serves 200/200; a sticky-poisoned WAL flips
// readiness (but not liveness) to 503.
func TestHealthEndpoints(t *testing.T) {
	db, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv := httptest.NewServer(db.MonitorHandler())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", code)
	}

	// Poison the WAL: an injected fsync failure is sticky.
	inj := faultinject.New()
	db.Session().SetInjector(inj)
	inj.Arm(faultinject.WalFsync, 1, faultinject.Error)
	if _, err := db.Exec("create type item; create item instances :x;"); err == nil {
		t.Fatal("commit with failing fsync succeeded")
	}

	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz after wal poison = %d, want 200 (liveness unaffected)", code)
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "fsync") {
		t.Fatalf("/readyz after wal poison = %d %q, want 503 with the sticky error", code, body)
	}
}

// TestBuildInfoMetrics covers the amos_build_info gauge and uptime
// counter in both exposition surfaces.
func TestBuildInfoMetrics(t *testing.T) {
	db := Open()
	var prom strings.Builder
	if err := db.WriteMetrics(&prom); err != nil {
		t.Fatal(err)
	}
	text := prom.String()
	if !strings.Contains(text, "amos_build_info{") || !strings.Contains(text, `goversion="go`) {
		t.Fatalf("Prometheus output missing amos_build_info:\n%s", firstLines(text, 20))
	}
	if !strings.Contains(text, "amos_uptime_seconds_total") {
		t.Fatal("Prometheus output missing amos_uptime_seconds_total")
	}

	srv := httptest.NewServer(db.MonitorHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "amos_build_info") {
		t.Fatal("expvar output missing amos_build_info")
	}
	if obs.Version() == "" {
		t.Fatal("Version() is empty")
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
