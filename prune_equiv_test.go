package partdiff

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"partdiff/internal/faultinject"
)

// The static-pruning equivalence property: the whole-network Δ-effect
// analysis only removes differentials it has PROVED can never produce a
// tuple, so monitoring with pruning on and off must be observably
// identical — same stored state, same rule firings in the same order,
// same query results — on every workload. These tests drive the
// property over the shipped example scripts and seeded random
// workloads; `bench -exp prune` asserts it again on the paper's §6
// benchmark database.

// twinDBs opens a pruned/unpruned DB pair with identical recording
// procedures and print outputs.
func twinDBs(t *testing.T, procs []string) (on, off *DB, firedOn, firedOff *[]string, outOn, outOff *bytes.Buffer) {
	t.Helper()
	var fOn, fOff []string
	mk := func(fired *[]string, opts ...Option) *DB {
		db := Open(opts...)
		for _, p := range procs {
			p := p
			if err := db.RegisterProcedure(p, func(args []Value) error {
				*fired = append(*fired, fmt.Sprintf("%s%v", p, args))
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		return db
	}
	on = mk(&fOn)
	off = mk(&fOff, WithoutStaticPruning())
	var bOn, bOff bytes.Buffer
	on.SetOutput(&bOn)
	off.SetOutput(&bOff)
	return on, off, &fOn, &fOff, &bOn, &bOff
}

// assertTwinsEqual compares the observable state of the twin DBs.
func assertTwinsEqual(t *testing.T, on, off *DB, firedOn, firedOff *[]string, outOn, outOff *bytes.Buffer) {
	t.Helper()
	if !reflect.DeepEqual(*firedOn, *firedOff) {
		t.Errorf("firings diverge:\npruned:   %v\nunpruned: %v", *firedOn, *firedOff)
	}
	sOn, sOff := on.Session().Store().Snapshot(), off.Session().Store().Snapshot()
	if !reflect.DeepEqual(sOn, sOff) {
		t.Errorf("stored state diverges:\npruned:   %v\nunpruned: %v", sOn, sOff)
	}
	if outOn.String() != outOff.String() {
		t.Errorf("print output diverges:\npruned:   %q\nunpruned: %q", outOn.String(), outOff.String())
	}
	if err := on.CheckInvariants(); err != nil {
		t.Errorf("pruned DB invariants: %v", err)
	}
}

// TestPruningEquivalenceScripts replays every shipped example script on
// a pruned and an unpruned database and compares everything observable.
func TestPruningEquivalenceScripts(t *testing.T) {
	scripts, err := filepath.Glob("examples/scripts/*.amosql")
	if err != nil {
		t.Fatal(err)
	}
	if len(scripts) == 0 {
		t.Fatal("no example scripts found")
	}
	for _, path := range scripts {
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			on, off, fOn, fOff, bOn, bOff := twinDBs(t, []string{"order"})
			resOn, errOn := on.Exec(string(src))
			resOff, errOff := off.Exec(string(src))
			if (errOn == nil) != (errOff == nil) {
				t.Fatalf("script errors diverge: pruned %v, unpruned %v", errOn, errOff)
			}
			if errOn != nil {
				t.Fatalf("script failed: %v", errOn)
			}
			if !reflect.DeepEqual(resOn, resOff) {
				t.Errorf("statement results diverge:\npruned:   %v\nunpruned: %v", resOn, resOff)
			}
			assertTwinsEqual(t, on, off, fOn, fOff, bOn, bOff)
		})
	}
}

// pruneSchema extends the fault-sweep schema with an append-only event
// log monitored by a second rule, so the capability declarations make
// the analysis actually prune differentials (Δ− of events is
// impossible) while random updates still flow through both networks.
const pruneSchema = `
create type item;
create function quantity(item) -> integer;
create function threshold(item) -> integer;
create function events(item) -> integer;
create rule low() as
    when for each item i where quantity(i) < threshold(i)
    do record(i);
create rule busy() as
    when for each item i, integer n where events(i) = n and n > 2
    do record2(i);
create item instances :i1, :i2, :i3;
set threshold(:i1) = 10;
set threshold(:i2) = 10;
set threshold(:i3) = 10;
declare threshold readonly;
declare events append only;
activate low();
activate busy();
`

// genPruneScript draws a random update script that respects the
// declared capabilities: quantity updates plus event-log appends.
func genPruneScript(rng *rand.Rand, steps int) []string {
	items := []string{":i1", ":i2", ":i3"}
	script := make([]string, 0, steps)
	for j := 0; j < steps; j++ {
		it := items[rng.Intn(len(items))]
		if rng.Intn(3) == 0 {
			script = append(script, fmt.Sprintf("add events(%s) = %d;", it, rng.Intn(6)))
		} else {
			script = append(script, fmt.Sprintf("set quantity(%s) = %d;", it, rng.Intn(20)))
		}
	}
	return script
}

// TestPruningEquivalenceRandom runs seeded random workloads through a
// pruned/unpruned twin pair, comparing state and firings after every
// transaction, and asserts the pruned network actually dropped
// differentials (the property must not hold vacuously).
func TestPruningEquivalenceRandom(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			on, off, fOn, fOff, bOn, bOff := twinDBs(t, []string{"record", "record2"})
			on.MustExec(pruneSchema)
			off.MustExec(pruneSchema)
			net := on.Session().Rules().Network()
			if net == nil || net.PrunedCount() == 0 {
				t.Fatal("schema declarations pruned nothing; the equivalence check is vacuous")
			}
			if offNet := off.Session().Rules().Network(); offNet.PrunedCount() != 0 {
				t.Fatalf("unpruned twin pruned %d differentials", offNet.PrunedCount())
			}
			rng := rand.New(rand.NewSource(seed))
			for txn := 0; txn < 8; txn++ {
				script := genPruneScript(rng, 1+rng.Intn(6))
				errOn := runScript(on, script)
				errOff := runScript(off, script)
				if (errOn == nil) != (errOff == nil) {
					t.Fatalf("txn %d: errors diverge: pruned %v, unpruned %v", txn, errOn, errOff)
				}
				assertTwinsEqual(t, on, off, fOn, fOff, bOn, bOff)
			}
		})
	}
}

// TestFaultSweepPruned re-runs the fault-sweep discipline with static
// pruning active (capability declarations in the schema): a fault at
// every operation index must surface, roll back cleanly, and leave a
// survivor that replays to the same state and firings as a fresh DB.
func TestFaultSweepPruned(t *testing.T) {
	seeds := []int64{1, 2}
	stride := 1
	if testing.Short() {
		seeds = seeds[:1]
		stride = 3
	}
	mkDB := func(fired *[]string) *DB {
		db := Open()
		for _, p := range []string{"record", "record2"} {
			p := p
			db.RegisterProcedure(p, func(args []Value) error {
				*fired = append(*fired, fmt.Sprintf("%s%v", p, args[0]))
				return nil
			})
		}
		db.MustExec(pruneSchema)
		return db
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			script := genPruneScript(rand.New(rand.NewSource(seed)), 8)

			var baseFired []string
			base := mkDB(&baseFired)
			if n := base.Session().Rules().Network().PrunedCount(); n == 0 {
				t.Fatal("sweep schema pruned nothing")
			}
			inj := faultinject.New()
			base.Session().SetInjector(inj)
			baseFired = nil
			if err := runScript(base, script); err != nil {
				t.Fatalf("clean run failed: %v", err)
			}
			baseState := base.Session().Store().Snapshot()
			ops := inj.Ops()
			if ops == 0 {
				t.Fatal("clean run hit no fault points; sweep is vacuous")
			}

			for idx := 0; idx < ops; idx += stride {
				kind := faultinject.Error
				if idx%2 == 1 {
					kind = faultinject.Panic
				}
				var fired []string
				db := mkDB(&fired)
				inj := faultinject.New()
				db.Session().SetInjector(inj)
				pre := db.Session().Store().Snapshot()
				fired = nil
				inj.ArmIndex(idx, kind)

				err := runScript(db, script)
				if err == nil {
					t.Errorf("op %d (%v): injected fault did not surface", idx, kind)
					continue
				}
				if errors.Is(err, ErrCorrupt) {
					t.Errorf("op %d (%v): forward-phase fault poisoned the DB: %v", idx, kind, err)
					continue
				}
				if got := db.Session().Store().Snapshot(); !reflect.DeepEqual(got, pre) {
					t.Errorf("op %d (%v): store differs from pre-transaction snapshot", idx, kind)
				}
				if ierr := db.CheckInvariants(); ierr != nil {
					t.Errorf("op %d (%v): invariants after rollback: %v", idx, kind, ierr)
				}
				fired = nil
				if rerr := runScript(db, script); rerr != nil {
					t.Errorf("op %d (%v): survivor replay failed: %v", idx, kind, rerr)
					continue
				}
				if !reflect.DeepEqual(fired, baseFired) {
					t.Errorf("op %d (%v): survivor fired %v, fresh DB fired %v", idx, kind, fired, baseFired)
				}
				if got := db.Session().Store().Snapshot(); !reflect.DeepEqual(got, baseState) {
					t.Errorf("op %d (%v): survivor state diverges from baseline", idx, kind)
				}
			}
		})
	}
}

// TestDeclareSurvivesReopen checks the `declare` statement is journaled
// like other DDL: after reopening from the data directory the
// restriction is still enforced and the rebuilt network still prunes.
func TestDeclareSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	var fired []string
	rec := func(args []Value) error {
		fired = append(fired, fmt.Sprintf("%v", args[0]))
		return nil
	}
	db, err := OpenDir(dir, WithProcedure("record", rec), WithProcedure("record2", rec))
	if err != nil {
		t.Fatal(err)
	}
	db.MustExec(pruneSchema)
	db.MustExec(`set quantity(:i1) = 3;`)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenDir(dir, WithProcedure("record", rec), WithProcedure("record2", rec))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.Exec(`set threshold(:i1) = 3;`); err == nil {
		t.Fatal("readonly declaration lost across reopen")
	}
	if _, err := db2.Exec(`remove events(:i1) = 3;`); err == nil {
		t.Fatal("append-only declaration lost across reopen")
	}
	db2.MustExec(`set quantity(:i2) = 3;`)
	if net := db2.Session().Rules().Network(); net == nil || net.PrunedCount() == 0 {
		t.Fatal("recovered network prunes nothing")
	}
}
