package partdiff

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"partdiff/internal/faultinject"
	"partdiff/internal/obs"
)

const flightrecSchema = `
create type item;
create function quantity(item) -> integer;
create function threshold(item) -> integer;
create rule low() as
    when for each item i where quantity(i) < threshold(i)
    do print(i);
create item instances :i0, :i1, :i2, :i3;
set threshold(:i0) = 0;
set threshold(:i1) = 0;
set threshold(:i2) = 0;
set threshold(:i3) = 0;
activate low();
`

// validateBundleDir schema-checks one on-disk bundle: the manifest and
// every recorder.jsonl line must decode with unknown fields rejected,
// and every file the manifest lists must exist.
func validateBundleDir(t *testing.T, dir string) (obs.Manifest, []string) {
	t.Helper()
	man, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatalf("bundle %s has no manifest: %v", dir, err)
	}
	dec := json.NewDecoder(bytes.NewReader(man))
	dec.DisallowUnknownFields()
	var m obs.Manifest
	if err := dec.Decode(&m); err != nil {
		t.Fatalf("manifest schema violation in %s: %v", dir, err)
	}
	if m.Format != obs.BundleFormat {
		t.Fatalf("bundle format = %q, want %q", m.Format, obs.BundleFormat)
	}
	for _, f := range m.Files {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("manifest lists missing file: %v", err)
		}
	}
	recData, err := os.ReadFile(filepath.Join(dir, "recorder.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	sc := bufio.NewScanner(bytes.NewReader(recData))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		ldec := json.NewDecoder(bytes.NewReader(sc.Bytes()))
		ldec.DisallowUnknownFields()
		var line struct {
			Kind   string            `json:"kind"`
			Wave   *obs.WaveRecord   `json:"wave,omitempty"`
			Commit *obs.CommitRecord `json:"commit,omitempty"`
			Fsync  *obs.FsyncRecord  `json:"fsync,omitempty"`
			Choice *obs.ChoiceRecord `json:"choice,omitempty"`
			Event  *obs.EventRecord  `json:"event,omitempty"`
		}
		if err := ldec.Decode(&line); err != nil {
			t.Fatalf("recorder.jsonl schema violation: %v\n%s", err, sc.Bytes())
		}
		kinds = append(kinds, line.Kind)
	}
	return m, kinds
}

// TestFlightRecorderSoak runs 4 concurrent writers against an armed
// recorder while two anomaly triggers fire (every commit trips the
// 1ns slow-commit threshold; a declared-readonly write trips
// capability_violation). It asserts no commit is ever blocked or
// failed by the recorder, and that the default cooldown pins each
// trigger kind to exactly one bundle.
func TestFlightRecorderSoak(t *testing.T) {
	bundles := t.TempDir()
	db, err := OpenDir(t.TempDir(),
		WithFlightRecorder(bundles),
		WithSlowCommitThreshold(time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	db.EventBus().Arm()
	if _, err := db.Exec(flightrecSchema); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("declare threshold readonly;"); err != nil {
		t.Fatal(err)
	}

	const writers, txnsPer = 4, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers*txnsPer)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < txnsPer; j++ {
				if _, err := db.Exec(fmt.Sprintf("set quantity(:i%d) = %d;", w, j+1)); err != nil {
					errs <- fmt.Errorf("writer %d txn %d: %w", w, j, err)
					return
				}
			}
		}(w)
	}
	// The violating write races the writers; its failure is expected,
	// anything else is not.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := db.Exec("set threshold(:i0) = 5;"); err == nil {
			errs <- fmt.Errorf("write to a readonly function succeeded")
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	reg := db.Observability().Registry
	if !db.FlightRecorder().Armed() {
		t.Fatal("recorder disarmed itself during the soak")
	}
	var prom strings.Builder
	if err := db.WriteMetrics(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), "partdiff_flightrec_armed 1") {
		t.Error("partdiff_flightrec_armed gauge is not 1")
	}
	if err := db.Close(); err != nil { // drains queued bundle writes
		t.Fatal(err)
	}

	perKind := map[string]int{}
	infos, err := db.FlightRecorder().ListBundles()
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range infos {
		perKind[info.Trigger]++
		m, kinds := validateBundleDir(t, filepath.Join(bundles, info.Name))
		if m.Trigger != info.Trigger {
			t.Errorf("manifest trigger %q != listing trigger %q", m.Trigger, info.Trigger)
		}
		if len(kinds) == 0 {
			t.Errorf("bundle %s froze an empty window", info.Name)
		}
	}
	if perKind[obs.TrigSlowCommit] != 1 {
		t.Errorf("slow_commit bundles = %d, want exactly 1 (cooldown dedup)", perKind[obs.TrigSlowCommit])
	}
	if perKind[obs.TrigCapViolation] != 1 {
		t.Errorf("capability_violation bundles = %d, want exactly 1", perKind[obs.TrigCapViolation])
	}
	// Triggers fired far more often than bundles were written.
	if !strings.Contains(prom.String(), `partdiff_flightrec_triggers_total{trigger="slow_commit"}`) {
		t.Error("triggers_total has no slow_commit series")
	}
	if got := reg.CounterValue("partdiff_flightrec_suppressed_total"); got == 0 {
		t.Error("cooldown suppressed nothing despite a trigger per commit")
	}
}

// TestFlightRecorderWalPoisonBundle injects a WAL fsync fault and
// asserts the recorder writes exactly one wal_poisoned bundle whose
// frozen event window ends on the poisoning transaction.
func TestFlightRecorderWalPoisonBundle(t *testing.T) {
	bundles := t.TempDir()
	db, err := OpenDir(t.TempDir(), WithFlightRecorder(bundles))
	if err != nil {
		t.Fatal(err)
	}
	db.EventBus().Arm()
	if _, err := db.Exec("create type item; create item instances :a;"); err != nil {
		t.Fatal(err)
	}

	inj := faultinject.New()
	db.Session().SetInjector(inj)
	inj.Arm(faultinject.WalFsync, 0, faultinject.Error)
	if _, err := db.Exec("create item instances :b;"); err == nil {
		t.Fatal("commit with failing fsync succeeded")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	infos, err := db.FlightRecorder().ListBundles()
	if err != nil {
		t.Fatal(err)
	}
	var poisoned []obs.BundleInfo
	for _, info := range infos {
		if info.Trigger == obs.TrigWalPoisoned {
			poisoned = append(poisoned, info)
		}
	}
	if len(poisoned) != 1 {
		t.Fatalf("wal_poisoned bundles = %d, want exactly 1 (%+v)", len(poisoned), infos)
	}
	validateBundleDir(t, filepath.Join(bundles, poisoned[0].Name))

	// The frozen window must end on the poisoning transaction: the
	// trigger fires inside its failing persist phase, so the last
	// txn-lifecycle event mirrored into the ring is that transaction's
	// begin — its commit/rollback had not been published yet.
	recData, err := os.ReadFile(filepath.Join(bundles, poisoned[0].Name, "recorder.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	var lastTxnOp string
	sc := bufio.NewScanner(bytes.NewReader(recData))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line struct {
			Kind  string           `json:"kind"`
			Event *obs.EventRecord `json:"event"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		if line.Kind == "event" && line.Event.Type == string(obs.EventTxn) {
			lastTxnOp = line.Event.Op
		}
	}
	if lastTxnOp != "begin" {
		t.Fatalf("last txn event in the frozen window = %q, want the poisoning txn's begin", lastTxnOp)
	}
}

// TestReadyzReasonAndRetryAfter covers the reason-prefixed /readyz
// bodies: a WAL-poisoned database answers 503 with a wal-poisoned
// reason and a Retry-After header; liveness is unaffected.
func TestReadyzReasonAndRetryAfter(t *testing.T) {
	db, err := OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv := httptest.NewServer(db.MonitorHandler())
	defer srv.Close()

	inj := faultinject.New()
	db.Session().SetInjector(inj)
	inj.Arm(faultinject.WalFsync, 1, faultinject.Error)
	if _, err := db.Exec("create type item; create item instances :x;"); err == nil {
		t.Fatal("commit with failing fsync succeeded")
	}

	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d, want 503", resp.StatusCode)
	}
	if !strings.HasPrefix(string(body), "wal-poisoned:") {
		t.Fatalf("/readyz body = %q, want a wal-poisoned: reason prefix", body)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want 1", got)
	}
}

// TestDebugBundleEndpoints covers the monitor handler's bundle surface:
// /debug/bundle returns a schema-valid JSON bundle and writes it to
// disk, /debug/bundles/ lists it, its files are served, and path
// traversal is rejected.
func TestDebugBundleEndpoints(t *testing.T) {
	bundles := t.TempDir()
	db, err := OpenDir(t.TempDir(), WithFlightRecorder(bundles))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(flightrecSchema); err != nil {
		t.Fatal(err)
	}
	// Post-activation writes drive propagation, filling the wave ring.
	for j := 1; j <= 3; j++ {
		if _, err := db.Exec(fmt.Sprintf("set quantity(:i0) = %d;", j)); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(db.MonitorHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/bundle")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/bundle = %d: %s", resp.StatusCode, data)
	}
	var b obs.Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("bundle JSON: %v", err)
	}
	if b.Format != obs.BundleFormat || b.Trigger != "manual" {
		t.Fatalf("bundle manifest = %+v", b.Manifest)
	}
	if len(b.Commits) == 0 || len(b.Waves) == 0 {
		t.Fatalf("bundle window is empty: %v", b.Records)
	}
	if len(b.Metrics) == 0 || b.Goroutines == "" {
		t.Fatal("bundle lacks metrics snapshot or goroutine dump")
	}
	if _, ok := b.Extras["profile.txt"]; !ok {
		t.Fatalf("bundle extras = %v, want the session's profile report", b.Extras)
	}
	if b.Path == "" {
		t.Fatal("bundle was not written to the configured directory")
	}
	validateBundleDir(t, b.Path)

	resp, err = http.Get(srv.URL + "/debug/bundles/")
	if err != nil {
		t.Fatal(err)
	}
	var infos []obs.BundleInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 1 || infos[0].Name != filepath.Base(b.Path) {
		t.Fatalf("/debug/bundles/ = %+v, want the bundle just written", infos)
	}

	resp, err = http.Get(srv.URL + "/debug/bundles/" + infos[0].Name + "/manifest.json")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bundle file serve = %d", resp.StatusCode)
	}

	for _, bad := range []string{
		"/debug/bundles/../secrets",
		"/debug/bundles/" + infos[0].Name + "/../../wal.log",
		"/debug/bundles/notabundle/file",
	} {
		req, err := http.NewRequest(http.MethodGet, srv.URL+bad, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Keep the raw path: the default client normalizes ".." away.
		req.URL.Opaque = bad
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Errorf("%s served, want rejection", bad)
		}
	}
}

// TestFlightRecorderRuntimeMetrics covers the runtime/metrics bridge:
// the Go runtime gauges and histograms appear in both a bundle's
// metrics snapshot and the Prometheus exposition.
func TestFlightRecorderRuntimeMetrics(t *testing.T) {
	db := Open()
	var prom strings.Builder
	if err := db.WriteMetrics(&prom); err != nil {
		t.Fatal(err)
	}
	text := prom.String()
	for _, name := range []string{
		"partdiff_go_heap_bytes",
		"partdiff_go_goroutines",
		"partdiff_go_gc_pause_seconds",
		"partdiff_go_sched_latency_seconds",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("Prometheus output missing %s", name)
		}
	}
	if !strings.Contains(text, "partdiff_go_gc_pause_seconds_bucket") {
		t.Error("gc pause histogram has no buckets in the exposition")
	}
}
