package partdiff

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"partdiff/internal/faultinject"
	"partdiff/internal/wal"
)

// The durability suite: crash-recovery sweeps over every fault point in
// the commit/append/checkpoint path, torn-tail detection, replay
// determinism (re-fired deferred rule checks), checkpoint round trips,
// and a real kill -9 smoke test. It reuses the sweep schema, script
// generator, and transaction runner from faultsweep_test.go.

// durDB opens a durable DB on dir with the sweep schema's record
// procedure wired to *fired.
func durDB(t *testing.T, dir string, fired *[]string, opts ...Option) *DB {
	t.Helper()
	opts = append(opts, WithProcedure("record", func(args []Value) error {
		if fired != nil {
			*fired = append(*fired, fmt.Sprintf("%v", args[0]))
		}
		return nil
	}))
	db, err := OpenDir(dir, opts...)
	if err != nil {
		t.Fatalf("OpenDir(%s): %v", dir, err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// stateBytes serializes the DB's full logical state for byte-for-byte
// comparison.
func stateBytes(db *DB) []byte {
	return wal.MarshalState(db.Session().CaptureState())
}

// probeScript is the swept transaction: two quantity updates, one of
// which fires the low() rule.
var probeScript = []string{
	"set quantity(:i1) = 5;",
	"set quantity(:i2) = 12;",
}

// TestDurableReopenRoundTrip: schema and committed updates survive a
// clean close and reopen byte-for-byte, rule actions re-fire during
// replay, and the reopened database accepts new work.
func TestDurableReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var fired []string
	db := durDB(t, dir, &fired)
	db.MustExec(sweepSchema)
	fired = nil
	if err := runScript(db, probeScript); err != nil {
		t.Fatal(err)
	}
	origFired := append([]string(nil), fired...)
	if len(origFired) == 0 {
		t.Fatal("probe fired no rules; test is vacuous")
	}
	want := stateBytes(db)
	wantLevels := db.Session().Rules().Network().Levels()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	var refired []string
	db2 := durDB(t, dir, &refired)
	if got := stateBytes(db2); !bytes.Equal(got, want) {
		t.Error("recovered state differs from pre-close state")
	}
	if !reflect.DeepEqual(refired, origFired) {
		t.Errorf("replay fired %v, original run fired %v", refired, origFired)
	}
	if got := db2.Session().Rules().Network().Levels(); !reflect.DeepEqual(got, wantLevels) {
		t.Errorf("recovered propagation network levels = %v, want %v", got, wantLevels)
	}
	if err := db2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	db2.MustExec("set quantity(:i3) = 1;")
	if err := db2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultSweepCrashRecovery is the crash sweep: a fault (error or
// panic) is injected at every operation index the probe transaction
// hits — storage updates, propagation, differentials, rule actions, WAL
// append, WAL fsync — the process "crashes" (the DB is abandoned
// without Close), and the directory is reopened. Recovery must always
// land on exactly the pre-transaction or the post-transaction state,
// with invariants intact and the database accepting new commits.
func TestFaultSweepCrashRecovery(t *testing.T) {
	// Control run: pre- and post-probe reference states and the
	// operation count that bounds the sweep. The injector is installed
	// after the schema so only the probe transaction is swept —
	// identical statement sequences yield identical OIDs and log
	// sequence numbers, so the reference bytes compare exactly.
	ctl := durDB(t, t.TempDir(), nil)
	ctl.MustExec(sweepSchema)
	pre := stateBytes(ctl)
	inj := faultinject.New()
	ctl.Session().SetInjector(inj)
	if err := runScript(ctl, probeScript); err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	post := stateBytes(ctl)
	ops := inj.Ops()
	if ops == 0 {
		t.Fatal("clean run hit no fault points; sweep is vacuous")
	}

	stride := 1
	if testing.Short() {
		stride = 4
	}
	for idx := 0; idx < ops; idx += stride {
		kind := faultinject.Error
		if idx%2 == 1 {
			kind = faultinject.Panic
		}
		dir := t.TempDir()
		db := durDB(t, dir, nil)
		db.MustExec(sweepSchema)
		inj := faultinject.New()
		db.Session().SetInjector(inj)
		inj.ArmIndex(idx, kind)
		if err := runScript(db, probeScript); err == nil {
			t.Errorf("op %d (%v): injected fault did not surface", idx, kind)
			continue
		}
		// Crash: abandon db without Close and recover from disk.
		re, err := OpenDir(dir, WithProcedure("record", func([]Value) error { return nil }))
		if err != nil {
			t.Errorf("op %d (%v): recovery failed: %v", idx, kind, err)
			continue
		}
		got := stateBytes(re)
		if !bytes.Equal(got, pre) && !bytes.Equal(got, post) {
			t.Errorf("op %d (%v): recovered state is neither pre- nor post-transaction", idx, kind)
		}
		if ierr := re.CheckInvariants(); ierr != nil {
			t.Errorf("op %d (%v): invariants after recovery: %v", idx, kind, ierr)
		}
		re.MustExec("set threshold(:i3) = 2;")
		if ierr := re.CheckInvariants(); ierr != nil {
			t.Errorf("op %d (%v): invariants after post-recovery commit: %v", idx, kind, ierr)
		}
		re.Close()
	}
}

// TestTornFinalRecordDiscarded: a final WAL record torn mid-write (the
// crash window between write and fsync) is detected by its CRC frame
// and discarded — recovery lands on the last fully durable commit and
// the log accepts new records after the tear.
func TestTornFinalRecordDiscarded(t *testing.T) {
	for _, tc := range []struct {
		name string
		tear func(path string) error
	}{
		{"truncated tail", func(path string) error {
			st, err := os.Stat(path)
			if err != nil {
				return err
			}
			return os.Truncate(path, st.Size()-3)
		}},
		{"garbage tail", func(path string) error {
			f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				return err
			}
			if _, err := f.Write([]byte{0x17, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}},
		{"corrupted payload", func(path string) error {
			b, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			b[len(b)-2] ^= 0x40
			return os.WriteFile(path, b, 0o644)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			db := durDB(t, dir, nil)
			db.MustExec(sweepSchema)
			db.MustExec("set quantity(:i1) = 15;")
			afterFirst := stateBytes(db)
			db.MustExec("set quantity(:i2) = 14;") // the record to tear
			afterSecond := stateBytes(db)
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			if err := tc.tear(filepath.Join(dir, "wal.log")); err != nil {
				t.Fatal(err)
			}

			re := durDB(t, dir, nil)
			got := stateBytes(re)
			var want []byte
			switch tc.name {
			case "garbage tail": // both commits are intact, only the junk goes
				want = afterSecond
			default: // the second commit is torn and must be discarded
				want = afterFirst
			}
			if !bytes.Equal(got, want) {
				t.Fatal("recovered state does not match the last durable commit")
			}
			if n := re.Observability().Registry.CounterValue("partdiff_wal_torn_records_total"); n != 1 {
				t.Errorf("torn records counter = %d, want 1", n)
			}
			if err := re.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			// The log is writable again after the tear was cut away.
			re.MustExec("set quantity(:i3) = 13;")
			want2 := stateBytes(re)
			if err := re.Close(); err != nil {
				t.Fatal(err)
			}
			re2 := durDB(t, dir, nil)
			if !bytes.Equal(stateBytes(re2), want2) {
				t.Error("post-tear commit did not survive reopen")
			}
		})
	}
}

// TestCheckpointPropertyRoundTrip is the property test: for seeded
// random workloads, checkpoint → reopen must yield byte-identical
// state, an equivalent propagation network, and the same explanations
// for an identical probe update.
func TestCheckpointPropertyRoundTrip(t *testing.T) {
	seeds := []int64{11, 12, 13, 14}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			workload := func(db *DB) {
				t.Helper()
				rng := rand.New(rand.NewSource(seed))
				db.MustExec(sweepSchema)
				for i := 0; i < 3; i++ {
					if err := runScript(db, genScript(rng, 6)); err != nil {
						t.Fatal(err)
					}
				}
			}
			dir := t.TempDir()
			db := durDB(t, dir, nil)
			workload(db)
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			// The checkpoint truncated the log: all state now lives in
			// the snapshot alone.
			want := stateBytes(db)
			wantLevels := db.Session().Rules().Network().Levels()
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			re := durDB(t, dir, nil)
			if got := stateBytes(re); !bytes.Equal(got, want) {
				t.Fatal("state recovered from checkpoint differs byte-for-byte")
			}
			if got := re.Session().Rules().Network().Levels(); !reflect.DeepEqual(got, wantLevels) {
				t.Errorf("recovered network levels = %v, want %v", got, wantLevels)
			}
			if err := re.CheckInvariants(); err != nil {
				t.Fatal(err)
			}

			// Same probe update, same ΔP: a clean in-memory run of the
			// identical workload must explain the probe identically.
			ctl := Open()
			ctl.RegisterProcedure("record", func([]Value) error { return nil })
			workload(ctl)
			const probe = "set quantity(:i1) = 0;"
			re.MustExec(probe)
			ctl.MustExec(probe)
			got, want2 := re.Explanations(), ctl.Explanations()
			if (len(got) != 0 || len(want2) != 0) && !reflect.DeepEqual(got, want2) {
				t.Errorf("probe explanations after recovery = %v, clean run = %v", got, want2)
			}
		})
	}
}

// TestRecoverySmoke is the kill -9 gate run by CI: a child process
// opens a durable database with sync=always, commits a known workload,
// signals readiness, and is killed with SIGKILL mid-run; the parent
// then recovers the directory in-process and verifies the state matches
// a clean control run exactly.
func TestRecoverySmoke(t *testing.T) {
	if dir := os.Getenv("PARTDIFF_SMOKE_DIR"); dir != "" {
		recoverySmokeChild(dir)
		return
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=^TestRecoverySmoke$", "-test.count=1")
	cmd.Env = append(os.Environ(), "PARTDIFF_SMOKE_DIR="+dir)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	ready := filepath.Join(dir, "ready")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(ready); err == nil {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("child never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup, no Close
		t.Fatal(err)
	}
	cmd.Wait()
	os.Remove(ready)

	var fired []string
	re := durDB(t, dir, &fired)
	if err := re.CheckInvariants(); err != nil {
		t.Fatalf("invariants after kill -9 recovery: %v", err)
	}
	// Control: the same workload on a fresh directory.
	ctl := durDB(t, t.TempDir(), nil)
	smokeWorkload(ctl)
	if !bytes.Equal(stateBytes(re), stateBytes(ctl)) {
		t.Error("recovered state differs from clean control run")
	}
	if len(fired) == 0 {
		t.Error("replay re-fired no deferred rule checks")
	}
	re.MustExec("set quantity(:i3) = 4;")
	if err := re.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// smokeWorkload is the deterministic workload both the killed child and
// the control run execute.
func smokeWorkload(db *DB) {
	db.MustExec(sweepSchema)
	db.MustExec("set quantity(:i1) = 5;")  // fires low(i1)
	db.MustExec("set quantity(:i2) = 20;") // no firing
	db.MustExec("set quantity(:i1) = 7;")  // already triggered once
}

// recoverySmokeChild is the killed process: every commit is fsynced
// before acknowledgement, so everything committed before the ready
// marker must survive the SIGKILL.
func recoverySmokeChild(dir string) {
	db, err := OpenDir(dir,
		WithSyncPolicy(SyncAlways),
		WithProcedure("record", func([]Value) error { return nil }))
	if err != nil {
		fmt.Fprintln(os.Stderr, "smoke child:", err)
		os.Exit(1)
	}
	smokeWorkload(db)
	if err := os.WriteFile(filepath.Join(dir, "ready"), nil, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "smoke child:", err)
		os.Exit(1)
	}
	for { // wait for the SIGKILL
		time.Sleep(time.Second)
	}
}
