package partdiff

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"partdiff/internal/faultinject"
)

// profDB builds a small monitored database with profiling on and
// wall-clock sampling effectively disabled, so every report column is
// deterministic (the time column prints "-" when nothing was sampled).
func profDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	if err := db.RegisterProcedure("order", func([]Value) error { return nil }); err != nil {
		t.Fatal(err)
	}
	db.MustExec(`
create type item;
create function quantity(item) -> integer;
create function reorder_at(item) -> integer;
create rule refill() as
    when for each item i where quantity(i) < reorder_at(i)
    do order(i);
create item instances :a, :b;
set quantity(:a) = 100;
set quantity(:b) = 100;
set reorder_at(:a) = 25;
set reorder_at(:b) = 25;
activate refill();
`)
	db.Observability().Profiler.SetSampleEvery(1 << 30)
	db.SetProfiling(true)
	return db
}

// TestProfileReportGolden pins the \profile report format end to end:
// per-differential rows attributed to their rule, ranked by scanned
// tuples, the totals row, and the per-rule zero-effect summary the
// paper's wasted-work argument calls for. The workload is fixed and
// timing is unsampled, so the report is byte-stable.
func TestProfileReportGolden(t *testing.T) {
	db := profDB(t)
	// Txn 1 fires the rule (quantity drops below the threshold); txn 2
	// reverts it; txn 3 touches the other influent without ever making
	// the condition true — pure zero-effect work.
	db.MustExec("begin; set quantity(:a) = 10; commit;")
	db.MustExec("begin; set quantity(:a) = 90; commit;")
	db.MustExec("begin; set reorder_at(:b) = 30; commit;")

	var buf bytes.Buffer
	if err := db.ProfileReport(&buf, 0); err != nil {
		t.Fatal(err)
	}
	want := `propagation profile — 3 profiled propagation(s), 6 differential execution(s), 4 zero-effect (66.7%)
rank  source                 differential                       strategy   execs   zero     Δin    Δout   scanned       time
   1  refill                 Δcnd_refill#1/Δ+quantity           -              2      1       2       1         4          -
   2  refill                 Δcnd_refill#1/Δ-quantity           -              2      1       2       1         4          -
   3  refill                 Δcnd_refill#1/Δ+reorder_at         -              1      1       1       0         2          -
   4  refill                 Δcnd_refill#1/Δ-reorder_at         -              1      1       1       0         2          -
      total                                                                    6      4       6       2        12        0ns
zero-effect executions by source:
  refill                 4 of 6 (66.7%)
`
	if got := buf.String(); got != want {
		t.Errorf("report mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// topK truncation keeps the totals and summary and says what it hid.
	buf.Reset()
	if err := db.ProfileReport(&buf, 2); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, frag := range []string{
		"… 2 more differential(s); \\profile report 4 to widen",
		"zero-effect executions by source:",
	} {
		if !strings.Contains(got, frag) {
			t.Errorf("topK report missing %q:\n%s", frag, got)
		}
	}
	if strings.Contains(got, "Δ+reorder_at") {
		t.Errorf("topK=2 report still shows rank-3 row:\n%s", got)
	}

	// Turning profiling off keeps the accumulated profile readable.
	db.SetProfiling(false)
	db.MustExec("begin; set quantity(:a) = 95; commit;")
	buf.Reset()
	if err := db.ProfileReport(&buf, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "6 differential execution(s)") {
		t.Errorf("profile changed while off:\n%s", buf.String())
	}
}

// TestProfileReportEmpty pins the never-profiled message.
func TestProfileReportEmpty(t *testing.T) {
	db := Open()
	var buf bytes.Buffer
	if err := db.ProfileReport(&buf, 0); err != nil {
		t.Fatal(err)
	}
	want := "propagation profile — 0 profiled propagation(s), 0 differential execution(s), 0 zero-effect (0.0%)\n" +
		"no differential executions profiled (\\profile on, then run transactions)\n"
	if buf.String() != want {
		t.Errorf("empty report:\n%s", buf.String())
	}
}

// TestProfilingConcurrent hammers the read surfaces — ProfileReport,
// /metrics with a prefix filter, and the pprof index — from other
// goroutines while commits propagate. Run under -race this is the
// proof that profiling can be inspected live.
func TestProfilingConcurrent(t *testing.T) {
	db := profDB(t)
	srv := httptest.NewServer(db.MonitorHandler())
	defer srv.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	get := func(path string) (string, error) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			return "", err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err == nil && resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("GET %s: %d", path, resp.StatusCode)
		}
		return string(body), err
	}
	var readerErr error
	var mu sync.Mutex
	fail := func(err error) {
		mu.Lock()
		if readerErr == nil {
			readerErr = err
		}
		mu.Unlock()
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := db.ProfileReport(io.Discard, 5); err != nil {
				fail(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			var body string
			var err error
			if i%2 == 0 {
				body, err = get("/metrics?prefix=partdiff_propnet_")
				if err == nil && strings.Contains(body, "partdiff_txn_commits_total") {
					err = fmt.Errorf("prefix filter leaked txn counters")
				}
			} else {
				_, err = get("/debug/pprof/")
			}
			if err != nil {
				fail(err)
				return
			}
		}
	}()
	for i := 0; i < 50; i++ {
		db.MustExec(fmt.Sprintf("begin; set quantity(:a) = %d; commit;", 90-i%2))
	}
	close(done)
	wg.Wait()
	if readerErr != nil {
		t.Fatal(readerErr)
	}

	var buf bytes.Buffer
	if err := db.ProfileReport(&buf, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "50 profiled propagation(s)") {
		t.Errorf("expected 50 propagations in final report:\n%s", buf.String())
	}
}

// TestProfilingFaultConsistency injects a panic into a differential
// execution mid-commit and checks the profiler's books stay consistent:
// profiling records only after a successful evaluation, so the aborted
// execution leaves the invariants (zero-effect <= execs, timed <=
// execs) intact — the rollback's own undo propagation is real, profiled
// work — and profiling keeps accumulating on later commits.
func TestProfilingFaultConsistency(t *testing.T) {
	db := profDB(t)
	db.MustExec("begin; set quantity(:a) = 90; commit;")
	before := snapshotTotals(db)
	if before.execs == 0 {
		t.Fatal("no executions profiled before fault")
	}

	inj := faultinject.New()
	db.Session().SetInjector(inj)
	inj.Arm(faultinject.Differential, 1, faultinject.Panic)
	if err := func() (err error) {
		if err := db.Begin(); err != nil {
			return err
		}
		db.MustExec("set quantity(:a) = 80;")
		return db.Commit()
	}(); err == nil {
		t.Fatal("commit with injected panic should fail")
	}
	if err := db.CheckInvariants(); err != nil {
		t.Fatalf("invariants after injected panic: %v", err)
	}
	mid := snapshotTotals(db)
	if mid.execs < before.execs {
		t.Errorf("profile went backwards: execs %d -> %d", before.execs, mid.execs)
	}
	if mid.zero > mid.execs || mid.timed > mid.execs {
		t.Errorf("invariants violated: %+v", mid)
	}

	db.Session().SetInjector(nil)
	db.MustExec("begin; set quantity(:a) = 85; commit;")
	after := snapshotTotals(db)
	if after.execs <= mid.execs {
		t.Errorf("profiling stopped accumulating after fault: execs %d -> %d", mid.execs, after.execs)
	}
}

type profTotals struct {
	execs, zero, timed int64
}

func snapshotTotals(db *DB) profTotals {
	var t profTotals
	for _, pt := range db.Observability().Profiler.Snapshot() {
		t.execs += pt.Execs
		t.zero += pt.ZeroEffect
		t.timed += pt.Timed
	}
	return t
}

// TestAdaptiveStatsEquivalence runs the same skewed workload — a rule
// joining a wide stored function against a tiny derived function —
// with and without WithAdaptiveStats and checks the observed feedback
// changes only the cost, never the answers: both databases fire the
// same rule instances in the same states.
func TestAdaptiveStatsEquivalence(t *testing.T) {
	build := func(adaptive bool, fired *[]string) *DB {
		var db *DB
		if adaptive {
			db = Open(WithAdaptiveStats())
		} else {
			db = Open()
		}
		if err := db.RegisterProcedure("note", func(args []Value) error {
			*fired = append(*fired, fmt.Sprintf("%v", args))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		db.MustExec(`
create type item;
create function attr(item) -> integer;
create function seldom(item) -> integer;
create function pick(item i) -> integer as
    select seldom(i) * 2 for each item j where j = i;
create rule watch() as
    when for each item i where attr(i) < pick(i)
    do note(i, attr(i));
create item instances :a, :b, :c, :d;
set attr(:a) = 100; set attr(:b) = 100; set attr(:c) = 100; set attr(:d) = 100;
set seldom(:a) = 10;
activate watch();
`)
		return db
	}
	script := []string{
		"begin; set attr(:a) = 15; set attr(:b) = 15; commit;", // :a fires (pick=20)
		"begin; set attr(:a) = 100; commit;",                   // leaves the condition
		"begin; set seldom(:b) = 50; commit;",                  // :b now below pick=100
		"begin; set attr(:c) = 99; commit;",                    // no seldom(:c): stays out
	}
	var staticFired, adaptiveFired []string
	dbS := build(false, &staticFired)
	dbA := build(true, &adaptiveFired)
	for _, stmt := range script {
		dbS.MustExec(stmt)
		dbA.MustExec(stmt)
	}
	if fmt.Sprintf("%v", staticFired) != fmt.Sprintf("%v", adaptiveFired) {
		t.Errorf("adaptive stats changed rule semantics:\n static: %v\nadaptive: %v", staticFired, adaptiveFired)
	}
	if len(staticFired) == 0 {
		t.Fatal("workload fired no rules; equivalence check is vacuous")
	}

	// The adaptive session must actually have observed something (the
	// propagation plans here probe pick bound, so the observations are
	// the literal scan volumes of the stored functions).
	st := dbA.Session().Rules().AdaptiveStats()
	if st == nil {
		t.Fatal("WithAdaptiveStats left no stats table")
	}
	var buf bytes.Buffer
	if _, err := st.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "attr") {
		t.Errorf("stats table observed nothing:\n%s", buf.String())
	}
	if dbS.Session().Rules().AdaptiveStats() != nil {
		t.Error("static session unexpectedly has adaptive stats")
	}
}
