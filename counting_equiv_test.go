package partdiff

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
	"time"

	"partdiff/internal/faultinject"
)

// The counting equivalence property: derivation-count maintenance only
// changes HOW the monitor maintains derived views (support bookkeeping
// instead of §7.2 membership probes and recomputation on deletes),
// never WHAT it derives — so monitoring with counting on and off must
// be observably identical on every workload: same stored state, same
// rule firings in the same order, same answers when the maintained
// views are probed. The same holds with the hybrid chooser layered on
// top, whatever per-wave strategies it picks. These tests drive the
// property over seeded workloads skewed toward deletions and mixed
// insert/delete transactions; `bench -exp hybrid` asserts it again on
// the paper's benchmark database.

// countingSchema is a shared derived view with duplicate support: every
// item's threshold is derived once per supplier, and all suppliers of
// an item agree on the value — so removing one supplier is a
// support-only change (the counting twin decrements and emits nothing)
// while removing the last one is a genuine retraction.
const countingSchema = `
create type item;
create type supplier;
create function quantity(item) -> integer;
create function min_stock(item) -> integer;
create function consume_freq(item) -> integer;
create function supplies(supplier) -> item;
create function delivery_time(item i, supplier s) -> integer;
create shared function threshold(item i) -> integer
    as
    select consume_freq(i) * delivery_time(i, s) + min_stock(i)
    for each supplier s where supplies(s) = i;
create rule low() as
    when for each item i
    where quantity(i) < threshold(i)
    do record(i);
create item instances :i1, :i2;
create supplier instances :s1, :s2, :s3, :s4, :s5, :s6;
set consume_freq(:i1) = 2;
set consume_freq(:i2) = 2;
set min_stock(:i1) = 4;
set min_stock(:i2) = 4;
set quantity(:i1) = 100;
set quantity(:i2) = 100;
set delivery_time(:i1, :s1) = 3;
set delivery_time(:i1, :s2) = 3;
set delivery_time(:i1, :s3) = 3;
set delivery_time(:i1, :s4) = 3;
set delivery_time(:i1, :s5) = 3;
set delivery_time(:i1, :s6) = 3;
set delivery_time(:i2, :s1) = 3;
set delivery_time(:i2, :s2) = 3;
set delivery_time(:i2, :s3) = 3;
set delivery_time(:i2, :s4) = 3;
set delivery_time(:i2, :s5) = 3;
set delivery_time(:i2, :s6) = 3;
set supplies(:s1) = :i1;
set supplies(:s2) = :i1;
set supplies(:s3) = :i1;
set supplies(:s4) = :i2;
set supplies(:s5) = :i2;
set supplies(:s6) = :i2;
activate low();
`

// countingTwinDBs opens a counting/plain DB pair (optionally with the
// hybrid chooser on the counting twin) with identical recording
// procedures and print outputs.
func countingTwinDBs(t *testing.T, hybrid bool) (on, off *DB, firedOn, firedOff *[]string, outOn, outOff *bytes.Buffer) {
	t.Helper()
	mk := func(fired *[]string, opts ...Option) *DB {
		db := Open(opts...)
		if err := db.RegisterProcedure("record", func(args []Value) error {
			*fired = append(*fired, fmt.Sprintf("record%v", args))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return db
	}
	var fOn, fOff []string
	onOpts := []Option{WithCounting()}
	if hybrid {
		onOpts = append(onOpts, WithHybridMode())
	}
	on = mk(&fOn, onOpts...)
	off = mk(&fOff)
	var bOn, bOff bytes.Buffer
	on.SetOutput(&bOn)
	off.SetOutput(&bOff)
	return on, off, &fOn, &fOff, &bOn, &bOff
}

// assertCountingTwinsEqual compares everything observable about the
// twins, probes the maintained view on both, and audits the counting
// twin's invariants (which include VerifyCounts: maintained counts must
// equal a fresh bag evaluation).
func assertCountingTwinsEqual(t *testing.T, on, off *DB, firedOn, firedOff *[]string, outOn, outOff *bytes.Buffer) {
	t.Helper()
	if !reflect.DeepEqual(*firedOn, *firedOff) {
		t.Errorf("firings diverge:\ncounting: %v\nplain:    %v", *firedOn, *firedOff)
	}
	sOn, sOff := on.Session().Store().Snapshot(), off.Session().Store().Snapshot()
	if !reflect.DeepEqual(sOn, sOff) {
		t.Errorf("stored state diverges:\ncounting: %v\nplain:    %v", sOn, sOff)
	}
	if outOn.String() != outOff.String() {
		t.Errorf("print output diverges:\ncounting: %q\nplain:    %q", outOn.String(), outOff.String())
	}
	// Probe the maintained view directly: the answer a user gets when
	// asking WHY the monitor is (or isn't) firing must not depend on the
	// maintenance strategy.
	for _, q := range []string{
		`select threshold(i) for each item i;`,
		`select i for each item i where quantity(i) < threshold(i);`,
	} {
		rOn, errOn := on.Exec(q)
		rOff, errOff := off.Exec(q)
		if (errOn == nil) != (errOff == nil) {
			t.Fatalf("probe %q errors diverge: counting %v, plain %v", q, errOn, errOff)
		}
		if !reflect.DeepEqual(rOn, rOff) {
			t.Errorf("probe %q diverges:\ncounting: %v\nplain:    %v", q, rOn, rOff)
		}
	}
	if err := on.CheckInvariants(); err != nil {
		t.Errorf("counting DB invariants: %v", err)
	}
	if err := off.CheckInvariants(); err != nil {
		t.Errorf("plain DB invariants: %v", err)
	}
}

// genCountingScript draws one random transaction. profile "delete"
// skews toward retracting supplier assignments (support decrements and
// genuine retractions of the shared threshold view); profile "mixed"
// balances inserts, moves, value changes and deletions. sup tracks the
// generator's model of supplies() so removals are valid.
func genCountingScript(rng *rand.Rand, steps int, profile string, sup map[string]string) []string {
	items := []string{":i1", ":i2"}
	sups := []string{":s1", ":s2", ":s3", ":s4", ":s5", ":s6"}
	script := make([]string, 0, steps)
	for j := 0; j < steps; j++ {
		s := sups[rng.Intn(len(sups))]
		it := items[rng.Intn(len(items))]
		var delW, moveW int
		if profile == "delete" {
			delW, moveW = 50, 15
		} else {
			delW, moveW = 20, 25
		}
		switch p := rng.Intn(100); {
		case p < delW:
			if cur, ok := sup[s]; ok {
				script = append(script, fmt.Sprintf("remove supplies(%s) = %s;", s, cur))
				delete(sup, s)
			} else {
				script = append(script, fmt.Sprintf("set supplies(%s) = %s;", s, it))
				sup[s] = it
			}
		case p < delW+moveW:
			script = append(script, fmt.Sprintf("set supplies(%s) = %s;", s, it))
			sup[s] = it
		case p < delW+moveW+15:
			// Changing a delivery time splits (or re-merges) the duplicate
			// support of the item's threshold value.
			script = append(script, fmt.Sprintf("set delivery_time(%s, %s) = %d;", it, s, 3+2*rng.Intn(2)))
		default:
			script = append(script, fmt.Sprintf("set quantity(%s) = %d;", it, rng.Intn(20)))
		}
	}
	return script
}

// initialSupplies is the generator's model of the schema's supplier
// assignments.
func initialSupplies() map[string]string {
	return map[string]string{
		":s1": ":i1", ":s2": ":i1", ":s3": ":i1",
		":s4": ":i2", ":s5": ":i2", ":s6": ":i2",
	}
}

// runCountingEquivalence drives one twin pair through seeded random
// transactions, comparing everything observable after each one.
func runCountingEquivalence(t *testing.T, hybrid bool, profile string, seed int64) {
	on, off, fOn, fOff, bOn, bOff := countingTwinDBs(t, hybrid)
	on.MustExec(countingSchema)
	off.MustExec(countingSchema)
	if !on.Counting() || off.Counting() {
		t.Fatal("twin counting flags wrong")
	}

	rng := rand.New(rand.NewSource(seed))
	sup := initialSupplies()
	txns := 10
	if testing.Short() {
		txns = 4
	}
	for txn := 0; txn < txns; txn++ {
		script := genCountingScript(rng, 1+rng.Intn(6), profile, sup)
		errOn := runScript(on, script)
		errOff := runScript(off, script)
		if (errOn == nil) != (errOff == nil) {
			t.Fatalf("txn %d: errors diverge: counting %v, plain %v", txn, errOn, errOff)
		}
		assertCountingTwinsEqual(t, on, off, fOn, fOff, bOn, bOff)
	}

	// Vacuity gates. Without the chooser, every wave is counted: the
	// twin must have folded derivation-count deltas and, on the
	// delete-skewed profile, detected at least one genuine retraction
	// (support hit zero) without recomputing. With the chooser on it may
	// legitimately recompute every wave (the extents here are tiny), so
	// the gate is that it actually journaled per-wave decisions.
	reg := on.Observability().Registry
	if hybrid {
		if len(on.Session().Rules().Maintainer().Decisions()) == 0 {
			t.Error("hybrid twin journaled no chooser decisions; the equivalence check is vacuous")
		}
	} else {
		if n := reg.CounterValue("partdiff_maint_applied_total"); n == 0 {
			t.Error("counting twin never applied a derivation-count delta; the equivalence check is vacuous")
		}
		if profile == "delete" {
			if n := reg.CounterValue("partdiff_maint_retractions_total"); n == 0 {
				t.Error("delete-heavy workload produced no counting-detected retraction")
			}
		}
	}
	if n := off.Observability().Registry.CounterValue("partdiff_maint_applied_total"); n != 0 {
		t.Errorf("plain twin applied %d count deltas", n)
	}
	if len(*fOn) == 0 {
		t.Error("workload fired no rules; the firing comparison is vacuous")
	}
}

// TestCountingEquivalenceRandom: counting vs plain over delete-skewed
// and mixed seeded workloads.
func TestCountingEquivalenceRandom(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, profile := range []string{"delete", "mixed"} {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("%s/seed=%d", profile, seed), func(t *testing.T) {
				runCountingEquivalence(t, false, profile, seed)
			})
		}
	}
}

// TestCountingHybridEquivalenceRandom layers the cost-based chooser on
// the counting twin: equivalence must hold no matter which strategy it
// picks wave by wave.
func TestCountingHybridEquivalenceRandom(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runCountingEquivalence(t, true, "delete", seed)
		})
	}
}

// TestCountingEquivalenceScripts replays every shipped example script
// on a counting+hybrid and a plain database and compares everything
// observable.
func TestCountingEquivalenceScripts(t *testing.T) {
	scripts, err := filepath.Glob("examples/scripts/*.amosql")
	if err != nil {
		t.Fatal(err)
	}
	if len(scripts) == 0 {
		t.Fatal("no example scripts found")
	}
	for _, path := range scripts {
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			mk := func(fired *[]string, opts ...Option) *DB {
				db := Open(opts...)
				if err := db.RegisterProcedure("order", func(args []Value) error {
					*fired = append(*fired, fmt.Sprintf("order%v", args))
					return nil
				}); err != nil {
					t.Fatal(err)
				}
				return db
			}
			var fOn, fOff []string
			on := mk(&fOn, WithCounting(), WithHybridMode())
			off := mk(&fOff)
			var bOn, bOff bytes.Buffer
			on.SetOutput(&bOn)
			off.SetOutput(&bOff)
			resOn, errOn := on.Exec(string(src))
			resOff, errOff := off.Exec(string(src))
			if (errOn == nil) != (errOff == nil) {
				t.Fatalf("script errors diverge: counting %v, plain %v", errOn, errOff)
			}
			if errOn != nil {
				t.Fatalf("script failed: %v", errOn)
			}
			if !reflect.DeepEqual(resOn, resOff) {
				t.Errorf("statement results diverge:\ncounting: %v\nplain:    %v", resOn, resOff)
			}
			if !reflect.DeepEqual(fOn, fOff) {
				t.Errorf("firings diverge:\ncounting: %v\nplain:    %v", fOn, fOff)
			}
			if bOn.String() != bOff.String() {
				t.Errorf("print output diverges:\ncounting: %q\nplain:    %q", bOn.String(), bOff.String())
			}
			if err := on.CheckInvariants(); err != nil {
				t.Errorf("counting DB invariants: %v", err)
			}
		})
	}
}

// TestFaultSweepHybrid re-runs the fault-sweep discipline with counting
// and the hybrid chooser active: a fault at every operation index must
// surface, roll back cleanly (including the derivation-count journal),
// and leave a survivor that replays to the same state and firings as a
// fresh DB.
func TestFaultSweepHybrid(t *testing.T) {
	seeds := []int64{1, 2}
	stride := 1
	if testing.Short() {
		seeds = seeds[:1]
		stride = 3
	}
	mkDB := func(fired *[]string) *DB {
		db := Open(WithCounting(), WithHybridMode())
		db.RegisterProcedure("record", func(args []Value) error {
			*fired = append(*fired, fmt.Sprintf("%v", args[0]))
			return nil
		})
		db.MustExec(countingSchema)
		return db
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			script := genCountingScript(rand.New(rand.NewSource(seed)), 8, "delete", initialSupplies())

			var baseFired []string
			base := mkDB(&baseFired)
			if !base.Counting() || !base.Hybrid() {
				t.Fatal("sweep DB lost its maintenance options")
			}
			inj := faultinject.New()
			base.Session().SetInjector(inj)
			baseFired = nil
			if err := runScript(base, script); err != nil {
				t.Fatalf("clean run failed: %v", err)
			}
			if len(base.Session().Rules().Maintainer().Decisions()) == 0 {
				t.Fatal("sweep workload drove no chooser decisions; the sweep is vacuous")
			}
			baseState := base.Session().Store().Snapshot()
			ops := inj.Ops()
			if ops == 0 {
				t.Fatal("clean run hit no fault points; sweep is vacuous")
			}

			for idx := 0; idx < ops; idx += stride {
				kind := faultinject.Error
				if idx%2 == 1 {
					kind = faultinject.Panic
				}
				var fired []string
				db := mkDB(&fired)
				inj := faultinject.New()
				db.Session().SetInjector(inj)
				pre := db.Session().Store().Snapshot()
				fired = nil
				inj.ArmIndex(idx, kind)

				err := runScript(db, script)
				if err == nil {
					t.Errorf("op %d (%v): injected fault did not surface", idx, kind)
					continue
				}
				if errors.Is(err, ErrCorrupt) {
					t.Errorf("op %d (%v): forward-phase fault poisoned the DB: %v", idx, kind, err)
					continue
				}
				if got := db.Session().Store().Snapshot(); !reflect.DeepEqual(got, pre) {
					t.Errorf("op %d (%v): store differs from pre-transaction snapshot", idx, kind)
				}
				if ierr := db.CheckInvariants(); ierr != nil {
					t.Errorf("op %d (%v): invariants after rollback: %v", idx, kind, ierr)
				}
				fired = nil
				if rerr := runScript(db, script); rerr != nil {
					t.Errorf("op %d (%v): survivor replay failed: %v", idx, kind, rerr)
					continue
				}
				if !reflect.DeepEqual(fired, baseFired) {
					t.Errorf("op %d (%v): survivor fired %v, fresh DB fired %v", idx, kind, fired, baseFired)
				}
				if got := db.Session().Store().Snapshot(); !reflect.DeepEqual(got, baseState) {
					t.Errorf("op %d (%v): survivor state diverges from baseline", idx, kind)
				}
			}
		})
	}
}

// TestRuntimeToggleThenMutate pins the deadlock fix for runtime
// maintenance toggles. SetCounting/SetHybrid (like SetStaticPruning and
// the other network-invalidating setters) mark the propagation network
// for rebuild, and the next physical update event arrives with the
// store's write lock held — where a rebuild would re-run the Δ-effect
// analysis, re-read store capabilities, and self-deadlock on that very
// lock. The monitor must instead buffer dirty-network events and fold
// them in at the next safe rebuild (the commit's check phase). The
// drive runs under a panic watchdog so a regression fails loudly with
// all goroutine stacks instead of hanging the suite, and the twin
// equivalence at the end proves no buffered event was lost or replayed
// across the rebuilds — including those of a rolled-back transaction.
func TestRuntimeToggleThenMutate(t *testing.T) {
	watchdog := time.AfterFunc(60*time.Second, func() {
		buf := make([]byte, 1<<20)
		panic(fmt.Sprintf("runtime toggle followed by a mutation deadlocked\n%s",
			buf[:runtime.Stack(buf, true)]))
	})
	defer watchdog.Stop()

	on, off, firedOn, firedOff, outOn, outOff := countingTwinDBs(t, true)
	on.MustExec(countingSchema)
	off.MustExec(countingSchema)
	step := func(stmt string) {
		on.MustExec(stmt)
		off.MustExec(stmt)
	}

	step("begin; set quantity(:i1) = 5; commit;") // :i1 fires on both twins

	// Toggle both maintenance features off at runtime; the first update
	// after the toggle is the event that used to deadlock.
	on.SetHybrid(false)
	on.SetCounting(false)
	step("begin; set quantity(:i1) = 100; set quantity(:i2) = 5; commit;") // :i2 fires

	// Toggle back on, then abort a transaction: the events buffered for
	// the dirty network must be discarded with the rollback, not leak
	// into the rebuilt network.
	on.SetCounting(true)
	on.SetHybrid(true)
	for _, db := range []*DB{on, off} {
		if err := db.Begin(); err != nil {
			t.Fatal(err)
		}
		db.MustExec("set quantity(:i2) = 100;")
		if err := db.Rollback(); err != nil {
			t.Fatal(err)
		}
	}

	// Same hazard class through the pruning toggle: invalidate the
	// network again and drive support changes on the maintained view —
	// dropping two of :i2's three suppliers is support-only, dropping
	// the last retracts threshold(:i2) so the condition goes false.
	on.Session().SetStaticPruning(false)
	step("begin; remove supplies(:s4) = :i2; remove supplies(:s5) = :i2; commit;")
	on.Session().SetStaticPruning(true)
	step("begin; remove supplies(:s6) = :i2; commit;")
	step("begin; set supplies(:s4) = :i2; commit;") // threshold re-derived: :i2 fires again

	if len(*firedOn) < 3 {
		t.Fatalf("workload drove only %d firing(s); the toggle drive is vacuous: %v", len(*firedOn), *firedOn)
	}
	if !on.Counting() || !on.Hybrid() {
		t.Error("toggles did not stick")
	}
	assertCountingTwinsEqual(t, on, off, firedOn, firedOff, outOn, outOff)
}
