package partdiff

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"partdiff/internal/faultinject"
)

// The fault sweep: for seeded random transaction scripts, inject a
// fault (error or panic) at every operation index observed during a
// clean run and assert, for each faulted run, that
//
//  1. the failure surfaces as an error from the script,
//  2. the store equals the pre-transaction snapshot,
//  3. DB.CheckInvariants reports clean, and
//  4. replaying the script on the survivor DB fires exactly the rule
//     instances a fresh DB fires, ending in the same state.
//
// One-shot faults do not re-fire during rollback's undo replay, so a
// forward-phase fault must never poison the DB — corruption here is a
// sweep failure, not an accepted outcome.

const sweepSchema = `
create type item;
create function quantity(item) -> integer;
create function threshold(item) -> integer;
create rule low() as
    when for each item i where quantity(i) < threshold(i)
    do record(i);
create item instances :i1, :i2, :i3;
set threshold(:i1) = 10;
set threshold(:i2) = 10;
set threshold(:i3) = 10;
activate low();
`

// sweepDB opens a DB with the sweep schema and a record procedure that
// appends every fired rule instance to *fired.
func sweepDB(t *testing.T, fired *[]string) *DB {
	t.Helper()
	db := Open()
	db.RegisterProcedure("record", func(args []Value) error {
		*fired = append(*fired, fmt.Sprintf("%v", args[0]))
		return nil
	})
	db.MustExec(sweepSchema)
	return db
}

// genScript draws a random update script: mostly quantity updates with
// occasional threshold changes, over three items.
func genScript(rng *rand.Rand, steps int) []string {
	items := []string{":i1", ":i2", ":i3"}
	script := make([]string, 0, steps)
	for j := 0; j < steps; j++ {
		it := items[rng.Intn(len(items))]
		if rng.Intn(4) == 0 {
			script = append(script, fmt.Sprintf("set threshold(%s) = %d;", it, rng.Intn(15)))
		} else {
			script = append(script, fmt.Sprintf("set quantity(%s) = %d;", it, rng.Intn(20)))
		}
	}
	return script
}

// runScript executes the script as one explicit transaction. On a
// statement error it rolls back and reports the first failure (or the
// rollback failure, which may be ErrCorrupt).
func runScript(db *DB, script []string) error {
	if err := db.Begin(); err != nil {
		return err
	}
	for _, stmt := range script {
		if _, err := db.Exec(stmt); err != nil {
			if rbErr := db.Rollback(); rbErr != nil {
				return rbErr
			}
			return err
		}
	}
	return db.Commit()
}

func TestFaultSweep(t *testing.T) {
	seeds := []int64{1, 2, 3}
	stride := 1
	if testing.Short() {
		seeds = seeds[:1]
		stride = 3
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			script := genScript(rand.New(rand.NewSource(seed)), 8)

			// Clean run: baseline state, firings, and the operation count
			// that bounds the sweep.
			var baseFired []string
			base := sweepDB(t, &baseFired)
			inj := faultinject.New()
			base.Session().SetInjector(inj)
			baseFired = nil
			if err := runScript(base, script); err != nil {
				t.Fatalf("clean run failed: %v", err)
			}
			baseState := base.Session().Store().Snapshot()
			ops := inj.Ops()
			if ops == 0 {
				t.Fatal("clean run hit no fault points; sweep is vacuous")
			}

			for idx := 0; idx < ops; idx += stride {
				kind := faultinject.Error
				if idx%2 == 1 {
					kind = faultinject.Panic
				}
				var fired []string
				db := sweepDB(t, &fired)
				inj := faultinject.New()
				db.Session().SetInjector(inj)
				pre := db.Session().Store().Snapshot()
				fired = nil
				inj.ArmIndex(idx, kind)

				err := runScript(db, script)
				if err == nil {
					t.Errorf("op %d (%v): injected fault did not surface", idx, kind)
					continue
				}
				if errors.Is(err, ErrCorrupt) {
					t.Errorf("op %d (%v): forward-phase fault poisoned the DB: %v", idx, kind, err)
					continue
				}
				if got := db.Session().Store().Snapshot(); !reflect.DeepEqual(got, pre) {
					t.Errorf("op %d (%v): store differs from pre-transaction snapshot\n got: %v\nwant: %v",
						idx, kind, got, pre)
				}
				if ierr := db.CheckInvariants(); ierr != nil {
					t.Errorf("op %d (%v): invariants after rollback: %v", idx, kind, ierr)
				}

				// Survivor replay: same firings and final state as the
				// fresh-DB baseline.
				fired = nil
				if rerr := runScript(db, script); rerr != nil {
					t.Errorf("op %d (%v): survivor replay failed: %v", idx, kind, rerr)
					continue
				}
				if !reflect.DeepEqual(fired, baseFired) {
					t.Errorf("op %d (%v): survivor fired %v, fresh DB fired %v", idx, kind, fired, baseFired)
				}
				if got := db.Session().Store().Snapshot(); !reflect.DeepEqual(got, baseState) {
					t.Errorf("op %d (%v): survivor state diverges from baseline", idx, kind)
				}
			}
		})
	}
}
