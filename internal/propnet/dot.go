package propnet

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Dot renders the propagation network in Graphviz dot format — the
// fig. 1/fig. 2 pictures of the paper, generated from the live network.
// Base relations are boxes, views are ellipses, monitored condition
// functions are double ellipses, and re-evaluated (aggregate/recursive)
// nodes are diamonds. Edges are labeled with their partial
// differentials.
func (n *Network) Dot() string {
	var sb strings.Builder
	sb.WriteString("digraph propagation {\n")
	sb.WriteString("  rankdir=BT;\n")
	names := n.Nodes()
	for _, name := range names {
		nd := n.nodes[name]
		shape := "ellipse"
		switch {
		case nd.Base:
			shape = "box"
		case nd.Recompute:
			shape = "diamond"
		case nd.Monitored:
			shape = "doubleoctagon"
		}
		fmt.Fprintf(&sb, "  %s [shape=%s, label=%s];\n",
			dotID(name), shape, dotQuote(fmt.Sprintf("%s\\nlevel %d", name, nd.Level)))
	}
	// Deterministic edge order. Statically pruned differentials render
	// as a separate dashed grey edge labeled with their OL codes, so the
	// picture shows what the compiler emitted and what the analysis
	// removed from scheduling.
	type edgeRow struct {
		from, to, label string
		pruned          bool
	}
	var rows []edgeRow
	for _, name := range names {
		nd := n.nodes[name]
		for _, e := range nd.out {
			var labels []string
			for _, d := range e.Diffs {
				labels = append(labels, d.Name())
			}
			label := strings.Join(labels, "\\n")
			if label == "" && e.To.Recompute {
				label = "re-evaluate"
			}
			if label != "" || len(e.Pruned) == 0 {
				rows = append(rows, edgeRow{from: name, to: e.To.Pred, label: label})
			}
			if len(e.Pruned) > 0 {
				rows = append(rows, edgeRow{from: name, to: e.To.Pred, label: prunedLabel(e.Pruned), pruned: true})
			}
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].from != rows[j].from {
			return rows[i].from < rows[j].from
		}
		if rows[i].to != rows[j].to {
			return rows[i].to < rows[j].to
		}
		return !rows[i].pruned && rows[j].pruned
	})
	for _, r := range rows {
		attrs := ""
		if r.pruned {
			attrs = ", style=dashed, color=grey, fontcolor=grey"
		}
		fmt.Fprintf(&sb, "  %s -> %s [label=%s%s];\n",
			dotID(r.from), dotID(r.to), dotQuote(r.label), attrs)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// prunedLabel renders the pruned differentials of an edge, each with
// the diagnostic code that proves it zero-effect.
func prunedLabel(pruned []PrunedDiff) string {
	labels := make([]string, len(pruned))
	for i, p := range pruned {
		labels[i] = fmt.Sprintf("%s [%s]", p.Diff.Name(), p.Code)
	}
	return strings.Join(labels, "\\n")
}

// DotHeat renders the network like Dot, heat-annotated from the
// propagation profiler's accumulated observations: each node is filled
// with a red whose saturation is its share of all tuples scanned (its
// observed cost), labeled with scanned tuples and zero-effect counts,
// and each edge's width grows with the log of the Δ tuples that
// actually flowed across it. An unprofiled network (or one profiled
// before any propagation) renders identically to Dot plus zeroed
// annotations — the structure never changes, so both exports diff
// cleanly.
func (n *Network) DotHeat() string {
	snap := n.prof.Snapshot()
	// Aggregate observations per view node and per influent→view edge.
	type nodeHeat struct{ scanned, zero, execs int64 }
	nodes := map[string]*nodeHeat{}
	flow := map[[2]string]int64{}
	var totScanned int64
	for _, pt := range snap {
		h := nodes[pt.View]
		if h == nil {
			h = &nodeHeat{}
			nodes[pt.View] = h
		}
		h.scanned += pt.Scanned
		h.zero += pt.ZeroEffect
		h.execs += pt.Execs
		totScanned += pt.Scanned
		if pt.Influent != "*" {
			flow[[2]string{pt.Influent, pt.View}] += pt.Produced
		}
	}

	var sb strings.Builder
	sb.WriteString("digraph propagation {\n")
	sb.WriteString("  rankdir=BT;\n")
	sb.WriteString("  node [style=filled, fillcolor=white];\n")
	names := n.Nodes()
	for _, name := range names {
		nd := n.nodes[name]
		shape := "ellipse"
		switch {
		case nd.Base:
			shape = "box"
		case nd.Recompute:
			shape = "diamond"
		case nd.Monitored:
			shape = "doubleoctagon"
		}
		label := fmt.Sprintf("%s\\nlevel %d", name, nd.Level)
		sat := 0.0
		if h := nodes[name]; h != nil {
			if totScanned > 0 {
				sat = float64(h.scanned) / float64(totScanned)
			}
			label += fmt.Sprintf("\\nscanned %d, zero-effect %d/%d", h.scanned, h.zero, h.execs)
		}
		// HSV red: hue 0, saturation = cost share, full value — white
		// for cold nodes, saturated red for the hottest.
		fmt.Fprintf(&sb, "  %s [shape=%s, fillcolor=\"0.000 %.3f 1.000\", label=%s];\n",
			dotID(name), shape, sat, dotQuote(label))
	}
	type edgeRow struct {
		from, to, label string
		produced        int64
		pruned          bool
	}
	var rows []edgeRow
	for _, name := range names {
		nd := n.nodes[name]
		for _, e := range nd.out {
			var labels []string
			for _, d := range e.Diffs {
				labels = append(labels, d.Name())
			}
			label := strings.Join(labels, "\\n")
			if label == "" && e.To.Recompute {
				label = "re-evaluate"
			}
			p := flow[[2]string{name, e.To.Pred}]
			if label != "" || len(e.Pruned) == 0 {
				el := label
				if p > 0 {
					el += fmt.Sprintf("\\nΔ %d", p)
				}
				rows = append(rows, edgeRow{from: name, to: e.To.Pred, label: el, produced: p})
			}
			// Pruned differentials never carry flow: dashed, grey, cold.
			if len(e.Pruned) > 0 {
				rows = append(rows, edgeRow{from: name, to: e.To.Pred, label: prunedLabel(e.Pruned), pruned: true})
			}
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].from != rows[j].from {
			return rows[i].from < rows[j].from
		}
		if rows[i].to != rows[j].to {
			return rows[i].to < rows[j].to
		}
		return !rows[i].pruned && rows[j].pruned
	})
	for _, r := range rows {
		if r.pruned {
			fmt.Fprintf(&sb, "  %s -> %s [label=%s, style=dashed, color=grey, fontcolor=grey];\n",
				dotID(r.from), dotID(r.to), dotQuote(r.label))
			continue
		}
		fmt.Fprintf(&sb, "  %s -> %s [label=%s, penwidth=%.2f];\n",
			dotID(r.from), dotID(r.to), dotQuote(r.label), 1+math.Log10(float64(r.produced+1)))
	}
	sb.WriteString("}\n")
	return sb.String()
}

// dotID makes a safe dot identifier from a predicate name.
func dotID(name string) string {
	var sb strings.Builder
	sb.WriteByte('n')
	for _, r := range name {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

func dotQuote(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `\"`) + `"`
}
