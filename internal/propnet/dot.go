package propnet

import (
	"fmt"
	"sort"
	"strings"
)

// Dot renders the propagation network in Graphviz dot format — the
// fig. 1/fig. 2 pictures of the paper, generated from the live network.
// Base relations are boxes, views are ellipses, monitored condition
// functions are double ellipses, and re-evaluated (aggregate/recursive)
// nodes are diamonds. Edges are labeled with their partial
// differentials.
func (n *Network) Dot() string {
	var sb strings.Builder
	sb.WriteString("digraph propagation {\n")
	sb.WriteString("  rankdir=BT;\n")
	names := n.Nodes()
	for _, name := range names {
		nd := n.nodes[name]
		shape := "ellipse"
		switch {
		case nd.Base:
			shape = "box"
		case nd.Recompute:
			shape = "diamond"
		case nd.Monitored:
			shape = "doubleoctagon"
		}
		fmt.Fprintf(&sb, "  %s [shape=%s, label=%s];\n",
			dotID(name), shape, dotQuote(fmt.Sprintf("%s\\nlevel %d", name, nd.Level)))
	}
	// Deterministic edge order.
	type edgeRow struct{ from, to, label string }
	var rows []edgeRow
	for _, name := range names {
		nd := n.nodes[name]
		for _, e := range nd.out {
			var labels []string
			for _, d := range e.Diffs {
				labels = append(labels, d.Name())
			}
			label := strings.Join(labels, "\\n")
			if label == "" && e.To.Recompute {
				label = "re-evaluate"
			}
			rows = append(rows, edgeRow{from: name, to: e.To.Pred, label: label})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].from != rows[j].from {
			return rows[i].from < rows[j].from
		}
		return rows[i].to < rows[j].to
	})
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %s -> %s [label=%s];\n",
			dotID(r.from), dotID(r.to), dotQuote(r.label))
	}
	sb.WriteString("}\n")
	return sb.String()
}

// dotID makes a safe dot identifier from a predicate name.
func dotID(name string) string {
	var sb strings.Builder
	sb.WriteByte('n')
	for _, r := range name {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

func dotQuote(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `\"`) + `"`
}
