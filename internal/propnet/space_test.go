package propnet

import (
	"testing"

	"partdiff/internal/diff"
	"partdiff/internal/objectlog"
	"partdiff/internal/storage"
	"partdiff/internal/types"
)

// TestSpace_WaveFrontVsMaterialization quantifies the paper's space
// claim (E10): a view with a product-like intermediate (pairs of items
// sharing a warehouse) materializes to O(n²) tuples, while the
// propagation algorithm's wave front holds only the tuples a small
// transaction actually touches.
func TestSpace_WaveFrontVsMaterialization(t *testing.T) {
	const n = 40 // 2 warehouses × 20 items → pairs view has 2·20² = 800 rows
	st := storage.NewStore()
	st.CreateRelation("stored_in", 2, nil) // (item, warehouse)
	st.CreateRelation("flagged", 1, nil)
	for i := int64(0); i < n; i++ {
		st.Insert("stored_in", types.Tuple{types.Int(i), types.Int(i % 2)})
	}

	prog := objectlog.NewProgram()
	// colocated(A,B) ← stored_in(A,W) ∧ stored_in(B,W): the large
	// intermediate view.
	colocated := &objectlog.Def{Name: "colocated", Arity: 2, Clauses: []objectlog.Clause{
		objectlog.NewClause(objectlog.Lit("colocated", objectlog.V("A"), objectlog.V("B")),
			objectlog.Lit("stored_in", objectlog.V("A"), objectlog.V("W")),
			objectlog.Lit("stored_in", objectlog.V("B"), objectlog.V("W"))),
	}}
	// Monitored: risk(B) ← flagged(A) ∧ colocated(A,B).
	risk := &objectlog.Def{Name: "risk", Arity: 1, Clauses: []objectlog.Clause{
		objectlog.NewClause(objectlog.Lit("risk", objectlog.V("B")),
			objectlog.Lit("flagged", objectlog.V("A")),
			objectlog.Lit("colocated", objectlog.V("A"), objectlog.V("B"))),
	}}
	net := New(st, prog, diff.DefaultOptions())
	if err := net.AddView(colocated, false); err != nil {
		t.Fatal(err)
	}
	if err := net.AddView(risk, true); err != nil {
		t.Fatal(err)
	}
	if err := net.Finalize(); err != nil {
		t.Fatal(err)
	}

	// A small transaction: flag one item.
	st.Insert("flagged", types.Tuple{types.Int(3)})
	net.BaseDelta("flagged").Insert(types.Tuple{types.Int(3)})
	res, err := net.Propagate()
	if err != nil {
		t.Fatal(err)
	}
	// Correctness: every item in warehouse 1 (odd ids) is at risk.
	if res["risk"].Plus().Len() != n/2 {
		t.Fatalf("Δrisk = %s", res["risk"])
	}

	wave := net.MaxWaveFront()
	mat, err := net.MaterializedSize()
	if err != nil {
		t.Fatal(err)
	}
	// The materialized footprint is quadratic (colocated alone has
	// 2·(n/2)² = n²/2 tuples); the wave front holds only this
	// transaction's changes.
	if mat < n*n/2 {
		t.Fatalf("materialized=%d, expected ≥ %d", mat, n*n/2)
	}
	if wave > 2*(n/2) {
		t.Errorf("wave front %d unexpectedly large (materialized %d)", wave, mat)
	}
	if wave*10 > mat {
		t.Errorf("space claim violated: wave=%d materialized=%d", wave, mat)
	}
	t.Logf("wave front peak = %d tuples; full materialization = %d tuples (%.0fx)",
		wave, mat, float64(mat)/float64(wave))
}

// TestWaveFrontResetsPerPropagation: the gauge is per-propagation.
func TestWaveFrontResetsPerPropagation(t *testing.T) {
	st, n := buildPQR(t)
	apply(t, st, n, true, "q", tup(5, 1))
	n.Propagate()
	if n.MaxWaveFront() == 0 {
		t.Error("wave front not recorded")
	}
	n.ClearBase()
	n.Propagate()
	if n.MaxWaveFront() != 0 {
		t.Error("wave front gauge not reset")
	}
}
