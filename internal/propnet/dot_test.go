package propnet

import (
	"strings"
	"testing"
)

func TestDotRendersNetwork(t *testing.T) {
	_, n := buildPQR(t)
	dot := n.Dot()
	for _, want := range []string{
		"digraph propagation",
		"shape=box",           // base relations
		"shape=doubleoctagon", // monitored view
		"Δp/Δ+q",              // edge label with the differential name
		"nq -> np",            // edge
		"level 0",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q:\n%s", want, dot)
		}
	}
}

func TestDotIDSanitization(t *testing.T) {
	if got := dotID("type:item"); got != "ntype_item" {
		t.Errorf("dotID=%q", got)
	}
	if got := dotID("cnd_r#1"); got != "ncnd_r_1" {
		t.Errorf("dotID=%q", got)
	}
}
