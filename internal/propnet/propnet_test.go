package propnet

import (
	"strings"
	"testing"

	"partdiff/internal/delta"
	"partdiff/internal/diff"
	"partdiff/internal/objectlog"
	"partdiff/internal/storage"
	"partdiff/internal/types"
)

func tup(vs ...int64) types.Tuple {
	t := make(types.Tuple, len(vs))
	for i, v := range vs {
		t[i] = types.Int(v)
	}
	return t
}

func pqrDef() *objectlog.Def {
	return &objectlog.Def{Name: "p", Arity: 2, Clauses: []objectlog.Clause{
		objectlog.NewClause(
			objectlog.Lit("p", objectlog.V("X"), objectlog.V("Z")),
			objectlog.Lit("q", objectlog.V("X"), objectlog.V("Y")),
			objectlog.Lit("r", objectlog.V("Y"), objectlog.V("Z"))),
	}}
}

// buildPQR sets up the §4.3 database with a monitored view p.
func buildPQR(t *testing.T) (*storage.Store, *Network) {
	t.Helper()
	st := storage.NewStore()
	st.CreateRelation("q", 2, nil)
	st.CreateRelation("r", 2, nil)
	st.Insert("q", tup(1, 1))
	st.Insert("r", tup(1, 2))
	st.Insert("r", tup(2, 3))
	n := New(st, objectlog.NewProgram(), diff.DefaultOptions())
	if err := n.AddView(pqrDef(), true); err != nil {
		t.Fatal(err)
	}
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	return st, n
}

// apply performs a store mutation and folds the physical event into the
// network's base Δ-set, as the transaction layer does.
func apply(t *testing.T, st *storage.Store, n *Network, insert bool, rel string, tp types.Tuple) {
	t.Helper()
	var changed bool
	var err error
	if insert {
		changed, err = st.Insert(rel, tp)
	} else {
		changed, err = st.Delete(rel, tp)
	}
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		return
	}
	d := n.BaseDelta(rel)
	if d == nil {
		t.Fatalf("no base delta for %s", rel)
	}
	if insert {
		d.Insert(tp)
	} else {
		d.Delete(tp)
	}
}

func TestPropagatePaperSection44(t *testing.T) {
	st, n := buildPQR(t)
	// Transaction: assert q(1,2), assert r(1,4), retract r(1,2),
	// retract r(2,3). Expected Δp = <{(1,4)}, {(1,2)}>.
	apply(t, st, n, true, "q", tup(1, 2))
	apply(t, st, n, true, "r", tup(1, 4))
	apply(t, st, n, false, "r", tup(1, 2))
	apply(t, st, n, false, "r", tup(2, 3))

	if !n.HasChanges() {
		t.Fatal("HasChanges should be true")
	}
	res, err := n.Propagate()
	if err != nil {
		t.Fatal(err)
	}
	dp := res["p"]
	if dp == nil {
		t.Fatal("no Δp returned")
	}
	if !dp.Plus().Equal(types.NewSet(tup(1, 4))) {
		t.Errorf("Δ+p = %s, want {(1, 4)}", dp.Plus())
	}
	if !dp.Minus().Equal(types.NewSet(tup(1, 2))) {
		t.Errorf("Δ−p = %s, want {(1, 2)}", dp.Minus())
	}
}

func TestPropagateMatchesRecompute(t *testing.T) {
	// Independent check: Δp from propagation equals Diff(p_old, p_new)
	// computed naively.
	st, n := buildPQR(t)
	ev := n.Evaluator()
	oldP, err := ev.EvalPred("p", false) // before the txn, old == current
	if err != nil {
		t.Fatal(err)
	}
	apply(t, st, n, true, "q", tup(1, 2))
	apply(t, st, n, true, "r", tup(1, 4))
	apply(t, st, n, false, "r", tup(1, 2))
	newP, err := ev.EvalPred("p", false)
	if err != nil {
		t.Fatal(err)
	}
	want := delta.Diff(oldP, newP)
	res, err := n.Propagate()
	if err != nil {
		t.Fatal(err)
	}
	if !res["p"].Equal(want) {
		t.Errorf("propagated %s, recompute %s", res["p"], want)
	}
}

func TestPropagateEmptyTransaction(t *testing.T) {
	_, n := buildPQR(t)
	if n.HasChanges() {
		t.Error("fresh network should have no changes")
	}
	res, err := n.Propagate()
	if err != nil {
		t.Fatal(err)
	}
	if !res["p"].IsEmpty() {
		t.Errorf("Δp = %s for empty transaction", res["p"])
	}
	if n.Executed() != 0 {
		t.Errorf("%d differentials executed on empty transaction", n.Executed())
	}
}

func TestOnlyAffectedDifferentialsExecute(t *testing.T) {
	st, n := buildPQR(t)
	apply(t, st, n, true, "q", tup(5, 1))
	if _, err := n.Propagate(); err != nil {
		t.Fatal(err)
	}
	// Only Δp/Δ+q should have run (q changed, with insertions only).
	if n.Executed() != 1 {
		t.Errorf("executed %d differentials, want 1; trace: %v", n.Executed(), n.Trace())
	}
	tr := n.Trace()
	if len(tr) != 1 || tr[0].Differential != "Δp/Δ+q" {
		t.Errorf("trace = %+v", tr)
	}
	if tr[0].Produced != 1 { // q(5,1) ⋈ r(1,2) → p(5,2)
		t.Errorf("produced = %d", tr[0].Produced)
	}
}

func TestBaseDeltasKeptUntilClearBase(t *testing.T) {
	st, n := buildPQR(t)
	apply(t, st, n, true, "q", tup(5, 1))
	n.Propagate()
	if n.BaseDelta("q").IsEmpty() {
		t.Error("base Δ-set must survive propagation (old states need it)")
	}
	n.ClearBase()
	if !n.BaseDelta("q").IsEmpty() {
		t.Error("ClearBase should clear base Δ-sets")
	}
}

func TestMonitoredDeltaClearedAfterCollect(t *testing.T) {
	st, n := buildPQR(t)
	apply(t, st, n, true, "q", tup(5, 1))
	res1, _ := n.Propagate()
	if res1["p"].IsEmpty() {
		t.Fatal("first propagation should find changes")
	}
	n.ClearBase()
	// Second propagation with no new changes: no residue.
	res2, _ := n.Propagate()
	if !res2["p"].IsEmpty() {
		t.Errorf("monitored Δ leaked across propagations: %s", res2["p"])
	}
}

// TestNodeSharingBushyNetwork builds the §7.1 network: cnd references
// threshold as an unexpanded intermediate node.
func TestNodeSharingBushyNetwork(t *testing.T) {
	st := storage.NewStore()
	st.CreateRelation("quantity", 2, []int{0})
	st.CreateRelation("base_thr", 2, []int{0})
	st.Insert("quantity", tup(1, 100))
	st.Insert("base_thr", tup(1, 140))

	prog := objectlog.NewProgram()
	n := New(st, prog, diff.DefaultOptions())

	// threshold(I,T) ← base_thr(I,B) ∧ T = B + 0  (kept simple)
	thr := &objectlog.Def{Name: "threshold", Arity: 2, Clauses: []objectlog.Clause{
		objectlog.NewClause(
			objectlog.Lit("threshold", objectlog.V("I"), objectlog.V("T")),
			objectlog.Lit("base_thr", objectlog.V("I"), objectlog.V("B")),
			objectlog.Lit(objectlog.BuiltinPlus, objectlog.V("B"), objectlog.CInt(0), objectlog.V("T"))),
	}}
	// cnd(I) ← quantity(I,Q) ∧ threshold(I,T) ∧ Q < T
	cnd := &objectlog.Def{Name: "cnd", Arity: 1, Clauses: []objectlog.Clause{
		objectlog.NewClause(
			objectlog.Lit("cnd", objectlog.V("I")),
			objectlog.Lit("quantity", objectlog.V("I"), objectlog.V("Q")),
			objectlog.Lit("threshold", objectlog.V("I"), objectlog.V("T")),
			objectlog.Lit(objectlog.BuiltinLT, objectlog.V("Q"), objectlog.V("T"))),
	}}
	if err := n.AddView(thr, false); err != nil {
		t.Fatal(err)
	}
	if err := n.AddView(cnd, true); err != nil {
		t.Fatal(err)
	}
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	// Stratification: bases at 0, threshold at 1, cnd at 2.
	lv := n.Levels()
	if len(lv) != 3 {
		t.Fatalf("levels = %v", lv)
	}
	thrNode, _ := n.Node("threshold")
	cndNode, _ := n.Node("cnd")
	if thrNode.Level != 1 || cndNode.Level != 2 || thrNode.Base || thrNode.Monitored {
		t.Errorf("levels: threshold=%d cnd=%d", thrNode.Level, cndNode.Level)
	}

	// quantity(1)=100 < threshold(1)=140 already true before the txn.
	// Raise the base threshold of item 1: 140→90 makes cnd false.
	st.Delete("base_thr", tup(1, 140))
	n.BaseDelta("base_thr").Delete(tup(1, 140))
	st.Insert("base_thr", tup(1, 90))
	n.BaseDelta("base_thr").Insert(tup(1, 90))

	res, err := n.Propagate()
	if err != nil {
		t.Fatal(err)
	}
	dc := res["cnd"]
	if !dc.Minus().Equal(types.NewSet(tup(1))) || dc.Plus().Len() != 0 {
		t.Errorf("Δcnd = %s, want <{}, {(1)}>", dc)
	}
	// Intermediate node Δ-set is cleared by the wave front.
	if !thrNode.Delta.IsEmpty() {
		t.Errorf("threshold wave-front Δ not discarded: %s", thrNode.Delta)
	}
}

// TestNegativeVerificationPreventsUnderReaction reproduces the §7.2
// hazard: a projection-style view where a deletion candidate is still
// derivable must not propagate as a deletion.
func TestNegativeVerificationPreventsUnderReaction(t *testing.T) {
	st := storage.NewStore()
	st.CreateRelation("b", 2, nil)
	st.Insert("b", tup(1, 10))
	st.Insert("b", tup(1, 20))

	// v(X) ← b(X,Y): projection on the first column.
	v := &objectlog.Def{Name: "v", Arity: 1, Clauses: []objectlog.Clause{
		objectlog.NewClause(objectlog.Lit("v", objectlog.V("X")),
			objectlog.Lit("b", objectlog.V("X"), objectlog.V("Y"))),
	}}
	n := New(st, objectlog.NewProgram(), diff.DefaultOptions())
	n.AddView(v, true)
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	// Delete (1,10): v(1) is still derivable from (1,20).
	st.Delete("b", tup(1, 10))
	n.BaseDelta("b").Delete(tup(1, 10))
	res, err := n.Propagate()
	if err != nil {
		t.Fatal(err)
	}
	if !res["v"].IsEmpty() {
		t.Errorf("Δv = %s; spurious deletion must be verified away", res["v"])
	}

	// Without verification the spurious deletion leaks (documenting the
	// hazard the paper describes).
	n2 := New(st, objectlog.NewProgram(), diff.DefaultOptions())
	n2.AddView(v, true)
	n2.Finalize()
	n2.VerifyNegative = false
	n2.BaseDelta("b").Delete(tup(1, 10))
	res2, _ := n2.Propagate()
	if !res2["v"].Minus().Contains(tup(1)) {
		t.Error("expected the unverified network to exhibit the §7.2 hazard")
	}
}

// TestRecursiveViewBecomesRecomputeNode: transitive closure monitored
// through a recursive view (§8 future work, §5 footnote). The recursive
// node re-evaluates by fixpoint when its external influent (edge)
// changes; consumers above stay incremental.
func TestRecursiveViewBecomesRecomputeNode(t *testing.T) {
	st := storage.NewStore()
	st.CreateRelation("edge", 2, nil)
	st.Insert("edge", tup(1, 2))
	st.Insert("edge", tup(2, 3))

	prog := objectlog.NewProgram()
	path := &objectlog.Def{Name: "path", Arity: 2, Clauses: []objectlog.Clause{
		objectlog.NewClause(objectlog.Lit("path", objectlog.V("X"), objectlog.V("Y")),
			objectlog.Lit("edge", objectlog.V("X"), objectlog.V("Y"))),
		objectlog.NewClause(objectlog.Lit("path", objectlog.V("X"), objectlog.V("Z")),
			objectlog.Lit("edge", objectlog.V("X"), objectlog.V("Y")),
			objectlog.Lit("path", objectlog.V("Y"), objectlog.V("Z"))),
	}}
	// Monitored: reach(Y) ← path(1,Y).
	reach := &objectlog.Def{Name: "reach", Arity: 1, Clauses: []objectlog.Clause{
		objectlog.NewClause(objectlog.Lit("reach", objectlog.V("Y")),
			objectlog.Lit("path", objectlog.CInt(1), objectlog.V("Y"))),
	}}
	n := New(st, prog, diff.DefaultOptions())
	if err := n.AddView(path, false); err != nil {
		t.Fatal(err)
	}
	if err := n.AddView(reach, true); err != nil {
		t.Fatal(err)
	}
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	pn, ok := n.Node("path")
	if !ok || !pn.Recompute || pn.Base {
		t.Fatalf("path node: %+v", pn)
	}
	// Current reach = {2,3}. Add edge 3→4: path gains (1,4) etc.,
	// reach gains 4.
	st.Insert("edge", tup(3, 4))
	n.BaseDelta("edge").Insert(tup(3, 4))
	res, err := n.Propagate()
	if err != nil {
		t.Fatal(err)
	}
	if !res["reach"].Plus().Equal(types.NewSet(tup(4))) || res["reach"].Minus().Len() != 0 {
		t.Errorf("Δreach = %s", res["reach"])
	}
	n.ClearBase()
	// Delete edge 2→3: nodes 3 and 4 become unreachable.
	st.Delete("edge", tup(2, 3))
	n.BaseDelta("edge").Delete(tup(2, 3))
	res, err = n.Propagate()
	if err != nil {
		t.Fatal(err)
	}
	if !res["reach"].Minus().Equal(types.NewSet(tup(3), tup(4))) || res["reach"].Plus().Len() != 0 {
		t.Errorf("Δreach after deletion = %s", res["reach"])
	}
}

func TestAddViewValidation(t *testing.T) {
	st := storage.NewStore()
	n := New(st, objectlog.NewProgram(), diff.DefaultOptions())
	if err := n.AddView(pqrDef(), true); err != nil {
		t.Fatal(err)
	}
	if err := n.AddView(pqrDef(), true); err == nil {
		t.Error("duplicate view should error")
	}
	unsafe := &objectlog.Def{Name: "u", Arity: 1, Clauses: []objectlog.Clause{
		objectlog.NewClause(objectlog.Lit("u", objectlog.V("Z")), objectlog.Lit("q", objectlog.V("X"))),
	}}
	if err := n.AddView(unsafe, true); err == nil {
		t.Error("unsafe view should error")
	}
	n.Finalize()
	if err := n.AddView(&objectlog.Def{Name: "late", Arity: 1}, false); err == nil {
		t.Error("AddView after Finalize should error")
	}
}

func TestBaseDeltaForUnmonitoredRelationIsNil(t *testing.T) {
	st := storage.NewStore()
	st.CreateRelation("unrelated", 1, nil)
	_, n := buildPQR(t)
	_ = st
	if n.BaseDelta("unrelated") != nil {
		t.Error("relations outside the network must have no Δ-set (no overhead)")
	}
	if n.BaseDelta("p") != nil {
		t.Error("view nodes are not base")
	}
}

func TestNodesAndLevels(t *testing.T) {
	_, n := buildPQR(t)
	nodes := n.Nodes()
	if len(nodes) != 3 || nodes[0] != "p" || nodes[1] != "q" || nodes[2] != "r" {
		t.Errorf("Nodes=%v", nodes)
	}
	lv := n.Levels()
	if len(lv) != 2 || len(lv[0]) != 2 || len(lv[1]) != 1 || lv[1][0] != "p" {
		t.Errorf("Levels=%v", lv)
	}
}

func TestPropagateBeforeFinalizeErrors(t *testing.T) {
	st := storage.NewStore()
	n := New(st, objectlog.NewProgram(), diff.DefaultOptions())
	if _, err := n.Propagate(); err == nil {
		t.Error("Propagate before Finalize should error")
	}
}

func TestTraceExplainsTriggerReason(t *testing.T) {
	st, n := buildPQR(t)
	apply(t, st, n, false, "r", tup(2, 3))
	n.Propagate()
	tr := n.Trace()
	if len(tr) != 1 {
		t.Fatalf("trace = %+v", tr)
	}
	e := tr[0]
	if e.Influent != "r" || e.TriggerSign != objectlog.DeltaMinus ||
		e.EffectSign != objectlog.DeltaMinus || !strings.Contains(e.Differential, "Δ-r") {
		t.Errorf("trace entry = %+v", e)
	}
}

func TestNetEnvErrors(t *testing.T) {
	_, n := buildPQR(t)
	env := netEnv{n}
	if _, err := env.Source("nosuch", objectlog.DeltaPlus, false); err == nil {
		t.Error("unknown delta source should error")
	}
	if _, err := env.Source("nosuch", objectlog.DeltaNone, false); err == nil {
		t.Error("unknown relation should error")
	}
}

// TestTraceReturnsCopy is the regression test for Trace() aliasing: it
// used to return the network's internal slice, which the next
// propagation truncated and overwrote in place — silently mutating
// every saved trace (recorded explanations, debug output).
func TestTraceReturnsCopy(t *testing.T) {
	st, n := buildPQR(t)
	apply(t, st, n, true, "q", tup(1, 2))
	if _, err := n.Propagate(); err != nil {
		t.Fatal(err)
	}
	got := n.Trace()
	if len(got) == 0 {
		t.Fatal("expected trace entries from first propagation")
	}
	want := append([]TraceEntry(nil), got...)
	n.ClearBase()

	// A second propagation over a different influent refills the
	// network's internal buffer; the saved trace must not change.
	apply(t, st, n, false, "r", tup(1, 2))
	if _, err := n.Propagate(); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("saved trace entry %d mutated by later propagation: got %+v, want %+v",
				i, got[i], want[i])
		}
	}
}
