package propnet

import (
	"strings"
	"testing"

	"partdiff/internal/analyze"
	"partdiff/internal/diff"
	"partdiff/internal/objectlog"
	"partdiff/internal/storage"
)

// buildPruned builds the §4.3 network with a declared capability on r
// and returns it alongside an unpruned twin over the same store.
func buildPruned(t *testing.T, rCap storage.Capability) (*storage.Store, *Network, *Network) {
	t.Helper()
	st := storage.NewStore()
	st.CreateRelation("q", 2, nil)
	st.CreateRelation("r", 2, nil)
	st.Insert("q", tup(1, 1))
	st.Insert("r", tup(1, 2))
	if err := st.DeclareCapability("r", rCap); err != nil {
		t.Fatal(err)
	}
	pruned := New(st, objectlog.NewProgram(), diff.DefaultOptions())
	plain := New(st, objectlog.NewProgram(), diff.DefaultOptions())
	plain.SetStaticPruning(false)
	for _, n := range []*Network{pruned, plain} {
		if err := n.AddView(pqrDef(), true); err != nil {
			t.Fatal(err)
		}
		if err := n.Finalize(); err != nil {
			t.Fatal(err)
		}
	}
	return st, pruned, plain
}

func TestStaticPruningDropsImpossibleTriggers(t *testing.T) {
	_, pruned, plain := buildPruned(t, storage.CapInserts)
	// p has two occurrences × two signs = 4 differentials; with r
	// append-only its Δ−r trigger is impossible.
	if got := pruned.CompiledDiffs(); got != 4 {
		t.Fatalf("CompiledDiffs = %d, want 4", got)
	}
	if got := pruned.ScheduledDiffs(); got != 3 {
		t.Fatalf("ScheduledDiffs = %d, want 3", got)
	}
	if got := pruned.PrunedCount(); got != 1 {
		t.Fatalf("PrunedCount = %d, want 1", got)
	}
	pd := pruned.PrunedDiffs()
	if len(pd) != 1 || pd[0].Code != analyze.CodeUnreachableDelta || pd[0].Diff.Influent != "r" {
		t.Fatalf("PrunedDiffs = %+v, want one OL301 on r", pd)
	}
	if res := pruned.Analysis(); res == nil || len(res.Pruned) != 1 {
		t.Fatal("Analysis() does not expose the prune verdicts")
	}

	// The unpruned twin schedules everything and carries no analysis.
	if plain.ScheduledDiffs() != 4 || plain.PrunedCount() != 0 || plain.Analysis() != nil {
		t.Fatalf("unpruned network: scheduled %d pruned %d analysis %v",
			plain.ScheduledDiffs(), plain.PrunedCount(), plain.Analysis())
	}
}

func TestStaticPruningEquivalence(t *testing.T) {
	st, pruned, plain := buildPruned(t, storage.CapInserts)
	both := func(insert bool, rel string, vs ...int64) {
		tp := tup(vs...)
		var changed bool
		if insert {
			changed, _ = st.Insert(rel, tp)
		} else {
			changed, _ = st.Delete(rel, tp)
		}
		if !changed {
			t.Fatalf("mutation %v %s%v had no effect", insert, rel, vs)
		}
		for _, n := range []*Network{pruned, plain} {
			d := n.BaseDelta(rel)
			if insert {
				d.Insert(tp)
			} else {
				d.Delete(tp)
			}
		}
	}
	both(true, "q", 2, 1)
	both(true, "r", 1, 3)
	both(false, "q", 1, 1)

	resP, err := pruned.Propagate()
	if err != nil {
		t.Fatal(err)
	}
	resU, err := plain.Propagate()
	if err != nil {
		t.Fatal(err)
	}
	dp, du := resP["p"], resU["p"]
	if dp == nil || du == nil {
		t.Fatal("missing Δp")
	}
	if !dp.Plus().Equal(du.Plus()) || !dp.Minus().Equal(du.Minus()) {
		t.Fatalf("pruned Δp = <%s, %s>, unpruned <%s, %s>",
			dp.Plus(), dp.Minus(), du.Plus(), du.Minus())
	}
}

func TestStaticPruningDotRendering(t *testing.T) {
	_, pruned, _ := buildPruned(t, storage.CapFrozen)
	// Frozen r prunes both r-triggered differentials; the r→p edge
	// renders dashed with the OL code, in Dot and DotHeat alike.
	for name, out := range map[string]string{"Dot": pruned.Dot(), "DotHeat": pruned.DotHeat()} {
		if !strings.Contains(out, "style=dashed") || !strings.Contains(out, analyze.CodeUnreachableDelta) {
			t.Errorf("%s output misses dashed pruned edge:\n%s", name, out)
		}
	}
	// The unpruned q→p edge still renders solid.
	if !strings.Contains(pruned.Dot(), "Δp/Δ+q") {
		t.Errorf("Dot output lost the live edge:\n%s", pruned.Dot())
	}
}
