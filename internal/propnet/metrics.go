package propnet

import "partdiff/internal/obs"

// Metrics is the propagation network's meter set. The zero value is a
// valid disabled meter set (nil meters are no-ops).
type Metrics struct {
	// Propagations counts Propagate runs (one per check round).
	Propagations *obs.Counter
	// Differentials counts executed partial differentials.
	Differentials *obs.Counter
	// Reevaluations counts aggregate/recursive nodes recomputed by
	// old-vs-new diffing instead of partial differencing.
	Reevaluations *obs.Counter
	// ZeroEffect counts differential executions that ran with a
	// non-empty seed Δ but emitted nothing — the paper's wasted-work
	// signal (the change did not affect the view through this path).
	ZeroEffect *obs.Counter
	// NodeDifferentials / NodeEmitted / NodeZeroEffect break differential
	// executions, emitted Δ tuples and zero-effect executions down per
	// view node.
	NodeDifferentials *obs.CounterVec
	NodeEmitted       *obs.CounterVec
	NodeZeroEffect    *obs.CounterVec
	// EmittedSize is the distribution of per-differential result sizes
	// (before §7.2 negative verification).
	EmittedSize *obs.Histogram
	// QueueDepth is the number of changed nodes at the level currently
	// being propagated.
	QueueDepth *obs.Gauge
	// WaveFrontPeak is the high-water mark of tuples held in view
	// Δ-sets (the algorithm's working set, cf. MaxWaveFront).
	WaveFrontPeak *obs.Gauge
	// PropagateSeconds is the wall-clock distribution of Propagate runs.
	PropagateSeconds *obs.Histogram
}

// NewMetrics registers the propagation-network meters in r.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Propagations:  r.Counter("partdiff_propnet_propagations_total", "Breadth-first propagation runs (one per check round with changes)."),
		Differentials: r.Counter("partdiff_propnet_differentials_total", "Partial differential executions."),
		Reevaluations: r.Counter("partdiff_propnet_reevaluations_total", "Aggregate/recursive node re-evaluations (old vs new state diff)."),
		NodeDifferentials: r.CounterVec("partdiff_propnet_node_differentials_total",
			"Partial differential executions per view node.", "node"),
		NodeEmitted: r.CounterVec("partdiff_propnet_node_emitted_tuples_total",
			"Δ tuples emitted per view node (before negative verification).", "node"),
		ZeroEffect: r.Counter("partdiff_propnet_zero_effect_total", "Differential executions that emitted an empty Δ (wasted work)."),
		NodeZeroEffect: r.CounterVec("partdiff_propnet_node_zero_effect_total",
			"Zero-effect differential executions per view node.", "node"),
		EmittedSize:      r.Histogram("partdiff_propnet_differential_emitted_tuples", "Per-differential emitted Δ sizes.", obs.DefSizeBuckets),
		QueueDepth:       r.Gauge("partdiff_propnet_queue_depth", "Changed nodes at the propagation level currently executing."),
		WaveFrontPeak:    r.Gauge("partdiff_propnet_wavefront_peak_tuples", "Peak tuples held in view Δ-sets during propagation."),
		PropagateSeconds: r.Histogram("partdiff_propnet_propagate_seconds", "Wall-clock time per propagation run.", obs.DefLatencyBuckets),
	}
}

// SetObs installs the meter set and tracer on the network (nil values
// restore the disabled defaults). The rules manager calls this every
// time it rebuilds its networks, passing the same registry-backed
// meters so counts accumulate across rebuilds. Meters for the network's
// internal evaluator are installed separately via Evaluator().SetMetrics.
func (n *Network) SetObs(m *Metrics, tr *obs.Tracer) {
	if m == nil {
		m = &Metrics{}
	}
	n.met = m
	n.tracer = tr
}
