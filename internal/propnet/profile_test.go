package propnet

import (
	"strings"
	"testing"

	"partdiff/internal/diff"
	"partdiff/internal/objectlog"
	"partdiff/internal/obs"
)

// TestExecutedResetsPerPropagation pins the documented reset semantics:
// Executed and MaxWaveFront describe only the most recent Propagate
// call, while TotalExecuted and PeakWaveFront accumulate over the
// network's lifetime.
func TestExecutedResetsPerPropagation(t *testing.T) {
	st, n := buildPQR(t)
	if n.Executed() != 0 || n.TotalExecuted() != 0 {
		t.Fatalf("fresh network: executed=%d total=%d", n.Executed(), n.TotalExecuted())
	}

	apply(t, st, n, true, "q", tup(1, 2))
	if _, err := n.Propagate(); err != nil {
		t.Fatal(err)
	}
	first := n.Executed()
	if first == 0 {
		t.Fatal("first propagation executed nothing")
	}
	if n.TotalExecuted() != int64(first) {
		t.Errorf("total=%d want %d", n.TotalExecuted(), first)
	}
	wf := n.MaxWaveFront()
	if wf == 0 || n.PeakWaveFront() != wf {
		t.Errorf("wavefront=%d peak=%d", wf, n.PeakWaveFront())
	}
	n.ClearBase()

	// An empty propagation resets the per-run counters to zero but must
	// not disturb the cumulative ones.
	if _, err := n.Propagate(); err != nil {
		t.Fatal(err)
	}
	if n.Executed() != 0 || n.MaxWaveFront() != 0 {
		t.Errorf("empty run: executed=%d wavefront=%d, want 0", n.Executed(), n.MaxWaveFront())
	}
	if n.TotalExecuted() != int64(first) || n.PeakWaveFront() != wf {
		t.Errorf("cumulative counters moved on empty run: total=%d peak=%d", n.TotalExecuted(), n.PeakWaveFront())
	}

	apply(t, st, n, false, "q", tup(1, 2))
	if _, err := n.Propagate(); err != nil {
		t.Fatal(err)
	}
	if n.Executed() == 0 {
		t.Error("third propagation executed nothing")
	}
	if n.TotalExecuted() != int64(first+n.Executed()) {
		t.Errorf("total=%d want %d", n.TotalExecuted(), first+n.Executed())
	}
}

// TestAdoptCountersSurvivesRebuild pins the rebuild contract used by
// the rules manager: a freshly built replacement network starts its
// per-run counters at zero but adopts the predecessor's cumulative
// counters, so TotalExecuted never goes backwards across ensureNet.
func TestAdoptCountersSurvivesRebuild(t *testing.T) {
	st, old := buildPQR(t)
	apply(t, st, old, true, "q", tup(1, 2))
	if _, err := old.Propagate(); err != nil {
		t.Fatal(err)
	}
	total, peak := old.TotalExecuted(), old.PeakWaveFront()
	if total == 0 {
		t.Fatal("no executions before rebuild")
	}

	n := New(st, objectlog.NewProgram(), diff.DefaultOptions())
	if err := n.AddView(pqrDef(), true); err != nil {
		t.Fatal(err)
	}
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	n.AdoptCounters(old)
	if n.Executed() != 0 || n.MaxWaveFront() != 0 {
		t.Errorf("rebuilt network per-run counters: executed=%d wavefront=%d", n.Executed(), n.MaxWaveFront())
	}
	if n.TotalExecuted() != total || n.PeakWaveFront() != peak {
		t.Errorf("adopted total=%d peak=%d, want %d/%d", n.TotalExecuted(), n.PeakWaveFront(), total, peak)
	}

	apply(t, st, n, true, "q", tup(5, 5))
	if _, err := n.Propagate(); err != nil {
		t.Fatal(err)
	}
	if n.TotalExecuted() <= total {
		t.Errorf("total did not grow past adopted value: %d", n.TotalExecuted())
	}

	// Adopting from nil is a no-op (the first build).
	n.AdoptCounters(nil)
	if n.TotalExecuted() <= total {
		t.Error("AdoptCounters(nil) reset the cumulative counters")
	}
}

// TestProfilerEntriesSurviveRebuild checks that the same profiler
// carried to a replacement network keeps accumulating into the same
// per-differential entries (they are keyed by view and name, not by
// network identity).
func TestProfilerEntriesSurviveRebuild(t *testing.T) {
	p := obs.NewProfiler()
	p.Enable(true)

	st, old := buildPQR(t)
	old.SetProfiler(p)
	apply(t, st, old, true, "q", tup(1, 2))
	if _, err := old.Propagate(); err != nil {
		t.Fatal(err)
	}
	var execs int64
	for _, pt := range p.Snapshot() {
		execs += pt.Execs
	}
	if execs == 0 {
		t.Fatal("profiler recorded nothing")
	}

	n := New(st, objectlog.NewProgram(), diff.DefaultOptions())
	if err := n.AddView(pqrDef(), true); err != nil {
		t.Fatal(err)
	}
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	n.SetProfiler(p)
	apply(t, st, n, false, "q", tup(1, 2))
	if _, err := n.Propagate(); err != nil {
		t.Fatal(err)
	}
	snap := p.Snapshot()
	var execs2 int64
	seen := map[string]bool{}
	for _, pt := range snap {
		execs2 += pt.Execs
		key := pt.View + "/" + pt.Differential
		if seen[key] {
			t.Errorf("duplicate entry after rebuild: %s", key)
		}
		seen[key] = true
	}
	if execs2 <= execs {
		t.Errorf("profile did not accumulate across rebuild: %d -> %d", execs, execs2)
	}
}

// TestZeroEffectMetering checks the zero-effect meters: a base change
// that joins to nothing executes differentials but produces no Δ.
func TestZeroEffectMetering(t *testing.T) {
	reg := obs.NewRegistry()
	st, n := buildPQR(t)
	n.SetObs(NewMetrics(reg), nil)
	// q(9,9) joins no r tuple: both Δp differentials run empty.
	apply(t, st, n, true, "q", tup(9, 9))
	if _, err := n.Propagate(); err != nil {
		t.Fatal(err)
	}
	if got := reg.CounterValue("partdiff_propnet_zero_effect_total"); got == 0 {
		t.Error("zero-effect counter did not move")
	}
}

// TestDotHeatAnnotatesProfile checks the heat-annotated export: same
// structure as Dot, plus fill colors and scanned/zero-effect labels
// from the profiler, and Δ-weighted edges.
func TestDotHeatAnnotatesProfile(t *testing.T) {
	p := obs.NewProfiler()
	p.Enable(true)
	st, n := buildPQR(t)
	n.SetProfiler(p)

	// Unprofiled (empty profile) heat export keeps the plain structure.
	cold := n.DotHeat()
	for _, want := range []string{"digraph propagation", "nq -> np", "penwidth=1.00"} {
		if !strings.Contains(cold, want) {
			t.Errorf("cold DotHeat missing %q:\n%s", want, cold)
		}
	}

	apply(t, st, n, true, "q", tup(1, 2)) // joins r(2,3): produces Δ+p
	if _, err := n.Propagate(); err != nil {
		t.Fatal(err)
	}
	hot := n.DotHeat()
	for _, want := range []string{
		"scanned ",           // node annotation
		"zero-effect ",       // node annotation
		"\\nΔ ",              // edge flow label
		"fillcolor=\"0.000 ", // heat color
		"style=filled",
	} {
		if !strings.Contains(hot, want) {
			t.Errorf("DotHeat missing %q:\n%s", want, hot)
		}
	}
	// The hot q→p edge must be wider than the cold baseline.
	if !strings.Contains(hot, "nq -> np") {
		t.Fatalf("structure changed:\n%s", hot)
	}
	if strings.Count(hot, "penwidth=1.00]") == strings.Count(hot, "penwidth=") {
		t.Errorf("no edge gained width:\n%s", hot)
	}
}

// TestDotHeatNilProfiler: a network that never had a profiler renders
// without panicking (nil-safe snapshot).
func TestDotHeatNilProfiler(t *testing.T) {
	_, n := buildPQR(t)
	if out := n.DotHeat(); !strings.Contains(out, "digraph propagation") {
		t.Errorf("DotHeat on unprofiled network:\n%s", out)
	}
}
