package storage

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"partdiff/internal/types"
)

func tup(vs ...int64) types.Tuple {
	t := make(types.Tuple, len(vs))
	for i, v := range vs {
		t[i] = types.Int(v)
	}
	return t
}

func TestNewRelationValidation(t *testing.T) {
	if _, err := NewRelation("r", 0, nil); err == nil {
		t.Error("zero arity should error")
	}
	if _, err := NewRelation("r", 2, []int{2}); err == nil {
		t.Error("key col out of range should error")
	}
	r, err := NewRelation("r", 2, []int{0})
	if err != nil || r.Name() != "r" || r.Arity() != 2 || len(r.KeyCols()) != 1 {
		t.Fatalf("NewRelation: %v", err)
	}
}

func TestStoreInsertDeleteEvents(t *testing.T) {
	s := NewStore()
	if _, err := s.CreateRelation("q", 2, []int{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateRelation("q", 2, nil); err == nil {
		t.Error("duplicate relation should error")
	}
	var events []Event
	s.Subscribe(func(e Event) { events = append(events, e) })

	added, err := s.Insert("q", tup(1, 10))
	if err != nil || !added {
		t.Fatalf("insert: %v %v", added, err)
	}
	added, _ = s.Insert("q", tup(1, 10))
	if added {
		t.Error("duplicate insert must report false")
	}
	if len(events) != 1 || events[0].Kind != InsertEvent {
		t.Errorf("events after duplicate insert: %v", events)
	}
	removed, _ := s.Delete("q", tup(1, 10))
	if !removed || len(events) != 2 || events[1].Kind != DeleteEvent {
		t.Errorf("delete: %v %v", removed, events)
	}
	removed, _ = s.Delete("q", tup(1, 10))
	if removed {
		t.Error("delete of absent tuple must report false")
	}
	if _, err := s.Insert("nosuch", tup(1)); err == nil {
		t.Error("insert into unknown relation should error")
	}
	if _, err := s.Insert("q", tup(1)); err == nil {
		t.Error("wrong arity insert should error")
	}
}

// TestSetPhysicalEventOrder reproduces the §4.1 event stream: an update
// emits the deletion of the old value tuple before the insertion of the
// new one.
func TestSetPhysicalEventOrder(t *testing.T) {
	s := NewStore()
	s.CreateRelation("min_stock", 2, []int{0})
	item1 := types.Obj(1)
	s.Insert("min_stock", types.Tuple{item1, types.Int(100)})

	var events []Event
	s.Subscribe(func(e Event) { events = append(events, e) })

	if _, err := s.Set("min_stock", []types.Value{item1}, []types.Value{types.Int(150)}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Set("min_stock", []types.Value{item1}, []types.Value{types.Int(100)}); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"-(min_stock,#1,100)",
		"+(min_stock,#1,150)",
		"-(min_stock,#1,150)",
		"+(min_stock,#1,100)",
	}
	if len(events) != len(want) {
		t.Fatalf("events=%v", events)
	}
	for i, e := range events {
		if e.String() != want[i] {
			t.Errorf("event[%d]=%s want %s", i, e, want[i])
		}
	}
}

func TestSetNoOpEmitsNothing(t *testing.T) {
	s := NewStore()
	s.CreateRelation("f", 2, []int{0})
	s.Set("f", []types.Value{types.Int(1)}, []types.Value{types.Int(5)})
	var n int
	s.Subscribe(func(Event) { n++ })
	s.Set("f", []types.Value{types.Int(1)}, []types.Value{types.Int(5)})
	if n != 0 {
		t.Errorf("no-op Set emitted %d events", n)
	}
}

func TestSetReplacesAllKeyMatches(t *testing.T) {
	s := NewStore()
	s.CreateRelation("f", 2, []int{0})
	// Multi-valued state for the key (via raw inserts).
	s.Insert("f", tup(1, 10))
	s.Insert("f", tup(1, 20))
	s.Insert("f", tup(2, 99))
	old, err := s.Set("f", []types.Value{types.Int(1)}, []types.Value{types.Int(30)})
	if err != nil {
		t.Fatal(err)
	}
	if len(old) != 2 {
		t.Errorf("retracted %d tuples, want 2", len(old))
	}
	r, _ := s.Relation("f")
	if r.Len() != 2 || !r.Contains(tup(1, 30)) || !r.Contains(tup(2, 99)) {
		t.Errorf("relation after set: %s", r.Rows())
	}
}

func TestGet(t *testing.T) {
	s := NewStore()
	s.CreateRelation("f", 2, []int{0})
	s.Set("f", []types.Value{types.Int(1)}, []types.Value{types.Int(10)})
	vals, err := s.Get("f", []types.Value{types.Int(1)})
	if err != nil || len(vals) != 1 || !vals[0][0].Equal(types.Int(10)) {
		t.Errorf("Get=%v err=%v", vals, err)
	}
	vals, _ = s.Get("f", []types.Value{types.Int(9)})
	if len(vals) != 0 {
		t.Error("Get of absent key should be empty")
	}
	if _, err := s.Get("nosuch", nil); err == nil {
		t.Error("Get on unknown relation should error")
	}
	// Nullary-key relation: Get(nil) returns all rows.
	s.CreateRelation("g", 1, nil)
	s.Insert("g", tup(1))
	s.Insert("g", tup(2))
	vals, _ = s.Get("g", nil)
	if len(vals) != 2 {
		t.Errorf("nullary Get=%v", vals)
	}
}

func TestLookupIndex(t *testing.T) {
	s := NewStore()
	s.CreateRelation("r", 3, nil)
	s.Insert("r", tup(1, 2, 3))
	s.Insert("r", tup(1, 5, 6))
	s.Insert("r", tup(2, 2, 7))
	r, _ := s.Relation("r")
	var n int
	r.Lookup(0, types.Int(1), func(types.Tuple) bool { n++; return true })
	if n != 2 {
		t.Errorf("Lookup col0=1 found %d", n)
	}
	n = 0
	r.Lookup(1, types.Int(2), func(types.Tuple) bool { n++; return true })
	if n != 2 {
		t.Errorf("Lookup col1=2 found %d", n)
	}
	if r.LookupCount(2, types.Int(3)) != 1 || r.LookupCount(2, types.Int(99)) != 0 {
		t.Error("LookupCount")
	}
	// out-of-range column: no results, no panic
	r.Lookup(9, types.Int(1), func(types.Tuple) bool { t.Error("should not match"); return true })
	if r.LookupCount(-1, types.Int(1)) != 0 {
		t.Error("negative col LookupCount")
	}
	// Index shrinks after delete.
	s.Delete("r", tup(1, 2, 3))
	if r.LookupCount(0, types.Int(1)) != 1 {
		t.Error("index not updated after delete")
	}
}

func TestLookupEarlyStop(t *testing.T) {
	s := NewStore()
	s.CreateRelation("r", 1, nil)
	for i := 0; i < 5; i++ {
		s.Insert("r", tup(7))
	}
	s.Insert("r", tup(7)) // dup, ignored
	r, _ := s.Relation("r")
	if r.Len() != 1 {
		t.Fatalf("Len=%d", r.Len())
	}
}

func TestUnsubscribe(t *testing.T) {
	s := NewStore()
	s.CreateRelation("r", 1, nil)
	var n int
	cancel := s.Subscribe(func(Event) { n++ })
	s.Insert("r", tup(1))
	cancel()
	s.Insert("r", tup(2))
	if n != 1 {
		t.Errorf("listener called %d times after unsubscribe", n)
	}
}

func TestRelationNames(t *testing.T) {
	s := NewStore()
	s.CreateRelation("b", 1, nil)
	s.CreateRelation("a", 1, nil)
	names := s.RelationNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("RelationNames=%v", names)
	}
}

// Property: the index always agrees with a full scan, under a random
// mixed workload of inserts, deletes and sets.
func TestIndexConsistency_Quick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewStore()
		s.CreateRelation("f", 2, []int{0})
		rel, _ := s.Relation("f")
		for i := 0; i < 150; i++ {
			k, v := int64(r.Intn(8)), int64(r.Intn(8))
			switch r.Intn(3) {
			case 0:
				s.Insert("f", tup(k, v))
			case 1:
				s.Delete("f", tup(k, v))
			default:
				s.Set("f", []types.Value{types.Int(k)}, []types.Value{types.Int(v)})
			}
		}
		// Verify every column index against a scan.
		for col := 0; col < 2; col++ {
			for v := int64(0); v < 8; v++ {
				want := 0
				rel.Each(func(t types.Tuple) bool {
					if t[col].Equal(types.Int(v)) {
						want++
					}
					return true
				})
				if rel.LookupCount(col, types.Int(v)) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Set always leaves exactly one tuple per key that has ever
// been Set (and never raw-inserted since).
func TestSetFunctionalInvariant_Quick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewStore()
		s.CreateRelation("f", 2, []int{0})
		rel, _ := s.Relation("f")
		keys := map[int64]bool{}
		for i := 0; i < 100; i++ {
			k := int64(r.Intn(5))
			keys[k] = true
			s.Set("f", []types.Value{types.Int(k)}, []types.Value{types.Int(int64(r.Intn(100)))})
		}
		for k := range keys {
			if rel.LookupCount(0, types.Int(k)) != 1 {
				return false
			}
		}
		return rel.Len() == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTuplesReferencing(t *testing.T) {
	s := NewStore()
	s.CreateRelation("f", 2, []int{0})
	s.CreateRelation("g", 3, nil)
	obj := types.Obj(42)
	s.Insert("f", types.Tuple{obj, types.Int(1)})
	s.Insert("f", types.Tuple{types.Obj(7), types.Int(2)})
	s.Insert("g", types.Tuple{types.Int(1), obj, obj}) // twice in one tuple
	s.Insert("g", types.Tuple{types.Int(2), types.Obj(7), types.Obj(8)})

	refs := s.TuplesReferencing(obj)
	if len(refs) != 2 {
		t.Fatalf("refs=%v", refs)
	}
	if len(refs["f"]) != 1 || len(refs["g"]) != 1 {
		t.Errorf("f=%d g=%d (same tuple must not be listed twice)", len(refs["f"]), len(refs["g"]))
	}
	if got := s.TuplesReferencing(types.Obj(999)); len(got) != 0 {
		t.Errorf("ghost refs=%v", got)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Relation: "f", Kind: InsertEvent, Tuple: tup(1, 2)}
	if e.String() != "+(f,1,2)" {
		t.Errorf("Event.String()=%q", e.String())
	}
	if fmt.Sprint(DeleteEvent) != "-" || fmt.Sprint(InsertEvent) != "+" {
		t.Error("EventKind.String")
	}
}
