package storage

import (
	"fmt"

	"partdiff/internal/obs"
)

// Capability describes which physical changes a base relation admits.
// It is a two-bit lattice: the default CapAll admits both signs, and
// DeclareCapability can only restrict, never widen. Because the store
// rejects mutations outside a relation's declared capability, a
// declaration is an enforced contract, not a hint — the static network
// analyzer (internal/analyze) may soundly prove that Δ-sets of a given
// sign are always empty for restricted relations and prune the partial
// differentials they would have triggered.
type Capability uint8

// The capability bits.
const (
	// CapFrozen admits no changes at all (a read-only relation, e.g. a
	// dimension table sealed after loading).
	CapFrozen Capability = 0
	// CapInserts admits insertions (+ events).
	CapInserts Capability = 1 << 0
	// CapDeletes admits deletions (− events).
	CapDeletes Capability = 1 << 1
	// CapAll is the default: both signs admitted.
	CapAll = CapInserts | CapDeletes
)

// CanInsert reports whether + events are admitted.
func (c Capability) CanInsert() bool { return c&CapInserts != 0 }

// CanDelete reports whether − events are admitted.
func (c Capability) CanDelete() bool { return c&CapDeletes != 0 }

// String names the capability as in the declare statement.
func (c Capability) String() string {
	switch c {
	case CapFrozen:
		return "readonly"
	case CapInserts:
		return "append only"
	case CapDeletes:
		return "delete only"
	default:
		return "read-write"
	}
}

// ParseCapability maps the declare-statement spellings to a capability.
func ParseCapability(s string) (Capability, bool) {
	switch s {
	case "readonly", "read-only", "frozen":
		return CapFrozen, true
	case "append only", "append-only", "insert only", "insert-only":
		return CapInserts, true
	case "delete only", "delete-only":
		return CapDeletes, true
	case "read-write", "readwrite":
		return CapAll, true
	}
	return 0, false
}

// DeclareCapability restricts the admitted change kinds of a relation.
// Declarations are monotone: the new capability must be a subset of the
// current one, so a proof derived from an earlier declaration can never
// be invalidated later. The restriction takes effect immediately;
// recovery paths (snapshot load, logged-event replay) bypass it, since
// they reconstruct history that may predate the declaration.
func (s *Store) DeclareCapability(rel string, cap Capability) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.rels[rel]; !ok {
		return fmt.Errorf("relation %q does not exist", rel)
	}
	cur := CapAll
	if c, ok := s.caps[rel]; ok {
		cur = c
	}
	if cap&^cur != 0 {
		return fmt.Errorf("relation %q is declared %s; capabilities can only be restricted, not widened to %s", rel, cur, cap)
	}
	if s.caps == nil {
		s.caps = map[string]Capability{}
	}
	s.caps[rel] = cap
	return nil
}

// Capability returns the declared capability of a relation (CapAll when
// none was declared, or when the relation does not exist).
func (s *Store) Capability(rel string) Capability {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if c, ok := s.caps[rel]; ok {
		return c
	}
	return CapAll
}

// SuspendEnforcement suspends capability enforcement until the matching
// ResumeEnforcement. Transaction rollback holds a suspension across its
// inverse replay: undoing an admitted insertion into an append-only
// relation requires a deletion the relation's users are denied, and the
// pre-transaction state it restores trivially satisfied the declaration.
// Calls nest.
func (s *Store) SuspendEnforcement() { s.capSuspend.Add(1) }

// ResumeEnforcement closes the scope opened by SuspendEnforcement.
func (s *Store) ResumeEnforcement() { s.capSuspend.Add(-1) }

// checkCapability enforces a declared capability against an intended
// mutation. Caller holds s.mu.
func (s *Store) checkCapability(rel string, kind EventKind) error {
	if s.capSuspend.Load() > 0 {
		return nil
	}
	c, ok := s.caps[rel]
	if !ok {
		return nil
	}
	if kind == InsertEvent && !c.CanInsert() {
		return s.capViolation(fmt.Errorf("relation %q is declared %s: insertions are not admitted", rel, c))
	}
	if kind == DeleteEvent && !c.CanDelete() {
		return s.capViolation(fmt.Errorf("relation %q is declared %s: deletions are not admitted", rel, c))
	}
	return nil
}

// capViolation reports a rejected mutation on the event bus. Published
// directly (not staged): the violation describes an attempt that never
// becomes part of any committed state.
func (s *Store) capViolation(err error) error {
	if s.bus.Active() {
		s.bus.Publish(obs.Event{Type: obs.EventSystem, Op: "capability_violation", Detail: err.Error()})
	}
	s.rec.Trigger(obs.TrigCapViolation, err.Error())
	return err
}
