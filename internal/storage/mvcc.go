package storage

// Multi-version concurrency control for snapshot reads.
//
// Writers are serialized by the session's admission gate (internal/txn),
// so at any moment there is at most one transaction in flight; it writes
// at sequence commitSeq+1. Readers pin the current commitSeq and see
// exactly the rows committed at or before it: a row is visible at
// snapshot S iff it was added at addSeq <= S and not deleted at delSeq
// <= S. Version metadata lives in a per-relation sidecar — `added`
// records the write sequence of recently-added live rows, `dead` holds
// tombstones of recently-deleted ones — and is garbage-collected at
// every commit down to the oldest pinned snapshot. With no snapshots
// pinned the sidecar drains to empty and the MVCC layer costs a map
// probe per mutation.
//
// Rollback replays the undo log inverted through the normal update path
// (internal/txn), and the sidecar rules below make that replay exact:
// re-inserting a tuple the same transaction deleted resurrects its
// tombstone (restoring the original addSeq), and deleting a tuple the
// same transaction added removes it without a tombstone. After a
// rollback the sidecar is byte-identical to its pre-transaction state,
// so the aborted transaction's write sequence can be reused safely.

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"partdiff/internal/types"
)

// rwlatch is a tiny writer-preference spin latch guarding one
// relation's rows, indexes and version sidecar. A fresh reader waits
// while a writer is queued (wantw > 0), so continuous read traffic can
// never starve the writer; the writer holds it for one physical row
// mutation, so readers wait microseconds, not query-lengths.
//
// Writer preference is safe against reader recursion (a self-join calls
// Lookup while inside Each on the same relation) because recursive
// acquisition never reaches the latch: snapshot readers skip
// re-latching via the view's held set, and the live read path runs only
// in the serialized writer's own goroutine, where wantw is necessarily
// zero (the admission gate allows one writer at a time, and it cannot
// be spinning in lock() while evaluating).
type rwlatch struct {
	// state >= 0: number of readers; -1: writer.
	state atomic.Int32
	// wantw counts writers spinning in lock(). Fresh readers wait while
	// it is nonzero so the writer's CAS window opens.
	wantw atomic.Int32
}

func (l *rwlatch) rlock() {
	for {
		if l.wantw.Load() == 0 {
			s := l.state.Load()
			if s >= 0 && l.state.CompareAndSwap(s, s+1) {
				return
			}
		}
		runtime.Gosched()
	}
}

func (l *rwlatch) runlock() { l.state.Add(-1) }

func (l *rwlatch) lock() {
	l.wantw.Add(1)
	for !l.state.CompareAndSwap(0, -1) {
		runtime.Gosched()
	}
	l.wantw.Add(-1)
}

func (l *rwlatch) unlock() { l.state.Store(0) }

// deadRow is a tombstone: a tuple deleted at delSeq that snapshots
// pinned before it must still see. addSeq is the sequence the row was
// added at (0 when it predates the sidecar, e.g. recovery-loaded rows).
type deadRow struct {
	t      types.Tuple
	addSeq uint64
	delSeq uint64
}

// writeSeq returns the sequence the in-flight transaction writes at.
func (s *Store) writeSeq() uint64 { return s.commitSeq.Load() + 1 }

// CommitSeq returns the sequence of the last committed transaction.
func (s *Store) CommitSeq() uint64 { return s.commitSeq.Load() }

// AdvanceCommit publishes a committed transaction's writes: it bumps
// the commit sequence (rows written at the new sequence become visible
// to snapshots pinned from now on), stamps every touched relation for
// conflict validation, and garbage-collects version metadata older than
// the oldest pinned snapshot. The caller (the transaction manager, at
// ack) must be the serialized writer.
func (s *Store) AdvanceCommit(touched []string) uint64 {
	s.pinMu.Lock()
	seq := s.commitSeq.Load() + 1
	s.commitSeq.Store(seq)
	min := seq
	for p := range s.pins {
		if p < min {
			min = p
		}
	}
	s.pinMu.Unlock()
	s.mu.Lock()
	for _, n := range touched {
		if r, ok := s.rels[n]; ok {
			r.latch.lock()
			r.lastWrite = seq
			r.latch.unlock()
		}
	}
	s.purgeDirtyLocked(min)
	s.mu.Unlock()
	return seq
}

// purgeDirtyLocked drops version metadata no snapshot at or after min
// needs. Caller holds s.mu.
func (s *Store) purgeDirtyLocked(min uint64) {
	for n := range s.dirty {
		r, ok := s.rels[n]
		if !ok || r.purge(min) {
			delete(s.dirty, n)
		}
	}
}

// purge removes sidecar entries covered by every snapshot >= min; it
// reports whether the sidecar is now empty.
func (r *Relation) purge(min uint64) bool {
	r.latch.lock()
	defer r.latch.unlock()
	for k, a := range r.added {
		if a <= min {
			delete(r.added, k)
		}
	}
	for k, ds := range r.dead {
		keep := ds[:0]
		for _, d := range ds {
			if d.delSeq > min {
				keep = append(keep, d)
			}
		}
		if len(keep) == 0 {
			delete(r.dead, k)
		} else {
			r.dead[k] = keep
		}
	}
	return len(r.added) == 0 && len(r.dead) == 0
}

// SnapshotView is a pinned read view of the store at one commit
// sequence. It is safe for concurrent use with the writer, but serves
// ONE reading goroutine at a time (each query pins its own view; an
// Atomic transaction's single goroutine reuses one); Close releases the
// pin (idempotent) so version metadata can be collected.
//
// rels is copied out of the store at pin time so Source never takes the
// store lock: a snapshot evaluator resolves predicates from inside
// latched row callbacks (mid-join), and going back to store.mu there
// deadlocks against a writer that takes store.mu before the row latch.
//
// held counts, per relation, how many of the view's sources currently
// hold its read latch. A nested acquire (self-join: Lookup from inside
// Each's row callback) sees held > 0 and skips the latch — the outer
// call already holds it — which is what lets the latch itself give
// writers strict preference without deadlocking reader recursion.
// Single-goroutine use (above) is what makes the plain map safe.
type SnapshotView struct {
	st     *Store
	seq    uint64
	rels   map[string]*Relation
	held   map[*Relation]int
	closed atomic.Bool
}

// PinSnapshot pins the current commit sequence and returns a consistent
// read view over it.
func (s *Store) PinSnapshot() *SnapshotView {
	s.pinMu.Lock()
	seq := s.commitSeq.Load()
	s.pins[seq]++
	s.pinMu.Unlock()
	s.mu.RLock()
	rels := make(map[string]*Relation, len(s.rels))
	for n, r := range s.rels {
		rels[n] = r
	}
	s.mu.RUnlock()
	s.met.SnapshotPins.Inc()
	s.met.PinnedSnapshots.Add(1)
	return &SnapshotView{st: s, seq: seq, rels: rels, held: make(map[*Relation]int)}
}

// Seq returns the pinned commit sequence.
func (v *SnapshotView) Seq() uint64 { return v.seq }

// Close releases the pin. When the last pin drops, retained version
// metadata is collected immediately rather than waiting for the next
// commit.
func (v *SnapshotView) Close() {
	if v.closed.Swap(true) {
		return
	}
	s := v.st
	s.pinMu.Lock()
	s.pins[v.seq]--
	if s.pins[v.seq] <= 0 {
		delete(s.pins, v.seq)
	}
	idle := len(s.pins) == 0
	min := s.commitSeq.Load()
	s.pinMu.Unlock()
	s.met.PinnedSnapshots.Add(-1)
	if idle {
		s.mu.Lock()
		s.purgeDirtyLocked(min)
		s.mu.Unlock()
	}
}

// Source returns a Source reading the named relation as of the pinned
// sequence, or false if the relation did not exist at pin time. The
// lookup runs on the view's own relation map — never the store lock —
// so it is safe to call from inside another Source's row callback.
func (v *SnapshotView) Source(name string) (Source, bool) {
	r, ok := v.rels[name]
	if !ok {
		return nil, false
	}
	return snapSource{r: r, seq: v.seq, view: v}, true
}

// WriteSince reports whether any of the named relations was touched by
// a commit after seq — the read-set validation of an optimistic
// transaction. Callers must hold the writer gate, so no commit can race
// the check.
func (s *Store) WriteSince(seq uint64, rels map[string]bool) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for n := range rels {
		if r, ok := s.rels[n]; ok {
			r.latch.rlock()
			lw := r.lastWrite
			r.latch.runlock()
			if lw > seq {
				return true
			}
		}
	}
	return false
}

// snapSource adapts one relation to a Source at a fixed snapshot
// sequence: live rows added after the snapshot are filtered out, and
// tombstoned rows still visible at it are merged back in.
type snapSource struct {
	r    *Relation
	seq  uint64
	view *SnapshotView
}

func (v snapSource) Arity() int { return v.r.arity }

// acquire read-latches the relation through the view's held set: a
// nested call on a relation the view already holds (self-join) skips
// the latch, so the writer-preference latch cannot deadlock reader
// recursion. Returns the matching release.
func (v snapSource) acquire() func() {
	if v.view.held[v.r] > 0 {
		v.view.held[v.r]++
	} else {
		v.r.latch.rlock()
		v.view.held[v.r] = 1
	}
	return v.release
}

func (v snapSource) release() {
	if n := v.view.held[v.r] - 1; n > 0 {
		v.view.held[v.r] = n
	} else {
		delete(v.view.held, v.r)
		v.r.latch.runlock()
	}
}

// hidden reports whether the live row with this key is too new for the
// snapshot. Caller holds the latch.
func (v snapSource) hidden(key string) bool {
	a, ok := v.r.added[key]
	return ok && a > v.seq
}

// deadVisible reports whether tombstone d is visible at the snapshot.
func (v snapSource) deadVisible(d deadRow) bool {
	return d.addSeq <= v.seq && d.delSeq > v.seq
}

func (v snapSource) Len() int {
	defer v.acquire()()
	if len(v.r.added) == 0 && len(v.r.dead) == 0 {
		return v.r.rows.Len()
	}
	n := 0
	v.r.rows.Each(func(t types.Tuple) bool {
		if !v.hidden(t.Key()) {
			n++
		}
		return true
	})
	for _, ds := range v.r.dead {
		for _, d := range ds {
			if v.deadVisible(d) {
				n++
			}
		}
	}
	return n
}

func (v snapSource) Each(fn func(types.Tuple) bool) {
	defer v.acquire()()
	v.r.met.Reads.Add(int64(v.r.rows.Len()))
	stopped := false
	v.r.rows.Each(func(t types.Tuple) bool {
		if v.hidden(t.Key()) {
			return true
		}
		if !fn(t) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	for _, ds := range v.r.dead {
		for _, d := range ds {
			if v.deadVisible(d) && !fn(d.t) {
				return
			}
		}
	}
}

func (v snapSource) Lookup(col int, val types.Value, fn func(types.Tuple) bool) {
	if col < 0 || col >= v.r.arity {
		return
	}
	defer v.acquire()()
	v.r.met.IndexProbes.Inc()
	stopped := false
	if s, ok := v.r.index[col][val.Key()]; ok {
		v.r.met.Reads.Add(int64(s.Len()))
		s.Each(func(t types.Tuple) bool {
			if v.hidden(t.Key()) {
				return true
			}
			if !fn(t) {
				stopped = true
				return false
			}
			return true
		})
	}
	if stopped || len(v.r.dead) == 0 {
		return
	}
	vk := val.Key()
	for _, ds := range v.r.dead {
		for _, d := range ds {
			if v.deadVisible(d) && d.t[col].Key() == vk && !fn(d.t) {
				return
			}
		}
	}
}

func (v snapSource) Contains(t types.Tuple) bool {
	defer v.acquire()()
	v.r.met.IndexProbes.Inc()
	key := t.Key()
	if v.r.rows.ContainsKey(key) && !v.hidden(key) {
		return true
	}
	for _, d := range v.r.dead[key] {
		if v.deadVisible(d) {
			return true
		}
	}
	return false
}

// insertAt adds t at write sequence seq, recording it in the version
// sidecar; it reports whether the tuple was newly added. Re-inserting a
// tuple the same transaction deleted resurrects its tombstone so a
// rollback's inverse replay restores the sidecar exactly.
func (r *Relation) insertAt(t types.Tuple, seq uint64) (bool, error) {
	if len(t) != r.arity {
		return false, fmt.Errorf("relation %q: tuple arity %d, want %d", r.name, len(t), r.arity)
	}
	r.latch.lock()
	defer r.latch.unlock()
	key := t.Key()
	if ds, ok := r.dead[key]; ok {
		for i, d := range ds {
			if d.delSeq != seq {
				continue
			}
			ds = append(ds[:i], ds[i+1:]...)
			if len(ds) == 0 {
				delete(r.dead, key)
			} else {
				r.dead[key] = ds
			}
			if !r.rows.Add(t) {
				return false, nil
			}
			r.indexAdd(t)
			if d.addSeq > 0 {
				r.addedSet(key, d.addSeq)
			}
			r.met.Inserts.Inc()
			return true, nil
		}
	}
	if !r.rows.Add(t) {
		return false, nil
	}
	r.met.Inserts.Inc()
	r.indexAdd(t)
	r.addedSet(key, seq)
	return true, nil
}

func (r *Relation) addedSet(key string, seq uint64) {
	if r.added == nil {
		r.added = make(map[string]uint64)
	}
	r.added[key] = seq
}

// removeAt deletes t at write sequence seq, leaving a tombstone for
// older snapshots — unless the same transaction added the row, in which
// case it was never visible outside the transaction and is removed
// without a trace.
func (r *Relation) removeAt(t types.Tuple, seq uint64) (bool, error) {
	if len(t) != r.arity {
		return false, fmt.Errorf("relation %q: tuple arity %d, want %d", r.name, len(t), r.arity)
	}
	r.latch.lock()
	defer r.latch.unlock()
	key := t.Key()
	if !r.rows.Remove(t) {
		return false, nil
	}
	r.met.Deletes.Inc()
	r.indexRemove(t)
	a := r.added[key]
	delete(r.added, key)
	if a != seq {
		if r.dead == nil {
			r.dead = make(map[string][]deadRow)
		}
		r.dead[key] = append(r.dead[key], deadRow{t: t, addSeq: a, delSeq: seq})
	}
	return true, nil
}

// checkVersions verifies sidecar sanity: every `added` entry names a
// live row, and every tombstone's lifetime is well-formed. Caller holds
// the latch or is the quiesced writer.
func (r *Relation) checkVersions() error {
	for k, a := range r.added {
		if !r.rows.ContainsKey(k) {
			return fmt.Errorf("relation %q: version sidecar marks missing row %q as added at %d", r.name, k, a)
		}
	}
	for k, ds := range r.dead {
		for _, d := range ds {
			if d.t.Key() != k {
				return fmt.Errorf("relation %q: tombstone keyed %q holds tuple %s", r.name, k, d.t)
			}
			if d.delSeq <= d.addSeq {
				return fmt.Errorf("relation %q: tombstone %s deleted at %d before added at %d", r.name, d.t, d.delSeq, d.addSeq)
			}
		}
	}
	return nil
}
