package storage

import "partdiff/internal/obs"

// Metrics is the storage subsystem's meter set. The zero value is a
// valid disabled meter set (all counters nil → no-ops), which is what
// every relation starts with until Store.SetMetrics is called.
type Metrics struct {
	// Inserts / Deletes count physical tuples applied to base relations.
	Inserts *obs.Counter
	Deletes *obs.Counter
	// Reads counts tuples handed to readers: the size of the tuple set
	// visited by a scan or returned by an index probe.
	Reads *obs.Counter
	// IndexProbes counts hash-index consultations (Lookup, LookupCount,
	// Contains).
	IndexProbes *obs.Counter
	// SnapshotPins counts snapshot views pinned; PinnedSnapshots gauges
	// the ones currently open (each retains version metadata until
	// closed).
	SnapshotPins    *obs.Counter
	PinnedSnapshots *obs.Gauge
}

// NewMetrics registers the storage meters in r (get-or-create: two
// calls on the same registry share state).
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Inserts:         r.Counter("partdiff_storage_tuple_inserts_total", "Physical tuple insertions applied to base relations."),
		Deletes:         r.Counter("partdiff_storage_tuple_deletes_total", "Physical tuple deletions applied to base relations."),
		Reads:           r.Counter("partdiff_storage_tuple_reads_total", "Tuples visited by relation scans and index probes."),
		IndexProbes:     r.Counter("partdiff_storage_index_probes_total", "Hash-index probes (Lookup, LookupCount, Contains)."),
		SnapshotPins:    r.Counter("partdiff_storage_snapshot_pins_total", "Snapshot read views pinned."),
		PinnedSnapshots: r.Gauge("partdiff_storage_pinned_snapshots", "Snapshot read views currently open."),
	}
}

// SetMetrics installs the meter set on the store and every existing
// relation; relations created later inherit it.
func (s *Store) SetMetrics(m *Metrics) {
	if m == nil {
		m = &Metrics{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.met = m
	for _, r := range s.rels {
		r.met = m
	}
}

// SetBus installs the event bus capability violations are reported on
// (nil disables). Install before concurrent use, alongside SetMetrics.
func (s *Store) SetBus(b *obs.Bus) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bus = b
}

// SetRecorder installs the flight recorder capability violations
// trigger on (nil disables). Install before concurrent use.
func (s *Store) SetRecorder(r *obs.Recorder) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rec = r
}
