// Package storage implements the in-memory extensional database: named
// base relations (the extents of stored functions) with per-column hash
// indexes, plus the physical update event stream that the rule monitor
// taps to accumulate Δ-sets (§4.1 of the paper).
//
// Updates to stored functions follow AMOS semantics: `set f(k)=v` first
// removes the old value tuples for the key and then adds the new one,
// producing the physical events −(f,k,old), +(f,k,v) in that order.
package storage

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"partdiff/internal/faultinject"
	"partdiff/internal/obs"
	"partdiff/internal/types"
)

// EventKind distinguishes physical insertions from deletions.
type EventKind int

// The physical event kinds.
const (
	InsertEvent EventKind = iota
	DeleteEvent
)

// String returns "+" or "-" as in the paper's event notation.
func (k EventKind) String() string {
	if k == InsertEvent {
		return "+"
	}
	return "-"
}

// Event is one physical update event on a base relation.
type Event struct {
	Relation string
	Kind     EventKind
	Tuple    types.Tuple
}

// String renders the event as in §4.1, e.g. +(min_stock,#1,150).
func (e Event) String() string {
	return fmt.Sprintf("%s(%s,%s)", e.Kind, e.Relation, tupleInner(e.Tuple))
}

func tupleInner(t types.Tuple) string {
	var b []byte
	for i, v := range t {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, v.String()...)
	}
	return string(b)
}

// Listener observes physical update events. Listeners are invoked
// synchronously, after the store has been modified.
type Listener func(Event)

// Source is a read-only view of a relation, the interface the query
// evaluator runs against. Both live relations and rolled-back (old
// state) views implement it.
type Source interface {
	// Arity returns the number of columns.
	Arity() int
	// Len returns the number of tuples.
	Len() int
	// Each iterates all tuples; stops early when fn returns false.
	Each(fn func(types.Tuple) bool)
	// Lookup iterates the tuples whose column col equals v.
	Lookup(col int, v types.Value, fn func(types.Tuple) bool)
	// Contains reports tuple membership.
	Contains(t types.Tuple) bool
}

// Relation is a stored base relation with per-column hash indexes.
type Relation struct {
	name    string
	arity   int
	keyCols []int
	rows    types.Set
	// index[col][valueKey] is the set of rows with that column value.
	index []map[string]*types.Set
	met   *Metrics // never nil; zero-value Metrics when observability is off

	// MVCC sidecar (see mvcc.go), guarded by latch: added maps the key
	// of each recently-added live row to its write sequence, dead holds
	// tombstones snapshots may still need, lastWrite is the commit
	// sequence of the last committed write (conflict validation). Both
	// maps drain to nil/empty whenever no snapshot is pinned.
	latch     rwlatch
	added     map[string]uint64
	dead      map[string][]deadRow
	lastWrite uint64
}

// NewRelation creates an empty relation. keyCols are the columns that
// form the functional key for Set (the argument columns of a stored
// function); they may be empty for pure assert/retract relations.
func NewRelation(name string, arity int, keyCols []int) (*Relation, error) {
	if arity <= 0 {
		return nil, fmt.Errorf("relation %q: arity must be positive", name)
	}
	for _, c := range keyCols {
		if c < 0 || c >= arity {
			return nil, fmt.Errorf("relation %q: key column %d out of range", name, c)
		}
	}
	r := &Relation{name: name, arity: arity, keyCols: append([]int(nil), keyCols...), met: &Metrics{}}
	r.index = make([]map[string]*types.Set, arity)
	for i := range r.index {
		r.index[i] = make(map[string]*types.Set)
	}
	return r, nil
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Arity returns the number of columns.
func (r *Relation) Arity() int { return r.arity }

// KeyCols returns the functional key columns.
func (r *Relation) KeyCols() []int { return r.keyCols }

// Len returns the number of tuples.
func (r *Relation) Len() int { return r.rows.Len() }

// Contains reports whether the relation holds t.
func (r *Relation) Contains(t types.Tuple) bool {
	r.met.IndexProbes.Inc()
	return r.rows.Contains(t)
}

// Each iterates all tuples.
func (r *Relation) Each(fn func(types.Tuple) bool) {
	r.met.Reads.Add(int64(r.rows.Len()))
	r.rows.Each(fn)
}

// Tuples returns all tuples in deterministic order.
func (r *Relation) Tuples() []types.Tuple { return r.rows.Tuples() }

// Rows returns the live tuple set (callers must not mutate it).
func (r *Relation) Rows() *types.Set { return &r.rows }

// Lookup iterates tuples with column col equal to v using the hash
// index.
func (r *Relation) Lookup(col int, v types.Value, fn func(types.Tuple) bool) {
	if col < 0 || col >= r.arity {
		return
	}
	r.met.IndexProbes.Inc()
	if s, ok := r.index[col][v.Key()]; ok {
		r.met.Reads.Add(int64(s.Len()))
		s.Each(fn)
	}
}

// LookupCount returns the number of tuples with column col equal to v.
func (r *Relation) LookupCount(col int, v types.Value) int {
	if col < 0 || col >= r.arity {
		return 0
	}
	r.met.IndexProbes.Inc()
	if s, ok := r.index[col][v.Key()]; ok {
		return s.Len()
	}
	return 0
}

// insert adds t with no version bookkeeping — the recovery path, which
// runs before any snapshot can be pinned; reports whether it was newly
// added. Transactional writers use insertAt (mvcc.go).
func (r *Relation) insert(t types.Tuple) (bool, error) {
	if len(t) != r.arity {
		return false, fmt.Errorf("relation %q: tuple arity %d, want %d", r.name, len(t), r.arity)
	}
	r.latch.lock()
	defer r.latch.unlock()
	if !r.rows.Add(t) {
		return false, nil
	}
	r.met.Inserts.Inc()
	r.indexAdd(t)
	return true, nil
}

// remove deletes t with no version bookkeeping (recovery path); reports
// whether it was present. Transactional writers use removeAt (mvcc.go).
func (r *Relation) remove(t types.Tuple) (bool, error) {
	if len(t) != r.arity {
		return false, fmt.Errorf("relation %q: tuple arity %d, want %d", r.name, len(t), r.arity)
	}
	r.latch.lock()
	defer r.latch.unlock()
	if !r.rows.Remove(t) {
		return false, nil
	}
	r.met.Deletes.Inc()
	r.indexRemove(t)
	return true, nil
}

// indexAdd indexes t under every column. Caller holds the latch and has
// added t to rows.
func (r *Relation) indexAdd(t types.Tuple) {
	for col, v := range t {
		k := v.Key()
		s, ok := r.index[col][k]
		if !ok {
			s = types.NewSet()
			r.index[col][k] = s
		}
		s.Add(t)
	}
}

// indexRemove unindexes t from every column. Caller holds the latch and
// has removed t from rows.
func (r *Relation) indexRemove(t types.Tuple) {
	for col, v := range t {
		k := v.Key()
		if s, ok := r.index[col][k]; ok {
			s.Remove(t)
			if s.Len() == 0 {
				delete(r.index[col], k)
			}
		}
	}
}

// keyMatches returns the tuples whose key columns equal key, using the
// index on the first key column.
func (r *Relation) keyMatches(key []types.Value) []types.Tuple {
	if len(key) != len(r.keyCols) || len(key) == 0 {
		return nil
	}
	var out []types.Tuple
	r.Lookup(r.keyCols[0], key[0], func(t types.Tuple) bool {
		for i, c := range r.keyCols {
			if !t[c].Equal(key[i]) {
				return true
			}
		}
		out = append(out, t)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Store is the collection of base relations plus the physical event
// stream. It is safe for concurrent use; events fire while holding the
// store lock, so listeners must not re-enter the store.
type Store struct {
	mu        sync.RWMutex
	rels      map[string]*Relation
	listeners []Listener
	inj       *faultinject.Injector
	met       *Metrics
	// bus, when active, receives a system/capability_violation event
	// for every update rejected by a declared capability (SetBus).
	bus *obs.Bus
	// rec, when armed, gets a capability_violation anomaly trigger for
	// the same rejections (SetRecorder).
	rec *obs.Recorder
	// caps holds declared change capabilities (capability.go); relations
	// absent from the map admit both signs. Guarded by mu. capSuspend
	// counts open SuspendEnforcement scopes (rollback's inverse replay).
	caps       map[string]Capability
	capSuspend atomic.Int32

	// MVCC state (see mvcc.go): commitSeq is the sequence of the last
	// committed transaction (the in-flight writer writes at commitSeq+1),
	// pins refcounts the snapshots readers hold (guarded by pinMu, which
	// also serializes pinning against AdvanceCommit), and dirty names the
	// relations whose version sidecars await garbage collection (guarded
	// by mu).
	commitSeq atomic.Uint64
	pinMu     sync.Mutex
	pins      map[uint64]int
	dirty     map[string]struct{}
	// txnDepth counts open transaction scopes (see BeginTxnScope). A
	// write outside any scope advances the commit sequence itself, so
	// direct store use — population loops, tests — stays visible to
	// snapshot readers without a transaction layer above it.
	txnDepth atomic.Int32
}

// BeginTxnScope and EndTxnScope bracket a transaction: writes inside a
// scope become snapshot-visible only when the transaction layer calls
// AdvanceCommit at commit; writes outside any scope advance the commit
// sequence themselves, each its own atomic unit.
func (s *Store) BeginTxnScope() { s.txnDepth.Add(1) }

// EndTxnScope closes the scope opened by BeginTxnScope.
func (s *Store) EndTxnScope() { s.txnDepth.Add(-1) }

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		rels:  make(map[string]*Relation),
		pins:  make(map[uint64]int),
		dirty: make(map[string]struct{}),
		met:   &Metrics{},
	}
}

// CreateRelation creates and registers a new base relation.
func (s *Store) CreateRelation(name string, arity int, keyCols []int) (*Relation, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.rels[name]; ok {
		return nil, fmt.Errorf("relation %q already exists", name)
	}
	r, err := NewRelation(name, arity, keyCols)
	if err != nil {
		return nil, err
	}
	if s.met != nil {
		r.met = s.met
	}
	s.rels[name] = r
	return r, nil
}

// Relation looks up a relation by name.
func (s *Store) Relation(name string) (*Relation, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.rels[name]
	return r, ok
}

// RelationNames returns all relation names in sorted order.
func (s *Store) RelationNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.rels))
	for n := range s.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Subscribe registers a listener for physical update events and returns
// an unsubscribe function.
func (s *Store) Subscribe(l Listener) func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.listeners = append(s.listeners, l)
	idx := len(s.listeners) - 1
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.listeners[idx] = nil
	}
}

func (s *Store) emit(e Event) {
	for _, l := range s.listeners {
		if l != nil {
			l(e)
		}
	}
}

// SetInjector installs a fault injector on the store's update paths
// (nil disables injection).
func (s *Store) SetInjector(inj *faultinject.Injector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inj = inj
}

// Insert asserts a tuple; it reports whether the tuple was newly added
// and emits a physical + event if so.
func (s *Store) Insert(rel string, t types.Tuple) (bool, error) {
	added, err := s.insertTx(rel, t)
	if err == nil && added && s.txnDepth.Load() == 0 {
		s.AdvanceCommit([]string{rel})
	}
	return added, err
}

func (s *Store) insertTx(rel string, t types.Tuple) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.rels[rel]
	if !ok {
		return false, fmt.Errorf("relation %q does not exist", rel)
	}
	if err := s.checkCapability(rel, InsertEvent); err != nil {
		return false, err
	}
	// Fire before mutating, so an injected error leaves the store clean.
	if err := s.inj.Fire(faultinject.StoreInsert); err != nil {
		return false, err
	}
	added, err := r.insertAt(t, s.writeSeq())
	if err != nil || !added {
		return added, err
	}
	s.dirty[rel] = struct{}{}
	s.emit(Event{Relation: rel, Kind: InsertEvent, Tuple: t})
	return true, nil
}

// Delete retracts a tuple; it reports whether the tuple was present and
// emits a physical − event if so.
func (s *Store) Delete(rel string, t types.Tuple) (bool, error) {
	removed, err := s.deleteTx(rel, t)
	if err == nil && removed && s.txnDepth.Load() == 0 {
		s.AdvanceCommit([]string{rel})
	}
	return removed, err
}

func (s *Store) deleteTx(rel string, t types.Tuple) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.rels[rel]
	if !ok {
		return false, fmt.Errorf("relation %q does not exist", rel)
	}
	if err := s.checkCapability(rel, DeleteEvent); err != nil {
		return false, err
	}
	if err := s.inj.Fire(faultinject.StoreDelete); err != nil {
		return false, err
	}
	removed, err := r.removeAt(t, s.writeSeq())
	if err != nil || !removed {
		return removed, err
	}
	s.dirty[rel] = struct{}{}
	s.emit(Event{Relation: rel, Kind: DeleteEvent, Tuple: t})
	return true, nil
}

// LoadTuples bulk-inserts tuples into rel WITHOUT emitting physical
// events or firing fault points — the snapshot-restore path, which must
// not feed Δ-sets, undo logs or the write-ahead log while rebuilding
// the pre-crash state. Outside recovery, use Insert.
func (s *Store) LoadTuples(rel string, ts []types.Tuple) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.rels[rel]
	if !ok {
		return fmt.Errorf("relation %q does not exist", rel)
	}
	for _, t := range ts {
		if _, err := r.insert(t); err != nil {
			return err
		}
	}
	return nil
}

// ApplyLogged applies one logged physical event WITHOUT emitting events
// or firing fault points — the recovery reconciliation path, which
// converges the store on the logged post-commit state after replay
// (idempotent under set semantics: re-inserting a present tuple or
// deleting an absent one is a no-op). Outside recovery, use
// Insert/Delete.
func (s *Store) ApplyLogged(e Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.rels[e.Relation]
	if !ok {
		return fmt.Errorf("relation %q does not exist", e.Relation)
	}
	var err error
	if e.Kind == InsertEvent {
		_, err = r.insert(e.Tuple)
	} else {
		_, err = r.remove(e.Tuple)
	}
	return err
}

// Set performs a stored-function update: it retracts every tuple whose
// key columns equal key, then asserts key ++ value. Physical events are
// emitted in paper order (− before +). It returns the retracted tuples.
func (s *Store) Set(rel string, key []types.Value, value []types.Value) ([]types.Tuple, error) {
	old, changed, err := s.setTx(rel, key, value)
	// Advance even on a mid-Set fault: outside a transaction nothing
	// undoes the retractions already applied, so they must be visible.
	if changed && s.txnDepth.Load() == 0 {
		s.AdvanceCommit([]string{rel})
	}
	return old, err
}

func (s *Store) setTx(rel string, key []types.Value, value []types.Value) ([]types.Tuple, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.rels[rel]
	if !ok {
		return nil, false, fmt.Errorf("relation %q does not exist", rel)
	}
	if len(key) != len(r.keyCols) {
		return nil, false, fmt.Errorf("relation %q: key arity %d, want %d", rel, len(key), len(r.keyCols))
	}
	nt := make(types.Tuple, 0, len(key)+len(value))
	nt = append(nt, key...)
	nt = append(nt, value...)
	if len(nt) != r.arity {
		return nil, false, fmt.Errorf("relation %q: set arity %d, want %d", rel, len(nt), r.arity)
	}
	old := r.keyMatches(key)
	// If the new tuple is already the (only) current value, Set is a
	// no-op and emits nothing — there is no physical change.
	if len(old) == 1 && old[0].Equal(nt) {
		return nil, false, nil
	}
	// Capability enforcement happens before any mutation so a rejected
	// Set leaves the store clean: the insert bit is always needed, the
	// delete bit only when old values must be retracted.
	if err := s.checkCapability(rel, InsertEvent); err != nil {
		return nil, false, err
	}
	if len(old) > 0 {
		if err := s.checkCapability(rel, DeleteEvent); err != nil {
			return nil, false, err
		}
	}
	changed := false
	seq := s.writeSeq()
	for _, t := range old {
		// A fault here leaves earlier retractions applied (and their
		// events emitted), so the undo log can still restore them.
		if err := s.inj.Fire(faultinject.StoreDelete); err != nil {
			return nil, changed, err
		}
		if removed, _ := r.removeAt(t, seq); removed {
			s.dirty[rel] = struct{}{}
			changed = true
			s.emit(Event{Relation: rel, Kind: DeleteEvent, Tuple: t})
		}
	}
	if err := s.inj.Fire(faultinject.StoreInsert); err != nil {
		return nil, changed, err
	}
	if added, _ := r.insertAt(nt, seq); added {
		s.dirty[rel] = struct{}{}
		changed = true
		s.emit(Event{Relation: rel, Kind: InsertEvent, Tuple: nt})
	}
	return old, changed, nil
}

// TuplesReferencing returns, per relation, the tuples in which value v
// appears in any column — the foot-print that must be retracted when an
// object is deleted. Relations are keyed by name; tuple order within a
// relation is deterministic.
func (s *Store) TuplesReferencing(v types.Value) map[string][]types.Tuple {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := map[string][]types.Tuple{}
	for name, r := range s.rels {
		seen := types.NewSet()
		for col := 0; col < r.arity; col++ {
			r.Lookup(col, v, func(t types.Tuple) bool {
				seen.Add(t)
				return true
			})
		}
		if seen.Len() > 0 {
			out[name] = seen.Tuples()
		}
	}
	return out
}

// Snapshot returns every relation's tuples in deterministic order,
// keyed by relation name — a logical copy for state comparisons in
// crash-safety tests. Empty relations are included.
func (s *Store) Snapshot() map[string][]types.Tuple {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string][]types.Tuple, len(s.rels))
	for name, r := range s.rels {
		r.latch.rlock()
		out[name] = r.rows.Tuples()
		r.latch.runlock()
	}
	return out
}

// CheckInvariants verifies index↔tuple-set consistency of every
// relation: each row is indexed under every column, each index entry
// points at a live row with the matching column value, and per-column
// index cardinalities sum to the row count.
func (s *Store) CheckInvariants() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.rels))
	for n := range s.rels {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := s.rels[n].checkConsistency(); err != nil {
			return err
		}
	}
	return nil
}

func (r *Relation) checkConsistency() error {
	r.latch.rlock()
	defer r.latch.runlock()
	if err := r.checkVersions(); err != nil {
		return err
	}
	var err error
	r.rows.Each(func(t types.Tuple) bool {
		if len(t) != r.arity {
			err = fmt.Errorf("relation %q: row %s has arity %d, want %d", r.name, t, len(t), r.arity)
			return false
		}
		for col, v := range t {
			s, ok := r.index[col][v.Key()]
			if !ok || !s.Contains(t) {
				err = fmt.Errorf("relation %q: row %s missing from index on column %d", r.name, t, col)
				return false
			}
		}
		return true
	})
	if err != nil {
		return err
	}
	for col := range r.index {
		total := 0
		for key, s := range r.index[col] {
			total += s.Len()
			s.Each(func(t types.Tuple) bool {
				if !r.rows.Contains(t) {
					err = fmt.Errorf("relation %q: index on column %d holds phantom tuple %s", r.name, col, t)
					return false
				}
				if t[col].Key() != key {
					err = fmt.Errorf("relation %q: tuple %s indexed under wrong key %q on column %d", r.name, t, key, col)
					return false
				}
				return true
			})
			if err != nil {
				return err
			}
		}
		if total != r.rows.Len() {
			return fmt.Errorf("relation %q: index on column %d covers %d tuples, rows hold %d", r.name, col, total, r.rows.Len())
		}
	}
	return nil
}

// Get returns the value columns of the tuples matching key (for a stored
// function lookup), in deterministic order.
func (s *Store) Get(rel string, key []types.Value) ([][]types.Value, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.rels[rel]
	if !ok {
		return nil, fmt.Errorf("relation %q does not exist", rel)
	}
	if len(r.keyCols) == 0 && len(key) == 0 {
		var out [][]types.Value
		for _, t := range r.Tuples() {
			out = append(out, []types.Value(t))
		}
		return out, nil
	}
	var out [][]types.Value
	for _, t := range r.keyMatches(key) {
		out = append(out, []types.Value(t[len(r.keyCols):]))
	}
	return out, nil
}
