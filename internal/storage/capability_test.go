package storage

import (
	"strings"
	"testing"

	"partdiff/internal/types"
)

func capTuple(vs ...int) types.Tuple {
	t := make(types.Tuple, len(vs))
	for i, v := range vs {
		t[i] = types.Int(int64(v))
	}
	return t
}

func TestCapabilityEnforcement(t *testing.T) {
	st := NewStore()
	if _, err := st.CreateRelation("f", 2, []int{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Insert("f", capTuple(1, 10)); err != nil {
		t.Fatal(err)
	}
	if got := st.Capability("f"); got != CapAll {
		t.Fatalf("undeclared capability = %v, want CapAll", got)
	}

	if err := st.DeclareCapability("f", CapInserts); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Insert("f", capTuple(2, 20)); err != nil {
		t.Fatalf("append-only insert rejected: %v", err)
	}
	if _, err := st.Delete("f", capTuple(1, 10)); err == nil {
		t.Fatal("append-only delete admitted")
	} else if !strings.Contains(err.Error(), "append only") {
		t.Fatalf("unexpected error: %v", err)
	}
	// Set on an existing key needs the delete bit for the retraction.
	if _, err := st.Set("f", []types.Value{types.Int(1)}, []types.Value{types.Int(11)}); err == nil {
		t.Fatal("append-only set over existing key admitted")
	}
	// Set on a fresh key is a pure insert and stays admitted.
	if _, err := st.Set("f", []types.Value{types.Int(3)}, []types.Value{types.Int(30)}); err != nil {
		t.Fatalf("append-only set on fresh key rejected: %v", err)
	}
	// No-op Set (same single value) touches nothing and stays admitted
	// even when retractions are forbidden.
	if _, err := st.Set("f", []types.Value{types.Int(1)}, []types.Value{types.Int(10)}); err != nil {
		t.Fatalf("no-op set rejected: %v", err)
	}

	// Restriction to frozen is admitted; widening back is not.
	if err := st.DeclareCapability("f", CapFrozen); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Insert("f", capTuple(4, 40)); err == nil {
		t.Fatal("frozen insert admitted")
	}
	if err := st.DeclareCapability("f", CapAll); err == nil {
		t.Fatal("capability widening admitted")
	}
	if err := st.DeclareCapability("f", CapFrozen); err != nil {
		t.Fatalf("re-declaring the same capability rejected: %v", err)
	}
	if err := st.DeclareCapability("nope", CapFrozen); err == nil {
		t.Fatal("declaring capability on missing relation admitted")
	}
}

func TestCapabilityRecoveryBypass(t *testing.T) {
	st := NewStore()
	if _, err := st.CreateRelation("f", 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.DeclareCapability("f", CapFrozen); err != nil {
		t.Fatal(err)
	}
	// Recovery paths reconstruct history that may predate the
	// declaration, so they bypass enforcement.
	if err := st.LoadTuples("f", []types.Tuple{capTuple(1)}); err != nil {
		t.Fatalf("LoadTuples under frozen capability: %v", err)
	}
	if err := st.ApplyLogged(Event{Relation: "f", Kind: InsertEvent, Tuple: capTuple(2)}); err != nil {
		t.Fatalf("ApplyLogged insert under frozen capability: %v", err)
	}
	if err := st.ApplyLogged(Event{Relation: "f", Kind: DeleteEvent, Tuple: capTuple(1)}); err != nil {
		t.Fatalf("ApplyLogged delete under frozen capability: %v", err)
	}
	r, _ := st.Relation("f")
	if r.Len() != 1 {
		t.Fatalf("rows = %d, want 1", r.Len())
	}
}

func TestCapabilitySuspendEnforcement(t *testing.T) {
	st := NewStore()
	if _, err := st.CreateRelation("f", 1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Insert("f", capTuple(1)); err != nil {
		t.Fatal(err)
	}
	if err := st.DeclareCapability("f", CapInserts); err != nil {
		t.Fatal(err)
	}
	// Rollback's inverse replay runs under a suspension: the deletion
	// that undoes an admitted insertion must go through.
	st.SuspendEnforcement()
	if _, err := st.Delete("f", capTuple(1)); err != nil {
		t.Fatalf("delete under suspended enforcement: %v", err)
	}
	st.ResumeEnforcement()
	if _, err := st.Delete("f", capTuple(1)); err == nil {
		t.Fatal("enforcement did not resume")
	}
}

func TestParseCapability(t *testing.T) {
	cases := []struct {
		in  string
		cap Capability
		ok  bool
	}{
		{"readonly", CapFrozen, true},
		{"read-only", CapFrozen, true},
		{"append only", CapInserts, true},
		{"insert-only", CapInserts, true},
		{"delete only", CapDeletes, true},
		{"read-write", CapAll, true},
		{"bogus", 0, false},
	}
	for _, c := range cases {
		got, ok := ParseCapability(c.in)
		if ok != c.ok || (ok && got != c.cap) {
			t.Errorf("ParseCapability(%q) = %v, %v; want %v, %v", c.in, got, ok, c.cap, c.ok)
		}
	}
}
