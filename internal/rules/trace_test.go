package rules

import (
	"strings"
	"testing"
)

func TestDebugTrace(t *testing.T) {
	f := newFixture(t, Incremental)
	var sb strings.Builder
	f.mgr.SetDebug(&sb)
	f.set(t, "quantity", 1, 100)
	f.set(t, "threshold", 1, 60)
	f.defineLowStock(t, "low", true, 0)
	f.mgr.Activate("low")
	f.inTxn(t, func() { f.set(t, "quantity", 1, 50) })

	out := sb.String()
	for _, want := range []string{
		"check round 1",
		"changed base relations [quantity]",
		"Δ+quantity",
		"pending low:",
		"conflict resolution among [low] chose low",
		"action low(1)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	// Disabling stops output.
	f.mgr.SetDebug(nil)
	before := sb.Len()
	f.inTxn(t, func() { f.set(t, "quantity", 1, 45) })
	if sb.Len() != before {
		t.Error("trace written while disabled")
	}
}

func TestDebugTraceQuietWithoutChanges(t *testing.T) {
	f := newFixture(t, Incremental)
	var sb strings.Builder
	f.mgr.SetDebug(&sb)
	f.defineLowStock(t, "low", true, 0)
	f.mgr.Activate("low")
	f.inTxn(t, func() {})
	if sb.Len() != 0 {
		t.Errorf("empty transaction produced trace: %q", sb.String())
	}
}
