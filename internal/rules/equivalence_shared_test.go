package rules

import (
	"fmt"
	"math/rand"
	"testing"

	"partdiff/internal/objectlog"
	"partdiff/internal/storage"
	"partdiff/internal/txn"
	"partdiff/internal/types"
)

// Fuzz for BUSHY networks: conditions consume a shared intermediate
// view (§7.1 node sharing), so propagation crosses an intermediate
// wave-front node. The incremental monitor must still agree with naive
// recomputation on every script.

// sharedViewShapes are definitions for the shared view v over the base
// relations a(x,y) and b(x,y).
func sharedViewShape(r *rand.Rand) *objectlog.Def {
	v := objectlog.V
	shapes := [][]objectlog.Clause{
		// join: v(X,Z) ← a(X,Y) ∧ b(Y,Z)
		{objectlog.NewClause(objectlog.Lit("v", v("X"), v("Z")),
			objectlog.Lit("a", v("X"), v("Y")),
			objectlog.Lit("b", v("Y"), v("Z")))},
		// arithmetic: v(X,T) ← a(X,Y) ∧ T = Y + 1
		{objectlog.NewClause(objectlog.Lit("v", v("X"), v("T")),
			objectlog.Lit("a", v("X"), v("Y")),
			objectlog.Lit(objectlog.BuiltinPlus, v("Y"), objectlog.CInt(1), v("T")))},
		// union: v(X,Y) ← a(X,Y) | v(X,Y) ← b(X,Y)
		{
			objectlog.NewClause(objectlog.Lit("v", v("X"), v("Y")), objectlog.Lit("a", v("X"), v("Y"))),
			objectlog.NewClause(objectlog.Lit("v", v("X"), v("Y")), objectlog.Lit("b", v("X"), v("Y"))),
		},
		// projection-ish self join: v(X,Z) ← a(X,Y) ∧ a(Z,Y)
		{objectlog.NewClause(objectlog.Lit("v", v("X"), v("Z")),
			objectlog.Lit("a", v("X"), v("Y")),
			objectlog.Lit("a", v("Z"), v("Y")))},
	}
	return &objectlog.Def{Name: "v", Arity: 2, Clauses: shapes[r.Intn(len(shapes))]}
}

// sharedCondShape builds a condition over the shared view (plus a base
// relation for variety).
func sharedCondShape(r *rand.Rand, name string) *objectlog.Def {
	v := objectlog.V
	shapes := []func() []objectlog.Clause{
		// cnd(X) ← v(X,Y) ∧ Y > 3
		func() []objectlog.Clause {
			return []objectlog.Clause{objectlog.NewClause(
				objectlog.Lit(name, v("X")),
				objectlog.Lit("v", v("X"), v("Y")),
				objectlog.Lit(objectlog.BuiltinGT, v("Y"), objectlog.CInt(3)))}
		},
		// cnd(X) ← v(X,Y) ∧ c(Y)
		func() []objectlog.Clause {
			return []objectlog.Clause{objectlog.NewClause(
				objectlog.Lit(name, v("X")),
				objectlog.Lit("v", v("X"), v("Y")),
				objectlog.Lit("c", v("Y")))}
		},
		// negation over the shared view: cnd(X) ← c(X) ∧ ¬v(X,X)
		func() []objectlog.Clause {
			return []objectlog.Clause{objectlog.NewClause(
				objectlog.Lit(name, v("X")),
				objectlog.Lit("c", v("X")),
				objectlog.NotLit("v", v("X"), v("X")))}
		},
	}
	return &objectlog.Def{Name: name, Arity: 1, Clauses: shapes[r.Intn(len(shapes))]()}
}

func TestSharedViewMonitorEquivalence_Fuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz skipped in -short")
	}
	run := func(mode Mode, condSeed, scriptSeed int64) []string {
		st := storage.NewStore()
		st.CreateRelation("a", 2, nil)
		st.CreateRelation("b", 2, nil)
		st.CreateRelation("c", 1, nil)
		mgr := NewManager(st, mode)
		tm := txn.NewManager(st)
		tm.SetHooks(mgr.OnEvent, mgr.CheckPhase, mgr.OnEnd)

		r := rand.New(rand.NewSource(condSeed))
		if err := mgr.Program().Define(sharedViewShape(r)); err != nil {
			t.Fatal(err)
		}
		// Register v as a shared view so it becomes a network node.
		vdef, _ := mgr.Program().Def("v")
		if err := mgr.ShareView(vdef); err != nil {
			t.Fatal(err)
		}
		var fired []string
		for i := 0; i < 2; i++ {
			name := fmt.Sprintf("r%d", i)
			rule := &Rule{
				Name:    name,
				CondDef: sharedCondShape(r, "cnd_"+name),
				Strict:  true,
				Action: func(name string) Action {
					return func(inst types.Tuple) error {
						fired = append(fired, name+inst.String())
						return nil
					}
				}(name),
				Priority: i,
			}
			if err := mgr.DefineRule(rule); err != nil {
				t.Fatal(err)
			}
			if _, err := mgr.Activate(name); err != nil {
				t.Fatal(err)
			}
		}
		// Sanity: the shared node is in the network.
		if _, ok := mgr.Network().Node("v"); !ok {
			t.Fatal("shared view not in network")
		}
		sr := rand.New(rand.NewSource(scriptSeed))
		for txnNo := 0; txnNo < 10; txnNo++ {
			if err := tm.Begin(); err != nil {
				t.Fatal(err)
			}
			for op := 0; op < 1+sr.Intn(5); op++ {
				x, y := int64(sr.Intn(6)), int64(sr.Intn(6))
				var rel string
				var tp types.Tuple
				switch sr.Intn(3) {
				case 0:
					rel, tp = "a", types.Tuple{types.Int(x), types.Int(y)}
				case 1:
					rel, tp = "b", types.Tuple{types.Int(x), types.Int(y)}
				default:
					rel, tp = "c", types.Tuple{types.Int(x)}
				}
				if sr.Intn(2) == 0 {
					st.Insert(rel, tp)
				} else {
					st.Delete(rel, tp)
				}
			}
			if err := tm.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		return fired
	}
	for condSeed := int64(0); condSeed < 10; condSeed++ {
		for scriptSeed := int64(50); scriptSeed < 55; scriptSeed++ {
			inc := fmt.Sprint(run(Incremental, condSeed, scriptSeed))
			nai := fmt.Sprint(run(Naive, condSeed, scriptSeed))
			if inc != nai {
				t.Fatalf("cond=%d script=%d:\nincremental %s\nnaive       %s",
					condSeed, scriptSeed, inc, nai)
			}
		}
	}
}

// TestCustomConflictResolver: the resolver is pluggable; a reversed
// resolver flips execution order between two triggered rules.
func TestCustomConflictResolver(t *testing.T) {
	build := func(resolver ConflictResolver) []string {
		st := storage.NewStore()
		st.CreateRelation("q", 1, nil)
		mgr := NewManager(st, Incremental)
		if resolver != nil {
			mgr.Resolve = resolver
		}
		tm := txn.NewManager(st)
		tm.SetHooks(mgr.OnEvent, mgr.CheckPhase, mgr.OnEnd)
		var order []string
		for _, name := range []string{"first", "second"} {
			name := name
			mgr.DefineRule(&Rule{
				Name: name,
				CondDef: &objectlog.Def{Name: "cnd_" + name, Arity: 1, Clauses: []objectlog.Clause{
					objectlog.NewClause(objectlog.Lit("cnd_"+name, objectlog.V("X")),
						objectlog.Lit("q", objectlog.V("X"))),
				}},
				Strict: true,
				Action: func(types.Tuple) error { order = append(order, name); return nil },
			})
			mgr.Activate(name)
		}
		tm.Begin()
		st.Insert("q", types.Tuple{types.Int(1)})
		tm.Commit()
		return order
	}
	def := build(nil)
	if len(def) != 2 || def[0] != "first" {
		t.Errorf("default resolver order: %v", def)
	}
	rev := build(func(cands []*Activation) *Activation {
		best := cands[0]
		for _, c := range cands[1:] {
			if c.Key > best.Key {
				best = c
			}
		}
		return best
	})
	if len(rev) != 2 || rev[0] != "second" {
		t.Errorf("reversed resolver order: %v", rev)
	}
}
