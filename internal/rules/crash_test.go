package rules

import (
	"context"
	"strings"
	"testing"
	"time"

	"partdiff/internal/faultinject"
	"partdiff/internal/types"
)

// A panicking rule action is contained: Commit reports an error, the
// transaction rolls back, and the monitor is clean for the next
// transaction.
func TestActionPanicRollsBack(t *testing.T) {
	f := newFixture(t, Incremental)
	err := f.mgr.DefineRule(&Rule{
		Name:    "boom",
		CondDef: lowStockDef("cond_boom", false),
		Action:  func(inst types.Tuple) error { panic("action exploded") },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.mgr.Activate("boom"); err != nil {
		t.Fatal(err)
	}
	f.txns.Begin()
	f.store.Insert("quantity", tup(1, 5))
	f.store.Insert("threshold", tup(1, 10))
	cErr := f.txns.Commit()
	if cErr == nil {
		t.Fatal("commit should fail")
	}
	if !strings.Contains(cErr.Error(), "panicked") {
		t.Errorf("panic not reported: %v", cErr)
	}
	for _, rel := range []string{"quantity", "threshold"} {
		r, _ := f.store.Relation(rel)
		if r.Len() != 0 {
			t.Errorf("%s not rolled back: %s", rel, r.Rows())
		}
	}
	if err := f.mgr.CheckInvariants(true); err != nil {
		t.Errorf("monitor invariants after rollback: %v", err)
	}
}

// Faults injected at each monitor-side point (node propagation,
// differential execution, action dispatch) all roll the transaction
// back cleanly.
func TestMonitorFaultPointsRollBack(t *testing.T) {
	for _, point := range []faultinject.Point{
		faultinject.PropagateNode, faultinject.Differential, faultinject.RuleAction,
	} {
		for _, kind := range []faultinject.Kind{faultinject.Error, faultinject.Panic} {
			f := newFixture(t, Incremental)
			inj := faultinject.New()
			f.store.SetInjector(inj)
			f.mgr.SetInjector(inj)
			f.defineLowStock(t, "watch", true, 0)
			if _, err := f.mgr.Activate("watch"); err != nil {
				t.Fatal(err)
			}
			f.txns.Begin()
			f.store.Insert("quantity", tup(1, 5))
			f.store.Insert("threshold", tup(1, 10))
			inj.Arm(point, 0, kind)
			if err := f.txns.Commit(); err == nil {
				t.Fatalf("%s/%v: commit should fail", point, kind)
			}
			for _, rel := range []string{"quantity", "threshold"} {
				r, _ := f.store.Relation(rel)
				if r.Len() != 0 {
					t.Errorf("%s/%v: %s not rolled back", point, kind, rel)
				}
			}
			if err := f.mgr.CheckInvariants(true); err != nil {
				t.Errorf("%s/%v: invariants: %v", point, kind, err)
			}
			if f.txns.Corrupt() != nil {
				t.Errorf("%s/%v: clean rollback must not poison", point, kind)
			}
		}
	}
}

// cascadeFixture builds a rule whose action keeps incrementing
// quantity, so every check round produces a fresh change: without a
// bound the check phase never terminates.
func cascadeFixture(t *testing.T) *fixture {
	t.Helper()
	f := newFixture(t, Incremental)
	err := f.mgr.DefineRule(&Rule{
		Name:    "runaway",
		CondDef: lowStockDef("cond_runaway", false),
		Action: func(inst types.Tuple) error {
			q, err := f.store.Get("quantity", []types.Value{inst[0]})
			if err != nil || len(q) == 0 {
				return err
			}
			next := q[0][0].I + 1
			_, err = f.store.Set("quantity", []types.Value{inst[0]}, []types.Value{types.Int(next)})
			return err
		},
		// Nervous semantics: re-derivations keep triggering.
		Strict: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.mgr.Activate("runaway"); err != nil {
		t.Fatal(err)
	}
	return f
}

// A non-terminating cascade is stopped by the wall-clock budget and
// aborts through the normal rollback path.
func TestCheckBudgetAbortsCascade(t *testing.T) {
	f := cascadeFixture(t)
	f.mgr.MaxRounds = 1 << 30 // out of the way: budget must trip first
	f.mgr.CheckBudget = time.Millisecond
	f.txns.Begin()
	f.store.Insert("quantity", tup(1, 0))
	f.store.Insert("threshold", tup(1, 1<<40))
	err := f.txns.Commit()
	if err == nil {
		t.Fatal("budget should abort the cascade")
	}
	if !strings.Contains(err.Error(), "budget") {
		t.Errorf("error should mention the budget: %v", err)
	}
	for _, rel := range []string{"quantity", "threshold"} {
		r, _ := f.store.Relation(rel)
		if r.Len() != 0 {
			t.Errorf("%s not rolled back: %s", rel, r.Rows())
		}
	}
	if err := f.mgr.CheckInvariants(true); err != nil {
		t.Errorf("invariants after budget abort: %v", err)
	}
}

// A canceled context aborts the check phase the same way.
func TestCheckContextAbortsCascade(t *testing.T) {
	f := cascadeFixture(t)
	f.mgr.MaxRounds = 1 << 30
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f.mgr.CheckContext = ctx
	f.txns.Begin()
	f.store.Insert("quantity", tup(1, 0))
	f.store.Insert("threshold", tup(1, 1<<40))
	err := f.txns.Commit()
	if err == nil {
		t.Fatal("canceled context should abort the check phase")
	}
	if !strings.Contains(err.Error(), "canceled") {
		t.Errorf("error should mention cancellation: %v", err)
	}
	r, _ := f.store.Relation("quantity")
	if r.Len() != 0 {
		t.Errorf("quantity not rolled back: %s", r.Rows())
	}
}
