package rules

import (
	"testing"

	"partdiff/internal/objectlog"
	"partdiff/internal/obs"
	"partdiff/internal/types"
)

// collect attaches a buffering sink to the manager's tracer and returns
// it together with the detach func.
func collect(f *fixture) (*obs.CollectSink, func()) {
	sink := &obs.CollectSink{}
	detach := f.mgr.Observability().Tracer.Attach(sink)
	return sink, detach
}

// findSpan returns the first propnet span whose attributes match the
// given view/influent/trigger/effect combination ("" view matches any).
func findSpan(spans []obs.CollectedEvent, view, influent, trigger, effect string) (obs.CollectedEvent, bool) {
	for _, s := range spans {
		if s.Cat == "propnet" &&
			(view == "" || s.Attr("view") == view) && s.Attr("influent") == influent &&
			s.Attr("trigger") == trigger && s.Attr("effect") == effect {
			return s, true
		}
	}
	return obs.CollectedEvent{}, false
}

// TestStructuredTraceDNFCondition: a disjunctive (two-clause) condition
// has partial differentials per influent per clause; a transaction
// touching both influents must surface positive AND negative
// differential spans for each, attributed to the condition's node.
func TestStructuredTraceDNFCondition(t *testing.T) {
	f := newFixture(t, Incremental)
	f.set(t, "quantity", 1, 100)
	f.set(t, "threshold", 1, 60)

	// dnf(I) ← quantity(I,Q) ∧ Q < 10   ∨   threshold(I,T) ∧ T > 1000
	cond := &objectlog.Def{Name: "dnf_cond", Arity: 1, Clauses: []objectlog.Clause{
		{Head: objectlog.Lit("dnf_cond", objectlog.V("I")), Body: []objectlog.Literal{
			objectlog.Lit("quantity", objectlog.V("I"), objectlog.V("Q")),
			objectlog.Lit(objectlog.BuiltinLT, objectlog.V("Q"), objectlog.C(types.Int(10))),
		}},
		{Head: objectlog.Lit("dnf_cond", objectlog.V("I")), Body: []objectlog.Literal{
			objectlog.Lit("threshold", objectlog.V("I"), objectlog.V("T")),
			objectlog.Lit(objectlog.BuiltinLT, objectlog.C(types.Int(1000)), objectlog.V("T")),
		}},
	}}
	err := f.mgr.DefineRule(&Rule{Name: "dnf", CondDef: cond, Action: f.recorder("dnf")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.mgr.Activate("dnf"); err != nil {
		t.Fatal(err)
	}

	sink, detach := collect(f)
	defer detach()
	// Overwriting stored values produces both Δ+ and Δ− base changes
	// (Set is delete-then-insert), in both influents; neither clause
	// becomes true, so this measures pure monitoring.
	f.inTxn(t, func() {
		f.set(t, "quantity", 1, 90)
		f.set(t, "threshold", 1, 70)
	})

	spans := sink.Spans()
	// The activation's condition node (cnd_dnf#1, a rewrite of the
	// definition) must be the view every differential is attributed to.
	view := ""
	for _, want := range []struct{ influent, trigger, effect string }{
		{"quantity", "Δ+", "Δ+"},
		{"quantity", "Δ-", "Δ-"},
		{"threshold", "Δ+", "Δ+"},
		{"threshold", "Δ-", "Δ-"},
	} {
		sp, ok := findSpan(spans, view, want.influent, want.trigger, want.effect)
		if !ok {
			t.Errorf("no differential span for influent=%s trigger=%s effect=%s\nspans: %+v",
				want.influent, want.trigger, want.effect, spans)
			continue
		}
		if view == "" {
			view = sp.Attr("view")
			if view == "" {
				t.Fatalf("differential span has no view attribute: %+v", sp)
			}
		}
	}
	// A propagation round wraps the differentials.
	var found bool
	for _, s := range spans {
		if s.Cat == "propnet" && s.Name == "propagate" {
			found = true
		}
	}
	if !found {
		t.Error("no propagate span recorded")
	}
}

// TestStructuredTraceNegatedCondition: with a negated influent the
// trigger and effect signs are opposed — deleting a blocked(I) tuple
// (Δ−blocked) can make the condition true (Δ+), and inserting one can
// make it false (Δ−). The structured trace must attribute both
// cross-sign differentials to the condition node.
func TestStructuredTraceNegatedCondition(t *testing.T) {
	f := newFixture(t, Incremental)
	if _, err := f.store.CreateRelation("blocked", 1, []int{0}); err != nil {
		t.Fatal(err)
	}
	f.set(t, "quantity", 1, 100)
	if _, err := f.store.Insert("blocked", tup(1)); err != nil {
		t.Fatal(err)
	}

	// neg(I) ← quantity(I,Q) ∧ ¬blocked(I)
	cond := &objectlog.Def{Name: "neg_cond", Arity: 1, Clauses: []objectlog.Clause{
		{Head: objectlog.Lit("neg_cond", objectlog.V("I")), Body: []objectlog.Literal{
			objectlog.Lit("quantity", objectlog.V("I"), objectlog.V("Q")),
			objectlog.NotLit("blocked", objectlog.V("I")),
		}},
	}}
	err := f.mgr.DefineRule(&Rule{Name: "neg", CondDef: cond, Action: f.recorder("neg")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.mgr.Activate("neg"); err != nil {
		t.Fatal(err)
	}

	sink, detach := collect(f)
	defer detach()
	f.inTxn(t, func() {
		if _, err := f.store.Delete("blocked", tup(1)); err != nil {
			t.Fatal(err)
		}
	})
	f.inTxn(t, func() {
		if _, err := f.store.Insert("blocked", tup(1)); err != nil {
			t.Fatal(err)
		}
	})
	if got := len(f.fired["neg"]); got != 1 {
		t.Fatalf("rule fired %d times, want 1 (unblocking made it true)", got)
	}

	spans := sink.Spans()
	// Deletion of the negated influent is a positive trigger (Δ−blocked
	// → Δ+cnd); insertion a negative one. Both differentials must carry
	// the same condition-node attribution.
	plus, ok := findSpan(spans, "", "blocked", "Δ-", "Δ+")
	if !ok {
		t.Fatalf("no Δ+cnd/Δ−blocked span; spans: %+v", spans)
	}
	if plus.Attr("produced") != "1" {
		t.Errorf("Δ+cnd/Δ−blocked produced=%q, want 1", plus.Attr("produced"))
	}
	minus, ok := findSpan(spans, "", "blocked", "Δ+", "Δ-")
	if !ok {
		t.Fatalf("no Δ−cnd/Δ+blocked span; spans: %+v", spans)
	}
	if plus.Attr("view") == "" || plus.Attr("view") != minus.Attr("view") {
		t.Errorf("cross-sign differentials attributed to different nodes: %q vs %q",
			plus.Attr("view"), minus.Attr("view"))
	}
}
