package rules

import (
	"strings"
	"testing"

	"partdiff/internal/storage"
	"partdiff/internal/types"
)

// TestAnalysisCacheSingleRunPerDef asserts the per-definition analysis
// cache: analyzing the same (unchanged) rule condition repeatedly —
// e.g. the session's eager create-rule pass followed by DefineRule's
// own validation, or repeated \lint sweeps — runs the analyzer once.
func TestAnalysisCacheSingleRunPerDef(t *testing.T) {
	f := newFixture(t, Incremental)
	def := lowStockDef("cond_watch", false)

	rep1 := f.mgr.AnalyzeRuleDef(def, 0)
	if err := rep1.Err(); err != nil {
		t.Fatal(err)
	}
	if got := f.mgr.AnalysisRuns(); got != 1 {
		t.Fatalf("AnalysisRuns after first analysis = %d, want 1", got)
	}
	// DefineRule re-validates the identical definition: cache hit.
	if err := f.mgr.DefineRule(&Rule{Name: "watch", CondDef: def, Action: f.recorder("watch")}); err != nil {
		t.Fatal(err)
	}
	if got := f.mgr.AnalysisRuns(); got != 1 {
		t.Fatalf("AnalysisRuns after DefineRule = %d, want 1 (cache miss on unchanged def)", got)
	}
	// A structurally changed definition under the same name re-runs.
	changed := lowStockDef("cond_watch", true)
	f.mgr.AnalyzeRuleDef(changed, 1)
	if got := f.mgr.AnalysisRuns(); got != 2 {
		t.Fatalf("AnalysisRuns after changed def = %d, want 2", got)
	}
	// Invalidation drops the memo: the next analysis runs again.
	f.mgr.InvalidateAnalysis()
	f.mgr.AnalyzeRuleDef(changed, 1)
	if got := f.mgr.AnalysisRuns(); got != 3 {
		t.Fatalf("AnalysisRuns after invalidation = %d, want 3", got)
	}
}

// TestManagerStaticPruning declares threshold read-only and checks the
// rebuilt network prunes its differentials while the rule still fires
// on quantity changes.
func TestManagerStaticPruning(t *testing.T) {
	f := newFixture(t, Incremental)
	f.set(t, "quantity", 1, 10)
	f.set(t, "threshold", 1, 5)
	if err := f.mgr.DeclareCapability("threshold", storage.CapFrozen); err != nil {
		t.Fatal(err)
	}
	f.defineLowStock(t, "low", true, 0)
	if _, err := f.mgr.Activate("low"); err != nil {
		t.Fatal(err)
	}
	net := f.mgr.Network()
	if net.PrunedCount() == 0 {
		t.Fatalf("frozen threshold pruned nothing (scheduled %d of %d)",
			net.ScheduledDiffs(), net.CompiledDiffs())
	}
	for _, p := range net.PrunedDiffs() {
		if p.Diff.Influent != "threshold" {
			t.Errorf("pruned %s, expected only threshold-triggered differentials", p.Diff.Name())
		}
	}
	f.inTxn(t, func() { f.set(t, "quantity", 1, 3) })
	if len(f.fired["low"]) != 1 {
		t.Fatalf("rule fired %d times with pruning on, want 1", len(f.fired["low"]))
	}
	// The profile report separates the statically pruned differentials.
	var sb strings.Builder
	if err := f.mgr.ProfileReport(&sb, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "statically pruned") {
		t.Fatalf("profile report misses the statically-pruned section:\n%s", sb.String())
	}

	// Enforcement: mutating the frozen relation is rejected.
	if _, err := f.store.Set("threshold", []types.Value{types.Int(1)}, []types.Value{types.Int(9)}); err == nil {
		t.Fatal("mutation of frozen relation admitted")
	}
}

// TestManagerStaticPruningOptOut checks the A/B switch: with pruning
// off the full differential set schedules and behavior is unchanged.
func TestManagerStaticPruningOptOut(t *testing.T) {
	f := newFixture(t, Incremental)
	f.set(t, "quantity", 1, 10)
	f.set(t, "threshold", 1, 5)
	if err := f.mgr.DeclareCapability("threshold", storage.CapFrozen); err != nil {
		t.Fatal(err)
	}
	f.mgr.SetStaticPruning(false)
	f.defineLowStock(t, "low", true, 0)
	if _, err := f.mgr.Activate("low"); err != nil {
		t.Fatal(err)
	}
	net := f.mgr.Network()
	if net.PrunedCount() != 0 || net.ScheduledDiffs() != net.CompiledDiffs() {
		t.Fatalf("pruning off but scheduled %d of %d", net.ScheduledDiffs(), net.CompiledDiffs())
	}
	f.inTxn(t, func() { f.set(t, "quantity", 1, 3) })
	if len(f.fired["low"]) != 1 {
		t.Fatalf("rule fired %d times with pruning off, want 1", len(f.fired["low"]))
	}
}
