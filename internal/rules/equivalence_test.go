package rules

import (
	"fmt"
	"math/rand"
	"testing"

	"partdiff/internal/objectlog"
	"partdiff/internal/storage"
	"partdiff/internal/txn"
	"partdiff/internal/types"
)

// This file fuzzes the central correctness claim of the reproduction:
// for ANY sequence of transactions, the incremental monitor (partial
// differencing + propagation) triggers exactly the same rule instances,
// in the same order, as the naive monitor (full recomputation + diff
// against a materialized truth set). The hybrid monitor must agree too.

// fuzzDB is one monitored database under a given mode.
type fuzzDB struct {
	store *storage.Store
	mgr   *Manager
	txns  *txn.Manager
	fired []string
}

// fuzzCondition builds a randomized condition definition over the base
// relations a(x,y), b(x,y), c(x). Shapes exercise joins, arithmetic,
// comparisons, negation and disjunction.
func fuzzCondition(r *rand.Rand, name string) *objectlog.Def {
	v := objectlog.V
	shapes := []func() []objectlog.Clause{
		// join with comparison: cnd(X) ← a(X,Y) ∧ b(Y,Z) ∧ X < Z
		func() []objectlog.Clause {
			return []objectlog.Clause{objectlog.NewClause(
				objectlog.Lit(name, v("X")),
				objectlog.Lit("a", v("X"), v("Y")),
				objectlog.Lit("b", v("Y"), v("Z")),
				objectlog.Lit(objectlog.BuiltinLT, v("X"), v("Z")))}
		},
		// negation: cnd(X) ← a(X,Y) ∧ ¬c(Y)
		func() []objectlog.Clause {
			return []objectlog.Clause{objectlog.NewClause(
				objectlog.Lit(name, v("X")),
				objectlog.Lit("a", v("X"), v("Y")),
				objectlog.NotLit("c", v("Y")))}
		},
		// arithmetic: cnd(X) ← a(X,Y) ∧ T = Y * 2 ∧ b(X,T)
		func() []objectlog.Clause {
			return []objectlog.Clause{objectlog.NewClause(
				objectlog.Lit(name, v("X")),
				objectlog.Lit("a", v("X"), v("Y")),
				objectlog.Lit(objectlog.BuiltinTimes, v("Y"), objectlog.CInt(2), v("T")),
				objectlog.Lit("b", v("X"), v("T")))}
		},
		// disjunction: cnd(X) ← a(X,Y) ∧ Y > 5  |  cnd(X) ← c(X)
		func() []objectlog.Clause {
			return []objectlog.Clause{
				objectlog.NewClause(
					objectlog.Lit(name, v("X")),
					objectlog.Lit("a", v("X"), v("Y")),
					objectlog.Lit(objectlog.BuiltinGT, v("Y"), objectlog.CInt(5))),
				objectlog.NewClause(
					objectlog.Lit(name, v("X")),
					objectlog.Lit("c", v("X"))),
			}
		},
		// self-join: cnd(X) ← a(X,Y) ∧ a(Y,Z)
		func() []objectlog.Clause {
			return []objectlog.Clause{objectlog.NewClause(
				objectlog.Lit(name, v("X")),
				objectlog.Lit("a", v("X"), v("Y")),
				objectlog.Lit("a", v("Y"), v("Z")))}
		},
		// projection-style: cnd(X) ← b(X,Y)  (spurious-deletion hazard)
		func() []objectlog.Clause {
			return []objectlog.Clause{objectlog.NewClause(
				objectlog.Lit(name, v("X")),
				objectlog.Lit("b", v("X"), v("Y")))}
		},
	}
	return &objectlog.Def{Name: name, Arity: 1,
		Clauses: shapes[r.Intn(len(shapes))]()}
}

func newFuzzDB(t *testing.T, mode Mode, strict bool, condSeed int64) *fuzzDB {
	t.Helper()
	st := storage.NewStore()
	st.CreateRelation("a", 2, nil)
	st.CreateRelation("b", 2, nil)
	st.CreateRelation("c", 1, nil)
	f := &fuzzDB{store: st, mgr: NewManager(st, mode)}
	f.txns = txn.NewManager(st)
	f.txns.SetHooks(f.mgr.OnEvent, f.mgr.CheckPhase, f.mgr.OnEnd)

	r := rand.New(rand.NewSource(condSeed))
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("r%d", i)
		rule := &Rule{
			Name:    name,
			CondDef: fuzzCondition(r, "cnd_"+name),
			Strict:  strict,
			Action: func(name string) Action {
				return func(inst types.Tuple) error {
					f.fired = append(f.fired, name+inst.String())
					return nil
				}
			}(name),
			Priority: i,
		}
		if err := f.mgr.DefineRule(rule); err != nil {
			t.Fatal(err)
		}
		if _, err := f.mgr.Activate(name); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

// playScript drives a random update script, identical across monitors.
func (f *fuzzDB) playScript(t *testing.T, seed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	for txnNo := 0; txnNo < 12; txnNo++ {
		if err := f.txns.Begin(); err != nil {
			t.Fatal(err)
		}
		nOps := 1 + r.Intn(6)
		for op := 0; op < nOps; op++ {
			x, y := int64(r.Intn(7)), int64(r.Intn(7))
			var tp types.Tuple
			var rel string
			switch r.Intn(3) {
			case 0:
				rel, tp = "a", types.Tuple{types.Int(x), types.Int(y)}
			case 1:
				rel, tp = "b", types.Tuple{types.Int(x), types.Int(y)}
			default:
				rel, tp = "c", types.Tuple{types.Int(x)}
			}
			if r.Intn(2) == 0 {
				f.store.Insert(rel, tp)
			} else {
				f.store.Delete(rel, tp)
			}
		}
		if r.Intn(8) == 0 {
			if err := f.txns.Rollback(); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := f.txns.Commit(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMonitorEquivalence_Fuzz: incremental, naive and hybrid monitors
// must fire identical instance sequences on identical scripts, for many
// random conditions and scripts, under both strict and nervous-free
// (strict only — nervous may legitimately over-fire incrementally)
// semantics.
func TestMonitorEquivalence_Fuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz skipped in -short")
	}
	for condSeed := int64(0); condSeed < 12; condSeed++ {
		for scriptSeed := int64(100); scriptSeed < 106; scriptSeed++ {
			runs := map[Mode][]string{}
			for _, mode := range []Mode{Incremental, Naive, Hybrid} {
				f := newFuzzDB(t, mode, true, condSeed)
				f.playScript(t, scriptSeed)
				runs[mode] = f.fired
			}
			inc, nai, hyb := fmt.Sprint(runs[Incremental]), fmt.Sprint(runs[Naive]), fmt.Sprint(runs[Hybrid])
			if inc != nai {
				t.Fatalf("cond=%d script=%d:\nincremental fired %s\nnaive fired       %s",
					condSeed, scriptSeed, inc, nai)
			}
			if hyb != nai {
				t.Fatalf("cond=%d script=%d:\nhybrid fired %s\nnaive fired  %s",
					condSeed, scriptSeed, hyb, nai)
			}
		}
	}
}

// TestMonitorEquivalence_FinalStateAgrees additionally cross-checks
// that after every script the *condition extents* computed by each
// monitor's evaluator agree (the monitors share no state).
func TestMonitorEquivalence_FinalStateAgrees(t *testing.T) {
	for condSeed := int64(20); condSeed < 26; condSeed++ {
		var extents []string
		for _, mode := range []Mode{Incremental, Naive} {
			f := newFuzzDB(t, mode, true, condSeed)
			f.playScript(t, condSeed*7+1)
			var s string
			for _, a := range sortedActivations(f.mgr.activations) {
				ext, err := f.mgr.Network().Evaluator().EvalPred(a.CondName, false)
				if err != nil {
					t.Fatal(err)
				}
				s += a.Rule.Name + "=" + ext.String() + ";"
			}
			extents = append(extents, s)
		}
		if extents[0] != extents[1] {
			t.Errorf("cond=%d final extents differ:\n%s\n%s", condSeed, extents[0], extents[1])
		}
	}
}
