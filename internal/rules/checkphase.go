package rules

import (
	"fmt"
	"time"

	"partdiff/internal/delta"
	"partdiff/internal/faultinject"
	"partdiff/internal/objectlog"
	"partdiff/internal/obs"
	"partdiff/internal/propnet"
	"partdiff/internal/types"
)

// CheckPhase runs the deferred rule processing at commit time:
//
//	loop:
//	  1. if base relations changed, derive each activated condition's
//	     net Δ (incrementally, naively, or hybrid) and fold it into the
//	     activation's pending trigger set with ∪Δ;
//	  2. choose ONE triggered rule through conflict resolution;
//	  3. execute its action set-oriented, once per net-true instance —
//	     action updates accumulate new base Δs;
//	  4. repeat until no rule is triggered and no changes are pending.
//
// Change propagation is performed only when changes affecting activated
// rules have occurred, so transactions that touch no influent pay
// nothing.
//
// CheckPhase is crash-safe: a panic anywhere inside it (a foreign
// procedure, an evaluator bug, an injected fault) is recovered and
// converted to an error, so it flows through the transaction manager's
// normal rollback path instead of unwinding through Commit with the
// transaction half-finished.
func (m *Manager) CheckPhase() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("check phase panicked: %v", r)
		}
	}()
	return m.checkPhase()
}

// checkDeadline returns the absolute wall-clock deadline of the check
// phase starting now, or the zero time when unbudgeted.
func (m *Manager) checkDeadline() time.Time {
	if m.CheckBudget <= 0 {
		return time.Time{}
	}
	return time.Now().Add(m.CheckBudget)
}

// overBudget reports whether the check phase has exhausted its
// wall-clock budget or its context.
func (m *Manager) overBudget(deadline time.Time) error {
	if !deadline.IsZero() && time.Now().After(deadline) {
		err := fmt.Errorf("check phase exceeded budget %v (non-terminating cascade?)", m.CheckBudget)
		m.obs.Flight.Trigger(obs.TrigCheckBudget, err.Error())
		return err
	}
	if m.CheckContext != nil {
		if err := m.CheckContext.Err(); err != nil {
			return fmt.Errorf("check phase canceled: %w", err)
		}
	}
	return nil
}

func (m *Manager) checkPhase() error {
	if len(m.activations) == 0 {
		return nil
	}
	if err := m.ensureNet(); err != nil {
		return err
	}
	deadline := m.checkDeadline()
	m.explanations = m.explanations[:0]
	for round := 1; ; round++ {
		if round > m.MaxRounds {
			err := fmt.Errorf("rule cascade exceeded %d rounds (non-terminating rule set?)", m.MaxRounds)
			m.obs.Flight.Trigger(obs.TrigCheckBudget, err.Error())
			return err
		}
		if err := m.overBudget(deadline); err != nil {
			return err
		}
		if m.net.HasChanges() {
			m.met.CheckRounds.Inc()
			rsp := m.obs.Tracer.Begin("rules", "check_round", obs.Int("round", round))
			if m.tracing() {
				m.debugf("check round %d: changed base relations %v", round, m.net.ChangedBase())
			}
			if err := m.deriveTriggers(round); err != nil {
				rsp.End(obs.Str("error", err.Error()))
				return err
			}
			if m.tracing() {
				for _, te := range m.net.Trace() {
					m.debugf("  %s produced %d tuple(s)", te.Differential, te.Produced)
				}
				for _, a := range sortedActivations(m.activations) {
					if !a.trigger.IsEmpty() {
						m.debugf("  pending %s: %s", a.Key, a.trigger)
					}
				}
			}
			m.net.ClearBase()
			rsp.End()
		}
		// Conflict resolution: choose one triggered rule.
		var cands []*Activation
		for _, a := range sortedActivations(m.activations) {
			if a.trigger.Plus().Len() > 0 {
				cands = append(cands, a)
			}
		}
		if len(cands) == 0 {
			if m.net.HasChanges() {
				continue // action updates arrived while executing; propagate them
			}
			return nil
		}
		chosen := m.Resolve(cands)
		instances := chosen.trigger.Plus().Tuples()
		chosen.trigger.Clear()
		m.met.Triggered.Add(int64(len(instances)))
		m.met.RuleTriggered.With(chosen.Rule.Name).Add(int64(len(instances)))
		m.obs.Tracer.Instant("rules", "triggered",
			obs.Str("rule", chosen.Rule.Name),
			obs.Str("activation", chosen.Key),
			obs.Int("round", round),
			obs.Int("instances", len(instances)))
		if m.obs.Bus.Active() {
			m.stageFiring(chosen, round, instances)
		}
		if m.tracing() {
			names := make([]string, len(cands))
			for i, c := range cands {
				names[i] = c.Key
			}
			m.debugf("round %d: conflict resolution among %v chose %s; executing %d instance(s)",
				round, names, chosen.Key, len(instances))
		}
		// Set-oriented action execution over the net changes.
		for _, inst := range instances {
			m.debugf("  action %s%s", chosen.Rule.Name, inst)
			if err := m.overBudget(deadline); err != nil {
				return err
			}
			if err := m.runAction(chosen.Rule, inst); err != nil {
				return err
			}
			m.met.Actions.Inc()
		}
	}
}

// maxEventInstances bounds the condition bindings carried on one
// firing event: a set-oriented firing over a huge extent must not
// inflate the bus (the count survives in the activation's metrics).
const maxEventInstances = 64

// stageFiring stages one rule-firing event on the bus: rule +
// activation, check round, the condition bindings it fires for, and
// the triggering differentials recorded for the activation so far in
// this check phase. Staged events publish only after the commit point;
// a rollback discards them.
func (m *Manager) stageFiring(a *Activation, round int, instances []types.Tuple) {
	ev := obs.Event{
		Type:       obs.EventRuleFiring,
		Rule:       a.Rule.Name,
		Activation: a.Key,
		Round:      round,
	}
	for i, inst := range instances {
		if i == maxEventInstances {
			ev.Detail = fmt.Sprintf("instances truncated to %d of %d", maxEventInstances, len(instances))
			break
		}
		ev.Instances = append(ev.Instances, inst.String())
	}
	for _, x := range m.explanations {
		if x.Activation == a.Key {
			for _, te := range x.Entries {
				ev.Deltas = append(ev.Deltas, obs.DeltaEntry{Relation: te.Differential, Plus: te.Produced})
			}
		}
	}
	m.obs.Bus.Stage(ev)
}

// runAction dispatches one action instance with panic containment: a
// panicking foreign procedure becomes an error that rolls the
// transaction back, it never unwinds through the check phase.
func (m *Manager) runAction(r *Rule, inst types.Tuple) (err error) {
	var sp *obs.Span
	if m.tracing() {
		sp = m.obs.Tracer.Begin("rules", "action "+r.Name, obs.Str("instance", inst.String()))
	}
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("rule %s action on %s panicked: %v", r.Name, inst, rec)
		}
		sp.End()
	}()
	if err := m.inj.Fire(faultinject.RuleAction); err != nil {
		return fmt.Errorf("rule %s action on %s: %w", r.Name, inst, err)
	}
	if err := r.Action(inst); err != nil {
		return fmt.Errorf("rule %s action on %s: %w", r.Name, inst, err)
	}
	return nil
}

// deriveTriggers computes each activated condition's Δ for the current
// window of base changes and folds it into the pending trigger sets.
func (m *Manager) deriveTriggers(round int) error {
	switch m.mode {
	case Incremental:
		return m.deriveIncremental(round, nil)
	case Naive:
		return m.deriveNaive()
	default:
		return m.deriveHybrid(round)
	}
}

// deriveIncremental propagates through the network. If only is non-nil,
// trigger folding is restricted to those activations (hybrid mode); the
// propagation itself is always global (shared nodes serve everyone).
func (m *Manager) deriveIncremental(round int, only map[string]bool) error {
	changed := map[string]bool{}
	for _, pred := range m.net.ChangedBase() {
		changed[pred] = true
	}
	deltas, err := m.net.Propagate()
	if err != nil {
		return err
	}
	m.met.Propagations.Inc()
	m.met.Differentials.Add(int64(m.net.Executed()))
	trace := m.net.Trace()
	for _, a := range sortedActivations(m.activations) {
		if only != nil && !only[a.Key] {
			continue
		}
		d := deltas[a.CondName]
		if d.IsEmpty() {
			continue
		}
		if !a.Rule.eventMatches(changed) {
			// ECA rule: no matching event this round — the condition is
			// not tested, its changes are dropped.
			continue
		}
		if a.Rule.Strict {
			if err := m.strictFilter(a, d); err != nil {
				return err
			}
		}
		if d.IsEmpty() {
			continue
		}
		m.recordExplanation(a, round, d, trace)
		a.trigger.UnionInto(d)
	}
	return nil
}

// strictFilter drops claimed insertions whose instances were already
// true in the old state (the condition did not transition false→true).
// The old state is probed by logical rollback — the condition is never
// materialized (§7.2).
func (m *Manager) strictFilter(a *Activation, d *delta.Set) error {
	ev := m.net.Evaluator()
	var drop []types.Tuple
	var evalErr error
	d.Plus().Each(func(t types.Tuple) bool {
		held, err := ev.Derivable(a.CondName, t, true)
		if err != nil {
			evalErr = err
			return false
		}
		if held {
			drop = append(drop, t)
		}
		return true
	})
	if evalErr != nil {
		return evalErr
	}
	for _, t := range drop {
		d.Plus().Remove(t)
	}
	return nil
}

func (m *Manager) recordExplanation(a *Activation, round int, d *delta.Set, trace []propnet.TraceEntry) {
	if d.Plus().Len() == 0 {
		return
	}
	var entries []propnet.TraceEntry
	for _, e := range trace {
		if e.View == a.CondName && e.Produced > 0 {
			entries = append(entries, e)
		}
	}
	m.explanations = append(m.explanations, Explanation{
		Rule:       a.Rule.Name,
		Activation: a.Key,
		Round:      round,
		Instances:  d.Plus().Tuples(),
		Entries:    entries,
	})
}

// deriveNaive recomputes every affected condition completely and diffs
// it against the materialized previous truth set — the §6 baseline.
func (m *Manager) deriveNaive() error {
	changed := map[string]bool{}
	for _, pred := range m.net.ChangedBase() {
		changed[pred] = true
	}
	ev := m.net.Evaluator()
	for _, a := range sortedActivations(m.activations) {
		if !m.affectedBy(a, changed) {
			continue
		}
		newTrue, err := ev.EvalPred(a.CondName, false)
		if err != nil {
			return err
		}
		m.met.NaiveRecomputations.Inc()
		d := delta.Diff(a.prevTrue, newTrue)
		a.prevTrue = newTrue
		if d.IsEmpty() {
			continue
		}
		if !a.Rule.eventMatches(changed) {
			// ECA rule without a matching event: the truth set was
			// refreshed but the changes are not acted upon (keeps the
			// naive monitor equivalent to the incremental one).
			continue
		}
		a.trigger.UnionInto(d)
		m.explanations = append(m.explanations, Explanation{
			Rule:       a.Rule.Name,
			Activation: a.Key,
			Instances:  d.Plus().Tuples(),
		})
	}
	return nil
}

// affectedBy reports whether any changed base relation (transitively)
// influences the activation's condition.
func (m *Manager) affectedBy(a *Activation, changed map[string]bool) bool {
	var visit func(def *objectlog.Def, seen map[string]bool) bool
	visit = func(def *objectlog.Def, seen map[string]bool) bool {
		for _, infl := range def.Influents() {
			if changed[infl] {
				return true
			}
			if seen[infl] {
				continue
			}
			seen[infl] = true
			if d, ok := m.prog.Def(infl); ok {
				if visit(d, seen) {
					return true
				}
			}
		}
		return false
	}
	return visit(a.Def, map[string]bool{})
}

// deriveHybrid chooses per activation: incremental when the accumulated
// base changes are small relative to the influent relations, otherwise
// naive re-evaluation by logical rollback (old and new extents computed,
// diffed — still no materialization across transactions). This is the
// hybrid evaluation method sketched in §8.
func (m *Manager) deriveHybrid(round int) error {
	changed := map[string]bool{}
	var deltaTotal, relTotal int
	for _, pred := range m.net.ChangedBase() {
		changed[pred] = true
		deltaTotal += m.net.BaseDelta(pred).Len()
		if rel, ok := m.store.Relation(pred); ok {
			relTotal += rel.Len()
		}
	}
	useNaive := relTotal > 0 && float64(deltaTotal) > m.HybridRatio*float64(relTotal)

	incr := map[string]bool{}
	ev := m.net.Evaluator()
	for _, a := range sortedActivations(m.activations) {
		if !m.affectedBy(a, changed) {
			continue
		}
		if !useNaive {
			incr[a.Key] = true
			continue
		}
		oldTrue, err := ev.EvalPred(a.CondName, true)
		if err != nil {
			return err
		}
		newTrue, err := ev.EvalPred(a.CondName, false)
		if err != nil {
			return err
		}
		m.met.NaiveRecomputations.Inc()
		d := delta.Diff(oldTrue, newTrue)
		if d.IsEmpty() || !a.Rule.eventMatches(changed) {
			continue
		}
		a.trigger.UnionInto(d)
		m.explanations = append(m.explanations, Explanation{
			Rule:       a.Rule.Name,
			Activation: a.Key,
			Round:      round,
			Instances:  d.Plus().Tuples(),
		})
	}
	if len(incr) > 0 {
		return m.deriveIncremental(round, incr)
	}
	return nil
}
