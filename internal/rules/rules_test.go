package rules

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"partdiff/internal/objectlog"
	"partdiff/internal/storage"
	"partdiff/internal/txn"
	"partdiff/internal/types"
)

func tup(vs ...int64) types.Tuple {
	t := make(types.Tuple, len(vs))
	for i, v := range vs {
		t[i] = types.Int(v)
	}
	return t
}

// fixture is a minimal inventory: quantity(item,qty), threshold(item,thr).
type fixture struct {
	store *storage.Store
	mgr   *Manager
	txns  *txn.Manager
	fired map[string][]types.Tuple // rule name -> instances
}

func newFixture(t *testing.T, mode Mode) *fixture {
	t.Helper()
	st := storage.NewStore()
	for _, rel := range []string{"quantity", "threshold"} {
		if _, err := st.CreateRelation(rel, 2, []int{0}); err != nil {
			t.Fatal(err)
		}
	}
	f := &fixture{store: st, mgr: NewManager(st, mode), fired: map[string][]types.Tuple{}}
	f.txns = txn.NewManager(st)
	f.txns.SetHooks(f.mgr.OnEvent, f.mgr.CheckPhase, f.mgr.OnEnd)
	return f
}

// lowStockDef is cnd(I) ← quantity(I,Q) ∧ threshold(I,T) ∧ Q < T,
// optionally with a leading parameter column for per-item activation.
func lowStockDef(name string, withParam bool) *objectlog.Def {
	head := objectlog.Lit(name, objectlog.V("I"))
	arity := 1
	if withParam {
		arity = 2
		head = objectlog.Lit(name, objectlog.V("I"), objectlog.V("I"))
	}
	return &objectlog.Def{Name: name, Arity: arity, Clauses: []objectlog.Clause{
		{Head: head, Body: []objectlog.Literal{
			objectlog.Lit("quantity", objectlog.V("I"), objectlog.V("Q")),
			objectlog.Lit("threshold", objectlog.V("I"), objectlog.V("T")),
			objectlog.Lit(objectlog.BuiltinLT, objectlog.V("Q"), objectlog.V("T")),
		}},
	}}
}

func (f *fixture) recorder(rule string) Action {
	return func(inst types.Tuple) error {
		f.fired[rule] = append(f.fired[rule], inst.Clone())
		return nil
	}
}

func (f *fixture) defineLowStock(t *testing.T, name string, strict bool, prio int) {
	t.Helper()
	err := f.mgr.DefineRule(&Rule{
		Name:     name,
		CondDef:  lowStockDef("cond_"+name, false),
		Action:   f.recorder(name),
		Strict:   strict,
		Priority: prio,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func (f *fixture) set(t *testing.T, rel string, key, val int64) {
	t.Helper()
	if _, err := f.store.Set(rel, []types.Value{types.Int(key)}, []types.Value{types.Int(val)}); err != nil {
		t.Fatal(err)
	}
}

func (f *fixture) inTxn(t *testing.T, fn func()) {
	t.Helper()
	if err := f.txns.Begin(); err != nil {
		t.Fatal(err)
	}
	fn()
	if err := f.txns.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestBasicTrigger(t *testing.T) {
	for _, mode := range []Mode{Incremental, Naive, Hybrid} {
		t.Run(mode.String(), func(t *testing.T) {
			f := newFixture(t, mode)
			f.set(t, "quantity", 1, 100)
			f.set(t, "threshold", 1, 60)
			f.defineLowStock(t, "low", true, 0)
			if _, err := f.mgr.Activate("low"); err != nil {
				t.Fatal(err)
			}
			f.inTxn(t, func() { f.set(t, "quantity", 1, 50) })
			if got := f.fired["low"]; len(got) != 1 || !got[0].Equal(tup(1)) {
				t.Errorf("fired=%v", got)
			}
		})
	}
}

func TestNetChangeCancellation(t *testing.T) {
	// Drop below threshold and restore within one transaction: the rule
	// is "no longer triggered" — no action.
	for _, mode := range []Mode{Incremental, Naive} {
		t.Run(mode.String(), func(t *testing.T) {
			f := newFixture(t, mode)
			f.set(t, "quantity", 1, 100)
			f.set(t, "threshold", 1, 60)
			f.defineLowStock(t, "low", true, 0)
			f.mgr.Activate("low")
			f.inTxn(t, func() {
				f.set(t, "quantity", 1, 50)
				f.set(t, "quantity", 1, 100)
			})
			if len(f.fired["low"]) != 0 {
				t.Errorf("fired=%v; no net change expected", f.fired["low"])
			}
		})
	}
}

func TestStrictVsNervousSemantics(t *testing.T) {
	// quantity 50→40, both below threshold 60: strict must not fire
	// (no false→true transition), nervous may.
	run := func(strict bool) []types.Tuple {
		f := newFixture(t, Incremental)
		f.set(t, "quantity", 1, 50)
		f.set(t, "threshold", 1, 60)
		f.defineLowStock(t, "low", strict, 0)
		f.mgr.Activate("low")
		f.inTxn(t, func() { f.set(t, "quantity", 1, 40) })
		return f.fired["low"]
	}
	if got := run(true); len(got) != 0 {
		t.Errorf("strict fired %v on already-true instance", got)
	}
	if got := run(false); len(got) != 1 {
		t.Errorf("nervous should fire on re-derivation, fired %v", got)
	}
}

func TestParameterizedActivation(t *testing.T) {
	f := newFixture(t, Incremental)
	for i := int64(1); i <= 3; i++ {
		f.set(t, "quantity", i, 100)
		f.set(t, "threshold", i, 60)
	}
	err := f.mgr.DefineRule(&Rule{
		Name:      "watch",
		CondDef:   lowStockDef("cond_watch", true),
		NumParams: 1,
		Action:    f.recorder("watch"),
		Strict:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	key, err := f.mgr.Activate("watch", types.Int(2))
	if err != nil {
		t.Fatal(err)
	}
	if key != "watch(2)" {
		t.Errorf("key=%q", key)
	}
	// Drop items 1 and 2; only item 2 is watched.
	f.inTxn(t, func() {
		f.set(t, "quantity", 1, 10)
		f.set(t, "quantity", 2, 10)
	})
	// Instance tuples carry the activation parameters followed by the
	// for-each variables: (param=2, i=2).
	if got := f.fired["watch"]; len(got) != 1 || !got[0].Equal(tup(2, 2)) {
		t.Errorf("fired=%v", got)
	}
}

func TestActivationValidation(t *testing.T) {
	f := newFixture(t, Incremental)
	f.defineLowStock(t, "low", true, 0)
	if _, err := f.mgr.Activate("nosuch"); err == nil {
		t.Error("unknown rule should error")
	}
	if _, err := f.mgr.Activate("low", types.Int(1)); err == nil {
		t.Error("wrong arg count should error")
	}
	if _, err := f.mgr.Activate("low"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.mgr.Activate("low"); err == nil {
		t.Error("duplicate activation should error")
	}
	if err := f.mgr.Deactivate("low"); err != nil {
		t.Fatal(err)
	}
	if err := f.mgr.Deactivate("low"); err == nil {
		t.Error("double deactivation should error")
	}
}

func TestDeactivatedRuleDoesNotFire(t *testing.T) {
	f := newFixture(t, Incremental)
	f.set(t, "quantity", 1, 100)
	f.set(t, "threshold", 1, 60)
	f.defineLowStock(t, "low", true, 0)
	key, _ := f.mgr.Activate("low")
	f.mgr.Deactivate(key)
	f.inTxn(t, func() { f.set(t, "quantity", 1, 50) })
	if len(f.fired["low"]) != 0 {
		t.Errorf("deactivated rule fired: %v", f.fired["low"])
	}
}

func TestConflictResolutionAndTriggerWithdrawal(t *testing.T) {
	// Two rules watch the same condition. The high-priority rule's
	// action refills the stock, which must withdraw the low-priority
	// rule's pending trigger (its condition is no longer true).
	f := newFixture(t, Incremental)
	f.set(t, "quantity", 1, 100)
	f.set(t, "threshold", 1, 60)

	f.mgr.DefineRule(&Rule{
		Name:    "refill",
		CondDef: lowStockDef("cond_refill", false),
		Action: func(inst types.Tuple) error {
			f.fired["refill"] = append(f.fired["refill"], inst.Clone())
			_, err := f.store.Set("quantity", []types.Value{inst[0]}, []types.Value{types.Int(100)})
			return err
		},
		Strict:   true,
		Priority: 10,
	})
	f.defineLowStock(t, "alarm", true, 1)
	f.mgr.Activate("refill")
	f.mgr.Activate("alarm")

	f.inTxn(t, func() { f.set(t, "quantity", 1, 50) })
	if len(f.fired["refill"]) != 1 {
		t.Errorf("refill fired %v", f.fired["refill"])
	}
	if len(f.fired["alarm"]) != 0 {
		t.Errorf("alarm fired %v; its trigger should have been withdrawn", f.fired["alarm"])
	}
	// Sanity: the refill really happened.
	vals, _ := f.store.Get("quantity", []types.Value{types.Int(1)})
	if len(vals) != 1 || !vals[0][0].Equal(types.Int(100)) {
		t.Errorf("quantity after refill: %v", vals)
	}
}

func TestRuleCascade(t *testing.T) {
	// Rule A's action drops item 2's stock, triggering rule B.
	f := newFixture(t, Incremental)
	f.set(t, "quantity", 1, 100)
	f.set(t, "threshold", 1, 60)
	f.set(t, "quantity", 2, 100)
	f.set(t, "threshold", 2, 60)

	f.mgr.DefineRule(&Rule{
		Name:    "a",
		CondDef: lowStockDef("cond_a", false),
		Action: func(inst types.Tuple) error {
			f.fired["a"] = append(f.fired["a"], inst.Clone())
			if inst[0].AsInt() == 1 {
				_, err := f.store.Set("quantity", []types.Value{types.Int(2)}, []types.Value{types.Int(10)})
				return err
			}
			return nil
		},
		Strict:   true,
		Priority: 5,
	})
	f.mgr.Activate("a")
	f.inTxn(t, func() { f.set(t, "quantity", 1, 50) })
	// a fires for item 1, its action triggers a for item 2 in a later
	// round of the same check phase.
	got := f.fired["a"]
	if len(got) != 2 || !got[0].Equal(tup(1)) || !got[1].Equal(tup(2)) {
		t.Errorf("cascade fired %v", got)
	}
}

func TestNonTerminatingCascadeBounded(t *testing.T) {
	f := newFixture(t, Incremental)
	f.set(t, "quantity", 1, 100)
	f.set(t, "threshold", 1, 60)
	// Nervous rule whose action keeps re-deriving its own condition.
	f.mgr.DefineRule(&Rule{
		Name:    "loop",
		CondDef: lowStockDef("cond_loop", false),
		Action: func(inst types.Tuple) error {
			vals, _ := f.store.Get("quantity", []types.Value{inst[0]})
			q := vals[0][0].AsInt()
			_, err := f.store.Set("quantity", []types.Value{inst[0]}, []types.Value{types.Int(q - 1)})
			return err
		},
		Strict: false, // nervous: retriggers on every re-derivation
	})
	f.mgr.Activate("loop")
	f.txns.Begin()
	f.set(t, "quantity", 1, 50)
	if err := f.txns.Commit(); err == nil {
		t.Fatal("non-terminating cascade should be bounded and error")
	} else if !strings.Contains(err.Error(), "rounds") {
		t.Errorf("unexpected error: %v", err)
	}
	// Transaction rolled back: quantity restored.
	vals, _ := f.store.Get("quantity", []types.Value{types.Int(1)})
	if len(vals) != 1 || !vals[0][0].Equal(types.Int(100)) {
		t.Errorf("quantity after rollback: %v", vals)
	}
}

func TestActionErrorRollsBackTransaction(t *testing.T) {
	f := newFixture(t, Incremental)
	f.set(t, "quantity", 1, 100)
	f.set(t, "threshold", 1, 60)
	f.mgr.DefineRule(&Rule{
		Name:    "boom",
		CondDef: lowStockDef("cond_boom", false),
		Action:  func(types.Tuple) error { return fmt.Errorf("action failure") },
		Strict:  true,
	})
	f.mgr.Activate("boom")
	f.txns.Begin()
	f.set(t, "quantity", 1, 50)
	if err := f.txns.Commit(); err == nil {
		t.Fatal("commit should fail")
	}
	vals, _ := f.store.Get("quantity", []types.Value{types.Int(1)})
	if !vals[0][0].Equal(types.Int(100)) {
		t.Errorf("quantity after rollback: %v", vals)
	}
}

func TestRollbackLeavesNoTriggers(t *testing.T) {
	f := newFixture(t, Incremental)
	f.set(t, "quantity", 1, 100)
	f.set(t, "threshold", 1, 60)
	f.defineLowStock(t, "low", true, 0)
	f.mgr.Activate("low")
	f.txns.Begin()
	f.set(t, "quantity", 1, 50)
	f.txns.Rollback()
	// Next, an empty transaction commits: nothing may fire.
	f.inTxn(t, func() {})
	if len(f.fired["low"]) != 0 {
		t.Errorf("fired after rollback: %v", f.fired["low"])
	}
}

func TestIncrementalAndNaiveAgree(t *testing.T) {
	// Randomized-ish scenario executed under both monitors must produce
	// identical trigger sequences.
	scenario := func(f *fixture, t *testing.T) {
		for i := int64(1); i <= 5; i++ {
			f.set(t, "quantity", i, 100)
			f.set(t, "threshold", i, 60)
		}
		f.defineLowStock(t, "low", true, 0)
		f.mgr.Activate("low")
		f.inTxn(t, func() {
			f.set(t, "quantity", 2, 10)
			f.set(t, "quantity", 3, 55)
			f.set(t, "quantity", 3, 80) // net: unchanged truth for 3
			f.set(t, "threshold", 4, 200)
		})
		f.inTxn(t, func() {
			f.set(t, "quantity", 2, 15) // still low: strict → no refire
			f.set(t, "threshold", 4, 60)
			f.set(t, "quantity", 5, 1)
		})
	}
	fi := newFixture(t, Incremental)
	scenario(fi, t)
	fn := newFixture(t, Naive)
	scenario(fn, t)
	got := fmt.Sprint(fi.fired["low"])
	want := fmt.Sprint(fn.fired["low"])
	if got != want {
		t.Errorf("incremental fired %s, naive fired %s", got, want)
	}
	// And the incremental monitor must have done no naive recomputation.
	if fi.mgr.Stats().NaiveRecomputations != 0 || fi.mgr.Stats().Propagations == 0 {
		t.Errorf("incremental stats: %+v", fi.mgr.Stats())
	}
	if fn.mgr.Stats().NaiveRecomputations == 0 || fn.mgr.Stats().DifferentialsExecuted != 0 {
		t.Errorf("naive stats: %+v", fn.mgr.Stats())
	}
}

func TestHybridSwitchesRegimes(t *testing.T) {
	f := newFixture(t, Hybrid)
	for i := int64(1); i <= 20; i++ {
		f.set(t, "quantity", i, 100)
		f.set(t, "threshold", i, 60)
	}
	f.defineLowStock(t, "low", true, 0)
	f.mgr.Activate("low")

	// Small transaction → incremental path.
	f.inTxn(t, func() { f.set(t, "quantity", 1, 50) })
	st := f.mgr.Stats()
	if st.Propagations != 1 || st.NaiveRecomputations != 0 {
		t.Errorf("small txn stats: %+v", st)
	}
	// Massive transaction (all items) → naive path.
	f.inTxn(t, func() {
		for i := int64(1); i <= 20; i++ {
			f.set(t, "quantity", i, 40)
		}
	})
	st = f.mgr.Stats()
	if st.NaiveRecomputations == 0 {
		t.Errorf("massive txn should use naive path: %+v", st)
	}
	// All became low except item 1 (already low, strict).
	if got := len(f.fired["low"]); got != 1+19 {
		t.Errorf("fired %d instances, want 20", got)
	}
}

func TestExplanations(t *testing.T) {
	f := newFixture(t, Incremental)
	f.set(t, "quantity", 1, 100)
	f.set(t, "threshold", 1, 60)
	f.defineLowStock(t, "low", true, 0)
	f.mgr.Activate("low")
	f.inTxn(t, func() { f.set(t, "quantity", 1, 50) })
	ex := f.mgr.LastExplanations()
	if len(ex) != 1 {
		t.Fatalf("explanations=%+v", ex)
	}
	e := ex[0]
	if e.Rule != "low" || len(e.Instances) != 1 || !e.Instances[0].Equal(tup(1)) {
		t.Errorf("explanation=%+v", e)
	}
	// The quantity differential must appear as the cause.
	found := false
	for _, te := range e.Entries {
		if te.Influent == "quantity" && te.TriggerSign == objectlog.DeltaPlus {
			found = true
		}
	}
	if !found {
		t.Errorf("explanation entries=%+v", e.Entries)
	}
}

func TestNoOverheadWithoutActivations(t *testing.T) {
	f := newFixture(t, Incremental)
	f.defineLowStock(t, "low", true, 0) // defined but never activated
	f.inTxn(t, func() { f.set(t, "quantity", 1, 50) })
	st := f.mgr.Stats()
	if st.Propagations != 0 || st.CheckRounds != 0 {
		t.Errorf("stats=%+v; unactivated rules must cost nothing", st)
	}
}

func TestDefineRuleValidation(t *testing.T) {
	f := newFixture(t, Incremental)
	bad := []*Rule{
		{Name: "", CondDef: lowStockDef("c", false), Action: f.recorder("x")},
		{Name: "x", CondDef: nil, Action: f.recorder("x")},
		{Name: "x", CondDef: lowStockDef("c", false), Action: nil},
		{Name: "x", CondDef: lowStockDef("c", false), NumParams: 5, Action: f.recorder("x")},
	}
	for i, r := range bad {
		if err := f.mgr.DefineRule(r); err == nil {
			t.Errorf("bad rule %d accepted", i)
		}
	}
	f.defineLowStock(t, "ok", true, 0)
	if err := f.mgr.DefineRule(&Rule{Name: "ok", CondDef: lowStockDef("c2", false), Action: f.recorder("ok")}); err == nil {
		t.Error("duplicate rule name accepted")
	}
}

func TestNodeSharingAcrossActivations(t *testing.T) {
	// Two rules share the "low" view through ShareView; the network
	// contains a single shared node (§7.1).
	f := newFixture(t, Incremental)
	f.set(t, "quantity", 1, 100)
	f.set(t, "threshold", 1, 60)
	shared := lowStockDef("lowview", false)
	if err := f.mgr.ShareView(shared); err != nil {
		t.Fatal(err)
	}
	if err := f.mgr.ShareView(shared); err == nil {
		t.Error("duplicate ShareView should error")
	}
	mkRule := func(name string) *Rule {
		return &Rule{
			Name: name,
			CondDef: &objectlog.Def{Name: "cond_" + name, Arity: 1, Clauses: []objectlog.Clause{
				objectlog.NewClause(objectlog.Lit("cond_"+name, objectlog.V("I")),
					objectlog.Lit("lowview", objectlog.V("I"))),
			}},
			Action: f.recorder(name),
			Strict: true,
		}
	}
	f.mgr.DefineRule(mkRule("r1"))
	f.mgr.DefineRule(mkRule("r2"))
	f.mgr.Activate("r1")
	f.mgr.Activate("r2")

	net := f.mgr.Network()
	nd, ok := net.Node("lowview")
	if !ok || nd.Base || nd.Level != 1 {
		t.Fatalf("shared node: ok=%v node=%+v", ok, nd)
	}
	f.inTxn(t, func() { f.set(t, "quantity", 1, 50) })
	if len(f.fired["r1"]) != 1 || len(f.fired["r2"]) != 1 {
		t.Errorf("shared-view rules fired r1=%v r2=%v", f.fired["r1"], f.fired["r2"])
	}
}

func TestStatsAndReset(t *testing.T) {
	f := newFixture(t, Incremental)
	f.set(t, "quantity", 1, 100)
	f.set(t, "threshold", 1, 60)
	f.defineLowStock(t, "low", true, 0)
	f.mgr.Activate("low")
	f.inTxn(t, func() { f.set(t, "quantity", 1, 50) })
	st := f.mgr.Stats()
	if st.TriggeredInstances != 1 || st.ActionsExecuted != 1 || st.DifferentialsExecuted == 0 {
		t.Errorf("stats=%+v", st)
	}
	f.mgr.ResetStats()
	if f.mgr.Stats() != (Stats{}) {
		t.Error("ResetStats")
	}
	var acc Stats
	acc.Add(st)
	acc.Add(st)
	if acc.ActionsExecuted != 2*st.ActionsExecuted {
		t.Error("Stats.Add")
	}
}

func TestActivationsListingAndModeString(t *testing.T) {
	f := newFixture(t, Incremental)
	f.defineLowStock(t, "b", true, 0)
	f.defineLowStock(t, "a", true, 0)
	f.mgr.Activate("b")
	f.mgr.Activate("a")
	acts := f.mgr.Activations()
	if len(acts) != 2 || acts[0] != "a" || acts[1] != "b" {
		t.Errorf("Activations=%v", acts)
	}
	if Incremental.String() != "incremental" || Naive.String() != "naive" || Hybrid.String() != "hybrid" {
		t.Error("mode strings")
	}
	if _, ok := f.mgr.Rule("a"); !ok {
		t.Error("Rule lookup")
	}
}

func TestMidTransactionActivationMigratesDeltas(t *testing.T) {
	// Updates happen, then a new rule is activated in the same
	// transaction: the network is rebuilt and the accumulated Δ-sets
	// must survive so the commit still sees the earlier changes.
	f := newFixture(t, Incremental)
	f.set(t, "quantity", 1, 100)
	f.set(t, "threshold", 1, 60)
	f.defineLowStock(t, "early", true, 0)
	f.defineLowStock(t, "late", true, 0)
	f.mgr.Activate("early")
	f.txns.Begin()
	f.set(t, "quantity", 1, 50)
	if _, err := f.mgr.Activate("late"); err != nil {
		t.Fatal(err)
	}
	if err := f.txns.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(f.fired["early"]) != 1 {
		t.Errorf("early fired %v; deltas lost in network rebuild", f.fired["early"])
	}
}

// TestStatsConcurrentReads: Stats() is a compatibility view computed
// from atomic registry counters, so a monitoring goroutine (the \stats
// command, an HTTP scrape) may poll it while transactions commit. Run
// under -race this catches any regression to plain field increments.
func TestStatsConcurrentReads(t *testing.T) {
	f := newFixture(t, Incremental)
	f.set(t, "quantity", 1, 100)
	f.set(t, "threshold", 1, 60)
	f.defineLowStock(t, "low", false, 0)
	f.mgr.Activate("low")

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				_ = f.mgr.Stats()
				_ = f.mgr.Observability().Registry.WritePrometheus(io.Discard)
			}
		}()
	}
	for i := 0; i < 50; i++ {
		q := int64(50 + i%2)
		f.inTxn(t, func() { f.set(t, "quantity", 1, q) })
	}
	close(done)
	wg.Wait()
	if f.mgr.Stats().Propagations == 0 {
		t.Error("expected propagations after 50 transactions")
	}
}
