package rules

import (
	"testing"

	"partdiff/internal/objectlog"
	"partdiff/internal/types"
)

// Insertion-only monitoring (SetMonitorDeletions(false)) — the paper's
// §6 benchmark configuration.

func TestPositiveOnlyHalvesDifferentials(t *testing.T) {
	f := newFixture(t, Incremental)
	f.set(t, "quantity", 1, 100)
	f.set(t, "threshold", 1, 60)
	f.defineLowStock(t, "low", true, 0)
	f.mgr.SetMonitorDeletions(false)
	f.mgr.Activate("low")
	f.inTxn(t, func() { f.set(t, "quantity", 1, 50) })
	if got := f.fired["low"]; len(got) != 1 {
		t.Fatalf("fired=%v", got)
	}
	// One update = retraction + assertion, but only the positive
	// differential exists: exactly 1 execution (vs 2 with deletions).
	if n := f.mgr.Stats().DifferentialsExecuted; n != 1 {
		t.Errorf("differentials executed = %d, want 1", n)
	}
	// Trace confirms only Δ+ triggers.
	for _, te := range f.mgr.Network().Trace() {
		if te.TriggerSign != objectlog.DeltaPlus {
			t.Errorf("negative differential ran: %+v", te)
		}
	}
}

// TestPositiveOnlyLosesWithdrawal documents the semantics cost of
// insertion-only monitoring (§4.4: "for strict rule semantics,
// propagation of negative changes is also necessary for rules whose
// actions negatively affect other rules' conditions"): when a
// higher-priority rule's action makes a lower-priority rule's condition
// false again, the pending trigger is only withdrawn if negative
// changes propagate.
func TestPositiveOnlyLosesWithdrawal(t *testing.T) {
	run := func(monitorDeletions bool) (refills, alarms int) {
		f := newFixture(t, Incremental)
		f.set(t, "quantity", 1, 100)
		f.set(t, "threshold", 1, 60)
		f.mgr.SetMonitorDeletions(monitorDeletions)
		f.mgr.DefineRule(&Rule{
			Name:    "refill",
			CondDef: lowStockDef("cond_refill", false),
			Action: func(inst types.Tuple) error {
				refills++
				_, err := f.store.Set("quantity", []types.Value{inst[0]}, []types.Value{types.Int(100)})
				return err
			},
			Strict:   true,
			Priority: 10,
		})
		f.defineLowStock(t, "alarm", true, 1)
		f.mgr.Activate("refill")
		f.mgr.Activate("alarm")
		f.inTxn(t, func() { f.set(t, "quantity", 1, 50) })
		return refills, len(f.fired["alarm"])
	}
	refills, alarms := run(true)
	if refills != 1 || alarms != 0 {
		t.Errorf("full monitoring: refills=%d alarms=%d (withdrawal expected)", refills, alarms)
	}
	refills, alarms = run(false)
	if refills != 1 || alarms != 1 {
		t.Errorf("positive-only: refills=%d alarms=%d (over-firing is the documented trade-off)", refills, alarms)
	}
}

func TestSetMonitorDeletionsIdempotent(t *testing.T) {
	f := newFixture(t, Incremental)
	f.defineLowStock(t, "low", true, 0)
	f.mgr.Activate("low")
	net := f.mgr.Network()
	f.mgr.SetMonitorDeletions(true) // already true: no rebuild
	if f.mgr.Network() != net {
		t.Error("no-op toggle rebuilt the network")
	}
	f.mgr.SetMonitorDeletions(false)
	if f.mgr.Network() == net {
		t.Error("toggle did not rebuild the network")
	}
}
