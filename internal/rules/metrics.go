package rules

import (
	"partdiff/internal/delta"
	"partdiff/internal/eval"
	"partdiff/internal/maint"
	"partdiff/internal/obs"
	"partdiff/internal/propnet"
)

// Metrics is the rule manager's meter set, the registry-backed source
// of truth behind the Stats compatibility view. The zero value is a
// valid disabled meter set, but a Manager always carries registered
// meters (NewManager creates a private registry when the embedding
// session does not supply one) so Stats() keeps working.
type Metrics struct {
	Propagations        *obs.Counter
	Differentials       *obs.Counter
	NaiveRecomputations *obs.Counter
	Triggered           *obs.Counter
	Actions             *obs.Counter
	CheckRounds         *obs.Counter
	// Activations counts Activate calls over the manager's lifetime.
	Activations *obs.Counter
	// RuleTriggered breaks triggered instances down per rule.
	RuleTriggered *obs.CounterVec
}

// NewMetrics registers the rule-monitor meters in r.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Propagations:        r.Counter("partdiff_rules_propagations_total", "Propagation-network runs performed by the monitor."),
		Differentials:       r.Counter("partdiff_rules_differentials_total", "Partial differentials executed on behalf of rule conditions."),
		NaiveRecomputations: r.Counter("partdiff_rules_naive_recomputations_total", "Full condition recomputations (naive and hybrid fallback)."),
		Triggered:           r.Counter("partdiff_rules_triggered_instances_total", "Net-new condition instances handed to actions."),
		Actions:             r.Counter("partdiff_rules_actions_total", "Rule action executions."),
		CheckRounds:         r.Counter("partdiff_rules_check_rounds_total", "Check-phase rounds that processed base changes."),
		Activations:         r.Counter("partdiff_rules_activations_total", "Rule activations performed."),
		RuleTriggered:       r.CounterVec("partdiff_rules_rule_triggered_total", "Triggered instances per rule.", "rule"),
	}
}

// SetObservability installs the registry + tracer bundle the manager
// (and the subsystems it owns: propagation networks and their
// evaluators) report into. Called by the embedding session with its
// bundle; NewManager installs a private bundle so a standalone manager
// is observable too. Metrics are registry-backed with get-or-create
// semantics, so the frequent network rebuilds (ensureNet) keep
// accumulating into the same meters.
func (m *Manager) SetObservability(o *obs.Observability) {
	if o == nil {
		o = obs.New()
	}
	m.obs = o
	m.met = NewMetrics(o.Registry)
	m.netMet = propnet.NewMetrics(o.Registry)
	m.evalMet = eval.NewMetrics(o.Registry)
	delta.RegisterMetrics(o.Registry)
	if m.maintainer != nil {
		m.maintainer.SetMetrics(maint.NewMetrics(o.Registry))
		m.maintainer.SetBus(o.Bus)
	}
	if m.net != nil {
		m.net.SetObs(m.netMet, o.Tracer)
		m.net.SetProfiler(o.Profiler)
		m.net.Evaluator().SetMetrics(m.evalMet)
	}
	// Re-attach the debug writer's text sink to the new tracer.
	if m.debug != nil {
		w := m.debug
		m.SetDebug(nil)
		m.SetDebug(w)
	}
}

// Observability returns the manager's registry + tracer bundle.
func (m *Manager) Observability() *obs.Observability { return m.obs }

// tracing reports whether structured tracing is live (some sink is
// attached — a debug writer, a Chrome exporter, or both).
func (m *Manager) tracing() bool { return m.obs.Tracer.Enabled() }
