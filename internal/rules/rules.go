// Package rules implements CA (Condition–Action) rules with deferred
// condition monitoring (§3 of the paper): rule objects, per-parameter
// activation, the commit-time check phase with conflict resolution and
// set-oriented action execution, strict and nervous execution semantics
// (§3.2, §7.2), and explainability (§1).
//
// Three monitors are provided:
//
//   - Incremental — partial differencing over the propagation network
//     (the paper's contribution).
//   - Naive — full recomputation of each affected condition with a
//     materialized previous truth set (the §6 baseline).
//   - Hybrid — the §8 "future work" method: per condition and per check
//     round, falls back to naive (rollback-based, unmaterialized)
//     evaluation when the accumulated changes are large relative to the
//     influent relations.
package rules

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"partdiff/internal/analyze"
	"partdiff/internal/delta"
	"partdiff/internal/diff"
	"partdiff/internal/eval"
	"partdiff/internal/faultinject"
	"partdiff/internal/maint"
	"partdiff/internal/objectlog"
	"partdiff/internal/obs"
	"partdiff/internal/propnet"
	"partdiff/internal/storage"
	"partdiff/internal/types"
)

// Mode selects the condition monitoring strategy.
type Mode int

// The monitoring modes.
const (
	Incremental Mode = iota
	Naive
	Hybrid
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Incremental:
		return "incremental"
	case Naive:
		return "naive"
	case Hybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Action is a rule action, executed once per net-new condition instance
// (set-oriented execution semantics: data is passed from the condition
// to the action through the shared query variables, materialized here as
// the instance tuple).
type Action func(instance types.Tuple) error

// Rule is a CA rule: a declarative condition and a procedural action.
type Rule struct {
	Name string
	// CondDef is the condition function definition. Its head arguments
	// are the rule parameters (the first NumParams) followed by the
	// for-each result variables passed to the action.
	CondDef *objectlog.Def
	// NumParams is the number of leading head arguments that are rule
	// parameters, bound at activation time.
	NumParams int
	// Action runs for each instance for which the condition became
	// true.
	Action Action
	// Strict selects strict execution semantics: the action runs only
	// when the condition's truth value changes from false to true. With
	// nervous semantics (Strict=false) the rule may also trigger when
	// an update re-derives an already-true instance (§3.2).
	Strict bool
	// Priority orders conflict resolution (higher first; ties broken by
	// rule name).
	Priority int
	// Events, when non-empty, turns the CA rule into an ECA rule: the
	// condition is only tested in check rounds where at least one of
	// the named base relations was updated ("the event part just
	// further restricts when the condition is tested", §1). Condition
	// changes arriving without a matching event are discarded for this
	// rule.
	Events []string
}

// eventMatches reports whether any of the rule's event relations is in
// the changed set (always true for pure CA rules).
func (r *Rule) eventMatches(changed map[string]bool) bool {
	if len(r.Events) == 0 {
		return true
	}
	for _, e := range r.Events {
		if changed[e] {
			return true
		}
	}
	return false
}

// Activation is one activated (rule, parameters) pair. Rules are
// activated and deactivated separately for different parameters (§3.1).
type Activation struct {
	Key      string
	Rule     *Rule
	Args     []types.Value
	CondName string
	// Def is the specialized, expanded condition definition monitored
	// by the network.
	Def *objectlog.Def

	// trigger holds the pending net-triggered instances: insertions
	// mark instances, deletions un-mark them ("if something happens
	// later in the transaction which causes the condition to become
	// false again, the rule is no longer triggered").
	trigger *delta.Set
	// prevTrue is the materialized previous truth set (naive monitor
	// only; the incremental monitor never materializes conditions).
	prevTrue *types.Set
}

// Explanation records why a rule instance triggered: which partial
// differentials executed in the triggering round, and with which sign.
type Explanation struct {
	Rule       string
	Activation string
	Round      int
	Instances  []types.Tuple
	Entries    []propnet.TraceEntry
}

// Stats counts monitor work, for the performance experiments of §6.
type Stats struct {
	Propagations          int
	DifferentialsExecuted int
	NaiveRecomputations   int
	TriggeredInstances    int
	ActionsExecuted       int
	CheckRounds           int
}

// Add accumulates s2 into s.
func (s *Stats) Add(s2 Stats) {
	s.Propagations += s2.Propagations
	s.DifferentialsExecuted += s2.DifferentialsExecuted
	s.NaiveRecomputations += s2.NaiveRecomputations
	s.TriggeredInstances += s2.TriggeredInstances
	s.ActionsExecuted += s2.ActionsExecuted
	s.CheckRounds += s2.CheckRounds
}

// ConflictResolver picks one activation among those with pending
// triggered instances. The default resolver picks the highest priority,
// breaking ties by activation key.
type ConflictResolver func(candidates []*Activation) *Activation

// Manager owns the rule base and runs the deferred check phase.
type Manager struct {
	store *storage.Store
	prog  *objectlog.Program

	mode Mode
	// HybridRatio is the Δ-to-relation size ratio above which the
	// hybrid monitor falls back to naive evaluation (default 0.5).
	HybridRatio float64
	// MaxRounds bounds rule-cascade loops in one check phase.
	MaxRounds int
	// CheckBudget bounds the wall-clock duration of one check phase
	// (0 = unlimited). A cascade that exceeds it aborts with an error,
	// which flows through the normal rollback path.
	CheckBudget time.Duration
	// CheckContext, when non-nil, aborts the check phase as soon as the
	// context is done (same rollback path as CheckBudget).
	CheckContext context.Context
	// Resolve is the conflict resolution method.
	Resolve ConflictResolver

	rules       map[string]*Rule
	activations map[string]*Activation
	sharedViews []*objectlog.Def
	sharedNames map[string]bool

	// lazyAnalysis disables the eager definition-time static analysis
	// of rule conditions and shared views, restoring the historical
	// behavior where defects surface at activation or commit time.
	lazyAnalysis bool
	// analyzerOpts is extra analyzer context supplied by the embedding
	// session (typically the schema catalog).
	analyzerOpts []analyze.Option

	net      *propnet.Network
	netDirty bool
	// pending holds physical events observed while the network was dirty.
	// OnEvent runs under the store's write lock (emit → txn observe), and
	// a rebuild there would re-run the Δ-effect analysis — which reads
	// store capabilities and extents and so self-deadlocks on that lock.
	// Dirty-network events are buffered here and folded into the base
	// Δ-sets by the next ensureNet at a safe point (a toggle, activation,
	// or the check phase, none of which hold the store lock).
	pending  []storage.Event
	diffOpts diff.Options
	inj      *faultinject.Injector
	// maintainer is the counting/hybrid maintenance subsystem (nil until
	// SetCounting or SetHybrid first enables it). It outlives network
	// rebuilds: derivation counts and chooser cost history survive
	// redefinitions that don't change a view.
	maintainer *maint.Maintainer
	// staticPruning enables the whole-network Δ-effect analysis on every
	// rebuilt network (on by default; opt-out for A/B comparison).
	staticPruning bool

	// analysisCache memoizes definition-time analysis per definition
	// name, keyed by the canonical rendering (so an unchanged definition
	// is analyzed once, however many times `create rule` / \lint walk
	// it). analysisRuns counts actual (cache-missing) analyzer runs.
	analysisCache map[string]analysisEntry
	analysisRuns  int64

	// stats, when non-nil (EnableAdaptiveStats), is the observed
	// workload statistics table shared by every rebuilt network's
	// evaluator — the adaptive join optimizer's memory.
	stats *eval.Stats

	explanations []Explanation
	condSeq      int

	// Observability: obs is the registry + tracer bundle (never nil;
	// NewManager installs a private one, the embedding session replaces
	// it via SetObservability). met backs the Stats view with atomic
	// counters; netMet/evalMet are handed to every rebuilt network.
	obs     *obs.Observability
	met     *Metrics
	netMet  *propnet.Metrics
	evalMet *eval.Metrics

	// debug remembers the writer passed to SetDebug; the actual output
	// path is a TextSink attached to the tracer (debugDetach removes it).
	debug       io.Writer
	debugDetach func()
}

// SetDebug directs a human-readable check-phase trace to w (nil
// disables it). The trace is produced by the structured tracing API:
// each debug line is an instant event in the "rules.debug" category and
// w receives exactly those events through a filtering text sink — a
// Chrome trace exporter attached to the same tracer sees them too.
func (m *Manager) SetDebug(w io.Writer) {
	if m.debugDetach != nil {
		m.debugDetach()
		m.debugDetach = nil
	}
	m.debug = w
	if w != nil {
		m.debugDetach = m.obs.Tracer.Attach(obs.NewTextSink(w, "rules.debug"))
	}
}

// SetInjector installs a fault injector on the check-phase paths and on
// the live propagation network (nil disables injection).
func (m *Manager) SetInjector(inj *faultinject.Injector) {
	m.inj = inj
	if m.net != nil {
		m.net.SetInjector(inj)
	}
}

func (m *Manager) debugf(format string, args ...any) {
	if m.obs.Tracer.Enabled() {
		m.obs.Tracer.Instant("rules.debug", "debug", obs.Str("msg", fmt.Sprintf(format, args...)))
	}
}

// NewManager creates a rule manager in the given monitoring mode.
func NewManager(store *storage.Store, mode Mode) *Manager {
	m := &Manager{
		store:         store,
		prog:          objectlog.NewProgram(),
		mode:          mode,
		HybridRatio:   0.5,
		MaxRounds:     100,
		rules:         map[string]*Rule{},
		activations:   map[string]*Activation{},
		sharedNames:   map[string]bool{},
		diffOpts:      diff.DefaultOptions(),
		netDirty:      true,
		staticPruning: true,
		analysisCache: map[string]analysisEntry{},
	}
	m.Resolve = defaultResolver
	m.SetObservability(obs.New())
	return m
}

func defaultResolver(cands []*Activation) *Activation {
	best := cands[0]
	for _, c := range cands[1:] {
		if c.Rule.Priority > best.Rule.Priority ||
			(c.Rule.Priority == best.Rule.Priority && c.Key < best.Key) {
			best = c
		}
	}
	return best
}

// Mode returns the monitoring mode.
func (m *Manager) Mode() Mode { return m.mode }

// SetMonitorDeletions controls whether negative partial differentials
// are generated and propagated. The default (true) gives exact
// net-change semantics: a condition that becomes true and then false
// again within one check phase is withdrawn. Disabling matches the
// configuration of the paper's §6 benchmark, which monitored
// insertions only ("often the rule condition depends only on positive
// changes", §4.4): half the differentials run, at the price that a
// trigger set in one round is not withdrawn by a later negative change
// in the same check phase. The network is rebuilt on change.
func (m *Manager) SetMonitorDeletions(on bool) {
	if m.diffOpts.Negative == on {
		return
	}
	m.diffOpts.Negative = on
	m.netDirty = true
}

// SetStaticPruning controls whether rebuilt networks run the
// whole-network Δ-effect analysis and drop provably zero-effect
// differentials from scheduling (default on). The network is rebuilt
// on change.
func (m *Manager) SetStaticPruning(on bool) {
	if m.staticPruning == on {
		return
	}
	m.staticPruning = on
	m.netDirty = true
}

// StaticPruning reports whether static differential pruning is enabled.
func (m *Manager) StaticPruning() bool { return m.staticPruning }

// ensureMaintainer lazily creates the maintenance subsystem (with both
// features off) and binds it to the manager's observability bundle.
func (m *Manager) ensureMaintainer() *maint.Maintainer {
	if m.maintainer == nil {
		cfg := maint.DefaultConfig()
		cfg.Counting, cfg.Hybrid = false, false
		m.maintainer = maint.New(cfg)
		m.maintainer.SetMetrics(maint.NewMetrics(m.obs.Registry))
		m.maintainer.SetBus(m.obs.Bus)
		m.maintainer.SetRecorder(m.obs.Flight)
	}
	return m.maintainer
}

// SetCounting enables or disables counting maintenance: differenced
// views carry a per-derived-tuple derivation count, so a deletion
// decrements support and retracts the tuple only at count zero — no
// recomputation of the defining condition and no §7.2 verification on
// deletes. Counting needs both differencing signs; with deletion
// monitoring off it compiles but stays inactive. The network is rebuilt
// on change (counting differentials are compiled at Finalize).
func (m *Manager) SetCounting(on bool) {
	if m.Counting() == on {
		return
	}
	m.ensureMaintainer().SetCounting(on)
	m.netDirty = true
}

// Counting reports whether counting maintenance is enabled.
func (m *Manager) Counting() bool { return m.maintainer.Counting() }

// SetHybrid enables or disables the cost-based hybrid propagation mode:
// a per-view, per-wave chooser that routes propagation through either
// partial differentials or naive full recomputation, whichever the
// observed cost EWMAs predict is cheaper (§8), with hysteresis. This is
// orthogonal to the manager-level Mode (Incremental/Naive/Hybrid),
// which picks the check-phase derivation scheme per activation; the
// maintainer's chooser acts inside the propagation network per view.
func (m *Manager) SetHybrid(on bool) {
	if m.Hybrid() == on {
		return
	}
	m.ensureMaintainer().SetHybrid(on)
	m.netDirty = true
}

// Hybrid reports whether cost-based hybrid propagation is enabled.
func (m *Manager) Hybrid() bool { return m.maintainer.Hybrid() }

// Maintainer returns the maintenance subsystem (nil until SetCounting
// or SetHybrid first enables it).
func (m *Manager) Maintainer() *maint.Maintainer { return m.maintainer }

// HybridReport writes the maintenance subsystem's state — per-view
// strategies, count-store sizes, cost EWMAs and the recent decision
// journal (the shell's \hybrid report).
func (m *Manager) HybridReport(w io.Writer) error {
	return m.maintainer.WriteReport(w)
}

// StrategyOf labels a view's current maintenance strategy for the
// profiler report ("count", "incr", "recomp"; empty means the default
// incremental scheme with no maintainer involvement).
func (m *Manager) StrategyOf(view string) string {
	return m.maintainer.StrategyLabel(view)
}

// DeclareCapability restricts the admitted change kinds of a base
// relation (enforced by the store) and rebuilds the network so the
// static analysis can prune differentials the restriction makes
// impossible.
func (m *Manager) DeclareCapability(rel string, cap storage.Capability) error {
	if err := m.store.DeclareCapability(rel, cap); err != nil {
		return err
	}
	m.netDirty = true
	return nil
}

// Program returns the derived-predicate program (shared with the AMOSQL
// compiler, which registers derived function definitions here).
func (m *Manager) Program() *objectlog.Program { return m.prog }

// SetLazyAnalysis controls whether definition-time static analysis is
// skipped (true restores the historical lazy path, where defects
// surface at activation or commit time).
func (m *Manager) SetLazyAnalysis(lazy bool) { m.lazyAnalysis = lazy }

// LazyAnalysis reports whether definition-time analysis is disabled.
func (m *Manager) LazyAnalysis() bool { return m.lazyAnalysis }

// SetAnalyzerOptions supplies extra context for definition-time
// analysis (typically analyze.WithCatalog from the embedding session).
func (m *Manager) SetAnalyzerOptions(opts ...analyze.Option) {
	m.analyzerOpts = opts
}

// Analyzer returns a static analyzer over the manager's program and
// the store's base relations, plus any options set with
// SetAnalyzerOptions.
func (m *Manager) Analyzer() *analyze.Analyzer {
	opts := []analyze.Option{analyze.WithRelations(func(name string) (int, bool) {
		rel, ok := m.store.Relation(name)
		if !ok {
			return 0, false
		}
		return rel.Arity(), true
	})}
	opts = append(opts, m.analyzerOpts...)
	return analyze.New(m.prog, opts...)
}

// analysisEntry is one memoized definition analysis.
type analysisEntry struct {
	canon     string // canonical rendering of the analyzed definition
	numParams int
	rule      bool
	rep       analyze.Report
}

// AnalyzeRuleDef analyzes a rule condition definition through the
// per-definition cache: an unchanged definition (same name, same
// canonical rendering, same parameter count) reuses the memoized
// report instead of re-running the analyzer.
func (m *Manager) AnalyzeRuleDef(def *objectlog.Def, numParams int) analyze.Report {
	return m.analyzeCached(def, numParams, true)
}

// AnalyzeViewDef analyzes a view definition through the per-definition
// cache.
func (m *Manager) AnalyzeViewDef(def *objectlog.Def) analyze.Report {
	return m.analyzeCached(def, 0, false)
}

func (m *Manager) analyzeCached(def *objectlog.Def, numParams int, rule bool) analyze.Report {
	canon := objectlog.CanonicalDef(def)
	if e, ok := m.analysisCache[def.Name]; ok &&
		e.canon == canon && e.numParams == numParams && e.rule == rule {
		return e.rep
	}
	m.analysisRuns++
	var rep analyze.Report
	if rule {
		rep = m.Analyzer().AnalyzeRule(def, numParams)
	} else {
		rep = m.Analyzer().AnalyzeDef(def)
	}
	m.analysisCache[def.Name] = analysisEntry{canon: canon, numParams: numParams, rule: rule, rep: rep}
	return rep
}

// AnalysisRuns returns how many definition analyses actually ran (cache
// misses) over the manager's lifetime.
func (m *Manager) AnalysisRuns() int64 { return m.analysisRuns }

// InvalidateAnalysis drops every memoized definition analysis. The
// embedding session calls this after schema changes (new types,
// functions, relations): a verdict like "unknown predicate" can flip
// when the context grows, so cached reports are only valid within one
// schema epoch.
func (m *Manager) InvalidateAnalysis() {
	m.analysisCache = map[string]analysisEntry{}
}

// AnalyzeNetwork runs the whole-network Δ-effect analysis (the OL3xx
// diagnostics) over every derived definition currently in the program,
// using the store's declared base-relation capabilities — the \lint
// view of what a rebuilt propagation network would prune. It is not
// cached: the verdicts depend on the whole program and the capability
// declarations, not on any single definition.
func (m *Manager) AnalyzeNetwork() *analyze.NetResult {
	var views []*objectlog.Def
	for _, name := range m.prog.Names() {
		if d, ok := m.prog.Def(name); ok {
			views = append(views, d)
		}
	}
	return m.Analyzer().AnalyzeNet(views, func(name string) analyze.Cap {
		return analyze.Cap(m.store.Capability(name))
	}, m.diffOpts)
}

// RuleNames returns the defined rule names, sorted.
func (m *Manager) RuleNames() []string {
	out := make([]string, 0, len(m.rules))
	for n := range m.rules {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DefineRule registers a rule. The condition definition is validated
// and kept unexpanded; expansion happens per activation.
func (m *Manager) DefineRule(r *Rule) error {
	if r.Name == "" {
		return fmt.Errorf("rule must be named")
	}
	if _, ok := m.rules[r.Name]; ok {
		return fmt.Errorf("rule %q already exists", r.Name)
	}
	if r.CondDef == nil || len(r.CondDef.Clauses) == 0 {
		return fmt.Errorf("rule %q has no condition", r.Name)
	}
	if r.NumParams < 0 || r.NumParams > r.CondDef.Arity {
		return fmt.Errorf("rule %q: NumParams %d out of range for condition arity %d", r.Name, r.NumParams, r.CondDef.Arity)
	}
	if r.Action == nil {
		return fmt.Errorf("rule %q has no action", r.Name)
	}
	if !m.lazyAnalysis {
		if err := m.AnalyzeRuleDef(r.CondDef, r.NumParams).Err(); err != nil {
			return fmt.Errorf("rule %q: %w", r.Name, err)
		}
	}
	m.rules[r.Name] = r
	return nil
}

// Rule looks up a rule.
func (m *Manager) Rule(name string) (*Rule, bool) {
	r, ok := m.rules[name]
	return r, ok
}

// ShareView registers a derived view as a shared intermediate node
// (§7.1 node sharing): conditions referencing it are not expanded
// through it, and its changes are propagated once for all consumers.
func (m *Manager) ShareView(def *objectlog.Def) error {
	if m.sharedNames[def.Name] {
		return fmt.Errorf("view %q already shared", def.Name)
	}
	if m.lazyAnalysis {
		for _, c := range def.Clauses {
			if err := objectlog.CheckSafe(c); err != nil {
				return fmt.Errorf("view %s: %w", def.Name, err)
			}
		}
	} else if err := m.AnalyzeViewDef(def).Err(); err != nil {
		return fmt.Errorf("view %s: %w", def.Name, err)
	}
	m.sharedViews = append(m.sharedViews, def)
	m.sharedNames[def.Name] = true
	m.netDirty = true
	return nil
}

// Activate activates a rule for the given parameter values and returns
// the activation key.
func (m *Manager) Activate(ruleName string, args ...types.Value) (string, error) {
	r, ok := m.rules[ruleName]
	if !ok {
		return "", fmt.Errorf("rule %q does not exist", ruleName)
	}
	if len(args) != r.NumParams {
		return "", fmt.Errorf("rule %q takes %d parameters, got %d", ruleName, r.NumParams, len(args))
	}
	key := ActivationKey(ruleName, args)
	if _, ok := m.activations[key]; ok {
		return "", fmt.Errorf("rule %q already activated for %v", ruleName, args)
	}
	m.condSeq++
	condName := fmt.Sprintf("cnd_%s#%d", ruleName, m.condSeq)
	def, err := m.specialize(r, condName, args)
	if err != nil {
		return "", err
	}
	a := &Activation{
		Key:      key,
		Rule:     r,
		Args:     args,
		CondName: condName,
		Def:      def,
		trigger:  delta.New(),
	}
	m.activations[key] = a
	m.netDirty = true
	if err := m.ensureNet(); err != nil {
		delete(m.activations, key)
		m.netDirty = true
		return "", err
	}
	if m.mode == Naive {
		ext, err := m.net.Evaluator().EvalPred(condName, false)
		if err != nil {
			delete(m.activations, key)
			m.netDirty = true
			return "", err
		}
		a.prevTrue = ext
	}
	m.met.Activations.Inc()
	return key, nil
}

// ActivationKey renders the canonical activation key for a rule and
// its parameter values, e.g. "watch(2)".
func ActivationKey(rule string, args []types.Value) string {
	if len(args) == 0 {
		return rule
	}
	parts := make([]string, len(args))
	for i, v := range args {
		parts[i] = v.String()
	}
	return rule + "(" + strings.Join(parts, ",") + ")"
}

// Deactivate removes a rule activation by key (as returned by Activate)
// or by bare rule name for parameterless activations.
func (m *Manager) Deactivate(key string) error {
	if _, ok := m.activations[key]; !ok {
		return fmt.Errorf("no activation %q", key)
	}
	delete(m.activations, key)
	m.netDirty = true
	return m.ensureNet()
}

// Activations returns the activation keys, sorted.
func (m *Manager) Activations() []string {
	out := make([]string, 0, len(m.activations))
	for k := range m.activations {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// specialize binds the rule parameters in the condition definition
// (substituting the activation arguments as constants, but keeping the
// parameter positions in the head so action instances carry them),
// renames the head to condName, and expands derived functions (stopping
// at shared views).
func (m *Manager) specialize(r *Rule, condName string, args []types.Value) (*objectlog.Def, error) {
	arity := r.CondDef.Arity
	var clauses []objectlog.Clause
	counter := 0
	for _, c := range r.CondDef.Clauses {
		cc := c.RenameApart(&counter)
		sub := map[string]objectlog.Term{}
		var extra []objectlog.Literal
		newHead := objectlog.Literal{Pred: condName}
		for i, ha := range cc.Head.Args {
			if i < r.NumParams {
				av := objectlog.C(args[i])
				if ha.IsVar {
					if prev, ok := sub[ha.Var]; ok {
						extra = append(extra, objectlog.Lit(objectlog.BuiltinEQ, prev, av))
					} else {
						sub[ha.Var] = av
					}
				} else if !ha.Const.Equal(args[i]) {
					// Statically false disjunct for these parameters.
					goto skip
				}
				newHead.Args = append(newHead.Args, av)
				continue
			}
			newHead.Args = append(newHead.Args, ha)
		}
		{
			body := make([]objectlog.Literal, 0, len(cc.Body)+len(extra))
			for _, l := range cc.Body {
				body = append(body, l.Substitute(sub))
			}
			body = append(body, extra...)
			nc := objectlog.Clause{Head: newHead.Substitute(sub), Body: body}
			expanded, err := objectlog.Expand(nc, m.prog, m.sharedNames)
			if err != nil {
				return nil, fmt.Errorf("rule %s: %w", r.Name, err)
			}
			// Static simplification: folds the eq-literals expansion
			// introduces and prunes statically empty disjuncts.
			for _, ec := range expanded {
				if sc, ok := objectlog.Simplify(ec); ok {
					clauses = append(clauses, sc)
				}
			}
		}
	skip:
	}
	if len(clauses) == 0 {
		return nil, fmt.Errorf("rule %s: condition is statically empty for arguments %v", r.Name, args)
	}
	def := &objectlog.Def{Name: condName, Arity: arity, Clauses: clauses}
	for _, c := range def.Clauses {
		if err := objectlog.CheckSafe(c); err != nil {
			return nil, fmt.Errorf("rule %s: %w", r.Name, err)
		}
	}
	return def, nil
}

// ensureNet (re)builds the propagation network, migrating any base
// Δ-sets accumulated in the old network.
func (m *Manager) ensureNet() error {
	if !m.netDirty && m.net != nil {
		return nil
	}
	old := m.net
	net := propnet.New(m.store, m.prog, m.diffOpts)
	net.SetStaticPruning(m.staticPruning)
	net.SetInjector(m.inj)
	net.SetObs(m.netMet, m.obs.Tracer)
	net.SetProfiler(m.obs.Profiler)
	net.SetBus(m.obs.Bus)
	net.SetRecorder(m.obs.Flight)
	net.SetMaintainer(m.maintainer)
	net.Evaluator().SetMetrics(m.evalMet)
	net.Evaluator().SetStats(m.stats)
	for _, sv := range m.sharedViews {
		if m.sharedViewUsed(sv.Name) {
			if err := net.AddView(sv, false); err != nil {
				return err
			}
		}
	}
	for _, a := range sortedActivations(m.activations) {
		if err := net.AddView(a.Def, true); err != nil {
			return err
		}
	}
	if err := net.Finalize(); err != nil {
		return err
	}
	if old != nil {
		for _, pred := range old.ChangedBase() {
			if d := net.BaseDelta(pred); d != nil {
				d.UnionInto(old.BaseDelta(pred))
			}
		}
		net.AdoptCounters(old)
	}
	m.net = net
	m.netDirty = false
	// Fold in events that arrived while the network was dirty (OnEvent
	// cannot rebuild under the store lock, so it buffers them instead).
	for _, e := range m.pending {
		m.fold(e)
	}
	m.pending = m.pending[:0]
	return nil
}

// sharedViewUsed reports whether any activation references the shared
// view (directly or through other shared views).
func (m *Manager) sharedViewUsed(name string) bool {
	var refs func(def *objectlog.Def, seen map[string]bool) bool
	refs = func(def *objectlog.Def, seen map[string]bool) bool {
		for _, infl := range def.Influents() {
			if infl == name {
				return true
			}
			if seen[infl] {
				continue
			}
			seen[infl] = true
			if d, ok := m.prog.Def(infl); ok && m.sharedNames[infl] {
				if refs(d, seen) {
					return true
				}
			}
		}
		return false
	}
	for _, a := range m.activations {
		if refs(a.Def, map[string]bool{}) {
			return true
		}
	}
	return false
}

func sortedActivations(m map[string]*Activation) []*Activation {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Activation, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}

// OnEvent folds a physical update event into the network's base Δ-sets.
// It never rebuilds the network: it is called with the store's write
// lock held, and a rebuild runs the Δ-effect analysis, which reads
// store capabilities — a self-deadlock. While the network is dirty (a
// runtime toggle such as SetCounting/SetHybrid/SetStaticPruning, a
// capability declaration, or a late shared-view definition), events are
// buffered and folded in by the next safe rebuild.
func (m *Manager) OnEvent(e storage.Event) {
	if len(m.activations) == 0 {
		return
	}
	if m.netDirty || m.net == nil {
		m.pending = append(m.pending, e)
		return
	}
	m.fold(e)
}

// fold applies one physical event to the live network's base Δ-sets.
// Relations that influence no activated rule have no Δ-set, so
// unmonitored updates carry no overhead (§1).
func (m *Manager) fold(e storage.Event) {
	d := m.net.BaseDelta(e.Relation)
	if d == nil {
		return
	}
	if e.Kind == storage.InsertEvent {
		d.Insert(e.Tuple)
	} else {
		d.Delete(e.Tuple)
	}
}

// OnEnd discards all monitor state at transaction end. The maintenance
// subsystem closes its undo journal first: on abort every derivation
// count, reseed and dirty flag touched this transaction is restored to
// its pre-transaction value.
func (m *Manager) OnEnd(committed bool) {
	m.maintainer.OnEnd(committed)
	m.pending = m.pending[:0]
	if m.net == nil {
		return
	}
	m.net.ClearBase()
	for _, a := range m.activations {
		a.trigger.Clear()
	}
}

// CheckInvariants verifies monitor-level invariants: the propagation
// network's structure and, with quiescent set (no transaction active),
// that no base Δ-set, wave-front Δ-set or pending trigger set survived
// the last check phase — leftovers would surface as phantom changes in
// the next transaction.
func (m *Manager) CheckInvariants(quiescent bool) error {
	if m.net == nil {
		return nil
	}
	if err := m.net.CheckInvariants(quiescent); err != nil {
		return err
	}
	if quiescent {
		for _, a := range sortedActivations(m.activations) {
			if !a.trigger.IsEmpty() {
				return fmt.Errorf("activation %s holds a pending trigger set outside the check phase: %s", a.Key, a.trigger)
			}
		}
		if len(m.pending) > 0 {
			return fmt.Errorf("%d buffered event(s) survived transaction end", len(m.pending))
		}
	}
	return nil
}

// Stats returns cumulative monitor statistics. It is a compatibility
// view computed from the atomic metrics registry, so it is safe to call
// from another goroutine while a check phase runs (each field is an
// atomic load; the struct as a whole is a consistent-enough snapshot
// for monitoring, not a linearizable one).
func (m *Manager) Stats() Stats {
	return Stats{
		Propagations:          int(m.met.Propagations.Value()),
		DifferentialsExecuted: int(m.met.Differentials.Value()),
		NaiveRecomputations:   int(m.met.NaiveRecomputations.Value()),
		TriggeredInstances:    int(m.met.Triggered.Value()),
		ActionsExecuted:       int(m.met.Actions.Value()),
		CheckRounds:           int(m.met.CheckRounds.Value()),
	}
}

// ResetStats zeroes the statistics counters (the benchmark harness
// isolates measurements with this).
func (m *Manager) ResetStats() {
	m.met.Propagations.Reset()
	m.met.Differentials.Reset()
	m.met.NaiveRecomputations.Reset()
	m.met.Triggered.Reset()
	m.met.Actions.Reset()
	m.met.CheckRounds.Reset()
}

// LastExplanations returns the explanations recorded during the most
// recent check phase.
func (m *Manager) LastExplanations() []Explanation { return m.explanations }

// Network returns the live propagation network (for inspection and
// tests). It may be nil before the first activation.
func (m *Manager) Network() *propnet.Network {
	m.ensureNet()
	return m.net
}

// ActivationInfo describes one activation for inspection (the explain
// statement).
type ActivationInfo struct {
	Key      string
	CondName string
	// Def is the specialized, expanded condition definition.
	Def *objectlog.Def
	// Differentials are the partial differentials the network executes
	// for this condition (empty for aggregate/recursive conditions,
	// which are re-evaluated).
	Differentials []diff.Differential
}

// ActivationsOf returns inspection records for every activation of the
// named rule, sorted by key.
func (m *Manager) ActivationsOf(rule string) []ActivationInfo {
	var out []ActivationInfo
	for _, a := range sortedActivations(m.activations) {
		if a.Rule.Name != rule {
			continue
		}
		info := ActivationInfo{Key: a.Key, CondName: a.CondName, Def: a.Def}
		if ds, err := diff.Generate(a.Def, m.diffOpts); err == nil {
			info.Differentials = ds
		}
		out = append(out, info)
	}
	return out
}
