package rules

import (
	"fmt"
	"io"

	"partdiff/internal/eval"
)

// EnableAdaptiveStats switches the manager's join optimizer from the
// static cost model to observed workload statistics: an eval.Stats
// table is installed on the propagation network's evaluator (and handed
// to every rebuilt network, so history survives definition changes).
// Idempotent; returns the live table so the embedding session can share
// it with its ad-hoc query evaluator.
func (m *Manager) EnableAdaptiveStats() *eval.Stats {
	if m.stats == nil {
		m.stats = eval.NewStats()
		if m.net != nil {
			m.net.Evaluator().SetStats(m.stats)
		}
	}
	return m.stats
}

// AdaptiveStats returns the observed-statistics table, nil when the
// static cost model is in use.
func (m *Manager) AdaptiveStats() *eval.Stats { return m.stats }

// ProfileSource maps a propagation-network view node to the name a
// human knows it by: condition functions resolve to their rule's
// activation key, shared views to "shared:<name>", anything else to
// "view:<name>". This is the attribution function handed to the
// profiler's report writer — the network itself only knows node names.
func (m *Manager) ProfileSource(view string) string {
	for _, a := range m.activations {
		if a.CondName == view {
			return a.Key
		}
	}
	if m.sharedNames[view] {
		return "shared:" + view
	}
	return "view:" + view
}

// ProfileReport writes the propagation profiler's report with rule
// attribution (see obs.Profiler.WriteReport for the format). topK <= 0
// means all rows. When the network carries statically pruned
// differentials, a trailing section lists them — they never execute,
// so they can't appear in the profiler's runtime zero-effect counts,
// and the two measurements reconcile: zero-effect work eliminated at
// compile time shows here, what remains shows above.
func (m *Manager) ProfileReport(w io.Writer, topK int) error {
	if err := m.obs.Profiler.WriteReport(w, topK, m.ProfileSource, m.StrategyOf); err != nil {
		return err
	}
	if m.net == nil {
		return nil
	}
	pruned := m.net.PrunedDiffs()
	if len(pruned) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "\nstatically pruned (%d of %d compiled differentials, never executed):\n",
		len(pruned), m.net.CompiledDiffs()); err != nil {
		return err
	}
	for _, p := range pruned {
		if _, err := fmt.Fprintf(w, "  %-12s %s [%s]\n", m.ProfileSource(p.Diff.View), p.Diff.Name(), p.Code); err != nil {
			return err
		}
	}
	return nil
}
