package eval

import (
	"fmt"

	"partdiff/internal/objectlog"
	"partdiff/internal/storage"
	"partdiff/internal/types"
)

// Env resolves predicate references to tuple sources at evaluation time.
// Implementations decide how base relations, type extents, Δ-sets and
// old states are exposed; the evaluator is agnostic.
type Env interface {
	// Source returns a view of pred in the requested state. delta
	// selects Δ+pred / Δ−pred wave-front sets; old selects the logically
	// rolled-back state. delta and old are mutually exclusive.
	Source(pred string, delta objectlog.DeltaKind, old bool) (storage.Source, error)
	// Program returns the derived predicate definitions for subquery
	// evaluation of unexpanded derived literals.
	Program() *objectlog.Program
}

// Evaluator evaluates conjunctive ObjectLog clauses against an Env.
type Evaluator struct {
	env     Env
	counter int // fresh-variable counter for subquery renaming
	// MaxDepth bounds derived-subquery nesting as a recursion backstop.
	MaxDepth int
	// fixpoint overrides predicate extents while a recursive component
	// is being computed bottom-up: references to component members
	// resolve to the current iteration's materialized extents instead
	// of re-entering recursive evaluation.
	fixpoint map[string]*types.Set
	met      *Metrics // never nil; zero-value Metrics when observability is off
	// scanned mirrors met.TuplesScanned as a plain field the propagation
	// profiler can snapshot around a single differential without a
	// registry read. Plain (non-atomic) on purpose: a session's
	// evaluator runs on one goroutine (enforced by the session guard).
	scanned int64
	// stats, when set, feeds and is consulted by the adaptive join
	// optimizer (see literalCost); nil keeps the static cost model.
	stats *Stats
}

// New returns an evaluator over env.
func New(env Env) *Evaluator {
	return &Evaluator{env: env, MaxDepth: 64, met: &Metrics{}}
}

// ScannedTuples returns the cumulative number of tuples this evaluator
// has iterated while matching literals (the same events counted by the
// TuplesScanned meter). The propagation profiler diffs it around each
// differential execution. Must be read from the evaluating goroutine.
func (e *Evaluator) ScannedTuples() int64 { return e.scanned }

// SetStats installs (or, with nil, removes) the observed-statistics
// table: evaluation starts recording observed cardinalities and scan
// volumes into it, and literalCost starts preferring them over its
// static guesses.
func (e *Evaluator) SetStats(s *Stats) { e.stats = s }

// Stats returns the installed observed-statistics table (nil when the
// static cost model is in use).
func (e *Evaluator) Stats() *Stats { return e.stats }

// bindings maps variable names to values with an undo trail.
type bindings struct {
	vals  map[string]types.Value
	trail []string
}

func newBindings() *bindings {
	return &bindings{vals: make(map[string]types.Value)}
}

func (b *bindings) mark() int { return len(b.trail) }

func (b *bindings) undo(mark int) {
	for i := len(b.trail) - 1; i >= mark; i-- {
		delete(b.vals, b.trail[i])
	}
	b.trail = b.trail[:mark]
}

func (b *bindings) bind(v string, val types.Value) {
	b.vals[v] = val
	b.trail = append(b.trail, v)
}

// value resolves a term under the bindings; ok is false for an unbound
// variable.
func (b *bindings) value(t objectlog.Term) (types.Value, bool) {
	if !t.IsVar {
		return t.Const, true
	}
	v, ok := b.vals[t.Var]
	return v, ok
}

// EvalClause evaluates the clause and adds the resulting head tuples to
// out (set semantics).
func (e *Evaluator) EvalClause(c objectlog.Clause, out *types.Set) error {
	return e.EvalClauseSeeded(c, nil, out)
}

// EvalClauseSeeded evaluates the clause with initial variable bindings
// (seed may be nil) and adds head tuples to out.
func (e *Evaluator) EvalClauseSeeded(c objectlog.Clause, seed map[string]types.Value, out *types.Set) error {
	e.met.Clauses.Inc()
	b := newBindings()
	for v, val := range seed {
		b.bind(v, val)
	}
	return e.evalBody(c.Body, b, 0, func() error {
		t := make(types.Tuple, len(c.Head.Args))
		for i, a := range c.Head.Args {
			v, ok := b.value(a)
			if !ok {
				return &objectlog.SafetyError{Var: a.Var, Where: "head", Clause: c.String()}
			}
			t[i] = v
		}
		out.Add(t)
		return nil
	})
}

// EvalClauseBag evaluates the clause under bag semantics: emit is
// called once per complete body solution (derivation) with the
// projected head tuple, without deduplication. Derived sub-literals
// still deduplicate internally (evalDerived's set semantics below the
// top level), so over a stratified program the number of emissions of
// a head tuple t is exactly t's derivation count under this clause —
// the quantity counting maintenance tracks.
func (e *Evaluator) EvalClauseBag(c objectlog.Clause, seed map[string]types.Value, emit func(types.Tuple) error) error {
	e.met.Clauses.Inc()
	b := newBindings()
	for v, val := range seed {
		b.bind(v, val)
	}
	return e.evalBody(c.Body, b, 0, func() error {
		t := make(types.Tuple, len(c.Head.Args))
		for i, a := range c.Head.Args {
			v, ok := b.value(a)
			if !ok {
				return &objectlog.SafetyError{Var: a.Var, Where: "head", Clause: c.String()}
			}
			t[i] = v
		}
		return emit(t)
	})
}

// EvalDefBag enumerates the bag extent of a non-aggregate derived
// definition: every derivation of every clause, one emit per derivation
// (clauses are summed, not deduplicated — the bag union counting
// maintenance seeds from). With old set the definition is evaluated in
// the rolled-back state (rollback is compositional, like EvalPred).
func (e *Evaluator) EvalDefBag(def *objectlog.Def, old bool, emit func(types.Tuple) error) error {
	if def.Aggregate != "" {
		return fmt.Errorf("definition of %s is an aggregate view; it has no bag extent", def.Name)
	}
	for _, c := range def.Clauses {
		cc := c
		if old {
			cc = oldClause(c)
		}
		if err := e.EvalClauseBag(cc, nil, emit); err != nil {
			return err
		}
	}
	return nil
}

// ExtentEstimate estimates a predicate's extent cardinality without
// evaluating it: the observed EWMA cardinality when the adaptive-stats
// table has seen a full enumeration, the structural derivedPrior
// otherwise, and the live source length for base relations. The hybrid
// propagation chooser uses it as the cold-start proxy for the cost of a
// full recomputation.
func (e *Evaluator) ExtentEstimate(pred string) int {
	if e.env.Program().IsDerived(pred) {
		if c, ok := e.stats.PredCard(pred); ok {
			return c
		}
		return e.derivedPrior(pred)
	}
	if src, err := e.env.Source(pred, objectlog.DeltaNone, false); err == nil {
		return src.Len()
	}
	return 10000
}

// EvalPred computes the full extent of a predicate (base or derived)
// in the new or old state — naive evaluation.
func (e *Evaluator) EvalPred(pred string, old bool) (*types.Set, error) {
	out := types.NewSet()
	if def, ok := e.env.Program().Def(pred); ok {
		if def.Aggregate != "" {
			// Aggregate views: evaluate through the call path, which
			// groups and folds.
			args := make([]objectlog.Term, def.ExternalArity())
			for i := range args {
				args[i] = objectlog.V(fmt.Sprintf("_A%d", i))
			}
			head := objectlog.Literal{Pred: "_agg_extent", Args: args}
			body := objectlog.Literal{Pred: pred, Args: args, Old: old}
			if err := e.EvalClause(objectlog.Clause{Head: head, Body: []objectlog.Literal{body}}, out); err != nil {
				return nil, err
			}
			if !old {
				e.stats.RecordPred(pred, out.Len())
			}
			return out, nil
		}
		for _, c := range def.Clauses {
			cc := c
			if old {
				cc = oldClause(c)
			}
			if err := e.EvalClause(cc, out); err != nil {
				return nil, err
			}
		}
		if !old {
			e.stats.RecordPred(pred, out.Len())
		}
		return out, nil
	}
	src, err := e.env.Source(pred, objectlog.DeltaNone, old)
	if err != nil {
		return nil, err
	}
	src.Each(func(t types.Tuple) bool {
		out.Add(t)
		return true
	})
	return out, nil
}

// Derivable reports whether pred(args) holds in the new or old state,
// without computing the full extent.
func (e *Evaluator) Derivable(pred string, args types.Tuple, old bool) (bool, error) {
	lit := objectlog.Literal{Pred: pred, Old: old}
	lit.Args = make([]objectlog.Term, len(args))
	for i, v := range args {
		lit.Args[i] = objectlog.C(v)
	}
	if objectlog.IsBuiltin(pred) {
		lit.Old = false
	}
	found := false
	b := newBindings()
	err := e.evalBody([]objectlog.Literal{lit}, b, 0, func() error {
		found = true
		return errStop
	})
	if err == errStop {
		err = nil
	}
	return found, err
}

// errStop aborts evaluation early (internal sentinel).
var errStop = fmt.Errorf("eval: stop")

// oldClause marks every state-bearing literal of c old (logical rollback
// is compositional: the old state of a view is the view over the old
// states of its influents).
func oldClause(c objectlog.Clause) objectlog.Clause {
	out := objectlog.Clause{Head: c.Head}
	out.Body = make([]objectlog.Literal, len(c.Body))
	for i, l := range c.Body {
		out.Body[i] = l.WithOld()
	}
	return out
}

// evalBody evaluates the remaining body literals under b, calling emit
// for every complete solution. The body is reordered greedily at each
// step: the cheapest *ready* literal runs next.
func (e *Evaluator) evalBody(body []objectlog.Literal, b *bindings, depth int, emit func() error) error {
	if depth > e.MaxDepth {
		return fmt.Errorf("evaluation exceeded max derivation depth %d (recursive view?)", e.MaxDepth)
	}
	if len(body) == 0 {
		return emit()
	}
	idx, err := e.pickNext(body, b)
	if err != nil {
		return err
	}
	lit := body[idx]
	rest := make([]objectlog.Literal, 0, len(body)-1)
	rest = append(rest, body[:idx]...)
	rest = append(rest, body[idx+1:]...)
	cont := func() error { return e.evalBody(rest, b, depth, emit) }

	switch {
	case objectlog.IsBuiltin(lit.Pred):
		return e.evalBuiltin(lit, b, cont)
	case lit.Negated:
		return e.evalNegated(lit, b, depth, cont)
	default:
		return e.evalRelational(lit, b, depth, cont)
	}
}

// pickNext chooses the cheapest ready literal. Ready means: builtins
// and negated literals need their inputs bound; relational literals are
// always ready (worst case a scan).
func (e *Evaluator) pickNext(body []objectlog.Literal, b *bindings) (int, error) {
	best, bestCost := -1, int(1)<<62
	for i, lit := range body {
		c, ready := e.literalCost(lit, b)
		if !ready {
			continue
		}
		if c < bestCost {
			best, bestCost = i, c
		}
	}
	if best < 0 {
		return 0, &objectlog.SafetyError{Where: fmt.Sprintf("%v", body)}
	}
	return best, nil
}

// literalCost estimates the cost of evaluating lit next given the
// current bindings. Lower is better. With an observed-statistics table
// installed (SetStats), two static guesses are replaced by workload
// history: the flat "derived subqueries cost 10000" becomes the
// observed (or structurally estimated, see derivedPrior) extent
// cardinality, and the index-selectivity formula becomes the observed
// scan volume of this exact literal shape. Δ-set costs stay static —
// wave fronts change every round, so history carries no signal.
func (e *Evaluator) literalCost(lit objectlog.Literal, b *bindings) (cost int, ready bool) {
	boundArgs, totalVars := 0, 0
	var mask uint32
	for i, a := range lit.Args {
		if !a.IsVar {
			boundArgs++
			mask |= 1 << uint(i%32)
			continue
		}
		totalVars++
		if _, ok := b.value(a); ok {
			boundArgs++
			mask |= 1 << uint(i%32)
		}
	}
	allBound := boundArgs == len(lit.Args)

	switch {
	case objectlog.IsComparison(lit.Pred):
		if lit.Pred == objectlog.BuiltinEQ {
			// eq can bind one free side.
			if boundArgs >= 1 {
				return 0, true
			}
			return 0, false
		}
		return 0, allBound
	case objectlog.IsArithmetic(lit.Pred):
		// inputs must be bound; output may be free.
		in := 0
		for _, a := range lit.Args[:2] {
			if !a.IsVar {
				in++
			} else if _, ok := b.value(a); ok {
				in++
			}
		}
		return 1, in == 2
	case lit.Negated:
		return 2, allBound
	}
	// Relational literal (base, derived, delta, old, type extent).
	var size int
	derived := lit.Delta == objectlog.DeltaNone && e.env.Program().IsDerived(lit.Pred)
	if derived {
		// Derived subquery: guess moderately expensive — unless the
		// workload has shown otherwise.
		size = 10000
		if e.stats != nil {
			if c, ok := e.stats.PredCard(lit.Pred); ok {
				size = c
			} else {
				size = e.derivedPrior(lit.Pred)
			}
		}
	} else if src, err := e.env.Source(lit.Pred, lit.Delta, lit.Old); err == nil {
		size = src.Len()
	} else {
		size = 1 << 20
	}
	if lit.Delta != objectlog.DeltaNone {
		// Δ-sets are unindexed wave-front materializations: a bound
		// lookup still scans the whole set, so prefer anchoring the
		// evaluation on the Δ-set (scanning it once) over probing it
		// per outer binding.
		switch {
		case allBound:
			return 3, true // hash membership probe
		case boundArgs > 0:
			return 8 + size, true // linear filter per probe
		default:
			return 6 + size, true // anchor scan — cheapest entry point
		}
	}
	switch {
	case allBound:
		return 3, true // membership probe
	case boundArgs > 0:
		if e.stats != nil && !derived {
			// Prefer the observed scan volume of this exact shape
			// (predicate + bound positions) over the blind selectivity
			// formula: a "selective-looking" index probe that in fact
			// matches half the relation gets re-ranked accordingly.
			if s, ok := e.stats.LitScanned(lit.Pred, lit.Delta, mask); ok {
				return 8 + s, true
			}
		}
		return 8 + size/(boundArgs*8+1), true // index lookup estimate
	default:
		return 16 + size*4, true // full scan
	}
}

// derivedPrior estimates a derived predicate's extent before any full
// enumeration has been observed: per clause, the smallest live extent
// among its non-derived relational body literals (a conjunctive clause
// that joins on shared variables rarely yields more head tuples than
// its most selective relation holds), summed over clauses. The point is
// not precision — it is to break the chicken-and-egg of the static
// model: with a flat 10000 the optimizer never anchors on a small
// derived view, so the view is never fully enumerated, so no observed
// cardinality ever replaces the 10000. Clauses with no usable source
// fall back to the static guess.
func (e *Evaluator) derivedPrior(pred string) int {
	def, ok := e.env.Program().Def(pred)
	if !ok {
		return 10000
	}
	total := 0
	for _, c := range def.Clauses {
		best := -1
		for _, l := range c.Body {
			if l.Negated || l.Delta != objectlog.DeltaNone ||
				objectlog.IsBuiltin(l.Pred) || e.env.Program().IsDerived(l.Pred) {
				continue
			}
			src, err := e.env.Source(l.Pred, objectlog.DeltaNone, false)
			if err != nil {
				continue
			}
			if n := src.Len(); best < 0 || n < best {
				best = n
			}
		}
		if best < 0 {
			best = 10000
		}
		total += best
	}
	return total
}

// evalBuiltin evaluates a comparison or arithmetic literal.
func (e *Evaluator) evalBuiltin(lit objectlog.Literal, b *bindings, cont func() error) error {
	if objectlog.IsComparison(lit.Pred) {
		if len(lit.Args) != 2 {
			return fmt.Errorf("builtin %s expects 2 args", lit.Pred)
		}
		av, aok := b.value(lit.Args[0])
		bv, bok := b.value(lit.Args[1])
		if lit.Pred == objectlog.BuiltinEQ && (!aok || !bok) {
			// Binding equality.
			switch {
			case aok && lit.Args[1].IsVar:
				m := b.mark()
				b.bind(lit.Args[1].Var, av)
				err := cont()
				b.undo(m)
				return err
			case bok && lit.Args[0].IsVar:
				m := b.mark()
				b.bind(lit.Args[0].Var, bv)
				err := cont()
				b.undo(m)
				return err
			default:
				return fmt.Errorf("eq with both sides unbound")
			}
		}
		if !aok || !bok {
			return fmt.Errorf("comparison %s on unbound variable", lit)
		}
		neg := lit.Negated
		if cmpHolds(lit.Pred, av, bv) != neg {
			return cont()
		}
		return nil
	}
	// Arithmetic: op(a, b, r).
	if len(lit.Args) != 3 {
		return fmt.Errorf("builtin %s expects 3 args", lit.Pred)
	}
	av, aok := b.value(lit.Args[0])
	bv, bok := b.value(lit.Args[1])
	if !aok || !bok {
		return fmt.Errorf("arithmetic %s on unbound input", lit)
	}
	var res types.Value
	var err error
	switch lit.Pred {
	case objectlog.BuiltinPlus:
		res, err = types.Add(av, bv)
	case objectlog.BuiltinMinus:
		res, err = types.Sub(av, bv)
	case objectlog.BuiltinTimes:
		res, err = types.Mul(av, bv)
	case objectlog.BuiltinDiv:
		res, err = types.Div(av, bv)
	}
	if err != nil {
		// Arithmetic failure (e.g. division by zero) fails the
		// conjunction rather than aborting the query.
		return nil
	}
	rv, rok := b.value(lit.Args[2])
	if rok {
		if rv.Equal(res) != lit.Negated {
			return cont()
		}
		return nil
	}
	if !lit.Args[2].IsVar {
		return nil
	}
	m := b.mark()
	b.bind(lit.Args[2].Var, res)
	err = cont()
	b.undo(m)
	return err
}

func cmpHolds(pred string, a, b types.Value) bool {
	switch pred {
	case objectlog.BuiltinEQ:
		return a.Equal(b)
	case objectlog.BuiltinNE:
		return !a.Equal(b)
	}
	c := a.Compare(b)
	switch pred {
	case objectlog.BuiltinLT:
		return c < 0
	case objectlog.BuiltinLE:
		return c <= 0
	case objectlog.BuiltinGT:
		return c > 0
	case objectlog.BuiltinGE:
		return c >= 0
	}
	return false
}

// evalNegated succeeds iff the positive version of lit has no solution
// under the current (complete) bindings.
func (e *Evaluator) evalNegated(lit objectlog.Literal, b *bindings, depth int, cont func() error) error {
	pos := lit
	pos.Negated = false
	found := false
	err := e.evalRelationalMatch(pos, b, depth, func() error {
		found = true
		return errStop
	})
	if err != nil && err != errStop {
		return err
	}
	if !found {
		return cont()
	}
	return nil
}

// evalRelational evaluates a positive relational literal: a derived
// subquery or a source lookup.
func (e *Evaluator) evalRelational(lit objectlog.Literal, b *bindings, depth int, cont func() error) error {
	return e.evalRelationalMatch(lit, b, depth, cont)
}

func (e *Evaluator) evalRelationalMatch(lit objectlog.Literal, b *bindings, depth int, cont func() error) error {
	if lit.Delta == objectlog.DeltaNone {
		if ext, ok := e.fixpoint[lit.Pred]; ok {
			// Inside a fixpoint iteration: component members resolve to
			// the current materialized extents.
			return e.matchSource(NewSetSource(ext, len(lit.Args)), lit, b, cont)
		}
		if def, ok := e.env.Program().Def(lit.Pred); ok {
			if e.env.Program().IsRecursive(lit.Pred) {
				return e.evalRecursive(lit, b, depth, cont)
			}
			return e.evalDerived(def, lit, b, depth, cont)
		}
	}
	src, err := e.env.Source(lit.Pred, lit.Delta, lit.Old)
	if err != nil {
		return err
	}
	if len(lit.Args) != src.Arity() {
		return fmt.Errorf("literal %s: arity %d, source has %d", lit, len(lit.Args), src.Arity())
	}
	return e.matchSource(src, lit, b, cont)
}

// matchSource unifies the literal's arguments against the tuples of a
// source, binding free variables and invoking cont per match.
func (e *Evaluator) matchSource(src storage.Source, lit objectlog.Literal, b *bindings, cont func() error) error {
	// Resolve bound argument values.
	vals := make([]types.Value, len(lit.Args))
	bound := make([]bool, len(lit.Args))
	allBound := true
	firstBound := -1
	for i, a := range lit.Args {
		if v, ok := b.value(a); ok {
			vals[i], bound[i] = v, true
			if firstBound < 0 {
				firstBound = i
			}
		} else {
			allBound = false
		}
	}
	match := func(t types.Tuple) error {
		m := b.mark()
		local := map[string]int{} // repeated free vars within the literal
		for i, a := range lit.Args {
			if bound[i] {
				if !t[i].Equal(vals[i]) {
					b.undo(m)
					return nil
				}
				continue
			}
			// a is an unbound variable.
			if j, seen := local[a.Var]; seen {
				if !t[i].Equal(t[j]) {
					b.undo(m)
					return nil
				}
				continue
			}
			local[a.Var] = i
			b.bind(a.Var, t[i])
		}
		err := cont()
		b.undo(m)
		return err
	}
	if allBound {
		e.met.AnchorProbe.Inc()
		t := types.Tuple(vals)
		if src.Contains(t) {
			return cont()
		}
		return nil
	}
	var iterErr error
	var scanned int64 // batched into the meter once per literal match
	visit := func(t types.Tuple) bool {
		scanned++
		if err := match(t); err != nil {
			iterErr = err
			return false
		}
		return true
	}
	if firstBound >= 0 {
		e.met.AnchorIndex.Inc()
		src.Lookup(firstBound, vals[firstBound], visit)
	} else {
		e.met.AnchorScan.Inc()
		src.Each(visit)
	}
	e.met.TuplesScanned.Add(scanned)
	e.scanned += scanned
	if e.stats != nil && lit.Delta == objectlog.DeltaNone {
		var mask uint32
		for i, bd := range bound {
			if bd {
				mask |= 1 << uint(i%32)
			}
		}
		e.stats.RecordLiteral(lit.Pred, lit.Delta, mask, scanned)
	}
	return iterErr
}

// evalDerived evaluates a derived literal as a subquery over its
// definition clauses, threading the Old marker down (rollback is
// compositional).
func (e *Evaluator) evalDerived(def *objectlog.Def, call objectlog.Literal, b *bindings, depth int, cont func() error) error {
	if depth > e.MaxDepth {
		return fmt.Errorf("evaluation exceeded max derivation depth %d (recursive view?)", e.MaxDepth)
	}
	if def.Aggregate != "" {
		return e.evalAggregate(def, call, b, depth, cont)
	}
	if len(call.Args) != def.Arity {
		return fmt.Errorf("call %s: arity %d, defined %d", call, len(call.Args), def.Arity)
	}
	// Deduplicate result tuples across clauses (set semantics).
	seen := types.NewSet()
	// An unbound, new-state call enumerates the full extent: that makes
	// seen the predicate's observed cardinality when the loop finishes.
	unboundCall := e.stats != nil && !call.Old
	for _, ca := range call.Args {
		if _, ok := b.value(ca); ok {
			unboundCall = false
			break
		}
	}
	for _, dc := range def.Clauses {
		fresh := dc.RenameApart(&e.counter)
		if call.Old {
			fresh = oldClause(fresh)
		}
		// Seed head bindings from bound call args; collect result slots.
		sub := newBindings()
		okClause := true
		for i, ha := range fresh.Head.Args {
			cv, bok := b.value(call.Args[i])
			switch {
			case ha.IsVar:
				if prev, dup := sub.value(objectlog.V(ha.Var)); dup {
					if bok && !prev.Equal(cv) {
						okClause = false
					}
					continue
				}
				if bok {
					sub.bind(ha.Var, cv)
				}
			default:
				if bok && !ha.Const.Equal(cv) {
					okClause = false
				}
			}
			if !okClause {
				break
			}
		}
		if !okClause {
			continue
		}
		err := e.evalBody(fresh.Body, sub, depth+1, func() error {
			t := make(types.Tuple, def.Arity)
			for i, ha := range fresh.Head.Args {
				v, ok := sub.value(ha)
				if !ok {
					return fmt.Errorf("derived head var %s unbound in %s", ha.Var, fresh)
				}
				t[i] = v
			}
			if !seen.Add(t) {
				return nil // duplicate result
			}
			// Bind the caller's free args to the result tuple.
			m := b.mark()
			local := map[string]int{}
			for i, ca := range call.Args {
				if v, ok := b.value(ca); ok {
					if !t[i].Equal(v) {
						b.undo(m)
						return nil
					}
					continue
				}
				if j, dup := local[ca.Var]; dup {
					if !t[i].Equal(t[j]) {
						b.undo(m)
						return nil
					}
					continue
				}
				local[ca.Var] = i
				b.bind(ca.Var, t[i])
			}
			err := cont()
			b.undo(m)
			return err
		})
		if err != nil {
			return err
		}
	}
	if unboundCall {
		e.stats.RecordPred(def.Name, seen.Len())
	}
	return nil
}
