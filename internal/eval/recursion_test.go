package eval

import (
	"testing"

	"partdiff/internal/delta"
	"partdiff/internal/objectlog"
	"partdiff/internal/types"
)

// pathEnv builds edge(1,2),(2,3),(4,5) and the classic transitive
// closure:
//
//	path(X,Y) ← edge(X,Y)
//	path(X,Z) ← edge(X,Y) ∧ path(Y,Z)
func pathEnv(t *testing.T) *testEnv {
	t.Helper()
	env := newTestEnv()
	env.store.CreateRelation("edge", 2, nil)
	env.mustInsert(t, "edge", 1, 2)
	env.mustInsert(t, "edge", 2, 3)
	env.mustInsert(t, "edge", 4, 5)
	env.prog.Define(&objectlog.Def{Name: "path", Arity: 2, Clauses: []objectlog.Clause{
		objectlog.NewClause(objectlog.Lit("path", objectlog.V("X"), objectlog.V("Y")),
			objectlog.Lit("edge", objectlog.V("X"), objectlog.V("Y"))),
		objectlog.NewClause(objectlog.Lit("path", objectlog.V("X"), objectlog.V("Z")),
			objectlog.Lit("edge", objectlog.V("X"), objectlog.V("Y")),
			objectlog.Lit("path", objectlog.V("Y"), objectlog.V("Z"))),
	}})
	return env
}

func TestRecursiveTransitiveClosure(t *testing.T) {
	env := pathEnv(t)
	ext, err := New(env).EvalPred("path", false)
	if err != nil {
		t.Fatal(err)
	}
	want := types.NewSet(tup(1, 2), tup(2, 3), tup(1, 3), tup(4, 5))
	if !ext.Equal(want) {
		t.Errorf("path = %s, want %s", ext, want)
	}
}

func TestRecursiveBoundCall(t *testing.T) {
	env := pathEnv(t)
	ev := New(env)
	// h(Y) ← path(1, Y)
	c := objectlog.NewClause(objectlog.Lit("h", objectlog.V("Y")),
		objectlog.Lit("path", objectlog.CInt(1), objectlog.V("Y")))
	out := types.NewSet()
	if err := ev.EvalClause(c, out); err != nil {
		t.Fatal(err)
	}
	if !out.Equal(types.NewSet(tup(2), tup(3))) {
		t.Errorf("path(1,_) = %s", out)
	}
	ok, err := ev.Derivable("path", tup(1, 3), false)
	if err != nil || !ok {
		t.Errorf("path(1,3): %v %v", ok, err)
	}
	ok, _ = ev.Derivable("path", tup(1, 5), false)
	if ok {
		t.Error("path(1,5) should not hold")
	}
}

func TestRecursiveCycleInData(t *testing.T) {
	// A cyclic graph must still converge (fixpoint over a finite
	// domain).
	env := pathEnv(t)
	env.mustInsert(t, "edge", 3, 1)
	ext, err := New(env).EvalPred("path", false)
	if err != nil {
		t.Fatal(err)
	}
	// 1,2,3 fully connected among themselves (9 pairs) + (4,5).
	if ext.Len() != 10 {
		t.Errorf("path has %d tuples: %s", ext.Len(), ext)
	}
	if !ext.Contains(tup(1, 1)) || !ext.Contains(tup(3, 2)) {
		t.Errorf("path = %s", ext)
	}
}

func TestRecursiveOldState(t *testing.T) {
	env := pathEnv(t)
	d := delta.New()
	env.deltas["edge"] = d
	// Transaction: delete edge (2,3).
	env.store.Delete("edge", tup(2, 3))
	d.Delete(tup(2, 3))

	ev := New(env)
	newExt, err := ev.EvalPred("path", false)
	if err != nil {
		t.Fatal(err)
	}
	oldExt, err := ev.EvalPred("path", true)
	if err != nil {
		t.Fatal(err)
	}
	if newExt.Contains(tup(1, 3)) || !oldExt.Contains(tup(1, 3)) {
		t.Errorf("new=%s old=%s", newExt, oldExt)
	}
}

func TestMutualRecursion(t *testing.T) {
	env := newTestEnv()
	env.store.CreateRelation("succ", 2, nil)
	for i := int64(0); i < 6; i++ {
		env.mustInsert(t, "succ", i, i+1)
	}
	// even(0); even(Y) ← odd(X) ∧ succ(X,Y)
	// odd(Y) ← even(X) ∧ succ(X,Y)
	env.prog.Define(&objectlog.Def{Name: "even", Arity: 1, Clauses: []objectlog.Clause{
		objectlog.NewClause(objectlog.Lit("even", objectlog.CInt(0))),
		objectlog.NewClause(objectlog.Lit("even", objectlog.V("Y")),
			objectlog.Lit("odd", objectlog.V("X")),
			objectlog.Lit("succ", objectlog.V("X"), objectlog.V("Y"))),
	}})
	env.prog.Define(&objectlog.Def{Name: "odd", Arity: 1, Clauses: []objectlog.Clause{
		objectlog.NewClause(objectlog.Lit("odd", objectlog.V("Y")),
			objectlog.Lit("even", objectlog.V("X")),
			objectlog.Lit("succ", objectlog.V("X"), objectlog.V("Y"))),
	}})
	ev := New(env)
	even, err := ev.EvalPred("even", false)
	if err != nil {
		t.Fatal(err)
	}
	if !even.Equal(types.NewSet(tup(0), tup(2), tup(4), tup(6))) {
		t.Errorf("even = %s", even)
	}
	odd, _ := ev.EvalPred("odd", false)
	if !odd.Equal(types.NewSet(tup(1), tup(3), tup(5))) {
		t.Errorf("odd = %s", odd)
	}
}

func TestUnstratifiedNegationRejected(t *testing.T) {
	env := newTestEnv()
	env.store.CreateRelation("b", 1, nil)
	env.mustInsert(t, "b", 1)
	// p(X) ← b(X) ∧ ¬p(X): unstratified.
	env.prog.Define(&objectlog.Def{Name: "p", Arity: 1, Clauses: []objectlog.Clause{
		objectlog.NewClause(objectlog.Lit("p", objectlog.V("X")),
			objectlog.Lit("b", objectlog.V("X")),
			objectlog.NotLit("p", objectlog.V("X"))),
	}})
	if _, err := New(env).EvalPred("p", false); err == nil {
		t.Error("unstratified negation accepted")
	}
}

func TestRecursionInsideLargerQuery(t *testing.T) {
	// path used as one literal among others, with a comparison.
	env := pathEnv(t)
	c := objectlog.NewClause(objectlog.Lit("h", objectlog.V("X"), objectlog.V("Y")),
		objectlog.Lit("path", objectlog.V("X"), objectlog.V("Y")),
		objectlog.Lit(objectlog.BuiltinLT, objectlog.V("X"), objectlog.CInt(2)))
	out := types.NewSet()
	if err := New(env).EvalClause(c, out); err != nil {
		t.Fatal(err)
	}
	if !out.Equal(types.NewSet(tup(1, 2), tup(1, 3))) {
		t.Errorf("h = %s", out)
	}
}
