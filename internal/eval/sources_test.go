package eval

import (
	"testing"

	"partdiff/internal/delta"
	"partdiff/internal/storage"
	"partdiff/internal/types"
)

// TestRolledBackLargeMinusUsesIndex exercises the indexed Δ− lookup
// path (built when |Δ−| exceeds minusIndexThreshold) and checks it
// against a brute-force scan of the old state.
func TestRolledBackLargeMinusUsesIndex(t *testing.T) {
	st := storage.NewStore()
	st.CreateRelation("r", 2, nil)
	rel, _ := st.Relation("r")
	d := delta.New()
	// 50 live tuples.
	for i := int64(0); i < 50; i++ {
		st.Insert("r", types.Tuple{types.Int(i), types.Int(i % 5)})
	}
	// A massive transaction deleted 30 tuples (well over the index
	// threshold) and inserted 10 new ones.
	for i := int64(100); i < 130; i++ {
		tp := types.Tuple{types.Int(i), types.Int(i % 5)}
		d.Delete(tp) // was present in the old state only
	}
	for i := int64(0); i < 10; i++ {
		tp := types.Tuple{types.Int(1000 + i), types.Int(i % 5)}
		st.Insert("r", tp)
		d.Insert(tp)
	}
	if d.Minus().Len() <= minusIndexThreshold {
		t.Fatal("test setup must exceed the index threshold")
	}
	rb := NewRolledBack(rel, d)

	// Reference old state for cross-checking.
	oldState := d.OldState(rel.Rows())

	// Lookup on both columns, several values, twice (second pass hits
	// the cached index).
	for pass := 0; pass < 2; pass++ {
		for col := 0; col < 2; col++ {
			for v := int64(0); v < 6; v++ {
				got := types.NewSet()
				rb.Lookup(col, types.Int(v), func(tp types.Tuple) bool {
					got.Add(tp)
					return true
				})
				want := types.NewSet()
				oldState.Each(func(tp types.Tuple) bool {
					if tp[col].Equal(types.Int(v)) {
						want.Add(tp)
					}
					return true
				})
				if !got.Equal(want) {
					t.Fatalf("pass %d col %d v %d: got %s want %s", pass, col, v, got, want)
				}
			}
		}
	}
}

func TestRolledBackSmallMinusScans(t *testing.T) {
	st := storage.NewStore()
	st.CreateRelation("r", 1, nil)
	rel, _ := st.Relation("r")
	d := delta.New()
	st.Insert("r", types.Tuple{types.Int(1)})
	d.Delete(types.Tuple{types.Int(2)}) // small Δ−: scan path
	rb := NewRolledBack(rel, d)
	n := 0
	rb.Lookup(0, types.Int(2), func(types.Tuple) bool { n++; return true })
	if n != 1 {
		t.Errorf("scan path found %d", n)
	}
	// Early stop through the Δ− part.
	big := delta.New()
	for i := int64(0); i < 20; i++ {
		big.Delete(types.Tuple{types.Int(7)})
	}
	// All identical deletes collapse to one; add distinct ones.
	for i := int64(0); i < 20; i++ {
		big.Delete(types.Tuple{types.Int(100 + i)})
	}
	rb2 := NewRolledBack(rel, big)
	n = 0
	rb2.Each(func(types.Tuple) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("early stop visited %d", n)
	}
}
