package eval

import (
	"testing"

	"partdiff/internal/delta"
	"partdiff/internal/objectlog"
	"partdiff/internal/types"
)

// Tests for the greedy literal-ordering cost model: the properties the
// benchmarks rely on (Δ-sets anchor the scan, index probes beat scans,
// builtins run as soon as ready).

func costEnv(t *testing.T) (*testEnv, *Evaluator) {
	t.Helper()
	env := newTestEnv()
	env.store.CreateRelation("big", 2, nil)
	for i := int64(0); i < 200; i++ {
		env.mustInsert(t, "big", i, i%10)
	}
	env.store.CreateRelation("small", 1, nil)
	env.mustInsert(t, "small", 3)
	d := delta.New()
	for i := int64(0); i < 50; i++ {
		d.Insert(tup(i, i))
	}
	env.deltas["big"] = d
	return env, New(env)
}

func TestLiteralCost_DeltaAnchorsOverBaseScan(t *testing.T) {
	env, ev := costEnv(t)
	_ = env
	b := newBindings()
	deltaLit := objectlog.Lit("big", objectlog.V("X"), objectlog.V("Y")).WithDelta(objectlog.DeltaPlus)
	baseLit := objectlog.Lit("big", objectlog.V("X"), objectlog.V("Y"))
	dc, dok := ev.literalCost(deltaLit, b)
	bc, bok := ev.literalCost(baseLit, b)
	if !dok || !bok {
		t.Fatal("both should be ready")
	}
	if dc >= bc {
		t.Errorf("Δ-set scan (%d) must be preferred over base scan (%d)", dc, bc)
	}
	// But probing a Δ-set per binding is linear: with one arg bound,
	// the cost must reflect the full Δ size.
	b.bind("X", types.Int(1))
	dcBound, _ := ev.literalCost(deltaLit, b)
	if dcBound < 8+50 {
		t.Errorf("bound Δ lookup cost %d does not reflect linear scan", dcBound)
	}
}

func TestLiteralCost_ReadinessRules(t *testing.T) {
	_, ev := costEnv(t)
	b := newBindings()
	// Comparison with unbound args is not ready.
	if _, ready := ev.literalCost(objectlog.Lit(objectlog.BuiltinLT, objectlog.V("A"), objectlog.V("B")), b); ready {
		t.Error("comparison on unbound vars should not be ready")
	}
	// eq with one side bindable is ready.
	if _, ready := ev.literalCost(objectlog.Lit(objectlog.BuiltinEQ, objectlog.V("A"), objectlog.CInt(1)), b); !ready {
		t.Error("eq with constant should be ready")
	}
	// Arithmetic needs both inputs.
	ar := objectlog.Lit(objectlog.BuiltinPlus, objectlog.V("A"), objectlog.V("B"), objectlog.V("C"))
	if _, ready := ev.literalCost(ar, b); ready {
		t.Error("arithmetic with unbound inputs should not be ready")
	}
	b.bind("A", types.Int(1))
	b.bind("B", types.Int(2))
	if _, ready := ev.literalCost(ar, b); !ready {
		t.Error("arithmetic with bound inputs should be ready")
	}
	// Negation needs all args bound.
	neg := objectlog.NotLit("small", objectlog.V("Z"))
	if _, ready := ev.literalCost(neg, b); ready {
		t.Error("negation on unbound var should not be ready")
	}
	b.bind("Z", types.Int(3))
	if _, ready := ev.literalCost(neg, b); !ready {
		t.Error("negation on bound var should be ready")
	}
}

func TestLiteralCost_MembershipBeatsLookupBeatsScan(t *testing.T) {
	_, ev := costEnv(t)
	lit := objectlog.Lit("big", objectlog.V("X"), objectlog.V("Y"))
	b := newBindings()
	scan, _ := ev.literalCost(lit, b)
	b.bind("X", types.Int(1))
	lookup, _ := ev.literalCost(lit, b)
	b.bind("Y", types.Int(1))
	member, _ := ev.literalCost(lit, b)
	if !(member < lookup && lookup < scan) {
		t.Errorf("cost order violated: member=%d lookup=%d scan=%d", member, lookup, scan)
	}
}

func TestPickNextPrefersSmallRelation(t *testing.T) {
	_, ev := costEnv(t)
	b := newBindings()
	body := []objectlog.Literal{
		objectlog.Lit("big", objectlog.V("X"), objectlog.V("Y")),
		objectlog.Lit("small", objectlog.V("X")),
	}
	idx, err := ev.pickNext(body, b)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Errorf("pickNext chose %d (big), want 1 (small)", idx)
	}
}

func TestPickNextFailsOnStuckClause(t *testing.T) {
	_, ev := costEnv(t)
	b := newBindings()
	// Only an unready builtin: no evaluable literal.
	body := []objectlog.Literal{
		objectlog.Lit(objectlog.BuiltinLT, objectlog.V("A"), objectlog.V("B")),
	}
	if _, err := ev.pickNext(body, b); err == nil {
		t.Error("stuck clause should error")
	}
}
