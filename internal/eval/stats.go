package eval

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"partdiff/internal/objectlog"
)

// Stats is the observed-statistics table the adaptive join optimizer
// consults: exponentially weighted moving averages of
//
//   - per-predicate observed cardinalities of derived extents (learned
//     whenever a derived predicate is fully enumerated — an unbound
//     subquery call or an EvalPred), replacing literalCost's static
//     "derived subqueries cost 10000" guess, and
//   - per-literal observed scan volumes keyed by (predicate, Δ-kind,
//     bound-argument mask) — how many tuples matching this literal shape
//     actually cost last time — replacing the static index-selectivity
//     estimate.
//
// The table is workload history, not schema metadata: it starts empty,
// is fed by the evaluator as a side effect of normal evaluation, and
// converges within a few transactions (EWMA α=0.3, so an observation
// has ~97% weight after ten updates). It deliberately persists across
// propagation-network rebuilds — the rules manager passes the same
// table to every rebuilt network's evaluator.
//
// All methods are nil-safe (a nil *Stats records and reports nothing),
// so the evaluator needs no branches when adaptive statistics are off.
type Stats struct {
	mu    sync.RWMutex
	preds map[string]float64
	lits  map[litKey]float64
}

// litKey identifies a literal shape: which predicate, against which
// state (Δ+/Δ−/plain), with which argument positions bound at the time
// the literal ran. Positions ≥ 32 fold into the same mask bit — exact
// masks matter only for the small arities ObjectLog functions have.
type litKey struct {
	pred  string
	delta objectlog.DeltaKind
	mask  uint32
}

// ewmaAlpha is the smoothing factor: recent transactions dominate, but
// one anomalous propagation doesn't wipe the history.
const ewmaAlpha = 0.3

// NewStats returns an empty observed-statistics table.
func NewStats() *Stats {
	return &Stats{preds: map[string]float64{}, lits: map[litKey]float64{}}
}

func ewma(old, obs float64, seen bool) float64 {
	if !seen {
		return obs
	}
	return old + ewmaAlpha*(obs-old)
}

// RecordPred feeds one observed full-extent cardinality of a derived
// predicate.
func (s *Stats) RecordPred(pred string, card int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	old, seen := s.preds[pred]
	s.preds[pred] = ewma(old, float64(card), seen)
	s.mu.Unlock()
}

// PredCard returns the observed cardinality of a derived predicate's
// extent, false if it has never been fully enumerated.
func (s *Stats) PredCard(pred string) (int, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.RLock()
	v, ok := s.preds[pred]
	s.mu.RUnlock()
	return int(v + 0.5), ok
}

// RecordLiteral feeds one observed scan volume for a literal shape.
func (s *Stats) RecordLiteral(pred string, delta objectlog.DeltaKind, mask uint32, scanned int64) {
	if s == nil {
		return
	}
	k := litKey{pred: pred, delta: delta, mask: mask}
	s.mu.Lock()
	old, seen := s.lits[k]
	s.lits[k] = ewma(old, float64(scanned), seen)
	s.mu.Unlock()
}

// LitScanned returns the observed scan volume of a literal shape, false
// if that shape has never run.
func (s *Stats) LitScanned(pred string, delta objectlog.DeltaKind, mask uint32) (int, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.RLock()
	v, ok := s.lits[litKey{pred: pred, delta: delta, mask: mask}]
	s.mu.RUnlock()
	return int(v + 0.5), ok
}

// Reset discards all observations.
func (s *Stats) Reset() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.preds = map[string]float64{}
	s.lits = map[litKey]float64{}
	s.mu.Unlock()
}

// WriteTo renders the table sorted by key — a debugging surface for the
// shell and tests, not a stable report format.
func (s *Stats) WriteTo(w io.Writer) (int64, error) {
	if s == nil {
		n, err := io.WriteString(w, "adaptive statistics: off\n")
		return int64(n), err
	}
	s.mu.RLock()
	var b strings.Builder
	b.WriteString("observed predicate cardinalities:\n")
	var names []string
	for p := range s.preds {
		names = append(names, p)
	}
	sort.Strings(names)
	for _, p := range names {
		fmt.Fprintf(&b, "  %-24s %.1f\n", p, s.preds[p])
	}
	b.WriteString("observed literal scan volumes (pred Δ mask → tuples):\n")
	keys := make([]litKey, 0, len(s.lits))
	for k := range s.lits {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pred != keys[j].pred {
			return keys[i].pred < keys[j].pred
		}
		if keys[i].delta != keys[j].delta {
			return keys[i].delta < keys[j].delta
		}
		return keys[i].mask < keys[j].mask
	})
	for _, k := range keys {
		fmt.Fprintf(&b, "  %-24s %-2s %#04x → %.1f\n", k.pred, k.delta, k.mask, s.lits[k])
	}
	s.mu.RUnlock()
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}
