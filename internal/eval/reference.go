package eval

import (
	"fmt"

	"partdiff/internal/objectlog"
	"partdiff/internal/storage"
	"partdiff/internal/types"
)

// ReferenceEval is a deliberately naive generate-and-test evaluator used
// for differential testing of the optimized evaluator: it enumerates the
// full cartesian product of the extents of all positive relational
// literals, unifies, and then checks builtins and negations under the
// complete substitution. Exponential — use only on tiny databases.
//
// Supported literals: positive/negated base relations (current state
// only), comparisons, arithmetic, and eq. Delta/old annotations and
// derived predicates are not supported (the optimized evaluator's
// handling of those is exercised by dedicated tests).
func ReferenceEval(env Env, c objectlog.Clause, out *types.Set) error {
	var positives []objectlog.Literal
	var checks []objectlog.Literal
	for _, l := range c.Body {
		if l.Delta != objectlog.DeltaNone || l.Old {
			return fmt.Errorf("reference evaluator: annotated literal %s unsupported", l)
		}
		if objectlog.IsBuiltin(l.Pred) || l.Negated {
			checks = append(checks, l)
			continue
		}
		if env.Program().IsDerived(l.Pred) {
			return fmt.Errorf("reference evaluator: derived literal %s unsupported", l)
		}
		positives = append(positives, l)
	}
	sub := map[string]types.Value{}
	return refEnumerate(env, positives, checks, c.Head, sub, out)
}

func refEnumerate(env Env, positives, checks []objectlog.Literal, head objectlog.Literal, sub map[string]types.Value, out *types.Set) error {
	if len(positives) == 0 {
		return refCheckAndEmit(env, checks, head, sub, out)
	}
	lit := positives[0]
	src, err := env.Source(lit.Pred, objectlog.DeltaNone, false)
	if err != nil {
		return err
	}
	var tuples []types.Tuple
	src.Each(func(t types.Tuple) bool { tuples = append(tuples, t); return true })
	for _, t := range tuples {
		if len(t) != len(lit.Args) {
			return fmt.Errorf("arity mismatch on %s", lit)
		}
		var bound []string
		ok := true
		for i, a := range lit.Args {
			if !a.IsVar {
				if !a.Const.Equal(t[i]) {
					ok = false
					break
				}
				continue
			}
			if v, has := sub[a.Var]; has {
				if !v.Equal(t[i]) {
					ok = false
					break
				}
				continue
			}
			sub[a.Var] = t[i]
			bound = append(bound, a.Var)
		}
		if ok {
			if err := refEnumerate(env, positives[1:], checks, head, sub, out); err != nil {
				return err
			}
		}
		for _, v := range bound {
			delete(sub, v)
		}
	}
	return nil
}

func refCheckAndEmit(env Env, checks []objectlog.Literal, head objectlog.Literal, sub map[string]types.Value, out *types.Set) error {
	// eq literals may bind; process checks to a fixpoint, then test.
	local := map[string]types.Value{}
	get := func(t objectlog.Term) (types.Value, bool) {
		if !t.IsVar {
			return t.Const, true
		}
		if v, ok := sub[t.Var]; ok {
			return v, true
		}
		v, ok := local[t.Var]
		return v, ok
	}
	pending := append([]objectlog.Literal(nil), checks...)
	for progress := true; progress && len(pending) > 0; {
		progress = false
		var rest []objectlog.Literal
		for _, l := range pending {
			switch {
			case objectlog.IsArithmetic(l.Pred):
				a, aok := get(l.Args[0])
				b, bok := get(l.Args[1])
				if !aok || !bok {
					rest = append(rest, l)
					continue
				}
				var res types.Value
				var err error
				switch l.Pred {
				case objectlog.BuiltinPlus:
					res, err = types.Add(a, b)
				case objectlog.BuiltinMinus:
					res, err = types.Sub(a, b)
				case objectlog.BuiltinTimes:
					res, err = types.Mul(a, b)
				default:
					res, err = types.Div(a, b)
				}
				if err != nil {
					return nil // row fails quietly, as in the evaluator
				}
				if r, rok := get(l.Args[2]); rok {
					if !r.Equal(res) {
						return nil
					}
				} else {
					local[l.Args[2].Var] = res
				}
				progress = true
			case l.Pred == objectlog.BuiltinEQ && !l.Negated:
				a, aok := get(l.Args[0])
				b, bok := get(l.Args[1])
				switch {
				case aok && bok:
					if !a.Equal(b) {
						return nil
					}
					progress = true
				case aok:
					local[l.Args[1].Var] = a
					progress = true
				case bok:
					local[l.Args[0].Var] = b
					progress = true
				default:
					rest = append(rest, l)
					continue
				}
			case objectlog.IsComparison(l.Pred):
				a, aok := get(l.Args[0])
				b, bok := get(l.Args[1])
				if !aok || !bok {
					rest = append(rest, l)
					continue
				}
				if !cmpHolds(l.Pred, a, b) {
					return nil
				}
				progress = true
			default: // negated relational literal
				vals := make(types.Tuple, len(l.Args))
				ready := true
				for i, a := range l.Args {
					v, ok := get(a)
					if !ok {
						ready = false
						break
					}
					vals[i] = v
				}
				if !ready {
					rest = append(rest, l)
					continue
				}
				src, err := env.Source(l.Pred, objectlog.DeltaNone, false)
				if err != nil {
					return err
				}
				if src.Contains(vals) {
					return nil
				}
				progress = true
			}
		}
		pending = rest
	}
	if len(pending) > 0 {
		return fmt.Errorf("reference evaluator: unsafe clause, stuck on %v", pending)
	}
	t := make(types.Tuple, len(head.Args))
	for i, a := range head.Args {
		v, ok := get(a)
		if !ok {
			return fmt.Errorf("reference evaluator: head variable %s unbound", a.Var)
		}
		t[i] = v
	}
	out.Add(t)
	return nil
}

// refStore exposes Source construction for tests that need a bare
// storage-backed Env without deltas.
type refStore struct {
	Store *storage.Store
	Prog  *objectlog.Program
}

// NewStoreEnv wraps a store and program as an Env without Δ-sets or old
// states (select-query semantics).
func NewStoreEnv(st *storage.Store, prog *objectlog.Program) Env {
	return refStore{Store: st, Prog: prog}
}

// Program implements Env.
func (e refStore) Program() *objectlog.Program { return e.Prog }

// Source implements Env over the live store only.
func (e refStore) Source(pred string, dk objectlog.DeltaKind, old bool) (storage.Source, error) {
	if dk != objectlog.DeltaNone || old {
		return nil, fmt.Errorf("no Δ-sets or old states in a bare store env")
	}
	rel, ok := e.Store.Relation(pred)
	if !ok {
		return nil, fmt.Errorf("relation %q does not exist", pred)
	}
	return rel, nil
}
