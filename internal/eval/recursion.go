package eval

import (
	"fmt"

	"partdiff/internal/objectlog"
	"partdiff/internal/types"
)

// Recursive view evaluation (extension; §8 of the paper lists recursion
// as future work and the §5 footnote sketches the approach: "revisiting
// nodes below and using fixed point techniques").
//
// A recursive component is evaluated bottom-up to a fixpoint: extents
// of all component members start empty, clauses are re-evaluated with
// component references resolved against the current extents, and
// iteration stops when no new tuples appear. Monotone conjunctive
// clauses guarantee termination over the finite active domain.

// maxFixpointIterations is a backstop against non-terminating
// components (possible only with arithmetic generating fresh values).
const maxFixpointIterations = 100000

// evalRecursive evaluates a call to a recursive view by materializing
// the component's fixpoint and matching the call against it.
func (e *Evaluator) evalRecursive(call objectlog.Literal, b *bindings, depth int, cont func() error) error {
	if depth > e.MaxDepth {
		return fmt.Errorf("evaluation exceeded max derivation depth %d", e.MaxDepth)
	}
	exts, err := e.fixpointComponent(call.Pred, call.Old, depth)
	if err != nil {
		return err
	}
	ext := exts[call.Pred]
	return e.matchSource(NewSetSource(ext, len(call.Args)), call, b, cont)
}

// fixpointComponent computes the extents of every member of pred's
// recursive component, in the old or new database state.
func (e *Evaluator) fixpointComponent(pred string, old bool, depth int) (map[string]*types.Set, error) {
	prog := e.env.Program()
	comp := prog.Component(pred)
	if len(comp) == 0 {
		return nil, fmt.Errorf("predicate %q is not recursive", pred)
	}
	exts := make(map[string]*types.Set, len(comp))
	for _, m := range comp {
		exts[m] = types.NewSet()
	}
	// Install the override (saving any enclosing fixpoint — nested
	// independent components).
	saved := e.fixpoint
	merged := make(map[string]*types.Set, len(saved)+len(exts))
	for k, v := range saved {
		merged[k] = v
	}
	for k, v := range exts {
		merged[k] = v
	}
	e.fixpoint = merged
	defer func() { e.fixpoint = saved }()

	// Negation inside a recursive component is not stratified — reject
	// it (standard Datalog restriction).
	for _, m := range comp {
		def, _ := prog.Def(m)
		for _, c := range def.Clauses {
			for _, l := range c.Body {
				if l.Negated && exts[l.Pred] != nil {
					return nil, fmt.Errorf("[%s] recursive component of %q negates member %q: unstratified negation is not supported", objectlog.CodeUnstratifiedNegation, pred, l.Pred)
				}
			}
		}
	}
	for iter := 0; ; iter++ {
		if iter > maxFixpointIterations {
			return nil, fmt.Errorf("fixpoint of %q did not converge after %d iterations", pred, maxFixpointIterations)
		}
		changed := false
		for _, m := range comp {
			def, _ := prog.Def(m)
			for _, dc := range def.Clauses {
				fresh := dc.RenameApart(&e.counter)
				if old {
					fresh = oldClause(fresh)
				}
				sub := newBindings()
				before := exts[m].Len()
				err := e.evalBody(fresh.Body, sub, depth+1, func() error {
					t := make(types.Tuple, len(fresh.Head.Args))
					for i, ha := range fresh.Head.Args {
						v, ok := sub.value(ha)
						if !ok {
							return fmt.Errorf("recursive view %s: head variable %s unbound", m, ha.Var)
						}
						t[i] = v
					}
					exts[m].Add(t)
					return nil
				})
				if err != nil {
					return nil, err
				}
				if exts[m].Len() != before {
					changed = true
				}
			}
		}
		if !changed {
			return exts, nil
		}
	}
}
