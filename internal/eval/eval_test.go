package eval

import (
	"fmt"
	"testing"

	"partdiff/internal/delta"
	"partdiff/internal/objectlog"
	"partdiff/internal/storage"
	"partdiff/internal/types"
)

// testEnv is a minimal Env over a store, a program, and per-relation
// Δ-sets.
type testEnv struct {
	store  *storage.Store
	prog   *objectlog.Program
	deltas map[string]*delta.Set
}

func newTestEnv() *testEnv {
	return &testEnv{
		store:  storage.NewStore(),
		prog:   objectlog.NewProgram(),
		deltas: map[string]*delta.Set{},
	}
}

func (e *testEnv) Program() *objectlog.Program { return e.prog }

func (e *testEnv) Source(pred string, dk objectlog.DeltaKind, old bool) (storage.Source, error) {
	rel, ok := e.store.Relation(pred)
	if !ok {
		return nil, fmt.Errorf("no relation %q", pred)
	}
	d := e.deltas[pred]
	switch dk {
	case objectlog.DeltaPlus:
		return NewSetSource(d.Plus(), rel.Arity()), nil
	case objectlog.DeltaMinus:
		return NewSetSource(d.Minus(), rel.Arity()), nil
	}
	if old {
		return NewRolledBack(rel, d), nil
	}
	return rel, nil
}

func (e *testEnv) mustInsert(t *testing.T, rel string, vals ...int64) {
	t.Helper()
	tp := make(types.Tuple, len(vals))
	for i, v := range vals {
		tp[i] = types.Int(v)
	}
	if _, err := e.store.Insert(rel, tp); err != nil {
		t.Fatal(err)
	}
}

func tup(vs ...int64) types.Tuple {
	t := make(types.Tuple, len(vs))
	for i, v := range vs {
		t[i] = types.Int(v)
	}
	return t
}

// setupPQR builds the §4.3 database: q(1,1), r(1,2), r(2,3) and the view
// p(X,Z) ← q(X,Y) ∧ r(Y,Z).
func setupPQR(t *testing.T) (*testEnv, objectlog.Clause) {
	t.Helper()
	env := newTestEnv()
	env.store.CreateRelation("q", 2, nil)
	env.store.CreateRelation("r", 2, nil)
	env.mustInsert(t, "q", 1, 1)
	env.mustInsert(t, "r", 1, 2)
	env.mustInsert(t, "r", 2, 3)
	p := objectlog.NewClause(
		objectlog.Lit("p", objectlog.V("X"), objectlog.V("Z")),
		objectlog.Lit("q", objectlog.V("X"), objectlog.V("Y")),
		objectlog.Lit("r", objectlog.V("Y"), objectlog.V("Z")))
	return env, p
}

func TestPaperSection43_BaseJoin(t *testing.T) {
	env, p := setupPQR(t)
	out := types.NewSet()
	if err := New(env).EvalClause(p, out); err != nil {
		t.Fatal(err)
	}
	if !out.Equal(types.NewSet(tup(1, 2))) {
		t.Errorf("p = %s, want {(1, 2)}", out)
	}
}

func TestPaperSection43_AfterUpdates(t *testing.T) {
	// assert q(1,2), assert r(1,4) → p(1,2), p(1,3), p(1,4).
	env, p := setupPQR(t)
	env.mustInsert(t, "q", 1, 2)
	env.mustInsert(t, "r", 1, 4)
	out := types.NewSet()
	if err := New(env).EvalClause(p, out); err != nil {
		t.Fatal(err)
	}
	want := types.NewSet(tup(1, 2), tup(1, 3), tup(1, 4))
	if !out.Equal(want) {
		t.Errorf("p = %s, want %s", out, want)
	}
}

func TestPositiveDifferentialClauses(t *testing.T) {
	// Δp/Δ+q ← Δ+q(X,Y) ∧ r(Y,Z), Δp/Δ+r ← q(X,Y) ∧ Δ+r(Y,Z)
	env, _ := setupPQR(t)
	dq, dr := delta.New(), delta.New()
	env.deltas["q"], env.deltas["r"] = dq, dr
	// Perform the §4.3 transaction.
	env.mustInsert(t, "q", 1, 2)
	dq.Insert(tup(1, 2))
	env.mustInsert(t, "r", 1, 4)
	dr.Insert(tup(1, 4))

	ev := New(env)
	head := objectlog.Lit("p", objectlog.V("X"), objectlog.V("Z"))

	dpdq := objectlog.NewClause(head,
		objectlog.Lit("q", objectlog.V("X"), objectlog.V("Y")).WithDelta(objectlog.DeltaPlus),
		objectlog.Lit("r", objectlog.V("Y"), objectlog.V("Z")))
	out := types.NewSet()
	if err := ev.EvalClause(dpdq, out); err != nil {
		t.Fatal(err)
	}
	if !out.Equal(types.NewSet(tup(1, 3))) {
		t.Errorf("Δp/Δ+q = %s, want {(1, 3)}", out)
	}

	dpdr := objectlog.NewClause(head,
		objectlog.Lit("q", objectlog.V("X"), objectlog.V("Y")),
		objectlog.Lit("r", objectlog.V("Y"), objectlog.V("Z")).WithDelta(objectlog.DeltaPlus))
	out2 := types.NewSet()
	if err := ev.EvalClause(dpdr, out2); err != nil {
		t.Fatal(err)
	}
	if !out2.Equal(types.NewSet(tup(1, 4))) {
		t.Errorf("Δp/Δ+r = %s, want {(1, 4)}", out2)
	}
}

func TestPaperSection44_NegativeDifferentialUsesOldState(t *testing.T) {
	// Transaction: assert q(1,2), assert r(1,4), retract r(1,2),
	// retract r(2,3). Δp/Δ−r ← q_old(X,Y) ∧ Δ−r(Y,Z) must yield {(1,2)}
	// only — with the *new* q it would wrongly include (1,3).
	env, _ := setupPQR(t)
	dq, dr := delta.New(), delta.New()
	env.deltas["q"], env.deltas["r"] = dq, dr

	env.mustInsert(t, "q", 1, 2)
	dq.Insert(tup(1, 2))
	env.mustInsert(t, "r", 1, 4)
	dr.Insert(tup(1, 4))
	env.store.Delete("r", tup(1, 2))
	dr.Delete(tup(1, 2))
	env.store.Delete("r", tup(2, 3))
	dr.Delete(tup(2, 3))

	ev := New(env)
	head := objectlog.Lit("p", objectlog.V("X"), objectlog.V("Z"))
	dpdrMinus := objectlog.NewClause(head,
		objectlog.Lit("q", objectlog.V("X"), objectlog.V("Y")).WithOld(),
		objectlog.Lit("r", objectlog.V("Y"), objectlog.V("Z")).WithDelta(objectlog.DeltaMinus))
	out := types.NewSet()
	if err := ev.EvalClause(dpdrMinus, out); err != nil {
		t.Fatal(err)
	}
	if !out.Equal(types.NewSet(tup(1, 2))) {
		t.Errorf("Δp/Δ−r = %s, want {(1, 2)}", out)
	}

	// The wrong version (new-state q) yields the extra (1,3) — this is
	// exactly the paper's "clearly wrong" example.
	wrong := objectlog.NewClause(head,
		objectlog.Lit("q", objectlog.V("X"), objectlog.V("Y")),
		objectlog.Lit("r", objectlog.V("Y"), objectlog.V("Z")).WithDelta(objectlog.DeltaMinus))
	out2 := types.NewSet()
	if err := ev.EvalClause(wrong, out2); err != nil {
		t.Fatal(err)
	}
	if !out2.Equal(types.NewSet(tup(1, 2), tup(1, 3))) {
		t.Errorf("new-state Δp/Δ−r = %s, want the overlarge {(1,2),(1,3)}", out2)
	}
}

func TestBuiltinsArithmeticAndComparison(t *testing.T) {
	env := newTestEnv()
	env.store.CreateRelation("b", 2, nil)
	env.mustInsert(t, "b", 1, 10)
	env.mustInsert(t, "b", 2, 20)
	// h(X,T) ← b(X,A) ∧ T = A * 3 ∧ T > 45
	c := objectlog.NewClause(
		objectlog.Lit("h", objectlog.V("X"), objectlog.V("T")),
		objectlog.Lit("b", objectlog.V("X"), objectlog.V("A")),
		objectlog.Lit(objectlog.BuiltinTimes, objectlog.V("A"), objectlog.CInt(3), objectlog.V("T")),
		objectlog.Lit(objectlog.BuiltinGT, objectlog.V("T"), objectlog.CInt(45)))
	out := types.NewSet()
	if err := New(env).EvalClause(c, out); err != nil {
		t.Fatal(err)
	}
	if !out.Equal(types.NewSet(tup(2, 60))) {
		t.Errorf("h = %s", out)
	}
}

func TestBuiltinEqBindsEitherSide(t *testing.T) {
	env := newTestEnv()
	env.store.CreateRelation("b", 1, nil)
	env.mustInsert(t, "b", 5)
	for _, c := range []objectlog.Clause{
		objectlog.NewClause(objectlog.Lit("h", objectlog.V("Y")),
			objectlog.Lit("b", objectlog.V("X")),
			objectlog.Lit(objectlog.BuiltinEQ, objectlog.V("Y"), objectlog.V("X"))),
		objectlog.NewClause(objectlog.Lit("h", objectlog.V("Y")),
			objectlog.Lit("b", objectlog.V("X")),
			objectlog.Lit(objectlog.BuiltinEQ, objectlog.V("X"), objectlog.V("Y"))),
	} {
		out := types.NewSet()
		if err := New(env).EvalClause(c, out); err != nil {
			t.Fatal(err)
		}
		if !out.Equal(types.NewSet(tup(5))) {
			t.Errorf("h = %s", out)
		}
	}
}

func TestDivisionByZeroFailsConjunctionQuietly(t *testing.T) {
	env := newTestEnv()
	env.store.CreateRelation("b", 2, nil)
	env.mustInsert(t, "b", 1, 0)
	env.mustInsert(t, "b", 2, 4)
	// h(X,R) ← b(X,D) ∧ R = 8 / D
	c := objectlog.NewClause(
		objectlog.Lit("h", objectlog.V("X"), objectlog.V("R")),
		objectlog.Lit("b", objectlog.V("X"), objectlog.V("D")),
		objectlog.Lit(objectlog.BuiltinDiv, objectlog.CInt(8), objectlog.V("D"), objectlog.V("R")))
	out := types.NewSet()
	if err := New(env).EvalClause(c, out); err != nil {
		t.Fatal(err)
	}
	if !out.Equal(types.NewSet(tup(2, 2))) {
		t.Errorf("h = %s (division by zero row must drop silently)", out)
	}
}

func TestNegation(t *testing.T) {
	env := newTestEnv()
	env.store.CreateRelation("a", 1, nil)
	env.store.CreateRelation("blocked", 1, nil)
	env.mustInsert(t, "a", 1)
	env.mustInsert(t, "a", 2)
	env.mustInsert(t, "blocked", 2)
	c := objectlog.NewClause(
		objectlog.Lit("h", objectlog.V("X")),
		objectlog.Lit("a", objectlog.V("X")),
		objectlog.NotLit("blocked", objectlog.V("X")))
	out := types.NewSet()
	if err := New(env).EvalClause(c, out); err != nil {
		t.Fatal(err)
	}
	if !out.Equal(types.NewSet(tup(1))) {
		t.Errorf("h = %s", out)
	}
}

func TestDerivedSubquery(t *testing.T) {
	env := newTestEnv()
	env.store.CreateRelation("base", 2, nil)
	env.mustInsert(t, "base", 1, 10)
	env.mustInsert(t, "base", 2, 30)
	// view(X,T) ← base(X,A) ∧ T = A + 5
	env.prog.Define(&objectlog.Def{Name: "view", Arity: 2, Clauses: []objectlog.Clause{
		objectlog.NewClause(
			objectlog.Lit("view", objectlog.V("X"), objectlog.V("T")),
			objectlog.Lit("base", objectlog.V("X"), objectlog.V("A")),
			objectlog.Lit(objectlog.BuiltinPlus, objectlog.V("A"), objectlog.CInt(5), objectlog.V("T"))),
	}})
	// h(X) ← view(X,T) ∧ T > 20
	c := objectlog.NewClause(
		objectlog.Lit("h", objectlog.V("X")),
		objectlog.Lit("view", objectlog.V("X"), objectlog.V("T")),
		objectlog.Lit(objectlog.BuiltinGT, objectlog.V("T"), objectlog.CInt(20)))
	out := types.NewSet()
	if err := New(env).EvalClause(c, out); err != nil {
		t.Fatal(err)
	}
	if !out.Equal(types.NewSet(tup(2))) {
		t.Errorf("h = %s", out)
	}
}

func TestDerivedSubqueryOldStateIsCompositional(t *testing.T) {
	env := newTestEnv()
	env.store.CreateRelation("base", 2, nil)
	d := delta.New()
	env.deltas["base"] = d
	env.mustInsert(t, "base", 1, 10)
	// Transaction: update base(1,.) from 10 to 99.
	env.store.Delete("base", tup(1, 10))
	d.Delete(tup(1, 10))
	env.mustInsert(t, "base", 1, 99)
	d.Insert(tup(1, 99))

	env.prog.Define(&objectlog.Def{Name: "view", Arity: 2, Clauses: []objectlog.Clause{
		objectlog.NewClause(
			objectlog.Lit("view", objectlog.V("X"), objectlog.V("A")),
			objectlog.Lit("base", objectlog.V("X"), objectlog.V("A"))),
	}})
	ev := New(env)
	newExt, err := ev.EvalPred("view", false)
	if err != nil {
		t.Fatal(err)
	}
	oldExt, err := ev.EvalPred("view", true)
	if err != nil {
		t.Fatal(err)
	}
	if !newExt.Equal(types.NewSet(tup(1, 99))) {
		t.Errorf("view_new = %s", newExt)
	}
	if !oldExt.Equal(types.NewSet(tup(1, 10))) {
		t.Errorf("view_old = %s", oldExt)
	}
}

func TestEvalPredBase(t *testing.T) {
	env := newTestEnv()
	env.store.CreateRelation("b", 1, nil)
	env.mustInsert(t, "b", 1)
	ext, err := New(env).EvalPred("b", false)
	if err != nil || !ext.Equal(types.NewSet(tup(1))) {
		t.Errorf("EvalPred base: %s %v", ext, err)
	}
	if _, err := New(env).EvalPred("nosuch", false); err == nil {
		t.Error("unknown pred should error")
	}
}

func TestDerivable(t *testing.T) {
	env := newTestEnv()
	env.store.CreateRelation("b", 2, nil)
	env.mustInsert(t, "b", 1, 2)
	env.prog.Define(&objectlog.Def{Name: "v", Arity: 1, Clauses: []objectlog.Clause{
		objectlog.NewClause(objectlog.Lit("v", objectlog.V("X")),
			objectlog.Lit("b", objectlog.V("X"), objectlog.V("Y"))),
	}})
	ev := New(env)
	ok, err := ev.Derivable("v", tup(1), false)
	if err != nil || !ok {
		t.Errorf("Derivable(v(1))=%v,%v", ok, err)
	}
	ok, _ = ev.Derivable("v", tup(9), false)
	if ok {
		t.Error("v(9) should not be derivable")
	}
	ok, _ = ev.Derivable("b", tup(1, 2), false)
	if !ok {
		t.Error("base fact should be derivable")
	}
}

func TestRepeatedVariableInLiteral(t *testing.T) {
	env := newTestEnv()
	env.store.CreateRelation("e", 2, nil)
	env.mustInsert(t, "e", 1, 1)
	env.mustInsert(t, "e", 1, 2)
	// h(X) ← e(X,X): only the self-pair matches.
	c := objectlog.NewClause(
		objectlog.Lit("h", objectlog.V("X")),
		objectlog.Lit("e", objectlog.V("X"), objectlog.V("X")))
	out := types.NewSet()
	if err := New(env).EvalClause(c, out); err != nil {
		t.Fatal(err)
	}
	if !out.Equal(types.NewSet(tup(1))) {
		t.Errorf("h = %s", out)
	}
}

func TestSeededEvaluation(t *testing.T) {
	env, p := setupPQR(t)
	out := types.NewSet()
	seed := map[string]types.Value{"X": types.Int(1), "Y": types.Int(1)}
	if err := New(env).EvalClauseSeeded(p, seed, out); err != nil {
		t.Fatal(err)
	}
	if !out.Equal(types.NewSet(tup(1, 2))) {
		t.Errorf("seeded p = %s", out)
	}
	// Seed that matches nothing.
	out2 := types.NewSet()
	seed2 := map[string]types.Value{"Y": types.Int(99)}
	if err := New(env).EvalClauseSeeded(p, seed2, out2); err != nil {
		t.Fatal(err)
	}
	if out2.Len() != 0 {
		t.Errorf("seed mismatch should yield empty, got %s", out2)
	}
}

func TestUnsafeClauseErrors(t *testing.T) {
	env := newTestEnv()
	env.store.CreateRelation("b", 1, nil)
	env.mustInsert(t, "b", 1)
	// Head variable Z never bound.
	c := objectlog.NewClause(
		objectlog.Lit("h", objectlog.V("Z")),
		objectlog.Lit("b", objectlog.V("X")))
	if err := New(env).EvalClause(c, types.NewSet()); err == nil {
		t.Error("unsafe clause should error at evaluation")
	}
}

func TestRolledBackSource(t *testing.T) {
	env := newTestEnv()
	env.store.CreateRelation("b", 2, nil)
	rel, _ := env.store.Relation("b")
	d := delta.New()
	env.mustInsert(t, "b", 1, 1)
	env.mustInsert(t, "b", 2, 2)
	// txn: delete (1,1), insert (3,3)
	env.store.Delete("b", tup(1, 1))
	d.Delete(tup(1, 1))
	env.mustInsert(t, "b", 3, 3)
	d.Insert(tup(3, 3))

	rb := NewRolledBack(rel, d)
	if rb.Arity() != 2 || rb.Len() != 2 {
		t.Errorf("Arity/Len: %d %d", rb.Arity(), rb.Len())
	}
	if !rb.Contains(tup(1, 1)) || rb.Contains(tup(3, 3)) || !rb.Contains(tup(2, 2)) {
		t.Error("old-state membership")
	}
	got := types.NewSet()
	rb.Each(func(t types.Tuple) bool { got.Add(t); return true })
	if !got.Equal(types.NewSet(tup(1, 1), tup(2, 2))) {
		t.Errorf("old state = %s", got)
	}
	// Lookup across both live-filtered and Δ− parts.
	n := 0
	rb.Lookup(0, types.Int(1), func(types.Tuple) bool { n++; return true })
	if n != 1 {
		t.Errorf("Lookup old col0=1 found %d", n)
	}
	// Early stop honored.
	n = 0
	rb.Each(func(types.Tuple) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
	// nil delta behaves as identity.
	rb2 := NewRolledBack(rel, nil)
	if rb2.Len() != rel.Len() || !rb2.Contains(tup(3, 3)) {
		t.Error("nil-delta rollback should mirror base")
	}
}

func TestSetSource(t *testing.T) {
	s := types.NewSet(tup(1, 2), tup(3, 4))
	src := NewSetSource(s, 2)
	if src.Arity() != 2 || src.Len() != 2 {
		t.Error("SetSource meta")
	}
	if !src.Contains(tup(1, 2)) || src.Contains(tup(9, 9)) {
		t.Error("SetSource contains")
	}
	n := 0
	src.Lookup(1, types.Int(4), func(types.Tuple) bool { n++; return true })
	if n != 1 {
		t.Errorf("SetSource lookup found %d", n)
	}
	src.SrcLen = 99
	if src.Len() != 99 {
		t.Error("SrcLen override")
	}
	empty := NewSetSource(nil, 2)
	if empty.Len() != 0 || empty.Contains(tup(1)) {
		t.Error("nil-set source")
	}
}
