// Package eval implements the ObjectLog query evaluator: nested-loop
// evaluation of conjunctive clauses with greedy, selectivity-driven
// literal ordering (in the spirit of System R / Selinger, as cited by the
// paper for optimizing the generated partial differentials), index
// lookups on base relations, safe negation, derived-predicate
// subqueries, and old-state evaluation via logical rollback.
package eval

import (
	"partdiff/internal/delta"
	"partdiff/internal/storage"
	"partdiff/internal/types"
)

// SetSource adapts a plain tuple set (for instance one side of a Δ-set)
// to the storage.Source interface. Lookups are linear scans; Δ-sets are
// small wave-front materializations, so this is the right trade-off.
type SetSource struct {
	Set    *types.Set
	Width  int
	SrcLen int // optional override for optimizer estimates; 0 = Set.Len()
}

// NewSetSource wraps set (may be nil = empty) with the given arity.
func NewSetSource(set *types.Set, arity int) *SetSource {
	return &SetSource{Set: set, Width: arity}
}

// Arity returns the column count.
func (s *SetSource) Arity() int { return s.Width }

// Len returns the tuple count.
func (s *SetSource) Len() int {
	if s.SrcLen > 0 {
		return s.SrcLen
	}
	return s.Set.Len()
}

// Each iterates all tuples.
func (s *SetSource) Each(fn func(types.Tuple) bool) { s.Set.Each(fn) }

// Lookup scans for tuples whose column col equals v.
func (s *SetSource) Lookup(col int, v types.Value, fn func(types.Tuple) bool) {
	s.Set.Each(func(t types.Tuple) bool {
		if col < len(t) && t[col].Equal(v) {
			return fn(t)
		}
		return true
	})
}

// Contains reports membership.
func (s *SetSource) Contains(t types.Tuple) bool { return s.Set.Contains(t) }

// RolledBack is the old state of a base relation computed lazily from
// its new state and its accumulated Δ-set: S_old = (S_new ∪ Δ−S) − Δ+S.
// No materialization of the relation is performed (fig. 3 of the
// paper); every access filters the live relation and consults the
// Δ-set. For transactions with many deletions a per-column index over
// Δ−S is built on first lookup, so old-state index probes stay O(1);
// the instance must not be used across mutations of the Δ-set.
type RolledBack struct {
	Base  storage.Source
	Delta *delta.Set // may be nil: old state == new state

	minusIdx []map[string]*types.Set // lazy per-column index over Δ−S
}

// minusIndexThreshold is the Δ− cardinality above which Lookup builds
// the column index instead of scanning.
const minusIndexThreshold = 8

func (r *RolledBack) lookupMinus(col int, v types.Value, fn func(types.Tuple) bool) {
	minus := r.Delta.Minus()
	if minus.Len() <= minusIndexThreshold {
		minus.Each(func(t types.Tuple) bool {
			if col < len(t) && t[col].Equal(v) {
				return fn(t)
			}
			return true
		})
		return
	}
	if r.minusIdx == nil {
		r.minusIdx = make([]map[string]*types.Set, r.Base.Arity())
	}
	idx := r.minusIdx[col]
	if idx == nil {
		idx = make(map[string]*types.Set)
		minus.Each(func(t types.Tuple) bool {
			if col < len(t) {
				k := t[col].Key()
				s := idx[k]
				if s == nil {
					s = types.NewSet()
					idx[k] = s
				}
				s.Add(t)
			}
			return true
		})
		r.minusIdx[col] = idx
	}
	if s, ok := idx[v.Key()]; ok {
		s.Each(fn)
	}
}

// NewRolledBack wraps a base source with its Δ-set.
func NewRolledBack(base storage.Source, d *delta.Set) *RolledBack {
	return &RolledBack{Base: base, Delta: d}
}

// Arity returns the column count.
func (r *RolledBack) Arity() int { return r.Base.Arity() }

// Len returns the exact old-state cardinality.
func (r *RolledBack) Len() int {
	if r.Delta == nil {
		return r.Base.Len()
	}
	// All Δ+ tuples are in Base; all Δ− tuples are not (disjointness and
	// net-effect folding guarantee this for base relations).
	return r.Base.Len() - r.Delta.Plus().Len() + r.Delta.Minus().Len()
}

// Each iterates the old state.
func (r *RolledBack) Each(fn func(types.Tuple) bool) {
	stopped := false
	r.Base.Each(func(t types.Tuple) bool {
		if r.Delta != nil && r.Delta.Plus().Contains(t) {
			return true // inserted during the transaction: not in old state
		}
		if !fn(t) {
			stopped = true
			return false
		}
		return true
	})
	if stopped || r.Delta == nil {
		return
	}
	r.Delta.Minus().Each(fn)
}

// Lookup iterates old-state tuples with column col equal to v.
func (r *RolledBack) Lookup(col int, v types.Value, fn func(types.Tuple) bool) {
	stopped := false
	r.Base.Lookup(col, v, func(t types.Tuple) bool {
		if r.Delta != nil && r.Delta.Plus().Contains(t) {
			return true
		}
		if !fn(t) {
			stopped = true
			return false
		}
		return true
	})
	if stopped || r.Delta == nil {
		return
	}
	r.lookupMinus(col, v, fn)
}

// Contains reports old-state membership without materialization:
// t ∈ S_old ⇔ t ∈ Δ−S ∨ (t ∈ S_new ∧ t ∉ Δ+S).
func (r *RolledBack) Contains(t types.Tuple) bool {
	if r.Delta == nil {
		return r.Base.Contains(t)
	}
	if r.Delta.Minus().Contains(t) {
		return true
	}
	return r.Base.Contains(t) && !r.Delta.Plus().Contains(t)
}
