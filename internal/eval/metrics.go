package eval

import "partdiff/internal/obs"

// Metrics is the evaluator's meter set. The zero value is a valid
// disabled meter set (nil counters are no-ops).
type Metrics struct {
	// Clauses counts clause evaluations (query plans executed).
	Clauses *obs.Counter
	// TuplesScanned counts tuples unified against while matching
	// relational literals.
	TuplesScanned *obs.Counter
	// Join-order choice: how each relational literal was anchored once
	// the greedy planner picked it — full membership probe (all args
	// bound), index lookup (some bound), or relation scan (none bound).
	AnchorProbe *obs.Counter
	AnchorIndex *obs.Counter
	AnchorScan  *obs.Counter
}

// NewMetrics registers the evaluator meters in r.
func NewMetrics(r *obs.Registry) *Metrics {
	anchors := r.CounterVec("partdiff_eval_literal_anchor_total",
		"Relational literal anchor choices made by the greedy join orderer.", "kind")
	return &Metrics{
		Clauses:       r.Counter("partdiff_eval_clauses_total", "ObjectLog clause evaluations (query plans executed)."),
		TuplesScanned: r.Counter("partdiff_eval_tuples_scanned_total", "Tuples unified against while matching relational literals."),
		AnchorProbe:   anchors.With("probe"),
		AnchorIndex:   anchors.With("index"),
		AnchorScan:    anchors.With("scan"),
	}
}

// SetMetrics installs the meter set (nil restores the disabled set).
func (e *Evaluator) SetMetrics(m *Metrics) {
	if m == nil {
		m = &Metrics{}
	}
	e.met = m
}
