package eval

import (
	"testing"

	"partdiff/internal/delta"
	"partdiff/internal/objectlog"
	"partdiff/internal/types"
)

// aggDB builds works_in(emp, dept) and salary(emp, amount) plus the
// aggregate view payroll(dept, sum(salary)) with the employee as
// witness:
//
//	payroll(D, E, S) ← works_in(E,D) ∧ salary(E,S)   [sum, group=1]
func aggDB(t *testing.T) *testEnv {
	t.Helper()
	env := newTestEnv()
	env.store.CreateRelation("works_in", 2, nil)
	env.store.CreateRelation("salary", 2, nil)
	env.prog.Define(&objectlog.Def{
		Name: "payroll", Arity: 3, Aggregate: objectlog.AggSum, GroupCols: 1,
		Clauses: []objectlog.Clause{objectlog.NewClause(
			objectlog.Lit("payroll", objectlog.V("D"), objectlog.V("E"), objectlog.V("S")),
			objectlog.Lit("works_in", objectlog.V("E"), objectlog.V("D")),
			objectlog.Lit("salary", objectlog.V("E"), objectlog.V("S")))},
	})
	// dept 1: employees 10 (pay 100), 11 (pay 100) — equal values!
	// dept 2: employee 12 (pay 300)
	env.mustInsert(t, "works_in", 10, 1)
	env.mustInsert(t, "works_in", 11, 1)
	env.mustInsert(t, "works_in", 12, 2)
	env.mustInsert(t, "salary", 10, 100)
	env.mustInsert(t, "salary", 11, 100)
	env.mustInsert(t, "salary", 12, 300)
	return env
}

func TestAggregateSumWithWitnessMultiplicity(t *testing.T) {
	env := aggDB(t)
	ext, err := New(env).EvalPred("payroll", false)
	if err != nil {
		t.Fatal(err)
	}
	// The two equal salaries in dept 1 must BOTH count (witness column
	// keeps them distinct under set semantics).
	want := types.NewSet(tup(1, 200), tup(2, 300))
	if !ext.Equal(want) {
		t.Errorf("payroll = %s, want %s", ext, want)
	}
}

func TestAggregateExternalArity(t *testing.T) {
	env := aggDB(t)
	def, _ := env.prog.Def("payroll")
	if def.ExternalArity() != 2 || def.Arity != 3 {
		t.Errorf("arities: external=%d inner=%d", def.ExternalArity(), def.Arity)
	}
}

func TestAggregateCountMinMax(t *testing.T) {
	env := aggDB(t)
	for _, tc := range []struct {
		op   string
		want *types.Set
	}{
		{objectlog.AggCount, types.NewSet(tup(1, 2), tup(2, 1))},
		{objectlog.AggMin, types.NewSet(tup(1, 100), tup(2, 300))},
		{objectlog.AggMax, types.NewSet(tup(1, 100), tup(2, 300))},
	} {
		def, _ := env.prog.Def("payroll")
		d2 := *def
		d2.Name = "agg_" + tc.op
		d2.Aggregate = tc.op
		// Clone clauses with renamed head.
		d2.Clauses = nil
		for _, c := range def.Clauses {
			cc := c.Clone()
			cc.Head.Pred = d2.Name
			d2.Clauses = append(d2.Clauses, cc)
		}
		env.prog.Define(&d2)
		ext, err := New(env).EvalPred(d2.Name, false)
		if err != nil {
			t.Fatal(err)
		}
		if !ext.Equal(tc.want) {
			t.Errorf("%s = %s, want %s", tc.op, ext, tc.want)
		}
	}
}

func TestAggregateBoundGroupLookup(t *testing.T) {
	env := aggDB(t)
	ev := New(env)
	// Point query: payroll(2, X) — only dept 2 is evaluated.
	c := objectlog.NewClause(
		objectlog.Lit("h", objectlog.V("X")),
		objectlog.Lit("payroll", objectlog.CInt(2), objectlog.V("X")))
	out := types.NewSet()
	if err := ev.EvalClause(c, out); err != nil {
		t.Fatal(err)
	}
	if !out.Equal(types.NewSet(tup(300))) {
		t.Errorf("payroll(2) = %s", out)
	}
	// Fully bound membership.
	ok, err := ev.Derivable("payroll", tup(1, 200), false)
	if err != nil || !ok {
		t.Errorf("payroll(1,200): %v %v", ok, err)
	}
	ok, _ = ev.Derivable("payroll", tup(1, 999), false)
	if ok {
		t.Error("payroll(1,999) should not hold")
	}
}

func TestAggregateOldState(t *testing.T) {
	env := aggDB(t)
	d := delta.New()
	env.deltas["salary"] = d
	// Raise employee 12's salary 300 → 500 inside a transaction.
	env.store.Delete("salary", tup(12, 300))
	d.Delete(tup(12, 300))
	env.mustInsert(t, "salary", 12, 500)
	d.Insert(tup(12, 500))

	ev := New(env)
	newExt, err := ev.EvalPred("payroll", false)
	if err != nil {
		t.Fatal(err)
	}
	oldExt, err := ev.EvalPred("payroll", true)
	if err != nil {
		t.Fatal(err)
	}
	if !newExt.Contains(tup(2, 500)) {
		t.Errorf("new payroll = %s", newExt)
	}
	if !oldExt.Contains(tup(2, 300)) || oldExt.Contains(tup(2, 500)) {
		t.Errorf("old payroll = %s", oldExt)
	}
	// Exact aggregate delta by old/new diff (what recompute nodes do).
	dd := delta.Diff(oldExt, newExt)
	if !dd.Plus().Equal(types.NewSet(tup(2, 500))) || !dd.Minus().Equal(types.NewSet(tup(2, 300))) {
		t.Errorf("aggregate Δ = %s", dd)
	}
}

func TestAggregateEmptyGroupAbsent(t *testing.T) {
	env := aggDB(t)
	// Remove dept 2's only employee: the group disappears entirely.
	env.store.Delete("works_in", tup(12, 2))
	ext, err := New(env).EvalPred("payroll", false)
	if err != nil {
		t.Fatal(err)
	}
	if !ext.Equal(types.NewSet(tup(1, 200))) {
		t.Errorf("payroll = %s", ext)
	}
}

func TestAggregateSumTypeError(t *testing.T) {
	env := newTestEnv()
	env.store.CreateRelation("vals", 2, nil)
	env.prog.Define(&objectlog.Def{
		Name: "total", Arity: 2, Aggregate: objectlog.AggSum, GroupCols: 1,
		Clauses: []objectlog.Clause{objectlog.NewClause(
			objectlog.Lit("total", objectlog.V("G"), objectlog.V("V")),
			objectlog.Lit("vals", objectlog.V("G"), objectlog.V("V")))},
	})
	env.store.Insert("vals", types.Tuple{types.Int(1), types.Str("oops")})
	if _, err := New(env).EvalPred("total", false); err == nil {
		t.Error("summing a string should error")
	}
}
