package eval

import (
	"strings"
	"testing"

	"partdiff/internal/delta"
	"partdiff/internal/objectlog"
	"partdiff/internal/types"
)

func TestStatsNilSafe(t *testing.T) {
	var s *Stats
	s.RecordPred("p", 5)
	s.RecordLiteral("p", objectlog.DeltaNone, 1, 10)
	if _, ok := s.PredCard("p"); ok {
		t.Error("nil stats returned a cardinality")
	}
	if _, ok := s.LitScanned("p", objectlog.DeltaNone, 1); ok {
		t.Error("nil stats returned a scan volume")
	}
	s.Reset()
	var b strings.Builder
	if _, err := s.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "adaptive statistics: off") {
		t.Errorf("nil WriteTo: %q", b.String())
	}
}

func TestStatsEWMA(t *testing.T) {
	s := NewStats()
	// First observation is taken as-is.
	s.RecordPred("p", 100)
	if c, ok := s.PredCard("p"); !ok || c != 100 {
		t.Fatalf("first observation: %d, %v", c, ok)
	}
	// Second blends with α=0.3: 0.7*100 + 0.3*0 = 70.
	s.RecordPred("p", 0)
	if c, _ := s.PredCard("p"); c != 70 {
		t.Errorf("EWMA after 100,0: %d want 70", c)
	}
	// Repeated observations converge to the new level.
	for i := 0; i < 40; i++ {
		s.RecordPred("p", 10)
	}
	if c, _ := s.PredCard("p"); c != 10 {
		t.Errorf("EWMA converged to %d want 10", c)
	}

	// Literal volumes are keyed by (pred, Δ, mask): different masks are
	// independent observations.
	s.RecordLiteral("q", objectlog.DeltaNone, 0b01, 50)
	s.RecordLiteral("q", objectlog.DeltaNone, 0b10, 7)
	if v, _ := s.LitScanned("q", objectlog.DeltaNone, 0b01); v != 50 {
		t.Errorf("mask 01: %d", v)
	}
	if v, _ := s.LitScanned("q", objectlog.DeltaNone, 0b10); v != 7 {
		t.Errorf("mask 10: %d", v)
	}
	if _, ok := s.LitScanned("q", objectlog.DeltaPlus, 0b01); ok {
		t.Error("Δ-kind must separate keys")
	}

	s.Reset()
	if _, ok := s.PredCard("p"); ok {
		t.Error("Reset kept predicate cards")
	}

	var b strings.Builder
	s.RecordPred("p", 3)
	s.RecordLiteral("q", objectlog.DeltaPlus, 1, 9)
	if _, err := s.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "p") || !strings.Contains(out, "q") {
		t.Errorf("WriteTo missing observations:\n%s", out)
	}
}

// statsEnv: derived function tiny(X) over a 3-row base relation sel,
// plus a 200-row base relation wide with a 50-tuple Δ.
func statsEnv(t *testing.T) (*testEnv, *Evaluator) {
	t.Helper()
	env := newTestEnv()
	env.store.CreateRelation("wide", 2, nil)
	for i := int64(0); i < 200; i++ {
		env.mustInsert(t, "wide", i, i)
	}
	env.store.CreateRelation("sel", 2, nil)
	for i := int64(0); i < 3; i++ {
		env.mustInsert(t, "sel", i, i*10)
	}
	d := delta.New()
	for i := int64(0); i < 50; i++ {
		d.Insert(tup(i, i))
	}
	env.deltas["wide"] = d
	def := &objectlog.Def{Name: "tiny", Arity: 2, Clauses: []objectlog.Clause{
		objectlog.NewClause(
			objectlog.Lit("tiny", objectlog.V("X"), objectlog.V("Y")),
			objectlog.Lit("sel", objectlog.V("X"), objectlog.V("Y"))),
	}}
	if err := env.prog.Define(def); err != nil {
		t.Fatal(err)
	}
	return env, New(env)
}

// TestDerivedPrior checks the structural fallback: before any
// observation, a derived predicate's extent is estimated from its
// smallest base body literal — not the blind 10000 guess.
func TestDerivedPrior(t *testing.T) {
	_, ev := statsEnv(t)
	if got := ev.derivedPrior("tiny"); got != 3 {
		t.Errorf("derivedPrior(tiny)=%d want 3 (len of sel)", got)
	}
	if got := ev.derivedPrior("nosuch"); got != 10000 {
		t.Errorf("derivedPrior(nosuch)=%d want 10000", got)
	}
}

// TestLiteralCostAdaptiveReRanking is the optimizer feedback test: with
// stats installed, a small derived literal must out-rank the Δ anchor
// that the static model would pick, and an observed scan volume must
// override the static index-selectivity estimate.
func TestLiteralCostAdaptiveReRanking(t *testing.T) {
	_, ev := statsEnv(t)
	b := newBindings()
	deltaLit := objectlog.Lit("wide", objectlog.V("X"), objectlog.V("Y")).WithDelta(objectlog.DeltaPlus)
	derivedLit := objectlog.Lit("tiny", objectlog.V("X"), objectlog.V("Y"))

	// Static model: the derived subquery is guessed at 10000 and loses
	// to the 50-tuple Δ anchor.
	dc, _ := ev.literalCost(deltaLit, b)
	tc, _ := ev.literalCost(derivedLit, b)
	if tc <= dc {
		t.Fatalf("static: derived %d should lose to Δ %d", tc, dc)
	}

	// With stats (even empty), the structural prior already re-ranks:
	// tiny's only body literal is the 3-row sel.
	ev.SetStats(NewStats())
	tc2, _ := ev.literalCost(derivedLit, b)
	if tc2 >= dc {
		t.Errorf("prior-informed derived cost %d should beat Δ anchor %d", tc2, dc)
	}

	// An observed cardinality takes over from the prior.
	ev.stats.RecordPred("tiny", 1)
	tc3, _ := ev.literalCost(derivedLit, b)
	if tc3 >= tc2 {
		t.Errorf("observed card 1 should rank below prior: %d vs %d", tc3, tc2)
	}

	// Observed literal scan volume overrides the static index estimate:
	// pretend probing wide with X bound in fact scanned 150 tuples.
	b.bind("X", tup(1)[0])
	boundLit := objectlog.Lit("wide", objectlog.V("X"), objectlog.V("Y"))
	static, _ := ev.literalCost(boundLit, b)
	ev.stats.RecordLiteral("wide", objectlog.DeltaNone, 0b01, 150)
	observed, _ := ev.literalCost(boundLit, b)
	if observed <= static {
		t.Errorf("observed scan volume must raise the cost: static %d, observed %d", static, observed)
	}
	if observed != 8+150 {
		t.Errorf("observed cost = %d want 158", observed)
	}
}

// TestEvalFeedsStats checks the recording side: evaluating a clause
// against the store populates literal scan volumes, and a full
// enumeration of a derived predicate records its cardinality.
func TestEvalFeedsStats(t *testing.T) {
	env, ev := statsEnv(t)
	st := NewStats()
	ev.SetStats(st)

	// EvalPred over the derived predicate records its extent.
	out, err := ev.EvalPred("tiny", false)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("tiny extent = %d", out.Len())
	}
	if c, ok := st.PredCard("tiny"); !ok || c != 3 {
		t.Errorf("PredCard(tiny) = %d, %v; want 3 observed", c, ok)
	}

	// Clause evaluation records the scan volume of the anchoring
	// literal shape.
	cl := objectlog.NewClause(
		objectlog.Lit("ans", objectlog.V("X")),
		objectlog.Lit("sel", objectlog.V("X"), objectlog.V("Y")))
	if err := ev.EvalClause(cl, types.NewSet()); err != nil {
		t.Fatal(err)
	}
	if v, ok := st.LitScanned("sel", objectlog.DeltaNone, 0); !ok || v == 0 {
		t.Errorf("LitScanned(sel) = %d, %v; want observed scan", v, ok)
	}
	_ = env
}
