package eval

import (
	"fmt"

	"partdiff/internal/objectlog"
	"partdiff/internal/types"
)

// evalAggregate evaluates a call to an aggregate view (extension; §8 of
// the paper lists aggregates as future work). The definition's clauses
// compute the pre-aggregation relation (group key ++ witnesses ++
// value); this evaluates them — seeded with any bound group-key
// arguments — groups, folds, and unifies the folded tuples with the
// call.
func (e *Evaluator) evalAggregate(def *objectlog.Def, call objectlog.Literal, b *bindings, depth int, cont func() error) error {
	g := def.GroupCols
	if len(call.Args) != g+1 {
		return fmt.Errorf("aggregate %s called with arity %d, want %d", def.Name, len(call.Args), g+1)
	}
	// Pre-aggregation tuples, deduplicated across clauses (set
	// semantics over group ++ witnesses ++ value).
	pre := types.NewSet()
	for _, dc := range def.Clauses {
		fresh := dc.RenameApart(&e.counter)
		if call.Old {
			fresh = oldClause(fresh)
		}
		sub := newBindings()
		okClause := true
		for i := 0; i < g && okClause; i++ {
			cv, bok := b.value(call.Args[i])
			if !bok {
				continue
			}
			ha := fresh.Head.Args[i]
			if ha.IsVar {
				if prev, dup := sub.value(objectlog.V(ha.Var)); dup {
					okClause = prev.Equal(cv)
					continue
				}
				sub.bind(ha.Var, cv)
			} else if !ha.Const.Equal(cv) {
				okClause = false
			}
		}
		if !okClause {
			continue
		}
		err := e.evalBody(fresh.Body, sub, depth+1, func() error {
			t := make(types.Tuple, len(fresh.Head.Args))
			for i, ha := range fresh.Head.Args {
				v, ok := sub.value(ha)
				if !ok {
					return fmt.Errorf("aggregate %s: head variable %s unbound", def.Name, ha.Var)
				}
				t[i] = v
			}
			pre.Add(t)
			return nil
		})
		if err != nil {
			return err
		}
	}
	// Group and fold.
	type state struct {
		key   types.Tuple
		count int64
		sum   types.Value
		min   types.Value
		max   types.Value
		err   error
	}
	groups := map[string]*state{}
	var keys []string // deterministic-ish iteration helper (sorted later via tuples)
	pre.Each(func(t types.Tuple) bool {
		key := t[:g]
		val := t[len(t)-1]
		k := key.Key()
		st, ok := groups[k]
		if !ok {
			st = &state{key: key.Clone(), min: val, max: val, sum: types.Int(0)}
			groups[k] = st
			keys = append(keys, k)
		}
		st.count++
		if st.err == nil {
			st.sum, st.err = types.Add(st.sum, val)
		}
		if val.Compare(st.min) < 0 {
			st.min = val
		}
		if val.Compare(st.max) > 0 {
			st.max = val
		}
		return true
	})
	// Emit one folded tuple per group, unified against the call.
	out := types.NewSet()
	for _, k := range keys {
		st := groups[k]
		var folded types.Value
		switch def.Aggregate {
		case objectlog.AggCount:
			folded = types.Int(st.count)
		case objectlog.AggSum:
			if st.err != nil {
				return fmt.Errorf("aggregate %s: %w", def.Name, st.err)
			}
			folded = st.sum
		case objectlog.AggMin:
			folded = st.min
		case objectlog.AggMax:
			folded = st.max
		default:
			return fmt.Errorf("unknown aggregate operator %q", def.Aggregate)
		}
		out.Add(append(st.key.Clone(), folded))
	}
	// Unify each folded tuple with the call arguments (deterministic
	// order for reproducible evaluation).
	for _, t := range out.Tuples() {
		m := b.mark()
		local := map[string]int{}
		match := true
		for i, ca := range call.Args {
			if v, ok := b.value(ca); ok {
				if !t[i].Equal(v) {
					match = false
					break
				}
				continue
			}
			if j, dup := local[ca.Var]; dup {
				if !t[i].Equal(t[j]) {
					match = false
					break
				}
				continue
			}
			local[ca.Var] = i
			b.bind(ca.Var, t[i])
		}
		if match {
			if err := cont(); err != nil {
				b.undo(m)
				return err
			}
		}
		b.undo(m)
	}
	return nil
}
