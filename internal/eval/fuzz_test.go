package eval

import (
	"math/rand"
	"testing"
	"testing/quick"

	"partdiff/internal/objectlog"
	"partdiff/internal/storage"
	"partdiff/internal/types"
)

// Differential testing of the optimized evaluator (greedy literal
// ordering, index lookups, early termination) against the brute-force
// reference evaluator, over random databases and random safe clauses.

// randClauseDB builds a random database with relations p1(x,y), p2(x,y),
// p3(x) over a small domain.
func randClauseDB(r *rand.Rand) *storage.Store {
	st := storage.NewStore()
	st.CreateRelation("p1", 2, nil)
	st.CreateRelation("p2", 2, nil)
	st.CreateRelation("p3", 1, nil)
	for i := 0; i < 4+r.Intn(8); i++ {
		st.Insert("p1", types.Tuple{types.Int(r.Int63n(5)), types.Int(r.Int63n(5))})
	}
	for i := 0; i < 4+r.Intn(8); i++ {
		st.Insert("p2", types.Tuple{types.Int(r.Int63n(5)), types.Int(r.Int63n(5))})
	}
	for i := 0; i < 2+r.Intn(4); i++ {
		st.Insert("p3", types.Tuple{types.Int(r.Int63n(5))})
	}
	return st
}

// randSafeClause builds a random clause over p1/p2/p3 with joins,
// comparisons, arithmetic and negation, then checks safety; ok reports
// whether the sample is usable.
func randSafeClause(r *rand.Rand) (objectlog.Clause, bool) {
	pool := []string{"A", "B", "C", "D"}
	v := func() objectlog.Term { return objectlog.V(pool[r.Intn(len(pool))]) }
	term := func() objectlog.Term {
		if r.Intn(4) == 0 {
			return objectlog.CInt(r.Int63n(5))
		}
		return v()
	}
	var body []objectlog.Literal
	n := 1 + r.Intn(3)
	for i := 0; i < n; i++ {
		switch r.Intn(3) {
		case 0:
			body = append(body, objectlog.Lit("p1", term(), term()))
		case 1:
			body = append(body, objectlog.Lit("p2", term(), term()))
		default:
			body = append(body, objectlog.Lit("p3", term()))
		}
	}
	// Collect positive vars for safe extras.
	seen := map[string]bool{}
	for _, l := range body {
		for _, a := range l.Args {
			if a.IsVar {
				seen[a.Var] = true
			}
		}
	}
	var vars []string
	for _, p := range pool {
		if seen[p] {
			vars = append(vars, p)
		}
	}
	if len(vars) == 0 {
		return objectlog.Clause{}, false
	}
	bv := func() objectlog.Term { return objectlog.V(vars[r.Intn(len(vars))]) }
	// Maybe a comparison.
	if r.Intn(2) == 0 {
		ops := []string{objectlog.BuiltinLT, objectlog.BuiltinLE, objectlog.BuiltinGT,
			objectlog.BuiltinGE, objectlog.BuiltinNE, objectlog.BuiltinEQ}
		body = append(body, objectlog.Lit(ops[r.Intn(len(ops))], bv(), bv()))
	}
	// Maybe arithmetic computing a fresh variable.
	if r.Intn(2) == 0 {
		ops := []string{objectlog.BuiltinPlus, objectlog.BuiltinMinus, objectlog.BuiltinTimes}
		fresh := "T"
		body = append(body, objectlog.Lit(ops[r.Intn(len(ops))], bv(), objectlog.CInt(1+r.Int63n(3)), objectlog.V(fresh)))
		vars = append(vars, fresh)
	}
	// Maybe a safe negation.
	if r.Intn(2) == 0 {
		if r.Intn(2) == 0 {
			body = append(body, objectlog.NotLit("p3", bv()))
		} else {
			body = append(body, objectlog.NotLit("p1", bv(), bv()))
		}
	}
	// Head: 1-2 bound variables.
	head := objectlog.Literal{Pred: "h"}
	for i := 0; i < 1+r.Intn(2); i++ {
		head.Args = append(head.Args, objectlog.V(vars[r.Intn(len(vars))]))
	}
	c := objectlog.Clause{Head: head, Body: body}
	if err := objectlog.CheckSafe(c); err != nil {
		return objectlog.Clause{}, false
	}
	return c, true
}

// TestEvaluatorMatchesReference_Quick: the optimized evaluator and the
// brute-force reference evaluator must compute identical result sets on
// random databases and random safe clauses.
func TestEvaluatorMatchesReference_Quick(t *testing.T) {
	prog := objectlog.NewProgram()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		st := randClauseDB(r)
		c, ok := randSafeClause(r)
		if !ok {
			return true // unusable sample
		}
		env := NewStoreEnv(st, prog)
		want := types.NewSet()
		if err := ReferenceEval(env, c, want); err != nil {
			t.Logf("reference failed on %s: %v", c, err)
			return false
		}
		got := types.NewSet()
		if err := New(env).EvalClause(c, got); err != nil {
			t.Logf("evaluator failed on %s: %v", c, err)
			return false
		}
		if !got.Equal(want) {
			t.Logf("clause %s:\n  optimized %s\n  reference %s", c, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

// TestExpansionPreservesSemantics_Quick: evaluating a clause that calls
// a derived predicate as a subquery must equal evaluating its full
// expansion.
func TestExpansionPreservesSemantics_Quick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		st := randClauseDB(r)
		// Random derived view over p1/p2.
		inner, ok := randSafeClause(r)
		if !ok {
			return true
		}
		inner.Head.Pred = "view"
		prog := objectlog.NewProgram()
		if err := prog.Define(&objectlog.Def{
			Name: "view", Arity: len(inner.Head.Args),
			Clauses: []objectlog.Clause{inner},
		}); err != nil {
			return true
		}
		// Outer clause calling the view joined with p3.
		callArgs := make([]objectlog.Term, len(inner.Head.Args))
		for i := range callArgs {
			callArgs[i] = objectlog.V("X")
			if i > 0 {
				callArgs[i] = objectlog.V("Y")
			}
		}
		outer := objectlog.NewClause(
			objectlog.Lit("q", callArgs[0]),
			objectlog.Literal{Pred: "view", Args: callArgs},
			objectlog.Lit("p3", callArgs[0]))
		if objectlog.CheckSafe(outer) != nil {
			return true
		}

		env := NewStoreEnv(st, prog)
		viaSubquery := types.NewSet()
		if err := New(env).EvalClause(outer, viaSubquery); err != nil {
			t.Logf("subquery eval failed: %v", err)
			return false
		}
		expanded, err := objectlog.Expand(outer, prog, nil)
		if err != nil {
			t.Logf("expand failed: %v", err)
			return false
		}
		emptyProg := objectlog.NewProgram()
		envFlat := NewStoreEnv(st, emptyProg)
		viaExpansion := types.NewSet()
		for _, ec := range expanded {
			if err := New(envFlat).EvalClause(ec, viaExpansion); err != nil {
				t.Logf("expanded eval failed on %s: %v", ec, err)
				return false
			}
		}
		if !viaSubquery.Equal(viaExpansion) {
			t.Logf("outer %s\n  subquery  %s\n  expansion %s", outer, viaSubquery, viaExpansion)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Error(err)
	}
}

// TestReferenceRejectsUnsupported documents the reference evaluator's
// scope.
func TestReferenceRejectsUnsupported(t *testing.T) {
	st := storage.NewStore()
	st.CreateRelation("p", 1, nil)
	prog := objectlog.NewProgram()
	prog.Define(&objectlog.Def{Name: "d", Arity: 1, Clauses: []objectlog.Clause{
		objectlog.NewClause(objectlog.Lit("d", objectlog.V("X")), objectlog.Lit("p", objectlog.V("X"))),
	}})
	env := NewStoreEnv(st, prog)
	bad := []objectlog.Clause{
		objectlog.NewClause(objectlog.Lit("h", objectlog.V("X")),
			objectlog.Lit("p", objectlog.V("X")).WithDelta(objectlog.DeltaPlus)),
		objectlog.NewClause(objectlog.Lit("h", objectlog.V("X")),
			objectlog.Lit("p", objectlog.V("X")).WithOld()),
		objectlog.NewClause(objectlog.Lit("h", objectlog.V("X")),
			objectlog.Lit("d", objectlog.V("X"))),
	}
	for i, c := range bad {
		if err := ReferenceEval(env, c, types.NewSet()); err == nil {
			t.Errorf("case %d: unsupported clause accepted", i)
		}
	}
}
