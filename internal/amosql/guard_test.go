package amosql

import (
	"strings"
	"sync"
	"testing"

	"partdiff/internal/rules"
	"partdiff/internal/types"
)

// During a check phase, the owning goroutine may re-enter the session
// (rule actions issue updates into the same transaction), but a second
// goroutine gets a clear "session busy" error instead of racing on the
// store and the undo log.
func TestSessionGuardReentrantVsConcurrent(t *testing.T) {
	s := NewSession(rules.Incremental)
	var sameErr, otherErr error
	s.RegisterProcedure("react", func(args []types.Value) error {
		// Same goroutine: allowed (the paper's cascading actions).
		s.SetIfaceVar("_i", args[0])
		_, sameErr = s.Exec(`set touched(:_i) = true;`)
		// Another goroutine while the session is mid-commit: rejected.
		done := make(chan error, 1)
		go func() {
			_, err := s.Exec(`select q for each item i where quantity(i) = q;`)
			done <- err
		}()
		otherErr = <-done
		return nil
	})
	s.MustExec(`
create type item;
create function quantity(item) -> integer;
create function touched(item) -> boolean;
create rule watch() as
    when for each item i where quantity(i) < 0
    do react(i);
create item instances :a;
activate watch();
`)
	s.MustExec(`set quantity(:a) = -1;`)
	if sameErr != nil {
		t.Errorf("same-goroutine re-entrant Exec should be admitted: %v", sameErr)
	}
	if otherErr == nil || !strings.Contains(otherErr.Error(), "session busy") {
		t.Errorf("cross-goroutine Exec should be rejected with a clear error, got: %v", otherErr)
	}
	// The action's update joined the committing transaction.
	r, err := s.Query(`select i for each item i where touched(i) = true;`)
	if err != nil || len(r.Tuples) != 1 {
		t.Errorf("re-entrant update lost: %v %v", r, err)
	}
}

// Hammering the session from many goroutines never races (run under
// -race): every call either succeeds or reports "session busy".
func TestSessionGuardUnderContention(t *testing.T) {
	s := NewSession(rules.Incremental)
	s.MustExec(`
create type item;
create function quantity(item) -> integer;
create item instances :a;
`)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, err := s.Exec(`set quantity(:a) = 1;`)
				if err != nil && !strings.Contains(err.Error(), "session busy") {
					t.Errorf("unexpected error under contention: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := s.CheckInvariants(); err != nil {
		t.Errorf("invariants after contention: %v", err)
	}
}
