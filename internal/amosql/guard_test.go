package amosql

import (
	"errors"
	"sync"
	"testing"
	"time"

	"partdiff/internal/rules"
	"partdiff/internal/txn"
	"partdiff/internal/types"
)

// During a check phase, the owning goroutine may re-enter the session
// (rule actions issue updates into the same transaction), but a second
// goroutine's writer admission queues — and, when the check phase
// outlasts its deadline, fails with the typed txn.ErrSessionBusy
// instead of racing on the store and the undo log.
func TestSessionGuardReentrantVsConcurrent(t *testing.T) {
	s := NewSession(rules.Incremental)
	// The concurrent Exec below is issued while this goroutine is
	// mid-commit and waits for its result synchronously, so the gate
	// cannot free before the deadline; keep it short.
	s.SetWriterWait(50 * time.Millisecond)
	var sameErr, otherErr error
	s.RegisterProcedure("react", func(args []types.Value) error {
		// Same goroutine: allowed (the paper's cascading actions).
		s.SetIfaceVar("_i", args[0])
		_, sameErr = s.Exec(`set touched(:_i) = true;`)
		// Another goroutine while the session is mid-commit: queued
		// until the admission deadline, then typed rejection.
		done := make(chan error, 1)
		go func() {
			_, err := s.Exec(`set quantity(:_i) = 7;`)
			done <- err
		}()
		otherErr = <-done
		return nil
	})
	s.MustExec(`
create type item;
create function quantity(item) -> integer;
create function touched(item) -> boolean;
create rule watch() as
    when for each item i where quantity(i) < 0
    do react(i);
create item instances :a;
activate watch();
`)
	s.MustExec(`set quantity(:a) = -1;`)
	if sameErr != nil {
		t.Errorf("same-goroutine re-entrant Exec should be admitted: %v", sameErr)
	}
	if !errors.Is(otherErr, txn.ErrSessionBusy) {
		t.Errorf("cross-goroutine Exec during the check phase should time out with txn.ErrSessionBusy, got: %v", otherErr)
	}
	// The action's update joined the committing transaction.
	r, err := s.Query(`select i for each item i where touched(i) = true;`)
	if err != nil || len(r.Tuples) != 1 {
		t.Errorf("re-entrant update lost: %v %v", r, err)
	}
}

// A snapshot read from another goroutine never needs the gate at all:
// it must succeed even while the session is mid-commit.
func TestSnapshotReadDuringCheckPhase(t *testing.T) {
	s := NewSession(rules.Incremental)
	var readErr error
	var rows int
	s.RegisterProcedure("react", func(args []types.Value) error {
		done := make(chan struct{})
		go func() {
			defer close(done)
			r, err := s.Query(`select quantity(i) for each item i;`)
			if err != nil {
				readErr = err
				return
			}
			rows = len(r.Tuples)
		}()
		<-done
		return nil
	})
	s.MustExec(`
create type item;
create function quantity(item) -> integer;
create rule watch() as
    when for each item i where quantity(i) < 0
    do react(i);
create item instances :a;
activate watch();
`)
	s.MustExec(`set quantity(:a) = -1;`)
	if readErr != nil {
		t.Fatalf("snapshot read during check phase: %v", readErr)
	}
	// The reader pinned the pre-transaction snapshot: the item had no
	// quantity yet (the set to -1 is still uncommitted).
	if rows != 0 {
		t.Errorf("snapshot read saw %d uncommitted quantity rows, want 0", rows)
	}
}

// Hammering the session from many goroutines never races (run under
// -race) and, with admission queueing, every call succeeds — the gate
// serializes writers instead of rejecting them.
func TestSessionGuardUnderContention(t *testing.T) {
	s := NewSession(rules.Incremental)
	s.MustExec(`
create type item;
create function quantity(item) -> integer;
create item instances :a;
`)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := s.Exec(`set quantity(:a) = 1;`); err != nil {
					t.Errorf("write under contention should queue, not fail: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := s.CheckInvariants(); err != nil {
		t.Errorf("invariants after contention: %v", err)
	}
}
