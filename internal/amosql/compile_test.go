package amosql

import (
	"strings"
	"testing"

	"partdiff/internal/catalog"
	"partdiff/internal/objectlog"
	"partdiff/internal/types"
)

func testCompiler(t *testing.T) *compiler {
	t.Helper()
	cat := catalog.New()
	cat.CreateType("item", "")
	cat.DeclareFunction(&catalog.Function{
		Name: "quantity", Kind: catalog.Stored,
		Params:  []catalog.Param{{Name: "i", Type: "item"}},
		Results: []string{catalog.TypeInteger},
	})
	cat.DeclareFunction(&catalog.Function{
		Name: "flagged", Kind: catalog.Stored,
		Params:  []catalog.Param{{Name: "i", Type: "item"}},
		Results: []string{catalog.TypeBoolean},
	})
	cat.DeclareFunction(&catalog.Function{
		Name: "noise", Kind: catalog.Foreign,
		Results: []string{catalog.TypeInteger},
		Fn:      func([]types.Value) ([][]types.Value, error) { return nil, nil },
	})
	return &compiler{
		cat:   cat,
		iface: map[string]types.Value{"it": types.Obj(7)},
	}
}

func mustExpr(t *testing.T, src string) Expr {
	t.Helper()
	st, err := ParseOne("select " + src + ";")
	if err != nil {
		t.Fatal(err)
	}
	return st.(SelectStmt).Query.Exprs[0]
}

func TestDNFNormalization(t *testing.T) {
	cases := []struct {
		src  string
		want int // number of disjuncts
	}{
		{"quantity(i) < 5", 1},
		{"quantity(i) < 5 or quantity(i) > 9", 2},
		{"(quantity(i) < 5 or quantity(i) > 9) and flagged(i)", 2},
		{"not (quantity(i) < 5 or quantity(i) > 9)", 1},     // De Morgan: conjunction
		{"not (quantity(i) < 5 and quantity(i) > 9)", 2},    // De Morgan: disjunction
		{"not not (quantity(i) < 5 or quantity(i) > 3)", 2}, // double negation
	}
	for _, tc := range cases {
		d := dnf(mustExpr(t, tc.src))
		if len(d) != tc.want {
			t.Errorf("dnf(%s): %d disjuncts, want %d", tc.src, len(d), tc.want)
		}
	}
}

func TestDNFNegationPushing(t *testing.T) {
	// not (a < b) flips to >=.
	d := dnf(mustExpr(t, "not (quantity(i) < 5)"))
	if len(d) != 1 || len(d[0]) != 1 {
		t.Fatalf("dnf=%v", d)
	}
	cmp, ok := d[0][0].(Binary)
	if !ok || cmp.Op != ">=" {
		t.Errorf("flipped to %v", d[0][0])
	}
	// not (f(x) = v) stays a negated atom (set-valued semantics).
	d2 := dnf(mustExpr(t, "not (quantity(i) = 5)"))
	if _, ok := d2[0][0].(Unary); !ok {
		t.Errorf("negated equality over call should stay an atom: %v", d2[0][0])
	}
	// not (x = y) without calls becomes !=.
	d3 := dnf(mustExpr(t, "not (1 = 2)"))
	if cmp, ok := d3[0][0].(Binary); !ok || cmp.Op != "!=" {
		t.Errorf("constant negated equality: %v", d3[0][0])
	}
	// not over a bare call stays an atom.
	d4 := dnf(mustExpr(t, "not flagged(i)"))
	if _, ok := d4[0][0].(Unary); !ok {
		t.Errorf("negated call: %v", d4[0][0])
	}
}

func TestCompileQueryBasics(t *testing.T) {
	c := testCompiler(t)
	q := &SelectQuery{
		Exprs:   []Expr{VarRef{Name: "i"}},
		ForEach: []ParamDecl{{Type: "item", Name: "i"}},
		Where:   mustExpr(t, "quantity(i) < 5"),
	}
	def, names, err := c.compileQuery("h", nil, q)
	if err != nil {
		t.Fatal(err)
	}
	if def.Arity != 1 || len(def.Clauses) != 1 || names[0] != "i" {
		t.Fatalf("def=%+v names=%v", def, names)
	}
	s := def.Clauses[0].String()
	if !strings.Contains(s, "type:item(i)") || !strings.Contains(s, "quantity(i,") {
		t.Errorf("clause=%s", s)
	}
}

func TestCompileEqualityFusesCallResult(t *testing.T) {
	// quantity(i) = 5 compiles to one literal quantity(i,5) — no eq.
	c := testCompiler(t)
	q := &SelectQuery{
		Exprs:   []Expr{VarRef{Name: "i"}},
		ForEach: []ParamDecl{{Type: "item", Name: "i"}},
		Where:   mustExpr(t, "quantity(i) = 5"),
	}
	def, _, err := c.compileQuery("h", nil, q)
	if err != nil {
		t.Fatal(err)
	}
	s := def.Clauses[0].String()
	if !strings.Contains(s, "quantity(i,5)") {
		t.Errorf("clause=%s", s)
	}
	for _, l := range def.Clauses[0].Body {
		if l.Pred == objectlog.BuiltinEQ {
			t.Errorf("unnecessary eq literal in %s", s)
		}
	}
}

func TestCompileInterfaceVariable(t *testing.T) {
	c := testCompiler(t)
	q := &SelectQuery{
		Exprs:   []Expr{VarRef{Name: "i"}},
		ForEach: []ParamDecl{{Type: "item", Name: "i"}},
		Where:   Binary{Op: "=", L: VarRef{Name: "i"}, R: IfaceRef{Name: "it"}},
	}
	def, _, err := c.compileQuery("h", nil, q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(def.Clauses[0].String(), "#7") {
		t.Errorf("interface constant not inlined: %s", def.Clauses[0])
	}
	// Undefined interface variable errors.
	q.Where = Binary{Op: "=", L: VarRef{Name: "i"}, R: IfaceRef{Name: "ghost"}}
	if _, _, err := c.compileQuery("h2", nil, q); err == nil {
		t.Error("undefined interface variable accepted")
	}
}

func TestCompileErrors(t *testing.T) {
	c := testCompiler(t)
	mk := func(where Expr, decls ...ParamDecl) error {
		q := &SelectQuery{Exprs: []Expr{VarRef{Name: "i"}}, ForEach: decls, Where: where}
		_, _, err := c.compileQuery("h", nil, q)
		return err
	}
	itemI := ParamDecl{Type: "item", Name: "i"}
	if err := mk(mustExpr(t, "quantity(i) < 5")); err == nil {
		t.Error("undeclared variable accepted")
	}
	if err := mk(mustExpr(t, "nosuchfn(i) < 5"), itemI); err == nil {
		t.Error("unknown function accepted")
	}
	if err := mk(mustExpr(t, "noise() < 5"), itemI); err == nil {
		t.Error("foreign function in condition accepted")
	}
	if err := mk(mustExpr(t, "quantity(i, i) < 5"), itemI); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := mk(mustExpr(t, "quantity(i) + 1"), itemI); err == nil {
		t.Error("non-boolean predicate accepted")
	}
	if err := mk(nil, itemI, itemI); err == nil {
		t.Error("duplicate declaration accepted")
	}
	if err := mk(nil, ParamDecl{Type: "nosuchtype", Name: "x"}); err == nil {
		t.Error("unknown type accepted")
	}
	if err := mk(nil, ParamDecl{Type: "item"}); err == nil {
		t.Error("unnamed declaration accepted")
	}
}

func TestCompileTrueFalsePredicates(t *testing.T) {
	c := testCompiler(t)
	q := &SelectQuery{
		Exprs:   []Expr{VarRef{Name: "i"}},
		ForEach: []ParamDecl{{Type: "item", Name: "i"}},
		Where:   ConstExpr{Value: types.Bool(true)},
	}
	if _, _, err := c.compileQuery("h", nil, q); err != nil {
		t.Errorf("constant true predicate: %v", err)
	}
	q.Where = ConstExpr{Value: types.Bool(false)}
	if _, _, err := c.compileQuery("h2", nil, q); err == nil {
		t.Error("constant false predicate should be reported")
	}
}

func TestAggregateCallRecognizer(t *testing.T) {
	c := testCompiler(t)
	q := &SelectQuery{Exprs: []Expr{mustExpr(t, "sum(quantity(i))")}}
	op, inner, ok := c.aggregateCall(q)
	if !ok || op != "sum" {
		t.Fatalf("op=%s ok=%v", op, ok)
	}
	if _, isCall := inner.(Call); !isCall {
		t.Errorf("inner=%v", inner)
	}
	// Two result expressions: not an aggregate select.
	q2 := &SelectQuery{Exprs: []Expr{mustExpr(t, "sum(quantity(i))"), VarRef{Name: "i"}}}
	if _, _, ok := c.aggregateCall(q2); ok {
		t.Error("multi-expr select recognized as aggregate")
	}
	// User function shadows the aggregate name.
	c.cat.DeclareFunction(&catalog.Function{
		Name: "sum", Kind: catalog.Stored,
		Params:  []catalog.Param{{Type: catalog.TypeInteger}},
		Results: []string{catalog.TypeInteger},
	})
	if _, _, ok := c.aggregateCall(q); ok {
		t.Error("shadowed aggregate name recognized")
	}
}

func TestCompileUnaryMinus(t *testing.T) {
	c := testCompiler(t)
	q := &SelectQuery{
		Exprs:   []Expr{mustExpr(t, "-quantity(i)")},
		ForEach: []ParamDecl{{Type: "item", Name: "i"}},
	}
	def, _, err := c.compileQuery("h", nil, q)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range def.Clauses[0].Body {
		if l.Pred == objectlog.BuiltinMinus {
			found = true
		}
	}
	if !found {
		t.Errorf("unary minus not compiled: %s", def.Clauses[0])
	}
}
