package amosql

import (
	"strings"
	"testing"

	"partdiff/internal/rules"
	"partdiff/internal/types"
)

func TestExplainSelect(t *testing.T) {
	s, _ := newPaperSession(t, rules.Incremental)
	res := s.MustExec(`explain select i for each item i where quantity(i) < threshold(i);`)
	msg := res[0].Message
	// The compiled clause shows the extent literal and the comparison;
	// threshold stays an unexpanded call at query level.
	for _, want := range []string{"type:item(i)", "quantity(i,", "threshold(i,", "<"} {
		if !strings.Contains(msg, want) {
			t.Errorf("explain missing %q:\n%s", want, msg)
		}
	}
}

func TestExplainAggregateSelect(t *testing.T) {
	s, _ := newPaperSession(t, rules.Incremental)
	res := s.MustExec(`explain select sum(quantity(i)) for each item i;`)
	if !strings.Contains(res[0].Message, "aggregate sum over:") {
		t.Errorf("explain=%s", res[0].Message)
	}
}

func TestExplainRule(t *testing.T) {
	s, _ := newPaperSession(t, rules.Incremental)
	s.MustExec(monitorItemsRule)
	// Before activation.
	res := s.MustExec(`explain rule monitor_items;`)
	if !strings.Contains(res[0].Message, "(not activated)") {
		t.Errorf("explain=%s", res[0].Message)
	}
	s.MustExec(`set quantity(:item1) = 5000; activate monitor_items();`)
	res = s.MustExec(`explain rule monitor_items;`)
	msg := res[0].Message
	// The expanded condition and the five positive partial
	// differentials of fig. 2 must be visible.
	for _, want := range []string{
		"rule monitor_items condition:",
		"activation monitor_items monitors",
		"/Δ+quantity",
		"/Δ+consume_freq",
		"/Δ+delivery_time",
		"/Δ+supplies",
		"/Δ+min_stock",
		"Δ+quantity(", // the differential clause body
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("explain missing %q:\n%s", want, msg)
		}
	}
	if _, err := s.Exec(`explain rule nosuch;`); err == nil {
		t.Error("unknown rule accepted")
	}
}

func TestExplainAggregateRule(t *testing.T) {
	s := NewSession(rules.Incremental)
	s.RegisterProcedure("hit", func([]types.Value) error { return nil })
	s.MustExec(`
create type emp;
create function pay(emp) -> integer;
create function total() -> integer
    as select sum(pay(e)) for each emp e where pay(e) > 0;
create rule watch() as when for each emp e where total() > 100 do hit(e);
activate watch();
`)
	res := s.MustExec(`explain rule watch;`)
	// The condition references the aggregate, whose own monitoring is
	// re-evaluation; the condition itself still has differentials
	// (w.r.t. total and the extent).
	if !strings.Contains(res[0].Message, "total(") {
		t.Errorf("explain=%s", res[0].Message)
	}
}

func TestParseExplain(t *testing.T) {
	st := mustParseOne(t, `explain select 1;`).(ExplainStmt)
	if st.Query == nil || st.Rule != "" {
		t.Errorf("%+v", st)
	}
	st = mustParseOne(t, `explain rule r;`).(ExplainStmt)
	if st.Rule != "r" || st.Query != nil {
		t.Errorf("%+v", st)
	}
	if _, err := ParseOne(`explain frobnicate;`); err == nil {
		t.Error("bad explain accepted")
	}
}
