package amosql

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"partdiff/internal/obs"
)

// bundleExtraWait bounds how long a diagnostics bundle waits for the
// session writer gate before shipping without the gated reports. The
// bundle writer runs on its own goroutine, so waiting briefly behind a
// committing writer is fine — but a wedged session must not wedge the
// bundle that is supposed to explain it.
const bundleExtraWait = 3 * time.Second

// FlightRecorder returns the session's flight recorder (never nil; it
// stays disarmed until Arm).
func (s *Session) FlightRecorder() *obs.Recorder { return s.obs.Flight }

// SetFlightRecorder arms the always-on flight recorder and directs its
// diagnostics bundles to dir. An empty dir arms capture without disk
// bundles (triggers are still counted) — the A/B overhead mode the
// bench harness uses.
func (s *Session) SetFlightRecorder(dir string) {
	s.obs.Flight.SetDir(dir)
	s.obs.Flight.Arm()
}

// bundleExtras is the session's obs.BundleSource: the diagnostic
// reports that need consistent session state — the profiler report, the
// hybrid chooser journal, and the pruned propagation network in DOT
// form. It runs on the recorder's bundle-writer goroutine, so it must
// acquire the session writer gate like any other outside caller; if the
// gate cannot be had within bundleExtraWait (a stuck writer is a likely
// reason the bundle exists at all), the bundle records why instead of
// blocking.
func (s *Session) bundleExtras(add func(name string, content []byte)) {
	ctx, cancel := context.WithTimeout(context.Background(), bundleExtraWait)
	defer cancel()
	if err := s.enterCtx(ctx); err != nil {
		add("extras-error.txt", []byte(fmt.Sprintf(
			"session reports unavailable: %v\n(the gated reports need the session writer gate; a stuck or corrupt session cannot provide them)\n", err)))
		return
	}
	var errp error
	defer s.leave(&errp)

	var prof bytes.Buffer
	if err := s.ProfileReport(&prof, 20); err == nil {
		add("profile.txt", prof.Bytes())
	}
	var hyb bytes.Buffer
	if err := s.HybridReport(&hyb); err == nil {
		add("hybrid.txt", hyb.Bytes())
	}
	if net := s.mgr.Network(); net != nil {
		add("network.dot", []byte(net.Dot()))
	}
}
