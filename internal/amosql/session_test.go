package amosql

import (
	"fmt"
	"strings"
	"testing"

	"partdiff/internal/rules"
	"partdiff/internal/types"
)

// paperSchema is the complete schema of §3.1, verbatim from the paper.
const paperSchema = `
create type item;
create type supplier;
create function quantity(item) -> integer;
create function max_stock(item) -> integer;
create function min_stock(item) -> integer;
create function consume_freq(item) -> integer;
create function supplies(supplier) -> item;
create function delivery_time(item i, supplier s) -> integer;
create function threshold(item i) -> integer
    as
    select consume_freq(i) *
        delivery_time(i, s) + min_stock(i)
    for each supplier s where supplies(s) = i;
`

// paperPopulation populates the database exactly as in §3.1.
const paperPopulation = `
create item instances :item1, :item2;
set max_stock(:item1) = 5000;
set max_stock(:item2) = 7500;
set min_stock(:item1) = 100;
set min_stock(:item2) = 200;
set consume_freq(:item1) = 20;
set consume_freq(:item2) = 30;
create supplier instances :sup1, :sup2;
set supplies(:sup1) = :item1;
set supplies(:sup2) = :item2;
set delivery_time(:item1, :sup1) = 2;
set delivery_time(:item2, :sup2) = 3;
`

const monitorItemsRule = `
create rule monitor_items() as
     when for each item i
     where quantity(i) < threshold(i)
     do order(i, max_stock(i) - quantity(i));
`

// order records placed orders for test inspection.
type orderLog struct {
	orders []string
}

func (o *orderLog) register(s *Session) {
	s.RegisterProcedure("order", func(args []types.Value) error {
		o.orders = append(o.orders, fmt.Sprintf("order(%s, %s)", args[0], args[1]))
		return nil
	})
}

func newPaperSession(t *testing.T, mode rules.Mode) (*Session, *orderLog) {
	t.Helper()
	s := NewSession(mode)
	log := &orderLog{}
	log.register(s)
	if _, err := s.Exec(paperSchema); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(paperPopulation); err != nil {
		t.Fatal(err)
	}
	return s, log
}

// TestRunningExample_Thresholds checks the §3.1 derived thresholds:
// item1: 20*2+100 = 140, item2: 30*3+200 = 290.
func TestRunningExample_Thresholds(t *testing.T) {
	s, _ := newPaperSession(t, rules.Incremental)
	r, err := s.Query(`select threshold(i) for each item i where i = :item1;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tuples) != 1 || !r.Tuples[0][0].Equal(types.Int(140)) {
		t.Errorf("threshold(item1) = %v, want 140", r.Tuples)
	}
	r, _ = s.Query(`select threshold(i) for each item i where i = :item2;`)
	if len(r.Tuples) != 1 || !r.Tuples[0][0].Equal(types.Int(290)) {
		t.Errorf("threshold(item2) = %v, want 290", r.Tuples)
	}
}

// TestRunningExample_MonitorItems runs the complete paper scenario: the
// rule orders new items when the quantity drops below the threshold.
func TestRunningExample_MonitorItems(t *testing.T) {
	for _, mode := range []rules.Mode{rules.Incremental, rules.Naive, rules.Hybrid} {
		t.Run(mode.String(), func(t *testing.T) {
			s, log := newPaperSession(t, mode)
			s.MustExec(monitorItemsRule)
			s.MustExec(`set quantity(:item1) = 5000;`)
			s.MustExec(`set quantity(:item2) = 7500;`)
			s.MustExec(`activate monitor_items();`)

			// Above threshold: nothing ordered.
			s.MustExec(`set quantity(:item1) = 200;`)
			if len(log.orders) != 0 {
				t.Fatalf("orders=%v", log.orders)
			}
			// Drop below 140: order placed to refill to max_stock.
			s.MustExec(`set quantity(:item1) = 120;`)
			if len(log.orders) != 1 || log.orders[0] != "order(#1, 4880)" {
				t.Fatalf("orders=%v", log.orders)
			}
			// Strict semantics: a further drop while already low does
			// not re-order ("we only want to order an item once when it
			// becomes low in stock").
			s.MustExec(`set quantity(:item1) = 110;`)
			if len(log.orders) != 1 {
				t.Fatalf("re-ordered: %v", log.orders)
			}
			// item2 drops below its own threshold 290.
			s.MustExec(`set quantity(:item2) = 289;`)
			if len(log.orders) != 2 || log.orders[1] != "order(#2, 7211)" {
				t.Fatalf("orders=%v", log.orders)
			}
		})
	}
}

// TestRunningExample_DeferredSemantics: within one transaction, a dip
// below threshold that is restored before commit must not trigger.
func TestRunningExample_DeferredSemantics(t *testing.T) {
	s, log := newPaperSession(t, rules.Incremental)
	s.MustExec(monitorItemsRule)
	s.MustExec(`set quantity(:item1) = 5000;`)
	s.MustExec(`activate monitor_items();`)
	s.MustExec(`
begin;
set quantity(:item1) = 100;
set quantity(:item1) = 5000;
commit;
`)
	if len(log.orders) != 0 {
		t.Errorf("deferred rule fired on transient dip: %v", log.orders)
	}
}

// TestRunningExample_ThresholdChangeTriggersRule: the rule must also
// react to threshold-side influents (min_stock), as the dependency
// network of fig. 1 prescribes.
func TestRunningExample_ThresholdChangeTriggersRule(t *testing.T) {
	s, log := newPaperSession(t, rules.Incremental)
	s.MustExec(monitorItemsRule)
	s.MustExec(`set quantity(:item1) = 150;`) // above threshold 140
	s.MustExec(`activate monitor_items();`)
	// Raising min_stock from 100 to 200 raises the threshold to 240;
	// quantity 150 is now below it.
	s.MustExec(`set min_stock(:item1) = 200;`)
	if len(log.orders) != 1 || log.orders[0] != "order(#1, 4850)" {
		t.Errorf("orders=%v", log.orders)
	}
}

func TestRuleDeactivation(t *testing.T) {
	s, log := newPaperSession(t, rules.Incremental)
	s.MustExec(monitorItemsRule)
	s.MustExec(`set quantity(:item1) = 5000;`)
	s.MustExec(`activate monitor_items();`)
	s.MustExec(`deactivate monitor_items();`)
	s.MustExec(`set quantity(:item1) = 1;`)
	if len(log.orders) != 0 {
		t.Errorf("deactivated rule fired: %v", log.orders)
	}
}

func TestParameterizedRuleActivation(t *testing.T) {
	s, log := newPaperSession(t, rules.Incremental)
	s.MustExec(`
create rule monitor_item(item i) as
    when quantity(i) < threshold(i)
    do order(i, max_stock(i) - quantity(i));
`)
	s.MustExec(`set quantity(:item1) = 5000;`)
	s.MustExec(`set quantity(:item2) = 7500;`)
	s.MustExec(`activate monitor_item(:item1);`)
	// Only item1 is monitored.
	s.MustExec(`set quantity(:item2) = 1;`)
	if len(log.orders) != 0 {
		t.Errorf("unmonitored item triggered: %v", log.orders)
	}
	s.MustExec(`set quantity(:item1) = 100;`)
	if len(log.orders) != 1 || log.orders[0] != "order(#1, 4900)" {
		t.Errorf("orders=%v", log.orders)
	}
}

func TestSelectQueries(t *testing.T) {
	s, _ := newPaperSession(t, rules.Incremental)
	s.MustExec(`set quantity(:item1) = 120; set quantity(:item2) = 300;`)
	r, err := s.Query(`select i, quantity(i) for each item i where quantity(i) < threshold(i);`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tuples) != 1 || !r.Tuples[0][1].Equal(types.Int(120)) {
		t.Errorf("tuples=%v", r.Tuples)
	}
	if len(r.Columns) != 2 || r.Columns[0] != "i" {
		t.Errorf("columns=%v", r.Columns)
	}
	// Constant select.
	r, _ = s.Query(`select 1 + 2 * 3;`)
	if len(r.Tuples) != 1 || !r.Tuples[0][0].Equal(types.Int(7)) {
		t.Errorf("arith=%v", r.Tuples)
	}
}

func TestSelectWithDisjunctionAndNegation(t *testing.T) {
	s, _ := newPaperSession(t, rules.Incremental)
	s.MustExec(`create function flagged(item) -> boolean;`)
	s.MustExec(`set quantity(:item1) = 10; set quantity(:item2) = 500;`)
	s.MustExec(`set flagged(:item2) = true;`)
	// Disjunction.
	r, err := s.Query(`select i for each item i where quantity(i) < 50 or quantity(i) > 400;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tuples) != 2 {
		t.Errorf("disjunction tuples=%v", r.Tuples)
	}
	// Negation.
	r, err = s.Query(`select i for each item i where quantity(i) > 0 and not flagged(i);`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tuples) != 1 {
		t.Errorf("negation tuples=%v", r.Tuples)
	}
}

func TestRuleWithDisjunctiveCondition(t *testing.T) {
	s, log := newPaperSession(t, rules.Incremental)
	s.MustExec(`
create rule out_of_band() as
    when for each item i
    where quantity(i) < 10 or quantity(i) > 1000
    do order(i, 0);
`)
	s.MustExec(`set quantity(:item1) = 500;`)
	s.MustExec(`set quantity(:item2) = 500;`)
	s.MustExec(`activate out_of_band();`)
	s.MustExec(`set quantity(:item1) = 5;`)    // below band
	s.MustExec(`set quantity(:item2) = 2000;`) // above band
	if len(log.orders) != 2 {
		t.Errorf("orders=%v", log.orders)
	}
}

func TestTransactionsViaLanguage(t *testing.T) {
	s, _ := newPaperSession(t, rules.Incremental)
	s.MustExec(`begin; set quantity(:item1) = 42;`)
	if !s.Txns().InTransaction() {
		t.Fatal("not in transaction")
	}
	s.MustExec(`rollback;`)
	if r, err := s.Query(`select quantity(:item1);`); err != nil || len(r.Tuples) != 0 {
		t.Errorf("quantity should be undefined after rollback: %v %v", r, err)
	}
	s.MustExec(`begin; set quantity(:item1) = 42; commit;`)
	r, err := s.Query(`select quantity(:item1);`)
	if err != nil || !r.Tuples[0][0].Equal(types.Int(42)) {
		t.Errorf("after commit: %v %v", r, err)
	}
}

func TestAddRemoveMultiValued(t *testing.T) {
	s, _ := newPaperSession(t, rules.Incremental)
	// supplies is item-valued per supplier; use add for a second item.
	s.MustExec(`add supplies(:sup1) = :item2;`)
	r, _ := s.Query(`select s for each supplier s where supplies(s) = :item2;`)
	if len(r.Tuples) != 2 {
		t.Errorf("both suppliers should supply item2: %v", r.Tuples)
	}
	s.MustExec(`remove supplies(:sup1) = :item2;`)
	r, _ = s.Query(`select s for each supplier s where supplies(s) = :item2;`)
	if len(r.Tuples) != 1 {
		t.Errorf("after remove: %v", r.Tuples)
	}
}

func TestTypeChecking(t *testing.T) {
	s, _ := newPaperSession(t, rules.Incremental)
	if _, err := s.Exec(`set quantity(:item1) = 'many';`); err == nil {
		t.Error("string into integer function accepted")
	}
	if _, err := s.Exec(`set quantity(:sup1) = 5;`); err == nil {
		t.Error("supplier argument into item parameter accepted")
	}
	if _, err := s.Exec(`set quantity(:item1, :item2) = 5;`); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := s.Exec(`set threshold(:item1) = 5;`); err == nil {
		t.Error("updating a derived function accepted")
	}
	if _, err := s.Exec(`set nosuch(:item1) = 5;`); err == nil {
		t.Error("unknown function accepted")
	}
}

func TestSubtypeExtents(t *testing.T) {
	s := NewSession(rules.Incremental)
	s.MustExec(`
create type item;
create type perishable under item;
create function quantity(item) -> integer;
create perishable instances :p1;
create item instances :i1;
set quantity(:p1) = 5;
set quantity(:i1) = 7;
`)
	r, err := s.Query(`select i for each item i;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tuples) != 2 {
		t.Errorf("item extent should include perishables: %v", r.Tuples)
	}
	r, _ = s.Query(`select p for each perishable p;`)
	if len(r.Tuples) != 1 {
		t.Errorf("perishable extent: %v", r.Tuples)
	}
}

func TestRuleOnInstanceCreation(t *testing.T) {
	// Conditions can react to new instances: the type extent is an
	// influent like any base relation.
	s := NewSession(rules.Incremental)
	var seen []string
	s.RegisterProcedure("greet", func(args []types.Value) error {
		seen = append(seen, args[0].String())
		return nil
	})
	s.MustExec(`
create type customer;
create rule welcome() as
    when for each customer c where c = c
    do greet(c);
activate welcome();
create customer instances :c1;
`)
	if len(seen) != 1 {
		t.Errorf("seen=%v", seen)
	}
}

func TestForeignFunctionInProceduralContext(t *testing.T) {
	s, _ := newPaperSession(t, rules.Incremental)
	s.RegisterFunction("double", []string{"integer"}, "integer",
		func(args []types.Value) ([][]types.Value, error) {
			return [][]types.Value{{types.Int(args[0].AsInt() * 2)}}, nil
		})
	s.MustExec(`set quantity(:item1) = double(21);`)
	r, _ := s.Query(`select quantity(:item1);`)
	if !r.Tuples[0][0].Equal(types.Int(42)) {
		t.Errorf("quantity=%v", r.Tuples)
	}
	// Foreign functions are rejected in declarative conditions (§8
	// future work).
	if _, err := s.Exec(`select i for each item i where quantity(i) = double(2);`); err == nil {
		t.Error("foreign function in condition accepted")
	}
}

func TestPrintProcedure(t *testing.T) {
	s, _ := newPaperSession(t, rules.Incremental)
	var buf strings.Builder
	s.Output = &buf
	s.MustExec(`
create rule announce() as
    when for each item i where quantity(i) < 10
    do print('low stock:', i);
activate announce();
set quantity(:item1) = 3;
`)
	if !strings.Contains(buf.String(), "low stock:") {
		t.Errorf("output=%q", buf.String())
	}
}

func TestExplanationSurfacedThroughSession(t *testing.T) {
	s, log := newPaperSession(t, rules.Incremental)
	_ = log
	s.MustExec(monitorItemsRule)
	s.MustExec(`set quantity(:item1) = 5000;`)
	s.MustExec(`activate monitor_items();`)
	s.MustExec(`set quantity(:item1) = 100;`)
	ex := s.Rules().LastExplanations()
	if len(ex) != 1 || ex[0].Rule != "monitor_items" {
		t.Fatalf("explanations=%+v", ex)
	}
	found := false
	for _, e := range ex[0].Entries {
		if e.Influent == "quantity" {
			found = true
		}
	}
	if !found {
		t.Errorf("quantity not identified as trigger cause: %+v", ex[0].Entries)
	}
}

func TestQueryRejectsNonSelect(t *testing.T) {
	s := NewSession(rules.Incremental)
	if _, err := s.Query(`create type t;`); err == nil {
		t.Error("Query should reject non-select")
	}
}

func TestUndefinedIfaceVariable(t *testing.T) {
	s := NewSession(rules.Incremental)
	s.MustExec(`create type item; create function quantity(item) -> integer;`)
	if _, err := s.Exec(`set quantity(:ghost) = 5;`); err == nil {
		t.Error("undefined interface variable accepted")
	}
}

func TestIfaceVarAccessors(t *testing.T) {
	s := NewSession(rules.Incremental)
	s.SetIfaceVar("x", types.Int(9))
	v, ok := s.IfaceVar("x")
	if !ok || !v.Equal(types.Int(9)) {
		t.Error("iface accessors")
	}
	if _, ok := s.IfaceVar("y"); ok {
		t.Error("ghost variable found")
	}
}

func TestSharedFunctionNodeSharing(t *testing.T) {
	// Declaring threshold as *shared* produces the bushy network of
	// §7.1 with an intermediate threshold node.
	s := NewSession(rules.Incremental)
	log := &orderLog{}
	log.register(s)
	schema := strings.Replace(paperSchema, "create function threshold", "create shared function threshold", 1)
	s.MustExec(schema)
	s.MustExec(paperPopulation)
	s.MustExec(monitorItemsRule)
	s.MustExec(`set quantity(:item1) = 5000;`)
	s.MustExec(`activate monitor_items();`)

	net := s.Rules().Network()
	nd, ok := net.Node("threshold")
	if !ok || nd.Base {
		t.Fatal("threshold should be an intermediate network node")
	}
	// Behaviour is unchanged.
	s.MustExec(`set quantity(:item1) = 120;`)
	if len(log.orders) != 1 || log.orders[0] != "order(#1, 4880)" {
		t.Errorf("orders=%v", log.orders)
	}
	// And threshold-side changes route through the shared node.
	s.MustExec(`set quantity(:item2) = 7500;`)
	s.MustExec(`set min_stock(:item2) = 7499;`)
	if len(log.orders) != 2 {
		t.Errorf("orders=%v", log.orders)
	}
}
