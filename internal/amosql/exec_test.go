package amosql

import (
	"fmt"
	"testing"

	"partdiff/internal/rules"
	"partdiff/internal/types"
)

// evalSession builds a session for procedural-expression tests: a
// stored function f, a derived function d, and a foreign function tri.
func evalSession(t *testing.T) *Session {
	t.Helper()
	s := NewSession(rules.Incremental)
	s.MustExec(`
create type t;
create function f(t) -> integer;
create function d(t x) -> integer
    as select f(x) * 2 for each t y where y = x;
create t instances :a;
set f(:a) = 10;
`)
	if err := s.RegisterFunction("tri", []string{"integer"}, "integer",
		func(args []types.Value) ([][]types.Value, error) {
			return [][]types.Value{{types.Int(args[0].AsInt() * 3)}}, nil
		}); err != nil {
		t.Fatal(err)
	}
	return s
}

// evalStr evaluates a procedural expression through an update statement
// and reads the result back.
func (s *Session) evalStr(t *testing.T, expr string) (types.Value, error) {
	t.Helper()
	ast, err := ParseOne("select 0;")
	if err != nil {
		t.Fatal(err)
	}
	_ = ast
	parsed, err := ParseOne(fmt.Sprintf("set f(:a) = 0;"))
	if err != nil {
		t.Fatal(err)
	}
	_ = parsed
	e, err := ParseOne("select " + expr + ";")
	if err != nil {
		return types.Value{}, err
	}
	return s.evalExpr(e.(SelectStmt).Query.Exprs[0], nil)
}

func TestEvalExprOperators(t *testing.T) {
	s := evalSession(t)
	cases := []struct {
		expr string
		want types.Value
	}{
		{"1 + 2", types.Int(3)},
		{"5 - 2", types.Int(3)},
		{"4 * 2", types.Int(8)},
		{"9 / 2", types.Int(4)},
		{"-7", types.Int(-7)},
		{"1.5 + 1", types.Float(2.5)},
		{"1 = 1", types.Bool(true)},
		{"1 != 1", types.Bool(false)},
		{"1 < 2", types.Bool(true)},
		{"2 <= 1", types.Bool(false)},
		{"2 > 1", types.Bool(true)},
		{"1 >= 2", types.Bool(false)},
		{"true and false", types.Bool(false)},
		{"true and true", types.Bool(true)},
		{"false or true", types.Bool(true)},
		{"false or false", types.Bool(false)},
		{"not true", types.Bool(false)},
		{"'x' = 'x'", types.Bool(true)},
		{"f(:a)", types.Int(10)},
		{"d(:a)", types.Int(20)},
		{"tri(4)", types.Int(12)},
		{"f(:a) + d(:a) * 2", types.Int(50)},
	}
	for _, tc := range cases {
		got, err := s.evalStr(t, tc.expr)
		if err != nil {
			t.Errorf("%s: %v", tc.expr, err)
			continue
		}
		if !got.Equal(tc.want) {
			t.Errorf("%s = %s, want %s", tc.expr, got, tc.want)
		}
	}
}

func TestEvalExprShortCircuit(t *testing.T) {
	s := evalSession(t)
	// The right side would error (unknown function), but short-circuit
	// must prevent evaluation.
	if v, err := s.evalStr(t, "false and nosuch(1) = 1"); err != nil || v.AsBool() {
		t.Errorf("and short-circuit: %v %v", v, err)
	}
	if v, err := s.evalStr(t, "true or nosuch(1) = 1"); err != nil || !v.AsBool() {
		t.Errorf("or short-circuit: %v %v", v, err)
	}
}

func TestEvalExprErrors(t *testing.T) {
	s := evalSession(t)
	for _, expr := range []string{
		"nosuch(1)",       // unknown function
		"f(1, 2)",         // wrong arity
		"f(:ghost)",       // undefined interface variable
		"1 / 0",           // division by zero
		"'a' + 1",         // type error
		"unboundvar + 1",  // unbound variable
		"d(:a) + f(:b22)", // nested failure propagates
	} {
		if _, err := s.evalStr(t, expr); err == nil {
			t.Errorf("%s: expected error", expr)
		}
	}
	// Stored function with no value for the key.
	s.MustExec(`create t instances :empty;`)
	if _, err := s.evalStr(t, "f(:empty)"); err == nil {
		t.Error("missing stored value should error")
	}
	// Derived function with no value.
	if _, err := s.evalStr(t, "d(:empty)"); err == nil {
		t.Error("missing derived value should error")
	}
}

func TestEvalExprForeignFunctionNoValue(t *testing.T) {
	s := evalSession(t)
	s.RegisterFunction("void", nil, "integer",
		func([]types.Value) ([][]types.Value, error) { return nil, nil })
	if _, err := s.evalStr(t, "void()"); err == nil {
		t.Error("foreign function returning nothing should error when used as a value")
	}
}

func TestUpdateInsideFailingTransactionAborts(t *testing.T) {
	// An autocommitted statement whose update fails must roll back and
	// leave no residue.
	s := evalSession(t)
	// remove with wrong arity triggers the error path after autoBegin.
	if _, err := s.Exec(`set f(:a) = 'wrongtype';`); err == nil {
		t.Fatal("type error expected")
	}
	if s.Txns().InTransaction() {
		t.Error("implicit transaction leaked")
	}
	r, _ := s.Query(`select f(:a);`)
	if len(r.Tuples) != 1 || !r.Tuples[0][0].Equal(types.Int(10)) {
		t.Errorf("state after failed statement: %v", r.Tuples)
	}
}

func TestStatementsInsideExplicitTxnDoNotAutocommit(t *testing.T) {
	s := evalSession(t)
	fired := 0
	s.RegisterProcedure("hit", func([]types.Value) error { fired++; return nil })
	s.MustExec(`
create rule watch() as when for each t x where f(x) > 50 do hit(x);
activate watch();
begin;
set f(:a) = 100;
`)
	if fired != 0 {
		t.Fatal("rule fired before commit")
	}
	s.MustExec(`commit;`)
	if fired != 1 {
		t.Errorf("fired=%d", fired)
	}
}

func TestAccessors(t *testing.T) {
	s := evalSession(t)
	if s.Store() == nil || s.Catalog() == nil || s.Rules() == nil || s.Txns() == nil {
		t.Error("nil accessor")
	}
}

func TestExecStopsAtFirstError(t *testing.T) {
	s := NewSession(rules.Incremental)
	results, err := s.Exec(`create type a; create type a; create type b;`)
	if err == nil {
		t.Fatal("duplicate type should error")
	}
	if len(results) != 1 {
		t.Errorf("results before error: %d", len(results))
	}
	// b must not have been created.
	if _, ok := s.Catalog().Type("b"); ok {
		t.Error("statement after error executed")
	}
}

func TestActivationArgumentEvaluation(t *testing.T) {
	// Activation arguments are full procedural expressions.
	s := evalSession(t)
	fired := 0
	s.RegisterProcedure("hit", func([]types.Value) error { fired++; return nil })
	s.MustExec(`
create rule watch(integer lim) as
    when for each t x where f(x) > lim
    do hit(x);
set f(:a) = 0;
activate watch(2 + 3);
set f(:a) = 6;
`)
	if fired != 1 {
		t.Errorf("fired=%d", fired)
	}
	// Deactivation with the same expression value.
	if _, err := s.Exec(`deactivate watch(5);`); err != nil {
		t.Errorf("deactivate by value: %v", err)
	}
}

func TestStatementResultMessages(t *testing.T) {
	s := NewSession(rules.Incremental)
	res := s.MustExec(`create type t;`)
	if res[0].Message != "type t created" {
		t.Errorf("message=%q", res[0].Message)
	}
	res = s.MustExec(`create function f(t) -> integer;`)
	if res[0].Message != "stored function f created" {
		t.Errorf("message=%q", res[0].Message)
	}
	res = s.MustExec(`create function g(t x) -> integer as select f(x) for each t y where y = x;`)
	if res[0].Message != "derived function g created" {
		t.Errorf("message=%q", res[0].Message)
	}
	res = s.MustExec(`create function h(t x) -> integer as select sum(f(x)) for each t y where y = x;`)
	if res[0].Message != "aggregate function h (sum) created" {
		t.Errorf("message=%q", res[0].Message)
	}
	res = s.MustExec(`begin;`)
	if res[0].Message != "begin ok" {
		t.Errorf("message=%q", res[0].Message)
	}
	s.MustExec(`rollback;`)
}
