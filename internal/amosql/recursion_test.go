package amosql

import (
	"testing"

	"partdiff/internal/rules"
	"partdiff/internal/types"
)

// Recursive derived functions at the language level: reports_to forms a
// management chain; in_chain_of computes its transitive closure. A rule
// monitors the closure — the recursive view is re-evaluated by fixpoint
// inside the propagation network.
func TestRecursiveDerivedFunction(t *testing.T) {
	s := NewSession(rules.Incremental)
	s.MustExec(`
create type emp;
create function reports_to(emp) -> emp;
create function in_chain_of(emp e) -> emp
    as select m for each emp m
    where reports_to(e) = m or in_chain_of(reports_to(e)) = m;
create emp instances :ceo, :vp, :eng;
set reports_to(:vp) = :ceo;
set reports_to(:eng) = :vp;
`)
	r, err := s.Query(`select m for each emp m where in_chain_of(:eng) = m;`)
	if err != nil {
		t.Fatal(err)
	}
	// eng reports (transitively) to vp and ceo.
	if len(r.Tuples) != 2 {
		t.Errorf("chain of eng = %v", r.Tuples)
	}
}

func TestRuleOverRecursiveView(t *testing.T) {
	s := NewSession(rules.Incremental)
	var fired []string
	s.RegisterProcedure("notify", func(args []types.Value) error {
		fired = append(fired, args[0].String()+"<-"+args[1].String())
		return nil
	})
	s.MustExec(`
create type emp;
create function reports_to(emp) -> emp;
create function in_chain_of(emp e) -> emp
    as select m for each emp m
    where reports_to(e) = m or in_chain_of(reports_to(e)) = m;
create emp instances :ceo, :vp, :eng, :intern;
set reports_to(:vp) = :ceo;
set reports_to(:eng) = :vp;

-- Fire whenever someone newly lands in the CEO's chain.
create rule chain_watch() as
    when for each emp e where in_chain_of(e) = :ceo
    do notify(e, :ceo);
activate chain_watch();
`)
	// Activation itself fires nothing (no changes yet).
	if len(fired) != 0 {
		t.Fatalf("fired at activation: %v", fired)
	}
	// The intern joins under eng: transitively now under the ceo.
	s.MustExec(`set reports_to(:intern) = :eng;`)
	if len(fired) != 1 || fired[0] != "#4<-#1" {
		t.Fatalf("fired=%v", fired)
	}
	// Re-pointing the intern to vp keeps them in the chain: strict
	// semantics, no refire.
	s.MustExec(`set reports_to(:intern) = :vp;`)
	if len(fired) != 1 {
		t.Errorf("refired: %v", fired)
	}
	// Detach eng's whole subtree by removing vp's report edge... then
	// restore: eng and vp leave and re-enter the chain.
	s.MustExec(`remove reports_to(:vp) = :ceo;`)
	s.MustExec(`set reports_to(:vp) = :ceo;`)
	// vp, eng and intern all re-entered.
	if len(fired) != 4 {
		t.Errorf("after detach/reattach: %v", fired)
	}
	// The recursive view is a recompute node in the network.
	nd, ok := s.Rules().Network().Node("in_chain_of")
	if !ok || !nd.Recompute {
		t.Errorf("in_chain_of node: ok=%v %+v", ok, nd)
	}
}

func TestRecursiveViewDeletionMonitoring(t *testing.T) {
	s := NewSession(rules.Incremental)
	var alerts []string
	s.RegisterProcedure("orphan_alert", func(args []types.Value) error {
		alerts = append(alerts, args[0].String())
		return nil
	})
	s.MustExec(`
create type node;
create function link(node) -> node;
create function reachable(node n) -> node
    as select m for each node m
    where link(n) = m or reachable(link(n)) = m;
create node instances :root, :a, :b;
set link(:a) = :root;
set link(:b) = :a;

-- Alert when a node STOPS being connected to root (negation over the
-- recursive closure).
create rule disconnected() as
    when for each node n
    where not reachable(n) = :root and n != :root
    do orphan_alert(n);
activate disconnected();
`)
	if len(alerts) != 0 {
		t.Fatalf("alerts at activation: %v", alerts)
	}
	// Cutting a's link orphans both a and b.
	s.MustExec(`remove link(:a) = :root;`)
	if len(alerts) != 2 {
		t.Errorf("alerts=%v", alerts)
	}
}
