package amosql

import (
	"fmt"
	"strings"

	"partdiff/internal/types"
)

// Stmt is a parsed AMOSQL statement.
type Stmt interface{ stmt() }

// ParamDecl declares a typed variable: "item i" (the name may be empty
// for unnamed stored-function parameters).
type ParamDecl struct {
	Type string
	Name string
}

func (p ParamDecl) String() string {
	if p.Name == "" {
		return p.Type
	}
	return p.Type + " " + p.Name
}

// CreateType is: create type NAME [under SUPER {, SUPER}];
type CreateType struct {
	Name   string
	Unders []string
}

// CreateInstances is: create TYPE instances :v1, :v2, ...;
type CreateInstances struct {
	TypeName string
	Vars     []string
}

// CreateFunction is: create [shared] function NAME(params) -> RESULT
// [as SELECT];  Body==nil means a stored function.
type CreateFunction struct {
	Name   string
	Params []ParamDecl
	Result string
	Body   *SelectQuery
	Shared bool
}

// CreateRule is:
//
//	create [nervous] rule NAME(params) as
//	    [on EVENT_FN {, EVENT_FN}]
//	    when [for each DECLS where] PREDICATE
//	    do PROC(args) [priority N];
//
// The optional `on` clause makes this an ECA rule: the condition is
// only tested when one of the named stored functions (or type extents,
// named by type) was updated.
type CreateRule struct {
	Name       string
	Params     []ParamDecl
	Events     []string
	ForEach    []ParamDecl
	Where      Expr
	ActionProc string
	ActionArgs []Expr
	Nervous    bool
	Priority   int64
}

// SelectQuery is the declarative core: select EXPRS [for each DECLS]
// [where PREDICATE].
type SelectQuery struct {
	Exprs   []Expr
	ForEach []ParamDecl
	Where   Expr
}

// SelectStmt is a top-level query statement.
type SelectStmt struct {
	Query SelectQuery
}

// UpdateStmt is: set|add|remove FN(args) = VALUE;
type UpdateStmt struct {
	Op    string // "set", "add", "remove"
	Fn    string
	Args  []Expr
	Value Expr
}

// ActivateStmt is: activate RULE(args);
type ActivateStmt struct {
	Rule string
	Args []Expr
}

// DeactivateStmt is: deactivate RULE(args);
type DeactivateStmt struct {
	Rule string
	Args []Expr
}

// DeleteInstances is: delete :v1, :v2; — it retracts every stored
// tuple referencing the objects (rules see the deletions), removes them
// from their type extents, and destroys the objects.
type DeleteInstances struct {
	Vars []string
}

// DeclareStmt is: declare NAME readonly|append only|delete only|read-write;
// It restricts the admitted change kinds of a stored function (or a
// type's extent, named by type), enforced by the store and exploited by
// the whole-network Δ-effect analysis to prune differentials the
// restriction makes impossible. Capability holds the raw capability
// text for storage.ParseCapability.
type DeclareStmt struct {
	Name       string
	Capability string
}

// ExplainStmt is: explain select ...; | explain rule NAME;
// It renders the compiled ObjectLog (and, for activated rules, the
// generated partial differentials) instead of executing.
type ExplainStmt struct {
	Query *SelectQuery // nil when explaining a rule
	Rule  string
}

// TxnStmt is: begin; | commit; | rollback;
type TxnStmt struct {
	Kind string
}

func (CreateType) stmt()      {}
func (CreateInstances) stmt() {}
func (CreateFunction) stmt()  {}
func (CreateRule) stmt()      {}
func (SelectStmt) stmt()      {}
func (UpdateStmt) stmt()      {}
func (ActivateStmt) stmt()    {}
func (DeactivateStmt) stmt()  {}
func (DeleteInstances) stmt() {}
func (DeclareStmt) stmt()     {}
func (ExplainStmt) stmt()     {}
func (TxnStmt) stmt()         {}

// Expr is a parsed expression.
type Expr interface {
	expr()
	String() string
}

// ConstExpr is a literal value.
type ConstExpr struct {
	Value types.Value
}

// VarRef references a query variable (for-each variable or rule
// parameter).
type VarRef struct {
	Name string
}

// IfaceRef references a session interface variable (:name).
type IfaceRef struct {
	Name string
}

// Call is a function application f(e1, ..., en).
type Call struct {
	Fn   string
	Args []Expr
}

// Binary is a binary operation: arithmetic (+ - * /), comparison
// (= != < <= > >=), or boolean connective (and, or).
type Binary struct {
	Op   string
	L, R Expr
}

// Unary is negation: "not" (boolean) or "-" (numeric).
type Unary struct {
	Op string
	X  Expr
}

func (ConstExpr) expr() {}
func (VarRef) expr()    {}
func (IfaceRef) expr()  {}
func (Call) expr()      {}
func (Binary) expr()    {}
func (Unary) expr()     {}

func (e ConstExpr) String() string { return e.Value.String() }
func (e VarRef) String() string    { return e.Name }
func (e IfaceRef) String() string  { return ":" + e.Name }

func (e Call) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", e.Fn, strings.Join(parts, ", "))
}

func (e Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}

func (e Unary) String() string {
	if e.Op == "not" {
		return fmt.Sprintf("not %s", e.X)
	}
	return fmt.Sprintf("%s%s", e.Op, e.X)
}
