package amosql

import (
	"fmt"
	"strconv"
	"strings"

	"partdiff/internal/types"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse parses a sequence of semicolon-terminated statements.
func Parse(src string) ([]Stmt, error) {
	out, _, err := ParseWithSources(src)
	return out, err
}

// ParseWithSources parses like Parse and additionally returns, for each
// statement, its exact source text (semicolon included) — the session
// journals schema statements verbatim for snapshot/WAL recovery.
func ParseWithSources(src string) ([]Stmt, []string, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, nil, err
	}
	p := &parser{toks: toks}
	var out []Stmt
	var srcs []string
	for !p.atEOF() {
		if p.peekSym(";") {
			p.advance() // stray semicolon
			continue
		}
		start := p.peek().pos
		s, err := p.statement()
		if err != nil {
			return nil, nil, err
		}
		if err := p.expectSym(";"); err != nil {
			return nil, nil, err
		}
		semi := p.toks[p.pos-1] // the semicolon just consumed
		out = append(out, s)
		srcs = append(srcs, src[start:semi.pos+1])
	}
	return out, srcs, nil
}

// ParseOne parses exactly one statement (trailing semicolon optional).
func ParseOne(src string) (Stmt, error) {
	toks, err := tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	s, err := p.statement()
	if err != nil {
		return nil, err
	}
	if p.peekSym(";") {
		p.advance()
	}
	if !p.atEOF() {
		return nil, p.errf("unexpected %s after statement", p.peek())
	}
	return s, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("line %d: %s", p.peek().line, fmt.Sprintf(format, args...))
}

// peekKw reports whether the next token is the given keyword
// (case-insensitive).
func (p *parser) peekKw(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) acceptKw(kw string) bool {
	if p.peekKw(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %q, found %s", kw, p.peek())
	}
	return nil
}

func (p *parser) peekSym(s string) bool {
	t := p.peek()
	return t.kind == tokSymbol && t.text == s
}

func (p *parser) acceptSym(s string) bool {
	if p.peekSym(s) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectSym(s string) error {
	if !p.acceptSym(s) {
		return p.errf("expected %q, found %s", s, p.peek())
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, found %s", t)
	}
	p.advance()
	return t.text, nil
}

// statement parses one statement (without the trailing semicolon).
func (p *parser) statement() (Stmt, error) {
	switch {
	case p.peekKw("create"):
		return p.createStmt()
	case p.peekKw("set"), p.peekKw("add"), p.peekKw("remove"):
		return p.updateStmt()
	case p.peekKw("select"):
		p.advance()
		q, err := p.selectQuery()
		if err != nil {
			return nil, err
		}
		return SelectStmt{Query: *q}, nil
	case p.peekKw("activate"):
		p.advance()
		name, args, err := p.ruleRef()
		if err != nil {
			return nil, err
		}
		return ActivateStmt{Rule: name, Args: args}, nil
	case p.peekKw("deactivate"):
		p.advance()
		name, args, err := p.ruleRef()
		if err != nil {
			return nil, err
		}
		return DeactivateStmt{Rule: name, Args: args}, nil
	case p.peekKw("explain"):
		p.advance()
		if p.acceptKw("rule") {
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return ExplainStmt{Rule: name}, nil
		}
		if err := p.expectKw("select"); err != nil {
			return nil, err
		}
		q, err := p.selectQuery()
		if err != nil {
			return nil, err
		}
		return ExplainStmt{Query: q}, nil
	case p.peekKw("delete"):
		p.advance()
		var vars []string
		for {
			t := p.peek()
			if t.kind != tokIfaceVar {
				return nil, p.errf("expected interface variable after delete, found %s", t)
			}
			p.advance()
			vars = append(vars, t.text)
			if !p.acceptSym(",") {
				break
			}
		}
		return DeleteInstances{Vars: vars}, nil
	case p.peekKw("declare"):
		return p.declareStmt()
	case p.peekKw("begin"), p.peekKw("commit"), p.peekKw("rollback"):
		kw := strings.ToLower(p.advance().text)
		return TxnStmt{Kind: kw}, nil
	default:
		return nil, p.errf("unexpected %s at start of statement", p.peek())
	}
}

// declareStmt parses: declare NAME CAPABILITY; — the capability is the
// remaining token run before the semicolon ("readonly", "append only",
// "read-write", ...), validated by the executor via
// storage.ParseCapability.
func (p *parser) declareStmt() (Stmt, error) {
	p.advance() // declare
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	for !p.peekSym(";") && !p.atEOF() {
		t := p.peek()
		if t.kind != tokIdent && !(t.kind == tokSymbol && t.text == "-") {
			return nil, p.errf("unexpected %s in capability", t)
		}
		p.advance()
		if t.text == "-" {
			sb.WriteString("-")
			continue
		}
		if sb.Len() > 0 && !strings.HasSuffix(sb.String(), "-") {
			sb.WriteString(" ")
		}
		sb.WriteString(strings.ToLower(t.text))
	}
	if sb.Len() == 0 {
		return nil, p.errf("expected a capability after \"declare %s\"", name)
	}
	return DeclareStmt{Name: name, Capability: sb.String()}, nil
}

func (p *parser) createStmt() (Stmt, error) {
	p.advance() // create
	switch {
	case p.peekKw("type"):
		p.advance()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		var unders []string
		if p.acceptKw("under") {
			for {
				u, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				unders = append(unders, u)
				if !p.acceptSym(",") {
					break
				}
			}
		}
		return CreateType{Name: name, Unders: unders}, nil

	case p.peekKw("function"), p.peekKw("shared"):
		shared := p.acceptKw("shared")
		if err := p.expectKw("function"); err != nil {
			return nil, err
		}
		return p.createFunction(shared)

	case p.peekKw("rule"), p.peekKw("nervous"):
		nervous := p.acceptKw("nervous")
		if err := p.expectKw("rule"); err != nil {
			return nil, err
		}
		return p.createRule(nervous)

	default:
		// create TYPE instances :v1, :v2;
		typeName, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("instances"); err != nil {
			return nil, err
		}
		var vars []string
		for {
			t := p.peek()
			if t.kind != tokIfaceVar {
				return nil, p.errf("expected interface variable, found %s", t)
			}
			p.advance()
			vars = append(vars, t.text)
			if !p.acceptSym(",") {
				break
			}
		}
		return CreateInstances{TypeName: typeName, Vars: vars}, nil
	}
}

func (p *parser) createFunction(shared bool) (Stmt, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	params, err := p.paramList()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("->"); err != nil {
		return nil, err
	}
	result, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	cf := CreateFunction{Name: name, Params: params, Result: result, Shared: shared}
	if p.acceptKw("as") {
		if err := p.expectKw("select"); err != nil {
			return nil, err
		}
		q, err := p.selectQuery()
		if err != nil {
			return nil, err
		}
		cf.Body = q
	}
	return cf, nil
}

// paramList parses "(" [TYPE [NAME] {"," TYPE [NAME]}] ")".
func (p *parser) paramList() ([]ParamDecl, error) {
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	var out []ParamDecl
	if p.acceptSym(")") {
		return out, nil
	}
	for {
		typ, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		d := ParamDecl{Type: typ}
		if p.peek().kind == tokIdent && !p.peekSym(",") {
			d.Name = p.advance().text
		}
		out = append(out, d)
		if p.acceptSym(",") {
			continue
		}
		break
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return out, nil
}

// declList parses "TYPE NAME {"," TYPE NAME}" (names required).
func (p *parser) declList() ([]ParamDecl, error) {
	var out []ParamDecl
	for {
		typ, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		out = append(out, ParamDecl{Type: typ, Name: name})
		if !p.acceptSym(",") {
			break
		}
	}
	return out, nil
}

func (p *parser) createRule(nervous bool) (Stmt, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	params, err := p.paramList()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("as"); err != nil {
		return nil, err
	}
	r := CreateRule{Name: name, Params: params, Nervous: nervous}
	if p.acceptKw("on") {
		for {
			ev, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			r.Events = append(r.Events, ev)
			if !p.acceptSym(",") {
				break
			}
		}
	}
	if err := p.expectKw("when"); err != nil {
		return nil, err
	}
	if p.acceptKw("for") {
		if err := p.expectKw("each"); err != nil {
			return nil, err
		}
		r.ForEach, err = p.declList()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("where"); err != nil {
			return nil, err
		}
	}
	r.Where, err = p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("do"); err != nil {
		return nil, err
	}
	r.ActionProc, err = p.expectIdent()
	if err != nil {
		return nil, err
	}
	r.ActionArgs, err = p.argList()
	if err != nil {
		return nil, err
	}
	if p.acceptKw("priority") {
		t := p.peek()
		neg := false
		if p.acceptSym("-") {
			neg = true
			t = p.peek()
		}
		if t.kind != tokInt {
			return nil, p.errf("expected integer priority, found %s", t)
		}
		p.advance()
		n, _ := strconv.ParseInt(t.text, 10, 64)
		if neg {
			n = -n
		}
		r.Priority = n
	}
	return r, nil
}

func (p *parser) selectQuery() (*SelectQuery, error) {
	var q SelectQuery
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		q.Exprs = append(q.Exprs, e)
		if !p.acceptSym(",") {
			break
		}
	}
	if p.acceptKw("for") {
		if err := p.expectKw("each"); err != nil {
			return nil, err
		}
		decls, err := p.declList()
		if err != nil {
			return nil, err
		}
		q.ForEach = decls
		if p.acceptKw("where") {
			w, err := p.expr()
			if err != nil {
				return nil, err
			}
			q.Where = w
		}
	} else if p.acceptKw("where") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		q.Where = w
	}
	return &q, nil
}

func (p *parser) updateStmt() (Stmt, error) {
	op := strings.ToLower(p.advance().text)
	fn, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	args, err := p.argList()
	if err != nil {
		return nil, err
	}
	if err := p.expectSym("="); err != nil {
		return nil, err
	}
	val, err := p.expr()
	if err != nil {
		return nil, err
	}
	return UpdateStmt{Op: op, Fn: fn, Args: args, Value: val}, nil
}

func (p *parser) ruleRef() (string, []Expr, error) {
	name, err := p.expectIdent()
	if err != nil {
		return "", nil, err
	}
	args, err := p.argList()
	if err != nil {
		return "", nil, err
	}
	return name, args, nil
}

// argList parses "(" [expr {"," expr}] ")".
func (p *parser) argList() ([]Expr, error) {
	if err := p.expectSym("("); err != nil {
		return nil, err
	}
	var out []Expr
	if p.acceptSym(")") {
		return out, nil
	}
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectSym(")"); err != nil {
		return nil, err
	}
	return out, nil
}

// Expression grammar, loosest first:
//
//	expr     := orExpr
//	orExpr   := andExpr { "or" andExpr }
//	andExpr  := notExpr { "and" notExpr }
//	notExpr  := "not" notExpr | cmpExpr
//	cmpExpr  := addExpr [ ("="|"!="|"<"|"<="|">"|">=") addExpr ]
//	addExpr  := mulExpr { ("+"|"-") mulExpr }
//	mulExpr  := unary { ("*"|"/") unary }
//	unary    := "-" unary | primary
//	primary  := literal | :iface | ident [ "(" args ")" ] | "(" expr ")"
func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("or") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("and") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.acceptKw("not") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return Unary{Op: "not", X: x}, nil
	}
	return p.cmpExpr()
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"<=", ">=", "!=", "==", "=", "<", ">"} {
		if p.peekSym(op) {
			p.advance()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			if op == "==" {
				op = "="
			}
			return Binary{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSym("+"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = Binary{Op: "+", L: l, R: r}
		case p.acceptSym("-"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = Binary{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSym("*"):
			r, err := p.unary()
			if err != nil {
				return nil, err
			}
			l = Binary{Op: "*", L: l, R: r}
		case p.acceptSym("/"):
			r, err := p.unary()
			if err != nil {
				return nil, err
			}
			l = Binary{Op: "/", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) unary() (Expr, error) {
	if p.acceptSym("-") {
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Unary{Op: "-", X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokInt:
		p.advance()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", t.text)
		}
		return ConstExpr{Value: types.Int(n)}, nil
	case tokFloat:
		p.advance()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad float %q", t.text)
		}
		return ConstExpr{Value: types.Float(f)}, nil
	case tokString:
		p.advance()
		return ConstExpr{Value: types.Str(t.text)}, nil
	case tokIfaceVar:
		p.advance()
		return IfaceRef{Name: t.text}, nil
	case tokIdent:
		switch strings.ToLower(t.text) {
		case "true":
			p.advance()
			return ConstExpr{Value: types.Bool(true)}, nil
		case "false":
			p.advance()
			return ConstExpr{Value: types.Bool(false)}, nil
		}
		p.advance()
		if p.peekSym("(") {
			args, err := p.argList()
			if err != nil {
				return nil, err
			}
			return Call{Fn: t.text, Args: args}, nil
		}
		return VarRef{Name: t.text}, nil
	case tokSymbol:
		if t.text == "(" {
			p.advance()
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected %s in expression", t)
}
