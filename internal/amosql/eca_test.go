package amosql

import (
	"testing"

	"partdiff/internal/rules"
	"partdiff/internal/types"
)

// ECA rules: the event part restricts WHEN the condition is tested
// (§1 of the paper: "the event part just further restricts when the
// condition is tested").

func ecaSession(t *testing.T, mode rules.Mode) (*Session, *[]string) {
	t.Helper()
	s := NewSession(mode)
	var fired []string
	s.RegisterProcedure("react", func(args []types.Value) error {
		fired = append(fired, args[0].String())
		return nil
	})
	s.MustExec(`
create type sensor;
create function reading(sensor) -> integer;
create function threshold(sensor) -> integer;
-- ECA: only reading updates are events; threshold changes are not.
create rule alarm() as
    on reading
    when for each sensor x where reading(x) > threshold(x)
    do react(x);
create sensor instances :s1;
set reading(:s1) = 10;
set threshold(:s1) = 50;
activate alarm();
`)
	return s, &fired
}

func TestParseOnClause(t *testing.T) {
	st := mustParseOne(t, `create rule r(item i) as on quantity, min_stock when quantity(i) < 5 do react(i);`).(CreateRule)
	if len(st.Events) != 2 || st.Events[0] != "quantity" || st.Events[1] != "min_stock" {
		t.Errorf("events=%v", st.Events)
	}
}

func TestECAEventTriggers(t *testing.T) {
	for _, mode := range []rules.Mode{rules.Incremental, rules.Naive} {
		t.Run(mode.String(), func(t *testing.T) {
			s, fired := ecaSession(t, mode)
			s.MustExec(`set reading(:s1) = 60;`) // event + condition true
			if len(*fired) != 1 {
				t.Errorf("fired=%v", *fired)
			}
		})
	}
}

func TestECANonEventChangeIgnored(t *testing.T) {
	for _, mode := range []rules.Mode{rules.Incremental, rules.Naive} {
		t.Run(mode.String(), func(t *testing.T) {
			s, fired := ecaSession(t, mode)
			// Lowering the threshold makes the condition true, but the
			// event relation did not change: condition not tested.
			s.MustExec(`set threshold(:s1) = 5;`)
			if len(*fired) != 0 {
				t.Errorf("non-event change fired: %v", *fired)
			}
			// A later reading update (the event) re-tests the
			// condition; strict semantics: the instance did not
			// transition in THIS window (it was already true), so only
			// a real transition fires.
			s.MustExec(`set reading(:s1) = 4;`)  // now false (4 < 5)
			s.MustExec(`set reading(:s1) = 20;`) // true again via event
			if len(*fired) != 1 {
				t.Errorf("fired=%v", *fired)
			}
		})
	}
}

func TestECAMixedTransaction(t *testing.T) {
	// If the event fires in the same transaction as the non-event
	// change, the condition is tested.
	s, fired := ecaSession(t, rules.Incremental)
	s.MustExec(`
begin;
set threshold(:s1) = 5;
set reading(:s1) = 11;
commit;
`)
	if len(*fired) != 1 {
		t.Errorf("fired=%v", *fired)
	}
}

func TestECATypeExtentEvent(t *testing.T) {
	s := NewSession(rules.Incremental)
	var fired []string
	s.RegisterProcedure("react", func(args []types.Value) error {
		fired = append(fired, args[0].String())
		return nil
	})
	s.MustExec(`
create type account;
create function risky(account) -> boolean;
create rule audit_new() as
    on account
    when for each account a where risky(a) = true
    do react(a);
create account instances :a1;
set risky(:a1) = true;
activate audit_new();
`)
	// risky flips without instance creation: not an event.
	s.MustExec(`remove risky(:a1) = true; set risky(:a1) = true;`)
	if len(fired) != 0 {
		t.Errorf("fired without event: %v", fired)
	}
	// New instance creation is the event.
	s.MustExec(`
begin;
create account instances :a2;
set risky(:a2) = true;
commit;
`)
	if len(fired) != 1 {
		t.Errorf("fired=%v", fired)
	}
}

func TestECAUnknownEventRejected(t *testing.T) {
	s := NewSession(rules.Incremental)
	s.MustExec(`create type t; create function f(t) -> integer;`)
	s.RegisterProcedure("react", func([]types.Value) error { return nil })
	if _, err := s.Exec(`create rule r() as on nosuch when for each t x where f(x) > 0 do react(x);`); err == nil {
		t.Error("unknown event accepted")
	}
	s.MustExec(`create function d(t y) -> integer as select f(y) for each t z where z = y;`)
	if _, err := s.Exec(`create rule r2() as on d when for each t x where f(x) > 0 do react(x);`); err == nil {
		t.Error("derived function as event accepted")
	}
}
