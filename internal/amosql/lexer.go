// Package amosql implements a substantial subset of AMOSQL, the query
// language of AMOS (§3 of the paper): type and function definitions
// (stored, derived, shared), CA rule definitions, instance creation,
// stored-function updates (set/add/remove), declarative select queries,
// rule activation/deactivation, and transaction control.
//
// Statements are compiled into the ObjectLog IR (internal/objectlog)
// exactly as described in §3.2: stored functions become facts (base
// relations), derived functions become Horn clauses, and rule conditions
// become condition functions monitored for changes.
package amosql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokIfaceVar // :name interface variable
	tokInt
	tokFloat
	tokString
	tokSymbol // punctuation and operators
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokIfaceVar:
		return "interface variable"
	case tokInt:
		return "integer"
	case tokFloat:
		return "float"
	case tokString:
		return "string"
	case tokSymbol:
		return "symbol"
	default:
		return "token"
	}
}

// token is one lexical token with its source position.
type token struct {
	kind tokenKind
	text string
	pos  int // byte offset, for error messages
	line int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lexer tokenizes AMOSQL source.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

// multi-character operators, longest first.
var multiOps = []string{"->", "<=", ">=", "!=", "=="}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos, line: l.line}, nil
	}
	start, startLine := l.pos, l.line
	c := l.src[l.pos]
	switch {
	case c == ':' && l.pos+1 < len(l.src) && isIdentStart(rune(l.src[l.pos+1])):
		l.pos++
		name := l.ident()
		return token{kind: tokIfaceVar, text: name, pos: start, line: startLine}, nil
	case isIdentStart(rune(c)):
		return token{kind: tokIdent, text: l.ident(), pos: start, line: startLine}, nil
	case c >= '0' && c <= '9':
		return l.number(start, startLine)
	case c == '\'' || c == '"':
		return l.stringLit(start, startLine)
	}
	for _, op := range multiOps {
		if strings.HasPrefix(l.src[l.pos:], op) {
			l.pos += len(op)
			return token{kind: tokSymbol, text: op, pos: start, line: startLine}, nil
		}
	}
	l.pos++
	return token{kind: tokSymbol, text: string(c), pos: start, line: startLine}, nil
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case strings.HasPrefix(l.src[l.pos:], "--"):
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case strings.HasPrefix(l.src[l.pos:], "/*"):
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
				return
			}
			l.line += strings.Count(l.src[l.pos:l.pos+2+end+2], "\n")
			l.pos += 2 + end + 2
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

func (l *lexer) ident() string {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	return l.src[start:l.pos]
}

func (l *lexer) number(start, startLine int) (token, error) {
	isFloat := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
			continue
		}
		// A dot counts as a decimal point only when followed by a digit.
		if c == '.' && !isFloat && l.pos+1 < len(l.src) &&
			l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			isFloat = true
			l.pos++
			continue
		}
		break
	}
	kind := tokInt
	if isFloat {
		kind = tokFloat
	}
	return token{kind: kind, text: l.src[start:l.pos], pos: start, line: startLine}, nil
}

func (l *lexer) stringLit(start, startLine int) (token, error) {
	quote := l.src[l.pos]
	l.pos++
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			l.pos++
			return token{kind: tokString, text: sb.String(), pos: start, line: startLine}, nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			switch l.src[l.pos] {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			default:
				sb.WriteByte(l.src[l.pos])
			}
			l.pos++
			continue
		}
		if c == '\n' {
			l.line++
		}
		sb.WriteByte(c)
		l.pos++
	}
	return token{}, fmt.Errorf("line %d: unterminated string literal", startLine)
}

// tokenize returns all tokens of src.
func tokenize(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
