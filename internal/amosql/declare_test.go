package amosql

import (
	"strings"
	"testing"

	"partdiff/internal/rules"
	"partdiff/internal/storage"
	"partdiff/internal/types"
)

func TestDeclareParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		name string
		cap  string
	}{
		{"declare quantity readonly;", "quantity", "readonly"},
		{"declare quantity append only;", "quantity", "append only"},
		{"declare quantity delete only;", "quantity", "delete only"},
		{"declare quantity read-write;", "quantity", "read-write"},
		{"declare quantity Append Only;", "quantity", "append only"},
	} {
		st, err := ParseOne(tc.in)
		if err != nil {
			t.Errorf("%q: %v", tc.in, err)
			continue
		}
		d, ok := st.(DeclareStmt)
		if !ok || d.Name != tc.name || d.Capability != tc.cap {
			t.Errorf("%q parsed to %+v, want {%s %s}", tc.in, st, tc.name, tc.cap)
		}
	}
	for _, bad := range []string{"declare;", "declare quantity;", "declare quantity = 3;"} {
		if _, err := ParseOne(bad); err == nil {
			t.Errorf("%q: expected parse error", bad)
		}
	}
}

// declareFixture builds a session with the low-stock schema, a
// recording rule, and initial data.
func declareFixture(t *testing.T) (*Session, *[]string) {
	t.Helper()
	s := NewSession(rules.Incremental)
	var fired []string
	if err := s.RegisterProcedure("record", func(args []types.Value) error {
		fired = append(fired, args[0].String())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	s.MustExec(`
		create type item;
		create function quantity(item) -> integer;
		create function threshold(item) -> integer;
		create rule low() as
			when for each item i where quantity(i) < threshold(i)
			do record(i);
		create item instances :i1;
		set quantity(:i1) = 10;
		set threshold(:i1) = 5;
		activate low();
	`)
	return s, &fired
}

// TestDeclareEnforcementAndPruning drives the full path: the statement
// restricts the store, excluded updates are rejected, the rebuilt
// network prunes the impossible differentials, and monitoring of the
// unrestricted relations is unaffected.
func TestDeclareEnforcementAndPruning(t *testing.T) {
	s, fired := declareFixture(t)
	s.MustExec(`declare threshold readonly;`)

	if got := s.Store().Capability("threshold"); got != storage.CapFrozen {
		t.Fatalf("threshold capability = %v, want frozen", got)
	}
	if _, err := s.Exec(`set threshold(:i1) = 7;`); err == nil ||
		!strings.Contains(err.Error(), "readonly") {
		t.Fatalf("update of readonly threshold: got %v, want rejection", err)
	}
	net := s.Rules().Network()
	if net == nil || net.PrunedCount() == 0 {
		t.Fatal("declared capability pruned no differentials")
	}
	// Monitoring on quantity is unaffected.
	s.MustExec(`set quantity(:i1) = 3;`)
	if len(*fired) != 1 {
		t.Fatalf("rule fired %v, want one firing", *fired)
	}
	// OL301 verdicts surface in the whole-program analysis (\lint).
	rep := s.AnalyzeAll()
	found := false
	for _, d := range rep {
		if d.Code == "OL301" {
			found = true
		}
	}
	if !found {
		t.Fatalf("AnalyzeAll misses OL301 verdicts:\n%s", rep)
	}
}

// TestDeclareTypeExtent declares a capability on a type, which resolves
// to the extent relation: instance creation is rejected once frozen.
func TestDeclareTypeExtent(t *testing.T) {
	s, _ := declareFixture(t)
	s.MustExec(`declare item readonly;`)
	if _, err := s.Exec(`create item instances :i2;`); err == nil ||
		!strings.Contains(err.Error(), "readonly") {
		t.Fatalf("instance creation in frozen extent: got %v, want rejection", err)
	}
}

func TestDeclareErrors(t *testing.T) {
	s, _ := declareFixture(t)
	if _, err := s.Exec(`declare nosuch readonly;`); err == nil {
		t.Fatal("declare on unknown relation accepted")
	}
	if _, err := s.Exec(`declare quantity frobnicate;`); err == nil ||
		!strings.Contains(err.Error(), "capability") {
		t.Fatalf("bad capability: got %v", err)
	}
	// Capabilities only narrow: readonly cannot be widened back.
	s.MustExec(`declare quantity append only;`)
	if _, err := s.Exec(`declare quantity read-write;`); err == nil {
		t.Fatal("capability widening accepted")
	}
}
