package amosql

// Durability: attaching a session to a data directory, recovery, and
// checkpointing. See internal/wal for the on-disk formats and DESIGN.md
// "Durability & recovery" for the algorithm.
//
// Recovery replays a commit record's USER events through a real
// transaction and lets the deferred check phase re-derive ΔP and
// re-fire the rules — the propagation network is rebuilt by the same
// machinery that built it originally. The logged ACTION events are then
// reconciled into the store, so the final state is reached even when an
// action's procedure is not registered at recovery time (its dispatch
// is a no-op then; see buildAction). Action procedures are assumed
// deterministic; their external side effects are at-least-once across
// a crash.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"partdiff/internal/obs"
	"partdiff/internal/storage"
	"partdiff/internal/txn"
	"partdiff/internal/types"
	"partdiff/internal/wal"
)

// DirConfig configures AttachDir.
type DirConfig struct {
	// Policy is the commit-path fsync policy.
	Policy wal.SyncPolicy
	// CheckpointEvery, when > 0, takes an automatic checkpoint after
	// every N committed transactions.
	CheckpointEvery int
	// CheckpointInterval, when > 0, runs a background goroutine that
	// checkpoints periodically, skipping ticks when the session is busy
	// or inside a transaction.
	CheckpointInterval time.Duration
}

// AttachDir binds the session to a data directory: it recovers the
// database from the latest valid snapshot plus the write-ahead log
// tail, then installs the wal commit hook so every later transaction is
// logged (fsync-before-ack under the configured policy). It must be
// called on a fresh session, before any statements.
func (s *Session) AttachDir(dir string, cfg DirConfig) (err error) {
	if err = s.enter(); err != nil {
		return err
	}
	defer s.leave(&err)
	if s.wal != nil {
		return fmt.Errorf("session already attached to %s", s.walDir)
	}
	if s.txns.InTransaction() {
		return fmt.Errorf("cannot attach a data directory inside a transaction")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	s.walMet = wal.NewMetrics(s.obs.Registry)
	st, err := wal.ReadLatestSnapshot(dir)
	if err != nil {
		return err
	}
	log, recs, err := wal.Open(filepath.Join(dir, "wal.log"), cfg.Policy, s.inj, s.walMet)
	if err != nil {
		return err
	}
	log.SetBus(s.obs.Bus, 0)
	log.SetRecorder(s.obs.Flight)
	span := s.obs.Tracer.Begin("wal", "recovery", obs.Int("log_records", len(recs)))
	recStart := time.Now()
	s.recovering.Store(true)
	err = func() error {
		if st != nil {
			if err := s.loadState(st); err != nil {
				return fmt.Errorf("snapshot restore: %w", err)
			}
			s.walSeq = st.Seq
		}
		for i := range recs {
			if recs[i].Seq <= s.walSeq {
				continue // covered by the snapshot
			}
			if err := s.replayRecord(&recs[i]); err != nil {
				return fmt.Errorf("wal replay (seq %d): %w", recs[i].Seq, err)
			}
			s.walSeq = recs[i].Seq
			s.walMet.RecoveredRecords.Inc()
		}
		return nil
	}()
	s.recovering.Store(false)
	span.End()
	if err != nil {
		log.Close()
		return err
	}
	s.wal = log
	s.walDir = dir
	s.walLive.Store(log)
	s.checkpointEvery = cfg.CheckpointEvery
	s.txns.AddHook(txn.Hook{Name: "wal", OnPersist: s.walPersist, OnEnd: s.walEnd})
	if cfg.CheckpointInterval > 0 {
		s.startCheckpointer(cfg.CheckpointInterval)
	}
	if s.obs.Bus.Active() {
		s.obs.Bus.Publish(obs.Event{
			Type: obs.EventSystem, Op: "recovery",
			Ms:     float64(time.Since(recStart)) / float64(time.Millisecond),
			Detail: fmt.Sprintf("recovered %s: %d log record(s) replayed", dir, len(recs)),
		})
	}
	return nil
}

// Live reports process liveness: nil unless the database is poisoned
// (a failed rollback left the store untrustworthy). Safe to call from
// any goroutine without holding the session.
func (s *Session) Live() error { return s.txns.Corrupt() }

// Ready reports readiness to serve: recovery is complete, the database
// is not poisoned, and — when a data directory is attached — the
// write-ahead log is not sticky-poisoned by a failed append or fsync.
// Safe to call from any goroutine without holding the session.
// The error text leads with a stable reason token — corrupt,
// recovering, or wal-poisoned — so a /readyz 503 body tells an operator
// which of the three states the server is in before the detail.
func (s *Session) Ready() error {
	if err := s.Live(); err != nil {
		return fmt.Errorf("corrupt: %w", err)
	}
	if s.recovering.Load() {
		return fmt.Errorf("recovering: recovery in progress")
	}
	if l := s.walLive.Load(); l != nil {
		if err := l.Err(); err != nil {
			return fmt.Errorf("wal-poisoned: %w", err)
		}
	}
	return nil
}

// loadState rebuilds the database from a snapshot: the DDL journal is
// re-executed (rebuilding compiled conditions and rule actions, which
// cannot be serialized), then objects, interface variables and table
// contents are restored, and finally the journal's activations are
// replayed — against the loaded tables, which at snapshot time were
// quiescent, so each activation derives the same initial condition
// state it had before the crash. Loading tables before any rule is
// active keeps the restore out of every Δ-set.
func (s *Session) loadState(st *wal.State) error {
	s.ddl = append([]string(nil), st.DDL...)
	var deferred []string
	for _, src := range st.DDL {
		stmt, err := ParseOne(src)
		if err != nil {
			return fmt.Errorf("journal DDL %q: %w", src, err)
		}
		switch stmt.(type) {
		case ActivateStmt, DeactivateStmt:
			deferred = append(deferred, src)
			continue
		}
		if _, err := s.Exec(src); err != nil {
			return fmt.Errorf("journal DDL %q: %w", src, err)
		}
	}
	s.cat.SetNextOID(st.NextOID)
	for _, o := range st.Objects {
		if err := s.cat.RestoreObject(o.OID, o.Type); err != nil {
			return err
		}
	}
	for _, b := range st.Iface {
		s.setIface(b.Name, b.Value)
	}
	for _, t := range st.Tables {
		if _, ok := s.store.Relation(t.Name); !ok {
			if _, err := s.store.CreateRelation(t.Name, t.Arity, t.KeyCols); err != nil {
				return err
			}
		}
		if err := s.store.LoadTuples(t.Name, t.Tuples); err != nil {
			return err
		}
	}
	for _, src := range deferred {
		if _, err := s.Exec(src); err != nil {
			return fmt.Errorf("journal DDL %q: %w", src, err)
		}
	}
	return nil
}

// replayRecord applies one log record during recovery.
func (s *Session) replayRecord(r *wal.Record) error {
	switch r.Kind {
	case wal.RecDDL:
		s.ddl = append(s.ddl, r.Stmt)
		_, err := s.Exec(r.Stmt)
		return err
	case wal.RecIface:
		for _, b := range r.Binds {
			s.setIface(b.Name, b.Value)
		}
		return nil
	case wal.RecCommit:
		return s.replayCommit(r)
	default:
		return fmt.Errorf("unknown record kind %d", r.Kind)
	}
}

// replayCommit redoes one committed transaction: objects are reborn
// under their original OIDs, the user events are applied through a real
// transaction, and Commit re-runs the deferred check phase — the same
// Δ re-derives the same triggering, re-firing the rules. The logged
// action events are then reconciled (idempotent under set semantics)
// and the transaction's object deletions and bindings applied.
func (s *Session) replayCommit(r *wal.Record) error {
	if err := s.txns.Begin(); err != nil {
		return err
	}
	abort := func(err error) error {
		s.txns.Rollback()
		return err
	}
	for _, o := range r.ObjNews {
		if err := s.cat.RestoreObject(o.OID, o.Type); err != nil {
			return abort(err)
		}
	}
	for _, e := range r.Events {
		var err error
		if e.Kind == storage.InsertEvent {
			_, err = s.store.Insert(e.Relation, e.Tuple)
		} else {
			_, err = s.store.Delete(e.Relation, e.Tuple)
		}
		if err != nil {
			return abort(err)
		}
	}
	if err := s.txns.Commit(); err != nil {
		return err
	}
	for _, e := range r.ActEvents {
		if err := s.store.ApplyLogged(e); err != nil {
			return err
		}
	}
	for _, b := range r.Binds {
		s.setIface(b.Name, b.Value)
	}
	for _, oid := range r.ObjDels {
		s.cat.DeleteObject(oid)
		s.ifaceMu.Lock()
		for name, v := range s.iface {
			if v.Kind == types.KindObject && v.O == oid {
				delete(s.iface, name)
			}
		}
		s.ifaceMu.Unlock()
	}
	return nil
}

// walOn reports whether commit capture for the write-ahead log is live.
func (s *Session) walOn() bool { return s.wal != nil && !s.recovering.Load() }

// logDDL journals one schema statement's source text and, with a data
// directory attached, appends it to the write-ahead log. DDL is logged
// at execution time — like the in-memory catalog it survives a
// surrounding transaction rollback. A failed append is reported as the
// statement's error: the change is applied in memory but will not
// survive a crash.
func (s *Session) logDDL(src string) error {
	if s.recovering.Load() || src == "" {
		return nil
	}
	s.ddl = append(s.ddl, src)
	if s.wal == nil {
		return nil
	}
	s.walSeq++
	if err := s.wal.Append(&wal.Record{Seq: s.walSeq, Kind: wal.RecDDL, Stmt: src}); err != nil {
		return fmt.Errorf("schema change applied but not logged: %w", err)
	}
	return nil
}

// walPersist is the wal hook's persist callback (see the commit order
// in internal/txn): it appends the commit record, and the commit is
// acknowledged to the caller only after an fsync covers it. Under
// SyncAlways the fsync happens here, and an error rolls the transaction
// back — no acknowledged commit is ever lost. Under SyncGrouped only
// the append happens inside the writer gate; the fsync wait is armed on
// the session and drained by leave() AFTER the gate is released, so
// concurrent committers append behind each other and share one batched
// fsync (group commit). A grouped fsync failure therefore surfaces as
// "commit applied but not durable" from the committing call — the log
// is poisoned and every later commit fails — instead of a rollback.
func (s *Session) walPersist(user, action []storage.Event) error {
	if !s.walOn() {
		return nil
	}
	rec := &wal.Record{
		Kind:      wal.RecCommit,
		Events:    user,
		ActEvents: action,
		ObjNews:   s.walObjNews,
		ObjDels:   s.walObjDels,
		Binds:     s.walBinds,
	}
	if rec.Empty() {
		return nil
	}
	rec.Seq = s.walSeq + 1
	if s.wal.Policy() == wal.SyncGrouped {
		if err := s.wal.Write(rec); err != nil {
			return err
		}
		s.walSeq++
		if s.owner.Load() == goid() {
			// Gated commit: arm the fsync wait for leave() to drain
			// after the gate is released, so concurrent committers
			// share one batched fsync.
			s.syncWait = s.wal.AwaitSync
			return nil
		}
		// Direct transaction-manager commit (no gate, nothing will run
		// leave()): wait for the group fsync here to keep the
		// fsync-before-ack guarantee.
		return s.wal.AwaitSync()
	}
	if err := s.wal.Append(rec); err != nil {
		return err
	}
	s.walSeq++
	return nil
}

// walEnd clears the per-transaction capture and drives commit-count
// checkpointing.
func (s *Session) walEnd(committed bool) {
	s.walObjNews, s.walObjDels, s.walBinds = nil, nil, nil
	if committed && s.walOn() && s.checkpointEvery > 0 {
		s.commitsSinceCkpt++
		if s.commitsSinceCkpt >= s.checkpointEvery {
			// Best effort: after a failed automatic checkpoint the log
			// just stays longer, and the next commit retries.
			_ = s.checkpointLocked()
		}
	}
}

// Checkpoint snapshots the database into the data directory and
// truncates the write-ahead log. The snapshot is durable (temp file,
// fsync, atomic rename, directory fsync) before the log is reset, so a
// crash at any point recovers: before the rename the old snapshot +
// full log win; between rename and reset, replay skips the records the
// new snapshot covers (by seq).
func (s *Session) Checkpoint() error {
	return s.CheckpointContext(context.Background())
}

// CheckpointContext is Checkpoint bounded by ctx for writer admission
// (the background checkpointer uses a short deadline so a busy session
// costs a retry, not a stall).
func (s *Session) CheckpointContext(ctx context.Context) (err error) {
	if err = s.enterCtx(ctx); err != nil {
		return err
	}
	defer s.leave(&err)
	return s.checkpointLocked()
}

func (s *Session) checkpointLocked() error {
	if s.wal == nil {
		return fmt.Errorf("no data directory attached")
	}
	if s.txns.InTransaction() {
		return fmt.Errorf("cannot checkpoint inside a transaction")
	}
	if err := s.wal.Err(); err != nil {
		return err
	}
	ckptStart := time.Now()
	if err := wal.WriteSnapshot(s.walDir, s.CaptureState(), s.inj, s.walMet); err != nil {
		return err
	}
	s.commitsSinceCkpt = 0
	if err := s.wal.Reset(); err != nil {
		return err
	}
	s.obs.Flight.RecordFsync("checkpoint", time.Since(ckptStart))
	if s.obs.Bus.Active() {
		s.obs.Bus.Publish(obs.Event{
			Type: obs.EventSystem, Op: "checkpoint",
			CommitSeq: s.store.CommitSeq(),
			Ms:        float64(time.Since(ckptStart)) / float64(time.Millisecond),
			Detail:    fmt.Sprintf("snapshot through wal seq %d", s.walSeq),
		})
	}
	return nil
}

// SaveTo writes a standalone snapshot of the current database into dir
// (created if missing) without attaching the session to it — an
// on-demand backup, also usable from a purely in-memory session. A
// directory already holding database files is refused, except the
// session's own data directory, where SaveTo is just Checkpoint.
func (s *Session) SaveTo(dir string) (err error) {
	if err = s.enter(); err != nil {
		return err
	}
	defer s.leave(&err)
	if s.txns.InTransaction() {
		return fmt.Errorf("cannot save inside a transaction")
	}
	if s.wal != nil && dir == s.walDir {
		return s.checkpointLocked()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if wal.IsSnapshotFile(e.Name()) || e.Name() == "wal.log" {
			return fmt.Errorf("refusing to save into %s: it already contains %s", dir, e.Name())
		}
	}
	return wal.WriteSnapshot(dir, s.CaptureState(), nil, nil)
}

// CaptureState serializes the full logical database state — the DDL
// journal, object universe, interface variables, and every base
// relation — in deterministic order. Exported so tests can compare
// states byte-for-byte via wal.MarshalState.
func (s *Session) CaptureState() *wal.State {
	st := &wal.State{
		Seq:     s.walSeq,
		DDL:     append([]string(nil), s.ddl...),
		NextOID: s.cat.NextOID(),
	}
	for _, o := range s.cat.Objects() {
		st.Objects = append(st.Objects, wal.ObjectRec{OID: o.OID, Type: o.Type})
	}
	for _, n := range s.ifaceNames() {
		v, _ := s.getIface(n)
		st.Iface = append(st.Iface, wal.Bind{Name: n, Value: v})
	}
	for _, rn := range s.store.RelationNames() {
		rel, _ := s.store.Relation(rn)
		st.Tables = append(st.Tables, wal.Table{
			Name: rn, Arity: rel.Arity(), KeyCols: rel.KeyCols(), Tuples: rel.Tuples(),
		})
	}
	return st
}

// startCheckpointer runs the periodic background checkpointer.
func (s *Session) startCheckpointer(interval time.Duration) {
	s.ckptStop = make(chan struct{})
	s.ckptWG.Add(1)
	go func() {
		defer s.ckptWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.tickCheckpoint(interval)
			case <-s.ckptStop:
				return
			}
		}
	}()
}

// tickCheckpoint attempts one background checkpoint. A busy session
// (writers holding the gate past the admission deadline) is retried a
// few times with jittered backoff rather than silently skipping the
// whole tick; contention retries and abandoned ticks are counted in
// the wal metrics. Non-contention failures (poisoned log, checkpoint
// I/O errors) stay best-effort: the log just grows until a later tick
// or commit-count checkpoint succeeds.
func (s *Session) tickCheckpoint(interval time.Duration) {
	wait := interval / 4
	if wait <= 0 || wait > 2*time.Second {
		wait = 2 * time.Second
	}
	const attempts = 3
	for i := 0; i < attempts; i++ {
		if i > 0 {
			s.walMet.CkptBusyRetries.Inc()
			d := time.Duration(i) * 5 * time.Millisecond
			d += time.Duration(rand.Int63n(int64(d)))
			select {
			case <-time.After(d):
			case <-s.ckptStop:
				return
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), wait)
		err := s.CheckpointContext(ctx)
		cancel()
		if err == nil {
			return
		}
		if !errors.Is(err, txn.ErrSessionBusy) {
			return
		}
	}
	s.walMet.CkptSkippedTicks.Inc()
}

// Close stops the background checkpointer, shuts the flight recorder
// down (draining queued diagnostics bundles to disk first), and closes
// the write-ahead log, flushing it once more. The in-memory session
// stays usable but commits fail once the log is closed — durability is
// never silently dropped. Close on a never-attached session only stops
// the recorder.
func (s *Session) Close() error {
	if s.ckptStop != nil {
		close(s.ckptStop)
		s.ckptWG.Wait()
		s.ckptStop = nil
	}
	// The recorder closes before the log: a bundle already queued may
	// still be completing, and its extras source re-enters the session,
	// which must still be coherent.
	s.obs.Flight.Close()
	if s.wal == nil {
		return nil
	}
	return s.wal.Close()
}
