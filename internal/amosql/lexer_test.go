package amosql

import "testing"

func TestTokenizeBasics(t *testing.T) {
	toks, err := tokenize(`create function f(item i) -> integer;`)
	if err != nil {
		t.Fatal(err)
	}
	wantTexts := []string{"create", "function", "f", "(", "item", "i", ")", "->", "integer", ";"}
	if len(toks) != len(wantTexts)+1 {
		t.Fatalf("tokens: %v", toks)
	}
	for i, w := range wantTexts {
		if toks[i].text != w {
			t.Errorf("token %d = %q want %q", i, toks[i].text, w)
		}
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Error("missing EOF")
	}
}

func TestTokenizeInterfaceVariables(t *testing.T) {
	toks, _ := tokenize(`set quantity(:item1) = 120;`)
	var found bool
	for _, tk := range toks {
		if tk.kind == tokIfaceVar && tk.text == "item1" {
			found = true
		}
	}
	if !found {
		t.Errorf("interface variable not lexed: %v", toks)
	}
}

func TestTokenizeNumbers(t *testing.T) {
	toks, _ := tokenize(`42 3.25 7`)
	if toks[0].kind != tokInt || toks[0].text != "42" {
		t.Errorf("int: %v", toks[0])
	}
	if toks[1].kind != tokFloat || toks[1].text != "3.25" {
		t.Errorf("float: %v", toks[1])
	}
	if toks[2].kind != tokInt {
		t.Errorf("int: %v", toks[2])
	}
}

func TestTokenizeStrings(t *testing.T) {
	toks, err := tokenize(`'hello' "wo\nrld"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokString || toks[0].text != "hello" {
		t.Errorf("string: %+v", toks[0])
	}
	if toks[1].text != "wo\nrld" {
		t.Errorf("escape: %q", toks[1].text)
	}
	if _, err := tokenize(`'unterminated`); err == nil {
		t.Error("unterminated string should error")
	}
}

func TestTokenizeComments(t *testing.T) {
	toks, _ := tokenize("a -- line comment\nb /* block\ncomment */ c")
	texts := []string{}
	for _, tk := range toks {
		if tk.kind != tokEOF {
			texts = append(texts, tk.text)
		}
	}
	if len(texts) != 3 || texts[0] != "a" || texts[1] != "b" || texts[2] != "c" {
		t.Errorf("tokens=%v", texts)
	}
}

func TestTokenizeOperators(t *testing.T) {
	toks, _ := tokenize(`-> <= >= != < > = + - * /`)
	want := []string{"->", "<=", ">=", "!=", "<", ">", "=", "+", "-", "*", "/"}
	for i, w := range want {
		if toks[i].kind != tokSymbol || toks[i].text != w {
			t.Errorf("op %d: %+v want %q", i, toks[i], w)
		}
	}
}

func TestLineTracking(t *testing.T) {
	toks, _ := tokenize("a\nb\n\nc")
	if toks[0].line != 1 || toks[1].line != 2 || toks[2].line != 4 {
		t.Errorf("lines: %d %d %d", toks[0].line, toks[1].line, toks[2].line)
	}
}
