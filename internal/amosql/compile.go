package amosql

import (
	"fmt"

	"partdiff/internal/catalog"
	"partdiff/internal/objectlog"
	"partdiff/internal/types"
)

// compiler translates declarative AMOSQL (select queries and rule
// conditions) into ObjectLog definitions, as the AMOS rule compiler does
// in §3.2.
type compiler struct {
	cat    *catalog.Catalog
	iface  map[string]types.Value
	gensym int
}

func (c *compiler) fresh() string {
	c.gensym++
	return fmt.Sprintf("_G%d", c.gensym)
}

// clauseCtx accumulates the body of one conjunctive clause.
type clauseCtx struct {
	c    *compiler
	vars map[string]bool // declared query variables
	body []objectlog.Literal
}

// compileQuery compiles a select query (or rule condition) into an
// ObjectLog definition named headName. Leading head arguments are the
// declared params (rule parameters); the remaining head arguments are
// the query's result expressions (for rules: the for-each variables).
// It returns the definition and the head variable names (empty string
// for non-variable result expressions).
func (c *compiler) compileQuery(headName string, params []ParamDecl, q *SelectQuery) (*objectlog.Def, []string, error) {
	decls := append(append([]ParamDecl{}, params...), q.ForEach...)
	// Result expressions default to the for-each variables when the
	// query is a rule condition compiled from "for each ... where ...".
	exprs := q.Exprs
	disjuncts := [][]Expr{nil}
	if q.Where != nil {
		disjuncts = dnf(q.Where)
	}
	var headNames []string
	var clauses []objectlog.Clause
	for di, conj := range disjuncts {
		ctx := &clauseCtx{c: c, vars: map[string]bool{}}
		// Typed variable declarations: object-typed variables range over
		// their type extent.
		for _, d := range decls {
			if d.Name == "" {
				return nil, nil, fmt.Errorf("declared variable must be named")
			}
			if ctx.vars[d.Name] {
				return nil, nil, fmt.Errorf("variable %q declared twice", d.Name)
			}
			ctx.vars[d.Name] = true
			if !catalog.IsScalarType(d.Type) {
				if _, ok := c.cat.Type(d.Type); !ok {
					return nil, nil, fmt.Errorf("unknown type %q", d.Type)
				}
				ctx.body = append(ctx.body, objectlog.Lit(objectlog.TypePred(d.Type), objectlog.V(d.Name)))
			}
		}
		for _, pe := range conj {
			if err := ctx.pred(pe); err != nil {
				return nil, nil, err
			}
		}
		// Head: params then result expressions.
		head := objectlog.Literal{Pred: headName}
		names := make([]string, 0, len(params)+len(exprs))
		for _, p := range params {
			head.Args = append(head.Args, objectlog.V(p.Name))
			names = append(names, p.Name)
		}
		for _, e := range exprs {
			t, err := ctx.term(e)
			if err != nil {
				return nil, nil, err
			}
			head.Args = append(head.Args, t)
			if v, ok := e.(VarRef); ok {
				names = append(names, v.Name)
			} else {
				names = append(names, "")
			}
		}
		if di == 0 {
			headNames = names
		}
		clauses = append(clauses, objectlog.Clause{Head: head, Body: ctx.body})
	}
	def := &objectlog.Def{
		Name:    headName,
		Arity:   len(params) + len(exprs),
		Clauses: clauses,
	}
	return def, headNames, nil
}

// compileAggregateQuery compiles an aggregate function body
// (`select sum(EXPR) for each DECLS where PRED`) into an aggregate
// definition: the clauses compute (params ++ for-each witnesses ++
// EXPR); grouping is by the params, and the for-each variables act as
// witnesses preserving multiplicity under set semantics.
func (c *compiler) compileAggregateQuery(headName string, params []ParamDecl, q *SelectQuery, op string, inner Expr) (*objectlog.Def, error) {
	exprs := make([]Expr, 0, len(q.ForEach)+1)
	for _, w := range q.ForEach {
		exprs = append(exprs, VarRef{Name: w.Name})
	}
	exprs = append(exprs, inner)
	q2 := &SelectQuery{Exprs: exprs, ForEach: q.ForEach, Where: q.Where}
	def, _, err := c.compileQuery(headName, params, q2)
	if err != nil {
		return nil, err
	}
	def.Aggregate = op
	def.GroupCols = len(params)
	return def, nil
}

// aggregateCall recognizes a select body that is a single aggregate
// application over an expression, e.g. `sum(salary(e))`. User-defined
// functions shadow the aggregate names.
func (c *compiler) aggregateCall(q *SelectQuery) (op string, inner Expr, ok bool) {
	if len(q.Exprs) != 1 {
		return "", nil, false
	}
	call, isCall := q.Exprs[0].(Call)
	if !isCall || !objectlog.IsAggregateOp(call.Fn) || len(call.Args) != 1 {
		return "", nil, false
	}
	if _, shadowed := c.cat.Function(call.Fn); shadowed {
		return "", nil, false
	}
	return call.Fn, call.Args[0], true
}

// dnf normalizes a boolean predicate into disjunctive normal form,
// pushing negation inward (comparisons flip; negated function calls stay
// as atoms and compile to safe negation).
func dnf(e Expr) [][]Expr {
	switch x := e.(type) {
	case Binary:
		switch x.Op {
		case "and":
			l, r := dnf(x.L), dnf(x.R)
			var out [][]Expr
			for _, a := range l {
				for _, b := range r {
					conj := make([]Expr, 0, len(a)+len(b))
					conj = append(conj, a...)
					conj = append(conj, b...)
					out = append(out, conj)
				}
			}
			return out
		case "or":
			return append(dnf(x.L), dnf(x.R)...)
		}
	case Unary:
		if x.Op == "not" {
			return dnfNot(x.X)
		}
	}
	return [][]Expr{{e}}
}

func dnfNot(e Expr) [][]Expr {
	switch x := e.(type) {
	case Binary:
		switch x.Op {
		case "and": // ¬(a ∧ b) = ¬a ∨ ¬b
			return append(dnfNot(x.L), dnfNot(x.R)...)
		case "or": // ¬(a ∨ b) = ¬a ∧ ¬b
			l, r := dnfNot(x.L), dnfNot(x.R)
			var out [][]Expr
			for _, a := range l {
				for _, b := range r {
					conj := make([]Expr, 0, len(a)+len(b))
					conj = append(conj, a...)
					conj = append(conj, b...)
					out = append(out, conj)
				}
			}
			return out
		case "=":
			// `not (f(args) = v)` must become safe negation ¬f(args,v),
			// not ∃m≠v: f(args)=m — the two differ for set-valued
			// functions. Keep it as a negated atom; pred() decides.
			if isCall(x.L) || isCall(x.R) {
				return [][]Expr{{Unary{Op: "not", X: x}}}
			}
			return [][]Expr{{Binary{Op: "!=", L: x.L, R: x.R}}}
		case "!=", "<", "<=", ">", ">=":
			// Comparison flipping assumes single-valued function
			// application (the normal AMOSQL case).
			return [][]Expr{{Binary{Op: flipCmp(x.Op), L: x.L, R: x.R}}}
		}
	case Unary:
		if x.Op == "not" { // ¬¬a = a
			return dnf(x.X)
		}
	}
	// Atom (function call): keep as negated atom.
	return [][]Expr{{Unary{Op: "not", X: e}}}
}

func isCall(e Expr) bool {
	_, ok := e.(Call)
	return ok
}

func flipCmp(op string) string {
	switch op {
	case "=":
		return "!="
	case "!=":
		return "="
	case "<":
		return ">="
	case "<=":
		return ">"
	case ">":
		return "<="
	case ">=":
		return "<"
	}
	return op
}

var cmpBuiltin = map[string]string{
	"=":  objectlog.BuiltinEQ,
	"!=": objectlog.BuiltinNE,
	"<":  objectlog.BuiltinLT,
	"<=": objectlog.BuiltinLE,
	">":  objectlog.BuiltinGT,
	">=": objectlog.BuiltinGE,
}

var arithBuiltin = map[string]string{
	"+": objectlog.BuiltinPlus,
	"-": objectlog.BuiltinMinus,
	"*": objectlog.BuiltinTimes,
	"/": objectlog.BuiltinDiv,
}

// pred compiles a predicate atom, appending literals to the clause body.
func (ctx *clauseCtx) pred(e Expr) error {
	switch x := e.(type) {
	case Binary:
		if b, ok := cmpBuiltin[x.Op]; ok {
			// Optimization: f(args) = expr compiles to one relation
			// literal with the result unified directly (no eq builtin).
			if x.Op == "=" {
				if call, ok := x.L.(Call); ok && ctx.c.isRelationFn(call.Fn) {
					return ctx.callLiteral(call, x.R, false)
				}
				if call, ok := x.R.(Call); ok && ctx.c.isRelationFn(call.Fn) {
					return ctx.callLiteral(call, x.L, false)
				}
			}
			lt, err := ctx.term(x.L)
			if err != nil {
				return err
			}
			rt, err := ctx.term(x.R)
			if err != nil {
				return err
			}
			ctx.body = append(ctx.body, objectlog.Lit(b, lt, rt))
			return nil
		}
		return fmt.Errorf("operator %q is not a predicate", x.Op)
	case Unary:
		if x.Op == "not" {
			switch inner := x.X.(type) {
			case Call:
				return ctx.callLiteral(inner, ConstExpr{Value: types.Bool(true)}, true)
			case Binary:
				if inner.Op == "=" {
					if call, ok := inner.L.(Call); ok && ctx.c.isRelationFn(call.Fn) {
						return ctx.callLiteral(call, inner.R, true)
					}
					if call, ok := inner.R.(Call); ok && ctx.c.isRelationFn(call.Fn) {
						return ctx.callLiteral(call, inner.L, true)
					}
					// No relational call: plain disequality.
					return ctx.pred(Binary{Op: "!=", L: inner.L, R: inner.R})
				}
			}
			return fmt.Errorf("negation of %s is not supported here", x.X)
		}
		return fmt.Errorf("operator %q is not a predicate", x.Op)
	case Call:
		// Boolean function used as predicate: f(args) = true.
		return ctx.callLiteral(x, ConstExpr{Value: types.Bool(true)}, false)
	case ConstExpr:
		if x.Value.AsBool() {
			return nil // trivially true conjunct
		}
		return fmt.Errorf("predicate is constantly false")
	default:
		return fmt.Errorf("%s is not a predicate", e)
	}
}

// callLiteral emits the relation literal fn(args..., result).
func (ctx *clauseCtx) callLiteral(call Call, result Expr, negated bool) error {
	fn, ok := ctx.c.cat.Function(call.Fn)
	if !ok {
		return fmt.Errorf("unknown function %q", call.Fn)
	}
	if fn.Kind == catalog.Foreign {
		return fmt.Errorf("foreign function %q cannot be used in a declarative condition (incremental evaluation of foreign functions is future work, §8)", call.Fn)
	}
	if len(call.Args) != len(fn.Params) {
		return fmt.Errorf("function %q takes %d arguments, got %d", call.Fn, len(fn.Params), len(call.Args))
	}
	args := make([]objectlog.Term, 0, fn.Arity())
	for _, a := range call.Args {
		t, err := ctx.term(a)
		if err != nil {
			return err
		}
		args = append(args, t)
	}
	rt, err := ctx.term(result)
	if err != nil {
		return err
	}
	args = append(args, rt)
	lit := objectlog.Literal{Pred: call.Fn, Args: args, Negated: negated}
	ctx.body = append(ctx.body, lit)
	return nil
}

// isRelationFn reports whether fn is a stored or derived function.
func (c *compiler) isRelationFn(name string) bool {
	f, ok := c.cat.Function(name)
	return ok && f.Kind != catalog.Foreign
}

// term compiles a value expression to a term, appending any relation or
// builtin literals it needs.
func (ctx *clauseCtx) term(e Expr) (objectlog.Term, error) {
	switch x := e.(type) {
	case ConstExpr:
		return objectlog.C(x.Value), nil
	case IfaceRef:
		v, ok := ctx.c.iface[x.Name]
		if !ok {
			return objectlog.Term{}, fmt.Errorf("undefined interface variable :%s", x.Name)
		}
		return objectlog.C(v), nil
	case VarRef:
		if !ctx.vars[x.Name] {
			return objectlog.Term{}, fmt.Errorf("undeclared variable %q", x.Name)
		}
		return objectlog.V(x.Name), nil
	case internalVar:
		return objectlog.V(x.name), nil
	case Call:
		res := objectlog.V(ctx.c.fresh())
		if err := ctx.callLiteral(x, varAsExpr(res), false); err != nil {
			return objectlog.Term{}, err
		}
		return res, nil
	case Unary:
		if x.Op == "-" {
			t, err := ctx.term(x.X)
			if err != nil {
				return objectlog.Term{}, err
			}
			res := objectlog.V(ctx.c.fresh())
			ctx.body = append(ctx.body, objectlog.Lit(objectlog.BuiltinMinus, objectlog.CInt(0), t, res))
			return res, nil
		}
		return objectlog.Term{}, fmt.Errorf("operator %q is not a value", x.Op)
	case Binary:
		if b, ok := arithBuiltin[x.Op]; ok {
			lt, err := ctx.term(x.L)
			if err != nil {
				return objectlog.Term{}, err
			}
			rt, err := ctx.term(x.R)
			if err != nil {
				return objectlog.Term{}, err
			}
			res := objectlog.V(ctx.c.fresh())
			ctx.body = append(ctx.body, objectlog.Lit(b, lt, rt, res))
			return res, nil
		}
		return objectlog.Term{}, fmt.Errorf("boolean expression %s used as a value", e)
	default:
		return objectlog.Term{}, fmt.Errorf("cannot compile %s", e)
	}
}

// varAsExpr wraps an internal variable term as an expression so it can
// be passed as a call result position. It is only used for compiler-
// generated variables.
type internalVar struct{ name string }

func (internalVar) expr()            {}
func (v internalVar) String() string { return v.name }

func varAsExpr(t objectlog.Term) Expr { return internalVar{name: t.Var} }
