package amosql

import (
	"math/rand"
	"strings"
	"testing"
)

func mustParseOne(t *testing.T, src string) Stmt {
	t.Helper()
	s, err := ParseOne(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return s
}

func TestParseCreateType(t *testing.T) {
	s := mustParseOne(t, `create type item;`).(CreateType)
	if s.Name != "item" || len(s.Unders) != 0 {
		t.Errorf("%+v", s)
	}
	s = mustParseOne(t, `create type perishable under item;`).(CreateType)
	if s.Name != "perishable" || len(s.Unders) != 1 || s.Unders[0] != "item" {
		t.Errorf("%+v", s)
	}
	s = mustParseOne(t, `create type amphibious under car, boat;`).(CreateType)
	if len(s.Unders) != 2 || s.Unders[0] != "car" || s.Unders[1] != "boat" {
		t.Errorf("%+v", s)
	}
}

func TestParseCreateInstances(t *testing.T) {
	s := mustParseOne(t, `create item instances :item1, :item2;`).(CreateInstances)
	if s.TypeName != "item" || len(s.Vars) != 2 || s.Vars[0] != "item1" || s.Vars[1] != "item2" {
		t.Errorf("%+v", s)
	}
}

func TestParseCreateStoredFunction(t *testing.T) {
	s := mustParseOne(t, `create function quantity(item) -> integer;`).(CreateFunction)
	if s.Name != "quantity" || len(s.Params) != 1 || s.Params[0].Type != "item" ||
		s.Params[0].Name != "" || s.Result != "integer" || s.Body != nil || s.Shared {
		t.Errorf("%+v", s)
	}
	s = mustParseOne(t, `create function delivery_time(item i, supplier s) -> integer;`).(CreateFunction)
	if len(s.Params) != 2 || s.Params[0].Name != "i" || s.Params[1].Type != "supplier" {
		t.Errorf("%+v", s)
	}
}

func TestParseCreateDerivedFunction(t *testing.T) {
	// The paper's threshold function, verbatim.
	s := mustParseOne(t, `
create function threshold(item i) -> integer
    as
    select consume_freq(i) *
        delivery_time(i, s) + min_stock(i)
    for each supplier s where supplies(s) = i;`).(CreateFunction)
	if s.Body == nil || len(s.Body.Exprs) != 1 {
		t.Fatalf("%+v", s)
	}
	if len(s.Body.ForEach) != 1 || s.Body.ForEach[0].Type != "supplier" || s.Body.ForEach[0].Name != "s" {
		t.Errorf("for each: %+v", s.Body.ForEach)
	}
	// Precedence: (consume_freq(i) * delivery_time(i,s)) + min_stock(i)
	top, ok := s.Body.Exprs[0].(Binary)
	if !ok || top.Op != "+" {
		t.Fatalf("expr=%s", s.Body.Exprs[0])
	}
	if mul, ok := top.L.(Binary); !ok || mul.Op != "*" {
		t.Errorf("expr=%s", s.Body.Exprs[0])
	}
	if s.Body.Where == nil {
		t.Error("where lost")
	}
}

func TestParseSharedFunction(t *testing.T) {
	s := mustParseOne(t, `create shared function v(item i) -> integer as select quantity(i) for each item j where j = i;`).(CreateFunction)
	if !s.Shared {
		t.Error("shared flag")
	}
}

func TestParseCreateRule(t *testing.T) {
	// The paper's monitor_items rule, verbatim.
	s := mustParseOne(t, `
create rule monitor_items() as
     when for each item i
     where quantity(i) < threshold(i)
     do order(i, max_stock(i) - quantity(i));`).(CreateRule)
	if s.Name != "monitor_items" || len(s.Params) != 0 || s.Nervous {
		t.Errorf("%+v", s)
	}
	if len(s.ForEach) != 1 || s.ForEach[0].Name != "i" {
		t.Errorf("for each: %+v", s.ForEach)
	}
	if cmp, ok := s.Where.(Binary); !ok || cmp.Op != "<" {
		t.Errorf("where=%s", s.Where)
	}
	if s.ActionProc != "order" || len(s.ActionArgs) != 2 {
		t.Errorf("action: %s %v", s.ActionProc, s.ActionArgs)
	}
}

func TestParseParameterizedRule(t *testing.T) {
	// The paper's monitor_item rule (no for-each clause).
	s := mustParseOne(t, `
create rule monitor_item(item i) as
    when quantity(i) < threshold(i)
    do order(i, max_stock(i) - quantity(i));`).(CreateRule)
	if len(s.Params) != 1 || s.Params[0].Name != "i" || len(s.ForEach) != 0 {
		t.Errorf("%+v", s)
	}
}

func TestParseNervousRuleWithPriority(t *testing.T) {
	s := mustParseOne(t, `create nervous rule r(item i) as when quantity(i) < 5 do order(i, 1) priority 7;`).(CreateRule)
	if !s.Nervous || s.Priority != 7 {
		t.Errorf("%+v", s)
	}
	s = mustParseOne(t, `create rule r2(item i) as when quantity(i) < 5 do order(i, 1) priority -3;`).(CreateRule)
	if s.Priority != -3 {
		t.Errorf("%+v", s)
	}
}

func TestParseUpdates(t *testing.T) {
	s := mustParseOne(t, `set max_stock(:item1) = 5000;`).(UpdateStmt)
	if s.Op != "set" || s.Fn != "max_stock" || len(s.Args) != 1 {
		t.Errorf("%+v", s)
	}
	if _, ok := s.Args[0].(IfaceRef); !ok {
		t.Errorf("arg: %+v", s.Args[0])
	}
	if mustParseOne(t, `add supplies(:sup1) = :item1;`).(UpdateStmt).Op != "add" {
		t.Error("add op")
	}
	if mustParseOne(t, `remove supplies(:sup1) = :item1;`).(UpdateStmt).Op != "remove" {
		t.Error("remove op")
	}
}

func TestParseSelect(t *testing.T) {
	s := mustParseOne(t, `select i, quantity(i) for each item i where quantity(i) < 100;`).(SelectStmt)
	if len(s.Query.Exprs) != 2 || len(s.Query.ForEach) != 1 || s.Query.Where == nil {
		t.Errorf("%+v", s.Query)
	}
	// select without for-each
	s = mustParseOne(t, `select quantity(:item1);`).(SelectStmt)
	if len(s.Query.Exprs) != 1 || s.Query.ForEach != nil {
		t.Errorf("%+v", s.Query)
	}
}

func TestParseActivateDeactivate(t *testing.T) {
	a := mustParseOne(t, `activate monitor_items();`).(ActivateStmt)
	if a.Rule != "monitor_items" || len(a.Args) != 0 {
		t.Errorf("%+v", a)
	}
	d := mustParseOne(t, `deactivate monitor_item(:item1);`).(DeactivateStmt)
	if d.Rule != "monitor_item" || len(d.Args) != 1 {
		t.Errorf("%+v", d)
	}
}

func TestParseTxn(t *testing.T) {
	for _, kw := range []string{"begin", "commit", "rollback"} {
		s := mustParseOne(t, kw+";").(TxnStmt)
		if s.Kind != kw {
			t.Errorf("%+v", s)
		}
	}
}

func TestParseBooleanPredicates(t *testing.T) {
	s := mustParseOne(t, `select i for each item i where quantity(i) < 5 and not flagged(i) or quantity(i) > 100;`).(SelectStmt)
	top, ok := s.Query.Where.(Binary)
	if !ok || top.Op != "or" {
		t.Fatalf("where=%s", s.Query.Where)
	}
	left, ok := top.L.(Binary)
	if !ok || left.Op != "and" {
		t.Fatalf("left=%s", top.L)
	}
	if neg, ok := left.R.(Unary); !ok || neg.Op != "not" {
		t.Errorf("negation: %s", left.R)
	}
}

func TestParseParenthesesAndUnaryMinus(t *testing.T) {
	s := mustParseOne(t, `select (1 + 2) * -3;`).(SelectStmt)
	top, ok := s.Query.Exprs[0].(Binary)
	if !ok || top.Op != "*" {
		t.Fatalf("expr=%s", s.Query.Exprs[0])
	}
	if add, ok := top.L.(Binary); !ok || add.Op != "+" {
		t.Errorf("paren grouping: %s", top.L)
	}
	if neg, ok := top.R.(Unary); !ok || neg.Op != "-" {
		t.Errorf("unary minus: %s", top.R)
	}
}

func TestParseMultipleStatements(t *testing.T) {
	stmts, err := Parse(`create type item; create function quantity(item) -> integer;;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 2 {
		t.Errorf("%d statements", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`create;`,
		`create type;`,
		`create function f(item -> integer;`,
		`create rule r() as quantity(i) < 5 do order(i);`,                      // missing when
		`create rule r() as when for each item i quantity(i) < 5 do order(i);`, // missing where
		`set f(1) 2;`,
		`select ;`,
		`activate;`,
		`frobnicate everything;`,
		`select 1 +;`,
		`create item instances item1;`, // not an interface variable
		`select 1`,                     // ParseOne tolerates, Parse needs semicolon
	}
	for _, src := range bad[:len(bad)-1] {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
	if _, err := Parse(`select 1`); err == nil {
		t.Error("Parse should require terminating semicolon")
	}
	if _, err := ParseOne(`select 1; select 2;`); err == nil {
		t.Error("ParseOne should reject trailing statements")
	}
	if _, err := ParseOne(`select 1`); err != nil {
		t.Errorf("ParseOne should tolerate missing semicolon: %v", err)
	}
}

func TestParseStringAndBoolLiterals(t *testing.T) {
	s := mustParseOne(t, `select 'abc', true, false;`).(SelectStmt)
	if len(s.Query.Exprs) != 3 {
		t.Fatalf("%+v", s.Query)
	}
	if c := s.Query.Exprs[0].(ConstExpr); c.Value.S != "abc" {
		t.Error("string literal")
	}
	if c := s.Query.Exprs[1].(ConstExpr); !c.Value.AsBool() {
		t.Error("true literal")
	}
}

// TestParserNeverPanics_Quick feeds random byte soup and random
// token-remixes of valid statements into the parser: it must return an
// error or a statement, never panic.
func TestParserNeverPanics_Quick(t *testing.T) {
	corpus := []string{
		paperFragment1, paperFragment2,
		`create type item; set f(:a) = 1 + 2 * 3; select i for each item i where not (a(i) = 2);`,
		`explain rule r; delete :x; activate r(1, 'two', true);`,
	}
	r := rand.New(rand.NewSource(7))
	defer func() {
		if p := recover(); p != nil {
			t.Fatalf("parser panicked: %v", p)
		}
	}()
	for i := 0; i < 3000; i++ {
		var src string
		switch i % 3 {
		case 0: // random bytes
			b := make([]byte, r.Intn(60))
			for j := range b {
				b[j] = byte(32 + r.Intn(95))
			}
			src = string(b)
		case 1: // token soup from corpus
			toks, err := tokenize(corpus[r.Intn(len(corpus))])
			if err != nil {
				continue
			}
			var sb strings.Builder
			for j := 0; j < r.Intn(25); j++ {
				tk := toks[r.Intn(len(toks))]
				if tk.kind == tokEOF {
					continue
				}
				sb.WriteString(tk.text)
				sb.WriteByte(' ')
			}
			src = sb.String()
		default: // corpus with random truncation
			c := corpus[r.Intn(len(corpus))]
			src = c[:r.Intn(len(c)+1)]
		}
		Parse(src) // error or success, never panic
	}
}

const paperFragment1 = `
create function threshold(item i) -> integer as
    select consume_freq(i) * delivery_time(i, s) + min_stock(i)
    for each supplier s where supplies(s) = i;`

const paperFragment2 = `
create rule monitor_items() as
    when for each item i where quantity(i) < threshold(i)
    do order(i, max_stock(i) - quantity(i)) priority 3;`

func TestExprStringRendering(t *testing.T) {
	s := mustParseOne(t, `select max_stock(i) - quantity(i) for each item i;`).(SelectStmt)
	if got := s.Query.Exprs[0].String(); got != "(max_stock(i) - quantity(i))" {
		t.Errorf("String()=%q", got)
	}
}
