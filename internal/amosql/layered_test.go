package amosql

import (
	"testing"

	"partdiff/internal/rules"
	"partdiff/internal/types"
)

// Layered networks: aggregates over shared views, rules over both.
// Exercises a three-level propagation: base → shared diff node →
// aggregate recompute node → condition.
func TestAggregateOverSharedView(t *testing.T) {
	for _, mode := range []rules.Mode{rules.Incremental, rules.Naive} {
		t.Run(mode.String(), func(t *testing.T) {
			s := NewSession(mode)
			var fired []string
			s.RegisterProcedure("hit", func(args []types.Value) error {
				fired = append(fired, args[0].String())
				return nil
			})
			s.MustExec(`
create type order_line;
create function qty(order_line) -> integer;
create function price(order_line) -> integer;

-- Shared intermediate: line value.
create shared function line_value(order_line l) -> integer
    as select qty(l) * price(l) for each order_line m where m = l;

-- Aggregate over the shared view.
create function order_total() -> integer
    as select sum(line_value(l)) for each order_line l where qty(l) > 0;

create rule big_order() as
    when for each order_line l where order_total() > 100 and qty(l) > 0
    do hit(l);

create order_line instances :l1, :l2;
set qty(:l1) = 2;
set price(:l1) = 10;
set qty(:l2) = 3;
set price(:l2) = 20;
activate big_order();
`)
			// Total = 20 + 60 = 80 ≤ 100: nothing yet.
			if len(fired) != 0 {
				t.Fatalf("fired early: %v", fired)
			}
			// Raise a price: total = 20 + 90 = 110 > 100. Both lines
			// satisfy qty>0 so both instances trigger.
			s.MustExec(`set price(:l2) = 30;`)
			if len(fired) != 2 {
				t.Fatalf("fired=%v", fired)
			}
			// Verify network structure in incremental mode.
			if mode == rules.Incremental {
				net := s.Rules().Network()
				lv, ok := net.Node("line_value")
				if !ok || lv.Recompute || lv.Base {
					t.Errorf("line_value node: %+v", lv)
				}
				ot, ok := net.Node("order_total")
				if !ok || !ot.Recompute {
					t.Errorf("order_total node: %+v", ot)
				}
				if ot.Level <= lv.Level {
					t.Errorf("levels: line_value=%d order_total=%d", lv.Level, ot.Level)
				}
			}
			// Net-change: a dip and recovery of the total in one txn.
			before := len(fired)
			s.MustExec(`
begin;
set qty(:l1) = 0;
set qty(:l1) = 2;
commit;
`)
			if len(fired) != before {
				t.Errorf("transient total change fired: %v", fired)
			}
		})
	}
}

// Recursive view over a shared view: chain over a derived edge.
func TestRecursionOverSharedView(t *testing.T) {
	s := NewSession(rules.Incremental)
	var fired []string
	s.RegisterProcedure("hit", func(args []types.Value) error {
		fired = append(fired, args[0].String())
		return nil
	})
	s.MustExec(`
create type host;
create function wired(host) -> host;
create function enabled(host) -> boolean;

-- Shared derived edge: only enabled links conduct.
create shared function live_link(host a) -> host
    as select b for each host b
    where wired(a) = b and enabled(a) = true;

create function reaches(host a) -> host
    as select b for each host b
    where live_link(a) = b or reaches(live_link(a)) = b;

create rule connectivity(host target) as
    when for each host h where reaches(h) = target
    do hit(h);

create host instances :core, :edge1, :edge2;
set wired(:edge1) = :core;
set wired(:edge2) = :edge1;
set enabled(:edge1) = true;
activate connectivity(:core);
`)
	// edge1 reaches core already at activation (no changes → no fire).
	if len(fired) != 0 {
		t.Fatalf("fired at activation: %v", fired)
	}
	// Enabling edge2 connects it through edge1.
	s.MustExec(`set enabled(:edge2) = true;`)
	if len(fired) != 1 || fired[0] != "#3" {
		t.Fatalf("fired=%v", fired)
	}
	// Disabling edge1 cuts both; re-enabling restores both: two new
	// connectivity transitions.
	s.MustExec(`remove enabled(:edge1) = true;`)
	s.MustExec(`set enabled(:edge1) = true;`)
	if len(fired) != 3 {
		t.Errorf("after flap: %v", fired)
	}
}
