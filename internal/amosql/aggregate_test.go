package amosql

import (
	"testing"

	"partdiff/internal/rules"
	"partdiff/internal/types"
)

// hrSession builds an employee/department schema with an aggregate
// headcount view.
func hrSession(t *testing.T) *Session {
	t.Helper()
	s := NewSession(rules.Incremental)
	s.MustExec(`
create type department;
create type employee;
create function works_in(employee) -> department;
create function salary(employee) -> integer;
create function headcount(department d) -> integer
    as select count(e) for each employee e where works_in(e) = d;
create function payroll(department d) -> integer
    as select sum(salary(e)) for each employee e where works_in(e) = d;
create department instances :rnd, :sales;
create employee instances :ada, :grace, :alan;
set works_in(:ada) = :rnd;
set works_in(:grace) = :rnd;
set works_in(:alan) = :sales;
set salary(:ada) = 100;
set salary(:grace) = 100;
set salary(:alan) = 300;
`)
	return s
}

func TestAggregateFunctionInQueries(t *testing.T) {
	s := hrSession(t)
	r, err := s.Query(`select headcount(d) for each department d where d = :rnd;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tuples) != 1 || !r.Tuples[0][0].Equal(types.Int(2)) {
		t.Errorf("headcount(rnd)=%v", r.Tuples)
	}
	// Equal salaries must both be summed (witness semantics).
	r, _ = s.Query(`select payroll(d) for each department d where d = :rnd;`)
	if len(r.Tuples) != 1 || !r.Tuples[0][0].Equal(types.Int(200)) {
		t.Errorf("payroll(rnd)=%v", r.Tuples)
	}
	// Procedural call path.
	r, _ = s.Query(`select payroll(:sales);`)
	if len(r.Tuples) != 1 || !r.Tuples[0][0].Equal(types.Int(300)) {
		t.Errorf("payroll(sales)=%v", r.Tuples)
	}
}

func TestAdHocAggregateSelect(t *testing.T) {
	s := hrSession(t)
	r, err := s.Query(`select count(e) for each employee e;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tuples) != 1 || !r.Tuples[0][0].Equal(types.Int(3)) {
		t.Errorf("count=%v", r.Tuples)
	}
	r, err = s.Query(`select sum(salary(e)) for each employee e;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tuples) != 1 || !r.Tuples[0][0].Equal(types.Int(500)) {
		t.Errorf("sum=%v", r.Tuples)
	}
	r, err = s.Query(`select max(salary(e)) for each employee e;`)
	if err != nil || !r.Tuples[0][0].Equal(types.Int(300)) {
		t.Errorf("max=%v err=%v", r, err)
	}
	r, err = s.Query(`select min(salary(e)) for each employee e;`)
	if err != nil || !r.Tuples[0][0].Equal(types.Int(100)) {
		t.Errorf("min=%v err=%v", r, err)
	}
}

// TestRuleOnAggregateCondition monitors an aggregate: the rule fires
// when a department's headcount exceeds its limit. Aggregate views
// become re-evaluation nodes in the propagation network; consumers stay
// incremental.
func TestRuleOnAggregateCondition(t *testing.T) {
	s := hrSession(t)
	var over []string
	s.RegisterProcedure("over_limit", func(args []types.Value) error {
		over = append(over, args[0].String())
		return nil
	})
	s.MustExec(`
create function limit_of(department) -> integer;
set limit_of(:rnd) = 2;
set limit_of(:sales) = 2;
create rule crowding() as
    when for each department d where headcount(d) > limit_of(d)
    do over_limit(d);
activate crowding();
`)
	// The network has a recompute node for headcount.
	net := s.Rules().Network()
	nd, ok := net.Node("headcount")
	if !ok || !nd.Recompute || nd.Base {
		t.Fatalf("headcount node: ok=%v %+v", ok, nd)
	}
	// Hire a third person into rnd: headcount 2 → 3 > 2.
	s.MustExec(`create employee instances :new1; set works_in(:new1) = :rnd;`)
	if len(over) != 1 {
		t.Fatalf("over=%v", over)
	}
	// Strict: hiring a fourth keeps the condition true — no refire.
	s.MustExec(`create employee instances :new2; set works_in(:new2) = :rnd;`)
	if len(over) != 1 {
		t.Errorf("refired: %v", over)
	}
	// Two leave; condition false again. Then one rejoins: 2 → 3 → fire.
	s.MustExec(`remove works_in(:new1) = :rnd; remove works_in(:new2) = :rnd;`)
	s.MustExec(`set works_in(:new1) = :rnd;`)
	if len(over) != 2 {
		t.Errorf("after rejoin: %v", over)
	}
}

// TestRuleOnAggregateDeletion: a deletion-driven aggregate transition
// (sum dropping below a floor) must trigger through the negative side.
func TestRuleOnAggregateDeletion(t *testing.T) {
	s := hrSession(t)
	var alerts []string
	s.RegisterProcedure("underfunded", func(args []types.Value) error {
		alerts = append(alerts, args[0].String())
		return nil
	})
	s.MustExec(`
create rule funding() as
    when for each department d where payroll(d) < 150
    do underfunded(d);
activate funding();
`)
	// Grace leaves rnd: payroll 200 → 100 < 150.
	s.MustExec(`remove works_in(:grace) = :rnd;`)
	if len(alerts) != 1 {
		t.Errorf("alerts=%v", alerts)
	}
}

func TestAggregateNetChangeWithinTransaction(t *testing.T) {
	s := hrSession(t)
	fired := 0
	s.RegisterProcedure("hit", func([]types.Value) error { fired++; return nil })
	s.MustExec(`
create rule big() as
    when for each department d where headcount(d) > 2
    do hit(d);
activate big();
begin;
create employee instances :t1;
set works_in(:t1) = :rnd;
remove works_in(:t1) = :rnd;
commit;
`)
	if fired != 0 {
		t.Errorf("transient aggregate change fired %d times", fired)
	}
}

func TestAggregateCannotBeUpdated(t *testing.T) {
	s := hrSession(t)
	if _, err := s.Exec(`set headcount(:rnd) = 5;`); err == nil {
		t.Error("updating an aggregate function accepted")
	}
}

func TestUserFunctionShadowsAggregateName(t *testing.T) {
	s := NewSession(rules.Incremental)
	s.MustExec(`
create type t;
create function count(t) -> integer;
create t instances :a;
set count(:a) = 7;
`)
	r, err := s.Query(`select count(:a);`)
	if err != nil || !r.Tuples[0][0].Equal(types.Int(7)) {
		t.Errorf("shadowed count: %v %v", r, err)
	}
}

func TestAggregateExplainTrace(t *testing.T) {
	s := hrSession(t)
	s.RegisterProcedure("hit", func([]types.Value) error { return nil })
	s.MustExec(`
create rule big() as
    when for each department d where headcount(d) > 2
    do hit(d);
activate big();
create employee instances :x1;
set works_in(:x1) = :rnd;
`)
	ex := s.Rules().LastExplanations()
	if len(ex) != 1 {
		t.Fatalf("explanations=%+v", ex)
	}
	foundAgg := false
	for _, e := range ex[0].Entries {
		if e.Influent == "headcount" {
			foundAgg = true
		}
	}
	if !foundAgg {
		t.Errorf("headcount not in explanation: %+v", ex[0].Entries)
	}
}
