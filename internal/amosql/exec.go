package amosql

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"partdiff/internal/analyze"
	"partdiff/internal/catalog"
	"partdiff/internal/eval"
	"partdiff/internal/faultinject"
	"partdiff/internal/objectlog"
	"partdiff/internal/obs"
	"partdiff/internal/rules"
	"partdiff/internal/storage"
	"partdiff/internal/txn"
	"partdiff/internal/types"
	"partdiff/internal/wal"
)

// Result is the outcome of one executed statement.
type Result struct {
	// Columns names the result columns of a select (expression text).
	Columns []string
	// Tuples are the result rows of a select, in deterministic order.
	Tuples []types.Tuple
	// Message summarizes a non-query statement's effect.
	Message string
}

// Session is an AMOSQL session: a database (store + catalog), a rule
// manager, a transaction manager, and the session's interface variables.
type Session struct {
	store *storage.Store
	cat   *catalog.Catalog
	mgr   *rules.Manager
	txns  *txn.Manager
	iface map[string]types.Value
	comp  *compiler
	ev    *eval.Evaluator

	// pendingDeletes holds objects whose catalog destruction is
	// deferred to commit: their stored footprint is retracted inside
	// the transaction (and restored by rollback), but the OID itself
	// dies only if the transaction commits.
	pendingDeletes []pendingDelete

	// lintMode turns rule actions into no-ops, so a script can be
	// executed for analysis only (the \lint and -lint paths) without
	// requiring its foreign procedures or performing their effects.
	lintMode bool

	// Concurrency control (see concurrency.go). Transactions are serial
	// (internal/txn): gate is the fair FIFO writer-admission gate,
	// owner the id of the goroutine currently holding it (0 = free) and
	// depth its re-entrancy count — re-entrant calls from the owning
	// goroutine are part of the execution model (rule actions issue
	// updates that join the committing transaction). explicit marks a
	// gate lease held across calls by an open explicit transaction;
	// writerWait (ns) is the default admission deadline. syncWait,
	// armed by the wal hook under SyncGrouped, is the pending group
	// fsync the session drains after releasing the gate. Readers run
	// on MVCC snapshots and never touch the gate: snapGensym names
	// their private query predicates, schemaMu orders DDL (W) against
	// snapshot compiles/evaluations (R), ifaceMu guards the
	// interface-variable map against gate-free readers.
	gate       *txn.Gate
	owner      atomic.Int64
	depth      int
	explicit   bool
	writerWait atomic.Int64
	syncWait   func() error
	snapGensym atomic.Int64
	schemaMu   sync.RWMutex
	ifaceMu    sync.RWMutex
	evMet      *eval.Metrics

	// Output receives the output of the builtin print procedure.
	Output io.Writer

	// obs is the session-wide observability bundle every subsystem
	// reports into (see NewSession).
	obs *obs.Observability

	// Durability state (zero until AttachDir; see durab.go). wal is the
	// open log, walDir its directory, walSeq the seq of the last record
	// appended (or covered by the loaded snapshot), ddl the journal of
	// every schema statement's source text in execution order (replayed
	// before a snapshot's tables are loaded), and recovering is true
	// while replay is re-executing logged work, which suppresses
	// re-logging and makes unknown action procedures no-ops (atomic so
	// the gate-free Ready health probe can read it).
	wal        *wal.Log
	walDir     string
	walSeq     uint64
	walMet     *wal.Metrics
	ddl        []string
	recovering atomic.Bool
	inj        *faultinject.Injector
	// walLive mirrors wal for gate-free readers (the Ready health
	// probe); it is published only after recovery completes.
	walLive atomic.Pointer[wal.Log]
	// Per-transaction capture for the commit record, cleared by the wal
	// hook's OnEnd: objects created/deleted and interface variables
	// bound by the transaction.
	walObjNews []wal.ObjectRec
	walObjDels []types.OID
	walBinds   []wal.Bind
	// Automatic checkpointing: every N commits (0 = never) and/or a
	// background ticker goroutine.
	checkpointEvery  int
	commitsSinceCkpt int
	ckptStop         chan struct{}
	ckptWG           sync.WaitGroup
}

type pendingDelete struct {
	varName string
	oid     types.OID
}

// NewSession creates a session with the given monitoring mode.
func NewSession(mode rules.Mode) *Session {
	st := storage.NewStore()
	s := &Session{
		store: st,
		cat:   catalog.New(),
		mgr:   rules.NewManager(st, mode),
		iface: map[string]types.Value{},
	}
	s.txns = txn.NewManager(st)
	s.gate = txn.NewGate()
	s.writerWait.Store(int64(defaultWriterWait))
	// The rules hook precedes the wal hook (added by AttachDir): Δ-sets
	// and deferred deletions settle before the wal hook's bookkeeping,
	// and the documented commit order (check → persist → ack → OnEnd →
	// metrics) puts the fsync strictly before the ack either way.
	s.txns.AddHook(txn.Hook{
		Name:     "rules",
		OnEvent:  s.mgr.OnEvent,
		OnCommit: s.mgr.CheckPhase,
		OnEnd: func(committed bool) {
			s.mgr.OnEnd(committed)
			s.finishDeletes(committed)
		},
	})
	s.comp = &compiler{cat: s.cat, iface: s.iface}
	s.ev = eval.New(sessEnv{s})
	s.mgr.SetAnalyzerOptions(analyze.WithCatalog(s.cat))
	// One observability bundle spans the whole stack: the rule manager
	// (and through it every propagation network and its evaluator), the
	// store, the transaction manager, and the session's ad-hoc query
	// evaluator all report into the same registry and tracer.
	s.obs = obs.New()
	s.mgr.SetObservability(s.obs)
	s.store.SetMetrics(storage.NewMetrics(s.obs.Registry))
	s.store.SetBus(s.obs.Bus)
	tm := txn.NewMetrics(s.obs.Registry)
	s.txns.SetObs(tm, s.obs.Tracer)
	s.txns.SetBus(s.obs.Bus)
	s.gate.SetMetrics(tm)
	// Flight recorder taps: commit phase records (txn), gate-wait
	// attribution, capability-violation triggers (store). The recorder
	// itself stays disarmed until Session.SetFlightRecorder /
	// partdiff.WithFlightRecorder arms it.
	s.txns.SetRecorder(s.obs.Flight)
	s.gate.SetRecorder(s.obs.Flight)
	s.store.SetRecorder(s.obs.Flight)
	s.obs.Flight.AddSource(s.bundleExtras)
	s.evMet = eval.NewMetrics(s.obs.Registry)
	s.ev.SetMetrics(s.evMet)
	s.cat.RegisterProcedure("print", func(args []types.Value) error {
		if s.Output == nil {
			return nil
		}
		parts := make([]string, len(args))
		for i, v := range args {
			parts[i] = v.String()
		}
		_, err := fmt.Fprintln(s.Output, strings.Join(parts, " "))
		return err
	})
	return s
}

// Store returns the underlying store.
func (s *Session) Store() *storage.Store { return s.store }

// Catalog returns the schema catalog.
func (s *Session) Catalog() *catalog.Catalog { return s.cat }

// Rules returns the rule manager.
func (s *Session) Rules() *rules.Manager { return s.mgr }

// Txns returns the transaction manager.
func (s *Session) Txns() *txn.Manager { return s.txns }

// Observability returns the session-wide registry + tracer bundle.
func (s *Session) Observability() *obs.Observability { return s.obs }

// SetProfiling turns the propagation profiler on or off. Accumulated
// entries are kept when turning it off (reports stay available).
func (s *Session) SetProfiling(on bool) { s.obs.Profiler.Enable(on) }

// Profiling reports whether the propagation profiler is on.
func (s *Session) Profiling() bool { return s.obs.Profiler.Enabled() }

// ProfileReport writes the propagation profiler's report — the topK
// most expensive partial differentials with per-rule attribution and
// zero-effect counts (topK <= 0 writes all).
func (s *Session) ProfileReport(w io.Writer, topK int) error {
	return s.mgr.ProfileReport(w, topK)
}

// EnableAdaptiveStats switches both evaluators the session owns — the
// rule manager's propagation evaluator and the ad-hoc query evaluator —
// from the static join-cost model to observed workload statistics.
// Both share one table, so cardinalities learned during propagation
// also improve ad-hoc queries (and vice versa). Idempotent.
func (s *Session) EnableAdaptiveStats() {
	s.ev.SetStats(s.mgr.EnableAdaptiveStats())
}

// IfaceVar returns the value of a session interface variable. Safe for
// concurrent use.
func (s *Session) IfaceVar(name string) (types.Value, bool) {
	return s.getIface(name)
}

// SetIfaceVar binds a session interface variable. With a data directory
// attached, a binding made outside a transaction is logged immediately
// (RecIface); one made inside a transaction rides in the commit record.
// Logging rides the writer gate; if admission fails (deadline expiry on
// a stuck session) the binding still lands in memory — the historical
// best-effort contract — but is not logged.
func (s *Session) SetIfaceVar(name string, v types.Value) {
	if err := s.enterCtx(context.Background()); err != nil {
		s.setIface(name, v)
		return
	}
	var err error
	defer s.leave(&err)
	s.setIface(name, v)
	if !s.walOn() {
		return
	}
	if s.txns.InTransaction() {
		s.walBinds = append(s.walBinds, wal.Bind{Name: name, Value: v})
		return
	}
	s.walSeq++
	// Best effort: an append failure poisons the log, and the next
	// commit surfaces it through the persist hook.
	_ = s.wal.Append(&wal.Record{Seq: s.walSeq, Kind: wal.RecIface, Binds: []wal.Bind{{Name: name, Value: v}}})
}

// SetLazyAnalysis disables (true) or re-enables (false) the eager
// definition-time static analysis of derived functions and rules,
// restoring the historical behavior where defects surface at
// activation or commit time.
func (s *Session) SetLazyAnalysis(lazy bool) { s.mgr.SetLazyAnalysis(lazy) }

// SetLintMode controls lint mode: rule actions become no-ops, so
// scripts can be executed for analysis without their foreign
// procedures being registered or run.
func (s *Session) SetLintMode(on bool) { s.lintMode = on }

// SetStaticPruning controls whether rebuilt propagation networks run
// the whole-network Δ-effect analysis and drop provably zero-effect
// differentials from scheduling (default on; turn off for A/B
// comparison).
func (s *Session) SetStaticPruning(on bool) {
	s.schemaMu.Lock()
	defer s.schemaMu.Unlock()
	s.mgr.SetStaticPruning(on)
}

// StaticPruning reports whether static differential pruning is on.
func (s *Session) StaticPruning() bool { return s.mgr.StaticPruning() }

// SetCounting enables or disables counting maintenance: differenced
// condition views carry per-derived-tuple derivation counts, so
// deletions decrement support and retract only at count zero — no
// recomputation and no §7.2 membership probes on deletes. The network
// is rebuilt on change.
func (s *Session) SetCounting(on bool) {
	s.schemaMu.Lock()
	defer s.schemaMu.Unlock()
	s.mgr.SetCounting(on)
}

// Counting reports whether counting maintenance is on.
func (s *Session) Counting() bool { return s.mgr.Counting() }

// SetHybrid enables or disables cost-based hybrid propagation: a
// per-view, per-wave chooser between incremental partial differencing
// and naive recomputation, driven by observed scan-cost EWMAs with
// hysteresis (§8). The network is rebuilt on change.
func (s *Session) SetHybrid(on bool) {
	s.schemaMu.Lock()
	defer s.schemaMu.Unlock()
	s.mgr.SetHybrid(on)
}

// Hybrid reports whether cost-based hybrid propagation is on.
func (s *Session) Hybrid() bool { return s.mgr.Hybrid() }

// HybridReport writes the maintenance subsystem's state: per-view
// strategies, count-store sizes, cost EWMAs and the recent decision
// journal (the shell's \hybrid report).
func (s *Session) HybridReport(w io.Writer) error {
	return s.mgr.HybridReport(w)
}

// DeclareCapability is the Go-API form of the `declare` statement: it
// restricts the admitted change kinds of a base relation. Unlike the
// statement it is not journaled — embedders of durable sessions should
// execute `declare <name> <capability>;` instead so recovery replays
// the restriction.
func (s *Session) DeclareCapability(rel string, c storage.Capability) error {
	s.schemaMu.Lock()
	defer s.schemaMu.Unlock()
	return s.mgr.DeclareCapability(rel, c)
}

// AnalyzeAll runs the static analyzer over every derived-function
// definition and every rule condition currently defined, returning the
// combined report (the \lint command).
func (s *Session) AnalyzeAll() analyze.Report {
	an := s.mgr.Analyzer()
	rep := an.AnalyzeProgram()
	for _, name := range s.mgr.RuleNames() {
		r, _ := s.mgr.Rule(name)
		rep = append(rep, an.AnalyzeRule(r.CondDef, r.NumParams)...)
	}
	// The whole-network pass (OL3xx): trigger-impossible differentials,
	// interprocedurally dead disjuncts, shared-subnetwork candidates.
	rep = append(rep, s.mgr.AnalyzeNetwork().Report...)
	return rep
}

// analyzeDef validates a derived-function definition: the full static
// analyzer when eager (returning its report so warnings can be shown),
// or the historical per-clause safety check when lazy.
func (s *Session) analyzeDef(def *objectlog.Def) (analyze.Report, error) {
	if s.mgr.LazyAnalysis() {
		for _, c := range def.Clauses {
			if err := objectlog.CheckSafe(c); err != nil {
				return nil, err
			}
		}
		return nil, nil
	}
	rep := s.mgr.AnalyzeViewDef(def)
	return rep, rep.Err()
}

// appendWarnings appends warning diagnostics to a statement message,
// one per line, so eager analysis surfaces them in the shell.
func appendWarnings(msg string, rep analyze.Report) string {
	w := rep.Warnings()
	if len(w) == 0 {
		return msg
	}
	return msg + "\n" + w.String()
}

// RegisterProcedure exposes a Go function as a foreign procedure
// callable from rule actions ("foreign functions can be written in Lisp
// or C" in AMOS; here they are written in Go).
func (s *Session) RegisterProcedure(name string, p catalog.Procedure) error {
	return s.cat.RegisterProcedure(name, p)
}

// RegisterFunction exposes a Go function as a foreign AMOSQL function
// (usable in procedural expressions; not in monitored conditions).
func (s *Session) RegisterFunction(name string, params []string, result string, fn catalog.ForeignFunc) error {
	ps := make([]catalog.Param, len(params))
	for i, t := range params {
		ps[i] = catalog.Param{Type: t}
	}
	return s.cat.DeclareFunction(&catalog.Function{
		Name: name, Kind: catalog.Foreign, Params: ps,
		Results: []string{result}, Fn: fn,
	})
}

// goid returns the current goroutine's id, parsed from runtime.Stack —
// the standard reentrant-lock trick; only paid on session entry.
func goid() int64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	f := strings.Fields(string(buf[:n]))
	if len(f) < 2 {
		return -1
	}
	id, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return -1
	}
	return id
}

// Exec parses and executes all statements in src, returning one result
// per statement. Execution stops at the first error. Concurrent callers
// queue for the writer gate (see concurrency.go).
func (s *Session) Exec(src string) ([]Result, error) {
	return s.ExecContext(context.Background(), src)
}

// ExecContext is Exec bounded by ctx: the deadline (or, absent one, the
// session's writer-wait default) caps the wait for writer admission.
// Expiry returns an error wrapping txn.ErrSessionBusy.
func (s *Session) ExecContext(ctx context.Context, src string) (out []Result, err error) {
	// Parse outside the gate: malformed input never queues.
	stmts, srcs, err := ParseWithSources(src)
	if err != nil {
		return nil, err
	}
	if err = s.enterCtx(ctx); err != nil {
		return nil, err
	}
	defer s.leave(&err)
	return s.execStmts(stmts, srcs)
}

// execScript parses and runs src under an already-held gate (the
// optimistic-transaction apply path).
func (s *Session) execScript(src string) ([]Result, error) {
	stmts, srcs, err := ParseWithSources(src)
	if err != nil {
		return nil, err
	}
	return s.execStmts(stmts, srcs)
}

func (s *Session) execStmts(stmts []Stmt, srcs []string) ([]Result, error) {
	out := make([]Result, 0, len(stmts))
	for i, st := range stmts {
		r, err := s.execStmtSafe(st, srcs[i])
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// execStmtSafe runs one statement with panic containment: a panic (a
// foreign function in a procedural expression, an injected storage
// fault) becomes an error, and an implicit transaction the statement
// opened is rolled back so the store returns to its pre-statement
// state.
func (s *Session) execStmtSafe(st Stmt, src string) (res Result, err error) {
	wasActive := s.txns.InTransaction()
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("statement panicked: %v", r)
			if !wasActive && s.txns.InTransaction() {
				if rbErr := s.txns.Rollback(); rbErr != nil {
					err = fmt.Errorf("%v (%w)", err, rbErr)
				}
			}
		}
	}()
	return s.execStmt(st, src)
}

// MustExec is Exec for tests and examples: it panics on error.
func (s *Session) MustExec(src string) []Result {
	out, err := s.Exec(src)
	if err != nil {
		panic(err)
	}
	return out
}

// Query executes a single select statement and returns its rows. From
// the goroutine that already holds the session (a rule action querying
// mid-commit) it runs on the live store inside the transaction; from
// any other goroutine it runs against a pinned MVCC snapshot WITHOUT
// waiting for the writer gate, seeing exactly the committed state.
func (s *Session) Query(src string) (*Result, error) {
	return s.QueryContext(context.Background(), src)
}

// QueryContext is Query with a context; the deadline only matters on
// the gated paths (re-entrant live queries and the aggregate fallback).
func (s *Session) QueryContext(ctx context.Context, src string) (*Result, error) {
	st, err := ParseOne(src)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(SelectStmt)
	if !ok {
		return nil, fmt.Errorf("Query expects a select statement")
	}
	if s.owner.Load() == goid() {
		return s.gatedQuery(ctx, sel)
	}
	return s.snapshotQuery(ctx, sel)
}

// Begin starts an explicit transaction. The session's writer gate is
// held as a lease until Commit or Rollback, so the transaction's
// statements (from this goroutine) never interleave with anyone
// else's — concurrent callers queue and are admitted afterwards.
func (s *Session) Begin() error {
	return s.BeginContext(context.Background())
}

// BeginContext is Begin bounded by ctx for writer admission.
func (s *Session) BeginContext(ctx context.Context) (err error) {
	if err = s.enterCtx(ctx); err != nil {
		return err
	}
	defer s.leave(&err)
	if err = s.txns.Begin(); err == nil {
		s.explicit = true
	}
	return err
}

// Commit runs the deferred check phase and commits; it releases the
// explicit transaction's gate lease.
func (s *Session) Commit() error {
	return s.CommitContext(context.Background())
}

// CommitContext is Commit bounded by ctx for writer admission (only
// relevant when called without an open lease).
func (s *Session) CommitContext(ctx context.Context) (err error) {
	if err = s.enterCtx(ctx); err != nil {
		return err
	}
	defer s.leave(&err)
	return s.txns.Commit()
}

// Rollback undoes the active transaction and releases the explicit
// transaction's gate lease.
func (s *Session) Rollback() error {
	return s.RollbackContext(context.Background())
}

// RollbackContext is Rollback bounded by ctx for writer admission.
func (s *Session) RollbackContext(ctx context.Context) (err error) {
	if err = s.enterCtx(ctx); err != nil {
		return err
	}
	defer s.leave(&err)
	return s.txns.Rollback()
}

// SetInjector installs a fault injector across the session's storage,
// propagation, rule and durability layers (nil disables injection).
func (s *Session) SetInjector(inj *faultinject.Injector) {
	s.inj = inj
	s.store.SetInjector(inj)
	s.mgr.SetInjector(inj)
	if s.wal != nil {
		s.wal.SetInjector(inj)
	}
}

// CheckInvariants verifies cross-layer consistency: storage
// index↔tuple-set agreement and version-sidecar sanity, propagation-
// network level monotonicity, and — outside a transaction — that every
// Δ-set and pending trigger set is empty. It takes the writer gate so
// the state it inspects is quiescent; on a poisoned database it
// returns the sticky corruption error.
func (s *Session) CheckInvariants() (err error) {
	if err = s.enterCtx(context.Background()); err != nil {
		return err
	}
	defer s.leave(&err)
	if err := s.store.CheckInvariants(); err != nil {
		return err
	}
	return s.mgr.CheckInvariants(!s.txns.InTransaction())
}

// execStmt dispatches one statement; src is its source text (empty for
// statements built without ParseWithSources), journaled and logged for
// the schema statements so recovery can re-execute them.
func (s *Session) execStmt(st Stmt, src string) (Result, error) {
	var res Result
	var err error
	// The schema statements mutate the ObjectLog program (and the rule
	// manager's networks), which gate-free snapshot readers compile and
	// evaluate against under schemaMu (R) — so they run under schemaMu (W).
	switch x := st.(type) {
	case CreateType:
		s.schemaMu.Lock()
		res, err = s.execCreateType(x)
		s.schemaMu.Unlock()
	case CreateFunction:
		s.schemaMu.Lock()
		res, err = s.execCreateFunction(x)
		s.schemaMu.Unlock()
	case CreateRule:
		s.schemaMu.Lock()
		res, err = s.execCreateRule(x)
		s.schemaMu.Unlock()
	case ActivateStmt:
		s.schemaMu.Lock()
		res, err = s.execActivate(x)
		s.schemaMu.Unlock()
	case DeactivateStmt:
		s.schemaMu.Lock()
		res, err = s.execDeactivate(x)
		s.schemaMu.Unlock()
	case DeclareStmt:
		s.schemaMu.Lock()
		res, err = s.execDeclare(x)
		s.schemaMu.Unlock()
	case CreateInstances:
		return s.execCreateInstances(x)
	case UpdateStmt:
		return s.execUpdate(x)
	case SelectStmt:
		return s.execSelect(x)
	case DeleteInstances:
		return s.execDeleteInstances(x)
	case ExplainStmt:
		return s.execExplain(x)
	case TxnStmt:
		return s.execTxn(x)
	default:
		return Result{}, fmt.Errorf("unhandled statement %T", st)
	}
	// The first group are the schema statements: journal and log their
	// source on success so recovery can re-execute them.
	if err == nil {
		if lerr := s.logDDL(src); lerr != nil {
			return res, lerr
		}
	}
	return res, err
}

func (s *Session) execCreateType(x CreateType) (Result, error) {
	if _, err := s.cat.CreateType(x.Name, x.Unders...); err != nil {
		return Result{}, err
	}
	// The type extent is a base relation so conditions can range over
	// "for each <type> x" and react to instance creation.
	if _, err := s.store.CreateRelation(objectlog.TypePred(x.Name), 1, nil); err != nil {
		return Result{}, err
	}
	// A new schema epoch: memoized "unknown predicate" verdicts can flip.
	s.mgr.InvalidateAnalysis()
	return Result{Message: fmt.Sprintf("type %s created", x.Name)}, nil
}

// execDeclare restricts the admitted change kinds of a stored function
// or a type extent. The restriction is enforced by the store from here
// on and rebuilds the propagation network, so the whole-network
// Δ-effect analysis prunes the differentials it makes impossible.
// Journaled like the other schema statements: recovery re-executes it
// before the snapshot's tables are loaded (the load paths bypass
// enforcement, so a populated-then-frozen relation restores cleanly).
func (s *Session) execDeclare(x DeclareStmt) (Result, error) {
	c, ok := storage.ParseCapability(x.Capability)
	if !ok {
		return Result{}, fmt.Errorf("unknown capability %q (want readonly, append only, delete only or read-write)", x.Capability)
	}
	rel := x.Name
	if _, ok := s.store.Relation(rel); !ok {
		if _, ok := s.cat.Type(x.Name); ok {
			rel = objectlog.TypePred(x.Name)
		}
	}
	if err := s.mgr.DeclareCapability(rel, c); err != nil {
		return Result{}, err
	}
	return Result{Message: fmt.Sprintf("%s declared %s", x.Name, c)}, nil
}

func (s *Session) execCreateInstances(x CreateInstances) (Result, error) {
	commit, err := s.autoBegin()
	if err != nil {
		return Result{}, err
	}
	for _, v := range x.Vars {
		oid, err := s.cat.NewObject(x.TypeName)
		if err != nil {
			return Result{}, s.autoAbort(commit, err)
		}
		// Insert into the extent of the type and all supertypes (the
		// type graph is a DAG; each extent gets the instance once).
		t, _ := s.cat.Type(x.TypeName)
		for _, sup := range t.AllSupertypes() {
			if _, err := s.store.Insert(objectlog.TypePred(sup.Name), types.Tuple{types.Obj(oid)}); err != nil {
				return Result{}, s.autoAbort(commit, err)
			}
		}
		s.setIface(v, types.Obj(oid))
		if s.walOn() {
			s.walObjNews = append(s.walObjNews, wal.ObjectRec{OID: oid, Type: x.TypeName})
			s.walBinds = append(s.walBinds, wal.Bind{Name: v, Value: types.Obj(oid)})
		}
	}
	if err := s.autoCommit(commit); err != nil {
		return Result{}, err
	}
	return Result{Message: fmt.Sprintf("%d %s instance(s) created", len(x.Vars), x.TypeName)}, nil
}

func (s *Session) execCreateFunction(x CreateFunction) (Result, error) {
	ps := make([]catalog.Param, len(x.Params))
	for i, p := range x.Params {
		ps[i] = catalog.Param{Type: p.Type, Name: p.Name}
	}
	f := &catalog.Function{
		Name: x.Name, Params: ps, Results: []string{x.Result},
	}
	if x.Body == nil {
		f.Kind = catalog.Stored
		if err := s.cat.DeclareFunction(f); err != nil {
			return Result{}, err
		}
		if _, err := s.store.CreateRelation(x.Name, f.Arity(), f.KeyCols()); err != nil {
			return Result{}, err
		}
		s.mgr.InvalidateAnalysis()
		return Result{Message: fmt.Sprintf("stored function %s created", x.Name)}, nil
	}
	f.Kind = catalog.Derived
	for _, p := range x.Params {
		if p.Name == "" {
			return Result{}, fmt.Errorf("derived function %q: parameters must be named", x.Name)
		}
	}
	if err := s.cat.DeclareFunction(f); err != nil {
		return Result{}, err
	}
	// Aggregate bodies (extension; §8 future work in the paper):
	// `select sum(salary(e)) for each employee e where ...` becomes an
	// aggregate view monitored by re-evaluation.
	if op, inner, ok := s.comp.aggregateCall(x.Body); ok {
		def, err := s.comp.compileAggregateQuery(x.Name, x.Params, x.Body, op, inner)
		if err != nil {
			return Result{}, err
		}
		rep, err := s.analyzeDef(def)
		if err != nil {
			return Result{}, err
		}
		if err := s.mgr.Program().Define(def); err != nil {
			return Result{}, err
		}
		s.cat.SetBody(x.Name, def)
		msg := fmt.Sprintf("aggregate function %s (%s) created", x.Name, op)
		return Result{Message: appendWarnings(msg, rep)}, nil
	}
	def, _, err := s.comp.compileQuery(x.Name, x.Params, x.Body)
	if err != nil {
		return Result{}, err
	}
	rep, err := s.analyzeDef(def)
	if err != nil {
		return Result{}, err
	}
	def = objectlog.SimplifyDef(def)
	if err := s.mgr.Program().Define(def); err != nil {
		return Result{}, err
	}
	s.cat.SetBody(x.Name, def)
	kind := "derived"
	if x.Shared {
		if err := s.mgr.ShareView(def); err != nil {
			return Result{}, err
		}
		kind = "shared derived"
	}
	return Result{Message: appendWarnings(fmt.Sprintf("%s function %s created", kind, x.Name), rep)}, nil
}

func (s *Session) execCreateRule(x CreateRule) (Result, error) {
	cond := &SelectQuery{Where: x.Where}
	for _, fe := range x.ForEach {
		cond.Exprs = append(cond.Exprs, VarRef{Name: fe.Name})
	}
	cond.ForEach = x.ForEach
	condName := "cnd_" + x.Name
	def, headNames, err := s.comp.compileQuery(condName, x.Params, cond)
	if err != nil {
		return Result{}, err
	}
	// Eager definition-time analysis: reject errors before the rule is
	// registered, and keep the report so warnings reach the shell. The
	// manager re-checks errors in DefineRule for direct API users.
	var rep analyze.Report
	if !s.mgr.LazyAnalysis() {
		rep = s.mgr.AnalyzeRuleDef(def, len(x.Params))
		if err := rep.Err(); err != nil {
			return Result{}, fmt.Errorf("rule %q: %w", x.Name, err)
		}
	}
	action, err := s.buildAction(x, headNames)
	if err != nil {
		return Result{}, err
	}
	// ECA events: each names a stored function or a type (its extent).
	var events []string
	for _, ev := range x.Events {
		if f, ok := s.cat.Function(ev); ok {
			if f.Kind != catalog.Stored {
				return Result{}, fmt.Errorf("rule %s: event %q must be a stored function or type", x.Name, ev)
			}
			events = append(events, ev)
			continue
		}
		if _, ok := s.cat.Type(ev); ok {
			events = append(events, objectlog.TypePred(ev))
			continue
		}
		return Result{}, fmt.Errorf("rule %s: unknown event %q", x.Name, ev)
	}
	err = s.mgr.DefineRule(&rules.Rule{
		Name:      x.Name,
		CondDef:   def,
		NumParams: len(x.Params),
		Action:    action,
		Strict:    !x.Nervous,
		Priority:  int(x.Priority),
		Events:    events,
	})
	if err != nil {
		return Result{}, err
	}
	return Result{Message: appendWarnings(fmt.Sprintf("rule %s created", x.Name), rep)}, nil
}

// buildAction compiles the procedural action of a rule into a callback
// that evaluates the argument expressions under the instance bindings
// and invokes the foreign procedure (or foreign function used as a
// procedure).
func (s *Session) buildAction(x CreateRule, headNames []string) (rules.Action, error) {
	proc := x.ActionProc
	argExprs := x.ActionArgs
	return func(inst types.Tuple) error {
		if s.lintMode {
			return nil
		}
		if len(inst) != len(headNames) {
			return fmt.Errorf("rule %s: instance arity %d, head %d", x.Name, len(inst), len(headNames))
		}
		binds := make(map[string]types.Value, len(headNames))
		for i, n := range headNames {
			if n != "" {
				binds[n] = inst[i]
			}
		}
		args := make([]types.Value, len(argExprs))
		for i, ae := range argExprs {
			v, err := s.evalExpr(ae, binds)
			if err != nil {
				return fmt.Errorf("rule %s action argument %d: %w", x.Name, i+1, err)
			}
			args[i] = v
		}
		if p, ok := s.cat.Procedure(proc); ok {
			return callProcedure(proc, p, args)
		}
		if f, ok := s.cat.Function(proc); ok && f.Kind == catalog.Foreign {
			_, err := callForeign(proc, f.Fn, args)
			return err
		}
		if s.recovering.Load() {
			// Recovery replay: the embedding app has not (re-)registered
			// this procedure. The action's database updates are already in
			// the commit record being replayed (and are reconciled after
			// it), so the dispatch is skipped rather than failing recovery.
			return nil
		}
		return fmt.Errorf("rule %s: unknown procedure %q", x.Name, proc)
	}, nil
}

// callProcedure invokes a registered foreign procedure with panic
// containment: user Go code that panics becomes an error on the normal
// rollback path, never a process crash. Note that external side effects
// the procedure performed before failing are NOT undone by rollback.
func callProcedure(name string, p catalog.Procedure, args []types.Value) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("procedure %s panicked: %v", name, r)
		}
	}()
	return p(args)
}

// callForeign invokes a registered foreign function with panic
// containment.
func callForeign(name string, fn catalog.ForeignFunc, args []types.Value) (rows [][]types.Value, err error) {
	defer func() {
		if r := recover(); r != nil {
			rows, err = nil, fmt.Errorf("foreign function %s panicked: %v", name, r)
		}
	}()
	return fn(args)
}

func (s *Session) execUpdate(x UpdateStmt) (Result, error) {
	f, ok := s.cat.Function(x.Fn)
	if !ok {
		return Result{}, fmt.Errorf("unknown function %q", x.Fn)
	}
	if f.Kind != catalog.Stored {
		return Result{}, fmt.Errorf("%s is a %s function; only stored functions can be updated", x.Fn, f.Kind)
	}
	if len(x.Args) != len(f.Params) {
		return Result{}, fmt.Errorf("function %q takes %d arguments, got %d", x.Fn, len(f.Params), len(x.Args))
	}
	key := make([]types.Value, len(x.Args))
	for i, ae := range x.Args {
		v, err := s.evalExpr(ae, nil)
		if err != nil {
			return Result{}, err
		}
		if !s.cat.ValueConformsTo(v, f.Params[i].Type) {
			return Result{}, fmt.Errorf("%s: argument %d (%s) does not conform to type %s", x.Fn, i+1, v, f.Params[i].Type)
		}
		key[i] = v
	}
	val, err := s.evalExpr(x.Value, nil)
	if err != nil {
		return Result{}, err
	}
	if !s.cat.ValueConformsTo(val, f.Results[0]) {
		return Result{}, fmt.Errorf("%s: value %s does not conform to type %s", x.Fn, val, f.Results[0])
	}
	commit, err := s.autoBegin()
	if err != nil {
		return Result{}, err
	}
	tuple := append(append(types.Tuple{}, key...), val)
	switch x.Op {
	case "set":
		_, err = s.store.Set(x.Fn, key, []types.Value{val})
	case "add":
		_, err = s.store.Insert(x.Fn, tuple)
	case "remove":
		_, err = s.store.Delete(x.Fn, tuple)
	}
	if err != nil {
		return Result{}, s.autoAbort(commit, err)
	}
	if err := s.autoCommit(commit); err != nil {
		return Result{}, err
	}
	return Result{Message: x.Op + " ok"}, nil
}

// execDeleteInstances deletes objects: every stored tuple referencing
// the object is retracted first (rules observe the deletions — this is
// how conditions react to objects disappearing), then the object leaves
// its type extents and is destroyed.
func (s *Session) execDeleteInstances(x DeleteInstances) (Result, error) {
	commit, err := s.autoBegin()
	if err != nil {
		return Result{}, err
	}
	n := 0
	for _, v := range x.Vars {
		val, ok := s.getIface(v)
		if !ok {
			return Result{}, s.autoAbort(commit, fmt.Errorf("undefined interface variable :%s", v))
		}
		if val.Kind != types.KindObject {
			return Result{}, s.autoAbort(commit, fmt.Errorf(":%s is not an object", v))
		}
		if _, ok := s.cat.ObjectType(val.O); !ok {
			return Result{}, s.autoAbort(commit, fmt.Errorf(":%s refers to a deleted object", v))
		}
		// Retract the object's entire stored footprint, including its
		// extent memberships (type:* relations are scanned like any
		// other relation).
		for rel, tuples := range s.store.TuplesReferencing(val) {
			for _, t := range tuples {
				if _, err := s.store.Delete(rel, t); err != nil {
					return Result{}, s.autoAbort(commit, err)
				}
			}
		}
		s.pendingDeletes = append(s.pendingDeletes, pendingDelete{varName: v, oid: val.O})
		if s.walOn() {
			s.walObjDels = append(s.walObjDels, val.O)
		}
		n++
	}
	if err := s.autoCommit(commit); err != nil {
		return Result{}, err
	}
	return Result{Message: fmt.Sprintf("%d object(s) deleted", n)}, nil
}

// execExplain renders the compiled form of a query or the monitoring
// plan of a rule — the ObjectLog clauses and, for activated rules, the
// partial differentials the propagation network executes.
func (s *Session) execExplain(x ExplainStmt) (Result, error) {
	var sb strings.Builder
	if x.Query != nil {
		s.comp.gensym++
		name := fmt.Sprintf("_explain%d", s.comp.gensym)
		if op, inner, ok := s.comp.aggregateCall(x.Query); ok {
			def, err := s.comp.compileAggregateQuery(name, nil, x.Query, op, inner)
			if err != nil {
				return Result{}, err
			}
			fmt.Fprintf(&sb, "aggregate %s over:\n%s", op, objectlog.SimplifyDef(def))
			return Result{Message: sb.String()}, nil
		}
		def, _, err := s.comp.compileQuery(name, nil, x.Query)
		if err != nil {
			return Result{}, err
		}
		sb.WriteString(objectlog.SimplifyDef(def).String())
		return Result{Message: sb.String()}, nil
	}
	r, ok := s.mgr.Rule(x.Rule)
	if !ok {
		return Result{}, fmt.Errorf("unknown rule %q", x.Rule)
	}
	fmt.Fprintf(&sb, "rule %s condition:\n%s\n", r.Name, r.CondDef)
	infos := s.mgr.ActivationsOf(x.Rule)
	if len(infos) == 0 {
		sb.WriteString("(not activated)")
		return Result{Message: sb.String()}, nil
	}
	for _, info := range infos {
		fmt.Fprintf(&sb, "activation %s monitors %s:\n%s\n", info.Key, info.CondName, info.Def)
		if len(info.Differentials) == 0 {
			sb.WriteString("  (monitored by re-evaluation)\n")
			continue
		}
		for _, d := range info.Differentials {
			fmt.Fprintf(&sb, "  %s\n", d)
		}
	}
	return Result{Message: strings.TrimRight(sb.String(), "\n")}, nil
}

// finishDeletes applies or discards pending object destructions at
// transaction end. On rollback the stored footprint was already
// restored by inverse replay, so the objects simply stay alive.
func (s *Session) finishDeletes(committed bool) {
	if committed {
		for _, pd := range s.pendingDeletes {
			s.cat.DeleteObject(pd.oid)
			s.delIfaceObj(pd.varName, pd.oid)
		}
	}
	s.pendingDeletes = s.pendingDeletes[:0]
}

func (s *Session) execSelect(x SelectStmt) (Result, error) {
	s.comp.gensym++
	name := fmt.Sprintf("_query%d", s.comp.gensym)
	// Ad-hoc aggregate queries: select sum(f(x)) for each ... where ...
	if op, inner, ok := s.comp.aggregateCall(&x.Query); ok {
		def, err := s.comp.compileAggregateQuery(name, nil, &x.Query, op, inner)
		if err != nil {
			return Result{}, err
		}
		s.schemaMu.Lock()
		err = s.mgr.Program().Define(def)
		s.schemaMu.Unlock()
		if err != nil {
			return Result{}, err
		}
		ev := eval.New(sessEnv{s})
		ext, err := ev.EvalPred(name, false)
		if err != nil {
			return Result{}, err
		}
		return Result{
			Columns: []string{x.Query.Exprs[0].String()},
			Tuples:  ext.Tuples(),
		}, nil
	}
	def, _, err := s.comp.compileQuery(name, nil, &x.Query)
	if err != nil {
		return Result{}, err
	}
	out := types.NewSet()
	for _, c := range def.Clauses {
		if err := objectlog.CheckSafe(c); err != nil {
			return Result{}, err
		}
		sc, ok := objectlog.Simplify(c)
		if !ok {
			continue // statically empty disjunct
		}
		if err := s.ev.EvalClause(sc, out); err != nil {
			return Result{}, err
		}
	}
	cols := make([]string, len(x.Query.Exprs))
	for i, e := range x.Query.Exprs {
		cols[i] = e.String()
	}
	return Result{Columns: cols, Tuples: out.Tuples()}, nil
}

func (s *Session) execActivate(x ActivateStmt) (Result, error) {
	args, err := s.evalExprs(x.Args)
	if err != nil {
		return Result{}, err
	}
	key, err := s.mgr.Activate(x.Rule, args...)
	if err != nil {
		return Result{}, err
	}
	return Result{Message: fmt.Sprintf("activated %s", key)}, nil
}

func (s *Session) execDeactivate(x DeactivateStmt) (Result, error) {
	args, err := s.evalExprs(x.Args)
	if err != nil {
		return Result{}, err
	}
	key := rules.ActivationKey(x.Rule, args)
	if err := s.mgr.Deactivate(key); err != nil {
		return Result{}, err
	}
	return Result{Message: fmt.Sprintf("deactivated %s", key)}, nil
}

func (s *Session) evalExprs(es []Expr) ([]types.Value, error) {
	out := make([]types.Value, len(es))
	for i, e := range es {
		v, err := s.evalExpr(e, nil)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (s *Session) execTxn(x TxnStmt) (Result, error) {
	var err error
	switch x.Kind {
	case "begin":
		if err = s.txns.Begin(); err == nil {
			// The surrounding gate hold becomes the transaction's lease
			// (released by leave once the transaction ends).
			s.explicit = true
		}
	case "commit":
		err = s.txns.Commit()
	case "rollback":
		err = s.txns.Rollback()
	}
	if err != nil {
		return Result{}, err
	}
	return Result{Message: x.Kind + " ok"}, nil
}

// autoBegin starts an implicit transaction when none is active; the
// returned flag tells autoCommit whether to commit it.
func (s *Session) autoBegin() (bool, error) {
	if s.txns.InTransaction() {
		return false, nil
	}
	return true, s.txns.Begin()
}

func (s *Session) autoCommit(mine bool) error {
	if !mine {
		return nil
	}
	return s.txns.Commit()
}

func (s *Session) autoAbort(mine bool, cause error) error {
	if mine {
		s.txns.Rollback()
	}
	return cause
}

// evalExpr evaluates a procedural expression (update arguments, action
// arguments) against the current database state.
func (s *Session) evalExpr(e Expr, binds map[string]types.Value) (types.Value, error) {
	switch x := e.(type) {
	case ConstExpr:
		return x.Value, nil
	case IfaceRef:
		v, ok := s.getIface(x.Name)
		if !ok {
			return types.Value{}, fmt.Errorf("undefined interface variable :%s", x.Name)
		}
		return v, nil
	case VarRef:
		if v, ok := binds[x.Name]; ok {
			return v, nil
		}
		return types.Value{}, fmt.Errorf("unbound variable %q", x.Name)
	case Unary:
		v, err := s.evalExpr(x.X, binds)
		if err != nil {
			return types.Value{}, err
		}
		switch x.Op {
		case "-":
			return types.Sub(types.Int(0), v)
		case "not":
			return types.Bool(!v.AsBool()), nil
		}
		return types.Value{}, fmt.Errorf("unknown unary operator %q", x.Op)
	case Binary:
		l, err := s.evalExpr(x.L, binds)
		if err != nil {
			return types.Value{}, err
		}
		// Short-circuit boolean connectives.
		switch x.Op {
		case "and":
			if !l.AsBool() {
				return types.Bool(false), nil
			}
			r, err := s.evalExpr(x.R, binds)
			if err != nil {
				return types.Value{}, err
			}
			return types.Bool(r.AsBool()), nil
		case "or":
			if l.AsBool() {
				return types.Bool(true), nil
			}
			r, err := s.evalExpr(x.R, binds)
			if err != nil {
				return types.Value{}, err
			}
			return types.Bool(r.AsBool()), nil
		}
		r, err := s.evalExpr(x.R, binds)
		if err != nil {
			return types.Value{}, err
		}
		switch x.Op {
		case "+":
			return types.Add(l, r)
		case "-":
			return types.Sub(l, r)
		case "*":
			return types.Mul(l, r)
		case "/":
			return types.Div(l, r)
		case "=":
			return types.Bool(l.Equal(r)), nil
		case "!=":
			return types.Bool(!l.Equal(r)), nil
		case "<":
			return types.Bool(l.Compare(r) < 0), nil
		case "<=":
			return types.Bool(l.Compare(r) <= 0), nil
		case ">":
			return types.Bool(l.Compare(r) > 0), nil
		case ">=":
			return types.Bool(l.Compare(r) >= 0), nil
		}
		return types.Value{}, fmt.Errorf("unknown operator %q", x.Op)
	case Call:
		return s.evalCall(x, binds)
	default:
		return types.Value{}, fmt.Errorf("cannot evaluate %s", e)
	}
}

func (s *Session) evalCall(x Call, binds map[string]types.Value) (types.Value, error) {
	f, ok := s.cat.Function(x.Fn)
	if !ok {
		return types.Value{}, fmt.Errorf("unknown function %q", x.Fn)
	}
	if len(x.Args) != len(f.Params) {
		return types.Value{}, fmt.Errorf("function %q takes %d arguments, got %d", x.Fn, len(f.Params), len(x.Args))
	}
	args := make([]types.Value, len(x.Args))
	for i, ae := range x.Args {
		v, err := s.evalExpr(ae, binds)
		if err != nil {
			return types.Value{}, err
		}
		args[i] = v
	}
	switch f.Kind {
	case catalog.Stored:
		rows, err := s.store.Get(x.Fn, args)
		if err != nil {
			return types.Value{}, err
		}
		if len(rows) == 0 {
			return types.Value{}, fmt.Errorf("%s has no value for %v", x.Fn, types.Tuple(args))
		}
		return rows[0][0], nil
	case catalog.Derived:
		// Evaluate as a point subquery over the definition.
		lit := objectlog.Literal{Pred: x.Fn}
		for _, v := range args {
			lit.Args = append(lit.Args, objectlog.C(v))
		}
		res := objectlog.V("_Res")
		lit.Args = append(lit.Args, res)
		head := objectlog.Literal{Pred: "_call", Args: []objectlog.Term{res}}
		out := types.NewSet()
		if err := s.ev.EvalClause(objectlog.Clause{Head: head, Body: []objectlog.Literal{lit}}, out); err != nil {
			return types.Value{}, err
		}
		ts := out.Tuples()
		if len(ts) == 0 {
			return types.Value{}, fmt.Errorf("%s has no value for %v", x.Fn, types.Tuple(args))
		}
		return ts[0][0], nil
	default: // Foreign
		rows, err := callForeign(x.Fn, f.Fn, args)
		if err != nil {
			return types.Value{}, err
		}
		if len(rows) == 0 || len(rows[0]) == 0 {
			return types.Value{}, fmt.Errorf("foreign function %s returned no value", x.Fn)
		}
		return rows[0][0], nil
	}
}

// sessEnv resolves predicates for ad-hoc session queries (select
// statements and procedural derived-function calls). Δ-sets and old
// states are not available outside the check phase.
type sessEnv struct{ s *Session }

// Program implements eval.Env.
func (e sessEnv) Program() *objectlog.Program { return e.s.mgr.Program() }

// Source implements eval.Env over the live store only.
func (e sessEnv) Source(pred string, dk objectlog.DeltaKind, old bool) (storage.Source, error) {
	if dk != objectlog.DeltaNone || old {
		return nil, fmt.Errorf("Δ-sets and old states are only available during the check phase")
	}
	rel, ok := e.s.store.Relation(pred)
	if !ok {
		return nil, fmt.Errorf("relation %q does not exist", pred)
	}
	return rel, nil
}
