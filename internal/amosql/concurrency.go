package amosql

// Concurrent sessions. Writers stay serial — the paper's execution
// model, which the undo log, Δ-accumulators and deferred check phase
// all assume — but concurrency is no longer rejected:
//
//   - Writers QUEUE on a fair FIFO admission gate (txn.Gate) bounded by
//     a context deadline; ErrSessionBusy is returned only when that
//     deadline expires. An explicit transaction holds the gate as a
//     lease from Begin to Commit/Rollback, so its statements cannot
//     interleave with another writer's.
//   - Readers never touch the gate: Query from a non-owning goroutine
//     pins an MVCC snapshot (storage.SnapshotView) and evaluates
//     against it with a private compiler and evaluator, seeing exactly
//     the commits sequenced before the pin.
//   - Atomic runs an optimistic transaction: reads on a snapshot with
//     the read set recorded, writes buffered, then validated and
//     applied under the gate — ErrConflict when a commit invalidated
//     the read set (the facade retries with jittered backoff).
//
// Shared compile-time state is split by lock: schemaMu orders DDL
// (which mutates the ObjectLog program) against snapshot compiles and
// evaluations; ifaceMu guards the interface-variable map.

import (
	"context"
	"fmt"
	"sort"
	"time"

	"partdiff/internal/eval"
	"partdiff/internal/objectlog"
	"partdiff/internal/storage"
	"partdiff/internal/txn"
	"partdiff/internal/types"
)

// defaultWriterWait bounds writer admission for calls without their own
// context deadline. Generous: under a healthy load the queue drains in
// microseconds, and a stuck explicit transaction should surface as a
// timeout, not a hang.
const defaultWriterWait = 30 * time.Second

// SetWriterWait sets the default admission deadline applied to calls
// that carry no context deadline of their own (<= 0 waits forever).
func (s *Session) SetWriterWait(d time.Duration) { s.writerWait.Store(int64(d)) }

// enter acquires the writer gate with the default deadline; see
// enterCtx.
func (s *Session) enter() error { return s.enterCtx(context.Background()) }

// enterCtx admits the calling goroutine as the session's writer. It
// fails fast on a poisoned database (sticky ErrCorrupt); re-entrant
// calls on the owning goroutine are admitted immediately (rule actions
// legitimately issue statements during the check phase, and an explicit
// transaction's statements re-enter its lease). Other goroutines queue
// FIFO until the gate frees or ctx expires (ErrSessionBusy).
func (s *Session) enterCtx(ctx context.Context) error {
	if err := s.txns.Corrupt(); err != nil {
		return err
	}
	g := goid()
	if s.owner.Load() == g {
		s.depth++
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if _, has := ctx.Deadline(); !has {
		if w := time.Duration(s.writerWait.Load()); w > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, w)
			defer cancel()
		}
	}
	if err := s.gate.Acquire(ctx); err != nil {
		return err
	}
	s.owner.Store(g)
	s.depth = 1
	return nil
}

// leave exits one nesting level. At depth zero the gate is released —
// unless an explicit transaction is open, whose lease persists until
// Commit/Rollback. A group-commit fsync wait armed by the wal hook is
// drained AFTER the release, so the next writer appends its record
// behind ours and shares the fsync; the commit is acknowledged to the
// caller only once durable (fsync-before-ack, now batched). errp
// receives the durability failure if the call itself succeeded.
func (s *Session) leave(errp *error) {
	s.depth--
	if s.depth > 0 {
		return
	}
	if s.explicit && s.txns.InTransaction() {
		return
	}
	s.explicit = false
	wait := s.syncWait
	s.syncWait = nil
	s.owner.Store(0)
	s.gate.Release()
	if wait != nil {
		if err := wait(); err != nil && errp != nil && *errp == nil {
			*errp = fmt.Errorf("commit applied but not durable: %w", err)
		}
	}
}

// --- interface-variable map (shared with gate-free readers) ---

func (s *Session) getIface(name string) (types.Value, bool) {
	s.ifaceMu.RLock()
	defer s.ifaceMu.RUnlock()
	v, ok := s.iface[name]
	return v, ok
}

func (s *Session) setIface(name string, v types.Value) {
	s.ifaceMu.Lock()
	s.iface[name] = v
	s.ifaceMu.Unlock()
}

// delIfaceObj unbinds name if it still refers to oid.
func (s *Session) delIfaceObj(name string, oid types.OID) {
	s.ifaceMu.Lock()
	if cur, ok := s.iface[name]; ok && cur.Kind == types.KindObject && cur.O == oid {
		delete(s.iface, name)
	}
	s.ifaceMu.Unlock()
}

// copyIface snapshots the interface variables for a reader's private
// compiler.
func (s *Session) copyIface() map[string]types.Value {
	s.ifaceMu.RLock()
	defer s.ifaceMu.RUnlock()
	out := make(map[string]types.Value, len(s.iface))
	for k, v := range s.iface {
		out[k] = v
	}
	return out
}

// ifaceNames returns the bound variable names in sorted order.
func (s *Session) ifaceNames() []string {
	s.ifaceMu.RLock()
	names := make([]string, 0, len(s.iface))
	for n := range s.iface {
		names = append(names, n)
	}
	s.ifaceMu.RUnlock()
	sort.Strings(names)
	return names
}

// --- snapshot reads ---

// snapEnv resolves predicates for a snapshot query: base relations come
// from the pinned view, and when reads is non-nil every base predicate
// touched is recorded (the optimistic read set). Δ-sets and old states
// exist only inside the check phase, which runs on the live store.
type snapEnv struct {
	prog  *objectlog.Program
	view  *storage.SnapshotView
	reads map[string]bool
}

func (e snapEnv) Program() *objectlog.Program { return e.prog }

func (e snapEnv) Source(pred string, dk objectlog.DeltaKind, old bool) (storage.Source, error) {
	if dk != objectlog.DeltaNone || old {
		return nil, fmt.Errorf("Δ-sets and old states are only available during the check phase")
	}
	src, ok := e.view.Source(pred)
	if !ok {
		return nil, fmt.Errorf("relation %q does not exist", pred)
	}
	if e.reads != nil {
		e.reads[pred] = true
	}
	return src, nil
}

// snapshotQuery evaluates one select against a freshly pinned snapshot,
// without the writer gate. Aggregate selects register a program
// definition and therefore fall back to the gated path.
func (s *Session) snapshotQuery(ctx context.Context, sel SelectStmt) (*Result, error) {
	if err := s.txns.Corrupt(); err != nil {
		return nil, err
	}
	if _, _, ok := (&compiler{cat: s.cat}).aggregateCall(&sel.Query); ok {
		return s.gatedQuery(ctx, sel)
	}
	view := s.store.PinSnapshot()
	defer view.Close()
	return s.snapshotSelect(sel, view, nil)
}

// snapshotSelect compiles and evaluates sel against view with a private
// compiler and evaluator. schemaMu (R) is held for the duration so no
// DDL mutates the program or catalog mid-evaluation; base predicates
// resolved are recorded in reads when non-nil.
func (s *Session) snapshotSelect(sel SelectStmt, view *storage.SnapshotView, reads map[string]bool) (*Result, error) {
	s.schemaMu.RLock()
	defer s.schemaMu.RUnlock()
	comp := &compiler{cat: s.cat, iface: s.copyIface()}
	if _, _, ok := comp.aggregateCall(&sel.Query); ok {
		return nil, fmt.Errorf("aggregate selects are not supported on snapshot reads; run them through Exec or outside Atomic")
	}
	name := fmt.Sprintf("_snap%d", s.snapGensym.Add(1))
	def, _, err := comp.compileQuery(name, nil, &sel.Query)
	if err != nil {
		return nil, err
	}
	ev := eval.New(snapEnv{prog: s.mgr.Program(), view: view, reads: reads})
	ev.SetMetrics(s.evMet)
	out := types.NewSet()
	for _, c := range def.Clauses {
		if err := objectlog.CheckSafe(c); err != nil {
			return nil, err
		}
		sc, ok := objectlog.Simplify(c)
		if !ok {
			continue
		}
		if err := ev.EvalClause(sc, out); err != nil {
			return nil, err
		}
	}
	cols := make([]string, len(sel.Query.Exprs))
	for i, e := range sel.Query.Exprs {
		cols[i] = e.String()
	}
	return &Result{Columns: cols, Tuples: out.Tuples()}, nil
}

// gatedQuery runs a select on the live store under the writer gate (the
// aggregate fallback).
func (s *Session) gatedQuery(ctx context.Context, sel SelectStmt) (r *Result, err error) {
	if err = s.enterCtx(ctx); err != nil {
		return nil, err
	}
	defer s.leave(&err)
	res, err := s.execStmtSafe(sel, "")
	if err != nil {
		return nil, err
	}
	return &res, nil
}

// --- optimistic transactions ---

// AtomicTx is the handle an optimistic transaction body works through:
// Query runs on the transaction's pinned snapshot and records the read
// set; Exec buffers statements that are validated and applied at
// commit. A body's reads never see its own buffered writes.
type AtomicTx struct {
	s     *Session
	view  *storage.SnapshotView
	reads map[string]bool
	stmts []string
}

// Query evaluates a select against the transaction's snapshot,
// recording the base relations it touched for commit-time validation.
func (tx *AtomicTx) Query(src string) (*Result, error) {
	st, err := ParseOne(src)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(SelectStmt)
	if !ok {
		return nil, fmt.Errorf("Query expects a select statement")
	}
	return tx.s.snapshotSelect(sel, tx.view, tx.reads)
}

// Exec buffers src for commit. It is parsed now, so malformed input
// fails inside the body; transaction-control statements are rejected —
// the optimistic commit is the transaction.
func (tx *AtomicTx) Exec(src string) error {
	stmts, _, err := ParseWithSources(src)
	if err != nil {
		return err
	}
	for _, st := range stmts {
		if t, ok := st.(TxnStmt); ok {
			return fmt.Errorf("%s is not allowed inside Atomic (the optimistic commit is the transaction)", t.Kind)
		}
	}
	tx.stmts = append(tx.stmts, src)
	return nil
}

// Atomic runs fn as ONE optimistic transaction: reads on a pinned
// snapshot, buffered writes applied under the writer gate after
// validating that no commit touched a relation the body read since the
// snapshot was pinned. On invalidation it returns ErrConflict without
// having written anything — fn is safe to re-run against a fresh
// snapshot (the facade's Atomic does so with bounded retries). A
// read-only body (no Exec calls) never takes the gate at all.
func (s *Session) Atomic(ctx context.Context, fn func(*AtomicTx) error) (err error) {
	if err := s.txns.Corrupt(); err != nil {
		return err
	}
	view := s.store.PinSnapshot()
	defer view.Close()
	tx := &AtomicTx{s: s, view: view, reads: make(map[string]bool)}
	if err := fn(tx); err != nil {
		return err
	}
	if len(tx.stmts) == 0 {
		return nil
	}
	if err = s.enterCtx(ctx); err != nil {
		return err
	}
	defer s.leave(&err)
	if s.store.WriteSince(view.Seq(), tx.reads) {
		s.txns.MarkConflict()
		return fmt.Errorf("%w (snapshot %d)", txn.ErrConflict, view.Seq())
	}
	if err = s.txns.Begin(); err != nil {
		return err
	}
	for _, src := range tx.stmts {
		if _, err = s.execScript(src); err != nil {
			if rbErr := s.txns.Rollback(); rbErr != nil {
				return fmt.Errorf("%v (%w)", err, rbErr)
			}
			return err
		}
	}
	return s.txns.Commit()
}
