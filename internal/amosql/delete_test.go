package amosql

import (
	"testing"

	"partdiff/internal/rules"
	"partdiff/internal/types"
)

func TestParseDelete(t *testing.T) {
	s := mustParseOne(t, `delete :a, :b;`).(DeleteInstances)
	if len(s.Vars) != 2 || s.Vars[0] != "a" || s.Vars[1] != "b" {
		t.Errorf("%+v", s)
	}
	if _, err := ParseOne(`delete foo;`); err == nil {
		t.Error("delete of non-interface-variable accepted")
	}
}

func TestDeleteInstanceRemovesFootprint(t *testing.T) {
	s := NewSession(rules.Incremental)
	s.MustExec(`
create type item;
create function quantity(item) -> integer;
create function pairs(item a, item b) -> integer;
create item instances :x, :y;
set quantity(:x) = 10;
set quantity(:y) = 20;
set pairs(:x, :y) = 1;
delete :x;
`)
	// x's footprint is gone everywhere, including multi-column refs.
	r, _ := s.Query(`select i for each item i;`)
	if len(r.Tuples) != 1 {
		t.Errorf("extent=%v", r.Tuples)
	}
	r, _ = s.Query(`select quantity(i) for each item i;`)
	if len(r.Tuples) != 1 || !r.Tuples[0][0].Equal(types.Int(20)) {
		t.Errorf("quantities=%v", r.Tuples)
	}
	rel, _ := s.Store().Relation("pairs")
	if rel.Len() != 0 {
		t.Errorf("pairs=%s", rel.Rows())
	}
	// The interface variable is unbound and the object is gone.
	if _, ok := s.IfaceVar("x"); ok {
		t.Error(":x still bound")
	}
	if _, err := s.Exec(`delete :x;`); err == nil {
		t.Error("double delete accepted")
	}
	if _, err := s.Exec(`delete :never;`); err == nil {
		t.Error("unknown variable accepted")
	}
}

func TestDeleteTriggersRules(t *testing.T) {
	// Deleting an object retracts its tuples: a rule with negation over
	// the extent reacts to the disappearance.
	s := NewSession(rules.Incremental)
	var gone []string
	s.RegisterProcedure("mourn", func(args []types.Value) error {
		gone = append(gone, args[0].String())
		return nil
	})
	s.MustExec(`
create type pet;
create type owner;
create function owns(owner) -> pet;
create rule petless() as
    when for each owner o, pet p where owns(o) = p
    do mourn(o);
`)
	// Inverted scenario: rule fires when ownership appears — deletion
	// should NOT fire it but must withdraw cleanly.
	s.MustExec(`
create owner instances :ann;
create pet instances :rex;
activate petless();
set owns(:ann) = :rex;
`)
	if len(gone) != 1 {
		t.Fatalf("fired=%v", gone)
	}
	// Deleting rex retracts owns(ann)=rex; strict rule sees a deletion
	// only — no new firing, no error.
	s.MustExec(`delete :rex;`)
	if len(gone) != 1 {
		t.Errorf("deletion fired: %v", gone)
	}
	r, _ := s.Query(`select p for each pet p;`)
	if len(r.Tuples) != 0 {
		t.Errorf("pet extent=%v", r.Tuples)
	}
}

func TestDeleteRolledBackRestoresObject(t *testing.T) {
	s := NewSession(rules.Incremental)
	s.MustExec(`
create type item;
create function quantity(item) -> integer;
create item instances :x;
set quantity(:x) = 5;
begin;
delete :x;
rollback;
`)
	// The footprint is restored and the object is still alive.
	r, _ := s.Query(`select quantity(:x);`)
	if len(r.Tuples) != 1 || !r.Tuples[0][0].Equal(types.Int(5)) {
		t.Errorf("after rollback: %v", r.Tuples)
	}
	if _, ok := s.IfaceVar("x"); !ok {
		t.Error(":x unbound after rollback")
	}
	// And a committed delete really destroys it.
	s.MustExec(`begin; delete :x; commit;`)
	r, _ = s.Query(`select i for each item i;`)
	if len(r.Tuples) != 0 {
		t.Errorf("after committed delete: %v", r.Tuples)
	}
}

func TestMultipleInheritanceExtents(t *testing.T) {
	s := NewSession(rules.Incremental)
	s.MustExec(`
create type car;
create type boat;
create type amphibious under car, boat;
create amphibious instances :duck;
create car instances :sedan;
`)
	r, _ := s.Query(`select c for each car c;`)
	if len(r.Tuples) != 2 {
		t.Errorf("car extent=%v", r.Tuples)
	}
	r, _ = s.Query(`select b for each boat b;`)
	if len(r.Tuples) != 1 {
		t.Errorf("boat extent=%v", r.Tuples)
	}
	// Deleting the amphibious instance removes it from both extents.
	s.MustExec(`delete :duck;`)
	r, _ = s.Query(`select b for each boat b;`)
	if len(r.Tuples) != 0 {
		t.Errorf("boat extent after delete=%v", r.Tuples)
	}
	r, _ = s.Query(`select c for each car c;`)
	if len(r.Tuples) != 1 {
		t.Errorf("car extent after delete=%v", r.Tuples)
	}
}

func TestDiamondInheritance(t *testing.T) {
	s := NewSession(rules.Incremental)
	s.MustExec(`
create type vehicle;
create type car under vehicle;
create type boat under vehicle;
create type amphibious under car, boat;
create amphibious instances :duck;
`)
	// The diamond root gets the instance exactly once.
	rel, _ := s.Store().Relation("type:vehicle")
	if rel.Len() != 1 {
		t.Errorf("vehicle extent has %d entries", rel.Len())
	}
}
