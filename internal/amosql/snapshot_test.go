package amosql

import (
	"context"
	"errors"
	"sync"
	"testing"

	"partdiff/internal/rules"
	"partdiff/internal/txn"
	"partdiff/internal/types"
)

// execFrom runs src on s from a fresh goroutine and waits for it — the
// "another session" shape the isolation tests interleave with.
func execFrom(t *testing.T, s *Session, src string) {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		_, err := s.Exec(src)
		done <- err
	}()
	if err := <-done; err != nil {
		t.Fatalf("interleaved exec %q: %v", src, err)
	}
}

// A long reader (an Atomic body) sees ONE consistent snapshot: a write
// committed between its reads does not leak in, and becomes visible
// only to queries that start afterwards.
func TestSnapshotStableAcrossInterleavedCommit(t *testing.T) {
	s := NewSession(rules.Incremental)
	s.MustExec(`
create type item;
create function quantity(item) -> integer;
create item instances :a;
set quantity(:a) = 1;
`)
	read := func(tx *AtomicTx) types.Value {
		r, err := tx.Query(`select quantity(i) for each item i;`)
		if err != nil {
			t.Fatalf("snapshot read: %v", err)
		}
		if len(r.Tuples) != 1 {
			t.Fatalf("snapshot read rows = %d, want 1", len(r.Tuples))
		}
		return r.Tuples[0][0]
	}
	err := s.Atomic(context.Background(), func(tx *AtomicTx) error {
		before := read(tx)
		// Another goroutine commits a write between the two reads. It
		// does not block: the reader holds no gate, only a snapshot pin.
		execFrom(t, s, `set quantity(:a) = 2;`)
		after := read(tx)
		if !before.Equal(types.Int(1)) || !after.Equal(types.Int(1)) {
			t.Errorf("snapshot moved mid-transaction: before=%v after=%v, want 1 and 1", before, after)
		}
		return nil
	})
	// Read-only body: no writes buffered, so no validation, no conflict.
	if err != nil {
		t.Fatalf("read-only Atomic: %v", err)
	}
	// A fresh query starts after the commit and sees it.
	r, err := s.Query(`select quantity(i) for each item i;`)
	if err != nil || len(r.Tuples) != 1 || !r.Tuples[0][0].Equal(types.Int(2)) {
		t.Errorf("fresh query after commit: %v %v, want quantity 2", r, err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

// An Atomic body that read a relation a concurrent commit then touched
// must fail validation with the typed ErrConflict — and must not have
// applied any of its buffered writes.
func TestAtomicConflictDetected(t *testing.T) {
	s := NewSession(rules.Incremental)
	s.MustExec(`
create type item;
create function quantity(item) -> integer;
create function audit(item) -> integer;
create item instances :a;
set quantity(:a) = 1;
`)
	err := s.Atomic(context.Background(), func(tx *AtomicTx) error {
		if _, err := tx.Query(`select quantity(i) for each item i;`); err != nil {
			return err
		}
		if err := tx.Exec(`set audit(:a) = 99;`); err != nil {
			return err
		}
		// Invalidate the read set before the optimistic commit.
		execFrom(t, s, `set quantity(:a) = 5;`)
		return nil
	})
	if !errors.Is(err, txn.ErrConflict) {
		t.Fatalf("want ErrConflict, got: %v", err)
	}
	r, err := s.Query(`select audit(i) for each item i;`)
	if err != nil || len(r.Tuples) != 0 {
		t.Errorf("conflicted transaction leaked writes: %v %v", r, err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

// Without interference the buffered writes apply as one transaction,
// and the body's reads never see its own writes (they run on the
// snapshot pinned at the start).
func TestAtomicAppliesBufferedWrites(t *testing.T) {
	s := NewSession(rules.Incremental)
	s.MustExec(`
create type item;
create function quantity(item) -> integer;
create item instances :a;
set quantity(:a) = 1;
`)
	err := s.Atomic(context.Background(), func(tx *AtomicTx) error {
		if err := tx.Exec(`set quantity(:a) = 10;`); err != nil {
			return err
		}
		r, err := tx.Query(`select quantity(i) for each item i;`)
		if err != nil {
			return err
		}
		if len(r.Tuples) != 1 || !r.Tuples[0][0].Equal(types.Int(1)) {
			t.Errorf("body saw its own buffered write: %v", r.Tuples)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	r, _ := s.Query(`select quantity(i) for each item i;`)
	if len(r.Tuples) != 1 || !r.Tuples[0][0].Equal(types.Int(10)) {
		t.Errorf("buffered write not applied: %v", r.Tuples)
	}
	// Transaction-control statements are rejected inside a body.
	err = s.Atomic(context.Background(), func(tx *AtomicTx) error {
		return tx.Exec(`commit;`)
	})
	if err == nil {
		t.Error("txn statement inside Atomic must be rejected")
	}
}

// A reader joining two functions updated together in one transaction
// must never observe the pair torn apart: each query runs on one
// snapshot, and snapshots only ever hold whole commits.
func TestReaderNeverSeesPartialTransaction(t *testing.T) {
	s := NewSession(rules.Incremental)
	s.MustExec(`
create type item;
create function x(item) -> integer;
create function y(item) -> integer;
create item instances :a;
set x(:a) = 0;
set y(:a) = 0;
`)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= 200; i++ {
			// x and y move together inside one explicit transaction.
			if err := s.Begin(); err != nil {
				t.Errorf("begin: %v", err)
				return
			}
			s.MustExec(`set x(:a) = ` + types.Int(int64(i)).String() + `;`)
			s.MustExec(`set y(:a) = ` + types.Int(int64(i)).String() + `;`)
			if err := s.Commit(); err != nil {
				t.Errorf("commit: %v", err)
				return
			}
		}
		close(stop)
	}()
	for {
		select {
		case <-stop:
			wg.Wait()
			if err := s.CheckInvariants(); err != nil {
				t.Errorf("invariants: %v", err)
			}
			return
		default:
		}
		r, err := s.Query(`select a, b for each item i, integer a, integer b where x(i) = a and y(i) = b;`)
		if err != nil {
			t.Fatalf("reader query: %v", err)
		}
		for _, tp := range r.Tuples {
			if !tp[0].Equal(tp[1]) {
				t.Fatalf("torn read: x=%v y=%v", tp[0], tp[1])
			}
		}
	}
}
