package amosql

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"partdiff/internal/rules"
)

// TestLintExampleScriptsClean loads every shipped example script in
// lint mode (rule actions disabled, no foreign procedures needed) and
// checks the whole-program analysis reports no errors or warnings
// (informational diagnostics, e.g. re-evaluated aggregates, are fine).
func TestLintExampleScriptsClean(t *testing.T) {
	scripts, err := filepath.Glob("../../examples/scripts/*.amosql")
	if err != nil {
		t.Fatal(err)
	}
	if len(scripts) == 0 {
		t.Fatal("no example scripts found")
	}
	for _, path := range scripts {
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			s := NewSession(rules.Incremental)
			s.SetLintMode(true)
			if _, err := s.Exec(string(src)); err != nil {
				t.Fatalf("script failed to load: %v", err)
			}
			if rep := s.AnalyzeAll(); !rep.Clean() {
				t.Fatalf("script does not lint clean:\n%s", rep)
			}
		})
	}
}

// TestLintUnstratifiedRejectedAtDefinition is the regression test for
// eager analysis: an unstratified derived function historically slipped
// through `create function` and only failed when a rule over it was
// activated. With eager analysis (the default) the definition itself is
// rejected with OL002; with lazy analysis the legacy timing still
// holds, but a later `create rule` referencing the bad view is rejected
// at definition time — not at activation or commit.
func TestLintUnstratifiedRejectedAtDefinition(t *testing.T) {
	setup := `
		create type item;
		create function val(item) -> integer;
	`
	badDef := `
		create function bad(item i) -> boolean as
			select true for each item j where j = i and val(i) > 0 and not bad(i);
	`

	// Eager (default): create function is rejected with OL002.
	s := NewSession(rules.Incremental)
	s.MustExec(setup)
	_, err := s.Exec(badDef)
	if err == nil || !strings.Contains(err.Error(), "OL002") {
		t.Fatalf("eager create function: got %v, want OL002 rejection", err)
	}

	// Lazy: the definition is accepted (historical behavior) ...
	s = NewSession(rules.Incremental)
	s.SetLazyAnalysis(true)
	s.MustExec(setup)
	if _, err := s.Exec(badDef); err != nil {
		t.Fatalf("lazy create function: %v", err)
	}

	// ... and switching back to eager, a rule over the bad view is
	// rejected when the rule is created, not when it is activated.
	s.SetLazyAnalysis(false)
	_, err = s.Exec(`
		create rule watch() as
			when for each item i where bad(i)
			do print(i);
	`)
	if err == nil || !strings.Contains(err.Error(), "OL002") {
		t.Fatalf("create rule over unstratified view: got %v, want OL002 rejection", err)
	}
}

// TestLintCreateWarningsShown checks that non-fatal diagnostics are
// appended to the statement result message, so the shell surfaces them
// eagerly.
func TestLintCreateWarningsShown(t *testing.T) {
	s := NewSession(rules.Incremental)
	s.MustExec(`
		create type item;
		create function val(item) -> integer;
	`)
	res, err := s.Exec(`
		create function dup(item i) -> integer as
			select val(j) for each item j
			where (j = i and val(j) > 0) or (val(j) > 0 and j = i);
	`)
	if err != nil {
		t.Fatal(err)
	}
	msg := res[len(res)-1].Message
	if !strings.Contains(msg, "OL203") {
		t.Fatalf("duplicate-disjunct warning not surfaced; message: %q", msg)
	}
	if !strings.Contains(msg, "function dup") {
		t.Fatalf("success message missing; got %q", msg)
	}
}
