package txn

import (
	"fmt"
	"reflect"
	"testing"

	"partdiff/internal/obs"
	"partdiff/internal/storage"
)

// TestCommitHookOrder pins the documented commit sequence: every hook's
// OnCommit in registration order, then every OnPersist, then every
// OnEnd — and the commit metrics are observed only after the persist
// phase, so a durability fsync can never be reordered behind
// bookkeeping.
func TestCommitHookOrder(t *testing.T) {
	st, m := setup(t)
	reg := obs.NewRegistry()
	m.SetObs(NewMetrics(reg), nil)

	var trace []string
	record := func(step string) { trace = append(trace, step) }
	hook := func(name string) Hook {
		return Hook{
			Name:     name,
			OnCommit: func() error { record(name + ".commit"); return nil },
			OnPersist: func(user, action []storage.Event) error {
				record(name + ".persist")
				// Metrics are step 5: at persist time nothing about this
				// commit has been counted yet.
				if n := reg.CounterValue("partdiff_txn_commits_total"); n != 0 {
					t.Errorf("%s: commits counter already %d during persist", name, n)
				}
				return nil
			},
			OnEnd: func(committed bool) { record(fmt.Sprintf("%s.end(%v)", name, committed)) },
		}
	}
	m.AddHook(hook("a"))
	m.AddHook(hook("b"))

	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	st.Insert("f", tup(1, 10))
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"a.commit", "b.commit",
		"a.persist", "b.persist",
		"a.end(true)", "b.end(true)",
	}
	if !reflect.DeepEqual(trace, want) {
		t.Errorf("hook order:\n got %v\nwant %v", trace, want)
	}
	if n := reg.CounterValue("partdiff_txn_commits_total"); n != 1 {
		t.Errorf("commits counter after commit = %d", n)
	}
}

// TestPersistSplitsUserAndActionEvents verifies that OnPersist receives
// the forward event log split at the check-phase boundary: updates made
// by the transaction body land in user, updates issued during OnCommit
// (rule actions) land in action.
func TestPersistSplitsUserAndActionEvents(t *testing.T) {
	st, m := setup(t)
	m.AddHook(Hook{
		Name: "rules",
		OnCommit: func() error {
			_, err := st.Insert("f", tup(2, 20)) // a rule-action update
			return err
		},
	})
	var user, action []storage.Event
	m.AddHook(Hook{
		Name: "wal",
		OnPersist: func(u, a []storage.Event) error {
			user = append([]storage.Event(nil), u...)
			action = append([]storage.Event(nil), a...)
			return nil
		},
	})
	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	st.Insert("f", tup(1, 10))
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(user) != 1 || user[0].Tuple[0] != tup(1)[0] {
		t.Errorf("user events = %v", user)
	}
	if len(action) != 1 || action[0].Tuple[0] != tup(2)[0] {
		t.Errorf("action events = %v", action)
	}
}

// TestPersistFailureRollsBack pins the fsync-before-ack contract: a
// failing persist hook aborts the commit, the transaction is rolled
// back, and both hooks observe OnEnd(false).
func TestPersistFailureRollsBack(t *testing.T) {
	st, m := setup(t)
	reg := obs.NewRegistry()
	m.SetObs(NewMetrics(reg), nil)
	var ends []bool
	m.AddHook(Hook{
		Name:      "wal",
		OnPersist: func(user, action []storage.Event) error { return fmt.Errorf("disk gone") },
		OnEnd:     func(committed bool) { ends = append(ends, committed) },
	})
	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	st.Insert("f", tup(1, 10))
	err := m.Commit()
	if err == nil {
		t.Fatal("commit with failing persist hook succeeded")
	}
	if got := err.Error(); got != "persist failed, transaction rolled back: disk gone" {
		t.Errorf("error = %q", got)
	}
	if rows, err := st.Get("f", tup(1)); err != nil {
		t.Fatal(err)
	} else if len(rows) != 0 {
		t.Errorf("unpersisted insert visible after rollback: %v", rows)
	}
	if !reflect.DeepEqual(ends, []bool{false}) {
		t.Errorf("OnEnd calls = %v", ends)
	}
	if n := reg.CounterValue("partdiff_txn_persist_failures_total"); n != 1 {
		t.Errorf("persist failures counter = %d", n)
	}
	if n := reg.CounterValue("partdiff_txn_commits_total"); n != 0 {
		t.Errorf("commits counter = %d after failed persist", n)
	}
	// The manager is healthy: the next transaction proceeds normally.
	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := m.Rollback(); err != nil {
		t.Fatal(err)
	}
}

// TestPersistPanicRollsBack: a panicking persist hook is contained and
// treated as a persist failure.
func TestPersistPanicRollsBack(t *testing.T) {
	st, m := setup(t)
	m.AddHook(Hook{
		Name:      "wal",
		OnPersist: func(user, action []storage.Event) error { panic("boom") },
	})
	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	st.Insert("f", tup(1, 10))
	if err := m.Commit(); err == nil {
		t.Fatal("commit with panicking persist hook succeeded")
	}
	if rows, err := st.Get("f", tup(1)); err != nil {
		t.Fatal(err)
	} else if len(rows) != 0 {
		t.Errorf("unpersisted insert visible after rollback: %v", rows)
	}
}

// TestAddHookReplacesInPlace: replacing a named hook keeps its position
// in the order.
func TestAddHookReplacesInPlace(t *testing.T) {
	_, m := setup(t)
	var trace []string
	mk := func(label string) Hook {
		name := label[:1] // "a1" and "a2" share the name "a"
		return Hook{Name: name, OnCommit: func() error { trace = append(trace, label); return nil }}
	}
	m.AddHook(mk("a1"))
	m.AddHook(mk("b1"))
	m.AddHook(mk("a2")) // replaces a1, stays first
	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a2", "b1"}
	if !reflect.DeepEqual(trace, want) {
		t.Errorf("hook order after replace:\n got %v\nwant %v", trace, want)
	}
}
