package txn

// Writer admission control. Transactions stay serial — the paper's
// execution model, and what the undo log, Δ-accumulators and deferred
// check phase assume — but concurrent callers now QUEUE for the writer
// role instead of being rejected: a fair FIFO gate hands the session
// from one writer to the next in arrival order, each waiter bounded by
// its context deadline. Snapshot readers never touch the gate.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"partdiff/internal/obs"
)

// ErrSessionBusy is returned when a caller's admission deadline expires
// before the writer gate frees up. It is only ever returned on deadline
// or cancellation — a waiter whose context stays live is eventually
// admitted. Test with errors.Is.
var ErrSessionBusy = errors.New("session busy: timed out waiting for the writer gate")

// ErrConflict is returned when an optimistic transaction's read set was
// invalidated by a commit that landed after its snapshot was pinned.
// The transaction wrote nothing; re-running it against a fresh snapshot
// may succeed (the facade retries a bounded number of times). Test with
// errors.Is.
var ErrConflict = errors.New("transaction conflict: read set changed since snapshot")

// gateMaxWaiters bounds the admission queue. Callers beyond it back off
// with jittered sleeps instead of growing the queue without bound.
const gateMaxWaiters = 128

// gateBackoffBase is the first backoff sleep when the queue is full;
// each retry doubles it up to gateBackoffMax, jittered ±50%.
const (
	gateBackoffBase = 200 * time.Microsecond
	gateBackoffMax  = 10 * time.Millisecond
)

type gateWaiter struct {
	ch chan struct{}
	// granted marks a handoff that may have raced the waiter's deadline;
	// gone marks a waiter that gave up and must be skipped.
	granted, gone bool
}

// Gate is the fair writer-admission gate: one holder at a time, waiters
// served in FIFO order with context deadlines. The zero value is not
// usable; call NewGate.
type Gate struct {
	mu   sync.Mutex
	held bool
	q    []*gateWaiter
	met  *Metrics
	rec  *obs.Recorder
}

// NewGate returns an open gate.
func NewGate() *Gate { return &Gate{met: &Metrics{}} }

// SetMetrics installs contention meters (nil restores the disabled
// defaults).
func (g *Gate) SetMetrics(m *Metrics) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if m == nil {
		m = &Metrics{}
	}
	g.met = m
}

// SetRecorder installs the flight recorder; each admission notes its
// wait so the next commit record carries a gate-wait attribution.
func (g *Gate) SetRecorder(r *obs.Recorder) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.rec = r
}

// Acquire blocks until the caller holds the gate or ctx is done. On
// deadline or cancellation it returns an error wrapping ErrSessionBusy.
// Admission is FIFO over live waiters, so no waiter is starved by later
// arrivals.
func (g *Gate) Acquire(ctx context.Context) error {
	start := time.Now()
	backoff := gateBackoffBase
	for {
		g.mu.Lock()
		if !g.held && len(g.q) == 0 {
			g.held = true
			rec := g.rec
			g.mu.Unlock()
			wait := time.Since(start)
			g.met.GateWaitSeconds.Observe(wait.Seconds())
			rec.NoteGateWait(wait)
			return nil
		}
		if len(g.q) < gateMaxWaiters {
			break
		}
		// Queue full: back off with jitter instead of growing it. The
		// jitter spreads re-arrivals so the head of the queue drains.
		g.mu.Unlock()
		g.met.GateBackoffs.Inc()
		d := backoff/2 + time.Duration(rand.Int63n(int64(backoff)))
		select {
		case <-time.After(d):
		case <-ctx.Done():
			g.met.GateTimeouts.Inc()
			return fmt.Errorf("%w (backed off %s behind a full queue): %v",
				ErrSessionBusy, time.Since(start).Round(time.Millisecond), ctx.Err())
		}
		if backoff *= 2; backoff > gateBackoffMax {
			backoff = gateBackoffMax
		}
	}
	w := &gateWaiter{ch: make(chan struct{})}
	g.q = append(g.q, w)
	g.met.GateDepth.Set(int64(len(g.q)))
	rec := g.rec
	g.mu.Unlock()
	select {
	case <-w.ch:
		wait := time.Since(start)
		g.met.GateWaitSeconds.Observe(wait.Seconds())
		rec.NoteGateWait(wait)
		return nil
	case <-ctx.Done():
		g.mu.Lock()
		if w.granted {
			// The handoff raced our deadline: we own the gate. Pass it on
			// rather than report a timeout while holding it.
			g.mu.Unlock()
			g.Release()
		} else {
			w.gone = true
			g.mu.Unlock()
		}
		g.met.GateTimeouts.Inc()
		return fmt.Errorf("%w (waited %s): %v",
			ErrSessionBusy, time.Since(start).Round(time.Millisecond), ctx.Err())
	}
}

// TryAcquire acquires the gate only if it is free with no waiters ahead.
func (g *Gate) TryAcquire() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.held || len(g.q) > 0 {
		return false
	}
	g.held = true
	return true
}

// Release hands the gate to the oldest live waiter, or opens it.
func (g *Gate) Release() {
	g.mu.Lock()
	for len(g.q) > 0 {
		w := g.q[0]
		g.q = g.q[1:]
		if w.gone {
			continue
		}
		w.granted = true
		close(w.ch)
		g.met.GateDepth.Set(int64(len(g.q)))
		g.mu.Unlock()
		return
	}
	g.held = false
	g.met.GateDepth.Set(0)
	g.mu.Unlock()
}

// Waiters returns the current queue length (diagnostics).
func (g *Gate) Waiters() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.q)
}
