package txn

import (
	"fmt"
	"testing"

	"partdiff/internal/delta"
	"partdiff/internal/storage"
	"partdiff/internal/types"
)

func tup(vs ...int64) types.Tuple {
	t := make(types.Tuple, len(vs))
	for i, v := range vs {
		t[i] = types.Int(v)
	}
	return t
}

func setup(t *testing.T) (*storage.Store, *Manager) {
	t.Helper()
	st := storage.NewStore()
	if _, err := st.CreateRelation("f", 2, []int{0}); err != nil {
		t.Fatal(err)
	}
	return st, NewManager(st)
}

func TestBeginCommit(t *testing.T) {
	st, m := setup(t)
	if m.InTransaction() {
		t.Error("fresh manager in transaction")
	}
	if err := m.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := m.Begin(); err == nil {
		t.Error("nested Begin should error")
	}
	st.Insert("f", tup(1, 10))
	if m.UpdateCount() != 1 {
		t.Errorf("UpdateCount=%d", m.UpdateCount())
	}
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	if m.InTransaction() {
		t.Error("still in transaction after commit")
	}
	if err := m.Commit(); err == nil {
		t.Error("Commit without transaction should error")
	}
	if err := m.Rollback(); err == nil {
		t.Error("Rollback without transaction should error")
	}
}

func TestRollbackRestoresState(t *testing.T) {
	st, m := setup(t)
	st.Insert("f", tup(1, 10)) // outside txn: permanent
	m.Begin()
	st.Set("f", []types.Value{types.Int(1)}, []types.Value{types.Int(99)})
	st.Insert("f", tup(2, 20))
	if err := m.Rollback(); err != nil {
		t.Fatal(err)
	}
	rel, _ := st.Relation("f")
	if rel.Len() != 1 || !rel.Contains(tup(1, 10)) {
		t.Errorf("state after rollback: %s", rel.Rows())
	}
}

func TestRollbackCancelsDeltas(t *testing.T) {
	st, m := setup(t)
	st.Insert("f", tup(1, 10))
	d := delta.New()
	m.SetHooks(func(e storage.Event) {
		if e.Kind == storage.InsertEvent {
			d.Insert(e.Tuple)
		} else {
			d.Delete(e.Tuple)
		}
	}, nil, nil)
	m.Begin()
	st.Set("f", []types.Value{types.Int(1)}, []types.Value{types.Int(99)})
	if d.IsEmpty() {
		t.Fatal("delta should record the update")
	}
	m.Rollback()
	if !d.IsEmpty() {
		t.Errorf("rollback must cancel deltas via ∪Δ, got %s", d)
	}
}

func TestCommitRunsCheckPhase(t *testing.T) {
	st, m := setup(t)
	var checked, ended bool
	var committedFlag bool
	m.SetHooks(nil,
		func() error {
			checked = true
			// Check phase may perform further updates (rule actions).
			st.Insert("f", tup(5, 50))
			return nil
		},
		func(committed bool) { ended = true; committedFlag = committed })
	m.Begin()
	st.Insert("f", tup(1, 10))
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	if !checked || !ended || !committedFlag {
		t.Errorf("hooks: checked=%v ended=%v committed=%v", checked, ended, committedFlag)
	}
	rel, _ := st.Relation("f")
	if !rel.Contains(tup(5, 50)) {
		t.Error("check-phase update lost")
	}
}

func TestFailedCheckPhaseRollsBack(t *testing.T) {
	st, m := setup(t)
	var endedCommitted *bool
	m.SetHooks(nil,
		func() error { return fmt.Errorf("condition violated") },
		func(committed bool) { endedCommitted = &committed })
	m.Begin()
	st.Insert("f", tup(1, 10))
	err := m.Commit()
	if err == nil {
		t.Fatal("commit should surface check-phase failure")
	}
	rel, _ := st.Relation("f")
	if rel.Len() != 0 {
		t.Errorf("state after failed commit: %s", rel.Rows())
	}
	if m.InTransaction() {
		t.Error("transaction should be finished")
	}
	if endedCommitted == nil || *endedCommitted {
		t.Error("onEnd should report rollback")
	}
}

func TestCheckPhaseUpdatesAreUndoneOnRollback(t *testing.T) {
	// Updates made during a failing check phase must also be rolled
	// back (they are part of the same transaction).
	st, m := setup(t)
	m.SetHooks(nil, func() error {
		st.Insert("f", tup(7, 70))
		return fmt.Errorf("fail after action")
	}, nil)
	m.Begin()
	st.Insert("f", tup(1, 10))
	if err := m.Commit(); err == nil {
		t.Fatal("expected failure")
	}
	rel, _ := st.Relation("f")
	if rel.Len() != 0 {
		t.Errorf("check-phase update survived rollback: %s", rel.Rows())
	}
}

func TestEventsOutsideTransactionStillObserved(t *testing.T) {
	st, m := setup(t)
	var n int
	m.SetHooks(func(storage.Event) { n++ }, nil, nil)
	st.Insert("f", tup(1, 10))
	if n != 1 {
		t.Errorf("events outside txn: %d", n)
	}
	if m.UpdateCount() != 0 {
		t.Error("no undo log outside transaction")
	}
}

func TestSequentialTransactions(t *testing.T) {
	st, m := setup(t)
	for i := int64(0); i < 3; i++ {
		if err := m.Begin(); err != nil {
			t.Fatal(err)
		}
		st.Insert("f", tup(i, i*10))
		if err := m.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	rel, _ := st.Relation("f")
	if rel.Len() != 3 {
		t.Errorf("Len=%d", rel.Len())
	}
}
