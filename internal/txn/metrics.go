package txn

import (
	"time"

	"partdiff/internal/obs"
)

// Metrics is the transaction manager's meter set. The zero value is a
// valid disabled meter set (nil meters are no-ops).
type Metrics struct {
	// Begins / Commits / Rollbacks count transaction outcomes. Rollbacks
	// includes both explicit rollbacks and check-phase-failure rollbacks.
	Begins    *obs.Counter
	Commits   *obs.Counter
	Rollbacks *obs.Counter
	// CheckFailures counts commits whose deferred check phase failed;
	// PersistFailures counts commits rolled back because a persist hook
	// (the write-ahead log's fsync-before-ack) failed.
	CheckFailures   *obs.Counter
	PersistFailures *obs.Counter
	// CommitSeconds times Commit end to end; CheckSeconds times just the
	// deferred check phase inside it. PersistSeconds and AckSeconds
	// split out the remaining phases (observed on successful commits),
	// so a slow_commit event is corroborated by per-phase histograms.
	CommitSeconds  *obs.Histogram
	CheckSeconds   *obs.Histogram
	PersistSeconds *obs.Histogram
	AckSeconds     *obs.Histogram
	// UndoEvents is the distribution of undo-log lengths at commit or
	// rollback (physical events per transaction).
	UndoEvents *obs.Histogram
	// Writer-admission contention: GateDepth gauges the waiter queue,
	// GateWaitSeconds times each admission, GateTimeouts counts waiters
	// whose deadline expired (ErrSessionBusy), GateBackoffs counts
	// jittered sleeps behind a full queue.
	GateDepth       *obs.Gauge
	GateWaitSeconds *obs.Histogram
	GateTimeouts    *obs.Counter
	GateBackoffs    *obs.Counter
	// Conflicts counts optimistic transactions whose read set was
	// invalidated (ErrConflict); ConflictRetries counts the automatic
	// re-runs the facade performed.
	Conflicts       *obs.Counter
	ConflictRetries *obs.Counter
	// SlowCommits counts commits that exceeded the configured
	// slow-commit threshold (see Manager.SetSlowCommitThreshold).
	SlowCommits *obs.Counter
}

// NewMetrics registers the transaction meters in r.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Begins:          r.Counter("partdiff_txn_begins_total", "Transactions started."),
		Commits:         r.Counter("partdiff_txn_commits_total", "Transactions committed."),
		Rollbacks:       r.Counter("partdiff_txn_rollbacks_total", "Transactions rolled back (explicit or after check-phase failure)."),
		CheckFailures:   r.Counter("partdiff_txn_check_failures_total", "Commits aborted by a failing deferred check phase."),
		PersistFailures: r.Counter("partdiff_txn_persist_failures_total", "Commits rolled back by a failing persist (WAL) hook."),
		CommitSeconds:   r.Histogram("partdiff_txn_commit_seconds", "Wall-clock time of Commit (including the check phase).", obs.DefLatencyBuckets),
		CheckSeconds:    r.Histogram("partdiff_txn_check_seconds", "Wall-clock time of the deferred check phase.", obs.DefLatencyBuckets),
		PersistSeconds:  r.Histogram("partdiff_txn_persist_seconds", "Wall-clock time of the persist phase (WAL append + fsync-before-ack) on successful commits.", obs.DefLatencyBuckets),
		AckSeconds:      r.Histogram("partdiff_txn_ack_seconds", "Wall-clock time of the ack phase (finalize, publish write set, end hooks) on successful commits.", obs.DefLatencyBuckets),
		UndoEvents:      r.Histogram("partdiff_txn_undo_events", "Physical events logged per finished transaction.", obs.DefSizeBuckets),
		GateDepth:       r.Gauge("partdiff_txn_gate_depth", "Writers currently queued on the admission gate."),
		GateWaitSeconds: r.Histogram("partdiff_txn_gate_wait_seconds", "Wall-clock wait for writer admission.", obs.DefLatencyBuckets),
		GateTimeouts:    r.Counter("partdiff_txn_gate_timeouts_total", "Writer admissions abandoned on deadline (ErrSessionBusy)."),
		GateBackoffs:    r.Counter("partdiff_txn_gate_backoffs_total", "Jittered backoff sleeps behind a full admission queue."),
		Conflicts:       r.Counter("partdiff_txn_conflicts_total", "Optimistic transactions aborted by read-set invalidation (ErrConflict)."),
		ConflictRetries: r.Counter("partdiff_txn_conflict_retries_total", "Automatic re-runs of conflicted optimistic transactions."),
		SlowCommits:     r.Counter("partdiff_txn_slow_commits_total", "Commits slower than the configured slow-commit threshold."),
	}
}

// MarkConflict records an optimistic transaction aborted by read-set
// invalidation; MarkConflictRetry records an automatic re-run.
func (m *Manager) MarkConflict() {
	m.met.Conflicts.Inc()
	m.rec.NoteConflict()
	if m.bus.Active() {
		m.bus.Publish(obs.Event{Type: obs.EventTxn, Op: "conflict"})
	}
}

// MarkConflictRetry records one automatic re-run of a conflicted
// optimistic transaction.
func (m *Manager) MarkConflictRetry() { m.met.ConflictRetries.Inc() }

// SetObs installs the meter set and tracer (nil values restore the
// disabled defaults).
func (m *Manager) SetObs(met *Metrics, tr *obs.Tracer) {
	if met == nil {
		met = &Metrics{}
	}
	m.met = met
	m.tracer = tr
}

// SetBus installs the event bus transaction lifecycle events are
// published on. The commit-point contract: events a transaction staged
// (rule firings, Δ summaries) are published by Commit only after the
// ack — CommitStaged after AdvanceCommit — and discarded by Rollback,
// so subscribers never observe rolled-back work. Publication happens
// under the writer gate, so bus order is commit-sequence order.
func (m *Manager) SetBus(b *obs.Bus) { m.bus = b }

// SetRecorder installs the flight recorder: every commit appends a
// phase-timed commit record, conflicts feed the storm trigger, and
// slow commits / corruption fire anomaly triggers directly (the
// recorder works even when the bus is disarmed).
func (m *Manager) SetRecorder(r *obs.Recorder) { m.rec = r }

// SetSlowCommitThreshold arms the slow-commit detector: a commit whose
// end-to-end latency exceeds d publishes a system/slow_commit event
// with per-phase (check/persist/ack) timings and bumps the SlowCommits
// counter. d <= 0 disables.
func (m *Manager) SetSlowCommitThreshold(d time.Duration) { m.slow = d }
