package txn

import "partdiff/internal/obs"

// Metrics is the transaction manager's meter set. The zero value is a
// valid disabled meter set (nil meters are no-ops).
type Metrics struct {
	// Begins / Commits / Rollbacks count transaction outcomes. Rollbacks
	// includes both explicit rollbacks and check-phase-failure rollbacks.
	Begins    *obs.Counter
	Commits   *obs.Counter
	Rollbacks *obs.Counter
	// CheckFailures counts commits whose deferred check phase failed;
	// PersistFailures counts commits rolled back because a persist hook
	// (the write-ahead log's fsync-before-ack) failed.
	CheckFailures   *obs.Counter
	PersistFailures *obs.Counter
	// CommitSeconds times Commit end to end; CheckSeconds times just the
	// deferred check phase inside it.
	CommitSeconds *obs.Histogram
	CheckSeconds  *obs.Histogram
	// UndoEvents is the distribution of undo-log lengths at commit or
	// rollback (physical events per transaction).
	UndoEvents *obs.Histogram
}

// NewMetrics registers the transaction meters in r.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Begins:          r.Counter("partdiff_txn_begins_total", "Transactions started."),
		Commits:         r.Counter("partdiff_txn_commits_total", "Transactions committed."),
		Rollbacks:       r.Counter("partdiff_txn_rollbacks_total", "Transactions rolled back (explicit or after check-phase failure)."),
		CheckFailures:   r.Counter("partdiff_txn_check_failures_total", "Commits aborted by a failing deferred check phase."),
		PersistFailures: r.Counter("partdiff_txn_persist_failures_total", "Commits rolled back by a failing persist (WAL) hook."),
		CommitSeconds:   r.Histogram("partdiff_txn_commit_seconds", "Wall-clock time of Commit (including the check phase).", obs.DefLatencyBuckets),
		CheckSeconds:    r.Histogram("partdiff_txn_check_seconds", "Wall-clock time of the deferred check phase.", obs.DefLatencyBuckets),
		UndoEvents:      r.Histogram("partdiff_txn_undo_events", "Physical events logged per finished transaction.", obs.DefSizeBuckets),
	}
}

// SetObs installs the meter set and tracer (nil values restore the
// disabled defaults).
func (m *Manager) SetObs(met *Metrics, tr *obs.Tracer) {
	if met == nil {
		met = &Metrics{}
	}
	m.met = met
	m.tracer = tr
}
