// Package txn implements transactions over the storage layer: a logical
// undo log, rollback by inverse replay, and the deferred check phase
// hook that runs at commit (§1: "condition evaluation is delayed until a
// check phase usually at commit time").
//
// Rollback replays the undo log inverted *through the normal update
// path*, so the inverse physical events flow into the same Δ-set
// accumulators as the original ones and cancel out under ∪Δ — after a
// rollback no rule sees any net change, with no special-casing in the
// monitor.
//
// # Commit hook ordering
//
// Hooks are named and ordered; Commit runs their callbacks in a fixed,
// documented sequence so that durability can never be reordered behind
// bookkeeping:
//
//  1. check phase   — every hook's OnCommit, in registration order
//     (the rules hook runs the deferred condition check here; action
//     updates join the transaction's undo log).
//  2. persist phase — every hook's OnPersist, in registration order,
//     receiving the full forward event log. The wal hook appends and
//     fsyncs here: fsync-before-ack. A persist error or panic rolls
//     the transaction back exactly like a failed check phase.
//  3. ack           — the transaction is finalized (active=false).
//  4. OnEnd(true)   — every hook, in registration order (monitors
//     discard Δ-sets, the session applies deferred object deletions,
//     the wal hook clears its per-transaction capture).
//  5. events        — events the check phase staged on the bus (rule
//     firings, Δ summaries) are published, stamped with the commit
//     sequence, followed by the txn/commit lifecycle event: the bus
//     never carries uncommitted work, and because publication happens
//     under the writer gate, bus order is commit-sequence order.
//  6. metrics       — Commits / CommitSeconds are observed last, after
//     the fsync, so the commit-latency histogram includes durability
//     and a metric update can never precede the ack it describes.
package txn

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"partdiff/internal/obs"
	"partdiff/internal/storage"
)

// ErrCorrupt is the sticky error a poisoned manager returns from every
// subsequent call: a rollback failed part-way, so the store may hold a
// partially undone transaction and no answer derived from it can be
// trusted. Test with errors.Is.
var ErrCorrupt = errors.New("database corrupt: rollback failed, store state is not trustworthy")

// Hook is one named participant in the transaction lifecycle. Any
// callback may be nil. See the package comment for the exact order in
// which Commit invokes them.
type Hook struct {
	// Name identifies the hook; AddHook replaces a same-named hook in
	// place, keeping its position in the order.
	Name string
	// OnEvent receives every physical event (including inverse events
	// replayed during rollback) — the rule monitor folds them into
	// Δ-sets here.
	OnEvent func(storage.Event)
	// OnCommit runs the deferred check phase. Updates performed by rule
	// actions during the check phase are part of the same transaction.
	OnCommit func() error
	// OnPersist runs after a successful check phase and before the
	// commit is acknowledged, receiving the transaction's forward event
	// log split at the check-phase boundary: user holds the events of
	// the transaction body, action the events issued by rule actions
	// during the check phase. Both are read-only views of the undo log
	// and must not be retained past the call. An error rolls the
	// transaction back: fsync-before-ack.
	OnPersist func(user, action []storage.Event) error
	// OnEnd runs after the transaction finishes (committed reports the
	// outcome); monitors discard base Δ-sets here.
	OnEnd func(committed bool)
}

// Manager coordinates transactions on one store. AMOS-style main-memory
// transactions are serial: callers must hold the session's writer gate
// (see Gate) around every Begin/Commit/Rollback. Corrupt alone is safe
// to call concurrently — snapshot readers poll it without the gate.
type Manager struct {
	store *storage.Store

	active     bool
	inRollback bool
	undo       []storage.Event
	// corrupt, once set, poisons the manager: Begin, Commit and
	// Rollback all return it (wrapping ErrCorrupt) forever after.
	// Guarded by cmu: it is read by gate-free snapshot readers.
	cmu     sync.Mutex
	corrupt error

	hooks []Hook

	met    *Metrics // never nil; zero-value Metrics when observability is off
	tracer *obs.Tracer
	// bus carries lifecycle and staged payload events; nil-safe (a nil
	// or inactive bus costs one atomic load per publish site). slow is
	// the slow-commit threshold (0 = disabled).
	bus  *obs.Bus
	slow time.Duration
	// rec is the flight recorder: commit records, the stall watchdog's
	// in-flight tracking, and the slow_commit / corruption /
	// conflict_storm triggers feed it. Nil-safe and disarmed-cheap like
	// the bus.
	rec *obs.Recorder
}

// NewManager creates a manager subscribed to the store's event stream.
func NewManager(store *storage.Store) *Manager {
	m := &Manager{store: store, met: &Metrics{}}
	store.Subscribe(m.observe)
	return m
}

// AddHook installs h at the end of the hook order, or — when a hook
// with the same name exists — replaces it in place.
func (m *Manager) AddHook(h Hook) {
	for i := range m.hooks {
		if m.hooks[i].Name == h.Name {
			m.hooks[i] = h
			return
		}
	}
	m.hooks = append(m.hooks, h)
}

// SetHooks installs a single anonymous monitor hook (replacing any
// previous SetHooks installation). Any callback may be nil. Kept for
// direct users of the manager; the session layer uses AddHook with
// named hooks.
func (m *Manager) SetHooks(onEvent func(storage.Event), onCommit func() error, onEnd func(committed bool)) {
	m.AddHook(Hook{Name: "monitor", OnEvent: onEvent, OnCommit: onCommit, OnEnd: onEnd})
}

func (m *Manager) observe(e storage.Event) {
	if m.active && !m.inRollback {
		m.undo = append(m.undo, e)
	}
	for i := range m.hooks {
		if m.hooks[i].OnEvent != nil {
			m.hooks[i].OnEvent(e)
		}
	}
}

// Begin starts a transaction.
func (m *Manager) Begin() error {
	if err := m.Corrupt(); err != nil {
		return err
	}
	if m.active {
		return fmt.Errorf("transaction already active")
	}
	m.active = true
	m.undo = m.undo[:0]
	// Inside the scope the store defers snapshot visibility to the
	// AdvanceCommit call at commit (rollback publishes nothing).
	m.store.BeginTxnScope()
	m.met.Begins.Inc()
	if m.bus.Active() {
		m.bus.Publish(obs.Event{Type: obs.EventTxn, Op: "begin"})
	}
	return nil
}

// Corrupt returns the sticky corruption error, or nil while the manager
// is healthy. Safe for concurrent use (snapshot readers fail fast on a
// poisoned database without taking the writer gate).
func (m *Manager) Corrupt() error {
	m.cmu.Lock()
	defer m.cmu.Unlock()
	return m.corrupt
}

func (m *Manager) setCorrupt(err error) {
	m.cmu.Lock()
	m.corrupt = err
	m.cmu.Unlock()
}

// InTransaction reports whether a transaction is active.
func (m *Manager) InTransaction() bool { return m.active }

// UpdateCount returns the number of physical events logged so far in the
// active transaction.
func (m *Manager) UpdateCount() int { return len(m.undo) }

// Commit runs the deferred check phase, persists, and finishes the
// transaction — in the fixed order documented in the package comment.
// If the check or persist phase fails (by error or by panic), the
// transaction is rolled back and the causing error returned; if that
// rollback itself fails the manager is poisoned (see ErrCorrupt). The
// transaction is guaranteed to be finalized either way — a panicking
// hook can not leave the manager active with a stale undo log.
func (m *Manager) Commit() error {
	if err := m.Corrupt(); err != nil {
		return err
	}
	if !m.active {
		return fmt.Errorf("no active transaction")
	}
	start := time.Now()
	rtok := m.rec.CommitBegin()
	csp := m.tracer.Begin("txn", "commit", obs.Int("undo_events", len(m.undo)))
	// Everything logged before the check phase is a user update;
	// everything appended during it is a rule-action update. Persist
	// hooks get the log split at this boundary so recovery can replay
	// the user part and re-derive the action part through a fresh check
	// phase.
	userLen := len(m.undo)
	m.met.UndoEvents.Observe(float64(userLen))
	checkStart := time.Now()
	if err := m.runCommitHooks(); err != nil {
		m.met.CheckFailures.Inc()
		rbErr := m.Rollback()
		m.met.CommitSeconds.Observe(time.Since(start).Seconds())
		m.rec.CommitEnd(rtok, obs.CommitRecord{
			Outcome: "rolled_back", Writes: userLen,
			CheckMs: ms(time.Since(checkStart)), TotalMs: ms(time.Since(start)),
		})
		csp.End(obs.Str("outcome", "rolled_back"))
		if rbErr != nil {
			return fmt.Errorf("check phase failed: %v (%w)", err, rbErr)
		}
		return fmt.Errorf("check phase failed, transaction rolled back: %w", err)
	}
	checkDur := time.Since(checkStart)
	persistStart := time.Now()
	if err := m.runPersistHooks(userLen); err != nil {
		m.met.PersistFailures.Inc()
		rbErr := m.Rollback()
		m.met.CommitSeconds.Observe(time.Since(start).Seconds())
		m.rec.CommitEnd(rtok, obs.CommitRecord{
			Outcome: "persist_failed", Writes: userLen, CheckMs: ms(checkDur),
			PersistMs: ms(time.Since(persistStart)), TotalMs: ms(time.Since(start)),
		})
		csp.End(obs.Str("outcome", "persist_failed"))
		if rbErr != nil {
			return fmt.Errorf("persist failed: %v (%w)", err, rbErr)
		}
		return fmt.Errorf("persist failed, transaction rolled back: %w", err)
	}
	persistDur := time.Since(persistStart)
	ackStart := time.Now()
	// Ack (step 3): finalize, then publish the write set — the commit
	// sequence advances and new snapshot pins see the transaction's
	// rows. Touched relations are stamped for optimistic read-set
	// validation; an empty transaction publishes nothing.
	m.active = false
	actionLen := len(m.undo) - userLen
	touched := touchedRelations(m.undo)
	m.undo = m.undo[:0]
	m.store.EndTxnScope()
	if len(touched) > 0 {
		m.store.AdvanceCommit(touched)
	}
	for i := range m.hooks {
		if m.hooks[i].OnEnd != nil {
			m.hooks[i].OnEnd(true)
		}
	}
	ackDur := time.Since(ackStart)
	// Event publication sits after the ack — the commit point — so
	// subscribers only ever see committed work: first the events the
	// check phase staged (rule firings, Δ summaries), then the commit
	// lifecycle event closing the batch. Writers are serialized, so
	// bus order is commit-sequence order.
	if m.bus.Active() {
		seq := m.store.CommitSeq()
		m.bus.CommitStaged(seq)
		m.bus.Publish(obs.Event{
			Type: obs.EventTxn, Op: "commit", CommitSeq: seq,
			Writes: userLen, Fired: actionLen,
		})
	}
	total := time.Since(start)
	// The commit record precedes the slow-commit trigger so a bundle's
	// frozen window includes the commit that tripped it.
	m.rec.CommitEnd(rtok, obs.CommitRecord{
		Outcome: "committed", CommitSeq: m.store.CommitSeq(),
		CheckMs: ms(checkDur), PersistMs: ms(persistDur), AckMs: ms(ackDur),
		TotalMs: ms(total), Writes: userLen, Fired: actionLen,
	})
	if m.slow > 0 && total > m.slow {
		m.met.SlowCommits.Inc()
		detail := fmt.Sprintf("commit exceeded slow threshold (%s > %s)", total, m.slow)
		m.bus.Publish(obs.Event{
			Type: obs.EventSystem, Op: "slow_commit", CommitSeq: m.store.CommitSeq(),
			Ms:        float64(total) / float64(time.Millisecond),
			CheckMs:   float64(checkDur) / float64(time.Millisecond),
			PersistMs: float64(persistDur) / float64(time.Millisecond),
			AckMs:     float64(ackDur) / float64(time.Millisecond),
			Detail:    detail,
		})
		m.rec.Trigger(obs.TrigSlowCommit, detail)
	}
	// Metrics last (step 5): the observed latency includes the fsync,
	// and no metric update precedes durability.
	m.met.Commits.Inc()
	m.met.CommitSeconds.Observe(total.Seconds())
	m.met.PersistSeconds.Observe(persistDur.Seconds())
	m.met.AckSeconds.Observe(ackDur.Seconds())
	csp.End(obs.Str("outcome", "committed"))
	return nil
}

// ms converts a duration to float milliseconds for recorder records.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// runCommitHooks invokes every check-phase callback in registration
// order, converting a panic into an error so Commit's
// rollback-and-finalize path runs regardless.
func (m *Manager) runCommitHooks() (err error) {
	start := time.Now()
	sp := m.tracer.Begin("txn", "check_phase")
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("check phase panicked: %v", r)
		}
		m.met.CheckSeconds.Observe(time.Since(start).Seconds())
		sp.End()
	}()
	for i := range m.hooks {
		if m.hooks[i].OnCommit == nil {
			continue
		}
		if err := m.hooks[i].OnCommit(); err != nil {
			return err
		}
	}
	return nil
}

// runPersistHooks invokes every persist callback in registration order
// with the transaction's forward event log split at the check-phase
// boundary, converting a panic into an error. The slices are views of
// the live undo log — hooks must treat them as read-only and not
// retain them past the call.
func (m *Manager) runPersistHooks(userLen int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("persist panicked: %v", r)
		}
	}()
	for i := range m.hooks {
		if m.hooks[i].OnPersist == nil {
			continue
		}
		if err := m.hooks[i].OnPersist(m.undo[:userLen], m.undo[userLen:]); err != nil {
			return err
		}
	}
	return nil
}

// Rollback undoes every update of the active transaction by replaying
// the undo log inverted, in reverse order. Every undo failure — not
// just the first — is collected; any failure means the store no longer
// matches the pre-transaction state, so the manager is poisoned and
// the returned error wraps ErrCorrupt.
func (m *Manager) Rollback() error {
	if err := m.Corrupt(); err != nil {
		return err
	}
	if !m.active {
		return fmt.Errorf("no active transaction")
	}
	m.inRollback = true
	var undoErrs []error
	func() {
		// Inverse replay restores the pre-transaction state even where a
		// declared capability forbids the inverse operation for users
		// (undoing an insert into an append-only relation is a delete).
		m.store.SuspendEnforcement()
		defer m.store.ResumeEnforcement()
		// A panicking undo (e.g. injected at the storage layer) must
		// still finalize the transaction and poison the manager.
		defer func() {
			if r := recover(); r != nil {
				undoErrs = append(undoErrs, fmt.Errorf("undo panicked: %v", r))
			}
		}()
		for i := len(m.undo) - 1; i >= 0; i-- {
			e := m.undo[i]
			var err error
			if e.Kind == storage.InsertEvent {
				_, err = m.store.Delete(e.Relation, e.Tuple)
			} else {
				_, err = m.store.Insert(e.Relation, e.Tuple)
			}
			if err != nil {
				undoErrs = append(undoErrs, fmt.Errorf("undo %s: %v", e, err))
			}
		}
	}()
	m.inRollback = false
	m.active = false
	m.undo = m.undo[:0]
	m.store.EndTxnScope()
	m.met.Rollbacks.Inc()
	for i := range m.hooks {
		if m.hooks[i].OnEnd != nil {
			m.hooks[i].OnEnd(false)
		}
	}
	// Rolled-back work must never reach subscribers: drop whatever the
	// check phase staged, then announce the rollback itself.
	if m.bus.Active() {
		m.bus.DiscardStaged()
		m.bus.Publish(obs.Event{Type: obs.EventTxn, Op: "rollback"})
	}
	if len(undoErrs) > 0 {
		err := fmt.Errorf("%w: %v", ErrCorrupt, errors.Join(undoErrs...))
		m.setCorrupt(err)
		m.rec.Trigger(obs.TrigCorruption, err.Error())
		return err
	}
	return nil
}

// touchedRelations returns the distinct relation names in the event
// log, in first-touch order.
func touchedRelations(events []storage.Event) []string {
	if len(events) == 0 {
		return nil
	}
	seen := make(map[string]struct{}, 4)
	var out []string
	for _, e := range events {
		if _, ok := seen[e.Relation]; !ok {
			seen[e.Relation] = struct{}{}
			out = append(out, e.Relation)
		}
	}
	return out
}
