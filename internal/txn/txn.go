// Package txn implements transactions over the storage layer: a logical
// undo log, rollback by inverse replay, and the deferred check phase
// hook that runs at commit (§1: "condition evaluation is delayed until a
// check phase usually at commit time").
//
// Rollback replays the undo log inverted *through the normal update
// path*, so the inverse physical events flow into the same Δ-set
// accumulators as the original ones and cancel out under ∪Δ — after a
// rollback no rule sees any net change, with no special-casing in the
// monitor.
package txn

import (
	"errors"
	"fmt"
	"time"

	"partdiff/internal/obs"
	"partdiff/internal/storage"
)

// ErrCorrupt is the sticky error a poisoned manager returns from every
// subsequent call: a rollback failed part-way, so the store may hold a
// partially undone transaction and no answer derived from it can be
// trusted. Test with errors.Is.
var ErrCorrupt = errors.New("database corrupt: rollback failed, store state is not trustworthy")

// Manager coordinates transactions on one store. It is not safe for
// concurrent use: AMOS-style main-memory transactions are serial.
type Manager struct {
	store *storage.Store

	active     bool
	inRollback bool
	undo       []storage.Event
	// corrupt, once set, poisons the manager: Begin, Commit and
	// Rollback all return it (wrapping ErrCorrupt) forever after.
	corrupt error

	// onEvent receives every physical event (including inverse events
	// replayed during rollback) — the rule monitor folds them into
	// Δ-sets here.
	onEvent func(storage.Event)
	// onCommit runs the deferred check phase. Updates performed by rule
	// actions during the check phase are part of the same transaction.
	onCommit func() error
	// onEnd runs after the transaction finishes (committed reports the
	// outcome); monitors discard base Δ-sets here.
	onEnd func(committed bool)

	met    *Metrics // never nil; zero-value Metrics when observability is off
	tracer *obs.Tracer
}

// NewManager creates a manager subscribed to the store's event stream.
func NewManager(store *storage.Store) *Manager {
	m := &Manager{store: store, met: &Metrics{}}
	store.Subscribe(m.observe)
	return m
}

// SetHooks installs the monitor callbacks. Any hook may be nil.
func (m *Manager) SetHooks(onEvent func(storage.Event), onCommit func() error, onEnd func(committed bool)) {
	m.onEvent = onEvent
	m.onCommit = onCommit
	m.onEnd = onEnd
}

func (m *Manager) observe(e storage.Event) {
	if m.active && !m.inRollback {
		m.undo = append(m.undo, e)
	}
	if m.onEvent != nil {
		m.onEvent(e)
	}
}

// Begin starts a transaction.
func (m *Manager) Begin() error {
	if m.corrupt != nil {
		return m.corrupt
	}
	if m.active {
		return fmt.Errorf("transaction already active")
	}
	m.active = true
	m.undo = m.undo[:0]
	m.met.Begins.Inc()
	return nil
}

// Corrupt returns the sticky corruption error, or nil while the manager
// is healthy.
func (m *Manager) Corrupt() error { return m.corrupt }

// InTransaction reports whether a transaction is active.
func (m *Manager) InTransaction() bool { return m.active }

// UpdateCount returns the number of physical events logged so far in the
// active transaction.
func (m *Manager) UpdateCount() int { return len(m.undo) }

// Commit runs the deferred check phase and finishes the transaction.
// If the check phase fails (by error or by panic), the transaction is
// rolled back and the check-phase error returned; if that rollback
// itself fails the manager is poisoned (see ErrCorrupt). The
// transaction is guaranteed to be finalized either way — a panicking
// check phase can not leave the manager active with a stale undo log.
func (m *Manager) Commit() error {
	if m.corrupt != nil {
		return m.corrupt
	}
	if !m.active {
		return fmt.Errorf("no active transaction")
	}
	start := time.Now()
	csp := m.tracer.Begin("txn", "commit", obs.Int("undo_events", len(m.undo)))
	m.met.UndoEvents.Observe(float64(len(m.undo)))
	if m.onCommit != nil {
		if err := m.runCommitHook(); err != nil {
			m.met.CheckFailures.Inc()
			rbErr := m.Rollback()
			m.met.CommitSeconds.Observe(time.Since(start).Seconds())
			csp.End(obs.Str("outcome", "rolled_back"))
			if rbErr != nil {
				return fmt.Errorf("check phase failed: %v (%w)", err, rbErr)
			}
			return fmt.Errorf("check phase failed, transaction rolled back: %w", err)
		}
	}
	m.active = false
	m.undo = m.undo[:0]
	if m.onEnd != nil {
		m.onEnd(true)
	}
	m.met.Commits.Inc()
	m.met.CommitSeconds.Observe(time.Since(start).Seconds())
	csp.End(obs.Str("outcome", "committed"))
	return nil
}

// runCommitHook invokes the check-phase hook, converting a panic into
// an error so Commit's rollback-and-finalize path runs regardless.
func (m *Manager) runCommitHook() (err error) {
	start := time.Now()
	sp := m.tracer.Begin("txn", "check_phase")
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("check phase panicked: %v", r)
		}
		m.met.CheckSeconds.Observe(time.Since(start).Seconds())
		sp.End()
	}()
	return m.onCommit()
}

// Rollback undoes every update of the active transaction by replaying
// the undo log inverted, in reverse order. Every undo failure — not
// just the first — is collected; any failure means the store no longer
// matches the pre-transaction state, so the manager is poisoned and
// the returned error wraps ErrCorrupt.
func (m *Manager) Rollback() error {
	if m.corrupt != nil {
		return m.corrupt
	}
	if !m.active {
		return fmt.Errorf("no active transaction")
	}
	m.inRollback = true
	var undoErrs []error
	func() {
		// A panicking undo (e.g. injected at the storage layer) must
		// still finalize the transaction and poison the manager.
		defer func() {
			if r := recover(); r != nil {
				undoErrs = append(undoErrs, fmt.Errorf("undo panicked: %v", r))
			}
		}()
		for i := len(m.undo) - 1; i >= 0; i-- {
			e := m.undo[i]
			var err error
			if e.Kind == storage.InsertEvent {
				_, err = m.store.Delete(e.Relation, e.Tuple)
			} else {
				_, err = m.store.Insert(e.Relation, e.Tuple)
			}
			if err != nil {
				undoErrs = append(undoErrs, fmt.Errorf("undo %s: %v", e, err))
			}
		}
	}()
	m.inRollback = false
	m.active = false
	m.undo = m.undo[:0]
	m.met.Rollbacks.Inc()
	if m.onEnd != nil {
		m.onEnd(false)
	}
	if len(undoErrs) > 0 {
		m.corrupt = fmt.Errorf("%w: %v", ErrCorrupt, errors.Join(undoErrs...))
		return m.corrupt
	}
	return nil
}
