// Package txn implements transactions over the storage layer: a logical
// undo log, rollback by inverse replay, and the deferred check phase
// hook that runs at commit (§1: "condition evaluation is delayed until a
// check phase usually at commit time").
//
// Rollback replays the undo log inverted *through the normal update
// path*, so the inverse physical events flow into the same Δ-set
// accumulators as the original ones and cancel out under ∪Δ — after a
// rollback no rule sees any net change, with no special-casing in the
// monitor.
package txn

import (
	"fmt"

	"partdiff/internal/storage"
)

// Manager coordinates transactions on one store. It is not safe for
// concurrent use: AMOS-style main-memory transactions are serial.
type Manager struct {
	store *storage.Store

	active     bool
	inRollback bool
	undo       []storage.Event

	// onEvent receives every physical event (including inverse events
	// replayed during rollback) — the rule monitor folds them into
	// Δ-sets here.
	onEvent func(storage.Event)
	// onCommit runs the deferred check phase. Updates performed by rule
	// actions during the check phase are part of the same transaction.
	onCommit func() error
	// onEnd runs after the transaction finishes (committed reports the
	// outcome); monitors discard base Δ-sets here.
	onEnd func(committed bool)
}

// NewManager creates a manager subscribed to the store's event stream.
func NewManager(store *storage.Store) *Manager {
	m := &Manager{store: store}
	store.Subscribe(m.observe)
	return m
}

// SetHooks installs the monitor callbacks. Any hook may be nil.
func (m *Manager) SetHooks(onEvent func(storage.Event), onCommit func() error, onEnd func(committed bool)) {
	m.onEvent = onEvent
	m.onCommit = onCommit
	m.onEnd = onEnd
}

func (m *Manager) observe(e storage.Event) {
	if m.active && !m.inRollback {
		m.undo = append(m.undo, e)
	}
	if m.onEvent != nil {
		m.onEvent(e)
	}
}

// Begin starts a transaction.
func (m *Manager) Begin() error {
	if m.active {
		return fmt.Errorf("transaction already active")
	}
	m.active = true
	m.undo = m.undo[:0]
	return nil
}

// InTransaction reports whether a transaction is active.
func (m *Manager) InTransaction() bool { return m.active }

// UpdateCount returns the number of physical events logged so far in the
// active transaction.
func (m *Manager) UpdateCount() int { return len(m.undo) }

// Commit runs the deferred check phase and finishes the transaction.
// If the check phase fails, the transaction is rolled back and the
// check-phase error returned.
func (m *Manager) Commit() error {
	if !m.active {
		return fmt.Errorf("no active transaction")
	}
	if m.onCommit != nil {
		if err := m.onCommit(); err != nil {
			rbErr := m.Rollback()
			if rbErr != nil {
				return fmt.Errorf("check phase failed: %w (rollback also failed: %v)", err, rbErr)
			}
			return fmt.Errorf("check phase failed, transaction rolled back: %w", err)
		}
	}
	m.active = false
	m.undo = m.undo[:0]
	if m.onEnd != nil {
		m.onEnd(true)
	}
	return nil
}

// Rollback undoes every update of the active transaction by replaying
// the undo log inverted, in reverse order.
func (m *Manager) Rollback() error {
	if !m.active {
		return fmt.Errorf("no active transaction")
	}
	m.inRollback = true
	var firstErr error
	for i := len(m.undo) - 1; i >= 0; i-- {
		e := m.undo[i]
		var err error
		if e.Kind == storage.InsertEvent {
			_, err = m.store.Delete(e.Relation, e.Tuple)
		} else {
			_, err = m.store.Insert(e.Relation, e.Tuple)
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("undo %s: %w", e, err)
		}
	}
	m.inRollback = false
	m.active = false
	m.undo = m.undo[:0]
	if m.onEnd != nil {
		m.onEnd(false)
	}
	return firstErr
}
