package txn

import (
	"errors"
	"strings"
	"testing"

	"partdiff/internal/faultinject"
)

// Regression: a panicking check phase must not leave the manager
// active with a stale undo log — the transaction is finalized (rolled
// back) and the panic surfaces as an error.
func TestCommitPanickingCheckPhaseFinalizes(t *testing.T) {
	st, m := setup(t)
	var endedCommitted *bool
	m.SetHooks(nil,
		func() error { panic("procedure exploded") },
		func(committed bool) { endedCommitted = &committed })
	m.Begin()
	st.Insert("f", tup(1, 10))
	err := m.Commit()
	if err == nil {
		t.Fatal("commit should surface the panic as an error")
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Errorf("error should mention the panic: %v", err)
	}
	if m.InTransaction() {
		t.Error("manager left active after panicking check phase")
	}
	if m.UpdateCount() != 0 {
		t.Error("stale undo log after panicking check phase")
	}
	rel, _ := st.Relation("f")
	if rel.Len() != 0 {
		t.Errorf("store not rolled back: %s", rel.Rows())
	}
	if endedCommitted == nil || *endedCommitted {
		t.Error("onEnd should report rollback")
	}
	// The manager must be reusable: the next transaction is clean.
	if err := m.Begin(); err != nil {
		t.Fatalf("Begin after recovered panic: %v", err)
	}
	st.Insert("f", tup(2, 20))
	m.SetHooks(nil, nil, nil)
	if err := m.Commit(); err != nil {
		t.Fatalf("Commit after recovered panic: %v", err)
	}
}

// Regression: Rollback used to swallow all but the first undo error
// and still report the transaction as cleanly ended. Any undo failure
// now surfaces as corruption and poisons the manager.
func TestRollbackUndoFailurePoisons(t *testing.T) {
	st, m := setup(t)
	inj := faultinject.New()
	st.SetInjector(inj)
	m.Begin()
	st.Insert("f", tup(1, 10))
	st.Insert("f", tup(2, 20))
	// The two undos replay as deletions; fail both.
	inj.Arm(faultinject.StoreDelete, 0, faultinject.Error)
	inj.Arm(faultinject.StoreDelete, 1, faultinject.Error)
	err := m.Rollback()
	if err == nil {
		t.Fatal("rollback with failing undos should error")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("undo failure should wrap ErrCorrupt, got: %v", err)
	}
	// Both undo failures are reported, not just the first.
	if got := strings.Count(err.Error(), "undo "); got != 2 {
		t.Errorf("want both undo errors surfaced, got %d in: %v", got, err)
	}
	// The manager is poisoned: every subsequent call returns ErrCorrupt.
	if err := m.Begin(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Begin on poisoned manager: %v", err)
	}
	if err := m.Commit(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Commit on poisoned manager: %v", err)
	}
	if err := m.Rollback(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Rollback on poisoned manager: %v", err)
	}
	if m.Corrupt() == nil {
		t.Error("Corrupt() should report the sticky error")
	}
}

// A panic during undo replay (injected at the storage layer) must also
// finalize the transaction and poison the manager instead of unwinding.
func TestRollbackUndoPanicPoisons(t *testing.T) {
	st, m := setup(t)
	inj := faultinject.New()
	st.SetInjector(inj)
	m.Begin()
	st.Insert("f", tup(1, 10))
	inj.Arm(faultinject.StoreDelete, 0, faultinject.Panic)
	err := m.Rollback()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("panicking undo should poison: %v", err)
	}
	if m.InTransaction() {
		t.Error("manager left active after panicking undo")
	}
}

// A failing check phase whose rollback also fails reports both and
// poisons the manager.
func TestCommitRollbackFailureReportsCorruption(t *testing.T) {
	st, m := setup(t)
	inj := faultinject.New()
	st.SetInjector(inj)
	m.SetHooks(nil, func() error { return errors.New("condition violated") }, nil)
	m.Begin()
	st.Insert("f", tup(1, 10))
	inj.Arm(faultinject.StoreDelete, 0, faultinject.Error)
	err := m.Commit()
	if err == nil {
		t.Fatal("expected failure")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("double failure should wrap ErrCorrupt: %v", err)
	}
	if !strings.Contains(err.Error(), "condition violated") {
		t.Errorf("original check-phase error lost: %v", err)
	}
	if err := m.Begin(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("manager should be poisoned: %v", err)
	}
}

// An injected storage fault during the forward phase is a plain
// statement error; the transaction rolls back cleanly (the one-shot
// fault does not re-fire during undo replay) and nothing is poisoned.
func TestForwardFaultRollsBackClean(t *testing.T) {
	st, m := setup(t)
	inj := faultinject.New()
	st.SetInjector(inj)
	st.Insert("f", tup(1, 10))
	m.Begin()
	st.Insert("f", tup(2, 20))
	inj.Arm(faultinject.StoreInsert, 0, faultinject.Error)
	if _, err := st.Insert("f", tup(3, 30)); err == nil {
		t.Fatal("injected fault should surface")
	}
	if err := m.Rollback(); err != nil {
		t.Fatalf("rollback after forward fault: %v", err)
	}
	rel, _ := st.Relation("f")
	if rel.Len() != 1 || !rel.Contains(tup(1, 10)) {
		t.Errorf("state after rollback: %s", rel.Rows())
	}
	if err := st.CheckInvariants(); err != nil {
		t.Errorf("invariants after rollback: %v", err)
	}
	if m.Corrupt() != nil {
		t.Error("clean rollback must not poison")
	}
}
