package obs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EventType classifies bus events. The taxonomy follows the
// event/action/state split: production-rule firings, state-change (Δ)
// summaries, transaction lifecycle, and system lifecycle are distinct
// kinds a consumer subscribes to independently.
type EventType string

const (
	// EventRuleFiring is one rule activation firing during a check
	// phase: rule + activation names, the check round, the triggering
	// Δ-entries and the condition bindings (instances) it fired for.
	EventRuleFiring EventType = "rule_firing"
	// EventDelta is a per-commit Δ-set summary: for each propagation
	// wave (check round), the net insert/delete counts per relation.
	EventDelta EventType = "delta"
	// EventTxn is transaction lifecycle: Op is one of begin, commit,
	// rollback, conflict.
	EventTxn EventType = "txn"
	// EventSystem is system lifecycle: Op is one of checkpoint,
	// recovery, fsync_stall, capability_violation, slow_commit,
	// strategy_switch, diagnostic_bundle.
	EventSystem EventType = "system"
	// EventGap is synthesized per subscriber, never published on the
	// bus: it marks a point where Missed events were dropped (slow
	// consumer) or evicted from the resume ring before a reconnect.
	EventGap EventType = "gap"
)

// EventTypes lists the publishable types (excludes the synthetic gap).
var EventTypes = []EventType{EventRuleFiring, EventDelta, EventTxn, EventSystem}

// ParseEventTypes parses a comma-separated filter ("rule_firing,txn").
// An empty string means no filter (all types). Unknown names error.
func ParseEventTypes(s string) ([]EventType, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []EventType
	for _, part := range strings.Split(s, ",") {
		name := EventType(strings.TrimSpace(part))
		if name == "" {
			continue
		}
		ok := false
		for _, t := range EventTypes {
			if name == t {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("obs: unknown event type %q (want one of rule_firing, delta, txn, system)", name)
		}
		out = append(out, name)
	}
	return out, nil
}

// DeltaEntry is one relation's contribution to a Δ summary or a rule
// firing's trigger set.
type DeltaEntry struct {
	Relation string `json:"relation"`
	Plus     int    `json:"plus,omitempty"`
	Minus    int    `json:"minus,omitempty"`
}

// Event is one bus event. It is a flat union: the populated fields
// depend on Type (see the EventType docs). IDs are monotonically
// increasing per bus and assigned at publish time, so they double as
// SSE event IDs for Last-Event-ID resume.
type Event struct {
	ID        uint64    `json:"id,omitempty"`
	Type      EventType `json:"type"`
	Time      time.Time `json:"time"`
	CommitSeq uint64    `json:"commit_seq,omitempty"`

	// Op is the specific kind within the type: txn events use
	// begin|commit|rollback|conflict, system events use
	// checkpoint|recovery|fsync_stall|capability_violation|slow_commit|
	// strategy_switch|diagnostic_bundle.
	Op string `json:"op,omitempty"`

	// Rule firing payload.
	Rule       string   `json:"rule,omitempty"`
	Activation string   `json:"activation,omitempty"`
	Round      int      `json:"round,omitempty"`
	Instances  []string `json:"instances,omitempty"`

	// Δ payload: triggering differentials for a firing, or the
	// per-relation net change for a delta summary (Round = wave).
	Deltas []DeltaEntry `json:"deltas,omitempty"`

	// Txn commit payload: user write-set size and rule actions run.
	Writes int `json:"writes,omitempty"`
	Fired  int `json:"fired,omitempty"`

	// Free-form detail for system events (error text, paths, …).
	Detail string `json:"detail,omitempty"`

	// Duration for fsync_stall / checkpoint; per-phase timings for
	// slow_commit, in milliseconds.
	Ms        float64 `json:"ms,omitempty"`
	CheckMs   float64 `json:"check_ms,omitempty"`
	PersistMs float64 `json:"persist_ms,omitempty"`
	AckMs     float64 `json:"ack_ms,omitempty"`

	// Gap payload: how many events were lost (gap events only).
	Missed uint64 `json:"missed,omitempty"`
}

// String renders a compact single-line form for shells and logs.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d %s", e.ID, e.Type)
	if e.Op != "" {
		fmt.Fprintf(&b, "/%s", e.Op)
	}
	if e.CommitSeq != 0 {
		fmt.Fprintf(&b, " seq=%d", e.CommitSeq)
	}
	switch e.Type {
	case EventRuleFiring:
		fmt.Fprintf(&b, " rule=%s round=%d instances=%d", e.Rule, e.Round, len(e.Instances))
	case EventDelta:
		fmt.Fprintf(&b, " round=%d", e.Round)
		for _, d := range e.Deltas {
			fmt.Fprintf(&b, " %s(+%d,-%d)", d.Relation, d.Plus, d.Minus)
		}
	case EventTxn:
		if e.Op == "commit" {
			fmt.Fprintf(&b, " writes=%d fired=%d", e.Writes, e.Fired)
		}
	case EventGap:
		fmt.Fprintf(&b, " missed=%d", e.Missed)
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " detail=%q", e.Detail)
	}
	if e.Ms != 0 {
		fmt.Fprintf(&b, " ms=%.1f", e.Ms)
	}
	return b.String()
}

// JSON renders the event as a single JSON object (one JSONL line,
// without trailing newline).
func (e Event) JSON() []byte {
	b, err := json.Marshal(e)
	if err != nil {
		// Event is a plain struct of marshalable fields; this is
		// unreachable, but never panic an emitter.
		b = []byte(fmt.Sprintf(`{"type":"system","op":"marshal_error","detail":%q}`, err))
	}
	return b
}

// ErrSubscriptionClosed is returned by Next once a subscription has
// been closed and its buffer drained.
var ErrSubscriptionClosed = errors.New("obs: subscription closed")

// DefaultRingSize is the central resume ring capacity.
const DefaultRingSize = 4096

// DefaultSubBuffer is the per-subscriber ring capacity.
const DefaultSubBuffer = 256

// Bus is a bounded, lock-light event bus. Publishers append typed
// events; each subscriber has its own bounded ring buffer with a
// drop-oldest overflow policy (a slow consumer loses its oldest
// undelivered events, never blocks a publisher, and observes a
// synthetic gap event accounting for the loss). A central ring of the
// most recent events supports Last-Event-ID resume for reconnecting
// SSE clients.
//
// The bus starts inactive: every publish/stage call is a single atomic
// load until Arm (or the first Subscribe) activates it, which keeps the
// zero-subscriber cost on the commit path negligible. Once armed it
// stays armed — events keep flowing into the resume ring between
// subscriber reconnects so resume works across disconnects.
//
// Transactional staging: events describing a transaction's work (rule
// firings, Δ summaries) are staged during the check phase and only
// published by CommitStaged after the commit point, or dropped by
// DiscardStaged on rollback — subscribers never observe events from
// rolled-back work. Writers are serialized by the session gate, so at
// most one transaction stages at a time and publication order is
// commit-sequence order.
type Bus struct {
	active atomic.Bool

	// rec, when set, mirrors every published event into the flight
	// recorder's event ring (obs.New wires the bundle's recorder here).
	rec atomic.Pointer[Recorder]

	mu     sync.Mutex
	seq    uint64
	ring   []Event // fixed capacity circular buffer
	head   int     // index of the oldest entry
	count  int
	subs   []*Subscription
	staged []Event

	// typeHist records each published event's type as a compact code,
	// indexed by (ID-1) mod len, over a window several times longer than
	// the event ring. A filtered resume consults it to count only
	// filter-matching missed events once the events themselves have been
	// evicted — a narrow subscription is not told it missed events its
	// filter would have excluded anyway. Beyond the history window the
	// count falls back to conservative (every evicted ID counts).
	typeHist []uint8

	published   *CounterVec
	dropped     *Counter
	discarded   *Counter
	subscribers *Gauge
	depth       *Gauge
	lag         *Gauge
}

// NewBus returns a bus whose resume ring holds ringSize events
// (DefaultRingSize when <= 0). The bus starts inactive.
func NewBus(ringSize int) *Bus {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	return &Bus{
		ring:     make([]Event, ringSize),
		typeHist: make([]uint8, 8*ringSize),
	}
}

// typeCode maps a publishable event type to its type-history code
// (0 = unknown, which resume counting treats conservatively).
func typeCode(t EventType) uint8 {
	switch t {
	case EventRuleFiring:
		return 1
	case EventDelta:
		return 2
	case EventTxn:
		return 3
	case EventSystem:
		return 4
	}
	return 0
}

// codeType is the inverse of typeCode ("" for unknown).
func codeType(c uint8) EventType {
	switch c {
	case 1:
		return EventRuleFiring
	case 2:
		return EventDelta
	case 3:
		return EventTxn
	case 4:
		return EventSystem
	}
	return ""
}

// bindMetrics registers the bus meters in r. Nil-safe on both sides.
func (b *Bus) bindMetrics(r *Registry) {
	if b == nil || r == nil {
		return
	}
	b.published = r.CounterVec("partdiff_events_published_total",
		"Events published on the bus, by type.", "type")
	b.dropped = r.Counter("partdiff_events_dropped_total",
		"Events evicted from subscriber buffers by the drop-oldest overflow policy.")
	b.discarded = r.Counter("partdiff_events_discarded_total",
		"Staged events discarded because their transaction rolled back.")
	b.subscribers = r.Gauge("partdiff_events_subscribers",
		"Currently attached bus subscribers.")
	b.depth = r.Gauge("partdiff_events_depth",
		"Largest subscriber queue depth at the last publish.")
	b.lag = r.Gauge("partdiff_events_lag",
		"Largest subscriber lag (events behind the bus head) at the last publish.")
}

// setRecorder attaches a flight recorder whose event ring mirrors
// every published event. Nil-safe on both sides.
func (b *Bus) setRecorder(r *Recorder) {
	if b != nil {
		b.rec.Store(r)
	}
}

// Active reports whether the bus has been armed. Emitters guard
// payload construction behind this so an inactive bus costs one atomic
// load.
func (b *Bus) Active() bool { return b != nil && b.active.Load() }

// Arm activates the bus: from now on published events are retained in
// the resume ring even with zero subscribers attached. Subscribe arms
// implicitly; servers arm at startup so pre-subscription history is
// resumable.
func (b *Bus) Arm() {
	if b != nil {
		b.active.Store(true)
	}
}

// Seq returns the ID of the most recently published event.
func (b *Bus) Seq() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// Publish assigns the next event ID and delivers e to the resume ring
// and every matching subscriber. Returns the assigned ID (0 when the
// bus is nil or inactive). Lifecycle and system events publish
// directly; transactional payload events go through Stage/CommitStaged.
func (b *Bus) Publish(e Event) uint64 {
	if !b.Active() {
		return 0
	}
	b.mu.Lock()
	id := b.publishLocked(e)
	b.mu.Unlock()
	return id
}

func (b *Bus) publishLocked(e Event) uint64 {
	b.seq++
	e.ID = b.seq
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	// Central resume ring: overwrite the oldest entry when full.
	if b.count == len(b.ring) {
		b.ring[b.head] = e
		b.head = (b.head + 1) % len(b.ring)
	} else {
		b.ring[(b.head+b.count)%len(b.ring)] = e
		b.count++
	}
	b.typeHist[int((e.ID-1)%uint64(len(b.typeHist)))] = typeCode(e.Type)
	if rec := b.rec.Load(); rec != nil {
		rec.noteEvent(e)
	}
	var maxDepth, maxLag int64
	for _, s := range b.subs {
		if s.matches(e.Type) {
			s.offer(e, b.dropped)
		} else {
			// A filtered-out event is not lag for this subscriber:
			// advance its skip watermark so the lag gauge measures only
			// deliverable events it is behind on. Without this, a narrow
			// subscription on a chatty bus reports ever-growing lag (and
			// previously, before filtering moved into the publish path,
			// such events also consumed its ring slots and caused
			// spurious gap accounting).
			s.skip(e.ID)
		}
		d, seen := s.queued()
		if d > maxDepth {
			maxDepth = d
		}
		if l := int64(b.seq - seen); l > maxLag {
			maxLag = l
		}
	}
	b.published.With(string(e.Type)).Inc()
	b.depth.Set(maxDepth)
	b.lag.Set(maxLag)
	return e.ID
}

// Stage buffers a transactional event for publication at the commit
// point. Staging happens during the check phase under the session's
// writer gate, so at most one transaction's events are staged at a
// time.
func (b *Bus) Stage(e Event) {
	if !b.Active() {
		return
	}
	b.mu.Lock()
	b.staged = append(b.staged, e)
	b.mu.Unlock()
}

// StagedLen returns the number of currently staged events.
func (b *Bus) StagedLen() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.staged)
}

// CommitStaged publishes every staged event, stamped with the
// transaction's commit sequence number, in staging order. Called after
// the commit point (ack) so subscribers only ever observe committed
// work, in commit-sequence order (writers are serialized).
// Returns the number of events published.
func (b *Bus) CommitStaged(commitSeq uint64) int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	n := len(b.staged)
	for _, e := range b.staged {
		e.CommitSeq = commitSeq
		b.publishLocked(e)
	}
	b.staged = b.staged[:0]
	b.mu.Unlock()
	return n
}

// DiscardStaged drops every staged event (transaction rolled back).
// Returns the number discarded.
func (b *Bus) DiscardStaged() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	n := len(b.staged)
	b.staged = b.staged[:0]
	b.mu.Unlock()
	b.discarded.Add(int64(n))
	return n
}

// Subscribe attaches a new live subscriber (no history replay). buf is
// the subscriber ring capacity (DefaultSubBuffer when <= 0); types
// filters delivery (empty = all types). Arms the bus.
func (b *Bus) Subscribe(buf int, types ...EventType) *Subscription {
	sub, _ := b.subscribe(buf, types, 0, false)
	return sub
}

// SubscribeFrom attaches a subscriber resuming after lastID: every
// ring-retained event with ID > lastID (matching the filter) is
// pre-loaded into the subscriber buffer, atomically with attachment,
// so no concurrently published event is missed or duplicated. missed
// reports how many events after lastID had already been evicted from
// the ring (0 when the full suffix was still available); the
// subscriber's first delivered event is a synthetic gap event when
// missed > 0. Arms the bus.
func (b *Bus) SubscribeFrom(lastID uint64, buf int, types ...EventType) (sub *Subscription, missed uint64) {
	return b.subscribe(buf, types, lastID, true)
}

func (b *Bus) subscribe(buf int, types []EventType, lastID uint64, replay bool) (*Subscription, uint64) {
	if b == nil {
		return nil, 0
	}
	b.Arm()
	if buf <= 0 {
		buf = DefaultSubBuffer
	}
	s := &Subscription{
		bus:    b,
		buf:    make([]Event, buf),
		notify: make(chan struct{}, 1),
	}
	if len(types) > 0 {
		s.filter = make(map[EventType]bool, len(types))
		for _, t := range types {
			s.filter[t] = true
		}
	}
	var missed uint64
	b.mu.Lock()
	if replay && lastID < b.seq {
		// Oldest resumable ID in the ring. Everything in (lastID,
		// oldest) is gone; everything in [max(oldest, lastID+1), seq]
		// replays into the subscriber buffer.
		oldest := b.seq - uint64(b.count) + 1
		if b.count == 0 {
			oldest = b.seq + 1
		}
		if lastID+1 < oldest {
			missed = b.countMissedLocked(lastID+1, oldest-1, s)
			s.lost += missed
			s.gapped += missed
		}
		for i := 0; i < b.count; i++ {
			e := b.ring[(b.head+i)%len(b.ring)]
			if e.ID > lastID && s.matches(e.Type) {
				s.offer(e, b.dropped)
			}
		}
	}
	b.subs = append(b.subs, s)
	b.subscribers.Set(int64(len(b.subs)))
	b.mu.Unlock()
	return s, missed
}

// countMissedLocked counts the evicted event IDs in [from, to] that
// subscriber s would actually have received: within the type-history
// window only filter-matching types count; beyond it every ID counts
// (conservative — better to report a possible gap than hide a real
// one). Caller holds b.mu.
func (b *Bus) countMissedLocked(from, to uint64, s *Subscription) uint64 {
	if from > to {
		return 0
	}
	if s.filter == nil {
		return to - from + 1
	}
	var missed uint64
	histLen := uint64(len(b.typeHist))
	histOldest := uint64(1)
	if b.seq > histLen {
		histOldest = b.seq - histLen + 1
	}
	if from < histOldest {
		missed += histOldest - from
		from = histOldest
	}
	for id := from; id <= to; id++ {
		c := b.typeHist[int((id-1)%histLen)]
		if c == 0 || s.matches(codeType(c)) {
			missed++
		}
	}
	return missed
}

// remove detaches s from the bus subscriber list.
func (b *Bus) remove(s *Subscription) {
	b.mu.Lock()
	for i, have := range b.subs {
		if have == s {
			b.subs = append(b.subs[:i], b.subs[i+1:]...)
			break
		}
	}
	b.subscribers.Set(int64(len(b.subs)))
	b.mu.Unlock()
}

// Subscription is one subscriber's bounded event queue. Safe for one
// consumer goroutine; producers are the bus.
type Subscription struct {
	bus    *Bus
	filter map[EventType]bool // nil = all types
	notify chan struct{}      // capacity 1: wake a blocked Next

	mu     sync.Mutex
	buf    []Event // fixed capacity circular buffer
	head   int
	count  int
	seen   uint64 // highest event ID handed to the consumer
	skipTo uint64 // highest event ID the filter excluded (not lag)
	lost   uint64 // cumulative losses: drop-oldest evictions + resume ring misses
	gapped uint64 // losses not yet surfaced as a gap event
	closed bool
}

func (s *Subscription) matches(t EventType) bool {
	return s.filter == nil || s.filter[t]
}

// offer enqueues e, evicting the oldest buffered event when full
// (drop-oldest). Called with the bus lock held.
func (s *Subscription) offer(e Event, droppedMeter *Counter) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.count == len(s.buf) {
		s.head = (s.head + 1) % len(s.buf)
		s.count--
		s.lost++
		s.gapped++
		droppedMeter.Inc()
	}
	s.buf[(s.head+s.count)%len(s.buf)] = e
	s.count++
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// skip records that the event with the given ID was excluded by the
// subscriber's filter, so lag accounting does not count it as
// undelivered. Called with the bus lock held.
func (s *Subscription) skip(id uint64) {
	s.mu.Lock()
	if id > s.skipTo {
		s.skipTo = id
	}
	s.mu.Unlock()
}

// queued returns (buffered count, highest delivered, buffered or
// filter-skipped ID) — the second value is the subscriber's effective
// position on the bus for lag purposes.
func (s *Subscription) queued() (int64, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := s.seen
	if s.count > 0 {
		if last := s.buf[(s.head+s.count-1)%len(s.buf)].ID; last > seen {
			seen = last
		}
	}
	if s.skipTo > seen {
		seen = s.skipTo
	}
	return int64(s.count), seen
}

// Dropped returns the cumulative number of events this subscriber lost
// (drop-oldest evictions plus ring-evicted history at resume).
func (s *Subscription) Dropped() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lost
}

// TryNext pops the next event without blocking. A pending loss is
// surfaced first as a synthetic gap event.
func (s *Subscription) TryNext() (Event, bool) {
	if s == nil {
		return Event{}, false
	}
	s.mu.Lock()
	if s.gapped > 0 {
		n := s.gapped
		s.gapped = 0
		s.mu.Unlock()
		return Event{Type: EventGap, Time: time.Now(), Missed: n}, true
	}
	if s.count == 0 {
		s.mu.Unlock()
		return Event{}, false
	}
	e := s.buf[s.head]
	s.head = (s.head + 1) % len(s.buf)
	s.count--
	if e.ID > s.seen {
		s.seen = e.ID
	}
	s.mu.Unlock()
	return e, true
}

// Next blocks until an event is available, the context is done, or the
// subscription is closed and drained. Losses (slow-consumer drops or
// ring eviction at resume) surface as a synthetic gap event ahead of
// the first event that follows them.
func (s *Subscription) Next(ctx context.Context) (Event, error) {
	if s == nil {
		return Event{}, ErrSubscriptionClosed
	}
	for {
		if e, ok := s.TryNext(); ok {
			return e, nil
		}
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return Event{}, ErrSubscriptionClosed
		}
		select {
		case <-ctx.Done():
			return Event{}, ctx.Err()
		case <-s.notify:
		}
	}
}

// Close detaches the subscription from the bus. A consumer blocked in
// Next is woken; buffered events remain drainable via TryNext.
func (s *Subscription) Close() {
	if s == nil {
		return
	}
	s.bus.remove(s)
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		select {
		case s.notify <- struct{}{}:
		default:
		}
	}
}
