package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Profiler is the propagation profiler's accounting store: one entry
// per (view, partial differential), accumulated across propagations and
// network rebuilds — the registry pattern applied to per-differential
// cost attribution. It answers the question PR 3's aggregate counters
// cannot: where does the remaining check-phase work go, and which
// differentials run without producing any Δ (the paper's wasted-work
// signal — a differential that executed but emitted an empty Δ did cost
// evaluation time yet moved no change upward).
//
// The profiler is always available but disabled by default: when
// disabled, instrumented call sites pay one atomic load. When enabled,
// per-execution counts (executions, seed Δ-cardinality, produced
// Δ-cardinality, tuples scanned, zero-effect executions) are recorded
// unconditionally with a handful of atomic adds, while wall-clock
// timing — the only part that needs time.Now — is sampled 1-in-N
// (SetSampleEvery; default every execution) and scaled up in reports.
//
// All entry fields are atomics, so a report can be rendered from
// another goroutine while a propagation is running.
type Profiler struct {
	enabled atomic.Bool
	sampleN atomic.Int64
	seq     atomic.Uint64

	// propagations counts profiled Propagate runs (the denominator the
	// report header shows).
	propagations atomic.Int64

	mu      sync.RWMutex
	entries map[string]*DiffProf
	order   []*DiffProf
}

// NewProfiler returns a disabled profiler with sampling rate 1 (time
// every execution once enabled).
func NewProfiler() *Profiler {
	p := &Profiler{entries: map[string]*DiffProf{}}
	p.sampleN.Store(1)
	return p
}

// Enabled reports whether profiling is on. Nil-safe (a nil *Profiler is
// permanently disabled), so instrumented code needs no nil checks.
func (p *Profiler) Enabled() bool {
	if p == nil {
		return false
	}
	return p.enabled.Load()
}

// Enable turns profiling on or off. Accumulated entries are kept when
// profiling is turned off (the report remains available); use Reset to
// discard them.
func (p *Profiler) Enable(on bool) {
	if p != nil {
		p.enabled.Store(on)
	}
}

// SetSampleEvery makes only one in every n executions wall-clock timed
// (n <= 1 times every execution). Counts are always exact; timings are
// scaled by the sampling ratio in reports.
func (p *Profiler) SetSampleEvery(n int) {
	if p == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	p.sampleN.Store(int64(n))
}

// SampleTick reports whether the next execution should be timed.
func (p *Profiler) SampleTick() bool {
	if p == nil {
		return false
	}
	n := p.sampleN.Load()
	if n <= 1 {
		return true
	}
	return p.seq.Add(1)%uint64(n) == 0
}

// PropagationTick counts one profiled propagation run.
func (p *Profiler) PropagationTick() {
	if p != nil {
		p.propagations.Add(1)
	}
}

// Propagations returns the number of profiled propagation runs.
func (p *Profiler) Propagations() int64 {
	if p == nil {
		return 0
	}
	return p.propagations.Load()
}

// Reset discards all accumulated entries and the propagation count (the
// enabled flag and sampling rate are kept).
func (p *Profiler) Reset() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.entries = map[string]*DiffProf{}
	p.order = nil
	p.mu.Unlock()
	p.propagations.Store(0)
}

// DiffProf accumulates the cost of one partial differential (or one
// re-evaluated node, whose influent is "*"). All counters are atomics;
// a consistent-enough snapshot can be taken while propagation runs.
type DiffProf struct {
	View         string // the affected view node
	Differential string // paper-notation name, e.g. "Δcnd/Δ+quantity"
	Influent     string
	Trigger      string // triggering sign ("+", "−", or "*" for re-evaluation)
	Effect       string // effect sign

	execs      atomic.Int64
	zeroEffect atomic.Int64
	seedTuples atomic.Int64
	produced   atomic.Int64
	scanned    atomic.Int64
	timeNs     atomic.Int64
	timed      atomic.Int64
}

// Record accounts one execution: the seed Δ-cardinality it was
// triggered with, the Δ-cardinality it produced, the tuples the
// evaluator scanned on its behalf, and — when this execution was
// sampled — its wall-clock duration. An execution that produced no
// tuples is a zero-effect execution. Record performs only atomic adds,
// in an order that keeps invariants (zeroEffect <= execs, timed <=
// execs) monotone even if the run is abandoned between executions.
func (d *DiffProf) Record(seed, produced, scanned int64, timed bool, dt time.Duration) {
	d.execs.Add(1)
	d.seedTuples.Add(seed)
	d.produced.Add(produced)
	d.scanned.Add(scanned)
	if produced == 0 {
		d.zeroEffect.Add(1)
	}
	if timed {
		d.timeNs.Add(int64(dt))
		d.timed.Add(1)
	}
}

// Differential returns (creating on first use) the entry for one
// partial differential of a view. The caller should cache the pointer
// (the propagation network keeps it on the edge) — the map lookup here
// is only paid once per differential per network build.
func (p *Profiler) Differential(view, name, influent, trigger, effect string) *DiffProf {
	if p == nil {
		return nil
	}
	key := view + "\x00" + name
	p.mu.RLock()
	d := p.entries[key]
	p.mu.RUnlock()
	if d != nil {
		return d
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if d = p.entries[key]; d != nil {
		return d
	}
	d = &DiffProf{View: view, Differential: name, Influent: influent, Trigger: trigger, Effect: effect}
	p.entries[key] = d
	p.order = append(p.order, d)
	return d
}

// ProfPoint is one flattened entry in a profiler snapshot.
type ProfPoint struct {
	View         string
	Differential string
	Influent     string
	Trigger      string
	Effect       string

	Execs      int64
	ZeroEffect int64
	SeedTuples int64 // Δ-cardinality in (sum over executions)
	Produced   int64 // Δ-cardinality out
	Scanned    int64 // tuples the evaluator scanned
	TimeNs     int64 // wall time over the Timed sampled executions
	Timed      int64
}

// EstTimeNs returns the estimated total wall time: the sampled time
// scaled by the sampling ratio (TimeNs when every execution was timed).
func (pt ProfPoint) EstTimeNs() int64 {
	if pt.Timed == 0 {
		return 0
	}
	return pt.TimeNs * pt.Execs / pt.Timed
}

// Snapshot returns a copy of every entry, ranked most expensive first.
// The rank key is deterministic for a deterministic workload — tuples
// scanned (the dominant cost driver), then produced tuples, executions
// and name — so reports are golden-testable; wall time is shown for
// reference but never used for ordering.
func (p *Profiler) Snapshot() []ProfPoint {
	if p == nil {
		return nil
	}
	p.mu.RLock()
	out := make([]ProfPoint, 0, len(p.order))
	for _, d := range p.order {
		out = append(out, ProfPoint{
			View: d.View, Differential: d.Differential, Influent: d.Influent,
			Trigger: d.Trigger, Effect: d.Effect,
			Execs: d.execs.Load(), ZeroEffect: d.zeroEffect.Load(),
			SeedTuples: d.seedTuples.Load(), Produced: d.produced.Load(),
			Scanned: d.scanned.Load(), TimeNs: d.timeNs.Load(), Timed: d.timed.Load(),
		})
	}
	p.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Scanned != b.Scanned {
			return a.Scanned > b.Scanned
		}
		if a.Produced != b.Produced {
			return a.Produced > b.Produced
		}
		if a.Execs != b.Execs {
			return a.Execs > b.Execs
		}
		if a.View != b.View {
			return a.View < b.View
		}
		return a.Differential < b.Differential
	})
	return out
}

// WriteReport renders the profile as a stable text table: one row per
// differential ranked most expensive first (see Snapshot for the rank
// key), a totals row, and a per-source zero-effect summary. resolve
// maps a view node name to its attribution label (the rules layer maps
// condition functions to their rule); nil uses the view name itself.
// strategy labels each view's current maintenance strategy ("count",
// "incr", "recomp"); nil omits the column entirely, an empty label
// renders as "-". topK <= 0 means all rows.
func (p *Profiler) WriteReport(w io.Writer, topK int, resolve func(view string) string, strategy func(view string) string) error {
	if resolve == nil {
		resolve = func(v string) string { return v }
	}
	stratCol := func(view string) string {
		if strategy == nil {
			return ""
		}
		if s := strategy(view); s != "" {
			return fmt.Sprintf(" %-8s", s)
		}
		return fmt.Sprintf(" %-8s", "-")
	}
	stratHead, stratBlank := "", ""
	if strategy != nil {
		stratHead = fmt.Sprintf(" %-8s", "strategy")
		stratBlank = fmt.Sprintf(" %-8s", "")
	}
	snap := p.Snapshot()
	var totExecs, totZero, totSeed, totProd, totScan, totTime int64
	for _, pt := range snap {
		totExecs += pt.Execs
		totZero += pt.ZeroEffect
		totSeed += pt.SeedTuples
		totProd += pt.Produced
		totScan += pt.Scanned
		totTime += pt.EstTimeNs()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "propagation profile — %d profiled propagation(s), %d differential execution(s), %d zero-effect (%s)\n",
		p.Propagations(), totExecs, totZero, pct(totZero, totExecs))
	if len(snap) == 0 {
		b.WriteString("no differential executions profiled (\\profile on, then run transactions)\n")
		_, err := io.WriteString(w, b.String())
		return err
	}
	shown := snap
	if topK > 0 && topK < len(shown) {
		shown = shown[:topK]
	}
	fmt.Fprintf(&b, "%4s  %-22s %-34s%s %7s %6s %7s %7s %9s %10s\n",
		"rank", "source", "differential", stratHead, "execs", "zero", "Δin", "Δout", "scanned", "time")
	for i, pt := range shown {
		fmt.Fprintf(&b, "%4d  %-22s %-34s%s %7d %6d %7d %7d %9d %10s\n",
			i+1, resolve(pt.View), pt.Differential, stratCol(pt.View),
			pt.Execs, pt.ZeroEffect, pt.SeedTuples, pt.Produced, pt.Scanned,
			fmtNs(pt.EstTimeNs(), pt.Timed))
	}
	if len(shown) < len(snap) {
		fmt.Fprintf(&b, "      … %d more differential(s); \\profile report %d to widen\n", len(snap)-len(shown), len(snap))
	}
	fmt.Fprintf(&b, "%4s  %-22s %-34s%s %7d %6d %7d %7d %9d %10s\n",
		"", "total", "", stratBlank, totExecs, totZero, totSeed, totProd, totScan, fmtNs(totTime, totExecs))

	// Zero-effect executions per source (per rule once resolved): the
	// paper's wasted-work signal, aggregated where action can be taken.
	type srcAgg struct {
		execs, zero int64
	}
	bySrc := map[string]*srcAgg{}
	var srcOrder []string
	for _, pt := range snap {
		s := resolve(pt.View)
		a := bySrc[s]
		if a == nil {
			a = &srcAgg{}
			bySrc[s] = a
			srcOrder = append(srcOrder, s)
		}
		a.execs += pt.Execs
		a.zero += pt.ZeroEffect
	}
	sort.Strings(srcOrder)
	b.WriteString("zero-effect executions by source:\n")
	for _, s := range srcOrder {
		a := bySrc[s]
		fmt.Fprintf(&b, "  %-22s %d of %d (%s)\n", s, a.zero, a.execs, pct(a.zero, a.execs))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// pct renders num/den as a percentage ("0.0%" when den is 0).
func pct(num, den int64) string {
	if den == 0 {
		return "0.0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}

// fmtNs renders an estimated duration, "-" when nothing was timed.
func fmtNs(ns, timed int64) string {
	if timed == 0 {
		return "-"
	}
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
