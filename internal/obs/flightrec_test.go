package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRecRingWrap(t *testing.T) {
	r := newRecRing[int](4)
	if got := r.snapshot(); len(got) != 0 {
		t.Fatalf("empty ring snapshot = %v", got)
	}
	for i := 1; i <= 3; i++ {
		r.push(i)
	}
	if got := r.snapshot(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("partial ring snapshot = %v", got)
	}
	for i := 4; i <= 10; i++ {
		r.push(i)
	}
	got := r.snapshot()
	if len(got) != 4 {
		t.Fatalf("full ring holds %d entries, want 4", len(got))
	}
	for i, want := range []int{7, 8, 9, 10} {
		if got[i] != want {
			t.Fatalf("wrapped ring snapshot = %v, want [7 8 9 10]", got)
		}
	}
}

func TestRecorderDisarmedCapturesNothing(t *testing.T) {
	o := New()
	r := o.Flight
	r.RecordWave(WaveRecord{Executed: 1})
	r.CommitEnd(r.CommitBegin(), CommitRecord{Outcome: "committed"})
	r.RecordFsync("fsync", time.Millisecond)
	r.RecordChoice("v", "recompute", "")
	if r.Trigger(TrigSlowCommit, "x") {
		t.Fatal("disarmed Trigger scheduled a bundle")
	}
	b := r.BundleNow("", "check")
	if len(b.Waves)+len(b.Commits)+len(b.Fsyncs)+len(b.Choices)+len(b.Events) != 0 {
		t.Fatalf("disarmed recorder captured records: %+v", b.Records)
	}
}

func TestRecorderWindowOnlyMode(t *testing.T) {
	o := New()
	r := o.Flight
	r.Arm() // no directory: capture, but no bundles
	defer r.Close()
	r.RecordWave(WaveRecord{Wave: 1, Executed: 2})
	if r.Trigger(TrigSlowCommit, "slow") {
		t.Fatal("Trigger scheduled a bundle with no directory configured")
	}
	var rep bytes.Buffer
	if err := r.WriteReport(&rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.String(), TrigSlowCommit) {
		t.Fatalf("report does not count the suppressed trigger:\n%s", rep.String())
	}
	if b := r.BundleNow("", "check"); len(b.Waves) != 1 {
		t.Fatalf("window-only mode lost the wave record: %+v", b.Records)
	}
}

func TestTriggerCooldownDedup(t *testing.T) {
	o := New()
	r := o.Flight
	dir := t.TempDir()
	r.SetDir(dir)
	r.SetCooldown(time.Hour)
	r.Arm()
	if !r.Trigger(TrigFsyncStall, "first") {
		t.Fatal("first trigger did not schedule a bundle")
	}
	for i := 0; i < 5; i++ {
		if r.Trigger(TrigFsyncStall, "again") {
			t.Fatal("trigger inside the cooldown scheduled a bundle")
		}
	}
	// A different kind is deduplicated independently.
	if !r.Trigger(TrigCorruption, "other kind") {
		t.Fatal("different trigger kind was blocked by an unrelated cooldown")
	}
	r.Close() // drains the write queue
	infos, err := r.ListBundles()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("got %d bundles, want exactly 2 (one per kind): %+v", len(infos), infos)
	}
	if infos[0].Trigger != TrigFsyncStall || infos[1].Trigger != TrigCorruption {
		t.Fatalf("bundle triggers = %s, %s", infos[0].Trigger, infos[1].Trigger)
	}
}

// decodeStrict unmarshals data into v rejecting unknown fields — the
// bundle schema check.
func decodeStrict(t *testing.T, data []byte, v any) {
	t.Helper()
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		t.Fatalf("strict decode: %v\n%s", err, data)
	}
}

func TestDumpWritesCompleteBundle(t *testing.T) {
	o := New()
	r := o.Flight
	dir := t.TempDir()
	r.SetDir(dir)
	r.Arm()
	defer r.Close()
	o.Bus.Arm()

	r.RecordWave(WaveRecord{Wave: 1, Executed: 3, ZeroEffect: 1, DeltaPlus: 2, Front: 5})
	tok := r.CommitBegin()
	r.NoteGateWait(2 * time.Millisecond)
	r.CommitEnd(tok, CommitRecord{Outcome: "committed", CheckMs: 1.5, Writes: 4})
	r.RecordFsync("fsync", 3*time.Millisecond)
	r.RecordChoice("expensive_view", "recompute", "cost flipped")
	o.Bus.Publish(Event{Type: EventSystem, Op: "checkpoint", Detail: "test"})
	r.AddSource(func(add func(string, []byte)) { add("extra.txt", []byte("hello")) })

	path, err := r.Dump()
	if err != nil {
		t.Fatal(err)
	}

	man, err := os.ReadFile(filepath.Join(path, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m Manifest
	decodeStrict(t, man, &m)
	if m.Format != BundleFormat || m.Trigger != TrigManual {
		t.Fatalf("manifest = %+v", m)
	}
	if m.Records["waves"] != 1 || m.Records["commits"] != 1 || m.Records["fsyncs"] != 1 ||
		m.Records["choices"] != 1 || m.Records["events"] != 1 {
		t.Fatalf("manifest records = %v", m.Records)
	}
	for _, f := range []string{"recorder.jsonl", "metrics.json", "goroutines.txt", "extra.txt", "manifest.json"} {
		found := false
		for _, have := range m.Files {
			if have == f {
				found = true
			}
		}
		if !found {
			t.Fatalf("manifest files %v missing %s", m.Files, f)
		}
		if _, err := os.Stat(filepath.Join(path, f)); err != nil {
			t.Fatalf("listed file missing on disk: %v", err)
		}
	}

	// Every recorder.jsonl line is a kind-tagged record with no unknown
	// fields, and the commit carries its gate-wait attribution.
	recData, err := os.ReadFile(filepath.Join(path, "recorder.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	sc := bufio.NewScanner(bytes.NewReader(recData))
	for sc.Scan() {
		var line recLine
		decodeStrict(t, sc.Bytes(), &line)
		kinds[line.Kind]++
		if line.Kind == "commit" {
			if line.Commit == nil || line.Commit.GateWaitMs < 1.9 {
				t.Fatalf("commit line lost the gate wait: %+v", line.Commit)
			}
		}
	}
	for _, k := range []string{"wave", "commit", "fsync", "choice", "event"} {
		if kinds[k] != 1 {
			t.Fatalf("recorder.jsonl kinds = %v, want one of each", kinds)
		}
	}

	var points []Point
	metData, err := os.ReadFile(filepath.Join(path, "metrics.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(metData, &points); err != nil || len(points) == 0 {
		t.Fatalf("metrics.json: %v (%d points)", err, len(points))
	}
	gor, err := os.ReadFile(filepath.Join(path, "goroutines.txt"))
	if err != nil || !strings.Contains(string(gor), "goroutine") {
		t.Fatalf("goroutines.txt: %v", err)
	}
	if !strings.Contains(string(recData), "checkpoint") {
		t.Fatal("bus event mirror missing from recorder.jsonl")
	}
}

func TestStallWatchdog(t *testing.T) {
	o := New()
	r := o.Flight
	dir := t.TempDir()
	r.SetDir(dir)
	r.SetStallThreshold(50 * time.Millisecond)
	r.Arm()
	tok := r.CommitBegin() // in flight, never ends
	deadline := time.Now().Add(5 * time.Second)
	for {
		infos, _ := r.ListBundles()
		if len(infos) > 0 {
			if infos[0].Trigger != TrigStallWatchdog {
				t.Fatalf("bundle trigger = %s, want %s", infos[0].Trigger, TrigStallWatchdog)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watchdog never fired on a stalled in-flight commit")
		}
		time.Sleep(10 * time.Millisecond)
	}
	r.CommitEnd(tok, CommitRecord{Outcome: "committed"})
	r.Close()
}

func TestConflictStormTrigger(t *testing.T) {
	o := New()
	r := o.Flight
	dir := t.TempDir()
	r.SetDir(dir)
	r.SetConflictStorm(3, time.Minute)
	r.Arm()
	for i := 0; i < 10; i++ {
		r.NoteConflict()
	}
	r.Close()
	infos, err := r.ListBundles()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Trigger != TrigConflictStorm {
		t.Fatalf("bundles = %+v, want exactly one conflict_storm", infos)
	}
}

func TestBundlePruning(t *testing.T) {
	o := New()
	r := o.Flight
	dir := t.TempDir()
	r.SetDir(dir)
	r.SetMaxBundles(2)
	r.Arm()
	defer r.Close()
	for i := 0; i < 4; i++ {
		if _, err := r.Dump(); err != nil {
			t.Fatal(err)
		}
	}
	infos, err := r.ListBundles()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("retained %d bundles, want 2", len(infos))
	}
}

func TestCommitBeginTokenBalancesAcrossArming(t *testing.T) {
	o := New()
	r := o.Flight
	tok := r.CommitBegin() // disarmed: false token
	r.Arm()
	defer r.Close()
	r.CommitEnd(tok, CommitRecord{Outcome: "committed"}) // must be a no-op
	if n := r.inflight.Load(); n != 0 {
		t.Fatalf("inflight = %d after unbalanced end, want 0", n)
	}
	if b := r.BundleNow("", ""); len(b.Commits) != 0 {
		t.Fatalf("false-token CommitEnd recorded a commit: %+v", b.Commits)
	}
}
