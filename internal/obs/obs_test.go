package obs

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	// Every meter and the tracer must be usable as a zero value / nil:
	// that is the "off by default" mode of instrumented subsystems.
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	g.SetMax(10)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var h *Histogram
	h.Observe(1.5)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram")
	}
	var r *Registry
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "", nil) != nil {
		t.Fatal("nil registry must return nil metrics")
	}
	if r.CounterVec("x", "", "k") != nil || r.GaugeVec("x", "", "k") != nil {
		t.Fatal("nil registry must return nil vecs")
	}
	var cv *CounterVec
	cv.With("a").Inc()
	var gv *GaugeVec
	gv.With("a").Set(1)
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	tr.Begin("c", "n").End()
	tr.Instant("c", "n")
	if r.Gather() != nil || r.Total("x") != 0 || r.CounterValue("x") != 0 {
		t.Fatal("nil registry snapshot")
	}
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("partdiff_test_total", "help")
	b := r.Counter("partdiff_test_total", "other help ignored")
	if a != b {
		t.Fatal("same name must return same counter")
	}
	a.Add(3)
	if b.Value() != 3 {
		t.Fatal("shared state expected")
	}
	v1 := r.CounterVec("partdiff_vec_total", "", "node")
	v2 := r.CounterVec("partdiff_vec_total", "", "node")
	if v1.With("n1") != v2.With("n1") {
		t.Fatal("vec children must be shared")
	}
	v1.With("n1").Add(2)
	v1.With("n2").Add(5)
	if got := r.Total("partdiff_vec_total"); got != 7 {
		t.Fatalf("Total = %v, want 7", got)
	}
	if got := r.CounterValue("partdiff_test_total"); got != 3 {
		t.Fatalf("CounterValue = %d, want 3", got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("partdiff_lat_seconds", "", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5) // above all bounds → only +Inf
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-5.0555) > 1e-9 {
		t.Fatalf("sum = %v", h.Sum())
	}
	pts := r.Gather()
	if len(pts) != 1 {
		t.Fatalf("points = %d", len(pts))
	}
	p := pts[0]
	want := []int64{1, 2, 3} // cumulative
	for i, w := range want {
		if p.Buckets[i] != w {
			t.Fatalf("bucket[%d] = %d, want %d", i, p.Buckets[i], w)
		}
	}
}

func TestGaugeSetMax(t *testing.T) {
	var g Gauge
	g.SetMax(5)
	g.SetMax(3)
	g.SetMax(9)
	if g.Value() != 9 {
		t.Fatalf("SetMax = %d", g.Value())
	}
}

func TestCounterFunc(t *testing.T) {
	r := NewRegistry()
	n := int64(41)
	r.CounterFunc("partdiff_func_total", "h", func() int64 { return n })
	n = 42
	if got := r.CounterValue("partdiff_func_total"); got != 42 {
		t.Fatalf("func counter = %d", got)
	}
	// Re-registering replaces the closure (new sessions re-bind).
	r.CounterFunc("partdiff_func_total", "h", func() int64 { return 7 })
	if got := r.CounterValue("partdiff_func_total"); got != 7 {
		t.Fatalf("re-registered func counter = %d", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("partdiff_b_total", "counts b").Add(2)
	r.CounterVec("partdiff_a_total", "counts a", "rule").With(`we"ird\`).Add(1)
	r.Gauge("partdiff_depth", "queue depth").Set(-3)
	r.Histogram("partdiff_lat_seconds", "latency", []float64{0.01, 0.1}).Observe(0.05)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP partdiff_a_total counts a\n# TYPE partdiff_a_total counter\n",
		`partdiff_a_total{rule="we\"ird\\"} 1`,
		"# TYPE partdiff_b_total counter",
		"partdiff_b_total 2",
		"# TYPE partdiff_depth gauge",
		"partdiff_depth -3",
		"# TYPE partdiff_lat_seconds histogram",
		`partdiff_lat_seconds_bucket{le="0.01"} 0`,
		`partdiff_lat_seconds_bucket{le="0.1"} 1`,
		`partdiff_lat_seconds_bucket{le="+Inf"} 1`,
		"partdiff_lat_seconds_sum 0.05",
		"partdiff_lat_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Families must appear in sorted order for deterministic scraping.
	if strings.Index(out, "partdiff_a_total") > strings.Index(out, "partdiff_b_total") {
		t.Fatalf("families not sorted:\n%s", out)
	}
}

func TestTracerSpansAndInstants(t *testing.T) {
	tr := NewTracer()
	if tr.Enabled() {
		t.Fatal("enabled with no sinks")
	}
	if sp := tr.Begin("c", "n"); sp != nil {
		t.Fatal("Begin must return nil when disabled")
	}
	var cs CollectSink
	detach := tr.Attach(&cs)
	if !tr.Enabled() {
		t.Fatal("not enabled after attach")
	}
	sp := tr.Begin("propnet", "Δp/Δ+q", Str("view", "p"))
	sp.End(Int("produced", 3))
	tr.Instant("rules.debug", "debug", Str("msg", "hello"))
	spans, insts := cs.Spans(), cs.Instants()
	if len(spans) != 1 || spans[0].Name != "Δp/Δ+q" || spans[0].Attr("view") != "p" || spans[0].Attr("produced") != "3" {
		t.Fatalf("spans = %+v", spans)
	}
	if len(insts) != 1 || insts[0].Attr("msg") != "hello" {
		t.Fatalf("instants = %+v", insts)
	}
	detach()
	detach() // idempotent
	if tr.Enabled() {
		t.Fatal("still enabled after detach")
	}
}

func TestTextSinkFilterAndFormat(t *testing.T) {
	var sb strings.Builder
	tr := NewTracer()
	tr.Attach(NewTextSink(&sb, "rules.debug"))
	tr.Instant("rules.debug", "debug", Str("msg", "check round 1"))
	tr.Instant("propnet", "noise", Str("x", "y"))
	tr.Begin("txn", "commit").End()
	if got := sb.String(); got != "check round 1\n" {
		t.Fatalf("text sink output = %q", got)
	}
}

func TestChromeSinkExport(t *testing.T) {
	tr := NewTracer()
	cs := NewChromeSink()
	tr.Attach(cs)
	sp := tr.Begin("propnet", "propagate", Int("round", 1))
	time.Sleep(time.Millisecond)
	sp.End()
	tr.Instant("rules", "trigger", Str("rule", "low"))
	var sb strings.Builder
	if err := cs.Export(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Dur  float64           `json:"dur"`
			Pid  int               `json:"pid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("events = %d", len(doc.TraceEvents))
	}
	x := doc.TraceEvents[0]
	if x.Ph != "X" || x.Name != "propagate" || x.Dur <= 0 || x.Args["round"] != "1" {
		t.Fatalf("span event = %+v", x)
	}
	if doc.TraceEvents[1].Ph != "i" || doc.TraceEvents[1].Args["rule"] != "low" {
		t.Fatalf("instant event = %+v", doc.TraceEvents[1])
	}
	if cs.Len() != 2 {
		t.Fatalf("Len = %d", cs.Len())
	}
	cs.Reset()
	if cs.Len() != 0 {
		t.Fatal("Reset")
	}
}

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("partdiff_storage_tuple_inserts_total", "h").Add(4)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	code, body := get("/metrics")
	if code != 200 || !strings.Contains(body, "partdiff_storage_tuple_inserts_total 4") {
		t.Fatalf("/metrics: %d %q", code, body)
	}
	code, body = get("/debug/vars")
	if code != 200 || !strings.Contains(body, `"partdiff"`) ||
		!strings.Contains(body, "partdiff_storage_tuple_inserts_total") {
		t.Fatalf("/debug/vars: %d %q", code, body)
	}
	code, body = get("/")
	if code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: %d %q", code, body)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Fatalf("unknown path = %d", code)
	}
}

func TestServeListener(t *testing.T) {
	r := NewRegistry()
	r.Counter("partdiff_x_total", "").Inc()
	s, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "partdiff_x_total 1") {
		t.Fatalf("body = %q", body)
	}
}

func TestConcurrentMeters(t *testing.T) {
	// Exercised under -race in CI: concurrent writers + a scraper.
	r := NewRegistry()
	vec := r.CounterVec("partdiff_conc_total", "", "w")
	h := r.Histogram("partdiff_conc_seconds", "", DefLatencyBuckets)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := vec.With("w")
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.001)
				r.Gauge("partdiff_conc_depth", "").Set(int64(i))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = r.Gather()
			_ = r.WritePrometheus(io.Discard)
		}
	}()
	wg.Wait()
	<-done
	if got := vec.With("w").Value(); got != 4000 {
		t.Fatalf("counter = %d", got)
	}
	if h.Count() != 4000 {
		t.Fatalf("histogram count = %d", h.Count())
	}
}
