package obs

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// SSEHeartbeat is the idle keep-alive interval for SSE streams: a
// comment frame is written when no event arrives for this long, so
// proxies keep the connection open and dead clients are detected.
// Package-level so tests can shrink it.
var SSEHeartbeat = 15 * time.Second

// SSEHandler streams bus events as Server-Sent Events
// (text/event-stream):
//
//   - `?types=rule_firing,txn` filters by event type (default all).
//   - Each frame carries the monotonic event ID (`id:`), the event
//     type (`event:`) and the JSON payload (`data:`).
//   - A reconnecting client sends `Last-Event-ID` (header, or the
//     `last_event_id` query parameter for clients that cannot set
//     headers): the stream resumes with the exact missed suffix while
//     it is still in the bus's resume ring, or starts with an explicit
//     `gap` event carrying the number of evicted events otherwise.
//   - Slow consumers see the bus's drop-oldest policy: lost events
//     surface as a `gap` frame (no `id:` line, so the client's
//     Last-Event-ID still names the last real event it saw).
//   - `?buffer=N` sizes the per-subscriber ring (clamped to the bus
//     default when out of range).
func SSEHandler(b *Bus) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		flusher, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		types, err := ParseEventTypes(req.URL.Query().Get("types"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		buf := 0
		if s := req.URL.Query().Get("buffer"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n > 0 && n <= DefaultRingSize {
				buf = n
			}
		}
		lastRaw := req.Header.Get("Last-Event-ID")
		if lastRaw == "" {
			lastRaw = req.URL.Query().Get("last_event_id")
		}

		var sub *Subscription
		if lastRaw != "" {
			lastID, err := strconv.ParseUint(lastRaw, 10, 64)
			if err != nil {
				http.Error(w, "invalid Last-Event-ID", http.StatusBadRequest)
				return
			}
			sub, _ = b.SubscribeFrom(lastID, buf, types...)
		} else {
			sub = b.Subscribe(buf, types...)
		}
		defer sub.Close()

		h := w.Header()
		h.Set("Content-Type", "text/event-stream")
		h.Set("Cache-Control", "no-cache")
		h.Set("Connection", "keep-alive")
		h.Set("X-Accel-Buffering", "no")
		w.WriteHeader(http.StatusOK)
		flusher.Flush()

		ctx := req.Context()
		for {
			// Wait for the next event, bounded by the heartbeat
			// interval so idle streams still emit keep-alives.
			waitCtx, cancel := context.WithTimeout(ctx, SSEHeartbeat)
			e, err := sub.Next(waitCtx)
			cancel()
			if err != nil {
				if ctx.Err() != nil || err == ErrSubscriptionClosed {
					return
				}
				// Heartbeat deadline fired with no event pending.
				if _, werr := fmt.Fprint(w, ": ping\n\n"); werr != nil {
					return
				}
				flusher.Flush()
				continue
			}
			if writeSSE(w, e) != nil {
				return
			}
			flusher.Flush()
		}
	})
}

// writeSSE renders one event frame. Gap events carry no id line so the
// client's Last-Event-ID keeps naming the last real event delivered.
func writeSSE(w http.ResponseWriter, e Event) error {
	if e.ID != 0 {
		if _, err := fmt.Fprintf(w, "id: %d\n", e.ID); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, e.JSON())
	return err
}
