package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus writes every metric in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, each preceded by
// # HELP / # TYPE, histograms expanded into cumulative _bucket{le=...}
// series plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.writePrometheus(w, nil)
}

// WritePrometheusPrefix writes only the metric families whose name
// starts with prefix. The repo's naming convention is
// partdiff_<subsystem>_..., so the bare subsystem name ("propnet",
// "eval", ...) also matches with the partdiff_ part implied.
func (r *Registry) WritePrometheusPrefix(w io.Writer, prefix string) error {
	full := "partdiff_" + prefix
	return r.writePrometheus(w, func(name string) bool {
		return strings.HasPrefix(name, prefix) || strings.HasPrefix(name, full)
	})
}

func (r *Registry) writePrometheus(w io.Writer, match func(name string) bool) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	var lastName string
	for _, p := range r.Gather() {
		if match != nil && !match(p.Name) {
			continue
		}
		if p.Name != lastName {
			help, typ := r.familyMeta(p.Name)
			if help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", p.Name, escapeHelp(help))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", p.Name, typ)
			lastName = p.Name
		}
		switch p.Type {
		case TypeHistogram:
			for i, bound := range p.Bounds {
				b.WriteString(p.Name)
				b.WriteString("_bucket")
				writeLabels(&b, p.Labels, formatBound(bound))
				b.WriteByte(' ')
				b.WriteString(strconv.FormatInt(p.Buckets[i], 10))
				b.WriteByte('\n')
			}
			b.WriteString(p.Name)
			b.WriteString("_bucket")
			writeLabels(&b, p.Labels, "+Inf")
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(p.Count, 10))
			b.WriteByte('\n')
			fmt.Fprintf(&b, "%s_sum", p.Name)
			writeLabels(&b, p.Labels, "")
			fmt.Fprintf(&b, " %s\n", formatValue(p.Value))
			fmt.Fprintf(&b, "%s_count", p.Name)
			writeLabels(&b, p.Labels, "")
			fmt.Fprintf(&b, " %d\n", p.Count)
		default:
			b.WriteString(p.Name)
			writeLabels(&b, p.Labels, "")
			b.WriteByte(' ')
			b.WriteString(formatValue(p.Value))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (r *Registry) familyMeta(name string) (help string, typ MetricType) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if f := r.families[name]; f != nil {
		return f.help, f.typ
	}
	return "", TypeCounter
}

// writeLabels renders {k="v",...}, appending le=bound for histogram
// buckets. Writes nothing when there are no labels and no bound.
func writeLabels(b *strings.Builder, labels []Label, le string) {
	if len(labels) == 0 && le == "" {
		return
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func formatBound(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// expvarMap renders the registry as a JSON-friendly map for expvar:
// plain metrics become numbers keyed by name (label children keyed as
// name{k=v,...}), histograms become {count,sum} objects.
func (r *Registry) expvarMap() map[string]any {
	out := make(map[string]any)
	for _, p := range r.Gather() {
		key := p.Name
		if len(p.Labels) > 0 {
			parts := make([]string, len(p.Labels))
			for i, l := range p.Labels {
				parts[i] = l.Key + "=" + l.Value
			}
			key += "{" + strings.Join(parts, ",") + "}"
		}
		if p.Type == TypeHistogram {
			out[key] = map[string]any{"count": p.Count, "sum": p.Value}
		} else {
			out[key] = p.Value
		}
	}
	return out
}
