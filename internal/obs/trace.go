package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value attribute on a span or instant event.
type Attr struct {
	Key, Value string
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: strconv.Itoa(v)} }

// TraceSink receives completed trace events. Sinks must be safe for
// concurrent use; the tracer calls them inline from instrumented code.
// (The event-bus sink interface is the separate Sink in events.go.)
type TraceSink interface {
	// Span is called once per span, at End time.
	Span(cat, name string, start time.Time, dur time.Duration, attrs []Attr)
	// Instant is called for point-in-time events.
	Instant(cat, name string, ts time.Time, attrs []Attr)
}

// Tracer fans spans and instant events out to attached sinks. With no
// sinks attached Enabled() is false and Begin/Instant return
// immediately; instrumented code guards attribute construction behind
// Enabled() so disabled tracing costs one atomic load.
type Tracer struct {
	mu    sync.RWMutex
	sinks []TraceSink
	n     atomic.Int32
}

// NewTracer returns a tracer with no sinks.
func NewTracer() *Tracer { return &Tracer{} }

// Enabled reports whether at least one sink is attached.
func (t *Tracer) Enabled() bool { return t != nil && t.n.Load() > 0 }

// Attach adds a sink and returns a function that detaches it again.
func (t *Tracer) Attach(s TraceSink) (detach func()) {
	if t == nil || s == nil {
		return func() {}
	}
	t.mu.Lock()
	t.sinks = append(t.sinks, s)
	t.n.Store(int32(len(t.sinks)))
	t.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			t.mu.Lock()
			for i, have := range t.sinks {
				if have == s {
					t.sinks = append(t.sinks[:i], t.sinks[i+1:]...)
					break
				}
			}
			t.n.Store(int32(len(t.sinks)))
			t.mu.Unlock()
		})
	}
}

// Span is an in-flight timed region started by Begin. A nil *Span (from
// a disabled tracer) is safe to End.
type Span struct {
	t     *Tracer
	cat   string
	name  string
	start time.Time
	attrs []Attr
}

// Begin starts a span. Returns nil when tracing is disabled.
func (t *Tracer) Begin(cat, name string, attrs ...Attr) *Span {
	if !t.Enabled() {
		return nil
	}
	return &Span{t: t, cat: cat, name: name, start: time.Now(), attrs: attrs}
}

// End completes the span, appending any extra attributes (e.g. result
// sizes known only at the end), and delivers it to every sink.
func (sp *Span) End(extra ...Attr) {
	if sp == nil {
		return
	}
	dur := time.Since(sp.start)
	attrs := sp.attrs
	if len(extra) > 0 {
		attrs = append(attrs, extra...)
	}
	sp.t.mu.RLock()
	for _, s := range sp.t.sinks {
		s.Span(sp.cat, sp.name, sp.start, dur, attrs)
	}
	sp.t.mu.RUnlock()
}

// Instant emits a point-in-time event.
func (t *Tracer) Instant(cat, name string, attrs ...Attr) {
	if !t.Enabled() {
		return
	}
	ts := time.Now()
	t.mu.RLock()
	for _, s := range t.sinks {
		s.Instant(cat, name, ts, attrs)
	}
	t.mu.RUnlock()
}

// TextSink renders instant events as lines on a writer. With a
// non-empty category filter only events of that category are printed —
// the rules manager uses this with category "rules.debug" to reproduce
// the legacy human-readable debug trace exactly (each debug line is an
// instant carrying a single "msg" attribute).
type TextSink struct {
	mu   sync.Mutex
	w    io.Writer
	only string
}

// NewTextSink returns a text sink writing to w; if onlyCat is non-empty
// every event of a different category is dropped.
func NewTextSink(w io.Writer, onlyCat string) *TextSink {
	return &TextSink{w: w, only: onlyCat}
}

// Span implements TraceSink; spans print as "name (dur) attrs".
func (ts *TextSink) Span(cat, name string, _ time.Time, dur time.Duration, attrs []Attr) {
	if ts.only != "" && cat != ts.only {
		return
	}
	ts.mu.Lock()
	fmt.Fprintf(ts.w, "%s (%s)%s\n", name, dur, formatAttrs(attrs))
	ts.mu.Unlock()
}

// Instant implements TraceSink. An event with a single "msg" attribute
// prints as the bare message (legacy debug format); anything else as
// "name attrs".
func (ts *TextSink) Instant(cat, name string, _ time.Time, attrs []Attr) {
	if ts.only != "" && cat != ts.only {
		return
	}
	ts.mu.Lock()
	if len(attrs) == 1 && attrs[0].Key == "msg" {
		fmt.Fprintln(ts.w, attrs[0].Value)
	} else {
		fmt.Fprintf(ts.w, "%s%s\n", name, formatAttrs(attrs))
	}
	ts.mu.Unlock()
}

func formatAttrs(attrs []Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	s := ""
	for _, a := range attrs {
		s += " " + a.Key + "=" + a.Value
	}
	return s
}

// CollectSink buffers structured events in memory for tests.
type CollectSink struct {
	mu    sync.Mutex
	spans []CollectedEvent
	insts []CollectedEvent
}

// CollectedEvent is one buffered span or instant.
type CollectedEvent struct {
	Cat, Name string
	Dur       time.Duration
	Attrs     []Attr
}

// Attr returns the value of the named attribute ("" if absent).
func (e CollectedEvent) Attr(key string) string {
	for _, a := range e.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Span implements TraceSink.
func (c *CollectSink) Span(cat, name string, _ time.Time, dur time.Duration, attrs []Attr) {
	c.mu.Lock()
	c.spans = append(c.spans, CollectedEvent{Cat: cat, Name: name, Dur: dur, Attrs: append([]Attr(nil), attrs...)})
	c.mu.Unlock()
}

// Instant implements TraceSink.
func (c *CollectSink) Instant(cat, name string, _ time.Time, attrs []Attr) {
	c.mu.Lock()
	c.insts = append(c.insts, CollectedEvent{Cat: cat, Name: name, Attrs: append([]Attr(nil), attrs...)})
	c.mu.Unlock()
}

// Spans returns the buffered spans.
func (c *CollectSink) Spans() []CollectedEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]CollectedEvent(nil), c.spans...)
}

// Instants returns the buffered instant events.
func (c *CollectSink) Instants() []CollectedEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]CollectedEvent(nil), c.insts...)
}
