package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// MetricType distinguishes the exposition families.
type MetricType string

const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// Label is one key="value" pair attached to a metric child.
type Label struct {
	Key, Value string
}

// Counter is a monotonically increasing atomic counter. All methods are
// nil-safe: a nil *Counter is a no-op meter, which is how instrumented
// subsystems run with observability disabled at zero branching cost.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative n is ignored; counters are monotone).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Reset zeroes the counter (used by rules.Manager.ResetStats; not part
// of the Prometheus model, but harmless for a single-process registry).
func (c *Counter) Reset() {
	if c != nil {
		c.v.Store(0)
	}
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// SetMax raises the gauge to v if v is larger (peak tracking).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Reset zeroes the gauge.
func (g *Gauge) Reset() {
	if g != nil {
		g.v.Store(0)
	}
}

// Histogram is a fixed-bucket cumulative histogram (Prometheus
// semantics: bucket i counts observations <= Bounds[i], with an
// implicit +Inf bucket at the end).
type Histogram struct {
	bounds  []float64 // sorted upper bounds, +Inf implicit
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

// DefLatencyBuckets covers 1µs .. ~10s in decades with 1-2.5-5 steps,
// in seconds (Prometheus convention for *_seconds histograms).
var DefLatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// DefSizeBuckets covers Δ-set / result sizes 1 .. 100k in powers of ten
// with a 3x midpoint.
var DefSizeBuckets = []float64{
	0, 1, 3, 10, 30, 100, 300, 1000, 3000, 10000, 30000, 100000,
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b))}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Find the first bound >= v. Bucket lists are short (~20); linear
	// scan beats sort.SearchFloat64s' call overhead here.
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sumBits.Store(0)
}

// snapshot returns (cumulative bucket counts aligned with bounds, count, sum).
func (h *Histogram) snapshot() ([]int64, int64, float64) {
	cum := make([]int64, len(h.bounds))
	var run int64
	for i := range h.counts {
		run += h.counts[i].Load()
		cum[i] = run
	}
	return cum, h.count.Load(), h.Sum()
}

// metric is the union of child kinds held by a family.
type metric interface{}

// funcMetric is a read-only metric backed by a closure (used to expose
// process-global counters, e.g. internal/delta's).
type funcMetric struct {
	fn func() int64
}

type child struct {
	labels []Label // sorted by construction (caller passes values for fixed keys)
	m      metric
}

type family struct {
	name, help string
	typ        MetricType
	labelKeys  []string
	bounds     []float64 // histograms only

	mu       sync.RWMutex
	order    []string
	children map[string]*child
}

func (f *family) getOrCreate(values []string, mk func(ls []Label) metric) metric {
	if len(values) != len(f.labelKeys) {
		panic(fmt.Sprintf("obs: metric %q wants %d label value(s), got %d", f.name, len(f.labelKeys), len(values)))
	}
	key := labelKey(values)
	f.mu.RLock()
	c := f.children[key]
	f.mu.RUnlock()
	if c != nil {
		return c.m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c = f.children[key]; c != nil {
		return c.m
	}
	ls := make([]Label, len(values))
	for i, v := range values {
		ls[i] = Label{Key: f.labelKeys[i], Value: v}
	}
	c = &child{labels: ls, m: mk(ls)}
	f.children[key] = c
	f.order = append(f.order, key)
	return c.m
}

func labelKey(values []string) string {
	if len(values) == 0 {
		return ""
	}
	key := values[0]
	for _, v := range values[1:] {
		key += "\x00" + v
	}
	return key
}

// Registry is a get-or-create metric registry. Asking twice for the
// same family name returns the same underlying metric, so subsystems
// that are rebuilt (the rules manager recreates its propagation network
// whenever activations change) keep accumulating into the same meters.
//
// All lookup methods are nil-safe: on a nil *Registry they return nil
// metrics, whose methods are in turn no-ops.
type Registry struct {
	mu       sync.RWMutex
	order    []string
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help string, typ MetricType, keys []string, bounds []float64) *family {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		if f = r.families[name]; f == nil {
			f = &family{
				name: name, help: help, typ: typ,
				labelKeys: append([]string(nil), keys...),
				bounds:    bounds,
				children:  make(map[string]*child),
			}
			r.families[name] = f
			r.order = append(r.order, name)
		}
		r.mu.Unlock()
	}
	if f.typ != typ || len(f.labelKeys) != len(keys) {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s/%d labels (was %s/%d)",
			name, typ, len(keys), f.typ, len(f.labelKeys)))
	}
	return f
}

// Counter returns the unlabeled counter for name, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.family(name, help, TypeCounter, nil, nil)
	return f.getOrCreate(nil, func([]Label) metric { return new(Counter) }).(*Counter)
}

// Gauge returns the unlabeled gauge for name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.family(name, help, TypeGauge, nil, nil)
	return f.getOrCreate(nil, func([]Label) metric { return new(Gauge) }).(*Gauge)
}

// Histogram returns the unlabeled histogram for name with the given
// bucket bounds (only the first registration's bounds are used).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	f := r.family(name, help, TypeHistogram, nil, bounds)
	return f.getOrCreate(nil, func([]Label) metric { return newHistogram(f.bounds) }).(*Histogram)
}

// CounterFunc registers a read-only counter backed by fn (e.g. a
// process-global atomic owned by another package). Re-registering the
// same name replaces the closure.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	if r == nil {
		return
	}
	f := r.family(name, help, TypeCounter, nil, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c := f.children[""]; c != nil {
		if fm, ok := c.m.(*funcMetric); ok {
			fm.fn = fn
			return
		}
		c.m = &funcMetric{fn: fn}
		return
	}
	f.children[""] = &child{m: &funcMetric{fn: fn}}
	f.order = append(f.order, "")
}

// GaugeFunc registers a read-only gauge backed by fn. Re-registering
// the same name replaces the closure.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	if r == nil {
		return
	}
	f := r.family(name, help, TypeGauge, nil, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c := f.children[""]; c != nil {
		if fm, ok := c.m.(*funcMetric); ok {
			fm.fn = fn
			return
		}
		c.m = &funcMetric{fn: fn}
		return
	}
	f.children[""] = &child{m: &funcMetric{fn: fn}}
	f.order = append(f.order, "")
}

// HistogramSnapshot is the read-only state a HistogramFunc returns:
// cumulative bucket counts aligned with sorted upper bounds (an +Inf
// bucket is implicit), the observation count and sum.
type HistogramSnapshot struct {
	Bounds  []float64
	Buckets []int64
	Count   int64
	Sum     float64
}

// histFuncMetric is a read-only histogram backed by a closure (used to
// expose runtime/metrics histograms without copying them per update).
type histFuncMetric struct {
	fn func() HistogramSnapshot
}

// HistogramFunc registers a read-only histogram backed by fn.
// Re-registering the same name replaces the closure.
func (r *Registry) HistogramFunc(name, help string, fn func() HistogramSnapshot) {
	if r == nil {
		return
	}
	f := r.family(name, help, TypeHistogram, nil, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c := f.children[""]; c != nil {
		if fm, ok := c.m.(*histFuncMetric); ok {
			fm.fn = fn
			return
		}
		c.m = &histFuncMetric{fn: fn}
		return
	}
	f.children[""] = &child{m: &histFuncMetric{fn: fn}}
	f.order = append(f.order, "")
}

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct {
	f *family
}

// CounterVec returns the labeled counter family for name.
func (r *Registry) CounterVec(name, help string, labelKeys ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.family(name, help, TypeCounter, labelKeys, nil)}
}

// With returns the child counter for the given label values (in the
// order of the vec's label keys), creating it on first use.
func (cv *CounterVec) With(values ...string) *Counter {
	if cv == nil {
		return nil
	}
	return cv.f.getOrCreate(values, func([]Label) metric { return new(Counter) }).(*Counter)
}

// GaugeVec is a family of gauges distinguished by label values.
type GaugeVec struct {
	f *family
}

// GaugeVec returns the labeled gauge family for name.
func (r *Registry) GaugeVec(name, help string, labelKeys ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.family(name, help, TypeGauge, labelKeys, nil)}
}

// With returns the child gauge for the given label values.
func (gv *GaugeVec) With(values ...string) *Gauge {
	if gv == nil {
		return nil
	}
	return gv.f.getOrCreate(values, func([]Label) metric { return new(Gauge) }).(*Gauge)
}

// Point is one flattened sample in a registry snapshot.
type Point struct {
	Name   string
	Labels []Label
	Type   MetricType
	Value  float64 // counter/gauge value; histograms: Sum

	// Histogram detail (Type == TypeHistogram only).
	Count   int64
	Bounds  []float64
	Buckets []int64 // cumulative, aligned with Bounds
}

// Gather returns a deterministic snapshot of every metric: families in
// name order, children in creation order.
func (r *Registry) Gather() []Point {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var out []Point
	for _, f := range fams {
		f.mu.RLock()
		for _, key := range f.order {
			c := f.children[key]
			p := Point{Name: f.name, Labels: c.labels, Type: f.typ}
			switch m := c.m.(type) {
			case *Counter:
				p.Value = float64(m.Value())
			case *Gauge:
				p.Value = float64(m.Value())
			case *funcMetric:
				p.Value = float64(m.fn())
			case *histFuncMetric:
				snap := m.fn()
				p.Bounds, p.Buckets = snap.Bounds, snap.Buckets
				p.Count, p.Value = snap.Count, snap.Sum
			case *Histogram:
				buckets, count, sum := m.snapshot()
				p.Buckets, p.Count, p.Value = buckets, count, sum
				p.Bounds = m.bounds
			}
			out = append(out, p)
		}
		f.mu.RUnlock()
	}
	return out
}

// Total sums every child of the named family: the counter value for a
// plain counter, the sum over all label children for a vec, and the
// observation sum for a histogram. Returns 0 for unknown families.
func (r *Registry) Total(name string) float64 {
	if r == nil {
		return 0
	}
	var t float64
	for _, p := range r.Gather() {
		if p.Name == name {
			t += p.Value
		}
	}
	return t
}

// CounterValue returns the value of the unlabeled counter name, or 0 if
// it does not exist. Convenience for tests and the bench telemetry.
func (r *Registry) CounterValue(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		return 0
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	c := f.children[""]
	if c == nil {
		return 0
	}
	switch m := c.m.(type) {
	case *Counter:
		return m.Value()
	case *funcMetric:
		return m.fn()
	}
	return 0
}
