// Package obs is the observability subsystem: a low-overhead metrics
// registry (atomic counters, gauges and fixed-bucket histograms, with
// labeled children), a structured tracing API (spans and instant events
// with attributes, fanned out to pluggable sinks), and exposition
// surfaces (Prometheus text format, expvar JSON, and a Chrome
// `trace_event` exporter so a check phase can be opened in a trace
// viewer).
//
// The package is stdlib-only and dependency-free within the repo: every
// other internal package may import it. Instrumented subsystems follow
// two conventions that keep the disabled cost near zero:
//
//   - Metric methods are nil-safe: a nil *Counter, *Gauge or *Histogram
//     is a no-op, so a zero-value Metrics struct (or one built from a
//     nil *Registry) disables a subsystem's meters without branches at
//     every call site.
//   - Tracing is guarded by Tracer.Enabled(): span attribute
//     construction — the expensive part — only happens when at least
//     one sink is attached.
//
// Metric naming follows the Prometheus convention
// `partdiff_<subsystem>_<metric>_<unit>`; see DESIGN.md "Observability".
package obs

// Observability bundles the registry, tracer, propagation profiler,
// event bus and flight recorder one session threads through its
// subsystems.
type Observability struct {
	Registry *Registry
	Tracer   *Tracer
	Profiler *Profiler
	Bus      *Bus
	Flight   *Recorder
}

// New returns a fresh registry + tracer + profiler + event bus + flight
// recorder bundle (the profiler starts disabled, the bus inactive, the
// recorder disarmed). Build info, the uptime counter and the
// partdiff_go_* runtime metrics are pre-registered so every exposition
// surface carries them.
func New() *Observability {
	r := NewRegistry()
	registerBuildInfo(r)
	registerRuntimeMetrics(r)
	b := NewBus(0)
	b.bindMetrics(r)
	f := NewRecorder()
	f.bind(r, b)
	return &Observability{Registry: r, Tracer: NewTracer(), Profiler: NewProfiler(), Bus: b, Flight: f}
}
