package obs

import (
	"context"
	"io"
	"sync"
)

// Sink consumes bus events. Implementations must tolerate being called
// from a single pump goroutine; Emit returning an error stops the
// pump. (The tracer's sink interface is the separate TraceSink.)
type Sink interface {
	Emit(e Event) error
	Close() error
}

// AttachSink subscribes to the bus and pumps matching events into sink
// on a background goroutine. buf and types are as for Subscribe; a
// sink that falls behind sees the normal drop-oldest policy (gap
// events included). The returned detach stops the pump, waits for it
// to finish, and closes the sink.
func (b *Bus) AttachSink(sink Sink, buf int, types ...EventType) (detach func()) {
	if b == nil || sink == nil {
		return func() {}
	}
	sub := b.Subscribe(buf, types...)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			e, err := sub.Next(ctx)
			if err != nil {
				return
			}
			if sink.Emit(e) != nil {
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			sub.Close()
			cancel()
			<-done
			_ = sink.Close()
		})
	}
}

// ChannelSink delivers events on an in-process channel. Emit blocks
// when the channel is full (the pump goroutine absorbs the stall and
// the subscription's drop-oldest policy bounds the loss) unless the
// sink has been closed, in which case Emit discards.
type ChannelSink struct {
	C    chan Event
	done chan struct{}
	once sync.Once
}

// NewChannelSink returns a channel sink with the given buffer.
func NewChannelSink(buf int) *ChannelSink {
	if buf < 0 {
		buf = 0
	}
	return &ChannelSink{C: make(chan Event, buf), done: make(chan struct{})}
}

// Emit implements Sink.
func (c *ChannelSink) Emit(e Event) error {
	select {
	case <-c.done:
		return nil
	default:
	}
	select {
	case c.C <- e:
	case <-c.done:
	}
	return nil
}

// Close implements Sink; it unblocks any pending Emit and closes C so
// range loops over the channel terminate.
func (c *ChannelSink) Close() error {
	c.once.Do(func() {
		close(c.done)
		close(c.C)
	})
	return nil
}

// JSONLSink writes one JSON object per event, newline-terminated, to a
// writer (a log file, a pipe, a shell's stdout).
type JSONLSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewJSONLSink returns a JSONL sink writing to w.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// Emit implements Sink.
func (j *JSONLSink) Emit(e Event) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.w.Write(append(e.JSON(), '\n')); err != nil {
		return err
	}
	return nil
}

// Close implements Sink; closes the underlying writer when it is a
// Closer (files), otherwise a no-op.
func (j *JSONLSink) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if c, ok := j.w.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// Publisher is the MQTT/Kafka-shaped transport a TopicSink publishes
// through: a topic string and an opaque payload. Real brokers need a
// third-party client; tests fake this with a few lines of stdlib.
type Publisher interface {
	Publish(topic string, payload []byte) error
}

// TopicSink adapts a Publisher into a Sink: each event is published as
// JSON on "<prefix>/<type>" (gap events included, so a broker consumer
// can account for its losses too).
type TopicSink struct {
	p      Publisher
	prefix string
}

// NewTopicSink returns a topic sink over p; prefix defaults to
// "amos/events".
func NewTopicSink(p Publisher, prefix string) *TopicSink {
	if prefix == "" {
		prefix = "amos/events"
	}
	return &TopicSink{p: p, prefix: prefix}
}

// Emit implements Sink.
func (t *TopicSink) Emit(e Event) error {
	return t.p.Publish(t.prefix+"/"+string(e.Type), e.JSON())
}

// Close implements Sink; closes the publisher when it is a Closer.
func (t *TopicSink) Close() error {
	if c, ok := t.p.(io.Closer); ok {
		return c.Close()
	}
	return nil
}
