package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// ChromeSink accumulates trace events in the Chrome `trace_event` JSON
// format (the "Trace Event Format" consumed by chrome://tracing and
// https://ui.perfetto.dev). Spans become complete ("X") events,
// instants become "i" events; timestamps and durations are in
// microseconds relative to the sink's creation.
type ChromeSink struct {
	mu     sync.Mutex
	base   time.Time
	events []chromeEvent
}

type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"` // instant scope
	Args map[string]string `json:"args,omitempty"`
}

// NewChromeSink returns an empty sink; attach it to a tracer with
// Tracer.Attach.
func NewChromeSink() *ChromeSink {
	return &ChromeSink{base: time.Now()}
}

func attrArgs(attrs []Attr) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// Span implements TraceSink.
func (c *ChromeSink) Span(cat, name string, start time.Time, dur time.Duration, attrs []Attr) {
	ev := chromeEvent{
		Name: name, Cat: cat, Ph: "X",
		Ts:  float64(start.Sub(c.base)) / float64(time.Microsecond),
		Dur: float64(dur) / float64(time.Microsecond),
		Pid: 1, Tid: 1,
		Args: attrArgs(attrs),
	}
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

// Instant implements TraceSink.
func (c *ChromeSink) Instant(cat, name string, ts time.Time, attrs []Attr) {
	ev := chromeEvent{
		Name: name, Cat: cat, Ph: "i",
		Ts:  float64(ts.Sub(c.base)) / float64(time.Microsecond),
		Pid: 1, Tid: 1, S: "t",
		Args: attrArgs(attrs),
	}
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

// Len returns the number of buffered events.
func (c *ChromeSink) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// Reset discards buffered events.
func (c *ChromeSink) Reset() {
	c.mu.Lock()
	c.events = nil
	c.mu.Unlock()
}

// Export writes the buffered events as a `{"traceEvents": [...]}` JSON
// object, loadable by chrome://tracing and Perfetto.
func (c *ChromeSink) Export(w io.Writer) error {
	c.mu.Lock()
	events := append([]chromeEvent{}, c.events...)
	c.mu.Unlock()
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	})
}
