package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// newTestBus returns an armed bus with metrics bound to a fresh
// registry.
func newTestBus(ring int) (*Bus, *Registry) {
	r := NewRegistry()
	b := NewBus(ring)
	b.bindMetrics(r)
	b.Arm()
	return b, r
}

func TestBusInactiveIsNoop(t *testing.T) {
	b := NewBus(0)
	if b.Active() {
		t.Fatal("fresh bus must start inactive")
	}
	if id := b.Publish(Event{Type: EventTxn, Op: "begin"}); id != 0 {
		t.Fatalf("publish on inactive bus assigned id %d", id)
	}
	b.Stage(Event{Type: EventDelta})
	if n := b.StagedLen(); n != 0 {
		t.Fatalf("stage on inactive bus buffered %d events", n)
	}
	var nilBus *Bus
	if nilBus.Active() {
		t.Fatal("nil bus must report inactive")
	}
	nilBus.Publish(Event{})
	nilBus.Stage(Event{})
	nilBus.Arm()
}

func TestSubscribeArmsAndStaysArmed(t *testing.T) {
	b := NewBus(0)
	sub := b.Subscribe(0)
	if !b.Active() {
		t.Fatal("Subscribe must arm the bus")
	}
	sub.Close()
	if !b.Active() {
		t.Fatal("bus must stay armed after the last subscriber leaves")
	}
	// Events published with zero subscribers still land in the resume
	// ring so a reconnect can recover them.
	id := b.Publish(Event{Type: EventTxn, Op: "commit"})
	resumed, missed := b.SubscribeFrom(0, 0)
	if missed != 0 {
		t.Fatalf("missed = %d, want 0", missed)
	}
	e, err := resumed.Next(context.Background())
	if err != nil || e.ID != id {
		t.Fatalf("resume got (%v, %v), want event %d", e, err, id)
	}
}

func TestPublishDeliveryAndFilter(t *testing.T) {
	b, r := newTestBus(0)
	all := b.Subscribe(0)
	onlyTxn := b.Subscribe(0, EventTxn)
	defer all.Close()
	defer onlyTxn.Close()

	b.Publish(Event{Type: EventTxn, Op: "begin"})
	b.Publish(Event{Type: EventSystem, Op: "checkpoint"})
	b.Publish(Event{Type: EventTxn, Op: "commit"})

	var allTypes, txnOps []string
	for {
		e, ok := all.TryNext()
		if !ok {
			break
		}
		allTypes = append(allTypes, string(e.Type))
	}
	for {
		e, ok := onlyTxn.TryNext()
		if !ok {
			break
		}
		txnOps = append(txnOps, e.Op)
	}
	if fmt.Sprint(allTypes) != "[txn system txn]" {
		t.Fatalf("unfiltered subscriber got %v", allTypes)
	}
	if fmt.Sprint(txnOps) != "[begin commit]" {
		t.Fatalf("txn-filtered subscriber got %v", txnOps)
	}
	if got := int64(r.Total("partdiff_events_published_total")); got != 3 {
		t.Fatalf("published counter = %d, want 3", got)
	}
	if got := b.Seq(); got != 3 {
		t.Fatalf("bus seq = %d, want 3", got)
	}
}

func TestDropOldestSurfacesGap(t *testing.T) {
	b, r := newTestBus(0)
	sub := b.Subscribe(2)
	defer sub.Close()

	for i := 1; i <= 5; i++ {
		b.Publish(Event{Type: EventTxn, Op: "commit", Writes: i})
	}
	// Buffer held 2: events 1-3 were evicted oldest-first.
	e, ok := sub.TryNext()
	if !ok || e.Type != EventGap || e.Missed != 3 {
		t.Fatalf("first event = (%+v, %v), want gap with missed=3", e, ok)
	}
	if e.ID != 0 {
		t.Fatalf("gap event carries bus ID %d; it must be unnumbered", e.ID)
	}
	var ids []uint64
	for {
		e, ok := sub.TryNext()
		if !ok {
			break
		}
		ids = append(ids, e.ID)
	}
	if fmt.Sprint(ids) != "[4 5]" {
		t.Fatalf("surviving events %v, want [4 5]", ids)
	}
	if got := sub.Dropped(); got != 3 {
		t.Fatalf("Dropped() = %d, want 3", got)
	}
	if got := r.CounterValue("partdiff_events_dropped_total"); got != 3 {
		t.Fatalf("dropped counter = %d, want 3", got)
	}
}

func TestSubscribeFromReplaysExactSuffix(t *testing.T) {
	b, _ := newTestBus(0)
	for i := 1; i <= 10; i++ {
		b.Publish(Event{Type: EventDelta, Round: i})
	}
	sub, missed := b.SubscribeFrom(4, 0)
	defer sub.Close()
	if missed != 0 {
		t.Fatalf("missed = %d, want 0 (full suffix in ring)", missed)
	}
	var ids []uint64
	for {
		e, ok := sub.TryNext()
		if !ok {
			break
		}
		ids = append(ids, e.ID)
	}
	if fmt.Sprint(ids) != "[5 6 7 8 9 10]" {
		t.Fatalf("replayed %v, want exactly the missed suffix [5..10]", ids)
	}
}

func TestSubscribeFromAfterRingEviction(t *testing.T) {
	b, _ := newTestBus(4)
	for i := 1; i <= 10; i++ {
		b.Publish(Event{Type: EventDelta, Round: i})
	}
	// Ring holds [7..10]; resuming from 2 lost events 3-6.
	sub, missed := b.SubscribeFrom(2, 0)
	defer sub.Close()
	if missed != 4 {
		t.Fatalf("missed = %d, want 4", missed)
	}
	e, ok := sub.TryNext()
	if !ok || e.Type != EventGap || e.Missed != 4 {
		t.Fatalf("first event = (%+v, %v), want gap with missed=4", e, ok)
	}
	var ids []uint64
	for {
		e, ok := sub.TryNext()
		if !ok {
			break
		}
		ids = append(ids, e.ID)
	}
	if fmt.Sprint(ids) != "[7 8 9 10]" {
		t.Fatalf("replayed %v, want ring contents [7..10]", ids)
	}
	if got := sub.Dropped(); got != 4 {
		t.Fatalf("Dropped() = %d, want 4", got)
	}
}

func TestSubscribeFromFilterApplies(t *testing.T) {
	b, _ := newTestBus(0)
	b.Publish(Event{Type: EventTxn, Op: "begin"})
	b.Publish(Event{Type: EventSystem, Op: "checkpoint"})
	b.Publish(Event{Type: EventTxn, Op: "commit"})
	sub, _ := b.SubscribeFrom(0, 0, EventSystem)
	defer sub.Close()
	e, ok := sub.TryNext()
	if !ok || e.Op != "checkpoint" {
		t.Fatalf("got (%+v, %v), want the checkpoint event only", e, ok)
	}
	if _, ok := sub.TryNext(); ok {
		t.Fatal("filter leaked a non-matching replayed event")
	}
}

func TestStagingPublishesOnCommitOnly(t *testing.T) {
	b, r := newTestBus(0)
	sub := b.Subscribe(0)
	defer sub.Close()

	b.Stage(Event{Type: EventRuleFiring, Rule: "low"})
	b.Stage(Event{Type: EventDelta, Round: 1})
	if _, ok := sub.TryNext(); ok {
		t.Fatal("staged events visible before the commit point")
	}
	if n := b.StagedLen(); n != 2 {
		t.Fatalf("StagedLen = %d, want 2", n)
	}
	if n := b.CommitStaged(42); n != 2 {
		t.Fatalf("CommitStaged = %d, want 2", n)
	}
	first, _ := sub.TryNext()
	second, _ := sub.TryNext()
	if first.Rule != "low" || first.CommitSeq != 42 {
		t.Fatalf("first committed event = %+v", first)
	}
	if second.Type != EventDelta || second.CommitSeq != 42 {
		t.Fatalf("second committed event = %+v", second)
	}
	if first.ID >= second.ID {
		t.Fatalf("staging order not preserved: ids %d, %d", first.ID, second.ID)
	}

	// Rollback path: staged events vanish and are accounted.
	b.Stage(Event{Type: EventRuleFiring, Rule: "low"})
	if n := b.DiscardStaged(); n != 1 {
		t.Fatalf("DiscardStaged = %d, want 1", n)
	}
	if _, ok := sub.TryNext(); ok {
		t.Fatal("discarded event reached a subscriber")
	}
	if got := r.CounterValue("partdiff_events_discarded_total"); got != 1 {
		t.Fatalf("discarded counter = %d, want 1", got)
	}
}

func TestSubscriberGaugeTracksAttachment(t *testing.T) {
	b, r := newTestBus(0)
	s1 := b.Subscribe(0)
	s2 := b.Subscribe(0)
	if got := r.Total("partdiff_events_subscribers"); got != 2 {
		t.Fatalf("subscribers gauge = %v, want 2", got)
	}
	s1.Close()
	s2.Close()
	if got := r.Total("partdiff_events_subscribers"); got != 0 {
		t.Fatalf("subscribers gauge after close = %v, want 0", got)
	}
}

func TestNextBlocksAndWakes(t *testing.T) {
	b, _ := newTestBus(0)
	sub := b.Subscribe(0)
	defer sub.Close()

	got := make(chan Event, 1)
	go func() {
		e, err := sub.Next(context.Background())
		if err != nil {
			t.Error(err)
		}
		got <- e
	}()
	time.Sleep(5 * time.Millisecond)
	b.Publish(Event{Type: EventSystem, Op: "checkpoint"})
	select {
	case e := <-got:
		if e.Op != "checkpoint" {
			t.Fatalf("woke with %+v", e)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next did not wake on publish")
	}

	// Context cancellation unblocks.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := sub.Next(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Next under expired context = %v", err)
	}

	// Close unblocks and drains.
	done := make(chan error, 1)
	go func() {
		_, err := sub.Next(context.Background())
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	sub.Close()
	select {
	case err := <-done:
		if err != ErrSubscriptionClosed {
			t.Fatalf("Next after Close = %v, want ErrSubscriptionClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next did not wake on Close")
	}
}

func TestBusConcurrentPublishAndDrain(t *testing.T) {
	const (
		publishers = 4
		perPub     = 500
	)
	b, r := newTestBus(0)
	sub := b.Subscribe(64) // deliberately small: drops must be accounted
	var (
		wg       sync.WaitGroup
		received int
		gapped   uint64
		lastID   uint64
	)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for {
			e, err := sub.Next(context.Background())
			if err != nil {
				return
			}
			if e.Type == EventGap {
				gapped += e.Missed
				continue
			}
			if e.ID <= lastID {
				t.Errorf("event IDs not increasing: %d after %d", e.ID, lastID)
				return
			}
			lastID = e.ID
			received++
		}
	}()
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPub; i++ {
				b.Publish(Event{Type: EventTxn, Op: "commit", Writes: p})
			}
		}(p)
	}
	wg.Wait()
	// Let the drainer catch up with everything still buffered, then
	// close to stop it.
	for {
		if n, _ := sub.queued(); n == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	sub.Close()
	<-drained

	total := publishers * perPub
	if received+int(gapped) != total {
		t.Fatalf("received %d + gapped %d != published %d", received, gapped, total)
	}
	if got := r.CounterValue("partdiff_events_dropped_total"); uint64(got) != sub.Dropped() {
		t.Fatalf("dropped counter %d != subscription Dropped %d", got, sub.Dropped())
	}
	if got := int64(r.Total("partdiff_events_published_total")); got != int64(total) {
		t.Fatalf("published counter = %d, want %d", got, total)
	}
}

func TestParseEventTypes(t *testing.T) {
	got, err := ParseEventTypes(" rule_firing, txn ")
	if err != nil || fmt.Sprint(got) != "[rule_firing txn]" {
		t.Fatalf("ParseEventTypes = (%v, %v)", got, err)
	}
	if got, err := ParseEventTypes(""); err != nil || got != nil {
		t.Fatalf("empty filter = (%v, %v), want (nil, nil)", got, err)
	}
	if _, err := ParseEventTypes("rule_firing,bogus"); err == nil {
		t.Fatal("unknown type accepted")
	}
	if _, err := ParseEventTypes("gap"); err == nil {
		t.Fatal("the synthetic gap type must not be subscribable")
	}
}

func TestEventStringAndJSON(t *testing.T) {
	e := Event{
		ID: 7, Type: EventRuleFiring, CommitSeq: 3, Rule: "low",
		Activation: "low()", Round: 1, Instances: []string{"#1"},
		Deltas: []DeltaEntry{{Relation: "quantity", Plus: 1}},
	}
	s := e.String()
	for _, want := range []string{"#7", "rule_firing", "seq=3", "rule=low"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
	var back Event
	if err := json.Unmarshal(e.JSON(), &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != 7 || back.Rule != "low" || len(back.Deltas) != 1 {
		t.Fatalf("JSON round trip = %+v", back)
	}
}
