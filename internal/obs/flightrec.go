package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the flight recorder: an always-on, fixed-memory
// window over the recent behaviour of one session — per-wave
// propagation summaries, per-commit phase timings, WAL fsync and
// checkpoint latencies, hybrid chooser switches, and a compact mirror
// of the last bus events. When an anomaly trigger fires the window is
// frozen and written to disk as a self-contained diagnostics bundle,
// deduplicated per trigger kind with a cooldown so a storm produces one
// bundle, not hundreds.
//
// The overhead contract mirrors the event bus: disarmed, every capture
// call is a single atomic load; armed, captures append small structs to
// mutex-guarded rings (never I/O). Bundle writing happens on a
// dedicated goroutine fed by a bounded queue with a non-blocking send,
// so a trigger can never block a commit.

// BundleFormat identifies the diagnostics-bundle layout. It appears in
// every manifest so consumers can reject bundles they don't understand.
const BundleFormat = "partdiff-flightrec-bundle/1"

// Trigger kinds. Each maps to one anomaly class; bundles are
// deduplicated per kind.
const (
	TrigSlowCommit    = "slow_commit"    // commit exceeded the slow-commit threshold
	TrigFsyncStall    = "fsync_stall"    // one WAL fsync exceeded the stall threshold
	TrigCapViolation  = "capability_violation" // write denied by a sealed capability
	TrigCorruption    = "corruption"     // failed rollback poisoned the store (ErrCorrupt)
	TrigWalPoisoned   = "wal_poisoned"   // WAL write/fsync failure made the log sticky-failed
	TrigCheckBudget   = "check_budget"   // deferred check phase aborted on its budget
	TrigConflictStorm = "conflict_storm" // conflict-retry rate crossed the storm threshold
	TrigStallWatchdog = "stall_watchdog" // in-flight commits made no progress
	TrigManual        = "manual"         // operator-requested dump
)

// Recorder tuning defaults.
const (
	DefaultCooldown       = 30 * time.Second // min spacing between bundles of one trigger kind
	DefaultStallAfter     = 30 * time.Second // watchdog: in-flight commits with no progress
	DefaultStormWindow    = time.Second      // conflict-storm counting window
	DefaultStormConflicts = 8                // conflicts within the window that make a storm
	DefaultMaxBundles     = 16               // on-disk bundles retained per directory
)

// Ring capacities. The window is sized for "what just happened", not
// history: at serving rates these cover the last seconds to minutes.
const (
	waveRingSize   = 256
	commitRingSize = 256
	fsyncRingSize  = 128
	choiceRingSize = 128
	eventRingSize  = 256
)

// WaveRecord summarizes one propagation wave.
type WaveRecord struct {
	Time       time.Time `json:"time"`
	Wave       uint64    `json:"wave"`
	Executed   int       `json:"executed"`    // differentials executed this wave
	ZeroEffect int       `json:"zero_effect"` // executions that produced an empty Δ
	DeltaPlus  int       `json:"delta_plus"`  // net inserted tuples across base Δ-sets
	DeltaMinus int       `json:"delta_minus"` // net deleted tuples across base Δ-sets
	Front      int       `json:"front"`       // peak wave-front size so far
}

// CommitRecord is one commit attempt with its phase timings.
type CommitRecord struct {
	Time      time.Time `json:"time"`
	CommitSeq uint64    `json:"commit_seq,omitempty"`
	// Outcome is committed, rolled_back (check phase failed) or
	// persist_failed (WAL append/fsync failed after the check passed).
	Outcome    string  `json:"outcome"`
	CheckMs    float64 `json:"check_ms"`
	PersistMs  float64 `json:"persist_ms"`
	AckMs      float64 `json:"ack_ms"`
	TotalMs    float64 `json:"total_ms"`
	GateWaitMs float64 `json:"gate_wait_ms,omitempty"` // last writer-gate wait on this session
	Writes     int     `json:"writes"`
	Fired      int     `json:"fired"`
}

// FsyncRecord is one durability latency sample: a WAL fsync or a
// checkpoint.
type FsyncRecord struct {
	Time time.Time `json:"time"`
	Op   string    `json:"op"` // fsync | checkpoint
	Ms   float64   `json:"ms"`
}

// ChoiceRecord is one hybrid-chooser strategy switch.
type ChoiceRecord struct {
	Time     time.Time `json:"time"`
	View     string    `json:"view"`
	Strategy string    `json:"strategy"`
	Detail   string    `json:"detail,omitempty"`
}

// EventRecord is a compact mirror of one published bus event.
type EventRecord struct {
	Time      time.Time `json:"time"`
	ID        uint64    `json:"id"`
	Type      string    `json:"type"`
	Op        string    `json:"op,omitempty"`
	CommitSeq uint64    `json:"commit_seq,omitempty"`
	Rule      string    `json:"rule,omitempty"`
	Detail    string    `json:"detail,omitempty"`
}

// recRing is a fixed-capacity overwrite-oldest ring.
type recRing[T any] struct {
	buf   []T
	head  int // index of the oldest entry
	count int
}

func newRecRing[T any](n int) *recRing[T] { return &recRing[T]{buf: make([]T, n)} }

func (r *recRing[T]) push(v T) {
	if r.count == len(r.buf) {
		r.buf[r.head] = v
		r.head = (r.head + 1) % len(r.buf)
		return
	}
	r.buf[(r.head+r.count)%len(r.buf)] = v
	r.count++
}

// snapshot returns the ring contents oldest-first.
func (r *recRing[T]) snapshot() []T {
	out := make([]T, r.count)
	for i := 0; i < r.count; i++ {
		out[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	return out
}

// BundleSource contributes extra named files to a bundle (the session
// registers one that renders the \profile report, the hybrid decision
// journal and the pruned-network DOT). Sources run on the bundle-writer
// goroutine, never on the trigger path, and must bound their own
// waiting (e.g. a gate acquire with a timeout). A panicking source is
// contained and reported in the bundle's errors.
type BundleSource func(add func(name string, content []byte))

// writeTask carries one frozen window to the bundle-writer goroutine.
type writeTask struct {
	b    *Bundle
	dir  string
	keep int
	srcs []BundleSource
}

// Recorder is the flight recorder. The zero value is unusable; use
// NewRecorder (obs.New wires one into every Observability bundle,
// disarmed). All exported methods are nil-safe, and every capture
// method is a single atomic load while disarmed.
type Recorder struct {
	armed atomic.Bool

	// Stall-watchdog state, updated by CommitBegin/CommitEnd.
	inflight  atomic.Int64
	lastBegin atomic.Int64 // unix nanos of the latest commit start
	lastEnd   atomic.Int64 // unix nanos of the latest commit finish
	gateWait  atomic.Int64 // nanos of the last writer-gate wait, consumed by CommitEnd

	mu         sync.Mutex
	dir        string
	seq        uint64
	waves      *recRing[WaveRecord]
	commits    *recRing[CommitRecord]
	fsyncs     *recRing[FsyncRecord]
	choices    *recRing[ChoiceRecord]
	events     *recRing[EventRecord]
	lastTrig   map[string]time.Time
	trigCount  map[string]int64
	nBundles   int64
	nSuppress  int64
	cooldown   time.Duration
	stall      time.Duration
	stormN     int
	stormWin   time.Duration
	stormStart time.Time
	stormCount int
	maxBundles int
	sources    []BundleSource
	running    bool
	closed     bool

	queue chan *writeTask
	stop  chan struct{}
	wg    sync.WaitGroup

	reg *Registry
	bus *Bus

	triggers    *CounterVec
	bundlesC    *Counter
	suppressedC *Counter
	armedG      *Gauge
}

// NewRecorder returns a disarmed recorder with empty rings and default
// tuning. No goroutines run until Arm.
func NewRecorder() *Recorder {
	return &Recorder{
		waves:      newRecRing[WaveRecord](waveRingSize),
		commits:    newRecRing[CommitRecord](commitRingSize),
		fsyncs:     newRecRing[FsyncRecord](fsyncRingSize),
		choices:    newRecRing[ChoiceRecord](choiceRingSize),
		events:     newRecRing[EventRecord](eventRingSize),
		lastTrig:   make(map[string]time.Time),
		trigCount:  make(map[string]int64),
		cooldown:   DefaultCooldown,
		stall:      DefaultStallAfter,
		stormN:     DefaultStormConflicts,
		stormWin:   DefaultStormWindow,
		maxBundles: DefaultMaxBundles,
		queue:      make(chan *writeTask, 4),
	}
}

// bind attaches the recorder's meters to reg, its bundle event to bus,
// and the bus's event mirror back to the recorder.
func (r *Recorder) bind(reg *Registry, bus *Bus) {
	if r == nil {
		return
	}
	r.reg, r.bus = reg, bus
	r.triggers = reg.CounterVec("partdiff_flightrec_triggers_total",
		"Anomaly trigger signals observed by the flight recorder, by trigger kind.", "trigger")
	r.bundlesC = reg.Counter("partdiff_flightrec_bundles_total",
		"Diagnostics bundles written to disk.")
	r.suppressedC = reg.Counter("partdiff_flightrec_suppressed_total",
		"Bundles suppressed by the trigger cooldown, a full write queue, or a missing bundle directory.")
	r.armedG = reg.Gauge("partdiff_flightrec_armed",
		"Whether the flight recorder is armed (1) or off (0).")
	bus.setRecorder(r)
}

// Armed reports whether the recorder is capturing.
func (r *Recorder) Armed() bool { return r != nil && r.armed.Load() }

// Arm starts capturing. The first Arm starts the bundle-writer and
// stall-watchdog goroutines; they run until Close.
func (r *Recorder) Arm() {
	if r == nil {
		return
	}
	r.mu.Lock()
	if !r.closed && !r.running {
		r.running = true
		r.stop = make(chan struct{})
		r.wg.Add(2)
		go r.writeLoop()
		go r.watch()
	}
	r.mu.Unlock()
	r.armed.Store(true)
	r.armedG.Set(1)
}

// Disarm stops capturing without discarding the window: a later Dump
// still sees the history recorded while armed.
func (r *Recorder) Disarm() {
	if r == nil {
		return
	}
	r.armed.Store(false)
	r.armedG.Set(0)
}

// Close disarms the recorder and stops its goroutines, draining any
// queued bundle writes first. Further triggers are ignored.
func (r *Recorder) Close() {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	running := r.running
	r.mu.Unlock()
	r.Disarm()
	if running {
		close(r.stop)
		r.wg.Wait()
	}
}

// SetDir sets the bundle directory. Arming without a directory records
// the window but suppresses bundle writes (the A/B bench mode).
func (r *Recorder) SetDir(dir string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.dir = dir
	r.mu.Unlock()
}

// Dir returns the bundle directory ("" when none is configured).
func (r *Recorder) Dir() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dir
}

// SetCooldown sets the per-trigger-kind bundle spacing.
func (r *Recorder) SetCooldown(d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.cooldown = d
	r.mu.Unlock()
}

// SetStallThreshold sets the watchdog's no-progress threshold; <= 0
// disables the watchdog.
func (r *Recorder) SetStallThreshold(d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.stall = d
	r.mu.Unlock()
}

// SetConflictStorm sets the conflict-storm trigger: n conflicts within
// window. n <= 0 disables the trigger.
func (r *Recorder) SetConflictStorm(n int, window time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.stormN, r.stormWin = n, window
	r.stormCount, r.stormStart = 0, time.Time{}
	r.mu.Unlock()
}

// SetMaxBundles sets the on-disk retention (oldest pruned first).
func (r *Recorder) SetMaxBundles(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.mu.Lock()
	r.maxBundles = n
	r.mu.Unlock()
}

// AddSource registers a bundle source (see BundleSource).
func (r *Recorder) AddSource(src BundleSource) {
	if r == nil || src == nil {
		return
	}
	r.mu.Lock()
	r.sources = append(r.sources, src)
	r.mu.Unlock()
}

// RecordWave appends one propagation-wave summary.
func (r *Recorder) RecordWave(w WaveRecord) {
	if r == nil || !r.armed.Load() {
		return
	}
	if w.Time.IsZero() {
		w.Time = time.Now()
	}
	r.mu.Lock()
	r.waves.push(w)
	r.mu.Unlock()
}

// CommitBegin marks a commit attempt in flight for the stall watchdog.
// The returned token must be passed to CommitEnd on every exit path; a
// false token (recorder disarmed at begin) makes CommitEnd a no-op, so
// arming mid-commit cannot unbalance the in-flight count.
func (r *Recorder) CommitBegin() bool {
	if r == nil || !r.armed.Load() {
		return false
	}
	r.inflight.Add(1)
	r.lastBegin.Store(time.Now().UnixNano())
	return true
}

// CommitEnd completes a CommitBegin and appends the commit record,
// folding in the last writer-gate wait noted on this recorder.
func (r *Recorder) CommitEnd(tok bool, rec CommitRecord) {
	if r == nil || !tok {
		return
	}
	r.inflight.Add(-1)
	r.lastEnd.Store(time.Now().UnixNano())
	if rec.Time.IsZero() {
		rec.Time = time.Now()
	}
	rec.GateWaitMs = float64(r.gateWait.Swap(0)) / 1e6
	r.mu.Lock()
	r.commits.push(rec)
	r.mu.Unlock()
}

// NoteGateWait records the latest writer-gate admission wait; the next
// CommitEnd attributes it to its commit record. With several writers
// the attribution is approximate (last wait wins), which is fine for a
// diagnostic window.
func (r *Recorder) NoteGateWait(d time.Duration) {
	if r == nil || d <= 0 || !r.armed.Load() {
		return
	}
	r.gateWait.Store(int64(d))
}

// RecordFsync appends one durability latency sample (op is "fsync" or
// "checkpoint").
func (r *Recorder) RecordFsync(op string, d time.Duration) {
	if r == nil || !r.armed.Load() {
		return
	}
	r.mu.Lock()
	r.fsyncs.push(FsyncRecord{Time: time.Now(), Op: op, Ms: float64(d) / 1e6})
	r.mu.Unlock()
}

// RecordChoice appends one hybrid-chooser strategy switch.
func (r *Recorder) RecordChoice(view, strategy, detail string) {
	if r == nil || !r.armed.Load() {
		return
	}
	r.mu.Lock()
	r.choices.push(ChoiceRecord{Time: time.Now(), View: view, Strategy: strategy, Detail: detail})
	r.mu.Unlock()
}

// noteEvent mirrors one published bus event into the recorder. Called
// from the bus publish path under the bus mutex; lock order is always
// bus.mu before Recorder.mu, never the reverse.
func (r *Recorder) noteEvent(e Event) {
	if !r.armed.Load() {
		return
	}
	r.mu.Lock()
	r.events.push(EventRecord{
		Time: e.Time, ID: e.ID, Type: string(e.Type), Op: e.Op,
		CommitSeq: e.CommitSeq, Rule: e.Rule, Detail: e.Detail,
	})
	r.mu.Unlock()
}

// NoteConflict feeds the conflict-storm trigger one write-write
// conflict.
func (r *Recorder) NoteConflict() {
	if r == nil || !r.armed.Load() {
		return
	}
	r.mu.Lock()
	if r.stormN > 0 {
		now := time.Now()
		if r.stormStart.IsZero() || now.Sub(r.stormStart) > r.stormWin {
			r.stormStart, r.stormCount = now, 0
		}
		r.stormCount++
		if r.stormCount == r.stormN {
			r.triggerLocked(TrigConflictStorm,
				fmt.Sprintf("%d conflicts within %s", r.stormCount, r.stormWin))
		}
	}
	r.mu.Unlock()
}

// Trigger fires an anomaly trigger: the window is frozen and a bundle
// write is scheduled, unless the trigger kind is inside its cooldown,
// the write queue is full, or no bundle directory is set. Returns
// whether a bundle was scheduled. Trigger never blocks on I/O.
func (r *Recorder) Trigger(kind, detail string) bool {
	if r == nil || !r.armed.Load() {
		return false
	}
	r.mu.Lock()
	ok := r.triggerLocked(kind, detail)
	r.mu.Unlock()
	return ok
}

func (r *Recorder) triggerLocked(kind, detail string) bool {
	r.trigCount[kind]++
	r.triggers.With(kind).Inc()
	if r.closed || r.dir == "" {
		return false
	}
	now := time.Now()
	if last, ok := r.lastTrig[kind]; ok && now.Sub(last) < r.cooldown {
		r.nSuppress++
		r.suppressedC.Inc()
		return false
	}
	r.lastTrig[kind] = now
	task := &writeTask{b: r.bundleLocked(kind, detail, now), dir: r.dir, keep: r.maxBundles, srcs: r.sources}
	select {
	case r.queue <- task:
		return true
	default:
		r.nSuppress++
		r.suppressedC.Inc()
		return false
	}
}

// bundleLocked freezes the window into a new Bundle. Caller holds r.mu.
func (r *Recorder) bundleLocked(kind, detail string, now time.Time) *Bundle {
	r.seq++
	return &Bundle{
		Manifest: Manifest{
			Format:    BundleFormat,
			Name:      fmt.Sprintf("bundle-%d-%06d-%s", now.UnixMilli(), r.seq, kind),
			Seq:       r.seq,
			Trigger:   kind,
			Detail:    detail,
			Time:      now,
			Version:   Version(),
			GoVersion: runtime.Version(),
		},
		Waves:   r.waves.snapshot(),
		Commits: r.commits.snapshot(),
		Fsyncs:  r.fsyncs.snapshot(),
		Choices: r.choices.snapshot(),
		Events:  r.events.snapshot(),
	}
}

// BundleNow freezes the window and completes a bundle synchronously
// (metrics snapshot, goroutine dump, registered sources), without
// consulting the trigger cooldown and without writing to disk. kind
// defaults to manual.
func (r *Recorder) BundleNow(kind, detail string) *Bundle {
	if r == nil {
		return nil
	}
	if kind == "" {
		kind = TrigManual
	}
	r.mu.Lock()
	b := r.bundleLocked(kind, detail, time.Now())
	srcs := r.sources
	r.mu.Unlock()
	r.complete(b, srcs)
	return b
}

// Dump writes an on-demand bundle to the configured directory and
// returns its path. Unlike Trigger it is synchronous and bypasses the
// cooldown.
func (r *Recorder) Dump() (string, error) {
	if r == nil {
		return "", errors.New("obs: no flight recorder")
	}
	r.mu.Lock()
	dir, keep := r.dir, r.maxBundles
	r.mu.Unlock()
	if dir == "" {
		return "", errors.New("obs: flight recorder has no bundle directory")
	}
	b := r.BundleNow(TrigManual, "requested dump")
	path, err := b.WriteDir(dir)
	if err != nil {
		return "", err
	}
	r.bundleWritten()
	pruneBundles(dir, keep)
	r.publishBundle(path)
	return path, nil
}

func (r *Recorder) bundleWritten() {
	r.bundlesC.Inc()
	r.mu.Lock()
	r.nBundles++
	r.mu.Unlock()
}

func (r *Recorder) publishBundle(path string) {
	if r.bus != nil {
		r.bus.Publish(Event{Type: EventSystem, Op: "diagnostic_bundle", Detail: path})
	}
}

// writeLoop is the bundle-writer goroutine: it completes frozen windows
// (the slow part — metrics, goroutine dump, gated sources) and writes
// them to disk, off the trigger path.
func (r *Recorder) writeLoop() {
	defer r.wg.Done()
	for {
		select {
		case <-r.stop:
			for {
				select {
				case t := <-r.queue:
					r.handle(t)
				default:
					return
				}
			}
		case t := <-r.queue:
			r.handle(t)
		}
	}
}

func (r *Recorder) handle(t *writeTask) {
	r.complete(t.b, t.srcs)
	path, err := t.b.WriteDir(t.dir)
	if err != nil {
		r.mu.Lock()
		r.nSuppress++
		r.mu.Unlock()
		r.suppressedC.Inc()
		return
	}
	r.bundleWritten()
	pruneBundles(t.dir, t.keep)
	r.publishBundle(path)
}

// complete fills a frozen bundle's slow sections: the metrics snapshot,
// a full goroutine dump, and every registered source's files.
func (r *Recorder) complete(b *Bundle, srcs []BundleSource) {
	if r.reg != nil {
		b.Metrics = r.reg.Gather()
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	b.Goroutines = string(buf[:n])
	for _, src := range srcs {
		func() {
			defer func() {
				if p := recover(); p != nil {
					b.Errors = append(b.Errors, fmt.Sprintf("bundle source panic: %v", p))
				}
			}()
			src(func(name string, content []byte) {
				if b.Extras == nil {
					b.Extras = make(map[string]string)
				}
				b.Extras[filepath.Base(name)] = string(content)
			})
		}()
	}
	b.Records = map[string]int{
		"waves": len(b.Waves), "commits": len(b.Commits), "fsyncs": len(b.Fsyncs),
		"choices": len(b.Choices), "events": len(b.Events),
	}
}

// watch is the stall-watchdog goroutine: it triggers when commits are
// in flight but none has started or finished for the stall threshold —
// a global no-progress condition, as opposed to slow_commit which needs
// a commit to complete before it can fire.
func (r *Recorder) watch() {
	defer r.wg.Done()
	t := time.NewTicker(100 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			if !r.armed.Load() {
				continue
			}
			r.mu.Lock()
			stall := r.stall
			r.mu.Unlock()
			if stall <= 0 || r.inflight.Load() == 0 {
				continue
			}
			last := r.lastBegin.Load()
			if e := r.lastEnd.Load(); e > last {
				last = e
			}
			if last == 0 {
				continue
			}
			if idle := time.Since(time.Unix(0, last)); idle > stall {
				r.Trigger(TrigStallWatchdog, fmt.Sprintf(
					"%d commit(s) in flight, no progress for %s",
					r.inflight.Load(), idle.Round(time.Millisecond)))
			}
		}
	}
}

// WriteReport renders the recorder state — the shell's \flightrec
// report.
func (r *Recorder) WriteReport(w io.Writer) error {
	if r == nil {
		_, err := fmt.Fprintln(w, "flight recorder: not available")
		return err
	}
	r.mu.Lock()
	armed, dir := r.armed.Load(), r.dir
	occ := fmt.Sprintf("waves=%d/%d commits=%d/%d fsyncs=%d/%d choices=%d/%d events=%d/%d",
		r.waves.count, waveRingSize, r.commits.count, commitRingSize,
		r.fsyncs.count, fsyncRingSize, r.choices.count, choiceRingSize,
		r.events.count, eventRingSize)
	kinds := make([]string, 0, len(r.trigCount))
	for k := range r.trigCount {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	counts := make(map[string]int64, len(kinds))
	lasts := make(map[string]time.Time, len(kinds))
	for _, k := range kinds {
		counts[k] = r.trigCount[k]
		lasts[k] = r.lastTrig[k]
	}
	bundles, suppressed := r.nBundles, r.nSuppress
	cooldown, stall := r.cooldown, r.stall
	stormN, stormWin := r.stormN, r.stormWin
	r.mu.Unlock()

	state := "off"
	if armed {
		state = "armed"
	}
	if dir == "" {
		dir = "(none — window only, no bundles)"
	}
	if _, err := fmt.Fprintf(w, "flight recorder: %s dir=%s\n", state, dir); err != nil {
		return err
	}
	fmt.Fprintf(w, "  window: %s\n", occ)
	fmt.Fprintf(w, "  tuning: cooldown=%s stall=%s storm=%d/%s\n", cooldown, stall, stormN, stormWin)
	fmt.Fprintf(w, "  bundles written=%d suppressed=%d\n", bundles, suppressed)
	if len(kinds) == 0 {
		fmt.Fprintln(w, "  triggers: (none)")
		return nil
	}
	fmt.Fprintln(w, "  triggers:")
	for _, k := range kinds {
		fmt.Fprintf(w, "    %-22s %6d   last %s\n", k, counts[k], lasts[k].Format(time.RFC3339))
	}
	return nil
}

// Manifest is the bundle's manifest.json: identity, provenance and a
// table of contents. It is written last, so its presence marks a
// complete bundle.
type Manifest struct {
	Format    string         `json:"format"`
	Name      string         `json:"name"`
	Seq       uint64         `json:"seq"`
	Trigger   string         `json:"trigger"`
	Detail    string         `json:"detail,omitempty"`
	Time      time.Time      `json:"time"`
	Version   string         `json:"version"`
	GoVersion string         `json:"go_version"`
	Records   map[string]int `json:"records,omitempty"`
	Files     []string       `json:"files,omitempty"`
	Errors    []string       `json:"errors,omitempty"`
}

// Bundle is one complete diagnostics bundle. Over HTTP it travels as a
// single JSON document; WriteDir persists it as a directory holding the
// manifest, the recorder window as JSONL, the metrics snapshot, the
// goroutine dump and each source-contributed file.
type Bundle struct {
	Manifest
	Path       string            `json:"path,omitempty"`
	Waves      []WaveRecord      `json:"waves"`
	Commits    []CommitRecord    `json:"commits"`
	Fsyncs     []FsyncRecord     `json:"fsyncs"`
	Choices    []ChoiceRecord    `json:"choices"`
	Events     []EventRecord     `json:"events"`
	Metrics    []Point           `json:"metrics,omitempty"`
	Extras     map[string]string `json:"extras,omitempty"`
	Goroutines string            `json:"goroutines,omitempty"`
}

// recLine is one recorder.jsonl line: kind plus exactly one populated
// record.
type recLine struct {
	Kind   string        `json:"kind"`
	Wave   *WaveRecord   `json:"wave,omitempty"`
	Commit *CommitRecord `json:"commit,omitempty"`
	Fsync  *FsyncRecord  `json:"fsync,omitempty"`
	Choice *ChoiceRecord `json:"choice,omitempty"`
	Event  *EventRecord  `json:"event,omitempty"`
}

// WriteDir writes the bundle under root as root/<bundle name>/ and
// returns the bundle directory path.
func (b *Bundle) WriteDir(root string) (string, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return "", err
	}
	dir := filepath.Join(root, b.Name)
	if err := os.Mkdir(dir, 0o755); err != nil {
		return "", err
	}

	var rec bytes.Buffer
	enc := json.NewEncoder(&rec)
	for i := range b.Waves {
		enc.Encode(recLine{Kind: "wave", Wave: &b.Waves[i]})
	}
	for i := range b.Commits {
		enc.Encode(recLine{Kind: "commit", Commit: &b.Commits[i]})
	}
	for i := range b.Fsyncs {
		enc.Encode(recLine{Kind: "fsync", Fsync: &b.Fsyncs[i]})
	}
	for i := range b.Choices {
		enc.Encode(recLine{Kind: "choice", Choice: &b.Choices[i]})
	}
	for i := range b.Events {
		enc.Encode(recLine{Kind: "event", Event: &b.Events[i]})
	}

	files := map[string][]byte{
		"recorder.jsonl": rec.Bytes(),
		"goroutines.txt": []byte(b.Goroutines),
	}
	if mj, err := json.MarshalIndent(b.Metrics, "", "  "); err == nil {
		files["metrics.json"] = mj
	}
	for name, content := range b.Extras {
		files[name] = []byte(content)
	}
	b.Files = make([]string, 0, len(files)+1)
	for name := range files {
		b.Files = append(b.Files, name)
	}
	b.Files = append(b.Files, "manifest.json")
	sort.Strings(b.Files)
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), content, 0o644); err != nil {
			return "", err
		}
	}
	man, err := json.MarshalIndent(b.Manifest, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), append(man, '\n'), 0o644); err != nil {
		return "", err
	}
	b.Path = dir
	return dir, nil
}

// BundleInfo is one entry of a bundle-directory listing.
type BundleInfo struct {
	Name    string    `json:"name"`
	Trigger string    `json:"trigger"`
	Detail  string    `json:"detail,omitempty"`
	Time    time.Time `json:"time"`
}

// ListBundles lists complete bundles (those with a readable manifest)
// in the configured directory, oldest first.
func (r *Recorder) ListBundles() ([]BundleInfo, error) {
	dir := r.Dir()
	if dir == "" {
		return nil, errors.New("obs: flight recorder has no bundle directory")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []BundleInfo
	for _, ent := range ents {
		if !ent.IsDir() || !strings.HasPrefix(ent.Name(), "bundle-") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, ent.Name(), "manifest.json"))
		if err != nil {
			continue
		}
		var m Manifest
		if json.Unmarshal(data, &m) != nil || m.Format != BundleFormat {
			continue
		}
		out = append(out, BundleInfo{Name: ent.Name(), Trigger: m.Trigger, Detail: m.Detail, Time: m.Time})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// pruneBundles removes the oldest bundle directories beyond keep. Names
// embed a millisecond timestamp plus the recorder sequence, so
// lexicographic order is creation order within a process.
func pruneBundles(root string, keep int) {
	ents, err := os.ReadDir(root)
	if err != nil {
		return
	}
	var names []string
	for _, ent := range ents {
		if ent.IsDir() && strings.HasPrefix(ent.Name(), "bundle-") {
			names = append(names, ent.Name())
		}
	}
	if len(names) <= keep {
		return
	}
	sort.Strings(names)
	for _, name := range names[:len(names)-keep] {
		os.RemoveAll(filepath.Join(root, name))
	}
}
