package obs

import (
	"runtime"
	"runtime/debug"
	"time"
)

// buildVersion is the fallback version string; release builds override
// it with `-ldflags "-X partdiff/internal/obs.buildVersion=v1.2.3"`.
var buildVersion = "dev"

// Version returns the build version: the module version stamped by the
// Go toolchain when available, otherwise the -ldflags override.
func Version() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		if v := info.Main.Version; v != "" && v != "(devel)" {
			return v
		}
	}
	return buildVersion
}

// registerBuildInfo publishes the build-info gauge and uptime counter
// on r. The gauge follows the Prometheus build_info idiom: constant 1
// with the interesting values as labels, so dashboards join on it. The
// uptime counter is closure-backed and counts seconds since the
// registry bundle was created (one bundle per session/process).
func registerBuildInfo(r *Registry) {
	r.GaugeVec("amos_build_info",
		"Build metadata; constant 1 with version labels.",
		"version", "goversion").With(Version(), runtime.Version()).Set(1)
	start := time.Now()
	r.CounterFunc("amos_uptime_seconds_total",
		"Seconds since this observability bundle was created.",
		func() int64 { return int64(time.Since(start) / time.Second) })
}
