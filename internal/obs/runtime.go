package obs

import (
	"math"
	rmetrics "runtime/metrics"
	"sync"
	"time"
)

// This file bridges the Go runtime's own metrics (runtime/metrics,
// stdlib) into the registry as partdiff_go_*: heap bytes, goroutine
// count, the GC pause histogram and the scheduler latency histogram.
// Bundles and /metrics thereby carry process health next to the
// database's meters.
//
// One runtimeSampler is shared by all four closures; it refreshes at
// most once per interval, so a Gather (which reads all four) costs a
// single runtime/metrics.Read.

const runtimeSampleInterval = time.Second

// runtime/metrics keys sampled, in sample-slice order.
var runtimeSampleNames = []string{
	"/memory/classes/heap/objects:bytes",
	"/sched/goroutines:goroutines",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

const (
	sampHeapBytes = iota
	sampGoroutines
	sampGCPauses
	sampSchedLatencies
)

type runtimeSampler struct {
	mu      sync.Mutex
	last    time.Time
	samples []rmetrics.Sample
}

func newRuntimeSampler() *runtimeSampler {
	s := &runtimeSampler{samples: make([]rmetrics.Sample, len(runtimeSampleNames))}
	for i, name := range runtimeSampleNames {
		s.samples[i].Name = name
	}
	return s
}

// read refreshes the cached samples if stale and returns them. The
// returned slice is only valid until the next read; callers extract
// what they need under the sampler's lock via the with helper.
func (s *runtimeSampler) with(fn func(samples []rmetrics.Sample)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if time.Since(s.last) >= runtimeSampleInterval {
		rmetrics.Read(s.samples)
		s.last = time.Now()
	}
	fn(s.samples)
}

func (s *runtimeSampler) uint64At(i int) int64 {
	var v int64
	s.with(func(samples []rmetrics.Sample) {
		if samples[i].Value.Kind() == rmetrics.KindUint64 {
			v = int64(samples[i].Value.Uint64())
		}
	})
	return v
}

func (s *runtimeSampler) histAt(i int) HistogramSnapshot {
	var snap HistogramSnapshot
	s.with(func(samples []rmetrics.Sample) {
		if samples[i].Value.Kind() == rmetrics.KindFloat64Histogram {
			snap = convertRuntimeHistogram(samples[i].Value.Float64Histogram())
		}
	})
	return snap
}

// maxRuntimeBuckets bounds the exposition size: runtime histograms have
// hundreds of buckets, which would dominate the /metrics payload, so
// adjacent buckets are merged down to at most this many bounds
// (cumulative counts make merging exact; only bound resolution is
// lost).
const maxRuntimeBuckets = 32

// convertRuntimeHistogram converts a runtime/metrics histogram (bucket
// i counts [Buckets[i], Buckets[i+1]), boundaries may be ±Inf) into the
// registry's cumulative form. The sum is approximated from bucket
// midpoints — runtime histograms don't carry an exact sum.
func convertRuntimeHistogram(h *rmetrics.Float64Histogram) HistogramSnapshot {
	var snap HistogramSnapshot
	if h == nil || len(h.Buckets) < 2 {
		return snap
	}
	var cum int64
	var sum float64
	for i, c := range h.Counts {
		cum += int64(c)
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		if !math.IsInf(hi, 1) {
			snap.Bounds = append(snap.Bounds, hi)
			snap.Buckets = append(snap.Buckets, cum)
		}
		if c > 0 {
			if math.IsInf(lo, -1) {
				lo = 0
			}
			if math.IsInf(hi, 1) {
				hi = lo
			}
			sum += float64(c) * (lo + hi) / 2
		}
	}
	snap.Count = cum
	snap.Sum = sum
	if len(snap.Bounds) > maxRuntimeBuckets {
		stride := (len(snap.Bounds) + maxRuntimeBuckets - 1) / maxRuntimeBuckets
		var bounds []float64
		var buckets []int64
		for i := stride - 1; i < len(snap.Bounds); i += stride {
			bounds = append(bounds, snap.Bounds[i])
			buckets = append(buckets, snap.Buckets[i])
		}
		if last := len(snap.Bounds) - 1; len(bounds) == 0 || bounds[len(bounds)-1] != snap.Bounds[last] {
			bounds = append(bounds, snap.Bounds[last])
			buckets = append(buckets, snap.Buckets[last])
		}
		snap.Bounds, snap.Buckets = bounds, buckets
	}
	return snap
}

// registerRuntimeMetrics publishes the partdiff_go_* process-health
// metrics on r.
func registerRuntimeMetrics(r *Registry) {
	s := newRuntimeSampler()
	r.GaugeFunc("partdiff_go_heap_bytes",
		"Bytes of live heap objects (runtime /memory/classes/heap/objects).",
		func() int64 { return s.uint64At(sampHeapBytes) })
	r.GaugeFunc("partdiff_go_goroutines",
		"Live goroutines (runtime /sched/goroutines).",
		func() int64 { return s.uint64At(sampGoroutines) })
	r.HistogramFunc("partdiff_go_gc_pause_seconds",
		"Stop-the-world GC pause latency (runtime /gc/pauses).",
		func() HistogramSnapshot { return s.histAt(sampGCPauses) })
	r.HistogramFunc("partdiff_go_sched_latency_seconds",
		"Goroutine scheduling latency (runtime /sched/latencies).",
		func() HistogramSnapshot { return s.histAt(sampSchedLatencies) })
}
