package obs

import (
	"testing"
)

// TestFilteredSubscriberNoSpuriousGap: events a subscriber's filter
// excludes must not consume its ring slots — a narrow subscription on a
// chatty bus sees neither drops nor synthetic gap events, no matter how
// far the bus outruns its buffer.
func TestFilteredSubscriberNoSpuriousGap(t *testing.T) {
	b, _ := newTestBus(64)
	sub := b.Subscribe(4, EventSystem) // buffer far smaller than the traffic
	defer sub.Close()

	for i := 0; i < 100; i++ {
		b.Publish(Event{Type: EventTxn, Op: "commit"})
	}
	b.Publish(Event{Type: EventSystem, Op: "checkpoint"})

	e, ok := sub.TryNext()
	if !ok {
		t.Fatal("matching event not delivered")
	}
	if e.Type == EventGap {
		t.Fatalf("filtered-out traffic surfaced a spurious gap: %+v", e)
	}
	if e.Type != EventSystem || e.Op != "checkpoint" {
		t.Fatalf("delivered %+v, want the system event", e)
	}
	if d := sub.Dropped(); d != 0 {
		t.Errorf("Dropped = %d, want 0 (no matching event was lost)", d)
	}
	if _, ok := sub.TryNext(); ok {
		t.Error("unexpected second delivery")
	}
}

// TestFilteredSubscriberLagGauge: the lag gauge measures deliverable
// events only. A filtered subscriber that has consumed everything its
// filter admits reports zero lag even when the bus head is far ahead.
func TestFilteredSubscriberLagGauge(t *testing.T) {
	b, r := newTestBus(64)
	sub := b.Subscribe(8, EventSystem)
	defer sub.Close()

	for i := 0; i < 50; i++ {
		b.Publish(Event{Type: EventTxn, Op: "commit"})
	}
	if lag := r.Total("partdiff_events_lag"); lag != 0 {
		t.Errorf("lag = %v with only filtered-out traffic, want 0", lag)
	}

	// Matching traffic lands in the buffer at publish time, so the
	// subscriber's effective position tracks the bus head either way.
	b.Publish(Event{Type: EventSystem, Op: "checkpoint"})
	b.Publish(Event{Type: EventTxn, Op: "commit"})
	if lag := r.Total("partdiff_events_lag"); lag != 0 {
		t.Errorf("lag = %v after mixed traffic, want 0", lag)
	}
}

// TestResumeMissedCountRespectsFilter: when a filtered subscriber
// resumes past ring-evicted history, the missed count includes only
// events its filter would have delivered — the type history remembers
// what the evicted IDs were.
func TestResumeMissedCountRespectsFilter(t *testing.T) {
	b, _ := newTestBus(4)
	// IDs 1..12: system events at 3, 6, 9, 12; txn elsewhere.
	for i := 1; i <= 12; i++ {
		typ := EventTxn
		if i%3 == 0 {
			typ = EventSystem
		}
		b.Publish(Event{Type: typ})
	}
	// Ring holds IDs 9..12; IDs 1..8 are evicted (system: 3 and 6).

	sub, missed := b.SubscribeFrom(0, 16, EventSystem)
	defer sub.Close()
	if missed != 2 {
		t.Errorf("missed = %d, want 2 (only the evicted system events count)", missed)
	}
	e, ok := sub.TryNext()
	if !ok || e.Type != EventGap || e.Missed != 2 {
		t.Fatalf("first delivery = %+v, %v; want gap with missed=2", e, ok)
	}
	var got []uint64
	for {
		e, ok := sub.TryNext()
		if !ok {
			break
		}
		if e.Type != EventSystem {
			t.Errorf("filter leaked %+v", e)
		}
		got = append(got, e.ID)
	}
	if len(got) != 2 || got[0] != 9 || got[1] != 12 {
		t.Errorf("replayed IDs = %v, want [9 12]", got)
	}

	// An unfiltered resume over the same history counts every evicted ID.
	sub2, missed2 := b.SubscribeFrom(0, 16)
	defer sub2.Close()
	if missed2 != 8 {
		t.Errorf("unfiltered missed = %d, want 8", missed2)
	}
}
