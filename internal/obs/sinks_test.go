package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestChannelSinkDeliversAndCloses(t *testing.T) {
	b, _ := newTestBus(0)
	sink := NewChannelSink(8)
	detach := b.AttachSink(sink, 0)

	b.Publish(Event{Type: EventTxn, Op: "begin"})
	b.Publish(Event{Type: EventTxn, Op: "commit"})

	var ops []string
	for i := 0; i < 2; i++ {
		select {
		case e := <-sink.C:
			ops = append(ops, e.Op)
		case <-time.After(2 * time.Second):
			t.Fatal("sink did not receive events")
		}
	}
	if fmt.Sprint(ops) != "[begin commit]" {
		t.Fatalf("sink received %v", ops)
	}
	detach()
	detach() // idempotent
	// The channel is closed after detach so range loops terminate.
	if _, ok := <-sink.C; ok {
		t.Fatal("channel still open after detach")
	}
}

func TestJSONLSinkWritesOneObjectPerLine(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	if err := sink.Emit(Event{ID: 1, Type: EventSystem, Op: "checkpoint"}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Emit(Event{ID: 2, Type: EventTxn, Op: "commit"}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2:\n%s", len(lines), buf.String())
	}
	for i, line := range lines {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %d is not JSON: %v", i, err)
		}
		if e.ID != uint64(i+1) {
			t.Fatalf("line %d has id %d", i, e.ID)
		}
	}
}

// fakeBroker is the stdlib stand-in for an MQTT/Kafka client: it
// records every published message by topic.
type fakeBroker struct {
	mu     sync.Mutex
	msgs   map[string][][]byte
	closed bool
}

func (f *fakeBroker) Publish(topic string, payload []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.msgs == nil {
		f.msgs = map[string][][]byte{}
	}
	f.msgs[topic] = append(f.msgs[topic], append([]byte(nil), payload...))
	return nil
}

func (f *fakeBroker) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	return nil
}

func TestTopicSinkRoutesByType(t *testing.T) {
	broker := &fakeBroker{}
	sink := NewTopicSink(broker, "")
	b, _ := newTestBus(0)
	detach := b.AttachSink(sink, 0, EventTxn, EventSystem)

	b.Publish(Event{Type: EventTxn, Op: "commit"})
	b.Publish(Event{Type: EventSystem, Op: "checkpoint"})
	b.Publish(Event{Type: EventDelta, Round: 1}) // filtered out

	deadline := time.Now().Add(2 * time.Second)
	for {
		broker.mu.Lock()
		n := len(broker.msgs["amos/events/txn"]) + len(broker.msgs["amos/events/system"])
		broker.mu.Unlock()
		if n == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("broker received %d messages, want 2", n)
		}
		time.Sleep(time.Millisecond)
	}
	detach()

	broker.mu.Lock()
	defer broker.mu.Unlock()
	if len(broker.msgs["amos/events/delta"]) != 0 {
		t.Fatal("filtered event type reached the broker")
	}
	var e Event
	if err := json.Unmarshal(broker.msgs["amos/events/txn"][0], &e); err != nil || e.Op != "commit" {
		t.Fatalf("txn payload = %s (%v)", broker.msgs["amos/events/txn"][0], err)
	}
	if !broker.closed {
		t.Fatal("detach did not close the publisher")
	}
}

func TestAttachSinkNilSafe(t *testing.T) {
	var b *Bus
	detach := b.AttachSink(NewChannelSink(1), 0)
	detach()
	b2, _ := newTestBus(0)
	b2.AttachSink(nil, 0)()
}
