package obs

import (
	"strings"
	"testing"
	"time"
)

func TestProfilerNilSafe(t *testing.T) {
	var p *Profiler
	if p.Enabled() {
		t.Error("nil profiler enabled")
	}
	p.Enable(true)
	p.SetSampleEvery(10)
	if p.SampleTick() {
		t.Error("nil profiler sampled")
	}
	p.PropagationTick()
	if p.Propagations() != 0 {
		t.Error("nil propagations")
	}
	if d := p.Differential("v", "Δv/Δ+x", "x", "+", "+"); d != nil {
		t.Error("nil profiler returned an entry")
	}
	if s := p.Snapshot(); s != nil {
		t.Error("nil snapshot non-nil")
	}
	p.Reset()
	// A nil entry is also recordable (callers skip nil checks).
	var d *DiffProf
	_ = d // Record on nil would panic; propnet only records when profiling is on.
}

func TestProfilerSampling(t *testing.T) {
	p := NewProfiler()
	p.Enable(true)
	// Default: every execution is timed.
	for i := 0; i < 5; i++ {
		if !p.SampleTick() {
			t.Fatal("sampleN=1 must time every execution")
		}
	}
	p.SetSampleEvery(4)
	timed := 0
	for i := 0; i < 400; i++ {
		if p.SampleTick() {
			timed++
		}
	}
	if timed != 100 {
		t.Errorf("1-in-4 sampling: timed %d of 400", timed)
	}
	p.SetSampleEvery(0) // clamped to 1
	if !p.SampleTick() {
		t.Error("SetSampleEvery(0) must clamp to always-on")
	}
}

func TestProfilerEstTimeScalesBySampling(t *testing.T) {
	p := NewProfiler()
	d := p.Differential("v", "Δv/Δ+x", "x", "+", "+")
	// 4 executions, only 1 timed at 100ns → estimate 400ns.
	d.Record(1, 1, 10, true, 100*time.Nanosecond)
	d.Record(1, 1, 10, false, 0)
	d.Record(1, 0, 10, false, 0)
	d.Record(1, 0, 10, false, 0)
	snap := p.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot len %d", len(snap))
	}
	pt := snap[0]
	if pt.Execs != 4 || pt.ZeroEffect != 2 || pt.Scanned != 40 {
		t.Errorf("counts: %+v", pt)
	}
	if got := pt.EstTimeNs(); got != 400 {
		t.Errorf("EstTimeNs=%d want 400", got)
	}
}

func TestProfilerSnapshotRanking(t *testing.T) {
	p := NewProfiler()
	p.Differential("b", "Δb/Δ+x", "x", "+", "+").Record(1, 1, 50, false, 0)
	p.Differential("a", "Δa/Δ+x", "x", "+", "+").Record(1, 1, 100, false, 0)
	p.Differential("c", "Δc/Δ+x", "x", "+", "+").Record(1, 1, 50, false, 0)
	snap := p.Snapshot()
	if snap[0].View != "a" {
		t.Errorf("rank 1 = %s, want a (most scanned)", snap[0].View)
	}
	// b and c tie on every cost key; name breaks the tie.
	if snap[1].View != "b" || snap[2].View != "c" {
		t.Errorf("tie broken wrong: %s, %s", snap[1].View, snap[2].View)
	}
}

func TestProfilerResetAndReportHeader(t *testing.T) {
	p := NewProfiler()
	p.Enable(true)
	p.PropagationTick()
	p.Differential("v", "Δv/Δ+x", "x", "+", "+").Record(2, 0, 7, false, 0)
	var b strings.Builder
	if err := p.WriteReport(&b, 0, nil, nil); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"1 profiled propagation(s), 1 differential execution(s), 1 zero-effect (100.0%)",
		"zero-effect executions by source:",
		"  v                      1 of 1 (100.0%)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	p.Reset()
	if p.Propagations() != 0 || len(p.Snapshot()) != 0 {
		t.Error("Reset left state behind")
	}
	if !p.Enabled() {
		t.Error("Reset must keep the enabled flag")
	}
	b.Reset()
	if err := p.WriteReport(&b, 0, nil, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no differential executions profiled") {
		t.Errorf("empty report:\n%s", b.String())
	}
}

func TestFmtNsAndPct(t *testing.T) {
	cases := []struct {
		ns, timed int64
		want      string
	}{
		{0, 0, "-"},
		{500, 1, "500ns"},
		{2500, 1, "2.5µs"},
		{3_500_000, 1, "3.5ms"},
		{2_000_000_000, 1, "2.00s"},
	}
	for _, c := range cases {
		if got := fmtNs(c.ns, c.timed); got != c.want {
			t.Errorf("fmtNs(%d,%d)=%q want %q", c.ns, c.timed, got, c.want)
		}
	}
	if pct(0, 0) != "0.0%" || pct(1, 2) != "50.0%" {
		t.Error("pct")
	}
}

func TestWritePrometheusPrefix(t *testing.T) {
	r := NewRegistry()
	r.Counter("partdiff_propnet_zero_effect_total", "x").Inc()
	r.Counter("partdiff_txn_commits_total", "x").Inc()
	var b strings.Builder
	if err := r.WritePrometheusPrefix(&b, "partdiff_propnet_"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "partdiff_propnet_zero_effect_total 1") {
		t.Errorf("prefix output missing matching counter:\n%s", out)
	}
	if strings.Contains(out, "partdiff_txn_commits_total") {
		t.Errorf("prefix output leaked non-matching counter:\n%s", out)
	}
	// The partdiff_ namespace is implicit: "propnet_" matches too.
	b.Reset()
	if err := r.WritePrometheusPrefix(&b, "propnet_"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "partdiff_propnet_zero_effect_total 1") {
		t.Errorf("implicit-namespace prefix did not match:\n%s", b.String())
	}
}
