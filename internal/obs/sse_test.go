package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// sseFrame is one parsed SSE frame.
type sseFrame struct {
	id      string
	event   string
	data    string
	comment bool
}

// readFrame parses the next SSE frame (terminated by a blank line).
func readFrame(br *bufio.Reader) (sseFrame, error) {
	var f sseFrame
	seen := false
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return f, err
		}
		line = strings.TrimRight(line, "\n")
		if line == "" {
			if seen {
				return f, nil
			}
			continue
		}
		seen = true
		switch {
		case strings.HasPrefix(line, ":"):
			f.comment = true
		case strings.HasPrefix(line, "id: "):
			f.id = line[4:]
		case strings.HasPrefix(line, "event: "):
			f.event = line[7:]
		case strings.HasPrefix(line, "data: "):
			f.data = line[6:]
		}
	}
}

// sseGet opens an SSE stream against srv; the caller cancels ctx to
// disconnect.
func sseGet(t *testing.T, ctx context.Context, url string, hdr map[string]string) (*bufio.Reader, func()) {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	return bufio.NewReader(resp.Body), func() { resp.Body.Close() }
}

func TestSSEStreamsPublishedEvents(t *testing.T) {
	b, _ := newTestBus(0)
	srv := httptest.NewServer(SSEHandler(b))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	br, done := sseGet(t, ctx, srv.URL+"?types=txn", nil)
	defer done()

	// Wait until the subscriber is attached before publishing.
	waitForSubscribers(t, b, 1)
	b.Publish(Event{Type: EventSystem, Op: "checkpoint"}) // filtered out
	b.Publish(Event{Type: EventTxn, Op: "commit", Writes: 3})

	f, err := readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if f.event != "txn" || f.id == "" {
		t.Fatalf("frame = %+v, want a txn frame with an id", f)
	}
	var e Event
	if err := json.Unmarshal([]byte(f.data), &e); err != nil || e.Op != "commit" || e.Writes != 3 {
		t.Fatalf("data = %q (%v)", f.data, err)
	}
}

// TestSSEResumeExactSuffix covers the reconnect contract: a client that
// disconnects and resumes with Last-Event-ID receives exactly the
// events it missed, when they are still in the resume ring.
func TestSSEResumeExactSuffix(t *testing.T) {
	b, _ := newTestBus(0)
	srv := httptest.NewServer(SSEHandler(b))
	defer srv.Close()

	ctx1, cancel1 := context.WithCancel(context.Background())
	br, done1 := sseGet(t, ctx1, srv.URL, nil)
	waitForSubscribers(t, b, 1)
	b.Publish(Event{Type: EventDelta, Round: 1})
	b.Publish(Event{Type: EventDelta, Round: 2})
	var lastID string
	for i := 0; i < 2; i++ {
		f, err := readFrame(br)
		if err != nil {
			t.Fatal(err)
		}
		lastID = f.id
	}
	// Disconnect, miss two events, reconnect with Last-Event-ID.
	cancel1()
	done1()
	waitForSubscribers(t, b, 0)
	b.Publish(Event{Type: EventDelta, Round: 3})
	b.Publish(Event{Type: EventDelta, Round: 4})

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	br2, done2 := sseGet(t, ctx2, srv.URL, map[string]string{"Last-Event-ID": lastID})
	defer done2()
	var rounds []int
	for i := 0; i < 2; i++ {
		f, err := readFrame(br2)
		if err != nil {
			t.Fatal(err)
		}
		if f.event == "gap" {
			t.Fatalf("unexpected gap frame on an in-ring resume: %+v", f)
		}
		var e Event
		if err := json.Unmarshal([]byte(f.data), &e); err != nil {
			t.Fatal(err)
		}
		rounds = append(rounds, e.Round)
	}
	if fmt.Sprint(rounds) != "[3 4]" {
		t.Fatalf("resumed rounds %v, want exactly the missed suffix [3 4]", rounds)
	}
}

// TestSSEResumeGapWhenEvicted covers the other half of the contract:
// when the missed suffix has been evicted from the ring, the stream
// starts with an explicit gap event (with no id line) carrying the
// eviction count.
func TestSSEResumeGapWhenEvicted(t *testing.T) {
	b, _ := newTestBus(4)
	b.Arm()
	srv := httptest.NewServer(SSEHandler(b))
	defer srv.Close()

	for i := 1; i <= 10; i++ {
		b.Publish(Event{Type: EventDelta, Round: i})
	}
	// Ring holds events 7-10; a client that saw event 2 lost 3-6.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	br, done := sseGet(t, ctx, srv.URL+"?last_event_id=2", nil)
	defer done()

	f, err := readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if f.event != "gap" {
		t.Fatalf("first frame = %+v, want an explicit gap event", f)
	}
	if f.id != "" {
		t.Fatalf("gap frame carries id %q; it must be unnumbered", f.id)
	}
	var gap Event
	if err := json.Unmarshal([]byte(f.data), &gap); err != nil || gap.Missed != 4 {
		t.Fatalf("gap data = %q (%v), want missed=4", f.data, err)
	}
	f, err = readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if f.id != "7" {
		t.Fatalf("first real frame has id %q, want 7 (oldest ring survivor)", f.id)
	}
}

func TestSSERejectsBadRequests(t *testing.T) {
	b, _ := newTestBus(0)
	srv := httptest.NewServer(SSEHandler(b))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "?types=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad types filter: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "?last_event_id=notanumber")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad Last-Event-ID: status %d, want 400", resp.StatusCode)
	}
}

func TestSSEHeartbeat(t *testing.T) {
	old := SSEHeartbeat
	SSEHeartbeat = 20 * time.Millisecond
	defer func() { SSEHeartbeat = old }()

	b, _ := newTestBus(0)
	srv := httptest.NewServer(SSEHandler(b))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	br, done := sseGet(t, ctx, srv.URL, nil)
	defer done()

	f, err := readFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if !f.comment {
		t.Fatalf("idle stream produced a non-heartbeat frame: %+v", f)
	}
}

// waitForSubscribers blocks until the bus has n attached subscribers.
func waitForSubscribers(t *testing.T, b *Bus, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		b.mu.Lock()
		have := len(b.subs)
		b.mu.Unlock()
		if have == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("bus has %d subscribers, want %d", have, n)
		}
		time.Sleep(time.Millisecond)
	}
}
