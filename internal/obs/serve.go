package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io/fs"
	"net"
	"net/http"
	"net/http/pprof"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
)

// expvar.Publish panics on duplicate names, so the partdiff expvar
// entry is published once per process and indirected through an atomic
// pointer to whichever registry most recently asked to be served.
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[Registry]
)

func publishExpvar(r *Registry) {
	expvarReg.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("partdiff", expvar.Func(func() any {
			if reg := expvarReg.Load(); reg != nil {
				return reg.expvarMap()
			}
			return map[string]any{}
		}))
	})
}

// HealthFunc reports one health aspect; nil error means healthy. Used
// by HandlerOpts to wire /healthz and /readyz to session state.
type HealthFunc func() error

// HandlerOpts customizes the monitoring handler. The zero value gives
// always-healthy /healthz and /readyz (suitable for a bare registry
// with no session behind it).
type HandlerOpts struct {
	// Live backs /healthz: non-nil error means the process is broken
	// (e.g. the database is sticky-poisoned) and responds 503.
	Live HealthFunc
	// Ready backs /readyz: non-nil error means the server must not
	// receive traffic yet or anymore (recovery incomplete, WAL
	// poisoned) and responds 503.
	Ready HealthFunc
	// Flight, when set, backs the diagnostics-bundle endpoints:
	// GET /debug/bundle captures an on-demand bundle and returns it as
	// JSON, GET /debug/bundles/ lists bundles written to disk and
	// serves their files.
	Flight *Recorder
}

// Handler returns the monitoring endpoint for a registry:
//
//	/metrics       Prometheus text exposition format (?prefix=propnet filters)
//	/healthz       liveness (200, or 503 + reason when poisoned)
//	/readyz        readiness (200, or 503 + reason)
//	/debug/bundle  on-demand diagnostics bundle as JSON (with HandlerOpts.Flight)
//	/debug/bundles/  bundles on disk: JSON list, /<name>/<file> serves one file
//	/debug/vars    expvar JSON (stdlib format, partdiff metrics under "partdiff")
//	/debug/pprof/  Go runtime profiles (CPU, heap, goroutine, block, mutex, trace)
//	/              a small index page
//
// The pprof handlers are registered explicitly on this mux (not via the
// net/http/pprof import side effect, which only touches
// http.DefaultServeMux), so a propagation hot spot found in the
// profiler's report can be drilled into with `go tool pprof` against
// the same endpoint.
func Handler(r *Registry) http.Handler { return HandlerWith(r, HandlerOpts{}) }

// HandlerWith is Handler with health checks wired in.
func HandlerWith(r *Registry, opts HandlerOpts) http.Handler {
	publishExpvar(r)
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", healthEndpoint(opts.Live))
	mux.HandleFunc("/readyz", healthEndpoint(opts.Ready))
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if p := req.URL.Query().Get("prefix"); p != "" {
			_ = r.WritePrometheusPrefix(w, p)
			return
		}
		_ = r.WritePrometheus(w)
	})
	if opts.Flight != nil {
		mux.HandleFunc("/debug/bundle", bundleEndpoint(opts.Flight))
		mux.HandleFunc("/debug/bundles/", bundlesEndpoint(opts.Flight))
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, `<html><head><title>partdiff monitor</title></head><body>
<h1>partdiff monitor</h1>
<ul>
<li><a href="/metrics">/metrics</a> — Prometheus text format (<a href="/metrics?prefix=propnet">?prefix=propnet</a> filters)</li>
<li><a href="/healthz">/healthz</a> — liveness, <a href="/readyz">/readyz</a> — readiness</li>
<li><a href="/debug/bundle">/debug/bundle</a> — on-demand diagnostics bundle, <a href="/debug/bundles/">/debug/bundles/</a> — bundles on disk</li>
<li><a href="/debug/vars">/debug/vars</a> — expvar JSON</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — Go runtime profiles</li>
</ul>
</body></html>`)
	})
	return mux
}

// healthEndpoint renders one HealthFunc as an HTTP endpoint: "ok" on
// 200, the reason (the error text) on 503. Unhealthy responses carry
// Retry-After: 1 so probes and load balancers back off politely —
// recovery completes on its own, while poisoning persists until an
// operator intervenes; either way re-probing in a second is right.
// A nil check is always healthy.
func healthEndpoint(check HealthFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if check != nil {
			if err := check(); err != nil {
				w.Header().Set("Retry-After", "1")
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintln(w, err.Error())
				return
			}
		}
		fmt.Fprintln(w, "ok")
	}
}

// bundleEndpoint serves GET /debug/bundle: freeze the recorder window,
// complete a bundle (metrics, goroutine dump, sources) and return it as
// a single JSON document. When a bundle directory is configured the
// bundle is also written to disk and the response carries its path.
func bundleEndpoint(rec *Recorder) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if !rec.Armed() {
			http.Error(w, "flight recorder is not armed", http.StatusServiceUnavailable)
			return
		}
		b := rec.BundleNow(TrigManual, "debug endpoint request")
		if dir := rec.Dir(); dir != "" {
			if path, err := b.WriteDir(dir); err == nil {
				b.Path = path
				rec.bundleWritten()
				rec.publishBundle(path)
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(b)
	}
}

// bundlesEndpoint serves GET /debug/bundles/ (the list of complete
// bundles on disk, as JSON) and GET /debug/bundles/<name>/<file> (one
// file from a bundle directory). Bundle and file names are single path
// elements; anything else is rejected, so the endpoint cannot traverse
// out of the bundle directory.
func bundlesEndpoint(rec *Recorder) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		dir := rec.Dir()
		if dir == "" {
			http.Error(w, "flight recorder has no bundle directory", http.StatusNotFound)
			return
		}
		rest := strings.TrimPrefix(req.URL.Path, "/debug/bundles/")
		if rest == "" {
			infos, err := rec.ListBundles()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(infos)
			return
		}
		name, file, ok := strings.Cut(rest, "/")
		if !ok || name == "" || file == "" ||
			strings.Contains(file, "/") || !fs.ValidPath(name) || !fs.ValidPath(file) ||
			name == ".." || file == ".." || !strings.HasPrefix(name, "bundle-") {
			http.Error(w, "bad bundle path", http.StatusBadRequest)
			return
		}
		http.ServeFile(w, req, filepath.Join(dir, name, file))
	}
}

// Server is a running monitoring endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }

// Serve starts the monitoring endpoint on addr (e.g. ":9090" or
// "127.0.0.1:0") serving the registry's metrics, and returns
// immediately; the listener runs on a background goroutine until Close.
func Serve(addr string, r *Registry) (*Server, error) {
	return ServeHandler(addr, Handler(r))
}

// ServeHandler is Serve for a pre-built handler (e.g. HandlerWith plus
// extra routes).
func ServeHandler(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}
