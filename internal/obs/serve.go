package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// expvar.Publish panics on duplicate names, so the partdiff expvar
// entry is published once per process and indirected through an atomic
// pointer to whichever registry most recently asked to be served.
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[Registry]
)

func publishExpvar(r *Registry) {
	expvarReg.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("partdiff", expvar.Func(func() any {
			if reg := expvarReg.Load(); reg != nil {
				return reg.expvarMap()
			}
			return map[string]any{}
		}))
	})
}

// HealthFunc reports one health aspect; nil error means healthy. Used
// by HandlerOpts to wire /healthz and /readyz to session state.
type HealthFunc func() error

// HandlerOpts customizes the monitoring handler. The zero value gives
// always-healthy /healthz and /readyz (suitable for a bare registry
// with no session behind it).
type HandlerOpts struct {
	// Live backs /healthz: non-nil error means the process is broken
	// (e.g. the database is sticky-poisoned) and responds 503.
	Live HealthFunc
	// Ready backs /readyz: non-nil error means the server must not
	// receive traffic yet or anymore (recovery incomplete, WAL
	// poisoned) and responds 503.
	Ready HealthFunc
}

// Handler returns the monitoring endpoint for a registry:
//
//	/metrics       Prometheus text exposition format (?prefix=propnet filters)
//	/healthz       liveness (200, or 503 + reason when poisoned)
//	/readyz        readiness (200, or 503 + reason)
//	/debug/vars    expvar JSON (stdlib format, partdiff metrics under "partdiff")
//	/debug/pprof/  Go runtime profiles (CPU, heap, goroutine, block, mutex, trace)
//	/              a small index page
//
// The pprof handlers are registered explicitly on this mux (not via the
// net/http/pprof import side effect, which only touches
// http.DefaultServeMux), so a propagation hot spot found in the
// profiler's report can be drilled into with `go tool pprof` against
// the same endpoint.
func Handler(r *Registry) http.Handler { return HandlerWith(r, HandlerOpts{}) }

// HandlerWith is Handler with health checks wired in.
func HandlerWith(r *Registry, opts HandlerOpts) http.Handler {
	publishExpvar(r)
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", healthEndpoint(opts.Live))
	mux.HandleFunc("/readyz", healthEndpoint(opts.Ready))
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if p := req.URL.Query().Get("prefix"); p != "" {
			_ = r.WritePrometheusPrefix(w, p)
			return
		}
		_ = r.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, `<html><head><title>partdiff monitor</title></head><body>
<h1>partdiff monitor</h1>
<ul>
<li><a href="/metrics">/metrics</a> — Prometheus text format (<a href="/metrics?prefix=propnet">?prefix=propnet</a> filters)</li>
<li><a href="/healthz">/healthz</a> — liveness, <a href="/readyz">/readyz</a> — readiness</li>
<li><a href="/debug/vars">/debug/vars</a> — expvar JSON</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — Go runtime profiles</li>
</ul>
</body></html>`)
	})
	return mux
}

// healthEndpoint renders one HealthFunc as an HTTP endpoint: "ok" on
// 200, the error text on 503. A nil check is always healthy.
func healthEndpoint(check HealthFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if check != nil {
			if err := check(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintln(w, err.Error())
				return
			}
		}
		fmt.Fprintln(w, "ok")
	}
}

// Server is a running monitoring endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }

// Serve starts the monitoring endpoint on addr (e.g. ":9090" or
// "127.0.0.1:0") serving the registry's metrics, and returns
// immediately; the listener runs on a background goroutine until Close.
func Serve(addr string, r *Registry) (*Server, error) {
	return ServeHandler(addr, Handler(r))
}

// ServeHandler is Serve for a pre-built handler (e.g. HandlerWith plus
// extra routes).
func ServeHandler(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}
