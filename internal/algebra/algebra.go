// Package algebra implements set-oriented relational algebra operators
// (σ, π, ∪, −, ×, ⋈, ∩) and their partial differentials exactly as given
// by fig. 4 of the paper. Each DeltaXxx function combines the positive
// and negative partial differentials with respect to both operands using
// the delta-union ∪Δ, yielding the Δ-set of the operator's result.
//
// The fig. 4 rules are exact (they produce precisely the logical events
// of the result) for every operator except projection, whose
// differentials may over-approximate under set semantics: a projected
// insertion may already have been derivable, and a projected deletion
// may still be derivable from remaining tuples (§7.2). Correct applies
// the §7.2 membership checks that restore exactness.
package algebra

import (
	"partdiff/internal/delta"
	"partdiff/internal/types"
)

// Pred is a selection predicate over tuples.
type Pred func(types.Tuple) bool

// Select computes σ_pred(q).
func Select(q *types.Set, pred Pred) *types.Set {
	out := types.NewSet()
	q.Each(func(t types.Tuple) bool {
		if pred(t) {
			out.Add(t)
		}
		return true
	})
	return out
}

// Project computes π_cols(q) with set semantics (duplicates removed).
func Project(q *types.Set, cols []int) *types.Set {
	out := types.NewSet()
	q.Each(func(t types.Tuple) bool {
		out.Add(t.Project(cols))
		return true
	})
	return out
}

// Union computes q ∪ r.
func Union(q, r *types.Set) *types.Set {
	return q.Clone().AddAll(r)
}

// Difference computes q − r.
func Difference(q, r *types.Set) *types.Set {
	out := types.NewSet()
	q.Each(func(t types.Tuple) bool {
		if !r.Contains(t) {
			out.Add(t)
		}
		return true
	})
	return out
}

// Intersect computes q ∩ r.
func Intersect(q, r *types.Set) *types.Set {
	out := types.NewSet()
	q.Each(func(t types.Tuple) bool {
		if r.Contains(t) {
			out.Add(t)
		}
		return true
	})
	return out
}

// Product computes the cartesian product q × r (tuples concatenated).
func Product(q, r *types.Set) *types.Set {
	out := types.NewSet()
	q.Each(func(a types.Tuple) bool {
		r.Each(func(b types.Tuple) bool {
			out.Add(a.Concat(b))
			return true
		})
		return true
	})
	return out
}

// Join computes the equijoin q ⋈ r on qCols[i] = rCols[i], with result
// tuples being the concatenation of the operand tuples.
func Join(q, r *types.Set, qCols, rCols []int) *types.Set {
	out := types.NewSet()
	q.Each(func(a types.Tuple) bool {
		r.Each(func(b types.Tuple) bool {
			for i := range qCols {
				if !a[qCols[i]].Equal(b[rCols[i]]) {
					return true
				}
			}
			out.Add(a.Concat(b))
			return true
		})
		return true
	})
	return out
}

// DeltaSelect applies fig. 4 row σ_cond Q:
//
//	ΔP/Δ+Q = σ_cond Δ+Q    ΔP/Δ−Q = σ_cond Δ−Q
func DeltaSelect(dq *delta.Set, pred Pred) *delta.Set {
	return delta.FromSets(Select(dq.Plus(), pred), Select(dq.Minus(), pred))
}

// DeltaProject applies fig. 4 row π_attr Q:
//
//	ΔP/Δ+Q = π_attr Δ+Q    ΔP/Δ−Q = π_attr Δ−Q
//
// The result may over-approximate under set semantics; see Correct.
func DeltaProject(dq *delta.Set, cols []int) *delta.Set {
	return delta.FromSets(Project(dq.Plus(), cols), Project(dq.Minus(), cols))
}

// DeltaUnion applies fig. 4 row Q ∪ R. q and r are the NEW states of the
// operands; old states are derived by logical rollback:
//
//	ΔP/Δ+Q = Δ+Q − R_old    ΔP/Δ+R = Δ+R − Q_old
//	ΔP/Δ−Q = Δ−Q − R        ΔP/Δ−R = Δ−R − Q
func DeltaUnion(q, r *types.Set, dq, dr *delta.Set) *delta.Set {
	qold, rold := dq.OldState(q), dr.OldState(r)
	plus := Union(
		Difference(dq.Plus(), rold),
		Difference(dr.Plus(), qold))
	minus := Union(
		Difference(dq.Minus(), r),
		Difference(dr.Minus(), q))
	return delta.FromSets(plus, minus)
}

// DeltaDifference applies fig. 4 row Q − R (= Q ∩ ~R):
//
//	ΔP/Δ+Q = Δ+Q − R        ΔP/Δ+R = Q_old ∩ Δ+R   (negative side)
//	ΔP/Δ−Q = Δ−Q − R_old    ΔP/Δ−R = Q ∩ Δ−R       (positive side)
//
// Note the sign crossing: insertions into R delete from P, deletions
// from R insert into P (the complement differential swaps signs, §4.5).
func DeltaDifference(q, r *types.Set, dq, dr *delta.Set) *delta.Set {
	qold, rold := dq.OldState(q), dr.OldState(r)
	plus := Union(
		Difference(dq.Plus(), r),
		Intersect(q, dr.Minus()))
	minus := Union(
		Difference(dq.Minus(), rold),
		Intersect(qold, dr.Plus()))
	return delta.FromSets(plus, minus)
}

// DeltaProduct applies fig. 4 row Q × R:
//
//	ΔP/Δ+Q = Δ+Q × R            ΔP/Δ+R = Q × Δ+R
//	ΔP/Δ−Q = Δ−Q × R_old        ΔP/Δ−R = Q_old × Δ−R
func DeltaProduct(q, r *types.Set, dq, dr *delta.Set) *delta.Set {
	qold, rold := dq.OldState(q), dr.OldState(r)
	plus := Union(
		Product(dq.Plus(), r),
		Product(q, dr.Plus()))
	minus := Union(
		Product(dq.Minus(), rold),
		Product(qold, dr.Minus()))
	return delta.FromSets(plus, minus)
}

// DeltaJoin applies fig. 4 row Q ⋈ R:
//
//	ΔP/Δ+Q = Δ+Q ⋈ R            ΔP/Δ+R = Q ⋈ Δ+R
//	ΔP/Δ−Q = Δ−Q ⋈ R_old        ΔP/Δ−R = Q_old ⋈ Δ−R
func DeltaJoin(q, r *types.Set, qCols, rCols []int, dq, dr *delta.Set) *delta.Set {
	qold, rold := dq.OldState(q), dr.OldState(r)
	plus := Union(
		Join(dq.Plus(), r, qCols, rCols),
		Join(q, dr.Plus(), qCols, rCols))
	minus := Union(
		Join(dq.Minus(), rold, qCols, rCols),
		Join(qold, dr.Minus(), qCols, rCols))
	return delta.FromSets(plus, minus)
}

// DeltaIntersect applies fig. 4 row Q ∩ R:
//
//	ΔP/Δ+Q = Δ+Q ∩ R            ΔP/Δ+R = Q ∩ Δ+R
//	ΔP/Δ−Q = Δ−Q ∩ R_old        ΔP/Δ−R = Q_old ∩ Δ−R
func DeltaIntersect(q, r *types.Set, dq, dr *delta.Set) *delta.Set {
	qold, rold := dq.OldState(q), dr.OldState(r)
	plus := Union(
		Intersect(dq.Plus(), r),
		Intersect(q, dr.Plus()))
	minus := Union(
		Intersect(dq.Minus(), rold),
		Intersect(qold, dr.Minus()))
	return delta.FromSets(plus, minus)
}

// DeltaComplement applies Δ(~Q) = <Δ−Q, Δ+Q> (§4.5): the differential of
// set complement swaps insertions and deletions.
func DeltaComplement(dq *delta.Set) *delta.Set {
	return dq.Invert()
}

// Correct applies the §7.2 strict-semantics checks to a possibly
// over-approximate Δ-set of a view P: a claimed insertion must be in the
// new state of P and not in the old state; a claimed deletion must be in
// the old state and not in the new state. The result is exactly the
// logical events of P.
func Correct(raw *delta.Set, oldP, newP *types.Set) *delta.Set {
	out := delta.New()
	raw.Plus().Each(func(t types.Tuple) bool {
		if newP.Contains(t) && !oldP.Contains(t) {
			out.Insert(t)
		}
		return true
	})
	raw.Minus().Each(func(t types.Tuple) bool {
		if oldP.Contains(t) && !newP.Contains(t) {
			out.Delete(t)
		}
		return true
	})
	return out
}
