package algebra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"partdiff/internal/delta"
	"partdiff/internal/types"
)

func tup(vs ...int64) types.Tuple {
	t := make(types.Tuple, len(vs))
	for i, v := range vs {
		t[i] = types.Int(v)
	}
	return t
}

// randRelation builds a random binary relation over a small domain plus
// a random transaction against it, returning (newState, delta).
func randRelation(r *rand.Rand, dom int64) (*types.Set, *delta.Set) {
	s := types.NewSet()
	for i := 0; i < 6+r.Intn(8); i++ {
		s.Add(tup(r.Int63n(dom), r.Int63n(dom)))
	}
	d := delta.New()
	for i := 0; i < 8; i++ {
		t := tup(r.Int63n(dom), r.Int63n(dom))
		if r.Intn(2) == 0 {
			if s.Add(t) {
				d.Insert(t)
			}
		} else {
			if s.Remove(t) {
				d.Delete(t)
			}
		}
	}
	return s, d
}

// opCase wires one fig. 4 row: a recompute function over states and the
// incremental delta rule.
type opCase struct {
	name    string
	exact   bool // fig. 4 rule is exact under set semantics
	compute func(q, r *types.Set) *types.Set
	rule    func(q, r *types.Set, dq, dr *delta.Set) *delta.Set
}

func fig4Cases() []opCase {
	evenSum := func(t types.Tuple) bool { return (t[0].AsInt()+t[1].AsInt())%2 == 0 }
	return []opCase{
		{
			name: "Select", exact: true,
			compute: func(q, _ *types.Set) *types.Set { return Select(q, evenSum) },
			rule: func(_, _ *types.Set, dq, _ *delta.Set) *delta.Set {
				return DeltaSelect(dq, evenSum)
			},
		},
		{
			name: "Project", exact: false,
			compute: func(q, _ *types.Set) *types.Set { return Project(q, []int{0}) },
			rule: func(_, _ *types.Set, dq, _ *delta.Set) *delta.Set {
				return DeltaProject(dq, []int{0})
			},
		},
		{
			name: "Union", exact: true,
			compute: func(q, r *types.Set) *types.Set { return Union(q, r) },
			rule:    DeltaUnion,
		},
		{
			name: "Difference", exact: true,
			compute: func(q, r *types.Set) *types.Set { return Difference(q, r) },
			rule:    DeltaDifference,
		},
		{
			name: "Product", exact: true,
			compute: func(q, r *types.Set) *types.Set { return Product(q, r) },
			rule:    DeltaProduct,
		},
		{
			name: "Join", exact: true,
			compute: func(q, r *types.Set) *types.Set { return Join(q, r, []int{1}, []int{0}) },
			rule: func(q, r *types.Set, dq, dr *delta.Set) *delta.Set {
				return DeltaJoin(q, r, []int{1}, []int{0}, dq, dr)
			},
		},
		{
			name: "Intersect", exact: true,
			compute: func(q, r *types.Set) *types.Set { return Intersect(q, r) },
			rule:    DeltaIntersect,
		},
	}
}

// TestFig4_DeltaRulesMatchRecompute is the E3 property test: for every
// operator row of fig. 4, the incremental Δ-set must match (exact rows)
// or safely over-approximate and correct to (projection) the Δ-set
// obtained by recomputing the operator on the old and new states.
func TestFig4_DeltaRulesMatchRecompute(t *testing.T) {
	for _, tc := range fig4Cases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			f := func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				q, dq := randRelation(r, 6)
				rr, dr := randRelation(r, 6)
				qold, rold := dq.OldState(q), dr.OldState(rr)

				oldP := tc.compute(qold, rold)
				newP := tc.compute(q, rr)
				want := delta.Diff(oldP, newP)
				got := tc.rule(q, rr, dq, dr)

				if tc.exact {
					return got.Equal(want)
				}
				// Over-approximation: got ⊇ want on both sides, and the
				// §7.2 correction restores exactness.
				super := true
				want.Plus().Each(func(tp types.Tuple) bool {
					if !got.Plus().Contains(tp) {
						super = false
					}
					return super
				})
				want.Minus().Each(func(tp types.Tuple) bool {
					if !got.Minus().Contains(tp) {
						super = false
					}
					return super
				})
				return super && Correct(got, oldP, newP).Equal(want)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestBasicOperators(t *testing.T) {
	q := types.NewSet(tup(1, 2), tup(2, 3), tup(3, 4))
	r := types.NewSet(tup(2, 3), tup(5, 6))

	if got := Select(q, func(t types.Tuple) bool { return t[0].AsInt() > 1 }); !got.Equal(types.NewSet(tup(2, 3), tup(3, 4))) {
		t.Errorf("Select=%s", got)
	}
	if got := Project(q, []int{1}); !got.Equal(types.NewSet(tup(2), tup(3), tup(4))) {
		t.Errorf("Project=%s", got)
	}
	if got := Union(q, r); got.Len() != 4 {
		t.Errorf("Union=%s", got)
	}
	if got := Difference(q, r); !got.Equal(types.NewSet(tup(1, 2), tup(3, 4))) {
		t.Errorf("Difference=%s", got)
	}
	if got := Intersect(q, r); !got.Equal(types.NewSet(tup(2, 3))) {
		t.Errorf("Intersect=%s", got)
	}
	if got := Product(types.NewSet(tup(1)), types.NewSet(tup(2), tup(3))); !got.Equal(types.NewSet(tup(1, 2), tup(1, 3))) {
		t.Errorf("Product=%s", got)
	}
	// Join q.col1 = r.col0: (1,2)⋈(2,3), (2,3)⋈nothing(3∉r.col0), (3,4)⋈nothing... r has (2,3),(5,6)
	if got := Join(q, r, []int{1}, []int{0}); !got.Equal(types.NewSet(tup(1, 2, 2, 3))) {
		t.Errorf("Join=%s", got)
	}
}

func TestProjectOverApproximationExample(t *testing.T) {
	// Q = {(1,a),(1,b)}; delete (1,b). π0(Q) stays {1} but the raw rule
	// claims deletion of (1).
	q := types.NewSet(tup(1, 10))
	dq := delta.New()
	// old state had (1,20) too
	dq.Delete(tup(1, 20))
	raw := DeltaProject(dq, []int{0})
	if !raw.Minus().Contains(tup(1)) {
		t.Fatal("raw projection rule should claim the deletion")
	}
	oldP := Project(dq.OldState(q), []int{0})
	newP := Project(q, []int{0})
	corrected := Correct(raw, oldP, newP)
	if !corrected.IsEmpty() {
		t.Errorf("corrected delta should be empty, got %s", corrected)
	}
}

func TestDeltaComplementSwapsSigns(t *testing.T) {
	d := delta.New()
	d.Insert(tup(1))
	d.Delete(tup(2))
	c := DeltaComplement(d)
	if !c.Plus().Contains(tup(2)) || !c.Minus().Contains(tup(1)) {
		t.Errorf("DeltaComplement=%s", c)
	}
}

func TestDifferenceSignCrossing(t *testing.T) {
	// P = Q − R. Inserting into R must *delete* from P; deleting from R
	// must *insert* into P.
	q := types.NewSet(tup(1), tup(2))
	r := types.NewSet(tup(1)) // new state: (1) just inserted
	dq := delta.New()
	dr := delta.New()
	dr.Insert(tup(1))
	d := DeltaDifference(q, r, dq, dr)
	if !d.Minus().Contains(tup(1)) || d.Plus().Len() != 0 {
		t.Errorf("insert into R: %s", d)
	}

	// Now delete (1) from R again (fresh scenario).
	r2 := types.NewSet() // new state of R after deletion
	dr2 := delta.New()
	dr2.Delete(tup(1))
	d2 := DeltaDifference(q, r2, dq, dr2)
	if !d2.Plus().Contains(tup(1)) || d2.Minus().Len() != 0 {
		t.Errorf("delete from R: %s", d2)
	}
}

func TestCorrectDropsPhantoms(t *testing.T) {
	raw := delta.New()
	raw.Insert(tup(1)) // claimed insertion that was already true
	raw.Insert(tup(2)) // genuine insertion
	raw.Delete(tup(3)) // claimed deletion that is still derivable
	raw.Delete(tup(4)) // genuine deletion
	oldP := types.NewSet(tup(1), tup(3), tup(4))
	newP := types.NewSet(tup(1), tup(2), tup(3))
	got := Correct(raw, oldP, newP)
	if !got.Plus().Equal(types.NewSet(tup(2))) || !got.Minus().Equal(types.NewSet(tup(4))) {
		t.Errorf("Correct=%s", got)
	}
}

// The paper's worked delta example under the intersection row: changes
// to both operands in one transaction overlap; ∪Δ deduplicates.
func TestIntersectOverlappingInfluents(t *testing.T) {
	// Q gains (1), R gains (1): both partial differentials produce (1)+.
	q := types.NewSet(tup(1))
	r := types.NewSet(tup(1))
	dq, dr := delta.New(), delta.New()
	dq.Insert(tup(1))
	dr.Insert(tup(1))
	d := DeltaIntersect(q, r, dq, dr)
	if !d.Plus().Equal(types.NewSet(tup(1))) || d.Minus().Len() != 0 {
		t.Errorf("overlap dedup: %s", d)
	}
}
