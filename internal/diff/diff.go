// Package diff implements the partial differencing compiler — the
// primary contribution of the paper (§4.3–§4.5). Given the definition of
// a derived relation P, it generates one partial differential per
// (disjunct, influent occurrence, sign):
//
//	ΔP/Δ+X — the insertions into P caused by insertions into X, obtained
//	         by substituting the occurrence of X by Δ+X; all other
//	         literals are evaluated in the NEW database state.
//
//	ΔP/Δ−X — the deletions from P caused by deletions from X, obtained by
//	         substituting the occurrence by Δ−X; all other literals are
//	         evaluated in the OLD state (logical rollback, fig. 3),
//	         because deleted tuples joined with the state in which they
//	         were present.
//
// A negated occurrence ¬X crosses signs (Δ(~X) = <Δ−X, Δ+X>, §4.5):
// deletions from X insert into P (evaluated against the new state of the
// other literals), and insertions into X delete from P (other literals
// old).
package diff

import (
	"fmt"
	"sort"

	"partdiff/internal/objectlog"
)

// Differential is one compiled partial differential of a view.
type Differential struct {
	// View is the affected predicate P.
	View string
	// Influent is the predicate X whose change triggers this
	// differential.
	Influent string
	// TriggerSign selects which side of ΔX feeds the differential
	// (DeltaPlus or DeltaMinus).
	TriggerSign objectlog.DeltaKind
	// EffectSign is the side of ΔP this differential contributes to.
	// It differs from TriggerSign exactly when the influent occurrence
	// is negated.
	EffectSign objectlog.DeltaKind
	// Clause is the executable differential query. Its head produces P
	// tuples; its body contains exactly one Δ-annotated literal.
	Clause objectlog.Clause
	// Disjunct and Occurrence identify which clause of the view's
	// definition and which body literal this differential was derived
	// from (for explainability, §1).
	Disjunct   int
	Occurrence int
	// Counting marks a triangle-form differential produced by
	// GenerateCounting: evaluated under bag semantics its results are
	// exact signed derivation-count deltas, not an over-approximation.
	Counting bool
}

// Name renders the paper's notation, e.g.
// "Δcnd_monitor_items/Δ+quantity". Counting differentials carry a "#"
// marker so profiler entries never collide with the standard form.
func (d Differential) Name() string {
	if d.Counting {
		return fmt.Sprintf("Δ#%s/%s%s", d.View, d.TriggerSign, d.Influent)
	}
	return fmt.Sprintf("Δ%s/%s%s", d.View, d.TriggerSign, d.Influent)
}

// Key identifies a differential within a compiled program. Generate
// emits at most one differential per (view, disjunct, occurrence,
// trigger sign), so the key is unique and stable across regeneration —
// the static analyzer records its prune verdicts against it and the
// propagation network looks them up when scheduling.
type Key struct {
	View       string
	Disjunct   int
	Occurrence int
	Trigger    objectlog.DeltaKind
}

// Key returns the differential's identity key.
func (d Differential) Key() Key {
	return Key{View: d.View, Disjunct: d.Disjunct, Occurrence: d.Occurrence, Trigger: d.TriggerSign}
}

// String renders the key compactly, e.g. "cnd_r#0.2/Δ+".
func (k Key) String() string {
	return fmt.Sprintf("%s#%d.%d/%s", k.View, k.Disjunct, k.Occurrence, k.Trigger)
}

// String renders the differential with its clause.
func (d Differential) String() string {
	return fmt.Sprintf("%s: %s", d.Name(), d.Clause)
}

// Plan classifies how a view can be monitored by the propagation
// network.
type Plan int

// The monitoring plans.
const (
	// Differenced views get one partial differential per (disjunct,
	// influent occurrence, sign) — the paper's incremental scheme.
	Differenced Plan = iota
	// ReevalAggregate views are aggregate views, re-evaluated old vs
	// new state on any influent change.
	ReevalAggregate
	// ReevalRecursive views are members of a recursive component,
	// recomputed by fixpoint when an influent outside the component
	// changes.
	ReevalRecursive
)

// String names the plan.
func (p Plan) String() string {
	switch p {
	case ReevalAggregate:
		return "reeval-aggregate"
	case ReevalRecursive:
		return "reeval-recursive"
	default:
		return "differenced"
	}
}

// Classify determines how def can be monitored within prog, before any
// differentials are generated. It is the single applicability gate
// shared by the propagation network and the static analyzer: a
// definition with Δ- or old-annotated literals cannot enter the
// network at all (error), aggregate and recursive definitions fall
// back to re-evaluation, and everything else is differenced.
func Classify(def *objectlog.Def, prog *objectlog.Program) (Plan, error) {
	for _, c := range def.Clauses {
		for _, l := range c.Body {
			if l.Delta != objectlog.DeltaNone || l.Old {
				return 0, fmt.Errorf("[%s] definition of %s contains annotated literal %s; differentials must be generated from plain clauses", objectlog.CodeAnnotatedLiteral, def.Name, l)
			}
		}
	}
	if def.Aggregate != "" {
		return ReevalAggregate, nil
	}
	if prog != nil && prog.IsRecursive(def.Name) {
		return ReevalRecursive, nil
	}
	return Differenced, nil
}

// Options control differential generation.
type Options struct {
	// Positive generates insertion-monitoring differentials.
	Positive bool
	// Negative generates deletion-monitoring differentials. Conditions
	// that are insertion-monotone (no negation, and no rule semantics
	// requiring deletions) can skip these (§4.4: "often the rule
	// condition depends only on positive changes").
	Negative bool
}

// DefaultOptions monitors both signs.
func DefaultOptions() Options { return Options{Positive: true, Negative: true} }

// Generate compiles the partial differentials of a derived predicate
// definition. The definition's clauses must be fully normalized
// conjunctions (use objectlog.Expand first); literals that are already
// delta- or old-annotated are rejected.
func Generate(def *objectlog.Def, opts Options) ([]Differential, error) {
	if def.Aggregate != "" {
		return nil, fmt.Errorf("definition of %s is an aggregate view; aggregates are monitored by re-evaluation, not partial differentials", def.Name)
	}
	var out []Differential
	for ci, c := range def.Clauses {
		if err := objectlog.CheckSafe(c); err != nil {
			return nil, fmt.Errorf("definition of %s: %w", def.Name, err)
		}
		for li, l := range c.Body {
			if objectlog.IsBuiltin(l.Pred) {
				continue
			}
			if l.Delta != objectlog.DeltaNone || l.Old {
				return nil, fmt.Errorf("[%s] definition of %s contains annotated literal %s; differentials must be generated from plain clauses", objectlog.CodeAnnotatedLiteral, def.Name, l)
			}
			if !l.Negated {
				if opts.Positive {
					out = append(out, makeDifferential(def.Name, c, ci, li,
						objectlog.DeltaPlus, objectlog.DeltaPlus, false))
				}
				if opts.Negative {
					out = append(out, makeDifferential(def.Name, c, ci, li,
						objectlog.DeltaMinus, objectlog.DeltaMinus, true))
				}
			} else {
				// Sign crossing for negated occurrences.
				if opts.Positive {
					// P gains when X loses; others new.
					out = append(out, makeDifferential(def.Name, c, ci, li,
						objectlog.DeltaMinus, objectlog.DeltaPlus, false))
				}
				if opts.Negative {
					// P loses when X gains; others old.
					out = append(out, makeDifferential(def.Name, c, ci, li,
						objectlog.DeltaPlus, objectlog.DeltaMinus, true))
				}
			}
		}
	}
	return out, nil
}

// makeDifferential builds one differential: occurrence idx of the clause
// body is replaced by a positive Δ-literal; when othersOld, every other
// state-bearing literal is marked old.
func makeDifferential(view string, c objectlog.Clause, disjunct, idx int,
	trigger, effect objectlog.DeltaKind, othersOld bool) Differential {

	cc := c.Clone()
	occ := cc.Body[idx]
	occ.Negated = false // Δ-sets are consulted positively
	occ.Delta = trigger
	occ.Old = false
	cc.Body[idx] = occ
	if othersOld {
		for i := range cc.Body {
			if i == idx {
				continue
			}
			cc.Body[i] = cc.Body[i].WithOld()
		}
	}
	return Differential{
		View:        view,
		Influent:    c.Body[idx].Pred,
		TriggerSign: trigger,
		EffectSign:  effect,
		Clause:      cc,
		Disjunct:    disjunct,
		Occurrence:  idx,
	}
}

// GenerateCounting compiles the triangle-form (exact) differentials of
// a derived predicate definition, used by counting maintenance. Where
// Generate evaluates the non-occurrence literals uniformly (all NEW on
// the plus side, all OLD on the minus side) — an over-approximation
// that can claim the same derivation from two occurrences — the
// triangle form evaluates literals BEFORE occurrence i in the NEW
// state and literals AFTER it in the OLD state. Summed over all
// occurrences with their signs, the results telescope:
//
//	P_new − P_old = Σ_i  (new₁…new_{i-1}, ΔXᵢ, old_{i+1}…old_k)
//
// an identity over signed multisets (Z-relations) because every body
// literal is set-valued here (base relations and deduplicated derived
// sub-queries; a negated literal is the 0/1 factor 1−X, whose delta is
// −ΔX — the usual sign crossing with multiplicity one). Evaluated
// under bag semantics (eval.EvalClauseBag) each produced head tuple is
// one derivation gained (EffectSign Δ+) or lost (Δ−), so folding the
// results into a per-tuple support count maintains the exact
// derivation count of every view tuple.
func GenerateCounting(def *objectlog.Def) ([]Differential, error) {
	if def.Aggregate != "" {
		return nil, fmt.Errorf("definition of %s is an aggregate view; aggregates are monitored by re-evaluation, not counting differentials", def.Name)
	}
	var out []Differential
	for ci, c := range def.Clauses {
		if err := objectlog.CheckSafe(c); err != nil {
			return nil, fmt.Errorf("definition of %s: %w", def.Name, err)
		}
		for li, l := range c.Body {
			if objectlog.IsBuiltin(l.Pred) {
				continue
			}
			if l.Delta != objectlog.DeltaNone || l.Old {
				return nil, fmt.Errorf("[%s] definition of %s contains annotated literal %s; differentials must be generated from plain clauses", objectlog.CodeAnnotatedLiteral, def.Name, l)
			}
			if !l.Negated {
				out = append(out,
					makeCounting(def.Name, c, ci, li, objectlog.DeltaPlus, objectlog.DeltaPlus),
					makeCounting(def.Name, c, ci, li, objectlog.DeltaMinus, objectlog.DeltaMinus))
			} else {
				// Sign crossing: Δ(1−X) = −ΔX, multiplicity one.
				out = append(out,
					makeCounting(def.Name, c, ci, li, objectlog.DeltaMinus, objectlog.DeltaPlus),
					makeCounting(def.Name, c, ci, li, objectlog.DeltaPlus, objectlog.DeltaMinus))
			}
		}
	}
	return out, nil
}

// makeCounting builds one triangle-form differential: occurrence idx
// becomes a positive Δ-literal, literals before it stay in the new
// state, literals after it are marked old. Builtins are rigid (state-
// independent), so marking them old is harmless.
func makeCounting(view string, c objectlog.Clause, disjunct, idx int,
	trigger, effect objectlog.DeltaKind) Differential {

	cc := c.Clone()
	occ := cc.Body[idx]
	occ.Negated = false // Δ-sets are consulted positively
	occ.Delta = trigger
	occ.Old = false
	cc.Body[idx] = occ
	for i := idx + 1; i < len(cc.Body); i++ {
		cc.Body[i] = cc.Body[i].WithOld()
	}
	return Differential{
		View:        view,
		Influent:    c.Body[idx].Pred,
		TriggerSign: trigger,
		EffectSign:  effect,
		Clause:      cc,
		Disjunct:    disjunct,
		Occurrence:  idx,
		Counting:    true,
	}
}

// ByInfluent groups differentials by influent predicate, preserving
// generation order within each group.
func ByInfluent(ds []Differential) map[string][]Differential {
	out := map[string][]Differential{}
	for _, d := range ds {
		out[d.Influent] = append(out[d.Influent], d)
	}
	return out
}

// Influents returns the distinct influent names of the differentials,
// sorted.
func Influents(ds []Differential) []string {
	seen := map[string]bool{}
	for _, d := range ds {
		seen[d.Influent] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
