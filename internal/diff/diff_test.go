package diff

import (
	"strings"
	"testing"

	"partdiff/internal/objectlog"
)

// pqrDef is p(X,Z) ← q(X,Y) ∧ r(Y,Z), the running example of §4.3/§4.4.
func pqrDef() *objectlog.Def {
	return &objectlog.Def{Name: "p", Arity: 2, Clauses: []objectlog.Clause{
		objectlog.NewClause(
			objectlog.Lit("p", objectlog.V("X"), objectlog.V("Z")),
			objectlog.Lit("q", objectlog.V("X"), objectlog.V("Y")),
			objectlog.Lit("r", objectlog.V("Y"), objectlog.V("Z"))),
	}}
}

func TestGeneratePaperSection43(t *testing.T) {
	ds, err := Generate(pqrDef(), Options{Positive: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 {
		t.Fatalf("want 2 positive differentials, got %d", len(ds))
	}
	// Δp/Δ+q ← Δ+q(X,Y) ∧ r(Y,Z)
	d0 := ds[0]
	if d0.Name() != "Δp/Δ+q" {
		t.Errorf("name=%q", d0.Name())
	}
	if got := d0.Clause.String(); got != "p(X,Z) ← Δ+q(X,Y) ∧ r(Y,Z)" {
		t.Errorf("Δp/Δ+q clause = %q", got)
	}
	// Δp/Δ+r ← q(X,Y) ∧ Δ+r(Y,Z)
	d1 := ds[1]
	if got := d1.Clause.String(); got != "p(X,Z) ← q(X,Y) ∧ Δ+r(Y,Z)" {
		t.Errorf("Δp/Δ+r clause = %q", got)
	}
	for _, d := range ds {
		if d.EffectSign != objectlog.DeltaPlus || d.TriggerSign != objectlog.DeltaPlus {
			t.Errorf("positive differential signs: %+v", d)
		}
	}
}

func TestGeneratePaperSection44_NegativeUsesOldState(t *testing.T) {
	ds, err := Generate(pqrDef(), Options{Negative: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 {
		t.Fatalf("want 2 negative differentials, got %d", len(ds))
	}
	// Δp/Δ−q ← Δ−q(X,Y) ∧ r_old(Y,Z)
	if got := ds[0].Clause.String(); got != "p(X,Z) ← Δ-q(X,Y) ∧ r_old(Y,Z)" {
		t.Errorf("Δp/Δ−q clause = %q", got)
	}
	// Δp/Δ−r ← q_old(X,Y) ∧ Δ−r(Y,Z)
	if got := ds[1].Clause.String(); got != "p(X,Z) ← q_old(X,Y) ∧ Δ-r(Y,Z)" {
		t.Errorf("Δp/Δ−r clause = %q", got)
	}
	for _, d := range ds {
		if d.EffectSign != objectlog.DeltaMinus || d.TriggerSign != objectlog.DeltaMinus {
			t.Errorf("negative differential signs: %+v", d)
		}
	}
}

func TestGenerateBothSigns(t *testing.T) {
	ds, err := Generate(pqrDef(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 4 {
		t.Fatalf("want 4 differentials, got %d", len(ds))
	}
}

func TestBuiltinsGetNoDifferentials(t *testing.T) {
	def := &objectlog.Def{Name: "v", Arity: 1, Clauses: []objectlog.Clause{
		objectlog.NewClause(
			objectlog.Lit("v", objectlog.V("X")),
			objectlog.Lit("b", objectlog.V("X"), objectlog.V("A")),
			objectlog.Lit(objectlog.BuiltinLT, objectlog.V("A"), objectlog.CInt(10))),
	}}
	ds, err := Generate(def, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 {
		t.Fatalf("builtin must not yield differentials: %d", len(ds))
	}
	for _, d := range ds {
		if d.Influent != "b" {
			t.Errorf("influent=%q", d.Influent)
		}
	}
	// The comparison literal must stay intact (and never be old-marked).
	for _, d := range ds {
		found := false
		for _, l := range d.Clause.Body {
			if l.Pred == objectlog.BuiltinLT {
				found = true
				if l.Old {
					t.Error("builtin marked old")
				}
			}
		}
		if !found {
			t.Error("comparison literal lost")
		}
	}
}

func TestNegatedOccurrenceCrossesSigns(t *testing.T) {
	// v(X) ← a(X) ∧ ¬b(X)
	def := &objectlog.Def{Name: "v", Arity: 1, Clauses: []objectlog.Clause{
		objectlog.NewClause(
			objectlog.Lit("v", objectlog.V("X")),
			objectlog.Lit("a", objectlog.V("X")),
			objectlog.NotLit("b", objectlog.V("X"))),
	}}
	ds, err := Generate(def, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// a: +→+ and −→−; b (negated): −→+ and +→−.
	byName := map[string]Differential{}
	for _, d := range ds {
		byName[d.Name()+"/"+d.EffectSign.String()] = d
	}
	if len(ds) != 4 {
		t.Fatalf("want 4, got %d", len(ds))
	}
	// P gains when b loses: Δv/Δ−b with effect +, body: a(X) ∧ Δ−b(X) (positive literal, others new)
	gain, ok := byName["Δv/Δ-b/Δ+"]
	if !ok {
		t.Fatalf("missing sign-crossed differential; have %v", byName)
	}
	if gain.Clause.String() != "v(X) ← a(X) ∧ Δ-b(X)" {
		t.Errorf("gain clause = %q", gain.Clause)
	}
	// P loses when b gains: others old.
	lose, ok := byName["Δv/Δ+b/Δ-"]
	if !ok {
		t.Fatal("missing Δv/Δ+b")
	}
	if lose.Clause.String() != "v(X) ← a_old(X) ∧ Δ+b(X)" {
		t.Errorf("lose clause = %q", lose.Clause)
	}
}

func TestSelfJoinGetsPerOccurrenceDifferentials(t *testing.T) {
	// v(X,Z) ← e(X,Y) ∧ e(Y,Z): two occurrences of e.
	def := &objectlog.Def{Name: "v", Arity: 2, Clauses: []objectlog.Clause{
		objectlog.NewClause(
			objectlog.Lit("v", objectlog.V("X"), objectlog.V("Z")),
			objectlog.Lit("e", objectlog.V("X"), objectlog.V("Y")),
			objectlog.Lit("e", objectlog.V("Y"), objectlog.V("Z"))),
	}}
	ds, err := Generate(def, Options{Positive: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 {
		t.Fatalf("self-join needs one differential per occurrence, got %d", len(ds))
	}
	if ds[0].Occurrence == ds[1].Occurrence {
		t.Error("occurrences must differ")
	}
	if ds[0].Clause.String() != "v(X,Z) ← Δ+e(X,Y) ∧ e(Y,Z)" ||
		ds[1].Clause.String() != "v(X,Z) ← e(X,Y) ∧ Δ+e(Y,Z)" {
		t.Errorf("self-join differentials:\n%s\n%s", ds[0].Clause, ds[1].Clause)
	}
}

func TestDisjunctionGeneratesPerDisjunct(t *testing.T) {
	def := &objectlog.Def{Name: "v", Arity: 1, Clauses: []objectlog.Clause{
		objectlog.NewClause(objectlog.Lit("v", objectlog.V("X")), objectlog.Lit("a", objectlog.V("X"))),
		objectlog.NewClause(objectlog.Lit("v", objectlog.V("X")), objectlog.Lit("b", objectlog.V("X"))),
	}}
	ds, err := Generate(def, Options{Positive: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 || ds[0].Disjunct != 0 || ds[1].Disjunct != 1 {
		t.Errorf("per-disjunct generation: %+v", ds)
	}
}

func TestGenerateRejectsAnnotatedAndUnsafe(t *testing.T) {
	annotated := &objectlog.Def{Name: "v", Arity: 1, Clauses: []objectlog.Clause{
		objectlog.NewClause(objectlog.Lit("v", objectlog.V("X")),
			objectlog.Lit("a", objectlog.V("X")).WithDelta(objectlog.DeltaPlus)),
	}}
	if _, err := Generate(annotated, DefaultOptions()); err == nil {
		t.Error("annotated input should be rejected")
	}
	unsafe := &objectlog.Def{Name: "v", Arity: 1, Clauses: []objectlog.Clause{
		objectlog.NewClause(objectlog.Lit("v", objectlog.V("Z")),
			objectlog.Lit("a", objectlog.V("X"))),
	}}
	if _, err := Generate(unsafe, DefaultOptions()); err == nil {
		t.Error("unsafe definition should be rejected")
	}
}

func TestGenerateDoesNotMutateDefinition(t *testing.T) {
	def := pqrDef()
	before := def.Clauses[0].String()
	if _, err := Generate(def, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if def.Clauses[0].String() != before {
		t.Error("Generate must not mutate the input definition")
	}
}

func TestByInfluentAndInfluents(t *testing.T) {
	ds, _ := Generate(pqrDef(), DefaultOptions())
	by := ByInfluent(ds)
	if len(by["q"]) != 2 || len(by["r"]) != 2 {
		t.Errorf("ByInfluent: q=%d r=%d", len(by["q"]), len(by["r"]))
	}
	infl := Influents(ds)
	if len(infl) != 2 || infl[0] != "q" || infl[1] != "r" {
		t.Errorf("Influents=%v", infl)
	}
}

func TestDifferentialString(t *testing.T) {
	ds, _ := Generate(pqrDef(), Options{Positive: true})
	s := ds[0].String()
	if !strings.HasPrefix(s, "Δp/Δ+q: ") || !strings.Contains(s, "Δ+q(X,Y)") {
		t.Errorf("String()=%q", s)
	}
}

// TestMonitorItemsDifferentialCount mirrors §6: the fully expanded
// cnd_monitor_items condition has five influents, hence five positive
// partial differentials.
func TestMonitorItemsDifferentialCount(t *testing.T) {
	head := objectlog.Lit("cnd_monitor_items", objectlog.V("I"))
	body := []objectlog.Literal{
		objectlog.Lit("quantity", objectlog.V("I"), objectlog.V("G1")),
		objectlog.Lit("consume_freq", objectlog.V("I"), objectlog.V("G2")),
		objectlog.Lit("delivery_time", objectlog.V("I"), objectlog.V("G3"), objectlog.V("G4")),
		objectlog.Lit("supplies", objectlog.V("G3"), objectlog.V("I")),
		objectlog.Lit(objectlog.BuiltinTimes, objectlog.V("G2"), objectlog.V("G4"), objectlog.V("G5")),
		objectlog.Lit("min_stock", objectlog.V("I"), objectlog.V("G6")),
		objectlog.Lit(objectlog.BuiltinPlus, objectlog.V("G5"), objectlog.V("G6"), objectlog.V("G7")),
		objectlog.Lit(objectlog.BuiltinLT, objectlog.V("G1"), objectlog.V("G7")),
	}
	def := &objectlog.Def{Name: "cnd_monitor_items", Arity: 1,
		Clauses: []objectlog.Clause{{Head: head, Body: body}}}
	ds, err := Generate(def, Options{Positive: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 5 {
		t.Fatalf("five partial differentials expected (fig. 2), got %d", len(ds))
	}
	want := []string{
		"Δcnd_monitor_items/Δ+quantity",
		"Δcnd_monitor_items/Δ+consume_freq",
		"Δcnd_monitor_items/Δ+delivery_time",
		"Δcnd_monitor_items/Δ+supplies",
		"Δcnd_monitor_items/Δ+min_stock",
	}
	for i, d := range ds {
		if d.Name() != want[i] {
			t.Errorf("differential %d = %s want %s", i, d.Name(), want[i])
		}
	}
}
