package bench

import (
	"fmt"
	"sort"
	"time"

	"partdiff/internal/amosql"
	"partdiff/internal/rules"
	"partdiff/internal/types"
)

// This file holds the two PR-5 observability experiments:
//
//   - Profiler overhead A/B: the fig. 6 and fig. 7 workloads with the
//     propagation profiler off versus on. The profiler is meant to be
//     cheap enough to leave on in production, so the acceptance bar is
//     a small single-digit-percent median overhead.
//
//   - Adaptive statistics: a skewed workload where the static
//     literal-cost model anchors the join on the wrong (large) literal
//     and the observed-cardinality feedback re-ranks it onto a tiny
//     derived extent.

// ProfileOverheadRow is one profiler A/B measurement: median total
// wall time for a workload with profiling off vs on, plus the
// profiler's own accounting from the profiled run.
type ProfileOverheadRow struct {
	Experiment string `json:"experiment"`
	DBSize     int    `json:"db_size"`
	Txns       int    `json:"txns"`
	OffNs      int64  `json:"off_ns"` // median over reps
	OnNs       int64  `json:"on_ns"`  // median over reps
	// OverheadPct is (on-off)/off in percent; negative values are
	// measurement noise, not a speedup.
	OverheadPct float64 `json:"overhead_pct"`
	// Execs and ZeroEffect come from the profiler snapshot of the last
	// profiled run — they double as a sanity check that the profiler
	// actually observed the workload.
	Execs      int64 `json:"differential_execs"`
	ZeroEffect int64 `json:"zero_effect_execs"`
}

// median returns the middle element (lower middle for even lengths) of
// ns; it sorts its argument in place.
func median(ns []int64) int64 {
	if len(ns) == 0 {
		return 0
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	return ns[(len(ns)-1)/2]
}

// RunProfilerOverhead measures profiling-off vs profiling-on medians
// over reps repetitions of the fig. 6 (txns small transactions) and
// fig. 7 (rounds massive transactions) workloads at database size n.
func RunProfilerOverhead(n, txns, rounds, reps int) ([]ProfileOverheadRow, error) {
	type workload struct {
		name string
		txns int
		run  func(inv *Inventory) error
	}
	workloads := []workload{
		{"fig6", txns, func(inv *Inventory) error { return inv.RunFig6Transactions(txns) }},
		{"fig7", rounds, func(inv *Inventory) error {
			for r := 0; r < rounds; r++ {
				if err := inv.RunFig7Transaction(int64(r)); err != nil {
					return err
				}
			}
			return nil
		}},
	}
	measure := func(w workload, profiled bool, row *ProfileOverheadRow) (int64, error) {
		inv, err := NewInventory(Config{N: n, Mode: rules.Incremental, Activate: true})
		if err != nil {
			return 0, err
		}
		inv.Sess.SetProfiling(profiled)
		start := time.Now()
		if err := w.run(inv); err != nil {
			return 0, err
		}
		ns := time.Since(start).Nanoseconds()
		if inv.Orders != 0 {
			return 0, fmt.Errorf("%s workload must not trigger rules, got %d orders", w.name, inv.Orders)
		}
		if profiled {
			row.Execs, row.ZeroEffect = 0, 0
			for _, pt := range inv.Sess.Observability().Profiler.Snapshot() {
				row.Execs += pt.Execs
				row.ZeroEffect += pt.ZeroEffect
			}
			if row.Execs == 0 {
				return 0, fmt.Errorf("%s: profiler observed no differential executions", w.name)
			}
		}
		return ns, nil
	}
	out := make([]ProfileOverheadRow, 0, len(workloads))
	for _, w := range workloads {
		row := ProfileOverheadRow{Experiment: w.name, DBSize: n, Txns: w.txns}
		// One warm-up round, then off/on interleaved within each rep
		// (order alternating per rep) so slow drift — page-cache and
		// allocator warm-up, CPU frequency scaling — cancels out of the
		// A/B instead of loading onto whichever side runs first.
		if _, err := measure(w, false, &row); err != nil {
			return nil, err
		}
		var offTimes, onTimes []int64
		for rep := 0; rep < reps; rep++ {
			for pass := 0; pass < 2; pass++ {
				profiled := (rep+pass)%2 == 1
				ns, err := measure(w, profiled, &row)
				if err != nil {
					return nil, err
				}
				if profiled {
					onTimes = append(onTimes, ns)
				} else {
					offTimes = append(offTimes, ns)
				}
			}
		}
		row.OffNs, row.OnNs = median(offTimes), median(onTimes)
		if row.OffNs > 0 {
			row.OverheadPct = 100 * float64(row.OnNs-row.OffNs) / float64(row.OffNs)
		}
		out = append(out, row)
	}
	return out, nil
}

// AdaptiveRow is one measured point of the adaptive-statistics
// experiment: the skewed workload under the static cost model vs with
// observed-statistics feedback enabled.
type AdaptiveRow struct {
	DBSize int `json:"db_size"`
	Txns   int `json:"txns"`
	// StaticNs and AdaptiveNs are median total wall times over reps.
	StaticNs   int64   `json:"static_ns"`
	AdaptiveNs int64   `json:"adaptive_ns"`
	Speedup    float64 `json:"speedup"` // static/adaptive
}

// skewDB is a database engineered so the static literal-cost model
// picks a bad join order: the rule condition joins a huge stored
// function (attr, one row per item) against a tiny derived extent
// (pick, defined over seldom, which is populated for only a handful of
// items). A massive Δ+attr makes the static plan anchor on the Δ and
// probe pick once per changed item; the observed cardinality of pick
// (a few rows) flips the plan to enumerate pick once and filter the Δ.
type skewDB struct {
	Sess   *amosql.Session
	Items  []types.Value
	Orders int
}

// SkewPopulated is the number of items that carry a seldom value — the
// size of pick's derived extent.
const SkewPopulated = 5

func newSkewDB(n int, adaptive bool) (*skewDB, error) {
	sk := &skewDB{Sess: amosql.NewSession(rules.Incremental)}
	err := sk.Sess.RegisterProcedure("order", func(args []types.Value) error {
		sk.Orders++
		return nil
	})
	if err != nil {
		return nil, err
	}
	if adaptive {
		sk.Sess.EnableAdaptiveStats()
	}
	_, err = sk.Sess.Exec(`
create type item;
create function attr(item) -> integer;
create function seldom(item) -> integer;
create shared function pick(item i) -> integer as
    select seldom(i) * 2
    for each item j where j = i;
create rule watch_skew() as
    when for each item i
    where attr(i) < pick(i)
    do order(i, attr(i));
`)
	if err != nil {
		return nil, err
	}
	// The workload only ever updates attr upward-from-1000, so monitor
	// insertions only, as in the paper's §6 configuration.
	sk.Sess.Rules().SetMonitorDeletions(false)
	cat, st := sk.Sess.Catalog(), sk.Sess.Store()
	for i := 0; i < n; i++ {
		oid, err := cat.NewObject("item")
		if err != nil {
			return nil, err
		}
		item := types.Obj(oid)
		sk.Items = append(sk.Items, item)
		st.Insert("type:item", types.Tuple{item})
		if _, err := st.Set("attr", []types.Value{item}, []types.Value{types.Int(1000)}); err != nil {
			return nil, err
		}
		// pick(i) = 20 for the few populated items, undefined elsewhere
		// — attr stays ≥ 1000, so the condition is never true.
		if i < SkewPopulated {
			if _, err := st.Set("seldom", []types.Value{item}, []types.Value{types.Int(10)}); err != nil {
				return nil, err
			}
		}
	}
	if _, err := sk.Sess.Exec("activate watch_skew();"); err != nil {
		return nil, err
	}
	return sk, nil
}

// runOne executes one transaction updating attr of EVERY item (a
// massive Δ+attr per commit) without ever making the condition true.
func (sk *skewDB) runOne(t int) error {
	st := sk.Sess.Store()
	if err := sk.Sess.Txns().Begin(); err != nil {
		return err
	}
	v := types.Int(int64(1000 + t%2))
	for _, item := range sk.Items {
		if _, err := st.Set("attr", []types.Value{item}, []types.Value{v}); err != nil {
			sk.Sess.Txns().Rollback()
			return err
		}
	}
	return sk.Sess.Txns().Commit()
}

// run executes txns such transactions.
func (sk *skewDB) run(txns int) error {
	for t := 0; t < txns; t++ {
		if err := sk.runOne(t); err != nil {
			return err
		}
	}
	if sk.Orders != 0 {
		return fmt.Errorf("skew workload must not trigger rules, got %d orders", sk.Orders)
	}
	return nil
}

// RunAdaptive measures the skewed workload under the static cost model
// vs with adaptive statistics, median over reps, for each database
// size.
func RunAdaptive(sizes []int, txns, reps int) ([]AdaptiveRow, error) {
	out := make([]AdaptiveRow, 0, len(sizes))
	for _, n := range sizes {
		row := AdaptiveRow{DBSize: n, Txns: txns}
		for _, adaptive := range []bool{false, true} {
			times := make([]int64, 0, reps)
			for rep := 0; rep < reps; rep++ {
				sk, err := newSkewDB(n, adaptive)
				if err != nil {
					return nil, err
				}
				start := time.Now()
				if err := sk.run(txns); err != nil {
					return nil, err
				}
				times = append(times, time.Since(start).Nanoseconds())
			}
			if adaptive {
				row.AdaptiveNs = median(times)
			} else {
				row.StaticNs = median(times)
			}
		}
		if row.AdaptiveNs > 0 {
			row.Speedup = float64(row.StaticNs) / float64(row.AdaptiveNs)
		}
		out = append(out, row)
	}
	return out, nil
}
