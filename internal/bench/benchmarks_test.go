package bench

import (
	"testing"

	"partdiff/internal/obs"
	"partdiff/internal/rules"
)

// Small-sized counterparts of the root-package fig. 6 / fig. 7
// benchmarks. They exist so CI can run a one-iteration bench smoke pass
// against this package (go test -bench . -benchtime 1x -run '^$'): the
// harness code paths — inventory construction, the two workloads, the
// telemetry snapshot — are exercised without the multi-second sweeps.

func benchInventory(b *testing.B, mode rules.Mode, n int) *Inventory {
	b.Helper()
	inv, err := NewInventory(Config{N: n, Mode: mode, Activate: true})
	if err != nil {
		b.Fatal(err)
	}
	return inv
}

func BenchmarkFig6Incremental(b *testing.B) {
	inv := benchInventory(b, rules.Incremental, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := int64(4900 - (i/100)%2*100)
		if err := inv.Txn(func() error { return inv.SetQuantity(i%100, q) }); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Naive(b *testing.B) {
	inv := benchInventory(b, rules.Naive, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := int64(4900 - (i/100)%2*100)
		if err := inv.Txn(func() error { return inv.SetQuantity(i%100, q) }); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7Incremental(b *testing.B) {
	inv := benchInventory(b, rules.Incremental, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := inv.RunFig7Transaction(int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6Traced runs the fig. 6 workload with a Chrome trace sink
// attached, quantifying the cost of tracing ON (compare against
// BenchmarkFig6Incremental for the tracing-off cost, which must stay
// within noise of the pre-instrumentation numbers).
func BenchmarkFig6Traced(b *testing.B) {
	inv := benchInventory(b, rules.Incremental, 100)
	sink := obs.NewChromeSink()
	detach := inv.Sess.Observability().Tracer.Attach(sink)
	defer detach()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := int64(4900 - (i/100)%2*100)
		if err := inv.Txn(func() error { return inv.SetQuantity(i%100, q) }); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if sink.Len() == 0 {
		b.Fatal("trace sink captured no events")
	}
}

// BenchmarkTelemetrySnapshot measures the registry read path used by the
// -json bench output.
func BenchmarkTelemetrySnapshot(b *testing.B) {
	inv := benchInventory(b, rules.Incremental, 10)
	if err := inv.RunFig7Transaction(0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inv.Telemetry()
	}
}

// BenchmarkFig6Profiled runs the fig. 6 workload with the propagation
// profiler enabled — compare against BenchmarkFig6Incremental for the
// profiling-on overhead (the acceptance bar is single-digit percent).
func BenchmarkFig6Profiled(b *testing.B) {
	inv := benchInventory(b, rules.Incremental, 100)
	inv.Sess.SetProfiling(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := int64(4900 - (i/100)%2*100)
		if err := inv.Txn(func() error { return inv.SetQuantity(i%100, q) }); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var execs int64
	for _, pt := range inv.Sess.Observability().Profiler.Snapshot() {
		execs += pt.Execs
	}
	if execs == 0 {
		b.Fatal("profiler captured no differential executions")
	}
}

// BenchmarkSkewStatic and BenchmarkSkewAdaptive are the per-transaction
// counterparts of the -exp profile adaptive experiment: a massive Δ+attr
// joined against a tiny derived extent, planned by the static cost model
// vs by observed-statistics feedback.
func benchSkew(b *testing.B, adaptive bool) {
	b.Helper()
	sk, err := newSkewDB(200, adaptive)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sk.runOne(i); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if sk.Orders != 0 {
		b.Fatalf("skew workload triggered %d orders", sk.Orders)
	}
}

func BenchmarkSkewStatic(b *testing.B)   { benchSkew(b, false) }
func BenchmarkSkewAdaptive(b *testing.B) { benchSkew(b, true) }
