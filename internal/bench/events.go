package bench

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"partdiff/internal/obs"
	"partdiff/internal/rules"
)

// This file holds the event-streaming experiments:
//
//   - Zero-subscriber overhead A/B: the fig. 6 and fig. 7 workloads
//     with the event bus disarmed (the default: one atomic load per
//     emit site) versus armed with no subscribers (events staged,
//     published and retained in the resume ring, but fanned out to
//     nobody). The bus is meant to be cheap enough to leave armed on a
//     serving database, so the acceptance bar is a small
//     single-digit-percent median overhead.
//
//   - Fan-out throughput: the fig. 6 workload with 1/4/16 concurrent
//     subscribers draining the firehose, measuring aggregate delivery
//     rate and the drop counts the overflow policy produced.

// EventOverheadRow is one bus A/B measurement: median total wall time
// for a workload with the bus disarmed vs armed (zero subscribers).
type EventOverheadRow struct {
	Experiment string `json:"experiment"`
	DBSize     int    `json:"db_size"`
	Txns       int    `json:"txns"`
	OffNs      int64  `json:"off_ns"` // median over reps, bus disarmed
	OnNs       int64  `json:"on_ns"`  // median over reps, bus armed
	// OverheadPct is (on-off)/off in percent; negative values are
	// measurement noise, not a speedup.
	OverheadPct float64 `json:"overhead_pct"`
	// Published is the number of events the armed run recorded — a
	// sanity check that the bus actually observed the workload.
	Published int64 `json:"events_published"`
}

// RunEventOverhead measures bus-disarmed vs bus-armed medians over reps
// repetitions of the fig. 6 (txns small transactions) and fig. 7
// (rounds massive transactions) workloads at database size n.
func RunEventOverhead(n, txns, rounds, reps int) ([]EventOverheadRow, error) {
	type workload struct {
		name string
		txns int
		run  func(inv *Inventory) error
	}
	workloads := []workload{
		{"fig6", txns, func(inv *Inventory) error { return inv.RunFig6Transactions(txns) }},
		{"fig7", rounds, func(inv *Inventory) error {
			for r := 0; r < rounds; r++ {
				if err := inv.RunFig7Transaction(int64(r)); err != nil {
					return err
				}
			}
			return nil
		}},
	}
	measure := func(w workload, armed bool, row *EventOverheadRow) (int64, error) {
		inv, err := NewInventory(Config{N: n, Mode: rules.Incremental, Activate: true})
		if err != nil {
			return 0, err
		}
		bus := inv.Sess.Observability().Bus
		if armed {
			bus.Arm()
		}
		start := time.Now()
		if err := w.run(inv); err != nil {
			return 0, err
		}
		ns := time.Since(start).Nanoseconds()
		if inv.Orders != 0 {
			return 0, fmt.Errorf("%s workload must not trigger rules, got %d orders", w.name, inv.Orders)
		}
		if armed {
			row.Published = int64(bus.Seq())
			if row.Published == 0 {
				return 0, fmt.Errorf("%s: armed bus observed no events", w.name)
			}
		} else if bus.Active() {
			return 0, fmt.Errorf("%s: baseline bus armed itself", w.name)
		}
		return ns, nil
	}
	out := make([]EventOverheadRow, 0, len(workloads))
	for _, w := range workloads {
		row := EventOverheadRow{Experiment: w.name, DBSize: n, Txns: w.txns}
		// One warm-up round, then off/on interleaved within each rep
		// (order alternating per rep) so slow drift — page-cache and
		// allocator warm-up, CPU frequency scaling — cancels out of the
		// A/B instead of loading onto whichever side runs first.
		if _, err := measure(w, false, &row); err != nil {
			return nil, err
		}
		var offTimes, onTimes []int64
		for rep := 0; rep < reps; rep++ {
			for pass := 0; pass < 2; pass++ {
				armed := (rep+pass)%2 == 1
				ns, err := measure(w, armed, &row)
				if err != nil {
					return nil, err
				}
				if armed {
					onTimes = append(onTimes, ns)
				} else {
					offTimes = append(offTimes, ns)
				}
			}
		}
		row.OffNs, row.OnNs = median(offTimes), median(onTimes)
		if row.OffNs > 0 {
			row.OverheadPct = 100 * float64(row.OnNs-row.OffNs) / float64(row.OffNs)
		}
		out = append(out, row)
	}
	return out, nil
}

// EventFanoutRow is one fan-out measurement: the fig. 6 workload with a
// fixed number of concurrent subscribers draining the stream.
type EventFanoutRow struct {
	Subscribers int   `json:"subscribers"`
	DBSize      int   `json:"db_size"`
	Txns        int   `json:"txns"`
	Ns          int64 `json:"ns"` // workload wall time
	// Published is the number of events the bus emitted; Delivered the
	// aggregate count received across all subscribers; Dropped the
	// aggregate count evicted by the per-subscriber overflow policy
	// (every drop was surfaced to its subscriber as a gap event).
	Published int64 `json:"events_published"`
	Delivered int64 `json:"events_delivered"`
	Dropped   int64 `json:"events_dropped"`
	// DeliveredPerSec is the aggregate delivery rate over the workload
	// window.
	DeliveredPerSec float64 `json:"delivered_per_sec"`
}

// RunEventFanout runs the fig. 6 workload (txns transactions at
// database size n) once per entry of subCounts, with that many
// concurrent subscribers draining the full firehose, and verifies the
// accounting: every published event is either delivered to or
// explicitly dropped for each subscriber.
func RunEventFanout(n, txns int, subCounts []int) ([]EventFanoutRow, error) {
	out := make([]EventFanoutRow, 0, len(subCounts))
	for _, count := range subCounts {
		inv, err := NewInventory(Config{N: n, Mode: rules.Incremental, Activate: true})
		if err != nil {
			return nil, err
		}
		bus := inv.Sess.Observability().Bus
		var delivered, gapped int64
		var wg sync.WaitGroup
		subs := make([]*obs.Subscription, count)
		for i := range subs {
			sub := bus.Subscribe(0)
			subs[i] = sub
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					e, err := sub.Next(context.Background())
					if err != nil {
						return
					}
					if e.Type == obs.EventGap {
						atomic.AddInt64(&gapped, int64(e.Missed))
						continue
					}
					atomic.AddInt64(&delivered, 1)
				}
			}()
		}
		start := time.Now()
		if err := inv.RunFig6Transactions(txns); err != nil {
			return nil, err
		}
		ns := time.Since(start).Nanoseconds()
		for _, sub := range subs {
			sub.Close() // drains buffered events, then unblocks Next
		}
		wg.Wait()
		row := EventFanoutRow{
			Subscribers: count, DBSize: n, Txns: txns, Ns: ns,
			Published: int64(bus.Seq()), Delivered: atomic.LoadInt64(&delivered),
		}
		for _, sub := range subs {
			row.Dropped += int64(sub.Dropped())
		}
		if g := atomic.LoadInt64(&gapped); g != row.Dropped {
			return nil, fmt.Errorf("subs=%d: %d dropped events but %d surfaced via gaps", count, row.Dropped, g)
		}
		if got, want := row.Delivered+row.Dropped, row.Published*int64(count); got != want {
			return nil, fmt.Errorf("subs=%d: delivered+dropped = %d, want published×subs = %d", count, got, want)
		}
		if ns > 0 {
			row.DeliveredPerSec = float64(row.Delivered) / (float64(ns) / 1e9)
		}
		out = append(out, row)
	}
	return out, nil
}
