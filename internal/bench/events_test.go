package bench

import "testing"

func TestRunEventOverheadSmoke(t *testing.T) {
	rows, err := RunEventOverhead(10, 20, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want fig6 and fig7", len(rows))
	}
	for _, r := range rows {
		if r.OffNs <= 0 || r.OnNs <= 0 {
			t.Fatalf("%s: non-positive timings %+v", r.Experiment, r)
		}
		if r.Published == 0 {
			t.Fatalf("%s: armed run observed no events", r.Experiment)
		}
	}
}

func TestRunEventFanoutSmokeAndAccounting(t *testing.T) {
	// RunEventFanout verifies delivered+dropped == published×subs and
	// drop/gap agreement internally; a returned row means the
	// accounting held.
	rows, err := RunEventFanout(10, 50, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Published == 0 || r.Delivered == 0 {
			t.Fatalf("subs=%d: published=%d delivered=%d", r.Subscribers, r.Published, r.Delivered)
		}
	}
}
